package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"thematicep/internal/broker"
	"thematicep/internal/matcher"
	"thematicep/internal/workload"
)

// scaleTiers are the subscription population sizes of the scale
// experiment (E8). -full adds the million-subscription tier.
func (e *env0) scaleTiers() []int {
	tiers := []int{1_000, 10_000, 100_000}
	if e.full {
		tiers = append(tiers, 1_000_000)
	}
	return tiers
}

// scaleBatchSize is the PublishBatch granularity of the batched pass —
// the size a transport-fed ingest pipeline would realistically hand the
// broker (well under the server's publishb cap).
const scaleBatchSize = 256

// scaleRow is one tier's measurements: the serial Publish loop and the
// batched PublishBatch pipeline over the identical workload, with the
// batched/serial speedup as the headline.
type scaleRow struct {
	Subs          int     `json:"subs"`
	Events        int     `json:"events"`
	CandPerEvent  float64 `json:"candidates_per_event"`
	PrunedPercent float64 `json:"pruned_percent"`
	Matched       uint64  `json:"matched"`
	EventsPerSec  float64 `json:"events_per_sec"`
	WallSeconds   float64 `json:"wall_seconds"`

	EventsPerSecBatched float64 `json:"events_per_sec_batched"`
	WallSecondsBatched  float64 `json:"wall_seconds_batched"`
	BatchSpeedup        float64 `json:"batch_speedup"`
	BatchRowsReused     uint64  `json:"batch_rows_reused"`
	BatchRowsComputed   uint64  `json:"batch_rows_computed"`
	BatchTermsReused    uint64  `json:"batch_terms_reused"`
}

// scalePass subscribes every scale subscription, publishes every scale
// event through the stream-scoring broker — serially or through
// PublishBatch in scaleBatchSize batches — and returns counters + wall
// time of the publish loop. Queue size is minimal with drop-oldest, so
// the pass measures enumeration + scoring, not delivery consumption.
func (e *env0) scalePass(w *workload.ScaleWorkload, pruning, batched bool, parallelism int) (brokerRun, error) {
	e.space.ResetCaches()
	m := matcher.New(e.space)
	b := broker.New(
		broker.PreparedStream(
			m.Score, m.PrepareSubscription, m.PrepareEvent, m.ScorePrepared, m.ScoreBatch,
			m.NewEventBatch, m.PrepareEventInBatch, m.NewBatchArena, m.ScoreBatchInArena,
			m.FinishEventBatch),
		broker.WithPruning(pruning),
		broker.WithReplayBuffer(0),
		broker.WithQueueSize(1),
		broker.WithMatchParallelism(parallelism),
	)
	defer b.Close()
	for _, s := range w.Subs {
		if _, err := b.Subscribe(s); err != nil {
			return brokerRun{}, err
		}
	}
	start := time.Now()
	if batched {
		for lo := 0; lo < len(w.Events); lo += scaleBatchSize {
			hi := min(lo+scaleBatchSize, len(w.Events))
			if err := b.PublishBatch(w.Events[lo:hi]); err != nil {
				return brokerRun{}, err
			}
		}
	} else {
		for _, ev := range w.Events {
			if err := b.Publish(ev); err != nil {
				return brokerRun{}, err
			}
		}
	}
	return brokerRun{Stats: b.Stats(), Elapsed: time.Since(start)}, nil
}

// runScale is E8: Internet-scale matching, now measuring the batched
// publish pipeline against the serial loop at every tier. Each tier
// generates a fresh zipf-skewed population, runs the identical event
// stream both ways, and reports the batched/serial speedup as the
// headline alongside candidates-per-event. Equivalence is enforced per
// tier — the batched pass must match the serial pass pair-for-pair — and
// the smallest tier is additionally cross-checked against a full scan.
func runScale(e *env0) error {
	tiers := e.scaleTiers()
	fmt.Println("== E8: Internet-scale matching (batched publish pipeline vs serial loop) ==")
	fmt.Printf("%-10s %-8s %-16s %-9s %-10s %-11s %-11s %-8s %s\n",
		"subs", "events", "cand/event", "pruned%", "matched", "serial/s", "batched/s", "speedup", "wall(batched)")

	rows := make([]scaleRow, 0, len(tiers))
	for i, n := range tiers {
		cfg := workload.DefaultScaleConfig(n)
		cfg.Seed = e.seed
		w := workload.GenerateScale(cfg)

		run, err := e.scalePass(w, true, false, e.parallel)
		if err != nil {
			return err
		}
		bat, err := e.scalePass(w, true, true, e.parallel)
		if err != nil {
			return err
		}
		// Equivalence gate at every tier: batching must not change what
		// matches (delivery-set bit-identity is enforced by the broker
		// tests; the counters re-check it at scale).
		if bat.Stats.Matched != run.Stats.Matched || bat.Stats.Scanned != run.Stats.Scanned {
			return fmt.Errorf("scale tier %d: batching changed outcomes: %d/%d batched vs %d/%d serial (matched/scanned)",
				n, bat.Stats.Matched, bat.Stats.Scanned, run.Stats.Matched, run.Stats.Scanned)
		}
		if i == 0 {
			// The full scan must find exactly the matches the pruned index
			// admits.
			full, err := e.scalePass(w, false, false, e.parallel)
			if err != nil {
				return err
			}
			if full.Stats.Matched != run.Stats.Matched {
				return fmt.Errorf("scale tier %d: pruning changed matches: %d full scan vs %d pruned",
					n, full.Stats.Matched, run.Stats.Matched)
			}
		}

		nev := float64(len(w.Events))
		pairs := float64(run.Stats.Scanned + run.Stats.Pruned)
		row := scaleRow{
			Subs:          n,
			Events:        len(w.Events),
			CandPerEvent:  float64(run.Stats.Scanned) / nev,
			PrunedPercent: 100 * float64(run.Stats.Pruned) / pairs,
			Matched:       run.Stats.Matched,
			EventsPerSec:  nev / run.Elapsed.Seconds(),
			WallSeconds:   run.Elapsed.Seconds(),

			EventsPerSecBatched: nev / bat.Elapsed.Seconds(),
			WallSecondsBatched:  bat.Elapsed.Seconds(),
			BatchRowsReused:     bat.Stats.BatchRowsReused,
			BatchRowsComputed:   bat.Stats.BatchRowsComputed,
			BatchTermsReused:    bat.Stats.BatchTermsReused,
		}
		row.BatchSpeedup = row.EventsPerSecBatched / row.EventsPerSec
		rows = append(rows, row)
		fmt.Printf("%-10d %-8d %-16.1f %-9.2f %-10d %-11.0f %-11.0f %-8.2f %v\n",
			row.Subs, row.Events, row.CandPerEvent, row.PrunedPercent, row.Matched,
			row.EventsPerSec, row.EventsPerSecBatched, row.BatchSpeedup,
			bat.Elapsed.Round(msRound))
	}
	fmt.Println()

	if e.benchjson != "" {
		doc := map[string]any{
			"experiment": "scale",
			"seed":       e.seed,
			"parallel":   e.parallel,
			"tiers":      rows,
		}
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		return os.WriteFile(e.benchjson, append(data, '\n'), 0o644)
	}
	return nil
}
