package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"thematicep/internal/broker"
	"thematicep/internal/matcher"
	"thematicep/internal/workload"
)

// scaleTiers are the subscription population sizes of the scale
// experiment (E8). -full adds a fourth half-million tier.
func (e *env0) scaleTiers() []int {
	tiers := []int{1_000, 10_000, 100_000}
	if e.full {
		tiers = append(tiers, 500_000)
	}
	return tiers
}

// scaleRow is one tier's measurements.
type scaleRow struct {
	Subs          int     `json:"subs"`
	Events        int     `json:"events"`
	CandPerEvent  float64 `json:"candidates_per_event"`
	PrunedPercent float64 `json:"pruned_percent"`
	Matched       uint64  `json:"matched"`
	EventsPerSec  float64 `json:"events_per_sec"`
	WallSeconds   float64 `json:"wall_seconds"`
}

// scalePass subscribes every scale subscription, publishes every scale
// event through the batch-scoring broker, and returns counters + wall
// time of the publish loop. Queue size is minimal with drop-oldest, so
// the pass measures enumeration + scoring, not delivery consumption.
func (e *env0) scalePass(w *workload.ScaleWorkload, pruning bool, parallelism int) (brokerRun, error) {
	e.space.ResetCaches()
	m := matcher.New(e.space)
	b := broker.New(
		broker.PreparedBatch(m.Score, m.PrepareSubscription, m.PrepareEvent, m.ScorePrepared, m.ScoreBatch),
		broker.WithPruning(pruning),
		broker.WithReplayBuffer(0),
		broker.WithQueueSize(1),
		broker.WithMatchParallelism(parallelism),
	)
	defer b.Close()
	for _, s := range w.Subs {
		if _, err := b.Subscribe(s); err != nil {
			return brokerRun{}, err
		}
	}
	start := time.Now()
	for _, ev := range w.Events {
		if err := b.Publish(ev); err != nil {
			return brokerRun{}, err
		}
	}
	return brokerRun{Stats: b.Stats(), Elapsed: time.Since(start)}, nil
}

// runScale is E8: Internet-scale matching. Each tier generates a fresh
// zipf-skewed population, publishes the event stream through the
// inverted-index + batch-scoring broker, and reports the headline
// candidates-per-event figure alongside publish throughput. The smallest
// tier is cross-checked against a full scan: pruning must not change the
// match count.
func runScale(e *env0) error {
	tiers := e.scaleTiers()
	fmt.Println("== E8: Internet-scale matching (inverted subscription index + columnar batch scoring) ==")
	fmt.Printf("%-10s %-8s %-18s %-10s %-10s %-12s %s\n",
		"subs", "events", "candidates/event", "pruned%", "matched", "events/sec", "wall")

	rows := make([]scaleRow, 0, len(tiers))
	for i, n := range tiers {
		cfg := workload.DefaultScaleConfig(n)
		cfg.Seed = e.seed
		w := workload.GenerateScale(cfg)

		run, err := e.scalePass(w, true, e.parallel)
		if err != nil {
			return err
		}
		if i == 0 {
			// Equivalence gate at the tractable tier: the full scan must
			// find exactly the matches the pruned index admits.
			full, err := e.scalePass(w, false, e.parallel)
			if err != nil {
				return err
			}
			if full.Stats.Matched != run.Stats.Matched {
				return fmt.Errorf("scale tier %d: pruning changed matches: %d full scan vs %d pruned",
					n, full.Stats.Matched, run.Stats.Matched)
			}
		}

		nev := float64(len(w.Events))
		pairs := float64(run.Stats.Scanned + run.Stats.Pruned)
		row := scaleRow{
			Subs:          n,
			Events:        len(w.Events),
			CandPerEvent:  float64(run.Stats.Scanned) / nev,
			PrunedPercent: 100 * float64(run.Stats.Pruned) / pairs,
			Matched:       run.Stats.Matched,
			EventsPerSec:  nev / run.Elapsed.Seconds(),
			WallSeconds:   run.Elapsed.Seconds(),
		}
		rows = append(rows, row)
		fmt.Printf("%-10d %-8d %-18.1f %-10.2f %-10d %-12.0f %v\n",
			row.Subs, row.Events, row.CandPerEvent, row.PrunedPercent,
			row.Matched, row.EventsPerSec, run.Elapsed.Round(msRound))
	}
	fmt.Println()

	if e.benchjson != "" {
		doc := map[string]any{
			"experiment": "scale",
			"seed":       e.seed,
			"parallel":   e.parallel,
			"tiers":      rows,
		}
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		return os.WriteFile(e.benchjson, append(data, '\n'), 0o644)
	}
	return nil
}
