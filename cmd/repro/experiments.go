package main

import (
	"fmt"
	"math/rand"
	"time"

	"thematicep/internal/baseline"
	"thematicep/internal/eval"
	"thematicep/internal/event"
	"thematicep/internal/matcher"
	"thematicep/internal/semantics"
	"thematicep/internal/text"
	"thematicep/internal/vocab"
	"thematicep/internal/workload"
)

func corpusDomains() []vocab.Domain { return vocab.AllDomains() }

// runShape is the quick development check: thematic (one mid-grid theme
// combination) versus non-thematic on the same workload.
func runShape(e *env0) error {
	base := e.baseline()
	rng := rand.New(rand.NewSource(e.seed))
	var f1s, thrs []float64
	const samples = 4
	for i := 0; i < samples; i++ {
		combo := e.work.SampleThemes(rng, 5, 10)
		e.work.ApplyThemes(combo)
		e.space.ResetCaches()
		them := eval.Run(matcher.New(e.space), e.work)
		f1s = append(f1s, them.F1)
		thrs = append(thrs, them.Throughput)
	}
	e.work.ClearThemes()
	f1, f1std := eval.MeanStd(f1s)
	thr, _ := eval.MeanStd(thrs)
	fmt.Printf("== shape check: thematic (e=5, s=10; %d samples) vs non-thematic ==\n", samples)
	fmt.Printf("thematic:     F1 = %.3f (std %.3f), throughput = %.0f ev/s\n", f1, f1std, thr)
	fmt.Printf("non-thematic: F1 = %.3f, throughput = %.0f ev/s\n", base.F1, base.Throughput)
	fmt.Printf("delta:        F1 %+.1f points, throughput x%.2f\n\n",
		100*(f1-base.F1), thr/base.Throughput)
	return nil
}

// runTable1 makes Table 1 quantitative (E7): all four approaches on the
// same heterogeneous workload, plus the content-based approach on the
// homogeneous (seed) workload where full agreement holds.
func runTable1(e *env0) error {
	fmt.Println("== E7/Table 1: approaches to semantic coupling ==")

	// Content-based on the homogeneous load: exact subscriptions against
	// seed events — the 100% effectiveness regime of Table 1.
	content := baseline.ContentMatcher{}
	agree := 0.0
	for si, sub := range e.work.ExactSubs {
		scores := make([]float64, len(e.work.Seeds))
		for ei, seed := range e.work.Seeds {
			scores[ei] = content.Score(sub, seed)
		}
		agree += eval.MaxF1(scores, func(ei int) bool {
			return event.ExactMatch(e.work.ExactSubs[si], e.work.Seeds[ei])
		})
	}
	agree /= float64(len(e.work.ExactSubs))

	e.work.ClearThemes()
	e.space.ResetCaches()
	contentRes := eval.Run(scorerFunc(func(s *event.Subscription, ev *event.Event) float64 {
		return content.Score(s, ev)
	}), e.work)

	rewriter := baseline.NewRewriting(e.work.Thesaurus())
	rewriteRes := eval.Run(scorerFunc(rewriter.Score), e.work)

	nonThematic := e.baseline()

	rng := rand.New(rand.NewSource(e.seed))
	combo := e.work.SampleThemes(rng, 5, 10)
	e.work.ApplyThemes(combo)
	e.space.ResetCaches()
	thematic := eval.Run(matcher.New(e.space), e.work)
	e.work.ClearThemes()

	// Subscription-coverage cost: how many exact subscriptions the
	// approximate set is equivalent to (paper: 94 ≈ 48,000).
	equivalent := 0
	for _, s := range e.work.ApproxSubs {
		equivalent += rewriter.RewriteCount(s)
	}

	row := func(name string, f1, thr float64) {
		fmt.Printf("%-42s %-9s %s\n", name,
			fmt.Sprintf("%.1f%%", 100*f1), fmt.Sprintf("%.0f ev/s", thr))
	}
	fmt.Printf("%-42s %-9s %s\n", "approach", "F1", "throughput")
	fmt.Printf("%-42s %.0f%% (paper: 100%% under full agreement)\n",
		"content-based (homogeneous load)", 100*agree)
	row("content-based (heterogeneous load)", contentRes.F1, contentRes.Throughput)
	row("concept-based rewriting", rewriteRes.F1, rewriteRes.Throughput)
	row("approximate non-thematic", nonThematic.F1, nonThematic.Throughput)
	row("approximate thematic (e=5, s=10)", thematic.F1, thematic.Throughput)
	fmt.Printf("\n%d approximate subscriptions cover the heterogeneity of ~%d exact ones (paper: 94 -> ~48,000)\n\n",
		len(e.work.ApproxSubs), equivalent)
	return nil
}

type scorerFunc func(*event.Subscription, *event.Event) float64

func (f scorerFunc) Score(s *event.Subscription, e *event.Event) float64 { return f(s, e) }

// runPrior reproduces the prior-work comparison of §5 (E8): approximate
// matching with precomputed esa scores vs thesaurus rewriting, on 10 sets
// of 10..100 subscriptions at 50% degree of approximation.
func runPrior(e *env0) error {
	fmt.Println("== E8: prior-work comparison ([16], §5): precomputed approximate vs rewriting ==")
	rng := rand.New(rand.NewSource(e.seed + 1))

	var apprF1s, rewrF1s []float64
	var apprThr, rewrThr []float64

	rewriter := baseline.NewRewriting(e.work.Thesaurus())
	for set := 0; set < 10; set++ {
		nSubs := 10 + set*10
		subs := make([]*event.Subscription, 0, nSubs)
		for len(subs) < nSubs {
			src := e.work.ExactSubs[rng.Intn(len(e.work.ExactSubs))]
			subs = append(subs, workload.PartiallyApproximate(src, 0.5, rng))
		}
		sw := subWorkload(e.work, subs)

		// Precompute all pairwise scores, then measure pure matching time.
		e.space.ResetCaches()
		precomputePairScores(e.space, sw)
		m := matcher.New(e.space, matcher.WithThematic(false))
		res := eval.Run(m, sw)
		apprF1s = append(apprF1s, res.F1)
		apprThr = append(apprThr, res.Throughput)

		rres := eval.Run(scorerFunc(rewriter.Score), sw)
		rewrF1s = append(rewrF1s, rres.F1)
		rewrThr = append(rewrThr, rres.Throughput)
	}

	aF1, _ := eval.MeanStd(apprF1s)
	rF1, _ := eval.MeanStd(rewrF1s)
	aThr, _ := eval.MeanStd(apprThr)
	rThr, _ := eval.MeanStd(rewrThr)
	fmt.Printf("%-36s %-22s %s\n", "approach", "F1 (paper)", "throughput (paper)")
	fmt.Printf("%-36s %.1f%% (94-97%%)       %.0f ev/s (~91,000)\n",
		"approximate, precomputed scores", 100*aF1, aThr)
	fmt.Printf("%-36s %.1f%% (89-92%%)       %.0f ev/s (~19,100)\n",
		"thesaurus rewriting", 100*rF1, rThr)
	fmt.Printf("throughput ratio approximate/rewriting: measured x%.1f (paper ~x4.8)\n\n", aThr/rThr)
	return nil
}

// subWorkload clones w with a different subscription set. Ground truth is
// recomputed from the exact versions of the given subscriptions.
func subWorkload(w *workload.Workload, subs []*event.Subscription) *workload.Workload {
	return w.WithSubscriptions(subs)
}

// precomputePairScores fills the score cache with every (subscription term,
// event term) relatedness so matching is lookup-only.
func precomputePairScores(space *semantics.Space, w *workload.Workload) {
	subTerms := make(map[string]bool)
	for _, s := range w.ApproxSubs {
		for _, p := range s.Predicates {
			subTerms[text.Canonical(p.Attr)] = true
			subTerms[text.Canonical(p.Value)] = true
		}
	}
	eventTerms := make(map[string]bool)
	for _, ev := range w.Events {
		for _, t := range ev.Tuples {
			eventTerms[text.Canonical(t.Attr)] = true
			eventTerms[text.Canonical(t.Value)] = true
		}
	}
	st := make([]string, 0, len(subTerms))
	for t := range subTerms {
		st = append(st, t)
	}
	et := make([]string, 0, len(eventTerms))
	for t := range eventTerms {
		et = append(et, t)
	}
	space.PrecomputeScores(st, et)
}

// runSweep reproduces the approximation-degree observation of §5.3.2 (E9):
// lower degrees of approximation give higher throughput.
func runSweep(e *env0) error {
	fmt.Println("== E9: approximation-degree sweep (§5.3.2) ==")
	rng := rand.New(rand.NewSource(e.seed + 2))
	fmt.Printf("%-10s %-10s %s\n", "degree", "F1", "throughput")
	for _, degree := range []float64{0, 0.25, 0.5, 0.75, 1.0} {
		subs := make([]*event.Subscription, len(e.work.ExactSubs))
		for i, s := range e.work.ExactSubs {
			subs[i] = workload.PartiallyApproximate(s, degree, rng)
		}
		sw := subWorkload(e.work, subs)
		e.space.ResetCaches()
		res := eval.Run(matcher.New(e.space, matcher.WithThematic(false)), sw)
		fmt.Printf("%-10s %-10.3f %.0f ev/s\n", fmt.Sprintf("%.0f%%", 100*degree), res.F1, res.Throughput)
	}
	fmt.Println("paper: thousands of ev/s at lower degrees; worst case at 100%")
	fmt.Println()
	return nil
}

// runTopK measures the top-k hit-rate argument of §3.5 ([13]): producing
// top-k mappings increases the chance of containing the correct mapping.
func runTopK(e *env0) error {
	fmt.Println("== top-k matching mode (§3.5): correct-mapping hit rate ==")
	rng := rand.New(rand.NewSource(e.seed + 3))
	combo := e.work.SampleThemes(rng, 5, 10)
	e.work.ApplyThemes(combo)
	e.space.ResetCaches()
	m := matcher.New(e.space)

	// Sample relevant (sub, event) pairs; the correct mapping pairs each
	// predicate with the tuple holding the same attribute concept.
	type pair struct{ si, ei int }
	var pairs []pair
	for si := range e.work.ApproxSubs {
		for ei := range e.work.Events {
			if e.work.Relevant(si, ei) {
				pairs = append(pairs, pair{si, ei})
			}
		}
	}
	rng.Shuffle(len(pairs), func(i, j int) { pairs[i], pairs[j] = pairs[j], pairs[i] })
	if len(pairs) > 300 {
		pairs = pairs[:300]
	}

	ks := []int{1, 2, 3, 5}
	hits := make([]int, len(ks))
	for _, p := range pairs {
		sub := e.work.ApproxSubs[p.si]
		ev := e.work.Events[p.ei]
		mappings := m.MatchTopK(sub, ev, ks[len(ks)-1])
		for ki, k := range ks {
			for mi, mp := range mappings {
				if mi >= k {
					break
				}
				if correctMapping(e.work, sub, ev, mp) {
					hits[ki]++
					break
				}
			}
		}
	}
	e.work.ClearThemes()
	fmt.Printf("%-6s %s\n", "k", "correct mapping in top-k")
	for ki, k := range ks {
		fmt.Printf("%-6d %.1f%%\n", k, 100*float64(hits[ki])/float64(len(pairs)))
	}
	fmt.Println("(monotone non-decreasing in k reproduces the [13] argument)")
	fmt.Println()
	return nil
}

// correctMapping checks that every predicate maps to the event tuple whose
// attribute matches the predicate's attribute concept.
func correctMapping(w *workload.Workload, sub *event.Subscription, ev *event.Event, mp matcher.Mapping) bool {
	th := w.Thesaurus()
	for _, c := range mp.Pairs {
		pAttr := sub.Predicates[c.Predicate].Attr
		tAttr := ev.Tuples[c.Tuple].Attr
		if text.Canonical(pAttr) != text.Canonical(tAttr) && !th.SameConcept(pAttr, tAttr) {
			return false
		}
	}
	return true
}

// runAblation runs the design-choice ablations of DESIGN.md §4.
func runAblation(e *env0) error {
	fmt.Println("== ablations (DESIGN.md §4) ==")
	rng := rand.New(rand.NewSource(e.seed + 4))
	combo := e.work.SampleThemes(rng, 5, 10)

	type variant struct {
		name  string
		space *semantics.Space
	}
	ix := e.space.Index()
	variants := []variant{
		{name: "full (euclidean, idf recompute, caches)", space: semantics.NewSpace(ix)},
		{name: "no idf recompute", space: semantics.NewSpace(ix, semantics.WithIDFRecompute(false))},
		{name: "cosine distance", space: semantics.NewSpace(ix, semantics.WithDistance(semantics.Cosine))},
		{name: "caches disabled", space: semantics.NewSpace(ix, semantics.WithCaching(false))},
	}
	fmt.Printf("%-44s %-8s %s\n", "variant", "F1", "throughput")
	for _, v := range variants {
		e.work.ApplyThemes(combo)
		res := eval.Run(matcher.New(v.space), e.work)
		fmt.Printf("%-44s %-8.3f %.0f ev/s\n", v.name, res.F1, res.Throughput)
	}
	e.work.ClearThemes()

	// Cold start (§7 future work): first-event latency vs warm.
	coldSpace := semantics.NewSpace(ix)
	m := matcher.New(coldSpace)
	e.work.ApplyThemes(combo)
	sub := e.work.ApproxSubs[0]
	ev := e.work.Events[0]
	start := time.Now()
	m.Match(sub, ev)
	cold := time.Since(start)
	start = time.Now()
	m.Match(sub, ev)
	warm := time.Since(start)
	e.work.ClearThemes()
	fmt.Printf("cold-start first match: %v; warm repeat: %v (x%.0f)\n\n",
		cold, warm, float64(cold)/float64(warm+1))
	return nil
}

// runTagging compares uniform and Zipf (realistic) tag sampling (§7 future
// work).
func runTagging(e *env0) error {
	fmt.Println("== tagging behaviour: uniform vs zipf tag popularity (§7) ==")
	m := matcher.New(e.space)
	sizes := []int{3, 10}
	for _, zipf := range []bool{false, true} {
		cells := eval.RunGrid(m, e.space, e.work, eval.GridConfig{
			Sizes:   sizes,
			Samples: e.samples,
			Seed:    e.seed,
			Zipf:    zipf,
		})
		sum := eval.Summarize(cells, e.baseline())
		name := "uniform"
		if zipf {
			name = "zipf"
		}
		fmt.Printf("%-8s mean F1 = %.3f, mean throughput = %.0f ev/s\n",
			name, sum.MeanF1, sum.MeanThroughput)
	}
	fmt.Println()
	return nil
}
