// Command repro regenerates every table and figure of the paper's
// evaluation (see DESIGN.md §3 for the experiment index).
//
// Usage:
//
//	repro -exp all                 # run everything at quick scale
//	repro -exp fig7 -full          # one experiment at paper scale
//	repro -exp headline -csvdir out
//
// Quick scale keeps the full pipeline (corpus → index → space → workload →
// grid) but reduces the event set and grid so a run completes in minutes on
// one core. -full switches to the paper-scale workload (166 seeds expanded
// to ~14.7k events, 94 subscriptions) and the 1..30 grid with 5 samples per
// cell; expect hours.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"thematicep/internal/broker"
	"thematicep/internal/corpus"
	"thematicep/internal/eval"
	"thematicep/internal/figures"
	"thematicep/internal/index"
	"thematicep/internal/matcher"
	"thematicep/internal/semantics"
	"thematicep/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "repro:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("repro", flag.ContinueOnError)
	var (
		exp      = fs.String("exp", "all", "experiment: all, fig7, fig8, fig9, fig10, baseline, headline, significance, table1, prior, sweep, topk, ablation, tagging, shape, diag, pruning, burst, scale")
		full     = fs.Bool("full", false, "paper-scale workload and grid (slow)")
		seed     = fs.Int64("seed", 7, "master seed")
		csvdir   = fs.String("csvdir", "", "directory for CSV output (optional)")
		samples  = fs.Int("samples", 0, "samples per grid cell (default 2 quick / 5 full)")
		verbose  = fs.Bool("v", false, "per-cell progress")
		parallel = fs.Int("parallel", 1, "grid workers; >1 runs cells concurrently with identical F1 results")
		benchout = fs.String("benchjson", "", "write headline metrics as JSON to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	env, err := newEnv(*full, *seed, *samples, *verbose, *csvdir)
	if err != nil {
		return err
	}
	env.parallel = *parallel
	env.benchjson = *benchout
	fmt.Printf("corpus: %d docs, %d terms; workload: %d events (%d seeds), %d subscriptions\n\n",
		env.space.Index().NumDocs(), env.space.Index().VocabSize(),
		len(env.work.Events), len(env.work.Seeds), len(env.work.ApproxSubs))

	experiments := map[string]func(*env0) error{
		"baseline":     runBaseline,
		"fig7":         runFigures, // fig7-10 share the grid run
		"fig8":         runFigures,
		"fig9":         runFigures,
		"fig10":        runFigures,
		"headline":     runHeadline,
		"table1":       runTable1,
		"prior":        runPrior,
		"sweep":        runSweep,
		"topk":         runTopK,
		"ablation":     runAblation,
		"tagging":      runTagging,
		"shape":        runShape,
		"diag":         runDiag,
		"significance": runSignificance,
		"pruning":      runPruning,
		"burst":        runBurst,
		"scale":        runScale,
	}
	if *exp == "all" {
		for _, name := range []string{"baseline", "fig7", "headline", "significance", "table1", "prior", "sweep", "topk", "ablation", "tagging", "pruning"} {
			if err := experiments[name](env); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
		}
		return nil
	}
	f, ok := experiments[*exp]
	if !ok {
		return fmt.Errorf("unknown experiment %q", *exp)
	}
	return f(env)
}

// env0 carries the shared experiment environment.
type env0 struct {
	space     *semantics.Space
	work      *workload.Workload
	full      bool
	seed      int64
	samples   int
	verbose   bool
	csvdir    string
	parallel  int
	benchjson string

	// memoized results shared between experiments
	baselineRes *eval.Result
	gridCells   []eval.Cell
	pruningRes  []brokerRun // [full scan, pruned], once runPruning has run
}

// brokerRun is one timed broker publish pass over the workload.
type brokerRun struct {
	Stats   broker.Stats
	Elapsed time.Duration
}

func newEnv(full bool, seed int64, samples int, verbose bool, csvdir string) (*env0, error) {
	ccfg := corpus.DefaultConfig()
	ix := index.Build(corpus.Generate(corpusDomains(), ccfg))
	space := semantics.NewSpace(ix)

	wcfg := quickWorkloadConfig(seed)
	if full {
		wcfg = workload.PaperConfig()
		wcfg.Seed = seed
	}
	if samples <= 0 {
		samples = 2
		if full {
			samples = 5
		}
	}
	if csvdir != "" {
		if err := os.MkdirAll(csvdir, 0o755); err != nil {
			return nil, err
		}
	}
	return &env0{
		space:   space,
		work:    workload.Generate(wcfg),
		full:    full,
		seed:    seed,
		samples: samples,
		verbose: verbose,
		csvdir:  csvdir,
	}, nil
}

func quickWorkloadConfig(seed int64) workload.Config {
	return workload.Config{
		Seed:            seed,
		SeedEvents:      80,
		ExpandedPerSeed: 6,
		Subscriptions:   40,
		MaxPredicates:   3,
	}
}

func (e *env0) gridSizes() []int {
	if e.full {
		return eval.PaperGridSizes()
	}
	return eval.DefaultGridSizes()
}

func (e *env0) progress() func(string) {
	if !e.verbose {
		return nil
	}
	return func(s string) { fmt.Println("  ", s) }
}

// baseline runs the non-thematic approximate matcher (E5).
func (e *env0) baseline() eval.Result {
	if e.baselineRes != nil {
		return *e.baselineRes
	}
	e.work.ClearThemes()
	e.space.ResetCaches()
	m := matcher.New(e.space, matcher.WithThematic(false))
	res := eval.Run(m, e.work)
	e.baselineRes = &res
	return res
}

// grid runs (and memoizes) the thematic grid (E1-E4).
func (e *env0) grid() []eval.Cell {
	if e.gridCells != nil {
		return e.gridCells
	}
	m := matcher.New(e.space)
	cfg := eval.GridConfig{
		Sizes:    e.gridSizes(),
		Samples:  e.samples,
		Seed:     e.seed,
		Progress: e.progress(),
	}
	if e.parallel > 1 {
		cfg.Parallelism = e.parallel
		ix := e.space.Index()
		cfg.NewScorer = func() (eval.Scorer, *semantics.Space) {
			sp := semantics.NewSpace(ix)
			return matcher.New(sp), sp
		}
	}
	e.gridCells = eval.RunGrid(m, e.space, e.work, cfg)
	return e.gridCells
}

func (e *env0) writeCSV(name string, cells []eval.Cell) error {
	if e.csvdir == "" {
		return nil
	}
	f, err := os.Create(filepath.Join(e.csvdir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	return figures.CSV(f, cells)
}

// writeSVG writes one figure file into the csv directory.
func (e *env0) writeSVG(name string, render func(io.Writer) error) error {
	if e.csvdir == "" {
		return nil
	}
	f, err := os.Create(filepath.Join(e.csvdir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	return render(f)
}

func runBaseline(e *env0) error {
	res := e.baseline()
	fmt.Println("== E5: non-thematic approximate baseline (§5.2.5) ==")
	fmt.Printf("paper:    F1 = 62%%, throughput = 202 events/sec\n")
	fmt.Printf("measured: F1 = %.0f%%, throughput = %.0f events/sec (%d events x %d subs in %v)\n\n",
		100*res.F1, res.Throughput, res.Events, res.Subscriptions, res.Elapsed.Round(msRound))
	return nil
}

func runFigures(e *env0) error {
	base := e.baseline()
	cells := e.grid()

	fmt.Println("== E1/Fig. 7: thematic matcher effectiveness (mean F1 per theme-size cell) ==")
	figures.Heatmap(os.Stdout, "F1 heatmap (x: event theme size, y: subscription theme size)",
		cells, func(c eval.Cell) float64 { return c.MeanF1 }, base.F1)
	fmt.Println()

	fmt.Println("== E2/Fig. 8: effectiveness sample error ==")
	var f1s, f1errs []float64
	for _, c := range cells {
		f1s = append(f1s, c.MeanF1)
		f1errs = append(f1errs, c.StdF1)
	}
	figures.Scatter(os.Stdout, "sample error vs F1", "F1", "std", f1s, f1errs)
	fmt.Println()

	fmt.Println("== E3/Fig. 9: thematic matcher throughput (mean events/sec per cell) ==")
	figures.Heatmap(os.Stdout, "throughput heatmap (x: event theme size, y: subscription theme size)",
		cells, func(c eval.Cell) float64 { return c.MeanThroughput }, base.Throughput)
	fmt.Println()

	fmt.Println("== E4/Fig. 10: throughput sample error ==")
	var thrs, thrErrs []float64
	for _, c := range cells {
		thrs = append(thrs, c.MeanThroughput)
		thrErrs = append(thrErrs, c.StdThroughput)
	}
	figures.Scatter(os.Stdout, "sample error vs throughput", "events/sec", "std", thrs, thrErrs)
	fmt.Println()

	if err := e.writeCSV("grid.csv", cells); err != nil {
		return err
	}
	for _, fig := range []struct {
		name   string
		render func(io.Writer) error
	}{
		{name: "fig7.svg", render: func(w io.Writer) error {
			return figures.HeatmapSVG(w, "Fig. 7: thematic F1 by theme sizes", cells,
				func(c eval.Cell) float64 { return c.MeanF1 }, base.F1)
		}},
		{name: "fig8.svg", render: func(w io.Writer) error {
			return figures.ScatterSVG(w, "Fig. 8: effectiveness sample error", "F1", "std", f1s, f1errs)
		}},
		{name: "fig9.svg", render: func(w io.Writer) error {
			return figures.HeatmapSVG(w, "Fig. 9: thematic throughput by theme sizes", cells,
				func(c eval.Cell) float64 { return c.MeanThroughput }, base.Throughput)
		}},
		{name: "fig10.svg", render: func(w io.Writer) error {
			return figures.ScatterSVG(w, "Fig. 10: throughput sample error", "events/sec", "std", thrs, thrErrs)
		}},
	} {
		if err := e.writeSVG(fig.name, fig.render); err != nil {
			return err
		}
	}
	return nil
}

// brokerPass publishes every workload event through a broker holding both
// the exact and the fully approximate subscriptions, with the pruning index
// on or off, and returns the broker counters and the publish wall time.
// Subscriber queues are minimal (the pass measures matching, not delivery
// consumption; drop-oldest keeps Publish non-blocking), and Matched counts
// are comparable across passes because matching is queue-independent.
func (e *env0) brokerPass(pruning bool) (brokerRun, error) {
	e.space.ResetCaches()
	m := matcher.New(e.space)
	b := broker.New(
		broker.PreparedStream(
			m.Score, m.PrepareSubscription, m.PrepareEvent, m.ScorePrepared, m.ScoreBatch,
			m.NewEventBatch, m.PrepareEventInBatch, m.NewBatchArena, m.ScoreBatchInArena,
			m.FinishEventBatch),
		broker.WithPruning(pruning),
		broker.WithReplayBuffer(0),
		broker.WithQueueSize(1),
	)
	defer b.Close()
	for i := range e.work.ExactSubs {
		if _, err := b.Subscribe(e.work.ExactSubs[i]); err != nil {
			return brokerRun{}, err
		}
		if _, err := b.Subscribe(e.work.ApproxSubs[i]); err != nil {
			return brokerRun{}, err
		}
	}
	start := time.Now()
	for _, ev := range e.work.Events {
		if err := b.Publish(ev); err != nil {
			return brokerRun{}, err
		}
	}
	return brokerRun{Stats: b.Stats(), Elapsed: time.Since(start)}, nil
}

// pruningComparison runs (and memoizes) the two broker passes over a
// sampled theme combination. Match counts must agree exactly: pruning only
// skips pairs that provably score zero.
func (e *env0) pruningComparison() ([]brokerRun, error) {
	if e.pruningRes != nil {
		return e.pruningRes, nil
	}
	combo := e.work.SampleThemes(rand.New(rand.NewSource(e.seed)), 2, 1)
	e.work.ApplyThemes(combo)
	defer e.work.ClearThemes()

	full, err := e.brokerPass(false)
	if err != nil {
		return nil, err
	}
	pruned, err := e.brokerPass(true)
	if err != nil {
		return nil, err
	}
	if full.Stats.Matched != pruned.Stats.Matched {
		return nil, fmt.Errorf("pruning changed matches: %d full scan vs %d pruned",
			full.Stats.Matched, pruned.Stats.Matched)
	}
	e.pruningRes = []brokerRun{full, pruned}
	return e.pruningRes, nil
}

// runPruning compares broker publish throughput with the subscription
// pruning index on and off (E7; the §7 "efficient indexing for thematic
// projection" direction).
func runPruning(e *env0) error {
	runs, err := e.pruningComparison()
	if err != nil {
		return err
	}
	full, pruned := runs[0], runs[1]

	nev := float64(len(e.work.Events))
	fmt.Println("== E7: broker candidate pruning (subindex; §7 indexing direction) ==")
	fmt.Printf("subscriptions: %d exact + %d approximate; events: %d\n",
		len(e.work.ExactSubs), len(e.work.ApproxSubs), len(e.work.Events))
	fmt.Printf("full scan: %d pairs scored, %d matches, %.0f events/sec\n",
		full.Stats.Scanned, full.Stats.Matched, nev/full.Elapsed.Seconds())
	fmt.Printf("pruned:    %d pairs scored (%d pruned, %.0f%%), %d matches, %.0f events/sec\n",
		pruned.Stats.Scanned, pruned.Stats.Pruned,
		100*float64(pruned.Stats.Pruned)/float64(full.Stats.Scanned),
		pruned.Stats.Matched, nev/pruned.Elapsed.Seconds())
	fmt.Println()
	return nil
}

func runHeadline(e *env0) error {
	base := e.baseline()
	sum := eval.Summarize(e.grid(), base)
	fmt.Println("== E6: headline claims (§abstract, §5.3) ==")
	rows := []struct {
		metric, paper string
		measured      string
	}{
		{"max F1 (thematic)", "~85%", fmt.Sprintf("%.0f%%", 100*sum.MaxF1)},
		{"mean F1 (thematic)", "71%", fmt.Sprintf("%.0f%%", 100*sum.MeanF1)},
		{"baseline F1 (non-thematic)", "62%", fmt.Sprintf("%.0f%%", 100*base.F1)},
		{"F1 cells above baseline", ">70%", fmt.Sprintf("%.0f%%", 100*sum.FracF1AboveBaseline)},
		{"mean throughput (thematic)", "320 ev/s", fmt.Sprintf("%.0f ev/s", sum.MeanThroughput)},
		{"baseline throughput", "202 ev/s", fmt.Sprintf("%.0f ev/s", base.Throughput)},
		{"throughput cells above baseline", ">92%", fmt.Sprintf("%.0f%%", 100*sum.FracThroughputAboveBaseline)},
		{"throughput improvement", "~150%", fmt.Sprintf("%.0f%%", 100*(sum.MeanThroughput/base.Throughput-1))},
		{"F1 improvement (mean)", "~15%", fmt.Sprintf("%.0f%%", 100*(sum.MeanF1-base.F1))},
	}
	fmt.Printf("%-34s %-12s %s\n", "metric", "paper", "measured")
	for _, r := range rows {
		fmt.Printf("%-34s %-12s %s\n", r.metric, r.paper, r.measured)
	}
	fmt.Println()
	if e.benchjson != "" {
		return writeBenchJSON(e, base, sum)
	}
	return nil
}

// writeBenchJSON emits the headline metrics in a flat machine-readable form
// for CI artifact tracking, plus the broker pruning comparison (E7) and a
// per-grid-cell breakdown (wall time and projection-cache hit rate) so cost
// regressions can be localized to a theme-size regime, not just the mean.
func writeBenchJSON(e *env0, base eval.Result, sum eval.GridSummary) error {
	cells := e.grid()
	grid := make([]map[string]any, 0, len(cells))
	var wallTotal time.Duration
	for _, c := range cells {
		wallTotal += c.Wall
		grid = append(grid, map[string]any{
			"event_size":      c.EventSize,
			"sub_size":        c.SubSize,
			"mean_f1":         c.MeanF1,
			"mean_throughput": c.MeanThroughput,
			"wall_seconds":    c.Wall.Seconds(),
			"proj_hit_rate":   c.ProjHitRate,
		})
	}
	doc := map[string]any{
		"experiment":          "headline",
		"full":                e.full,
		"seed":                e.seed,
		"samples":             e.samples,
		"parallel":            e.parallel,
		"baseline_f1":         base.F1,
		"baseline_throughput": base.Throughput,
		"mean_f1":             sum.MeanF1,
		"max_f1":              sum.MaxF1,
		"mean_throughput":     sum.MeanThroughput,
		"max_throughput":      sum.MaxThroughput,
		"frac_f1_above":       sum.FracF1AboveBaseline,
		"frac_thr_above":      sum.FracThroughputAboveBaseline,
		"grid_wall_seconds":   wallTotal.Seconds(),
		"grid_cells":          grid,
	}
	if runs, err := e.pruningComparison(); err == nil {
		full, pruned := runs[0], runs[1]
		nev := float64(len(e.work.Events))
		doc["broker_scanned_full"] = full.Stats.Scanned
		doc["broker_scanned_pruned"] = pruned.Stats.Scanned
		doc["broker_pruned_pairs"] = pruned.Stats.Pruned
		doc["broker_matched"] = pruned.Stats.Matched
		doc["broker_throughput_full"] = nev / full.Elapsed.Seconds()
		doc["broker_throughput_pruned"] = nev / pruned.Elapsed.Seconds()
	} else {
		fmt.Fprintln(os.Stderr, "repro: pruning comparison skipped:", err)
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(e.benchjson, append(data, '\n'), 0o644)
}

const msRound = 1000000 // one millisecond in time.Duration units
