package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"thematicep/internal/broker"
	"thematicep/internal/event"
	"thematicep/internal/query"
	"thematicep/internal/telemetry"
	"thematicep/internal/workload"
)

// runBurst drives the continuous-query engine over a generated bursty
// workload (DESIGN.md §12): a Poisson background stream with
// theme-correlated rate spikes is published through an in-process broker
// whose clock — shared with the engine — is advanced along the timeline,
// so window semantics run in simulated time while the pipeline itself
// runs at full speed. A count query thresholded between the background
// and burst window expectations must detect every burst; the report
// grades its detections (precision, recall, detection delay in simulated
// time) and measures wall-clock event-to-detection latency (publish to
// detection arrival, p50/p99).
func runBurst(e *env0) error {
	cfg := workload.DefaultBurstConfig()
	cfg.Seed = e.seed
	if e.full {
		cfg.Duration = 5 * time.Minute
		cfg.Bursts = 10
	}
	tl, err := workload.GenerateBurst(cfg)
	if err != nil {
		return err
	}

	const (
		window      = 500 * time.Millisecond
		minExpected = 5
	)
	simStart := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	clk := telemetry.NewManual(simStart)
	exact := broker.MatchFunc(func(s *event.Subscription, ev *event.Event) float64 {
		if event.ExactMatch(s, ev) {
			return 1
		}
		return 0
	})
	b := broker.New(exact,
		broker.WithClock(clk),
		broker.WithReplayBuffer(0),
		broker.WithQueueSize(8192),
	)
	defer b.Close()
	eng := query.New(b, query.WithClock(clk), query.WithFlushInterval(-1))
	defer eng.Close()

	q, err := eng.Register(&broker.QuerySpec{
		Name: "burst",
		Kind: string(query.KindCount),
		Subscription: &event.Subscription{
			Theme:      []string{cfg.Theme},
			Predicates: []event.Predicate{{Attr: "type", Value: cfg.BurstType}},
		},
		Window:      window,
		MinExpected: minExpected,
	})
	if err != nil {
		return err
	}

	// Wall-clock publish times by event ID: detection latency is measured
	// from the newest constituent's publish to the detection's arrival.
	var pubMu sync.Mutex
	wallPub := make(map[string]time.Time)

	var simOffsets []time.Duration
	var wallLat []time.Duration
	collected := make(chan struct{})
	go func() {
		defer close(collected)
		for d := range q.C() {
			now := time.Now()
			simOffsets = append(simOffsets, d.At.Sub(simStart))
			var newest time.Time
			pubMu.Lock()
			for _, ev := range d.Events {
				if at, ok := wallPub[ev.ID]; ok && at.After(newest) {
					newest = at
				}
			}
			pubMu.Unlock()
			if !newest.IsZero() {
				wallLat = append(wallLat, now.Sub(newest))
			}
		}
	}()

	// fedTotal waits until the engine has consumed n deliveries, bounding
	// the gap between the simulated clock and the window state so a
	// detection's simulated timestamp stays close to its burst.
	fed := func() uint64 {
		for _, st := range eng.Stats() {
			if st.Name == "burst" {
				return st.Fed
			}
		}
		return 0
	}
	catchUp := func(n uint64) error {
		deadline := time.Now().Add(30 * time.Second)
		for fed() < n {
			if time.Now().After(deadline) {
				return fmt.Errorf("engine stalled: fed %d of %d deliveries", fed(), n)
			}
			time.Sleep(100 * time.Microsecond)
		}
		return nil
	}

	wallStart := time.Now()
	for i, te := range tl.Events {
		clk.Advance(te.At - clk.Now().Sub(simStart))
		pubMu.Lock()
		wallPub[te.Event.ID] = time.Now()
		pubMu.Unlock()
		if err := b.Publish(te.Event); err != nil {
			return err
		}
		if i%32 == 31 {
			if err := catchUp(uint64(i + 1)); err != nil {
				return err
			}
		}
	}
	if err := catchUp(uint64(len(tl.Events))); err != nil {
		return err
	}
	// Close out the final window and stop the stream; the consumer drains
	// whatever is in flight before collected closes.
	clk.Advance(2 * window)
	eng.FlushExpired()
	wallElapsed := time.Since(wallStart)
	q.Close()
	<-collected

	sc := tl.Score(simOffsets, window+time.Second)
	p50, p99 := quantileDur(wallLat, 0.50), quantileDur(wallLat, 0.99)
	simHist := eng.DetectLatency()

	fmt.Println("== E8: burst detection over the continuous-query engine (DESIGN.md §12) ==")
	fmt.Printf("workload: %d events over %v (background %.1f ev/s, %d bursts of %v at %.0f ev/s)\n",
		len(tl.Events), cfg.Duration, cfg.BackgroundRate, cfg.Bursts, cfg.BurstLen, cfg.BurstRate)
	fmt.Printf("query: count(type=%s) over %v window, threshold %d expected events\n",
		cfg.BurstType, window, minExpected)
	fmt.Printf("detections: %d (TP %d, FP %d, FN %d) -> precision %.2f, recall %.2f\n",
		len(simOffsets), sc.TruePositives, sc.FalsePositives, sc.FalseNegatives,
		sc.Precision, sc.Recall)
	fmt.Printf("detection delay (simulated, from burst start): mean %v, max %v\n",
		sc.MeanDelay.Round(msRound), sc.MaxDelay.Round(msRound))
	fmt.Printf("event-to-detection latency (wall): p50 %v, p99 %v over %d detections\n",
		p50, p99, len(wallLat))
	fmt.Printf("pipeline: %d events in %v wall (%.0f ev/s), sim p99 %v\n\n",
		len(tl.Events), wallElapsed.Round(msRound),
		float64(len(tl.Events))/wallElapsed.Seconds(),
		time.Duration(simHist.Quantile(0.99)*float64(time.Second)).Round(msRound))

	if e.benchjson != "" {
		doc := map[string]any{
			"experiment":           "burst",
			"full":                 e.full,
			"seed":                 e.seed,
			"events":               len(tl.Events),
			"bursts":               cfg.Bursts,
			"detections":           len(simOffsets),
			"true_positives":       sc.TruePositives,
			"false_positives":      sc.FalsePositives,
			"false_negatives":      sc.FalseNegatives,
			"precision":            sc.Precision,
			"recall":               sc.Recall,
			"mean_delay_seconds":   sc.MeanDelay.Seconds(),
			"max_delay_seconds":    sc.MaxDelay.Seconds(),
			"wall_p50_seconds":     p50.Seconds(),
			"wall_p99_seconds":     p99.Seconds(),
			"pipeline_events_sec":  float64(len(tl.Events)) / wallElapsed.Seconds(),
			"wall_elapsed_seconds": wallElapsed.Seconds(),
		}
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		return os.WriteFile(e.benchjson, append(data, '\n'), 0o644)
	}
	return nil
}

// quantileDur returns the q-quantile of the samples (nearest rank), or 0
// when there are none.
func quantileDur(samples []time.Duration, q float64) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), samples...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	i := int(q * float64(len(s)-1))
	return s[i]
}
