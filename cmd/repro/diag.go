package main

import (
	"fmt"
	"math/rand"
	"sort"

	"thematicep/internal/eval"
	"thematicep/internal/matcher"
	"thematicep/internal/workload"
)

// runSignificance backs the headline F1 comparison with a paired sign test
// over per-subscription F1 (the paper's §7 "more quantitative aspects of
// evaluation" future-work item).
func runSignificance(e *env0) error {
	rng := rand.New(rand.NewSource(e.seed))
	combo := e.work.SampleThemes(rng, 5, 10)

	perSub := func(thematic bool) []float64 {
		if thematic {
			e.work.ApplyThemes(combo)
		} else {
			e.work.ClearThemes()
		}
		e.space.ResetCaches()
		m := matcher.New(e.space, matcher.WithThematic(thematic))
		scores := make([][]float64, len(e.work.ApproxSubs))
		for si, s := range e.work.ApproxSubs {
			scores[si] = make([]float64, len(e.work.Events))
			ps := m.PrepareSubscription(s)
			for ei, ev := range e.work.Events {
				scores[si][ei] = m.ScorePrepared(ps, m.PrepareEvent(ev))
			}
		}
		return eval.PerSubscriptionF1(scores, e.work.Relevant)
	}
	them := perSub(true)
	non := perSub(false)
	e.work.ClearThemes()

	r := eval.SignTest(them, non)
	mt, _ := eval.MeanStd(them)
	mn, _ := eval.MeanStd(non)
	fmt.Println("== significance: paired sign test, thematic vs non-thematic per-subscription F1 ==")
	fmt.Printf("mean F1: thematic %.3f vs non-thematic %.3f\n", mt, mn)
	fmt.Printf("sign test: %s\n", r)
	if r.Significant(0.05) {
		fmt.Println("difference significant at alpha = 0.05")
	} else {
		fmt.Println("difference NOT significant at alpha = 0.05 (expected at quick scale)")
	}
	fmt.Println()
	return nil
}

// runDiag is a development diagnostic (not a paper experiment): it contrasts
// per-subscription F1 between thematic and non-thematic modes and dumps the
// per-predicate similarities of the worst regressions.
func runDiag(e *env0) error {
	rng := rand.New(rand.NewSource(e.seed))
	combo := e.work.SampleThemes(rng, 5, 10)

	perSubF1 := func(thematic bool) []float64 {
		if thematic {
			e.work.ApplyThemes(combo)
		} else {
			e.work.ClearThemes()
		}
		e.space.ResetCaches()
		m := matcher.New(e.space, matcher.WithThematic(thematic))
		out := make([]float64, len(e.work.ApproxSubs))
		for si, s := range e.work.ApproxSubs {
			scores := make([]float64, len(e.work.Events))
			for ei, ev := range e.work.Events {
				scores[ei] = m.Score(s, ev)
			}
			out[si] = eval.MaxF1(scores, func(ei int) bool { return e.work.Relevant(si, ei) })
		}
		return out
	}

	them := perSubF1(true)
	non := perSubF1(false)

	type row struct {
		si    int
		delta float64
	}
	rows := make([]row, len(them))
	for i := range them {
		rows[i] = row{si: i, delta: them[i] - non[i]}
	}
	sort.Slice(rows, func(a, b int) bool { return rows[a].delta < rows[b].delta })

	fmt.Println("== diag: worst thematic regressions ==")
	for _, r := range rows[:minInt(5, len(rows))] {
		sub := e.work.ApproxSubs[r.si]
		fmt.Printf("sub %s: thematic %.2f vs non %.2f (delta %+.2f) rel=%d\n  %s\n",
			sub.ID, them[r.si], non[r.si], r.delta, e.work.RelevantCount(r.si), sub)
		dumpPairs(e, combo, r.si, 2)
	}
	fmt.Println("== diag: best thematic wins ==")
	for i := len(rows) - 1; i >= len(rows)-minInt(3, len(rows)); i-- {
		r := rows[i]
		sub := e.work.ApproxSubs[r.si]
		fmt.Printf("sub %s: thematic %.2f vs non %.2f (delta %+.2f)\n  %s\n",
			sub.ID, them[r.si], non[r.si], r.delta, sub)
	}
	mt, _ := eval.MeanStd(them)
	mn, _ := eval.MeanStd(non)
	fmt.Printf("mean per-sub F1: thematic %.3f non %.3f\n", mt, mn)
	return nil
}

// dumpPairs prints per-predicate similarities for up to n relevant events of
// subscription si under both modes (themes must be passed via the combo that
// was applied to the workload).
func dumpPairs(e *env0, combo workload.ThemeCombination, si, n int) {
	sub := e.work.ApproxSubs[si]
	them := matcher.New(e.space)
	non := matcher.New(e.space, matcher.WithThematic(false))
	shown := 0
	for ei, ev := range e.work.Events {
		if !e.work.Relevant(si, ei) {
			continue
		}
		e.work.ApplyThemes(combo)
		simT := them.SimilarityMatrix(sub, ev)
		e.work.ClearThemes()
		simN := non.SimilarityMatrix(sub, ev)
		fmt.Printf("    relevant event %s: %s\n", ev.ID, ev)
		for pi, p := range sub.Predicates {
			bestT, bestN := maxOf(simT[pi]), maxOf(simN[pi])
			fmt.Printf("      pred %q: best sim thematic %.3f / non %.3f\n", p.String(), bestT, bestN)
		}
		shown++
		if shown >= n {
			break
		}
	}
}

func maxOf(xs []float64) float64 {
	best := 0.0
	for _, x := range xs {
		if x > best {
			best = x
		}
	}
	return best
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
