// Command pvsmtool is an explorer for the parametric vector space model:
// it answers "why did these two terms (not) match" questions by exposing
// term vectors, thematic bases, projections, and relatedness scores.
//
// Usage:
//
//	pvsmtool stats
//	pvsmtool relatedness [-subtheme "a,b"] [-eventtheme "c,d"] <term1> <term2>
//	pvsmtool vector [-theme "a,b"] [-n 10] <term>
//	pvsmtool basis <tag>[,<tag>...]
//	pvsmtool neighbors [-theme "a,b"] [-n 10] <term>
//
// Themes are comma-separated tag lists. All output is plain text.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"thematicep/internal/corpus"
	"thematicep/internal/index"
	"thematicep/internal/semantics"
	"thematicep/internal/text"
	"thematicep/internal/vocab"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "pvsmtool:", err)
		os.Exit(1)
	}
}

type tool struct {
	corpus *corpus.Corpus
	space  *semantics.Space
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: pvsmtool <stats|relatedness|vector|basis|neighbors> ...")
	}
	fmt.Fprintln(os.Stderr, "building distributional space...")
	c := corpus.GenerateDefault()
	t := &tool{
		corpus: c,
		space:  semantics.NewSpace(index.Build(c)),
	}
	switch args[0] {
	case "stats":
		return t.stats()
	case "relatedness":
		return t.relatedness(args[1:])
	case "vector":
		return t.vector(args[1:])
	case "basis":
		return t.basis(args[1:])
	case "neighbors":
		return t.neighbors(args[1:])
	default:
		return fmt.Errorf("unknown command %q", args[0])
	}
}

func splitTheme(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, tag := range strings.Split(s, ",") {
		if tag = strings.TrimSpace(tag); tag != "" {
			out = append(out, tag)
		}
	}
	return out
}

func (t *tool) stats() error {
	ix := t.space.Index()
	kinds := map[corpus.Kind]int{}
	for _, d := range t.corpus.Docs {
		kinds[d.Kind]++
	}
	fmt.Printf("documents: %d (concept %d, domain %d, entity %d, mixed %d)\n",
		ix.NumDocs(), kinds[corpus.KindConcept], kinds[corpus.KindDomain],
		kinds[corpus.KindEntity], kinds[corpus.KindMixed])
	fmt.Printf("vocabulary: %d tokens\n", ix.VocabSize())
	fmt.Printf("evaluation domains: %s\n", strings.Join(vocab.DomainNames(), ", "))
	var distractors []string
	for _, d := range vocab.DistractorDomains() {
		distractors = append(distractors, d.Name)
	}
	fmt.Printf("distractor domains: %s\n", strings.Join(distractors, ", "))
	return nil
}

func (t *tool) relatedness(args []string) error {
	fs := flag.NewFlagSet("relatedness", flag.ContinueOnError)
	subTheme := fs.String("subtheme", "", "subscription theme tags (comma separated)")
	eventTheme := fs.String("eventtheme", "", "event theme tags (comma separated)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("relatedness: two terms expected")
	}
	a, b := fs.Arg(0), fs.Arg(1)
	st, et := splitTheme(*subTheme), splitTheme(*eventTheme)

	full := t.space.NonThematicRelatedness(a, b)
	fmt.Printf("sm(%q, %q) full space      = %.4f\n", a, b, full)
	if len(st) > 0 || len(et) > 0 {
		them := t.space.Relatedness(a, st, b, et)
		fmt.Printf("sm(%q, %q) with themes    = %.4f\n", a, b, them)
		pa := t.space.Project(a, st)
		pb := t.space.Project(b, et)
		fmt.Printf("projection dims: %q %d -> %d, %q %d -> %d\n",
			a, t.space.TermVector(a).NNZ(), pa.NNZ(),
			b, t.space.TermVector(b).NNZ(), pb.NNZ())
	}
	return nil
}

func (t *tool) vector(args []string) error {
	fs := flag.NewFlagSet("vector", flag.ContinueOnError)
	theme := fs.String("theme", "", "theme tags (comma separated); empty = full space")
	n := fs.Int("n", 10, "top components to print")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("vector: one term expected")
	}
	term := fs.Arg(0)
	v := t.space.Project(term, splitTheme(*theme))
	if v.IsZero() {
		fmt.Printf("%q has the zero vector (off-vocabulary or completely filtered)\n", term)
		return nil
	}
	fmt.Printf("%q: %d non-zero dims, norm %.3f; top %d components:\n", term, v.NNZ(), v.Norm(), *n)
	type comp struct {
		id int32
		w  float64
	}
	var comps []comp
	v.Range(func(id int32, w float64) { comps = append(comps, comp{id, w}) })
	sort.Slice(comps, func(i, j int) bool { return comps[i].w > comps[j].w })
	for i, c := range comps {
		if i >= *n {
			break
		}
		fmt.Printf("  %8.3f  %s\n", c.w, t.corpus.Docs[c.id].Title)
	}
	return nil
}

func (t *tool) basis(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("basis: one comma-separated tag list expected")
	}
	tags := splitTheme(args[0])
	basis := t.space.ThemeBasis(tags)
	fmt.Printf("theme %v selects %d of %d documents\n", tags, len(basis), t.space.Index().NumDocs())
	byDomain := map[string]int{}
	for _, id := range basis {
		d := t.corpus.Docs[id]
		key := d.Domain
		if key == "" {
			key = "(" + d.Kind.String() + ")"
		}
		byDomain[key]++
	}
	keys := make([]string, 0, len(byDomain))
	for k := range byDomain {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("  %-36s %d docs\n", k, byDomain[k])
	}
	return nil
}

func (t *tool) neighbors(args []string) error {
	fs := flag.NewFlagSet("neighbors", flag.ContinueOnError)
	theme := fs.String("theme", "", "theme tags (comma separated); empty = full space")
	n := fs.Int("n", 10, "neighbors to print")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("neighbors: one term expected")
	}
	term := fs.Arg(0)
	tags := splitTheme(*theme)

	// Candidate terms: every concept term of every domain.
	type scored struct {
		term string
		r    float64
	}
	var results []scored
	seen := map[string]bool{text.Canonical(term): true}
	for _, d := range vocab.AllDomains() {
		for _, concept := range d.Concepts {
			for _, cand := range concept.Terms() {
				key := text.Canonical(cand)
				if seen[key] {
					continue
				}
				seen[key] = true
				r := t.space.Relatedness(term, tags, cand, tags)
				if r > 0 {
					results = append(results, scored{term: cand, r: r})
				}
			}
		}
	}
	sort.Slice(results, func(i, j int) bool { return results[i].r > results[j].r })
	fmt.Printf("nearest concept terms to %q (theme %v):\n", term, tags)
	for i, s := range results {
		if i >= *n {
			break
		}
		fmt.Printf("  %.4f  %s\n", s.r, s.term)
	}
	return nil
}
