// Command benchgen generates the evaluation workload of §5.2 and exports
// it for external tools: events and subscriptions as JSON lines, the
// relevance ground truth as CSV, and a summary to stderr.
//
// Usage:
//
//	benchgen -out workload/                      # reduced default scale
//	benchgen -out workload/ -paper               # 166 seeds -> ~14.8k events
//	benchgen -out workload/ -seeds 100 -per 20 -subs 50
//	benchgen -out workload/ -themes 5,10 -samples 3
//	benchgen -out workload/ -scale 100000        # 100k-subscription scale tier
//
// Files written: seeds.jsonl, events.jsonl, subscriptions.jsonl (exact and
// approximate interleaved per line as one object), groundtruth.csv
// (subscription id, event id pairs), and themes.jsonl (sampled theme
// combinations when -themes is given).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"thematicep/internal/event"
	"thematicep/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchgen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("benchgen", flag.ContinueOnError)
	var (
		out     = fs.String("out", "workload", "output directory")
		paper   = fs.Bool("paper", false, "paper-scale workload (166 seeds, ~14.8k events, 94 subs)")
		seed    = fs.Int64("seed", 7, "generation seed")
		seeds   = fs.Int("seeds", 0, "seed events (overrides scale preset)")
		per     = fs.Int("per", 0, "expanded events per seed (overrides preset)")
		subs    = fs.Int("subs", 0, "subscriptions (overrides preset)")
		themes  = fs.String("themes", "", "theme sizes 'e,s' to sample combinations for (optional)")
		samples = fs.Int("samples", 5, "theme combinations to sample when -themes is set")
		zipf    = fs.Bool("zipf", false, "zipf-distributed theme tag sampling")
		scale   = fs.Int("scale", 0, "scale-tier population: N subscriptions (e.g. 100000) over a zipf-skewed shared vocabulary")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *scale > 0 {
		return runScale(*out, *scale, *seed)
	}

	cfg := workload.DefaultConfig()
	if *paper {
		cfg = workload.PaperConfig()
	}
	cfg.Seed = *seed
	if *seeds > 0 {
		cfg.SeedEvents = *seeds
	}
	if *per > 0 {
		cfg.ExpandedPerSeed = *per
	}
	if *subs > 0 {
		cfg.Subscriptions = *subs
	}

	w := workload.Generate(cfg)
	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}

	if err := writeJSONL(filepath.Join(*out, "seeds.jsonl"), len(w.Seeds), func(i int) any {
		return w.Seeds[i]
	}); err != nil {
		return err
	}
	if err := writeJSONL(filepath.Join(*out, "events.jsonl"), len(w.Events), func(i int) any {
		return struct {
			*event.Event
			SeedID string `json:"seedId"`
		}{Event: w.Events[i], SeedID: w.Seeds[w.SeedOf[i]].ID}
	}); err != nil {
		return err
	}
	if err := writeJSONL(filepath.Join(*out, "subscriptions.jsonl"), len(w.ApproxSubs), func(i int) any {
		return struct {
			Exact       *event.Subscription `json:"exact"`
			Approximate *event.Subscription `json:"approximate"`
		}{Exact: w.ExactSubs[i], Approximate: w.ApproxSubs[i]}
	}); err != nil {
		return err
	}
	if err := writeGroundTruth(filepath.Join(*out, "groundtruth.csv"), w); err != nil {
		return err
	}

	if *themes != "" {
		es, ss, err := parseThemeSizes(*themes)
		if err != nil {
			return err
		}
		rng := rand.New(rand.NewSource(*seed))
		if err := writeJSONL(filepath.Join(*out, "themes.jsonl"), *samples, func(int) any {
			if *zipf {
				return w.SampleThemesZipf(rng, es, ss)
			}
			return w.SampleThemes(rng, es, ss)
		}); err != nil {
			return err
		}
	}

	relevant := 0
	for si := range w.ApproxSubs {
		relevant += w.RelevantCount(si)
	}
	fmt.Fprintf(os.Stderr, "wrote %s: %d seeds, %d events, %d subscriptions, %d relevant pairs\n",
		*out, len(w.Seeds), len(w.Events), len(w.ApproxSubs), relevant)
	return nil
}

// runScale exports a scale-tier population (workload.GenerateScale):
// plain subscriptions.jsonl / events.jsonl, no expansion ground truth —
// the tier exists to load-test matching at 100k+ subscriptions, not to
// measure effectiveness.
func runScale(out string, n int, seed int64) error {
	cfg := workload.DefaultScaleConfig(n)
	cfg.Seed = seed
	w := workload.GenerateScale(cfg)
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	if err := writeJSONL(filepath.Join(out, "subscriptions.jsonl"), len(w.Subs), func(i int) any {
		return w.Subs[i]
	}); err != nil {
		return err
	}
	if err := writeJSONL(filepath.Join(out, "events.jsonl"), len(w.Events), func(i int) any {
		return w.Events[i]
	}); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s: scale tier, %d subscriptions, %d events\n",
		out, len(w.Subs), len(w.Events))
	return nil
}

func parseThemeSizes(s string) (e, sub int, err error) {
	parts := strings.Split(s, ",")
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("themes: want 'e,s', got %q", s)
	}
	if e, err = strconv.Atoi(strings.TrimSpace(parts[0])); err != nil {
		return 0, 0, fmt.Errorf("themes: %w", err)
	}
	if sub, err = strconv.Atoi(strings.TrimSpace(parts[1])); err != nil {
		return 0, 0, fmt.Errorf("themes: %w", err)
	}
	return e, sub, nil
}

func writeJSONL(path string, n int, item func(i int) any) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	for i := 0; i < n; i++ {
		if err := enc.Encode(item(i)); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
	}
	return f.Close()
}

func writeGroundTruth(path string, w *workload.Workload) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := fmt.Fprintln(f, "subscription_id,event_id"); err != nil {
		return err
	}
	for si, sub := range w.ApproxSubs {
		for ei, ev := range w.Events {
			if w.Relevant(si, ei) {
				if _, err := fmt.Fprintf(f, "%s,%s\n", sub.ID, ev.ID); err != nil {
					return err
				}
			}
		}
	}
	return f.Close()
}
