// Command thematicd is the thematic event broker daemon: it builds the
// distributional space, wires the thematic approximate matcher into a
// publish/subscribe broker, and serves the wire protocol over TCP.
//
// Usage:
//
//	thematicd -addr 127.0.0.1:7070 -threshold 0.2
//
// Clients (for example cmd/themctl) publish events and register thematic
// subscriptions; the daemon delivers matching events asynchronously.
//
// With -peers, the daemon joins a theme-sharded federation: each broker
// owns a consistent-hash shard of the theme space, and events are
// forwarded only to the peers whose shard overlaps their theme tags:
//
//	thematicd -addr :7070 -advertise host1:7070 -peers host2:7070,host3:7070
package main

import (
	"context"
	"encoding/json"
	"expvar"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"thematicep/internal/broker"
	"thematicep/internal/cluster"
	"thematicep/internal/corpus"
	"thematicep/internal/faultinject"
	"thematicep/internal/index"
	"thematicep/internal/matcher"
	"thematicep/internal/query"
	"thematicep/internal/semantics"
	"thematicep/internal/telemetry"
	"thematicep/internal/vocab"
	"thematicep/internal/wal"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "thematicd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("thematicd", flag.ContinueOnError)
	var (
		addr      = fs.String("addr", "127.0.0.1:7070", "listen address")
		threshold = fs.Float64("threshold", 0.2, "minimum match score for delivery")
		thematic  = fs.Bool("thematic", true, "use theme tags (false = non-thematic baseline)")
		replay    = fs.Int("replay", 256, "replay buffer size (0 disables)")
		queue     = fs.Int("queue", 64, "per-subscriber queue size")
		seed      = fs.Int64("seed", 42, "corpus generation seed")
		indexPath = fs.String("index", "", "index cache file: loaded when present, written after indexing")
		metrics   = fs.String("metrics", "", "optional HTTP address serving /metrics (Prometheus text format)")
		peers     = fs.String("peers", "", "comma-separated peer broker addresses, kept as static seed links for the gossiped membership (enables theme-sharded federation)")
		seeds     = fs.String("seeds", "", "comma-separated seed broker addresses to join an existing federation through gossip (enables federation; the rest of the membership is discovered)")
		suspectT  = fs.Duration("suspect-timeout", 10*time.Second, "membership: how long an unreachable member stays suspect before it is declared dead and its shards rebalance")
		dataDir   = fs.String("data-dir", "", "durable state directory: subscription/query registrations are journaled (WAL + snapshot) and replayed on restart (empty disables durability)")
		fsyncPol  = fs.String("fsync", "always", "with -data-dir: WAL fsync policy — always, never, or a flush interval like 100ms")
		walSnap   = fs.Int("wal-snapshot", 4096, "with -data-dir: snapshot and truncate the WAL after this many appended records")
		advertise = fs.String("advertise", "", "address peers dial for this broker (shard identity; defaults to -addr)")
		parallel  = fs.Int("match-parallelism", 0, "matching worker pool size per publish (0 = GOMAXPROCS, 1 = serial)")
		pruning   = fs.Bool("pruning", true, "prune per-publish candidates via the subscription index (recall-preserving)")
		traceN    = fs.Int("trace-sample", 0, "record a pipeline trace for 1 in N published events (0 disables; see /debug/traces)")
		drainT    = fs.Duration("drain-timeout", 5*time.Second, "max time to flush subscriber queues on SIGTERM before closing anyway")
		shedMark  = fs.Int("shed-watermark", 0, "shed publishes with an overload error when the match pipeline is saturated and this many are in flight (0 disables)")
		maxBatch  = fs.Int("max-batch", broker.DefaultMaxBatch, "largest event batch accepted per publishb frame; oversized batches are rejected whole (<=0 disables the cap)")
		chaos     = fs.String("chaos", "", "fault injection on peer links, e.g. seed=42,latency=2ms,stall=0.01,stallfor=250ms,reset=0.005,corrupt=0.01 (testing only)")
		queryTick = fs.Duration("query-tick", time.Second, "continuous-query flush interval: quiet streams fire pending negation/aggregate windows this often (<=0 disables)")
		sloT      = fs.Duration("slo", 0, "latency SLO threshold: publishes (and CEP detections) slower than this burn error budget, exposed as thematicep_slo_* (0 disables)")
		sloObj    = fs.Float64("slo-objective", 0.99, "with -slo: fraction of observations that must meet the threshold")
		profDir   = fs.String("prof-dir", "", "continuous profiling: directory for the bounded ring of CPU/heap pprof captures, served at /debug/prof/ring (empty disables)")
		profEvery = fs.Duration("prof-interval", 0, "with -prof-dir: capture cadence (0 = only on SLO burn or manual trigger)")
		profKeep  = fs.Int("prof-keep", 16, "with -prof-dir: max profile files kept on disk")
		profCPU   = fs.Duration("prof-cpu", 2*time.Second, "with -prof-dir: CPU sampling duration per capture")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	// The shard identity doubles as the tracer's node label, so trace
	// fragments merged across the federation stay attributable.
	self := *advertise
	if self == "" {
		self = *addr
	}

	// Open the durability layer first: the WAL replays under the previous
	// run's registrations so they can be re-registered before the listener
	// accepts traffic, and the broker journals through it from its first
	// subscribe.
	var wlog *wal.Log
	var recovered wal.State
	if *dataDir != "" {
		pol, err := wal.ParseFsyncPolicy(*fsyncPol)
		if err != nil {
			return err
		}
		wlog, recovered, err = wal.Open(*dataDir, wal.Options{Fsync: pol, SnapshotEvery: *walSnap})
		if err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		defer wlog.Close()
		ws := wlog.Stats()
		fmt.Fprintf(os.Stderr, "wal: %s replayed %d record(s) (%d subscription(s), %d query(ies))",
			*dataDir, ws.Replayed, len(recovered.Subs), len(recovered.Queries))
		if ws.Truncated > 0 {
			fmt.Fprintf(os.Stderr, "; truncated %d byte(s) of torn tail", ws.Truncated)
		}
		fmt.Fprintln(os.Stderr)
	}

	ix, err := loadOrBuildIndex(*indexPath, *seed)
	if err != nil {
		return err
	}
	space := semantics.NewSpace(ix)
	m := matcher.New(space, matcher.WithThematic(*thematic))

	opts := []broker.Option{
		broker.WithThreshold(*threshold),
		broker.WithReplayBuffer(*replay),
		broker.WithQueueSize(*queue),
		broker.WithPruning(*pruning),
	}
	if *parallel > 0 {
		opts = append(opts, broker.WithMatchParallelism(*parallel))
	}
	if *traceN > 0 {
		opts = append(opts, broker.WithTraceSampling(*traceN, telemetry.WithNode(self)))
	}
	if *shedMark > 0 {
		opts = append(opts, broker.WithShedWatermark(*shedMark))
	}
	if wlog != nil {
		opts = append(opts, broker.WithJournal(wlog))
	}
	var deliverySLO, detectionSLO *telemetry.SLO
	if *sloT > 0 {
		deliverySLO = telemetry.NewSLO("delivery", *sloObj, *sloT)
		detectionSLO = telemetry.NewSLO("detection", *sloObj, *sloT)
		opts = append(opts, broker.WithDeliverySLO(deliverySLO))
	}
	// The PreparedStream adapter turns on the broker's prepare-once fast
	// path (subscriptions canonicalized and theme-compiled at Subscribe
	// time, events once per publish), columnar batch scoring of each
	// event's candidate set, and the batch-scope interning/memo contexts
	// behind PublishBatch.
	b := broker.New(broker.PreparedStream(
		m.Score, m.PrepareSubscription, m.PrepareEvent, m.ScorePrepared, m.ScoreBatch,
		m.NewEventBatch, m.PrepareEventInBatch, m.NewBatchArena, m.ScoreBatchInArena,
		m.FinishEventBatch), opts...)
	defer b.Close()

	srv := broker.NewServer(b)
	srv.SetMaxBatch(*maxBatch)

	splitAddrs := func(s string) []string {
		var out []string
		for _, p := range strings.Split(s, ",") {
			if p = strings.TrimSpace(p); p != "" {
				out = append(out, p)
			}
		}
		return out
	}
	var node *cluster.Node
	var collectors []broker.Collector
	if *peers != "" || *seeds != "" {
		ccfg := cluster.Config{
			Self:           self,
			Peers:          splitAddrs(*peers),
			Seeds:          splitAddrs(*seeds),
			SuspectTimeout: *suspectT,
			MetricsAddr:    *metrics,
		}
		if *chaos != "" {
			fcfg, err := faultinject.ParseSpec(*chaos)
			if err != nil {
				return fmt.Errorf("-chaos: %w", err)
			}
			inj := faultinject.New(fcfg)
			ccfg.Dial = inj.Dialer(func(addr string) (net.Conn, error) {
				return net.DialTimeout("tcp", addr, 2*time.Second)
			})
			fmt.Fprintf(os.Stderr, "CHAOS: peer links run through fault injection (%s)\n", *chaos)
		}
		node, err = cluster.New(b, ccfg)
		if err != nil {
			return err
		}
		srv.SetBackend(node)
		srv.SetPeerHandler(node)
		collectors = append(collectors, node)
	}

	// The continuous-query engine runs over the clustered backend when
	// federated (so a registered query sees the same deliveries a
	// subscriber would) and hooks the broker's drain so pending
	// negation/aggregate windows fire before shutdown.
	var backend broker.Backend = b
	if node != nil {
		backend = node
	}
	qopts := []query.Option{
		query.WithFlushInterval(*queryTick),
		query.WithTracer(b.Tracer()),
		query.WithDetectionSLO(detectionSLO),
	}
	if wlog != nil {
		qopts = append(qopts, query.WithJournal(wlog))
	}
	eng := query.New(backend, qopts...)
	defer eng.Close()
	srv.SetQueryRegistrar(eng)
	b.OnDrain(eng.Drain)
	collectors = append(collectors, eng)

	// Recovery: re-register everything the WAL says we hosted, parked for
	// adoption by reconnecting clients, before the listener accepts traffic
	// — a crashed broker serves its pre-crash registrations (matching,
	// federation handoff, CEP windows) without anyone re-subscribing.
	if wlog != nil {
		rec := broker.NewRecovered()
		for id, sub := range recovered.Subs {
			h, err := backend.SubscribeHandle(sub)
			if err != nil {
				fmt.Fprintf(os.Stderr, "wal: re-register subscription %s: %v\n", id, err)
				continue
			}
			rec.ParkSub(h)
		}
		for name, spec := range recovered.Queries {
			q, err := eng.Register(spec)
			if err != nil {
				fmt.Fprintf(os.Stderr, "wal: re-register query %s: %v\n", name, err)
				continue
			}
			rec.ParkQuery(q)
		}
		srv.SetRecovered(rec)
		// Collapse the re-registration appends back into one snapshot.
		if err := wlog.Snapshot(); err != nil {
			return fmt.Errorf("wal: snapshot after recovery: %w", err)
		}
		collectors = append(collectors, wlog)
		if subs, queries := rec.Counts(); subs+queries > 0 {
			fmt.Fprintf(os.Stderr, "wal: serving %d recovered subscription(s) and %d query(ies), awaiting client re-attach\n", subs, queries)
		}
	}

	bound, err := srv.Listen(*addr)
	if err != nil {
		return err
	}
	defer srv.Close()
	fmt.Fprintf(os.Stderr, "thematicd listening on %s (thematic=%v threshold=%.2f)\n",
		bound, *thematic, *threshold)
	if node != nil {
		node.Start()
		defer node.Close()
		fmt.Fprintf(os.Stderr, "federation: shard %s (peers=%s seeds=%s suspect-timeout=%s)\n",
			node.ID(), *peers, *seeds, *suspectT)
	}

	// Continuous profiling: a bounded on-disk ring of CPU/heap captures,
	// filled on cadence and whenever an SLO pages (red status), so the
	// profile of an incident is on disk before anyone starts debugging it.
	var prof *telemetry.Profiler
	if *profDir != "" {
		prof, err = telemetry.NewProfiler(*profDir, *profKeep, *profCPU)
		if err != nil {
			return err
		}
		profCtx, profCancel := context.WithCancel(context.Background())
		defer profCancel()
		go prof.Run(profCtx, *profEvery)
		if deliverySLO != nil {
			go func() {
				t := time.NewTicker(15 * time.Second)
				defer t.Stop()
				for {
					select {
					case <-profCtx.Done():
						return
					case <-t.C:
						if deliverySLO.Status() == telemetry.SLORed {
							prof.Trigger("slo-burn:delivery")
						} else if detectionSLO.Status() == telemetry.SLORed {
							prof.Trigger("slo-burn:detection")
						}
					}
				}
			}()
		}
		fmt.Fprintf(os.Stderr, "profiling into %s (keep %d, cadence %s)\n", *profDir, *profKeep, *profEvery)
	}

	if *metrics != "" {
		// Process runtime health and the SLO burn state ride the same scrape
		// as the pipeline families.
		collectors = append(collectors, telemetry.NewRuntimeCollector(""))
		if deliverySLO != nil {
			collectors = append(collectors, deliverySLO, detectionSLO)
		}
		mux := http.NewServeMux()
		// The space is a collector too: cache hit/miss/occupancy and
		// single-flight coalescing land on the same scrape.
		mux.Handle("/metrics", broker.MetricsHandler(b, append(collectors, space)...))
		mux.Handle("/debug/traces", b.TracesHandler())
		// /debug/peers is the cluster scrape directory themctl's -cluster
		// and trace modes discover the federation from; a single node serves
		// a one-row directory so the same tooling works unclustered.
		if node != nil {
			mux.Handle("/debug/peers", node.PeersHandler())
		} else {
			mux.HandleFunc("/debug/peers", func(w http.ResponseWriter, r *http.Request) {
				w.Header().Set("Content-Type", "application/json")
				json.NewEncoder(w).Encode([]cluster.PeerInfo{{Node: self, Metrics: *metrics, Self: true}})
			})
		}
		if prof != nil {
			mux.Handle("/debug/prof/ring", prof.Handler())
		}
		mux.Handle("/debug/vars", expvar.Handler())
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		msrv := &http.Server{Addr: *metrics, Handler: mux}
		go func() {
			if err := msrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "thematicd: metrics:", err)
			}
		}()
		defer msrv.Close()
		fmt.Fprintf(os.Stderr, "metrics on http://%s/metrics (traces: /debug/traces, peers: /debug/peers, pprof: /debug/pprof/, expvar: /debug/vars)\n", *metrics)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig

	// Freeze the durable state at the moment shutdown begins: snapshot the
	// live registrations, then seal the log so the teardown's unsubscribe
	// storm (every connection closing) cannot erase registrations a restart
	// must recover. Clients connected right now expect to find their
	// subscriptions after a rolling restart.
	if wlog != nil {
		if err := wlog.Snapshot(); err != nil {
			fmt.Fprintf(os.Stderr, "wal: shutdown snapshot: %v\n", err)
		}
		wlog.Seal()
	}

	// Graceful drain: refuse new publishes, flush what subscribers already
	// have queued, then close — bounded by -drain-timeout so a stuck
	// consumer cannot hold shutdown hostage. The deferred server/node
	// closes run after the broker has stopped admitting work.
	fmt.Fprintf(os.Stderr, "draining (timeout %s)...\n", *drainT)
	ctx, cancel := context.WithTimeout(context.Background(), *drainT)
	if err := b.Drain(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "drain: gave up after %s: %v\n", *drainT, err)
	} else {
		fmt.Fprintln(os.Stderr, "drain: subscriber queues flushed")
	}
	cancel()

	st := b.Stats()
	fmt.Fprintf(os.Stderr, "shutting down: published=%d scanned=%d pruned=%d matched=%d delivered=%d dropped=%d shed=%d\n",
		st.Published, st.Scanned, st.Pruned, st.Matched, st.Delivered, st.Dropped, st.Shed)
	if node != nil {
		cs := node.Stats()
		fmt.Fprintf(os.Stderr, "federation: forwarded=%d shed=%d received=%d deduped=%d reconnects=%d queueDrops=%d breakerTrips=%d\n",
			cs.Forwarded, cs.ForwardsShed, cs.Received, cs.Deduped, cs.PeerReconnects, cs.QueueDrops, cs.BreakerTrips)
	}
	for _, qs := range eng.Stats() {
		fmt.Fprintf(os.Stderr, "query %s (%s): fed=%d deduped=%d detections=%d dropped=%d window=%d\n",
			qs.Name, qs.Kind, qs.Fed, qs.Deduped, qs.Detections, qs.Dropped, qs.Occupancy)
	}
	return nil
}

// loadOrBuildIndex loads a cached index when path exists, otherwise builds
// one from the corpus (and caches it when a path was given). Caching
// addresses the cold-start cost of indexing (§7 future work).
func loadOrBuildIndex(path string, seed int64) (*index.Index, error) {
	if path != "" {
		if f, err := os.Open(path); err == nil {
			defer f.Close()
			fmt.Fprintf(os.Stderr, "loading index from %s...\n", path)
			ix, err := index.ReadFrom(f)
			if err != nil {
				return nil, fmt.Errorf("load index: %w", err)
			}
			return ix, nil
		}
	}
	fmt.Fprintln(os.Stderr, "building distributional space...")
	ccfg := corpus.DefaultConfig()
	ccfg.Seed = seed
	ix := index.Build(corpus.Generate(vocab.AllDomains(), ccfg))
	if path != "" {
		f, err := os.Create(path)
		if err != nil {
			return nil, fmt.Errorf("cache index: %w", err)
		}
		defer f.Close()
		if _, err := ix.WriteTo(f); err != nil {
			return nil, fmt.Errorf("cache index: %w", err)
		}
		fmt.Fprintf(os.Stderr, "cached index to %s\n", path)
	}
	return ix, nil
}
