// Command themctl is the client CLI for a thematicd broker.
//
// Usage:
//
//	themctl publish -addr 127.0.0.1:7070 '<event>'
//	themctl publish -addr 127.0.0.1:7070 -batch -f events.txt [-batch-size 256]
//	themctl subscribe -addr 127.0.0.1:7070 [-replay] '<subscription>'
//	themctl query -addr 127.0.0.1:7070 -name surge -kind count -window 30s -min 3 '<subscription>'
//	themctl match '<subscription>' '<event>'
//	themctl stats -metrics http://127.0.0.1:9090 [-lint] [-traces] [-raw] [-cluster] [-watch 2s]
//	themctl trace -metrics http://127.0.0.1:9090 '<event-id or trace-id>'
//
// Events and subscriptions use the paper's notation, e.g.
//
//	themctl publish '({energy}, {type: increased energy consumption event, device: computer})'
//	themctl subscribe '({power}, {type = increased energy usage event~, device~ = laptop~})'
//
// subscribe streams deliveries to stdout until interrupted. query
// registers a continuous query (count, sequence, conjunction, negation)
// fed by the subscription's matches and streams its detections; on a
// clustered broker both follow redirects to the owning theme shard.
// match runs a local one-shot match (no broker needed) and prints the
// top-1 mapping.
// stats scrapes a daemon's metrics endpoint and prints pipeline counters,
// latency quantiles, SLO burn state, runtime health, cache hit rates, and
// recent pipeline traces; -cluster merges every federation member's scrape
// and -watch streams per-second rate deltas.
// trace reassembles a sampled publish's span tree across the whole
// federation by trace ID or any member event ID.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"thematicep/internal/broker"
	"thematicep/internal/corpus"
	"thematicep/internal/event"
	"thematicep/internal/index"
	"thematicep/internal/matcher"
	"thematicep/internal/semantics"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "themctl:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: themctl <publish|subscribe|match> ...")
	}
	switch args[0] {
	case "publish":
		return runPublish(args[1:])
	case "subscribe":
		return runSubscribe(args[1:])
	case "match":
		return runMatch(args[1:])
	case "query":
		return runQuery(args[1:])
	case "stats":
		return runStats(args[1:])
	case "trace":
		return runTrace(args[1:])
	default:
		return fmt.Errorf("unknown command %q (want publish, subscribe, query, match, stats, or trace)", args[0])
	}
}

func runPublish(args []string) error {
	fs := flag.NewFlagSet("publish", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:7070", "broker address")
	timeout := fs.Duration("timeout", 0, "per-request timeout; fail fast instead of hanging on a wedged daemon (0 = wait forever)")
	batch := fs.Bool("batch", false, "batched ingest: read events from -f and publish them as publishb frames")
	file := fs.String("f", "", "with -batch: file of events, one per line in the paper's notation (- for stdin)")
	batchSize := fs.Int("batch-size", 256, "with -batch: events per publishb frame (capped by the daemon's -max-batch)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *batch {
		if fs.NArg() != 0 {
			return fmt.Errorf("publish -batch: events come from -f, not arguments")
		}
		if *file == "" {
			return fmt.Errorf("publish -batch: -f <file> is required (- for stdin)")
		}
		if *batchSize < 1 {
			return fmt.Errorf("publish -batch: -batch-size must be >= 1")
		}
		return publishBatchFile(*addr, *timeout, *file, *batchSize)
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("publish: exactly one event argument expected")
	}
	ev, err := event.ParseEvent(fs.Arg(0))
	if err != nil {
		return err
	}
	c, err := broker.DialTimeout(*addr, *timeout)
	if err != nil {
		return err
	}
	defer c.Close()
	if err := c.Publish(ev); err != nil {
		return err
	}
	fmt.Println("published:", ev)
	return nil
}

// publishBatchFile streams a file of line-delimited events (the paper's
// notation, blank lines and #-comments skipped) to the broker as publishb
// frames of batchSize events each. The whole file is parsed before the
// first frame goes out, so a syntax error publishes nothing.
func publishBatchFile(addr string, timeout time.Duration, path string, batchSize int) error {
	var data []byte
	var err error
	if path == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(path)
	}
	if err != nil {
		return err
	}
	var events []*event.Event
	for i, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		ev, err := event.ParseEvent(line)
		if err != nil {
			return fmt.Errorf("line %d: %w", i+1, err)
		}
		events = append(events, ev)
	}
	if len(events) == 0 {
		return fmt.Errorf("publish -batch: no events in %s", path)
	}
	c, err := broker.DialTimeout(addr, timeout)
	if err != nil {
		return err
	}
	defer c.Close()
	batches := 0
	for lo := 0; lo < len(events); lo += batchSize {
		hi := min(lo+batchSize, len(events))
		if err := c.PublishBatch(events[lo:hi]); err != nil {
			return fmt.Errorf("batch %d (events %d-%d): %w", batches+1, lo+1, hi, err)
		}
		batches++
	}
	fmt.Printf("published %d events in %d batches\n", len(events), batches)
	return nil
}

func runSubscribe(args []string) error {
	fs := flag.NewFlagSet("subscribe", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:7070", "broker address")
	replay := fs.Bool("replay", false, "replay buffered past events first")
	subID := fs.String("id", "", "subscription ID to register under; after a broker restart with -data-dir, re-subscribing with the old ID adopts the recovered registration")
	timeout := fs.Duration("timeout", 0, "timeout for dial and the subscribe handshake; deliveries still stream indefinitely (0 = wait forever)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("subscribe: exactly one subscription argument expected")
	}
	sub, err := event.ParseSubscription(fs.Arg(0))
	if err != nil {
		return err
	}
	sub.ID = *subID
	// A clustered broker redirects subscriptions whose theme shard it does
	// not own; follow the redirect to the owning broker (bounded hops in
	// case of a misconfigured ring).
	target := *addr
	var (
		c          *broker.Client
		id         string
		deliveries <-chan broker.Delivery
	)
	for hop := 0; ; hop++ {
		c, err = broker.DialTimeout(target, *timeout)
		if err != nil {
			return err
		}
		id, deliveries, err = c.Subscribe(sub, *replay)
		var redirect *broker.RedirectError
		if errors.As(err, &redirect) && hop < 4 {
			c.Close()
			fmt.Fprintf(os.Stderr, "redirected to owning shard %s\n", redirect.Addr)
			target = redirect.Addr
			continue
		}
		if err != nil {
			c.Close()
			return err
		}
		break
	}
	defer c.Close()
	fmt.Fprintf(os.Stderr, "subscribed as %s; waiting for deliveries (interrupt to stop)\n", id)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	for {
		select {
		case d, ok := <-deliveries:
			if !ok {
				return fmt.Errorf("connection closed")
			}
			tag := "live"
			if d.Replayed {
				tag = "replayed"
			}
			fmt.Printf("[%s score=%.3f] %s\n", tag, d.Score, d.Event)
		case <-sig:
			return nil
		}
	}
}

// stepList collects repeated -step flags as attr or attr=value pairs.
type stepList []broker.QueryStep

func (s *stepList) String() string {
	var parts []string
	for _, st := range *s {
		if st.Value == "" {
			parts = append(parts, st.Attr)
		} else {
			parts = append(parts, st.Attr+"="+st.Value)
		}
	}
	return strings.Join(parts, ",")
}

func (s *stepList) Set(v string) error {
	attr, value, _ := strings.Cut(v, "=")
	attr = strings.TrimSpace(attr)
	if attr == "" {
		return fmt.Errorf("step needs an attribute (attr or attr=value)")
	}
	*s = append(*s, broker.QueryStep{Attr: attr, Value: strings.TrimSpace(value)})
	return nil
}

func runQuery(args []string) error {
	fs := flag.NewFlagSet("query", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:7070", "broker address")
	name := fs.String("name", "", "query name (must be unique on the broker)")
	kind := fs.String("kind", "count", "pattern kind: count, sequence, conjunction, negation")
	window := fs.Duration("window", 30*time.Second, "pattern window")
	min := fs.Float64("min", 1, "count: minimum expected events in the window")
	threshold := fs.Float64("threshold", 0, "sequence/conjunction/negation: minimum composite probability")
	timeout := fs.Duration("timeout", 0, "timeout for dial and the register handshake; detections still stream indefinitely (0 = wait forever)")
	var steps stepList
	fs.Var(&steps, "step", "pattern step, attr or attr=value (repeatable; order matters for sequence; negation takes trigger then absent)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *name == "" {
		return fmt.Errorf("query: -name is required")
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("query: exactly one subscription argument expected (the feeding subscription)")
	}
	sub, err := event.ParseSubscription(fs.Arg(0))
	if err != nil {
		return err
	}
	spec := &broker.QuerySpec{
		Name:         *name,
		Kind:         *kind,
		Subscription: sub,
		Window:       *window,
		Threshold:    *threshold,
		MinExpected:  *min,
		Steps:        steps,
	}

	// A clustered broker redirects queries whose theme shard it does not
	// own, exactly like subscriptions: the window state must live on the
	// owning broker. Follow the redirect with bounded hops.
	target := *addr
	var (
		c          *broker.Client
		id         string
		detections <-chan broker.QueryDetection
	)
	for hop := 0; ; hop++ {
		c, err = broker.DialTimeout(target, *timeout)
		if err != nil {
			return err
		}
		id, detections, err = c.Query(spec)
		var redirect *broker.RedirectError
		if errors.As(err, &redirect) && hop < 4 {
			c.Close()
			fmt.Fprintf(os.Stderr, "redirected to owning shard %s\n", redirect.Addr)
			target = redirect.Addr
			continue
		}
		if err != nil {
			c.Close()
			return err
		}
		break
	}
	defer c.Close()
	fmt.Fprintf(os.Stderr, "query %s registered (%s over %v); waiting for detections (interrupt to stop)\n",
		id, *kind, *window)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	for {
		select {
		case d, ok := <-detections:
			if !ok {
				return fmt.Errorf("connection closed")
			}
			fmt.Printf("[detect %s p=%.3f at=%s]\n", d.Query, d.Probability, d.At.Format(time.RFC3339Nano))
			for _, ev := range d.Events {
				fmt.Printf("  %s\n", ev)
			}
		case <-sig:
			return c.UnregisterQuery(id)
		}
	}
}

func runMatch(args []string) error {
	fs := flag.NewFlagSet("match", flag.ContinueOnError)
	topK := fs.Int("k", 1, "number of mappings to print")
	thematic := fs.Bool("thematic", true, "use theme tags")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("match: subscription and event arguments expected")
	}
	sub, err := event.ParseSubscription(fs.Arg(0))
	if err != nil {
		return err
	}
	ev, err := event.ParseEvent(fs.Arg(1))
	if err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, "building distributional space...")
	space := semantics.NewSpace(index.Build(corpus.GenerateDefault()))
	m := matcher.New(space, matcher.WithThematic(*thematic))

	mappings := m.MatchTopK(sub, ev, *topK)
	if len(mappings) == 0 {
		fmt.Println("no match")
		return nil
	}
	for i, mp := range mappings {
		fmt.Printf("mapping #%d: score=%.4f probability=%.3f\n", i+1, mp.Score, mp.Probability)
		for _, c := range mp.Pairs {
			fmt.Printf("  %-40s <-> %-40s sim=%.3f\n",
				sub.Predicates[c.Predicate], ev.Tuples[c.Tuple], c.Similarity)
		}
	}
	return nil
}
