package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"sort"
	"strings"
	"time"

	"thematicep/internal/telemetry"
)

// peerInfo mirrors one row of a daemon's /debug/peers directory (see
// cluster.PeerInfo); themctl decodes it structurally so the CLI works
// against any daemon serving the same JSON shape.
type peerInfo struct {
	Node    string `json:"node"`
	Metrics string `json:"metrics"`
	Self    bool   `json:"self"`
	State   string `json:"state"`
}

// discoverPeers fetches the cluster scrape directory from one member's
// metrics endpoint. A daemon without /debug/peers (or an unreachable one)
// yields a single-entry directory pointing back at base, so every cluster
// command degrades to single-node behavior.
func discoverPeers(base string, timeout time.Duration) []peerInfo {
	body, err := httpGet(base+"/debug/peers", timeout)
	if err == nil {
		var peers []peerInfo
		if json.Unmarshal(body, &peers) == nil && len(peers) > 0 {
			return peers
		}
	}
	return []peerInfo{{Node: base, Metrics: strings.TrimPrefix(base, "http://"), Self: true}}
}

// metricsBase turns a directory row's advertised metrics address into a
// scrape base URL.
func metricsBase(p peerInfo) string {
	if p.Metrics == "" {
		return ""
	}
	if strings.Contains(p.Metrics, "://") {
		return strings.TrimSuffix(p.Metrics, "/")
	}
	return "http://" + p.Metrics
}

// fragment is one node's trace fragment, tagged with where it was scraped.
type fragment struct {
	node string
	tr   telemetry.Trace
}

// runTrace reassembles a cross-cluster trace: it discovers the federation
// through /debug/peers, pulls every member's /debug/traces ring, resolves
// the argument (an event ID or a trace ID) to a trace ID, and renders the
// merged span tree ordered by the fragments' parent relation — the origin
// fragment first, each forwarded continuation indented under the node that
// forwarded it.
func runTrace(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ContinueOnError)
	url := fs.String("metrics", "http://127.0.0.1:9090", "metrics endpoint of any cluster member")
	timeout := fs.Duration("timeout", 10*time.Second, "HTTP timeout per request")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("trace: exactly one event ID or trace ID argument expected")
	}
	id := fs.Arg(0)
	base := strings.TrimSuffix(strings.TrimSuffix(*url, "/"), "/metrics")

	peers := discoverPeers(base, *timeout)
	var frags []fragment
	scraped := 0
	for _, p := range peers {
		mb := metricsBase(p)
		if mb == "" {
			continue
		}
		body, err := httpGet(mb+"/debug/traces", *timeout)
		if err != nil {
			fmt.Fprintf(fs.Output(), "trace: skipping %s: %v\n", p.Node, err)
			continue
		}
		var traces []telemetry.Trace
		if err := json.Unmarshal(body, &traces); err != nil {
			return fmt.Errorf("trace: %s: bad JSON: %w", p.Node, err)
		}
		scraped++
		for _, tr := range traces {
			node := tr.Node
			if node == "" {
				node = p.Node
			}
			frags = append(frags, fragment{node: node, tr: tr})
		}
	}
	if scraped == 0 {
		return fmt.Errorf("trace: no reachable /debug/traces endpoint among %d directory entries", len(peers))
	}

	// The argument may name the trace directly or any member event of one
	// of its fragments.
	traceID := ""
	for _, f := range frags {
		if f.tr.TraceID == id || f.tr.Member(id) {
			traceID = f.tr.TraceID
			break
		}
	}
	if traceID == "" {
		return fmt.Errorf("trace: %q not found in the trace rings of %d node(s) (rings are bounded; is -trace-sample enabled?)", id, scraped)
	}
	var tree []fragment
	for _, f := range frags {
		if f.tr.TraceID == traceID {
			tree = append(tree, f)
		}
	}
	printTraceTree(traceID, tree)
	return nil
}

// printTraceTree renders the fragments of one trace as a tree: origin
// fragments (no parent) at the root, each remaining fragment under the
// node named by its Parent. Offsets are fragment-local — no cross-node
// clock synchronization is assumed, so the causal order comes from the
// parent relation, never from wall clocks.
func printTraceTree(traceID string, frags []fragment) {
	nodes := map[string]bool{}
	for _, f := range frags {
		nodes[f.node] = true
	}
	fmt.Printf("trace %s: %d fragment(s) across %d node(s)\n", traceID, len(frags), len(nodes))

	children := map[string][]fragment{}
	for _, f := range frags {
		children[f.tr.Parent] = append(children[f.tr.Parent], f)
	}
	for _, fs := range children {
		sort.Slice(fs, func(i, j int) bool { return fs[i].node < fs[j].node })
	}

	printed := map[int]bool{}
	indexOf := func(f fragment) int {
		for i := range frags {
			if frags[i].node == f.node && frags[i].tr.EventID == f.tr.EventID &&
				frags[i].tr.Start.Equal(f.tr.Start) {
				return i
			}
		}
		return -1
	}
	var render func(f fragment, depth int)
	render = func(f fragment, depth int) {
		i := indexOf(f)
		if i < 0 || printed[i] {
			return
		}
		printed[i] = true
		printFragment(f, depth)
		for _, c := range children[f.node] {
			render(c, depth+1)
		}
	}
	for _, f := range children[""] {
		render(f, 0)
	}
	// Fragments whose parent never showed up (evicted origin, partial
	// scrape) still print, flat, so nothing recorded is hidden.
	for i, f := range frags {
		if !printed[i] {
			printFragment(f, 0)
		}
	}
}

func printFragment(f fragment, depth int) {
	pad := strings.Repeat("  ", depth)
	role := "origin"
	if f.tr.Parent != "" {
		role = "forwarded by " + f.tr.Parent
	}
	events := ""
	if n := len(f.tr.Events); n > 0 {
		events = fmt.Sprintf(" (batch of %d)", n)
	}
	fmt.Printf("%s[%s] event %s%s total=%s (%s)\n", pad, f.node, f.tr.EventID, events,
		f.tr.Total.Round(time.Microsecond), role)
	for _, sp := range f.tr.Spans {
		fmt.Printf("%s    %-20s +%-12s %s\n", pad, sp.Stage,
			sp.Offset.Round(time.Microsecond), sp.Duration.Round(time.Microsecond))
	}
}
