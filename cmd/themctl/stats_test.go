package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// fakeMember serves a minimal /metrics exposition and, when given a
// directory, /debug/peers — enough for scrapeCluster to treat it as a live
// federation member.
func fakeMember(t *testing.T, directory func() []peerInfo) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "# TYPE thematicep_broker_published_total counter\nthematicep_broker_published_total 5\n")
	})
	if directory != nil {
		mux.HandleFunc("/debug/peers", func(w http.ResponseWriter, r *http.Request) {
			json.NewEncoder(w).Encode(directory())
		})
	}
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

// deadAddr returns a URL nothing listens on: a server is started to reserve
// a port and immediately closed.
func deadAddr(t *testing.T) string {
	t.Helper()
	srv := httptest.NewServer(http.NotFoundHandler())
	url := srv.URL
	srv.Close()
	return url
}

// A cluster scrape with unreachable members must still succeed on the
// reachable ones, returning the holes as report lines rather than failing —
// that is the whole point of `themctl stats -cluster` during an incident.
func TestScrapeClusterPartial(t *testing.T) {
	var dir []peerInfo
	seedB := fakeMember(t, nil)
	seedA := fakeMember(t, func() []peerInfo { return dir })
	dead := deadAddr(t)
	dir = []peerInfo{
		{Node: "node-a", Metrics: seedA.URL, Self: true, State: "alive"},
		{Node: "node-b", Metrics: seedB.URL, State: "alive"},
		{Node: "node-c", Metrics: dead, State: "dead"},
		{Node: "node-d", Metrics: "", State: "alive"},
	}

	scrapes, down, err := scrapeCluster(seedA.URL, false, 2*time.Second)
	if err != nil {
		t.Fatalf("scrapeCluster: %v", err)
	}
	if len(scrapes) != 2 {
		t.Fatalf("got %d scrapes, want 2 (a and b)", len(scrapes))
	}
	got := map[string]bool{}
	for _, s := range scrapes {
		got[s.node] = true
	}
	if !got["node-a"] || !got["node-b"] {
		t.Fatalf("scraped %v, want node-a and node-b", got)
	}
	if len(down) != 2 {
		t.Fatalf("got %d down lines %q, want 2", len(down), down)
	}
	joined := strings.Join(down, "\n")
	if !strings.Contains(joined, "node-c") || !strings.Contains(joined, "membership says dead") {
		t.Errorf("down lines should name node-c with its membership state, got %q", down)
	}
	if !strings.Contains(joined, "node-d") || !strings.Contains(joined, "no metrics address") {
		t.Errorf("down lines should name node-d as address-less, got %q", down)
	}
}

// When no member at all is reachable the scrape must fail loudly instead of
// printing an empty report.
func TestScrapeClusterAllDown(t *testing.T) {
	dead := deadAddr(t)
	dir := []peerInfo{
		{Node: "node-a", Metrics: dead, State: "suspect"},
		{Node: "node-b", Metrics: dead, State: "dead"},
	}
	seed := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/debug/peers" {
			json.NewEncoder(w).Encode(dir)
			return
		}
		http.NotFound(w, r)
	}))
	defer seed.Close()

	scrapes, down, err := scrapeCluster(seed.URL, false, 2*time.Second)
	if err == nil {
		t.Fatalf("want error when every member is unreachable, got %d scrapes", len(scrapes))
	}
	if len(down) != 2 {
		t.Fatalf("got %d down lines %q, want 2", len(down), down)
	}
}

// A daemon without /debug/peers degrades to scraping base itself.
func TestScrapeClusterSingleNodeFallback(t *testing.T) {
	solo := fakeMember(t, nil)
	scrapes, down, err := scrapeCluster(solo.URL, false, 2*time.Second)
	if err != nil {
		t.Fatalf("scrapeCluster: %v", err)
	}
	if len(scrapes) != 1 || len(down) != 0 {
		t.Fatalf("got %d scrapes / %d down, want 1 / 0", len(scrapes), len(down))
	}
}
