package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"thematicep/internal/telemetry"
)

// runStats scrapes a thematicd metrics endpoint and prints a runtime
// summary: pipeline counters, latency histogram quantiles, cache hit
// rates, and (with -traces) recent sampled pipeline traces. With -lint the
// scrape is validated against the exposition-format invariants and the
// command fails on any violation, so it doubles as a health check in CI.
func runStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ContinueOnError)
	url := fs.String("metrics", "http://127.0.0.1:9090", "metrics endpoint base URL (scheme://host:port)")
	lint := fs.Bool("lint", false, "validate the exposition format and fail on violations")
	traces := fs.Bool("traces", false, "also fetch and print /debug/traces")
	raw := fs.Bool("raw", false, "dump the raw exposition instead of the summary")
	timeout := fs.Duration("timeout", 10*time.Second, "HTTP timeout per scrape; fail fast instead of hanging on a wedged daemon")
	if err := fs.Parse(args); err != nil {
		return err
	}
	base := strings.TrimSuffix(*url, "/")
	base = strings.TrimSuffix(base, "/metrics")

	body, err := httpGet(base+"/metrics", *timeout)
	if err != nil {
		return fmt.Errorf("stats: %w", err)
	}
	if *raw {
		os.Stdout.Write(body)
	}
	if *lint {
		if err := telemetry.Lint(bytes.NewReader(body)); err != nil {
			return fmt.Errorf("stats: exposition lint: %w", err)
		}
		fmt.Fprintln(os.Stderr, "exposition lint: ok")
	}
	if !*raw {
		if err := printSummary(body); err != nil {
			return fmt.Errorf("stats: %w", err)
		}
	}
	if *traces {
		tb, err := httpGet(base+"/debug/traces", *timeout)
		if err != nil {
			return fmt.Errorf("stats: traces: %w", err)
		}
		printTraces(tb)
	}
	return nil
}

func httpGet(url string, timeout time.Duration) ([]byte, error) {
	c := &http.Client{Timeout: timeout}
	resp, err := c.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: %s", url, resp.Status)
	}
	return io.ReadAll(resp.Body)
}

func printSummary(body []byte) error {
	families, err := telemetry.ParseExposition(bytes.NewReader(body))
	if err != nil {
		return err
	}
	byName := make(map[string]*telemetry.Family, len(families))
	for _, f := range families {
		byName[f.Name] = f
	}
	counter := func(name string) float64 {
		f := byName[name]
		if f == nil {
			return 0
		}
		total := 0.0
		for _, s := range f.Samples {
			total += s.Value
		}
		return total
	}

	fmt.Println("pipeline:")
	for _, c := range []struct{ label, name string }{
		{"published", "thematicep_broker_published_total"},
		{"scanned", "thematicep_broker_scanned_total"},
		{"pruned", "thematicep_broker_pruned_total"},
		{"matched", "thematicep_broker_matched_total"},
		{"delivered", "thematicep_broker_delivered_total"},
		{"dropped", "thematicep_broker_dropped_total"},
	} {
		fmt.Printf("  %-10s %.0f\n", c.label, counter(c.name))
	}

	fmt.Println("latency (p50 / p95 / count):")
	for _, h := range []struct{ label, name string }{
		{"publish", "thematicep_broker_publish_seconds"},
		{"compile", "thematicep_broker_compile_seconds"},
		{"enumerate", "thematicep_broker_enumerate_seconds"},
		{"score", "thematicep_broker_score_seconds"},
		{"deliver", "thematicep_broker_deliver_seconds"},
		{"hop", "thematicep_cluster_hop_seconds"},
		{"detect", "thematicep_query_detect_seconds"},
	} {
		f := byName[h.name]
		if f == nil || f.Type != "histogram" {
			continue
		}
		count, p50, p95 := histogramQuantiles(f)
		if count == 0 {
			fmt.Printf("  %-10s (no observations)\n", h.label)
			continue
		}
		fmt.Printf("  %-10s %s / %s / %.0f\n", h.label,
			time.Duration(p50*float64(time.Second)).Round(time.Microsecond),
			time.Duration(p95*float64(time.Second)).Round(time.Microsecond), count)
	}

	// Batched ingest: how much of the stream arrives through PublishBatch
	// and how much work the batch-scope interners and row memos amortize
	// away.
	if batches := counter("thematicep_broker_batches_total"); batches > 0 {
		fmt.Println("batching:")
		fmt.Printf("  %-14s %.0f\n", "batches", batches)
		if f := byName["thematicep_publish_batch_size"]; f != nil && f.Type == "histogram" {
			count, p50, p95 := histogramQuantiles(f)
			if count > 0 {
				fmt.Printf("  %-14s p50 %.0f / p95 %.0f\n", "batch size", p50, p95)
			}
		}
		ti := counter("thematicep_broker_batch_terms_interned_total")
		tr := counter("thematicep_broker_batch_terms_reused_total")
		rc := counter("thematicep_broker_batch_rows_computed_total")
		rr := counter("thematicep_broker_batch_rows_reused_total")
		pct := func(hit, miss float64) float64 {
			if hit+miss == 0 {
				return 0
			}
			return 100 * hit / (hit + miss)
		}
		fmt.Printf("  %-14s %.0f reused / %.0f interned (%.1f%% amortized)\n", "terms", tr, ti, pct(tr, ti))
		fmt.Printf("  %-14s %.0f reused / %.0f computed (%.1f%% amortized)\n", "sim rows", rr, rc, pct(rr, rc))
	}

	// Subscription-index occupancy and the candidates-per-event
	// distribution: the inverted index's pruning effectiveness at a glance.
	gauge := func(name string) (float64, bool) {
		f := byName[name]
		if f == nil || len(f.Samples) == 0 {
			return 0, false
		}
		return f.Samples[0].Value, true
	}
	if subs, ok := gauge("thematicep_subindex_subscriptions"); ok {
		fmt.Println("subindex:")
		fmt.Printf("  %-14s %.0f\n", "subscriptions", subs)
		for _, g := range []struct{ label, name string }{
			{"themes", "thematicep_subindex_themes"},
			{"buckets", "thematicep_subindex_buckets"},
			{"terms", "thematicep_subindex_terms"},
			{"approx-only", "thematicep_subindex_approx_entries"},
			{"max bucket", "thematicep_subindex_max_bucket"},
			{"free slots", "thematicep_subindex_free_slots"},
		} {
			if v, ok := gauge(g.name); ok {
				fmt.Printf("  %-14s %.0f\n", g.label, v)
			}
		}
		if v, ok := gauge("thematicep_subindex_avg_bucket"); ok {
			fmt.Printf("  %-14s %.2f\n", "avg bucket", v)
		}
		if f := byName["thematicep_subindex_candidates_per_event"]; f != nil && f.Type == "histogram" {
			count, p50, p95 := histogramQuantiles(f)
			if count > 0 {
				fmt.Printf("  %-14s p50 %.0f / p95 %.0f over %.0f events", "candidates", p50, p95, count)
				if subs > 0 {
					fmt.Printf(" (p95 = %.1f%% of live subs)", 100*p95/subs)
				}
				fmt.Println()
			}
		}
	}

	if f := byName["thematicep_query_detections_total"]; f != nil && len(f.Samples) > 0 {
		fed := byName["thematicep_query_events_total"]
		fedFor := func(query string) float64 {
			if fed == nil {
				return 0
			}
			for _, s := range fed.Samples {
				if s.Labels["query"] == query {
					return s.Value
				}
			}
			return 0
		}
		fmt.Println("queries (detections / events fed):")
		sorted := append([]telemetry.Sample(nil), f.Samples...)
		sort.Slice(sorted, func(i, j int) bool {
			return sorted[i].Labels["query"] < sorted[j].Labels["query"]
		})
		for _, s := range sorted {
			q := s.Labels["query"]
			fmt.Printf("  %-12s %.0f / %.0f\n", q, s.Value, fedFor(q))
		}
	}

	if f := byName["thematicep_semantics_cache_hits_total"]; f != nil {
		miss := byName["thematicep_semantics_cache_misses_total"]
		fmt.Println("caches (hits / misses):")
		missFor := func(cache string) float64 {
			if miss == nil {
				return 0
			}
			for _, s := range miss.Samples {
				if s.Labels["cache"] == cache {
					return s.Value
				}
			}
			return 0
		}
		sorted := append([]telemetry.Sample(nil), f.Samples...)
		sort.Slice(sorted, func(i, j int) bool {
			return sorted[i].Labels["cache"] < sorted[j].Labels["cache"]
		})
		for _, s := range sorted {
			fmt.Printf("  %-12s %.0f / %.0f\n", s.Labels["cache"], s.Value, missFor(s.Labels["cache"]))
		}
	}
	return nil
}

// histogramQuantiles aggregates every label set of a histogram family into
// one distribution and estimates p50/p95 by linear interpolation within
// the containing bucket.
func histogramQuantiles(f *telemetry.Family) (count, p50, p95 float64) {
	type bucket struct{ le, cum float64 }
	sums := map[float64]float64{}
	for _, s := range f.Samples {
		if !strings.HasSuffix(s.Name, "_bucket") {
			continue
		}
		le, err := parseLe(s.Labels["le"])
		if err != nil {
			continue
		}
		sums[le] += s.Value
	}
	buckets := make([]bucket, 0, len(sums))
	for le, cum := range sums {
		buckets = append(buckets, bucket{le, cum})
	}
	sort.Slice(buckets, func(i, j int) bool { return buckets[i].le < buckets[j].le })
	if len(buckets) == 0 {
		return 0, 0, 0
	}
	count = buckets[len(buckets)-1].cum
	quantile := func(q float64) float64 {
		rank := q * count
		prevLe, prevCum := 0.0, 0.0
		for _, b := range buckets {
			if b.cum >= rank {
				if math.IsInf(b.le, 1) {
					return prevLe
				}
				if b.cum == prevCum {
					return b.le
				}
				return prevLe + (b.le-prevLe)*(rank-prevCum)/(b.cum-prevCum)
			}
			prevLe, prevCum = b.le, b.cum
		}
		return prevLe
	}
	if count > 0 {
		p50, p95 = quantile(0.5), quantile(0.95)
	}
	return count, p50, p95
}

func parseLe(s string) (float64, error) {
	if s == "+Inf" {
		return math.Inf(1), nil
	}
	var v float64
	_, err := fmt.Sscanf(s, "%g", &v)
	return v, err
}

func printTraces(body []byte) {
	var traces []telemetry.Trace
	if err := json.Unmarshal(body, &traces); err != nil {
		fmt.Fprintf(os.Stderr, "traces: bad JSON: %v\n", err)
		return
	}
	if len(traces) == 0 {
		fmt.Println("traces: none recorded (is -trace-sample enabled on the daemon?)")
		return
	}
	fmt.Printf("traces (%d recent, newest first):\n", len(traces))
	for i, tr := range traces {
		if i >= 5 {
			fmt.Printf("  ... %d more\n", len(traces)-i)
			break
		}
		fmt.Printf("  %s total=%s\n", tr.EventID, tr.Total.Round(time.Microsecond))
		for _, sp := range tr.Spans {
			fmt.Printf("    %-20s +%-12s %s\n", sp.Stage,
				sp.Offset.Round(time.Microsecond), sp.Duration.Round(time.Microsecond))
		}
	}
}
