package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"thematicep/internal/telemetry"
)

// runStats scrapes a thematicd metrics endpoint and prints a runtime
// summary: pipeline counters, latency histogram quantiles, SLO burn state,
// process runtime health, cache hit rates, and (with -traces) recent
// sampled pipeline traces. With -lint the scrape is validated against the
// exposition-format invariants and the command fails on any violation, so
// it doubles as a health check in CI.
//
// With -cluster the federation is discovered through /debug/peers and every
// member's /metrics is scraped and merged (histograms bucket-wise, counters
// summed), rendering cluster-wide quantiles plus a per-node breakdown. With
// -watch the scrape repeats on an interval and prints per-second deltas.
func runStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ContinueOnError)
	url := fs.String("metrics", "http://127.0.0.1:9090", "metrics endpoint base URL (scheme://host:port)")
	lint := fs.Bool("lint", false, "validate the exposition format and fail on violations")
	traces := fs.Bool("traces", false, "also fetch and print /debug/traces")
	raw := fs.Bool("raw", false, "dump the raw exposition instead of the summary")
	cluster := fs.Bool("cluster", false, "discover the federation via /debug/peers and merge every member's scrape")
	watch := fs.Duration("watch", 0, "re-scrape on this interval and print per-second rate deltas (interrupt to stop)")
	timeout := fs.Duration("timeout", 10*time.Second, "HTTP timeout per scrape; fail fast instead of hanging on a wedged daemon")
	if err := fs.Parse(args); err != nil {
		return err
	}
	base := strings.TrimSuffix(*url, "/")
	base = strings.TrimSuffix(base, "/metrics")

	if *watch > 0 {
		return watchStats(base, *cluster, *watch, *timeout)
	}
	if *cluster {
		return clusterStats(base, *lint, *timeout)
	}

	body, err := httpGet(base+"/metrics", *timeout)
	if err != nil {
		return fmt.Errorf("stats: %w", err)
	}
	if *raw {
		os.Stdout.Write(body)
	}
	if *lint {
		if err := telemetry.Lint(bytes.NewReader(body)); err != nil {
			return fmt.Errorf("stats: exposition lint: %w", err)
		}
		fmt.Fprintln(os.Stderr, "exposition lint: ok")
	}
	if !*raw {
		if err := printSummary(body); err != nil {
			return fmt.Errorf("stats: %w", err)
		}
	}
	if *traces {
		tb, err := httpGet(base+"/debug/traces", *timeout)
		if err != nil {
			return fmt.Errorf("stats: traces: %w", err)
		}
		printTraces(tb)
	}
	return nil
}

// nodeScrape is one member's parsed exposition.
type nodeScrape struct {
	node string
	fams []*telemetry.Family
}

// scrapeCluster discovers the federation and scrapes every member with a
// known metrics address. Unreachable members come back in the second return
// as "node: reason" lines instead of failing the scrape — a partial cluster
// view beats no view during an incident, and the caller renders the holes in
// the report itself so a missing member is visible in the output a human (or
// CI) actually reads, not just on stderr. The error return fires only when
// no member at all could be scraped.
func scrapeCluster(base string, lint bool, timeout time.Duration) ([]nodeScrape, []string, error) {
	peers := discoverPeers(base, timeout)
	var scrapes []nodeScrape
	var down []string
	skip := func(p peerInfo, reason string) {
		if p.State != "" && p.State != "alive" {
			reason = fmt.Sprintf("%s (membership says %s)", reason, p.State)
		}
		down = append(down, fmt.Sprintf("%s: %s", p.Node, reason))
	}
	for _, p := range peers {
		mb := metricsBase(p)
		if mb == "" {
			skip(p, "no metrics address advertised")
			continue
		}
		body, err := httpGet(mb+"/metrics", timeout)
		if err != nil {
			skip(p, err.Error())
			continue
		}
		if lint {
			if err := telemetry.Lint(bytes.NewReader(body)); err != nil {
				return nil, down, fmt.Errorf("exposition lint (%s): %w", p.Node, err)
			}
		}
		fams, err := telemetry.ParseExposition(bytes.NewReader(body))
		if err != nil {
			skip(p, fmt.Sprintf("bad exposition: %v", err))
			continue
		}
		scrapes = append(scrapes, nodeScrape{node: p.Node, fams: fams})
	}
	if len(scrapes) == 0 {
		return nil, down, fmt.Errorf("no reachable /metrics endpoint among %d directory entries", len(peers))
	}
	return scrapes, down, nil
}

// clusterStats merges every member's families (histograms bucket-wise,
// counters summed — merged quantiles are exactly the quantiles of the union
// stream) and prints the cluster summary plus per-node breakdowns for the
// publish path and the SLOs.
func clusterStats(base string, lint bool, timeout time.Duration) error {
	scrapes, down, err := scrapeCluster(base, lint, timeout)
	if err != nil {
		for _, d := range down {
			fmt.Fprintf(os.Stderr, "stats: %s\n", d)
		}
		return fmt.Errorf("stats: %w", err)
	}
	sets := make([][]*telemetry.Family, len(scrapes))
	names := make([]string, len(scrapes))
	for i, s := range scrapes {
		sets[i], names[i] = s.fams, s.node
	}
	// Membership metrics are each node's VIEW of the ring: summing views
	// triple-counts a healthy 3-node cluster and hides the one signal that
	// matters — members disagreeing. Exclude them from the merge and render
	// them per node below.
	for i := range sets {
		filtered := make([]*telemetry.Family, 0, len(sets[i]))
		for _, f := range sets[i] {
			if !membershipFamily(f.Name) {
				filtered = append(filtered, f)
			}
		}
		sets[i] = filtered
	}
	merged, err := telemetry.MergeFamilies(sets...)
	if err != nil {
		return fmt.Errorf("stats: merge: %w", err)
	}
	fmt.Printf("cluster: %d node(s) merged (%s)\n", len(scrapes), strings.Join(names, ", "))
	for _, d := range down {
		fmt.Printf("  unreachable: %s\n", d)
	}
	summarize(merged)

	fmt.Println("per-node publish latency (p50 / p95 / p99 / count):")
	for _, s := range scrapes {
		line := "(no observations)"
		for _, f := range s.fams {
			if f.Name == "thematicep_broker_publish_seconds" && f.Type == "histogram" {
				if count, p50, p95, p99 := histogramQuantiles(f); count > 0 {
					line = fmt.Sprintf("%s / %s / %s / %.0f",
						secs(p50), secs(p95), secs(p99), count)
				}
			}
		}
		fmt.Printf("  %-24s %s\n", s.node, line)
	}
	// Membership, like SLO status, is a per-node judgment: a partition shows
	// up as members whose ring views disagree, which a merged total erases.
	header := false
	for _, s := range scrapes {
		byName := familyIndex(s.fams)
		f := byName["thematicep_cluster_members"]
		if f == nil || len(f.Samples) == 0 {
			continue
		}
		if !header {
			fmt.Println("per-node membership view (alive / suspect / dead; joins / leaves / suspicions):")
			header = true
		}
		byState := map[string]float64{}
		for _, smp := range f.Samples {
			byState[smp.Labels["state"]] += smp.Value
		}
		churn := func(name string) float64 {
			cf := byName[name]
			if cf == nil {
				return 0
			}
			v := 0.0
			for _, smp := range cf.Samples {
				v += smp.Value
			}
			return v
		}
		fmt.Printf("  %-24s %.0f / %.0f / %.0f; %.0f / %.0f / %.0f\n", s.node,
			byState["alive"], byState["suspect"], byState["dead"],
			churn("thematicep_cluster_member_join_total"),
			churn("thematicep_cluster_member_leave_total"),
			churn("thematicep_cluster_member_suspect_total"))
	}
	// SLO status is a per-node judgment (a red member must not hide inside
	// a cluster-wide average), so the burn lines print per member.
	for _, s := range scrapes {
		printSLO(familyIndex(s.fams), "  ["+s.node+"] ")
	}
	return nil
}

// membershipFamily reports whether a family is a per-node ring view that
// must never be summed across members.
func membershipFamily(name string) bool {
	switch name {
	case "thematicep_cluster_members",
		"thematicep_cluster_member_join_total",
		"thematicep_cluster_member_leave_total",
		"thematicep_cluster_member_suspect_total":
		return true
	}
	return false
}

// watchStats re-scrapes on an interval and prints per-second deltas of the
// headline counters: event throughput, deliveries, load shedding, drops,
// and breaker flips. Rates come from counter differences, so a restarted
// daemon shows one negative-free resync line rather than garbage.
func watchStats(base string, cluster bool, interval, timeout time.Duration) error {
	type snap struct {
		published, delivered, shed, dropped, trips float64
	}
	scrape := func() (snap, error) {
		var fams []*telemetry.Family
		if cluster {
			scrapes, _, err := scrapeCluster(base, false, timeout)
			if err != nil {
				return snap{}, err
			}
			sets := make([][]*telemetry.Family, len(scrapes))
			for i, s := range scrapes {
				sets[i] = s.fams
			}
			if fams, err = telemetry.MergeFamilies(sets...); err != nil {
				return snap{}, err
			}
		} else {
			body, err := httpGet(base+"/metrics", timeout)
			if err != nil {
				return snap{}, err
			}
			if fams, err = telemetry.ParseExposition(bytes.NewReader(body)); err != nil {
				return snap{}, err
			}
		}
		byName := familyIndex(fams)
		total := func(name string) float64 {
			f := byName[name]
			if f == nil {
				return 0
			}
			v := 0.0
			for _, s := range f.Samples {
				v += s.Value
			}
			return v
		}
		return snap{
			published: total("thematicep_broker_published_total"),
			delivered: total("thematicep_broker_delivered_total"),
			shed:      total("thematicep_broker_shed_total") + total("thematicep_cluster_forwards_shed_total"),
			dropped:   total("thematicep_broker_dropped_total") + total("thematicep_cluster_peer_queue_drops_total"),
			trips:     total("thematicep_cluster_breaker_trips_total"),
		}, nil
	}

	prev, err := scrape()
	if err != nil {
		return fmt.Errorf("stats: %w", err)
	}
	fmt.Printf("%-10s %10s %10s %10s %10s %8s\n", "time", "ev/s", "deliver/s", "shed/s", "drop/s", "flips")
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-sig:
			return nil
		case <-tick.C:
			cur, err := scrape()
			if err != nil {
				fmt.Fprintf(os.Stderr, "stats: %v\n", err)
				continue
			}
			rate := func(now, was float64) float64 {
				if d := now - was; d > 0 {
					return d / interval.Seconds()
				}
				return 0
			}
			fmt.Printf("%-10s %10.1f %10.1f %10.1f %10.1f %8.0f\n",
				time.Now().Format("15:04:05"),
				rate(cur.published, prev.published),
				rate(cur.delivered, prev.delivered),
				rate(cur.shed, prev.shed),
				rate(cur.dropped, prev.dropped),
				cur.trips-prev.trips)
			prev = cur
		}
	}
}

func httpGet(url string, timeout time.Duration) ([]byte, error) {
	c := &http.Client{Timeout: timeout}
	resp, err := c.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: %s", url, resp.Status)
	}
	return io.ReadAll(resp.Body)
}

func printSummary(body []byte) error {
	families, err := telemetry.ParseExposition(bytes.NewReader(body))
	if err != nil {
		return err
	}
	summarize(families)
	printSLO(familyIndex(families), "  ")
	return nil
}

func familyIndex(families []*telemetry.Family) map[string]*telemetry.Family {
	byName := make(map[string]*telemetry.Family, len(families))
	for _, f := range families {
		byName[f.Name] = f
	}
	return byName
}

// secs renders a quantile in seconds as a rounded duration.
func secs(v float64) time.Duration {
	return time.Duration(v * float64(time.Second)).Round(time.Microsecond)
}

func summarize(families []*telemetry.Family) {
	byName := familyIndex(families)
	counter := func(name string) float64 {
		f := byName[name]
		if f == nil {
			return 0
		}
		total := 0.0
		for _, s := range f.Samples {
			total += s.Value
		}
		return total
	}

	fmt.Println("pipeline:")
	for _, c := range []struct{ label, name string }{
		{"published", "thematicep_broker_published_total"},
		{"scanned", "thematicep_broker_scanned_total"},
		{"pruned", "thematicep_broker_pruned_total"},
		{"matched", "thematicep_broker_matched_total"},
		{"delivered", "thematicep_broker_delivered_total"},
		{"dropped", "thematicep_broker_dropped_total"},
	} {
		fmt.Printf("  %-10s %.0f\n", c.label, counter(c.name))
	}

	fmt.Println("latency (p50 / p95 / p99 / count):")
	for _, h := range []struct{ label, name string }{
		{"publish", "thematicep_broker_publish_seconds"},
		{"compile", "thematicep_broker_compile_seconds"},
		{"enumerate", "thematicep_broker_enumerate_seconds"},
		{"score", "thematicep_broker_score_seconds"},
		{"deliver", "thematicep_broker_deliver_seconds"},
		{"hop", "thematicep_cluster_hop_seconds"},
		{"detect", "thematicep_query_detect_seconds"},
	} {
		f := byName[h.name]
		if f == nil || f.Type != "histogram" {
			continue
		}
		count, p50, p95, p99 := histogramQuantiles(f)
		if count == 0 {
			fmt.Printf("  %-10s (no observations)\n", h.label)
			continue
		}
		fmt.Printf("  %-10s %s / %s / %s / %.0f\n", h.label,
			secs(p50), secs(p95), secs(p99), count)
	}

	// Batched ingest: how much of the stream arrives through PublishBatch
	// and how much work the batch-scope interners and row memos amortize
	// away.
	if batches := counter("thematicep_broker_batches_total"); batches > 0 {
		fmt.Println("batching:")
		fmt.Printf("  %-14s %.0f\n", "batches", batches)
		if f := byName["thematicep_publish_batch_size"]; f != nil && f.Type == "histogram" {
			count, p50, p95, _ := histogramQuantiles(f)
			if count > 0 {
				fmt.Printf("  %-14s p50 %.0f / p95 %.0f\n", "batch size", p50, p95)
			}
		}
		ti := counter("thematicep_broker_batch_terms_interned_total")
		tr := counter("thematicep_broker_batch_terms_reused_total")
		rc := counter("thematicep_broker_batch_rows_computed_total")
		rr := counter("thematicep_broker_batch_rows_reused_total")
		pct := func(hit, miss float64) float64 {
			if hit+miss == 0 {
				return 0
			}
			return 100 * hit / (hit + miss)
		}
		fmt.Printf("  %-14s %.0f reused / %.0f interned (%.1f%% amortized)\n", "terms", tr, ti, pct(tr, ti))
		fmt.Printf("  %-14s %.0f reused / %.0f computed (%.1f%% amortized)\n", "sim rows", rr, rc, pct(rr, rc))
	}

	// Subscription-index occupancy and the candidates-per-event
	// distribution: the inverted index's pruning effectiveness at a glance.
	gauge := func(name string) (float64, bool) {
		f := byName[name]
		if f == nil || len(f.Samples) == 0 {
			return 0, false
		}
		return f.Samples[0].Value, true
	}
	if subs, ok := gauge("thematicep_subindex_subscriptions"); ok {
		fmt.Println("subindex:")
		fmt.Printf("  %-14s %.0f\n", "subscriptions", subs)
		for _, g := range []struct{ label, name string }{
			{"themes", "thematicep_subindex_themes"},
			{"buckets", "thematicep_subindex_buckets"},
			{"terms", "thematicep_subindex_terms"},
			{"approx-only", "thematicep_subindex_approx_entries"},
			{"max bucket", "thematicep_subindex_max_bucket"},
			{"free slots", "thematicep_subindex_free_slots"},
		} {
			if v, ok := gauge(g.name); ok {
				fmt.Printf("  %-14s %.0f\n", g.label, v)
			}
		}
		if v, ok := gauge("thematicep_subindex_avg_bucket"); ok {
			fmt.Printf("  %-14s %.2f\n", "avg bucket", v)
		}
		if f := byName["thematicep_subindex_candidates_per_event"]; f != nil && f.Type == "histogram" {
			count, p50, p95, _ := histogramQuantiles(f)
			if count > 0 {
				fmt.Printf("  %-14s p50 %.0f / p95 %.0f over %.0f events", "candidates", p50, p95, count)
				if subs > 0 {
					fmt.Printf(" (p95 = %.1f%% of live subs)", 100*p95/subs)
				}
				fmt.Println()
			}
		}
	}

	// Cluster membership: one line for the ring's shape, one for churn.
	// Suspect or dead counts above zero during steady state mean the gossip
	// layer is mid-incident even if the pipeline numbers still look fine.
	if f := byName["thematicep_cluster_members"]; f != nil && len(f.Samples) > 0 {
		byState := map[string]float64{}
		total := 0.0
		for _, s := range f.Samples {
			byState[s.Labels["state"]] += s.Value
			total += s.Value
		}
		fmt.Println("membership:")
		fmt.Printf("  %-14s %.0f (%.0f alive / %.0f suspect / %.0f dead)\n",
			"members", total, byState["alive"], byState["suspect"], byState["dead"])
		fmt.Printf("  %-14s %.0f joins / %.0f leaves / %.0f suspicions\n", "churn",
			counter("thematicep_cluster_member_join_total"),
			counter("thematicep_cluster_member_leave_total"),
			counter("thematicep_cluster_member_suspect_total"))
	}

	// Subscription durability: WAL activity on the scraped member(s).
	if appends := counter("thematicep_wal_appends_total"); appends > 0 || counter("thematicep_wal_replayed_records") > 0 {
		fmt.Println("wal:")
		fmt.Printf("  %-14s %.0f appends / %.0f snapshots / %.0f fsyncs\n", "activity",
			appends, counter("thematicep_wal_snapshots_total"), counter("thematicep_wal_fsyncs_total"))
		fmt.Printf("  %-14s %.0f records", "replayed", counter("thematicep_wal_replayed_records"))
		if tb := counter("thematicep_wal_truncated_bytes"); tb > 0 {
			fmt.Printf(" (%.0f torn-tail bytes truncated)", tb)
		}
		fmt.Println()
	}

	// Process runtime health: a slow pipeline with a pinned heap or a
	// goroutine pileup is a different incident than a slow matcher.
	if v, ok := gauge("thematicep_runtime_goroutines"); ok {
		fmt.Println("runtime:")
		fmt.Printf("  %-14s %.0f\n", "goroutines", v)
		if h, ok := gauge("thematicep_runtime_heap_inuse_bytes"); ok {
			fmt.Printf("  %-14s %.1f MiB\n", "heap in-use", h/(1<<20))
		}
		if o, ok := gauge("thematicep_runtime_heap_objects"); ok {
			fmt.Printf("  %-14s %.0f\n", "heap objects", o)
		}
		fmt.Printf("  %-14s %.0f\n", "gc cycles", counter("thematicep_runtime_gc_total"))
		if f := byName["thematicep_runtime_gc_pause_seconds"]; f != nil && f.Type == "histogram" {
			if count, p50, p95, _ := histogramQuantiles(f); count > 0 {
				fmt.Printf("  %-14s p50 %s / p95 %s\n", "gc pause", secs(p50), secs(p95))
			}
		}
		if fds, ok := gauge("thematicep_runtime_open_fds"); ok {
			fmt.Printf("  %-14s %.0f\n", "open fds", fds)
		}
	}

	if f := byName["thematicep_query_detections_total"]; f != nil && len(f.Samples) > 0 {
		fed := byName["thematicep_query_events_total"]
		fedFor := func(query string) float64 {
			if fed == nil {
				return 0
			}
			for _, s := range fed.Samples {
				if s.Labels["query"] == query {
					return s.Value
				}
			}
			return 0
		}
		fmt.Println("queries (detections / events fed):")
		sorted := append([]telemetry.Sample(nil), f.Samples...)
		sort.Slice(sorted, func(i, j int) bool {
			return sorted[i].Labels["query"] < sorted[j].Labels["query"]
		})
		for _, s := range sorted {
			q := s.Labels["query"]
			fmt.Printf("  %-12s %.0f / %.0f\n", q, s.Value, fedFor(q))
		}
	}

	if f := byName["thematicep_semantics_cache_hits_total"]; f != nil {
		miss := byName["thematicep_semantics_cache_misses_total"]
		fmt.Println("caches (hits / misses):")
		missFor := func(cache string) float64 {
			if miss == nil {
				return 0
			}
			for _, s := range miss.Samples {
				if s.Labels["cache"] == cache {
					return s.Value
				}
			}
			return 0
		}
		sorted := append([]telemetry.Sample(nil), f.Samples...)
		sort.Slice(sorted, func(i, j int) bool {
			return sorted[i].Labels["cache"] < sorted[j].Labels["cache"]
		})
		for _, s := range sorted {
			fmt.Printf("  %-12s %.0f / %.0f\n", s.Labels["cache"], s.Value, missFor(s.Labels["cache"]))
		}
	}
}

// printSLO renders each SLO's red/yellow/green burn state from the
// thematicep_slo_* families of one node's scrape. The status gauge is a
// per-node judgment and is never merged across members (summing statuses
// is meaningless), which is why cluster mode calls this per member.
func printSLO(byName map[string]*telemetry.Family, pad string) {
	status := byName["thematicep_slo_status"]
	if status == nil || len(status.Samples) == 0 {
		return
	}
	labeled := func(name, slo string) float64 {
		f := byName[name]
		if f == nil {
			return 0
		}
		for _, s := range f.Samples {
			if s.Labels["slo"] == slo {
				return s.Value
			}
		}
		return 0
	}
	burn := func(slo, window string) float64 {
		f := byName["thematicep_slo_burn_rate"]
		if f == nil {
			return 0
		}
		for _, s := range f.Samples {
			if s.Labels["slo"] == slo && s.Labels["window"] == window {
				return s.Value
			}
		}
		return 0
	}
	if pad == "  " {
		fmt.Println("slo:")
	}
	sorted := append([]telemetry.Sample(nil), status.Samples...)
	sort.Slice(sorted, func(i, j int) bool {
		return sorted[i].Labels["slo"] < sorted[j].Labels["slo"]
	})
	for _, s := range sorted {
		name := s.Labels["slo"]
		light := map[float64]string{0: "GREEN", 1: "YELLOW", 2: "RED"}[s.Value]
		if light == "" {
			light = fmt.Sprintf("status=%g", s.Value)
		}
		good := labeled("thematicep_slo_window_good", name)
		bad := labeled("thematicep_slo_window_bad", name)
		fmt.Printf("%s%-10s %-6s burn %.2f short / %.2f long (objective %g, threshold %s, window %.0f good / %.0f bad)\n",
			pad, name, light, burn(name, "short"), burn(name, "long"),
			labeled("thematicep_slo_objective", name),
			secs(labeled("thematicep_slo_threshold_seconds", name)), good, bad)
	}
}

// histogramQuantiles aggregates every label set of a histogram family into
// one distribution and estimates p50/p95/p99 by linear interpolation within
// the containing bucket.
func histogramQuantiles(f *telemetry.Family) (count, p50, p95, p99 float64) {
	type bucket struct{ le, cum float64 }
	sums := map[float64]float64{}
	for _, s := range f.Samples {
		if !strings.HasSuffix(s.Name, "_bucket") {
			continue
		}
		le, err := parseLe(s.Labels["le"])
		if err != nil {
			continue
		}
		sums[le] += s.Value
	}
	buckets := make([]bucket, 0, len(sums))
	for le, cum := range sums {
		buckets = append(buckets, bucket{le, cum})
	}
	sort.Slice(buckets, func(i, j int) bool { return buckets[i].le < buckets[j].le })
	if len(buckets) == 0 {
		return 0, 0, 0, 0
	}
	count = buckets[len(buckets)-1].cum
	quantile := func(q float64) float64 {
		rank := q * count
		prevLe, prevCum := 0.0, 0.0
		for _, b := range buckets {
			if b.cum >= rank {
				if math.IsInf(b.le, 1) {
					return prevLe
				}
				if b.cum == prevCum {
					return b.le
				}
				return prevLe + (b.le-prevLe)*(rank-prevCum)/(b.cum-prevCum)
			}
			prevLe, prevCum = b.le, b.cum
		}
		return prevLe
	}
	if count > 0 {
		p50, p95, p99 = quantile(0.5), quantile(0.95), quantile(0.99)
	}
	return count, p50, p95, p99
}

func parseLe(s string) (float64, error) {
	if s == "+Inf" {
		return math.Inf(1), nil
	}
	var v float64
	_, err := fmt.Sscanf(s, "%g", &v)
	return v, err
}

func printTraces(body []byte) {
	var traces []telemetry.Trace
	if err := json.Unmarshal(body, &traces); err != nil {
		fmt.Fprintf(os.Stderr, "traces: bad JSON: %v\n", err)
		return
	}
	if len(traces) == 0 {
		fmt.Println("traces: none recorded (is -trace-sample enabled on the daemon?)")
		return
	}
	fmt.Printf("traces (%d recent, newest first):\n", len(traces))
	for i, tr := range traces {
		if i >= 5 {
			fmt.Printf("  ... %d more\n", len(traces)-i)
			break
		}
		fmt.Printf("  %s total=%s\n", tr.EventID, tr.Total.Round(time.Microsecond))
		for _, sp := range tr.Spans {
			fmt.Printf("    %-20s +%-12s %s\n", sp.Stage,
				sp.Offset.Round(time.Microsecond), sp.Duration.Round(time.Microsecond))
		}
	}
}
