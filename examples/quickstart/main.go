// Quickstart: build the semantic space, write one thematic subscription,
// match one event — the running example of the paper's §3.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"thematicep/internal/corpus"
	"thematicep/internal/event"
	"thematicep/internal/index"
	"thematicep/internal/matcher"
	"thematicep/internal/semantics"
)

func main() {
	// 1. The distributional substrate: corpus -> inverted index -> space.
	space := semantics.NewSpace(index.Build(corpus.GenerateDefault()))

	// 2. A subscription in the paper's notation: the ~ operator marks
	// attributes/values the matcher may relax semantically.
	sub, err := event.ParseSubscription(
		"({energy policy, computer systems}, " +
			"{type = increased energy usage event~, device~ = laptop~, office = room 112})")
	if err != nil {
		log.Fatal(err)
	}

	// 3. An event from a different producer with different vocabulary.
	ev, err := event.ParseEvent(
		"({energy consumption monitoring, information technology}, " +
			"{type: increased energy consumption event, measurement unit: kilowatt hour, " +
			"device: computer, office: room 112})")
	if err != nil {
		log.Fatal(err)
	}

	// 4. Match: the thematic approximate matcher finds the most probable
	// mapping between predicates and tuples despite the vocabulary gap.
	m := matcher.New(space)
	mapping, ok := m.Match(sub, ev)
	if !ok {
		log.Fatal("no mapping found")
	}
	fmt.Println("subscription:", sub)
	fmt.Println("event:       ", ev)
	fmt.Printf("matched with score %.3f (mapping probability %.3f)\n", mapping.Score, mapping.Probability)
	for _, c := range mapping.Pairs {
		fmt.Printf("  %-45s <-> %-45s sim=%.3f P=%.3f\n",
			sub.Predicates[c.Predicate], ev.Tuples[c.Tuple], c.Similarity, c.Probability)
	}

	// 5. Top-k mode: alternative mappings with renormalized probabilities,
	// ready to feed complex event processing.
	fmt.Println("\ntop-3 mappings:")
	for i, alt := range m.MatchTopK(sub, ev, 3) {
		fmt.Printf("  #%d score=%.4f P=%.3f\n", i+1, alt.Score, alt.Probability)
	}

	// 6. The same event without themes scores differently: themes sharpen
	// the measure (this is the paper's central claim).
	nonThematic := matcher.New(space, matcher.WithThematic(false))
	fmt.Printf("\nnon-thematic score for comparison: %.3f\n", nonThematic.Score(sub, ev))
}
