// Thresholds: the language extension beyond the paper's §3.4 — comparison
// operators combined with semantic attribute relaxation — plus the negation
// CEP pattern: "a high reading with no shutdown event within 10 minutes".
//
// Run with: go run ./examples/thresholds
package main

import (
	"fmt"
	"log"
	"time"

	"thematicep/internal/cep"
	"thematicep/internal/corpus"
	"thematicep/internal/event"
	"thematicep/internal/index"
	"thematicep/internal/matcher"
	"thematicep/internal/semantics"
)

func main() {
	space := semantics.NewSpace(index.Build(corpus.GenerateDefault()))
	m := matcher.New(space)

	// "temperature~ > 30": the attribute is semantically relaxed (any
	// vendor's name for temperature), the comparison is exact.
	sub, err := event.ParseSubscription(
		"({environmental monitoring, climate observation}, {temperature~ > 30, city = galway})")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("subscription:", sub)

	theme := []string{"environmental monitoring", "air quality"}
	now := time.Date(2026, 7, 5, 14, 0, 0, 0, time.UTC)
	readings := []struct {
		at time.Time
		ev *event.Event
	}{
		{now, &event.Event{ID: "r1", Theme: theme, Tuples: []event.Tuple{
			{Attr: "air temperature", Value: "33.5"},
			{Attr: "city", Value: "galway"},
		}}},
		{now.Add(2 * time.Minute), &event.Event{ID: "r2", Theme: theme, Tuples: []event.Tuple{
			{Attr: "thermal reading", Value: "29.0"}, // below threshold
			{Attr: "city", Value: "galway"},
		}}},
		{now.Add(4 * time.Minute), &event.Event{ID: "r3", Theme: theme, Tuples: []event.Tuple{
			{Attr: "heat level", Value: "36.2"},
			{Attr: "city", Value: "galway"},
		}}},
		{now.Add(6 * time.Minute), &event.Event{ID: "r4", Theme: theme, Tuples: []event.Tuple{
			{Attr: "air temperature", Value: "34.0"},
			{Attr: "city", Value: "santander"}, // wrong city
		}}},
	}

	// Negation: a matched high reading with NO cooling-start event within
	// 10 minutes escalates to an alarm.
	alarm := cep.NewNegation(10*time.Minute, 0.1,
		func(*event.Event) bool { return true }, // triggers are pre-filtered by the matcher
		cep.AttrEquals("type", "cooling started"),
	)

	fmt.Println("\nreadings:")
	var alarms []cep.Detection
	for _, r := range readings {
		score := m.Score(sub, r.ev)
		fmt.Printf("  %s %-3s score=%.3f\n", r.at.Format("15:04"), r.ev.ID, score)
		if score > 0.3 {
			alarms = append(alarms, alarm.Observe(cep.UncertainEvent{
				Event: r.ev, Probability: score, At: r.at,
			})...)
		}
	}
	// No cooling event ever arrives; flush past the window to emit alarms.
	alarms = append(alarms, alarm.Flush(now.Add(20*time.Minute))...)

	fmt.Println("\nalarms (high reading, no cooling within 10 min):")
	for _, a := range alarms {
		fmt.Printf("  reading %s escalated with probability %.3f\n",
			a.Events[0].Event.ID, a.Probability)
	}
	if len(alarms) == 0 {
		fmt.Println("  none")
	}
}
