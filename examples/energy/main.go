// Energy management: Linked-Energy-Intelligence-style building monitoring
// (§5.2.1) where uncertain single-event matches feed complex event
// processing (§3.5): detect "increased consumption, then a consumption peak
// within 15 minutes" with a combined probability.
//
// Run with: go run ./examples/energy
package main

import (
	"fmt"
	"time"

	"thematicep/internal/cep"
	"thematicep/internal/corpus"
	"thematicep/internal/event"
	"thematicep/internal/index"
	"thematicep/internal/matcher"
	"thematicep/internal/semantics"
)

func main() {
	space := semantics.NewSpace(index.Build(corpus.GenerateDefault()))
	m := matcher.New(space)

	consumptionSub := &event.Subscription{
		Theme: []string{"energy consumption monitoring", "energy efficiency", "environmental monitoring"},
		Predicates: []event.Predicate{
			{Attr: "type", Value: "increased energy consumption event", ApproxValue: true},
		},
	}
	peakSub := &event.Subscription{
		Theme: []string{"energy consumption monitoring", "energy efficiency", "environmental monitoring"},
		Predicates: []event.Predicate{
			{Attr: "type", Value: "consumption peak event", ApproxValue: true},
		},
	}

	// A stream of heterogeneous building events (different vendors again).
	theme := []string{"energy consumption monitoring", "power generation", "environmental monitoring", "water management"}
	now := time.Date(2026, 7, 5, 9, 0, 0, 0, time.UTC)
	stream := []struct {
		at time.Time
		ev *event.Event
	}{
		{now, &event.Event{ID: "e1", Theme: theme, Tuples: []event.Tuple{
			{Attr: "type", Value: "increased electricity usage event"},
			{Attr: "device", Value: "server rack"},
			{Attr: "room", Value: "server room"},
		}}},
		{now.Add(4 * time.Minute), &event.Event{ID: "e2", Theme: theme, Tuples: []event.Tuple{
			{Attr: "type", Value: "decreased humidity event"},
			{Attr: "room", Value: "server room"},
		}}},
		{now.Add(9 * time.Minute), &event.Event{ID: "e3", Theme: theme, Tuples: []event.Tuple{
			{Attr: "type", Value: "peak load event"},
			{Attr: "zone", Value: "building"},
		}}},
	}

	// Single-event matching produces uncertain events; the sequence pattern
	// composes them.
	pattern := cep.NewSequence(15*time.Minute, 0.05,
		func(*event.Event) bool { return true }, // step filters below gate by attaching probability upstream
		func(*event.Event) bool { return true },
	)
	// Feed only events that match each step's subscription, carrying the
	// matcher's score as probability: step order enforced by the pattern.
	fmt.Println("stream:")
	var detections []cep.Detection
	for _, item := range stream {
		consumptionScore := m.Score(consumptionSub, item.ev)
		peakScore := m.Score(peakSub, item.ev)
		fmt.Printf("  %s %-4s consumption=%.3f peak=%.3f\n",
			item.at.Format("15:04"), item.ev.ID, consumptionScore, peakScore)

		// Route the event to the step it matches best, above a floor.
		const floor = 0.45
		switch {
		case consumptionScore >= floor && consumptionScore >= peakScore:
			detections = append(detections, pattern.Observe(cep.UncertainEvent{
				Event: item.ev, Probability: consumptionScore, At: item.at,
			})...)
		case peakScore >= floor:
			detections = append(detections, pattern.Observe(cep.UncertainEvent{
				Event: item.ev, Probability: peakScore, At: item.at,
			})...)
		}
	}

	fmt.Println("\ncomplex detections (increased consumption, then peak, within 15 min):")
	if len(detections) == 0 {
		fmt.Println("  none")
		return
	}
	for _, d := range detections {
		fmt.Printf("  %s -> %s with probability %.3f\n",
			d.Events[0].Event.ID, d.Events[1].Event.ID, d.Probability)
	}
}
