// Brokernet: the full middleware stack over TCP. A broker daemon embeds the
// thematic matcher; a consumer subscribes over the network (with replay for
// time decoupling); producers publish heterogeneous events from separate
// connections (space decoupling) without blocking on consumers
// (synchronization decoupling).
//
// Run with: go run ./examples/brokernet
package main

import (
	"fmt"
	"log"

	"thematicep/internal/broker"
	"thematicep/internal/corpus"
	"thematicep/internal/event"
	"thematicep/internal/index"
	"thematicep/internal/matcher"
	"thematicep/internal/semantics"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Broker side: the thematic matcher is the broker's matching engine.
	space := semantics.NewSpace(index.Build(corpus.GenerateDefault()))
	m := matcher.New(space)
	// PreparedStream adapter: the broker compiles each subscription once and
	// each event once per publish instead of per (event, subscription)
	// pair, scores each event's candidates in one columnar sweep, and
	// amortizes whole PublishBatch calls through batch-scope interning.
	b := broker.New(broker.PreparedStream(
		m.Score, m.PrepareSubscription, m.PrepareEvent, m.ScorePrepared, m.ScoreBatch,
		m.NewEventBatch, m.PrepareEventInBatch, m.NewBatchArena, m.ScoreBatchInArena,
		m.FinishEventBatch),
		broker.WithThreshold(0.2))
	defer b.Close()

	srv := broker.NewServer(b)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer srv.Close()
	fmt.Println("broker listening on", addr)

	theme := []string{"land transport", "urban mobility"}

	// A producer publishes BEFORE the consumer exists: time decoupling.
	early, err := broker.Dial(addr.String())
	if err != nil {
		return err
	}
	defer early.Close()
	if err := early.Publish(&event.Event{
		ID: "early-parking", Theme: theme,
		Tuples: []event.Tuple{
			{Attr: "type", Value: "decreased parking event"},
			{Attr: "street", Value: "eyre square"},
		},
	}); err != nil {
		return err
	}

	// Consumer connects later and asks for replay.
	consumer, err := broker.Dial(addr.String())
	if err != nil {
		return err
	}
	defer consumer.Close()
	sub := &event.Subscription{
		Theme: []string{"land transport", "road traffic"},
		Predicates: []event.Predicate{
			{Attr: "type", Value: "decreased garage spot event", ApproxValue: true},
		},
	}
	id, deliveries, err := consumer.Subscribe(sub, true /* replay */)
	if err != nil {
		return err
	}
	fmt.Println("subscribed as", id, "->", sub)

	// A second producer publishes live events with yet another vocabulary.
	producer, err := broker.Dial(addr.String())
	if err != nil {
		return err
	}
	defer producer.Close()
	live := []*event.Event{
		{ID: "live-parking", Theme: theme, Tuples: []event.Tuple{
			{Attr: "type", Value: "decreased car park event"},
			{Attr: "street", Value: "quay street"},
		}},
		{ID: "live-noise", Theme: theme, Tuples: []event.Tuple{
			{Attr: "type", Value: "increased noise event"},
			{Attr: "street", Value: "quay street"},
		}},
	}
	for _, e := range live {
		if err := producer.Publish(e); err != nil {
			return err
		}
	}

	// The subscriber receives the replayed event and the matching live one;
	// the noise event scores below threshold.
	fmt.Println("deliveries:")
	for i := 0; i < 2; i++ {
		d := <-deliveries
		kind := "live"
		if d.Replayed {
			kind = "replayed"
		}
		fmt.Printf("  [%s] %s score=%.3f\n", kind, d.Event.ID, d.Score)
	}
	st := b.Stats()
	fmt.Printf("broker stats: published=%d matched=%d delivered=%d dropped=%d\n",
		st.Published, st.Matched, st.Delivered, st.Dropped)
	return nil
}
