// Smart city: the paper's motivating scenario (§2.1). Alice in the town
// hall planning department wants street-light energy usage during peak
// electricity demand, but sensors from different manufacturers describe the
// same thing with different vocabulary ("energy consumption" vs
// "electricity usage"). One thematic subscription covers the heterogeneity
// that would otherwise require a large rule set.
//
// Run with: go run ./examples/smartcity
package main

import (
	"fmt"

	"thematicep/internal/baseline"
	"thematicep/internal/corpus"
	"thematicep/internal/event"
	"thematicep/internal/index"
	"thematicep/internal/matcher"
	"thematicep/internal/semantics"
)

func main() {
	space := semantics.NewSpace(index.Build(corpus.GenerateDefault()))

	// Alice's single thematic subscription. With Esper-style content-based
	// rules she would need one rule per vendor vocabulary.
	alice := &event.Subscription{
		ID:    "alice-street-lights",
		Theme: []string{"energy consumption monitoring", "public transport", "city planning", "environmental monitoring"},
		Predicates: []event.Predicate{
			{Attr: "type", Value: "increased energy consumption event", ApproxValue: true},
			{Attr: "device", Value: "street lights", ApproxAttr: true, ApproxValue: true},
		},
	}

	// Events from three vendors, each with its own vocabulary, plus two
	// distractors that must not match.
	theme := []string{"energy consumption monitoring", "urban mobility", "city planning"}
	events := []*event.Event{
		{
			ID:    "vendor-a",
			Theme: theme,
			Tuples: []event.Tuple{
				{Attr: "type", Value: "increased energy consumption event"},
				{Attr: "device", Value: "street lights"},
				{Attr: "city", Value: "santander"},
			},
		},
		{
			ID:    "vendor-b",
			Theme: theme,
			Tuples: []event.Tuple{
				{Attr: "type", Value: "increased electricity usage event"},
				{Attr: "appliance", Value: "street lamp"},
				{Attr: "city", Value: "galway"},
			},
		},
		{
			ID:    "vendor-c",
			Theme: theme,
			Tuples: []event.Tuple{
				{Attr: "type", Value: "increased power consumption event"},
				{Attr: "device", Value: "public lighting"},
				{Attr: "zone", Value: "old town"},
			},
		},
		{
			ID:    "distractor-rainfall",
			Theme: theme,
			Tuples: []event.Tuple{
				{Attr: "type", Value: "increased rainfall event"},
				{Attr: "sensor", Value: "rain gauge"},
				{Attr: "city", Value: "santander"},
			},
		},
		{
			ID:    "distractor-parking",
			Theme: theme,
			Tuples: []event.Tuple{
				{Attr: "type", Value: "decreased parking event"},
				{Attr: "sensor", Value: "parking meter"},
				{Attr: "city", Value: "galway"},
			},
		},
	}

	thematic := matcher.New(space)
	content := baseline.ContentMatcher{}

	fmt.Println("Alice's subscription:", alice)
	fmt.Println()
	fmt.Printf("%-22s %-18s %s\n", "event", "content-based", "thematic score")
	for _, ev := range events {
		cb := "no match"
		if content.Matched(alice, ev) {
			cb = "match"
		}
		score := thematic.Score(alice, ev)
		fmt.Printf("%-22s %-18s %.3f\n", ev.ID, cb, score)
	}
	fmt.Println("\nThe content-based matcher needs one rule per vendor vocabulary;")
	fmt.Println("the thematic subscription ranks all three vendor events above the distractors.")
}
