package thematicep_test

// End-to-end integration: synthetic corpus -> index -> parametric space ->
// thematic matcher -> TCP broker -> deliveries -> complex event processing.
// This is the full stack of the paper exercised as one system.

import (
	"testing"
	"time"

	"thematicep/internal/broker"
	"thematicep/internal/cep"
	"thematicep/internal/corpus"
	"thematicep/internal/event"
	"thematicep/internal/index"
	"thematicep/internal/matcher"
	"thematicep/internal/semantics"
)

func TestEndToEndPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}

	// Substrate and matcher.
	space := semantics.NewSpace(index.Build(corpus.GenerateDefault()))
	m := matcher.New(space)

	// Broker over TCP, on the prepared fast path with a worker pool.
	b := broker.New(
		broker.PreparedBatch(m.Score, m.PrepareSubscription, m.PrepareEvent, m.ScorePrepared, m.ScoreBatch),
		broker.WithThreshold(0.52), broker.WithMatchParallelism(4))
	defer b.Close()
	srv := broker.NewServer(b)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Consumer with a thematic approximate subscription.
	consumer, err := broker.Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer consumer.Close()
	sub := &event.Subscription{
		Theme: []string{"energy consumption monitoring", "energy policy"},
		Predicates: []event.Predicate{
			{Attr: "type", Value: "increased energy consumption event", ApproxValue: true},
		},
	}
	_, deliveries, err := consumer.Subscribe(sub, false)
	if err != nil {
		t.Fatal(err)
	}

	// Producer publishes heterogeneous events; two match semantically, one
	// must not.
	producer, err := broker.Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer producer.Close()
	theme := []string{"energy consumption monitoring", "power generation"}
	events := []*event.Event{
		{ID: "e1", Theme: theme, Tuples: []event.Tuple{
			{Attr: "type", Value: "increased electricity consumption event"},
			{Attr: "device", Value: "server rack"},
		}},
		{ID: "noise", Theme: theme, Tuples: []event.Tuple{
			{Attr: "type", Value: "decreased rainfall event"},
			{Attr: "sensor", Value: "rain gauge"},
		}},
		{ID: "e2", Theme: theme, Tuples: []event.Tuple{
			{Attr: "type", Value: "increased power consumption event"},
			{Attr: "device", Value: "air conditioner"},
		}},
	}
	for _, e := range events {
		if err := producer.Publish(e); err != nil {
			t.Fatal(err)
		}
	}

	// Collect the two matching deliveries and feed them to CEP: two
	// increased-consumption events within a window form a complex event.
	pattern := cep.NewSequence(time.Minute, 0,
		func(*event.Event) bool { return true },
		func(*event.Event) bool { return true },
	)
	var detections []cep.Detection
	now := time.Date(2026, 7, 5, 10, 0, 0, 0, time.UTC)
	gotIDs := map[string]bool{}
	for i := 0; i < 2; i++ {
		select {
		case d := <-deliveries:
			gotIDs[d.Event.ID] = true
			detections = append(detections, pattern.Observe(cep.UncertainEvent{
				Event:       d.Event,
				Probability: d.Score,
				At:          now.Add(time.Duration(i) * time.Second),
			})...)
		case <-time.After(10 * time.Second):
			t.Fatalf("timed out; got %v", gotIDs)
		}
	}
	if !gotIDs["e1"] || !gotIDs["e2"] {
		t.Fatalf("wrong deliveries: %v", gotIDs)
	}
	if gotIDs["noise"] {
		t.Fatal("noise event delivered")
	}
	if len(detections) != 1 {
		t.Fatalf("complex detections = %d, want 1", len(detections))
	}
	if p := detections[0].Probability; p <= 0 || p > 1 {
		t.Fatalf("detection probability = %v", p)
	}

	// No extra deliveries pending.
	select {
	case d := <-deliveries:
		t.Fatalf("unexpected extra delivery: %s", d.Event.ID)
	case <-time.After(100 * time.Millisecond):
	}

	st := b.Stats()
	if st.Published != 3 || st.Matched != 2 {
		t.Errorf("stats = %+v", st)
	}
}

// TestEndToEndSubscriptionLanguage drives the same pipeline through the
// textual subscription/event notation, as cmd/themctl does.
func TestEndToEndSubscriptionLanguage(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	space := semantics.NewSpace(index.Build(corpus.GenerateDefault()))
	m := matcher.New(space)
	b := broker.New(m, broker.WithThreshold(0.2))
	defer b.Close()

	sub, err := event.ParseSubscription(
		"({land transport, road traffic}, {type = decreased garage spot event~})")
	if err != nil {
		t.Fatal(err)
	}
	s, err := b.Subscribe(sub)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := event.ParseEvent(
		"({land transport, urban mobility}, {type: decreased car park event, street: quay street})")
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Publish(ev); err != nil {
		t.Fatal(err)
	}
	select {
	case d := <-s.C():
		if d.Score <= 0.2 {
			t.Errorf("score = %v", d.Score)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no delivery")
	}
}
