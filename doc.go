// Package thematicep is a Go reproduction of "Thematic Event Processing"
// (Hasan and Curry, Middleware 2014): an approximate, distributional
// semantics based publish/subscribe matching model in which events and
// subscriptions carry theme tags that parametrize the vector space the
// matcher measures relatedness in.
//
// The implementation lives under internal/:
//
//   - internal/matcher — the thematic approximate probabilistic matcher
//     (the paper's contribution);
//   - internal/semantics — the parametric vector space model with thematic
//     projection (Algorithm 1) over internal/index and internal/corpus;
//   - internal/broker — the pub/sub middleware substrate (in-process and
//     TCP);
//   - internal/workload, internal/eval, internal/figures — the evaluation
//     framework that regenerates the paper's tables and figures;
//   - internal/baseline, internal/cep, internal/thesaurus, internal/vocab —
//     baselines, complex event processing, and vocabulary substrates.
//
// Entry points: cmd/repro regenerates every experiment; cmd/thematicd and
// cmd/themctl run the broker over TCP; examples/ hold runnable scenarios.
// The root-level benchmarks (bench_test.go) cover every table and figure;
// see DESIGN.md and EXPERIMENTS.md.
package thematicep
