package semantics

import (
	"math"
	"testing"

	"thematicep/internal/sparse"
	"thematicep/internal/text"
)

// kernelTerms and kernelThemes span the interesting measure regimes over
// the evaluation corpus: synonyms, unrelated terms, off-vocabulary terms
// (zero projections), multi-word terms, and full-space (nil) themes.
var kernelTerms = []string{
	"energy consumption", "electricity usage", "laptop", "computer",
	"rainfall", "parking", "tram", "qqqunknownqqq", "ozone",
}

var kernelThemes = [][]string{
	nil,
	{"energy"},
	{"transport"},
	{"energy", "weather"},
	{"environment", "transport", "energy"},
}

// oldRelatedness is the pre-kernel hot path preserved as a reference: raw
// projections, two Scale copies to L2-normalize, then the three-branch
// Euclidean merge (Eq. 5) and Eq. 6.
func oldRelatedness(s *Space, aTerm string, at *CompiledTheme, bTerm string, bt *CompiledTheme) float64 {
	a := s.ProjectCompiled(aTerm, at)
	b := s.ProjectCompiled(bTerm, bt)
	if a.IsZero() || b.IsZero() {
		return 0
	}
	a = sparse.Scale(a, 1/a.Norm())
	b = sparse.Scale(b, 1/b.Norm())
	return 1 / (sparse.Euclidean(a, b) + 1)
}

// TestRelatednessKernelIdentity pins the dot-identity kernel to the old
// Scale+Euclidean path over real corpus projections, across the term/theme
// grid. The two agree within 1e-7 absolute (the documented cancellation
// bound of sparse.NormalizedEuclidean); in practice corpus pairs agree to
// ~1e-12 because projections of distinct terms are far from parallel.
func TestRelatednessKernelIdentity(t *testing.T) {
	s := space(t)
	for _, at := range kernelThemes {
		for _, bt := range kernelThemes {
			ca, cb := s.Compile(at), s.Compile(bt)
			for _, a := range kernelTerms {
				for _, b := range kernelTerms {
					ka, kb := text.Canonical(a), text.Canonical(b)
					got := s.RelatednessCompiled(ka, ca, kb, cb)
					want := oldRelatedness(s, ka, ca, kb, cb)
					if math.Abs(got-want) > 1e-7 {
						t.Errorf("relatedness(%q@%v, %q@%v) = %v, old path %v (Δ=%g)",
							a, at, b, bt, got, want, got-want)
					}
				}
			}
		}
	}
}

// TestUnitProjectionCachingOffStillCorrect checks the uncached unit path.
func TestUnitProjectionCachingOffStillCorrect(t *testing.T) {
	cached := space(t)
	raw := NewSpace(evalIndex, WithCaching(false))
	theme := []string{"energy"}
	ct, rt := cached.Compile(theme), raw.Compile(theme)
	for _, term := range kernelTerms {
		k := text.Canonical(term)
		a := cached.RelatednessCompiled(k, ct, "laptop", nil)
		b := raw.RelatednessCompiled(k, rt, "laptop", nil)
		if math.Abs(a-b) > 1e-12 {
			t.Errorf("caching on/off disagree for %q: %v vs %v", term, a, b)
		}
	}
}

// TestResetCachesDropsUnitProjections verifies the per-theme unit caches
// are reset along with the space-wide ones: after a reset, a warm call
// recomputes the projection (observable via the projection counter).
func TestResetCachesDropsUnitProjections(t *testing.T) {
	s := NewSpace(evalIndex)
	ct := s.Compile([]string{"energy"})
	s.RelatednessCompiled("laptop", ct, "computer", nil)
	_, before := s.Computes()
	s.RelatednessCompiled("laptop", ct, "computer", nil) // warm: no recompute
	if _, after := s.Computes(); after != before {
		t.Fatalf("warm call recomputed projections (%d -> %d)", before, after)
	}
	s.ResetCaches()
	s.RelatednessCompiled("laptop", ct, "computer", nil)
	if _, after := s.Computes(); after == before {
		t.Error("ResetCaches left unit projections warm: no recompute observed")
	}
}

// TestRelatednessWarmZeroAlloc asserts the tentpole property: a warm
// Euclidean RelatednessCompiled call allocates nothing — no Scale copies,
// no composite cache keys.
func TestRelatednessWarmZeroAlloc(t *testing.T) {
	s := space(t)
	sub := s.Compile([]string{"energy", "weather"})
	evt := s.Compile([]string{"transport"})
	s.RelatednessCompiled("laptop", sub, "computer", evt) // warm the caches
	allocs := testing.AllocsPerRun(100, func() {
		s.RelatednessCompiled("laptop", sub, "computer", evt)
	})
	if allocs != 0 {
		t.Errorf("warm RelatednessCompiled: %v allocs/op, want 0", allocs)
	}
}

// TestCompileRawMemoBounded asserts the themesRaw fix: permuted and
// duplicated orderings of the same tag set intern to one CompiledTheme and
// cannot grow the raw memo beyond its cap.
func TestCompileRawMemoBounded(t *testing.T) {
	s := NewSpace(evalIndex)
	base := []string{"energy", "transport", "weather", "environment"}
	for i := 0; i < 4*themesRawCap; i++ {
		// A fresh duplication pattern per iteration: the bits of i pick a
		// distinct sequence of duplicate tags, so every raw joined key is
		// distinct while the canonical tag set never changes.
		tags := append([]string{}, base...)
		for b := 0; b < 12; b++ {
			if i>>b&1 == 1 {
				tags = append(tags, "energy")
			} else {
				tags = append(tags, "transport")
			}
		}
		if s.Compile(tags) == nil {
			t.Fatal("Compile returned nil for non-empty theme")
		}
	}
	s.themesMu.RLock()
	raw, keys := len(s.themesRaw), len(s.themesKey)
	s.themesMu.RUnlock()
	if raw > themesRawCap {
		t.Errorf("themesRaw grew to %d entries, cap is %d", raw, themesRawCap)
	}
	if keys != 1 {
		t.Errorf("themesKey has %d entries, want 1 (all inputs are the same tag set)", keys)
	}
	// All permutations must intern to the same compiled theme.
	a := s.Compile([]string{"weather", "energy", "transport", "environment"})
	b := s.Compile([]string{"environment", "weather", "transport", "energy"})
	if a != b {
		t.Error("permuted tag orders compiled to distinct themes")
	}
}
