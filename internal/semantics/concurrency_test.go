package semantics

import (
	"fmt"
	"sync"
	"testing"
)

// TestSpaceConcurrentSingleFlight hammers one Space from 8 goroutines over
// overlapping (term, theme) pairs and checks the two halves of the
// concurrency contract: every concurrent score equals the serial reference
// (stability), and every cached entry was computed exactly once
// (single-flight — Computes() equals the cache entry counts even though 8
// goroutines raced to fill the same keys). Run with -race.
func TestSpaceConcurrentSingleFlight(t *testing.T) {
	ix := evalIndexFor(t)
	terms := []string{
		"energy consumption", "electricity usage", "parking",
		"garage spot", "laptop", "computer", "rainfall", "tram",
	}
	themes := [][]string{
		{"energy consumption monitoring"},
		{"energy policy", "power generation"},
		{"land transport", "road traffic"},
	}

	// Serial reference from an independent space over the same index.
	ref := NewSpace(ix)
	refThemes := make([]*CompiledTheme, len(themes))
	for i, th := range themes {
		refThemes[i] = ref.Compile(th)
	}
	type quad struct{ ti, tj, a, b int }
	var quads []quad
	want := map[quad]float64{}
	for ti := range terms {
		for tj := range terms {
			for a := range themes {
				for b := range themes {
					q := quad{ti, tj, a, b}
					quads = append(quads, q)
					want[q] = ref.RelatednessCompiled(terms[ti], refThemes[a], terms[tj], refThemes[b])
				}
			}
		}
	}

	// Hammer a fresh space: all goroutines walk the same quads (offset so
	// they collide on cold keys), so every cache key is raced.
	s := NewSpace(ix)
	compiled := make([]*CompiledTheme, len(themes))
	for i, th := range themes {
		compiled[i] = s.Compile(th)
	}
	const goroutines, rounds = 8, 3
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				for k := range quads {
					q := quads[(k+g*7)%len(quads)]
					got := s.RelatednessCompiled(terms[q.ti], compiled[q.a], terms[q.tj], compiled[q.b])
					if got != want[q] {
						t.Errorf("goroutine %d: relatedness(%q,%d,%q,%d) = %v, want %v",
							g, terms[q.ti], q.a, terms[q.tj], q.b, got, want[q])
						return
					}
				}
				for _, term := range terms {
					if s.TermVector(term).IsZero() {
						t.Errorf("goroutine %d: zero term vector for %q", g, term)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()

	// Single-flight: each cached entry cost exactly one computation, and the
	// caches hold exactly the distinct keys the workload touched.
	tv, tb, pv, _ := s.CacheStats()
	termComputes, projComputes := s.Computes()
	if termComputes != uint64(tv) {
		t.Errorf("term computes = %d, cache entries = %d (single-flight violated)", termComputes, tv)
	}
	if projComputes != uint64(pv) {
		t.Errorf("projection computes = %d, cache entries = %d (single-flight violated)", projComputes, pv)
	}
	if tv != len(terms) {
		t.Errorf("term vector entries = %d, want %d", tv, len(terms))
	}
	if pv != len(terms)*len(themes) {
		t.Errorf("projection entries = %d, want %d", pv, len(terms)*len(themes))
	}
	if tb != len(themes) {
		t.Errorf("theme basis entries = %d, want %d", tb, len(themes))
	}
}

// TestSpaceConcurrentCompile races theme interning: the same raw tag lists
// compiled from many goroutines must converge to one CompiledTheme per
// distinct key.
func TestSpaceConcurrentCompile(t *testing.T) {
	s := NewSpace(evalIndexFor(t))
	const goroutines = 8
	themes := make([][]string, 16)
	for i := range themes {
		themes[i] = []string{fmt.Sprintf("theme %d", i%4), "shared tag"}
	}
	out := make([][]*CompiledTheme, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			out[g] = make([]*CompiledTheme, len(themes))
			for i, th := range themes {
				out[g][i] = s.Compile(th)
			}
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		for i := range themes {
			if out[g][i] != out[0][i] {
				t.Fatalf("goroutine %d: theme %d interned to a different pointer", g, i)
			}
		}
	}
	for i := range themes {
		if i >= 4 && out[0][i] != out[0][i%4] {
			t.Fatalf("equal themes %d and %d not interned together", i, i%4)
		}
	}
}
