package semantics

import (
	"strings"
	"testing"

	"thematicep/internal/telemetry"
)

func TestSpaceMetricsHitMiss(t *testing.T) {
	s := NewSpace(evalIndexFor(t))
	// Cold projection lookups miss; a warm repeat of the same projection
	// hits. (The warm Relatedness path reads the per-theme unit cache, so
	// exercise projVecs directly through Project.)
	s.Project("car", []string{"transport"})
	cold := s.ProjectionMetric()
	s.Project("car", []string{"transport"})
	warm := s.ProjectionMetric()

	if cold.Misses == 0 {
		t.Error("cold lookups recorded no projection misses")
	}
	if warm.Hits <= cold.Hits {
		t.Errorf("warm repeat added no projection hits: cold %+v warm %+v", cold, warm)
	}
	if warm.HitRate() <= 0 {
		t.Errorf("hit rate = %v, want > 0", warm.HitRate())
	}

	// The warm Relatedness path shows up on the aggregated unit cache.
	s.Relatedness("car", []string{"transport"}, "vehicle", []string{"transport"})
	s.Relatedness("car", []string{"transport"}, "vehicle", []string{"transport"})
	var unit CacheMetric
	for _, m := range s.Metrics() {
		if m.Name == "unit" {
			unit = m
		}
	}
	if unit.Hits == 0 {
		t.Errorf("warm relatedness recorded no unit-cache hits: %+v", unit)
	}

	names := map[string]bool{}
	for _, m := range s.Metrics() {
		names[m.Name] = true
	}
	for _, want := range []string{"termvec", "themebasis", "projection", "unit", "score"} {
		if !names[want] {
			t.Errorf("Metrics missing cache %q", want)
		}
	}
}

func TestSpaceWriteMetricsLints(t *testing.T) {
	s := NewSpace(evalIndexFor(t))
	s.Relatedness("car", []string{"transport"}, "vehicle", []string{"transport"})
	var sb strings.Builder
	s.WriteMetrics(telemetry.NewExpo(&sb))
	out := sb.String()
	if err := telemetry.Lint(strings.NewReader(out)); err != nil {
		t.Fatalf("semantics exposition fails lint: %v\n%s", err, out)
	}
	for _, want := range []string{
		`thematicep_semantics_cache_hits_total{cache="projection"}`,
		`thematicep_semantics_cache_misses_total{cache="projection"}`,
		`thematicep_semantics_cache_entries{cache="unit"}`,
		`thematicep_semantics_singleflight_waits_total{cache="score"}`,
		`thematicep_semantics_projection_shard_hits_total{shard="0"}`,
		`thematicep_semantics_projection_shard_entries{shard="63"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}
