package semantics

import (
	"math/rand"
	"testing"

	"thematicep/internal/vocab"
)

// conceptTerms samples concept terms from the evaluation vocabulary.
func conceptTerms(rng *rand.Rand, n int) []string {
	var pool []string
	for _, d := range vocab.Domains() {
		for _, c := range d.Concepts {
			pool = append(pool, c.Terms()...)
		}
	}
	out := make([]string, n)
	for i := range out {
		out[i] = pool[rng.Intn(len(pool))]
	}
	return out
}

// sampleTheme draws a random theme from the top-term pool.
func sampleTheme(rng *rand.Rand, size int) []string {
	var pool []string
	for _, d := range vocab.Domains() {
		pool = append(pool, d.TopTerms...)
	}
	rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
	if size > len(pool) {
		size = len(pool)
	}
	return pool[:size]
}

// Property: every projected vector's support is contained in the theme
// basis, for any term and any theme.
func TestProjectionSupportWithinBasis(t *testing.T) {
	s := space(t)
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 40; trial++ {
		theme := sampleTheme(rng, 1+rng.Intn(10))
		basis := s.ThemeBasis(theme)
		inBasis := make(map[int32]bool, len(basis))
		for _, d := range basis {
			inBasis[d] = true
		}
		for _, term := range conceptTerms(rng, 5) {
			proj := s.Project(term, theme)
			proj.Range(func(id int32, w float64) {
				if !inBasis[id] {
					t.Fatalf("term %q theme %v: projection dim %d outside basis", term, theme, id)
				}
				if w < 0 {
					t.Fatalf("term %q: negative weight %v", term, w)
				}
			})
		}
	}
}

// Property: the basis of a theme union is the union of the bases.
func TestThemeBasisUnion(t *testing.T) {
	s := space(t)
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 20; trial++ {
		a := sampleTheme(rng, 1+rng.Intn(4))
		b := sampleTheme(rng, 1+rng.Intn(4))
		union := append(append([]string(nil), a...), b...)

		got := s.ThemeBasis(union)
		want := make(map[int32]bool)
		for _, d := range s.ThemeBasis(a) {
			want[d] = true
		}
		for _, d := range s.ThemeBasis(b) {
			want[d] = true
		}
		if len(got) != len(want) {
			t.Fatalf("union basis size %d, want %d (themes %v | %v)", len(got), len(want), a, b)
		}
		for _, d := range got {
			if !want[d] {
				t.Fatalf("doc %d in union basis but not in either part", d)
			}
		}
	}
}

// Property: relatedness is always in [0,1] and symmetric under swapping
// (term, theme) pairs, for random vocabulary terms and themes.
func TestRelatednessBoundsAndSymmetry(t *testing.T) {
	s := space(t)
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 60; trial++ {
		terms := conceptTerms(rng, 2)
		ta := sampleTheme(rng, rng.Intn(6))
		tb := sampleTheme(rng, rng.Intn(6))
		r1 := s.Relatedness(terms[0], ta, terms[1], tb)
		r2 := s.Relatedness(terms[1], tb, terms[0], ta)
		if r1 < 0 || r1 > 1 {
			t.Fatalf("relatedness out of range: %v", r1)
		}
		if r1 != r2 {
			t.Fatalf("asymmetric: %v vs %v (terms %v themes %v/%v)", r1, r2, terms, ta, tb)
		}
	}
}

// Property: growing the theme never shrinks the basis.
func TestThemeBasisMonotone(t *testing.T) {
	s := space(t)
	rng := rand.New(rand.NewSource(24))
	for trial := 0; trial < 20; trial++ {
		small := sampleTheme(rng, 1+rng.Intn(5))
		extra := sampleTheme(rng, 1+rng.Intn(5))
		large := append(append([]string(nil), small...), extra...)
		if len(s.ThemeBasis(large)) < len(s.ThemeBasis(small)) {
			t.Fatalf("basis shrank when theme grew: %v -> %v", small, large)
		}
	}
}

func TestPrecomputeProjectionsFillsCache(t *testing.T) {
	s := NewSpace(evalIndexFor(t))
	themes := [][]string{
		{"energy policy", "power generation"},
		{"land transport"},
	}
	terms := []string{"energy consumption", "parking", "laptop"}
	s.PrecomputeProjections(terms, themes...)
	_, bases, projections, _ := s.CacheStats()
	if bases != len(themes) {
		t.Errorf("bases cached = %d, want %d", bases, len(themes))
	}
	if projections != len(terms)*len(themes) {
		t.Errorf("projections cached = %d, want %d", projections, len(terms)*len(themes))
	}
}

// The disambiguation invariant across several homographs: projecting onto
// the home domain's theme must make the in-domain sense at least as related
// as the full space says, relative to the out-of-domain sense.
func TestHomographMargins(t *testing.T) {
	s := space(t)
	cases := []struct {
		homograph, inTerm, outTerm string
		theme                      []string
	}{
		{"coach", "bus", "tutor", []string{"land transport", "public transport"}},
		{"cell", "battery", "mobile phone", []string{"energy policy", "electrical energy"}},
		{"current", "electric current", "water flow", []string{"energy policy", "power generation"}},
	}
	for _, c := range cases {
		in := s.Relatedness(c.inTerm, c.theme, c.homograph, c.theme)
		out := s.Relatedness(c.outTerm, c.theme, c.homograph, c.theme)
		if in <= out {
			t.Errorf("theme %v: rel(%q,%q)=%.3f <= rel(%q,%q)=%.3f",
				c.theme, c.inTerm, c.homograph, in, c.outTerm, c.homograph, out)
		}
	}
}
