package semantics

import (
	"fmt"
	"io"

	"thematicep/internal/telemetry"
)

// CacheMetric is one cache's cumulative lookup and coalescing counters.
type CacheMetric struct {
	Name        string  // termvec, themebasis, projection, unit, score
	Hits        uint64  // lookups answered from the cache
	Misses      uint64  // lookups that fell through to a computation
	Entries     int     // current cached entries
	Waits       uint64  // single-flight waiters coalesced onto another fill
	WaitSeconds float64 // total time those waiters spent blocked
}

// HitRate returns hits / (hits + misses), or 0 before any lookup.
func (m CacheMetric) HitRate() float64 {
	if t := m.Hits + m.Misses; t > 0 {
		return float64(m.Hits) / float64(t)
	}
	return 0
}

// metricOf snapshots one cache's counters.
func metricOf[V any](name string, c *cache[V]) CacheMetric {
	h, m := c.stats()
	w, ws := c.waitStats()
	return CacheMetric{Name: name, Hits: h, Misses: m, Entries: c.len(), Waits: w, WaitSeconds: ws}
}

// Metrics snapshots every cache's counters, in a stable order. The unit
// entry aggregates the full-space unit cache and every compiled theme's
// per-theme unit cache (the Euclidean hot path's working representation).
func (s *Space) Metrics() []CacheMetric {
	unit := metricOf("unit", &s.unitFull)
	s.themesMu.RLock()
	themes := make([]*CompiledTheme, 0, len(s.themesKey))
	for _, t := range s.themesKey {
		themes = append(themes, t)
	}
	s.themesMu.RUnlock()
	for _, t := range themes {
		tm := metricOf("unit", &t.units)
		unit.Hits += tm.Hits
		unit.Misses += tm.Misses
		unit.Entries += tm.Entries
		unit.Waits += tm.Waits
		unit.WaitSeconds += tm.WaitSeconds
	}
	return []CacheMetric{
		metricOf("termvec", &s.termVecs),
		metricOf("themebasis", &s.themeBases),
		metricOf("projection", &s.projVecs),
		unit,
		metricOf("score", &s.scores),
	}
}

// ProjectionMetric returns the combined counters of the projection working
// set: the raw projection cache plus the unit caches holding the normalized
// projections the Euclidean scoring hot path actually reads. This is the
// hit-rate input for evaluation runs and the repro harness; per-cache
// breakdowns stay available via Metrics.
func (s *Space) ProjectionMetric() CacheMetric {
	var out CacheMetric
	for _, m := range s.Metrics() {
		if m.Name == "projection" || m.Name == "unit" {
			out.Hits += m.Hits
			out.Misses += m.Misses
			out.Entries += m.Entries
			out.Waits += m.Waits
			out.WaitSeconds += m.WaitSeconds
		}
	}
	out.Name = "projection"
	return out
}

// WriteMetrics emits the space's cache statistics in the Prometheus text
// format, making *Space a broker.Collector (satisfied structurally; this
// package does not import the broker):
//
//   - hit/miss counters, entry gauges, and single-flight wait counters per
//     cache (cache label: termvec, themebasis, projection, unit, score),
//   - per-shard projection hit/miss counters and entry gauges (shard
//     label), exposing stripe skew on the hottest cache.
//
// Route the writer through a telemetry.Expo (MetricsHandler does) so the
// labeled families emit one HELP/TYPE header across all series.
func (s *Space) WriteMetrics(w io.Writer) {
	for _, m := range s.Metrics() {
		l := []telemetry.Label{{Key: "cache", Value: m.Name}}
		telemetry.WriteCounterVec(w, "thematicep_semantics_cache_hits_total",
			"Cache lookups answered from the cache.", l, m.Hits)
		telemetry.WriteCounterVec(w, "thematicep_semantics_cache_misses_total",
			"Cache lookups that fell through to a computation.", l, m.Misses)
		telemetry.WriteGaugeVec(w, "thematicep_semantics_cache_entries",
			"Current cached entries.", l, float64(m.Entries))
		telemetry.WriteCounterVec(w, "thematicep_semantics_singleflight_waits_total",
			"Lookups coalesced onto another goroutine's in-progress computation.", l, m.Waits)
		telemetry.WriteCounterVecFloat(w, "thematicep_semantics_singleflight_wait_seconds_total",
			"Total time coalesced lookups spent blocked.", l, m.WaitSeconds)
	}
	tv, pv := s.Computes()
	telemetry.WriteCounter(w, "thematicep_semantics_term_computes_total",
		"Full-space term-vector constructions (cold path).", tv)
	telemetry.WriteCounter(w, "thematicep_semantics_projection_computes_total",
		"Thematic projection computations (Algorithm 1 executions).", pv)
	for i := 0; i < numShards; i++ {
		h, ms, n := s.projVecs.shardStats(i)
		l := []telemetry.Label{{Key: "shard", Value: fmt.Sprintf("%d", i)}}
		telemetry.WriteCounterVec(w, "thematicep_semantics_projection_shard_hits_total",
			"Projection-cache hits per stripe.", l, h)
		telemetry.WriteCounterVec(w, "thematicep_semantics_projection_shard_misses_total",
			"Projection-cache misses per stripe.", l, ms)
		telemetry.WriteGaugeVec(w, "thematicep_semantics_projection_shard_entries",
			"Projection-cache entries per stripe.", l, float64(n))
	}
}
