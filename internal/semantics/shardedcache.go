package semantics

import (
	"hash/maphash"
	"sync"
	"sync/atomic"
	"time"
)

// numShards stripes each cache map. Power of two so the hash can be masked;
// 64 shards keep concurrent readers of *different* keys on different locks
// (and usually different cache lines) even at high core counts, while the
// per-shard RWMutex makes warm reads of the *same* key contention-free
// (RLock only).
const numShards = 64

// flight tracks one in-progress computation so concurrent misses on the
// same key coalesce: the first caller computes, the rest wait on done.
type flight[V any] struct {
	done chan struct{}
	val  V
	ok   bool
}

// shard is one stripe of a cache: a read-optimized map plus the in-flight
// computations keyed into this stripe.
type shard[V any] struct {
	mu       sync.RWMutex
	m        map[string]V
	inflight map[string]*flight[V]

	// Lookup outcome counters. Counted only in get — every public lookup
	// path probes get before do, so counting in both would double-count
	// misses. One uncontended atomic add per lookup.
	hits   atomic.Uint64
	misses atomic.Uint64
}

// cache is a striped, read-optimized, string-keyed memo with single-flight
// fills. Warm reads take only a shard RLock; a cold key is computed exactly
// once no matter how many goroutines miss on it concurrently (the paper's
// "caching and indexing" engineering, §5.3.2, made safe for the parallel
// matching engine). The zero value is ready to use.
type cache[V any] struct {
	shards [numShards]shard[V]

	// Single-flight coalescing counters: how many callers waited on
	// another goroutine's in-progress computation, and for how long in
	// total. Both touched only on the cold wait path.
	waits  atomic.Uint64
	waitNs atomic.Int64
}

// cacheSeed is shared by every cache; shard placement only needs to be
// stable within one process.
var cacheSeed = maphash.MakeSeed()

// shardFor hashes key onto a stripe. maphash uses the runtime's hardware-
// accelerated string hash, so striping costs a few ns even for the long
// composite score keys on the warm read path (a byte-loop FNV here showed
// up as a measurable per-match regression).
func (c *cache[V]) shardFor(key string) *shard[V] {
	return &c.shards[maphash.String(cacheSeed, key)&(numShards-1)]
}

// get returns the cached value for key without ever computing.
func (c *cache[V]) get(key string) (V, bool) {
	sh := c.shardFor(key)
	sh.mu.RLock()
	v, ok := sh.m[key]
	sh.mu.RUnlock()
	if ok {
		sh.hits.Add(1)
	} else {
		sh.misses.Add(1)
	}
	return v, ok
}

// do returns the value for key, computing it via compute at most once
// across concurrent callers. compute runs outside every lock, so it may
// recurse into *other* caches (projection -> theme basis) but must not
// re-enter the same key of the same cache.
func (c *cache[V]) do(key string, compute func() V) V {
	sh := c.shardFor(key)
	sh.mu.RLock()
	v, ok := sh.m[key]
	sh.mu.RUnlock()
	if ok {
		return v
	}

	sh.mu.Lock()
	if v, ok := sh.m[key]; ok {
		sh.mu.Unlock()
		return v
	}
	if f, ok := sh.inflight[key]; ok {
		// Someone else is computing this key: wait for it.
		sh.mu.Unlock()
		t0 := time.Now()
		<-f.done
		c.waits.Add(1)
		c.waitNs.Add(int64(time.Since(t0)))
		if f.ok {
			return f.val
		}
		// The computing goroutine panicked; recompute here.
		return c.do(key, compute)
	}
	f := &flight[V]{done: make(chan struct{})}
	if sh.inflight == nil {
		sh.inflight = make(map[string]*flight[V])
	}
	sh.inflight[key] = f
	sh.mu.Unlock()

	defer func() {
		sh.mu.Lock()
		if f.ok {
			if sh.m == nil {
				sh.m = make(map[string]V)
			}
			sh.m[key] = f.val
		}
		delete(sh.inflight, key)
		sh.mu.Unlock()
		close(f.done)
	}()
	f.val = compute()
	f.ok = true
	return f.val
}

// set stores a value unconditionally (used by warm-up paths that already
// computed outside the cache).
func (c *cache[V]) set(key string, v V) {
	sh := c.shardFor(key)
	sh.mu.Lock()
	if sh.m == nil {
		sh.m = make(map[string]V)
	}
	sh.m[key] = v
	sh.mu.Unlock()
}

// len returns the total number of cached entries across shards.
func (c *cache[V]) len() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.RLock()
		n += len(sh.m)
		sh.mu.RUnlock()
	}
	return n
}

// stats sums the lookup outcome counters across shards.
func (c *cache[V]) stats() (hits, misses uint64) {
	for i := range c.shards {
		hits += c.shards[i].hits.Load()
		misses += c.shards[i].misses.Load()
	}
	return hits, misses
}

// shardStats reports one stripe's lookup outcomes and occupancy.
func (c *cache[V]) shardStats(i int) (hits, misses uint64, entries int) {
	sh := &c.shards[i]
	sh.mu.RLock()
	entries = len(sh.m)
	sh.mu.RUnlock()
	return sh.hits.Load(), sh.misses.Load(), entries
}

// waitStats reports the single-flight coalescing counters.
func (c *cache[V]) waitStats() (waits uint64, waitSeconds float64) {
	return c.waits.Load(), float64(c.waitNs.Load()) / 1e9
}

// reset drops every cached entry. In-flight computations finish and publish
// into the new maps; callers that raced a reset may recompute once.
func (c *cache[V]) reset() {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		sh.m = nil
		sh.mu.Unlock()
	}
}
