package semantics

import (
	"sync"
	"testing"

	"thematicep/internal/corpus"
	"thematicep/internal/index"
)

// evalSpace builds the full evaluation space once for all tests in this
// package; tests must not mutate it except through exported methods.
var (
	evalOnce  sync.Once
	evalSpace *Space
	evalIndex *index.Index
)

func space(t testing.TB) *Space {
	t.Helper()
	evalOnce.Do(func() {
		evalIndex = index.Build(corpus.GenerateDefault())
		evalSpace = NewSpace(evalIndex)
	})
	return evalSpace
}

func TestThemeKey(t *testing.T) {
	tests := []struct {
		name string
		give []string
		want string
	}{
		{name: "empty", give: nil, want: ""},
		{name: "one", give: []string{"Energy Policy"}, want: "energy policy"},
		{name: "sorted", give: []string{"b", "a"}, want: "a|b"},
		{name: "dedup", give: []string{"a", "A", "a"}, want: "a"},
		{name: "blank dropped", give: []string{"", "x"}, want: "x"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := ThemeKey(tt.give); got != tt.want {
				t.Errorf("ThemeKey(%v) = %q, want %q", tt.give, got, tt.want)
			}
		})
	}
}

func TestTermVectorMultiWord(t *testing.T) {
	s := space(t)
	v := s.TermVector("energy consumption")
	if v.IsZero() {
		t.Fatal("vector of in-vocabulary term is zero")
	}
	// The multi-word vector includes the dims of both token vectors.
	if v.NNZ() < s.Index().DocFreq("consumption") {
		t.Errorf("multi-word vector smaller than one token's postings")
	}
	if !s.TermVector("qqqunknownqqq").IsZero() {
		t.Error("vector of off-vocabulary term is non-zero")
	}
}

func TestSynonymsMoreRelatedThanUnrelated(t *testing.T) {
	s := space(t)
	tests := []struct {
		a, syn, unrelated string
	}{
		{a: "energy consumption", syn: "electricity usage", unrelated: "rainfall"},
		{a: "parking", syn: "garage spot", unrelated: "ozone"},
		{a: "laptop", syn: "computer", unrelated: "tram"},
		{a: "ireland", syn: "eire", unrelated: "kettle"},
	}
	for _, tt := range tests {
		rs := s.NonThematicRelatedness(tt.a, tt.syn)
		ru := s.NonThematicRelatedness(tt.a, tt.unrelated)
		if rs <= ru {
			t.Errorf("relatedness(%q,%q)=%v <= relatedness(%q,%q)=%v",
				tt.a, tt.syn, rs, tt.a, tt.unrelated, ru)
		}
	}
}

func TestRelatednessRange(t *testing.T) {
	s := space(t)
	pairs := [][2]string{
		{"energy consumption", "energy usage"},
		{"parking", "parking"},
		{"temperature", "social class"},
		{"qqqnope", "parking"},
	}
	for _, p := range pairs {
		r := s.NonThematicRelatedness(p[0], p[1])
		if r < 0 || r > 1 {
			t.Errorf("relatedness(%q,%q) = %v out of [0,1]", p[0], p[1], r)
		}
	}
}

func TestIdenticalTermMaxRelatedness(t *testing.T) {
	s := space(t)
	if r := s.NonThematicRelatedness("parking", "parking"); r != 1 {
		t.Errorf("relatedness(parking, parking) = %v, want 1 (distance 0)", r)
	}
}

func TestRelatednessSymmetric(t *testing.T) {
	s := space(t)
	theme := []string{"energy policy", "electrical energy"}
	a := s.Relatedness("laptop", theme, "computer", theme)
	b := s.Relatedness("computer", theme, "laptop", theme)
	if a != b {
		t.Errorf("asymmetric: %v vs %v", a, b)
	}
}

func TestUnknownTermsZeroRelatedness(t *testing.T) {
	s := space(t)
	if r := s.NonThematicRelatedness("qqqnopea", "qqqnopeb"); r != 0 {
		t.Errorf("relatedness of two unknown terms = %v, want 0", r)
	}
}

func TestThemeBasisExcludesMixedDocs(t *testing.T) {
	s := space(t)
	c := corpus.GenerateDefault()
	basis := s.ThemeBasis([]string{"energy policy", "power generation"})
	if len(basis) == 0 {
		t.Fatal("empty basis for energy theme")
	}
	for _, d := range basis {
		if c.Docs[d].Kind == corpus.KindMixed {
			t.Fatalf("basis includes mixed doc %q", c.Docs[d].Title)
		}
	}
	// The basis must be a strict subspace.
	if len(basis) >= s.Index().NumDocs() {
		t.Error("basis is not a strict subspace")
	}
}

func TestThemeBasisEmptyTheme(t *testing.T) {
	s := space(t)
	if b := s.ThemeBasis(nil); b != nil {
		t.Errorf("basis of empty theme = %v, want nil (full space)", b)
	}
	if b := s.ThemeBasis([]string{"qqqunseen"}); len(b) != 0 {
		t.Errorf("basis of off-vocabulary theme has %d docs", len(b))
	}
}

func TestProjectShrinksVectors(t *testing.T) {
	s := space(t)
	full := s.TermVector("energy consumption")
	proj := s.Project("energy consumption", []string{"energy policy"})
	if proj.IsZero() {
		t.Fatal("projection of energy consumption onto energy theme is zero")
	}
	if proj.NNZ() >= full.NNZ() {
		t.Errorf("projection (%d dims) not smaller than full (%d dims)", proj.NNZ(), full.NNZ())
	}
	// Projection dims must be inside the basis.
	basis := s.ThemeBasis([]string{"energy policy"})
	inBasis := make(map[int32]bool, len(basis))
	for _, d := range basis {
		inBasis[d] = true
	}
	for _, d := range proj.Dims() {
		if !inBasis[d] {
			t.Fatalf("projection has dim %d outside the basis", d)
		}
	}
}

func TestProjectEmptyThemeIsFullVector(t *testing.T) {
	s := space(t)
	full := s.TermVector("parking")
	proj := s.Project("parking", nil)
	if full.NNZ() != proj.NNZ() {
		t.Error("projection with empty theme differs from full vector")
	}
}

func TestProjectCompletelyFilteredTerm(t *testing.T) {
	s := space(t)
	// "rainfall" (environment) projected onto a pure social theme: the term
	// hardly occurs there; projection is zero or near-empty.
	proj := s.Project("rainfall", []string{"social welfare"})
	full := s.TermVector("rainfall")
	if proj.NNZ() >= full.NNZ() {
		t.Errorf("cross-domain projection did not shrink: %d vs %d", proj.NNZ(), full.NNZ())
	}
}

// The paper's disambiguation effect: "coach" means bus under a transport
// theme and tutor under an education theme. The thematic measure must
// prefer the in-theme sense; the non-thematic measure mixes senses.
func TestThematicDisambiguation(t *testing.T) {
	s := space(t)
	transport := []string{"land transport", "road traffic", "public transport"}
	education := []string{"information technology", "teaching", "documentation"}

	busTransport := s.Relatedness("bus", transport, "coach", transport)
	tutorTransport := s.Relatedness("tutor", transport, "coach", transport)
	if busTransport <= tutorTransport {
		t.Errorf("under transport theme: rel(bus,coach)=%v <= rel(tutor,coach)=%v",
			busTransport, tutorTransport)
	}

	tutorEducation := s.Relatedness("tutor", education, "coach", education)
	busEducation := s.Relatedness("bus", education, "coach", education)
	if tutorEducation <= busEducation {
		t.Errorf("under education theme: rel(tutor,coach)=%v <= rel(bus,coach)=%v",
			tutorEducation, busEducation)
	}
}

func TestIDFRecomputeAblation(t *testing.T) {
	ix := evalIndexFor(t)
	withRecompute := NewSpace(ix)
	without := NewSpace(ix, WithIDFRecompute(false))
	theme := []string{"energy policy", "power generation"}
	a := withRecompute.Project("energy consumption", theme)
	b := without.Project("energy consumption", theme)
	if a.IsZero() || b.IsZero() {
		t.Fatal("projection unexpectedly zero")
	}
	// Same support (both filtered by the same basis), different weights.
	if a.NNZ() == b.NNZ() {
		same := true
		a.Range(func(id int32, w float64) {
			if b.Weight(id) != w {
				same = false
			}
		})
		if same {
			t.Error("idf recomputation had no effect on weights")
		}
	}
}

func evalIndexFor(t testing.TB) *index.Index {
	t.Helper()
	space(t) // ensures evalIndex is built
	return evalIndex
}

func TestCosineDistanceOption(t *testing.T) {
	s := NewSpace(evalIndexFor(t), WithDistance(Cosine))
	r := s.NonThematicRelatedness("energy consumption", "electricity usage")
	u := s.NonThematicRelatedness("energy consumption", "rainfall")
	if r <= u {
		t.Errorf("cosine: rel(syn)=%v <= rel(unrelated)=%v", r, u)
	}
	if r < 0 || r > 1 {
		t.Errorf("cosine relatedness %v out of range", r)
	}
}

func TestCachingOffStillCorrect(t *testing.T) {
	cached := space(t)
	uncached := NewSpace(evalIndexFor(t), WithCaching(false))
	theme := []string{"energy policy"}
	a := cached.Relatedness("laptop", theme, "computer", theme)
	b := uncached.Relatedness("laptop", theme, "computer", theme)
	if a != b {
		t.Errorf("caching changed the result: %v vs %v", a, b)
	}
	_, _, _, scores := uncached.CacheStats()
	if scores != 0 {
		t.Error("uncached space filled the score cache")
	}
}

func TestPrecomputeScoresFillsCache(t *testing.T) {
	s := NewSpace(evalIndexFor(t))
	s.PrecomputeScores([]string{"laptop", "parking"}, []string{"computer", "garage spot"})
	_, _, _, scores := s.CacheStats()
	if scores != 4 {
		t.Errorf("score cache has %d entries, want 4", scores)
	}
	s.ResetCaches()
	tv, tb, pv, sc := s.CacheStats()
	if tv+tb+pv+sc != 0 {
		t.Error("ResetCaches left entries behind")
	}
}

func TestConcurrentRelatedness(t *testing.T) {
	s := NewSpace(evalIndexFor(t))
	theme := []string{"energy policy", "land transport"}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				s.Relatedness("laptop", theme, "computer", theme)
				s.Relatedness("parking", theme, "garage spot", nil)
			}
		}()
	}
	wg.Wait()
}
