// Package semantics implements the paper's distributional-semantics
// substrate: an ESA-style semantic measure over a corpus index (§3.1) and
// the Parametric Vector Space Model with thematic projection (§4, Fig. 5,
// Algorithm 1).
//
// The central operation is the parametric semantic measure
//
//	sm : T × 2^TH × T × 2^TH → [0,1]
//
// (§4.3): given a subscription term and an event term, each with its theme
// tags, project both terms into their thematic subspaces (Algorithm 1),
// measure the Euclidean distance of the projections (Eq. 5), and map to
// relatedness 1/(d+1) (Eq. 6). Empty themes select the full, non-thematic
// space, which is exactly the paper's non-thematic baseline measure.
//
// # Concurrency
//
// A Space is safe for concurrent use and built to scale reads across cores:
// every cache (term vectors, theme bases, projections, memoized scores) is
// striped over sharded maps with per-shard read-write locks, so concurrent
// RelatednessCompiled calls on warm caches never serialize on a global
// lock. Cold entries are single-flighted: a (term, theme) projection missed
// by N goroutines at once is computed exactly once while the other N-1
// wait. Compiled themes are interned under a read-mostly lock whose warm
// path is an RLock. Cached sparse.Vector values are shared between callers
// and must be treated as immutable.
package semantics

import (
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"thematicep/internal/index"
	"thematicep/internal/sparse"
	"thematicep/internal/text"
)

// Distance selects the vector distance used by the measure.
type Distance int

// Supported distances. The paper's Eq. 5 uses Euclidean over the projected
// vectors (applied here to L2-normalized projections, see Relatedness);
// §3.1 names cosine as the other standard choice, exercised by the distance
// ablation (DESIGN.md §4).
const (
	Euclidean Distance = iota + 1
	Cosine
)

// Option configures a Space.
type Option interface {
	apply(*options)
}

type options struct {
	distance     Distance
	recomputeIDF bool
	caching      bool
	scoreCache   bool
}

type distanceOption Distance

func (d distanceOption) apply(o *options) { o.distance = Distance(d) }

// WithDistance selects the distance function (default Euclidean).
func WithDistance(d Distance) Option { return distanceOption(d) }

type recomputeIDFOption bool

func (r recomputeIDFOption) apply(o *options) { o.recomputeIDF = bool(r) }

// WithIDFRecompute enables or disables the idf recomputation of Algorithm 1
// lines 8-10 (default enabled). Disabling it keeps the full-space weights
// after basis filtering; it exists for the ablation benches.
func WithIDFRecompute(enabled bool) Option { return recomputeIDFOption(enabled) }

type cachingOption bool

func (c cachingOption) apply(o *options) { o.caching = bool(c) }

// WithCaching enables or disables the term-vector, basis, and projection
// caches (default enabled) — the engineering the paper's §5.3.2 calls
// "caching and indexing techniques".
func WithCaching(enabled bool) Option { return cachingOption(enabled) }

type scoreCacheOption bool

func (c scoreCacheOption) apply(o *options) { o.scoreCache = bool(c) }

// WithScoreCache enables memoization of pairwise relatedness scores
// (default disabled). The paper's normal matcher computes relatedness at
// match time; its "precomputed esa scores" configuration (§5, the ~91,000
// ev/s result) corresponds to enabling this and calling PrecomputeScores.
func WithScoreCache(enabled bool) Option { return scoreCacheOption(enabled) }

// Space is a parametric distributional vector space over an index. It is
// safe for concurrent use; see the package documentation for the
// concurrency contract.
type Space struct {
	ix   *index.Index
	opts options

	// scoreCache gates the sm() memo; atomic because PrecomputeScores may
	// enable it while matchers are running.
	scoreCache atomic.Bool

	termVecs   cache[sparse.Vector] // full-space term vectors
	themeBases cache[[]int32]       // theme key -> basis doc ids
	projVecs   cache[sparse.Vector] // term "\x00" theme id -> projection
	unitFull   cache[sparse.Unit]   // term -> unit-normalized full-space vector
	scores     cache[float64]       // sm() memo

	themesMu  sync.RWMutex
	themesRaw map[string]*CompiledTheme // raw joined tags -> compiled theme
	themesKey map[string]*CompiledTheme // canonical key -> compiled theme

	// termOrds interns canonical terms to dense ordinals (starting at 1)
	// so hot-path memo keys can be flat integers instead of strings. The
	// ordinals are only coherent within one Space.
	termOrdsMu sync.RWMutex
	termOrds   map[string]uint32

	// Computation counters: how many times the expensive cold paths
	// actually ran. They certify the single-flight property (computations
	// == cache entries under concurrent load) and feed cold-start
	// experiments.
	termComputes atomic.Uint64
	projComputes atomic.Uint64
}

// CompiledTheme is a resolved theme tag set: its canonical key plus a short
// interned id used in hot-path cache keys. Compile once per subscription or
// event and reuse; the zero of themes (nil) means the full space.
type CompiledTheme struct {
	// Key is the canonical theme key (ThemeKey of the tags).
	Key string
	// Tags are the original tags.
	Tags []string

	id  string // short interned id, stable within one Space
	ord uint32 // dense ordinal (≥1), stable within one Space

	// units caches the unit-normalized projections of this theme, keyed by
	// canonical term alone. Hanging the cache off the compiled theme keeps
	// the warm Euclidean relatedness path free of composite-key
	// construction: a term+theme lookup is a single string hash, no
	// allocation (the projVecs path must concatenate term and theme id into
	// a fresh key string on every call).
	units cache[sparse.Unit]
}

// NewSpace builds a Space over ix.
func NewSpace(ix *index.Index, opts ...Option) *Space {
	o := options{
		distance:     Euclidean,
		recomputeIDF: true,
		caching:      true,
	}
	for _, opt := range opts {
		opt.apply(&o)
	}
	s := &Space{
		ix:        ix,
		opts:      o,
		themesRaw: make(map[string]*CompiledTheme),
		themesKey: make(map[string]*CompiledTheme),
		termOrds:  make(map[string]uint32),
	}
	s.scoreCache.Store(o.scoreCache)
	return s
}

// themesRawCap bounds the raw-ordering memo of Compile. Every distinct
// ordering/duplication of the same tag set is a distinct raw key, so an
// adversarial or highly varied tag stream could otherwise grow the map
// forever even though the canonical theme set is tiny. When the memo fills
// up it is simply cleared: hot orderings re-enter on their next call, and
// themesKey (bounded by genuinely distinct themes) is never dropped.
const themesRawCap = 1024

// Compile resolves a theme tag set once, memoized by the raw joined tags.
// Relatedness sits on the matching hot path and is called with the same
// theme slices for every event; recanonicalizing, sorting, and embedding
// full theme keys into cache keys on every call would dominate matching
// time. The raw memo is bounded by themesRawCap. Compile(nil) returns nil:
// the full space.
func (s *Space) Compile(theme []string) *CompiledTheme {
	if len(theme) == 0 {
		return nil
	}
	raw := strings.Join(theme, "\x01")
	s.themesMu.RLock()
	t, ok := s.themesRaw[raw]
	s.themesMu.RUnlock()
	if ok {
		return t
	}

	key := ThemeKey(theme)
	s.themesMu.Lock()
	t, ok = s.themesKey[key]
	if !ok {
		t = &CompiledTheme{
			Key:  key,
			Tags: append([]string(nil), theme...),
			id:   "t" + itoa(len(s.themesKey)),
			ord:  uint32(len(s.themesKey)) + 1,
		}
		s.themesKey[key] = t
	}
	if len(s.themesRaw) >= themesRawCap {
		s.themesRaw = make(map[string]*CompiledTheme, themesRawCap)
	}
	s.themesRaw[raw] = t
	s.themesMu.Unlock()
	return t
}

// itoa is a minimal non-negative integer formatter (avoids strconv on the
// compile path; compile volume is tiny but keep it dependency-light).
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// Ord returns the theme's dense ordinal, unique and stable within the
// Space that compiled it (≥ 1; by convention 0 denotes the nil theme /
// full space). Hot-path memo tables use it as a flat integer key.
func (t *CompiledTheme) Ord() uint32 {
	if t == nil {
		return 0
	}
	return t.ord
}

// TermOrd interns a canonical term to a dense ordinal (≥ 1), unique and
// stable within this Space. Like theme ordinals it exists so per-event memo
// keys can be flat integers — two terms are canonically equal iff their
// ordinals are equal. Safe for concurrent use.
func (s *Space) TermOrd(term string) uint32 {
	s.termOrdsMu.RLock()
	ord, ok := s.termOrds[term]
	s.termOrdsMu.RUnlock()
	if ok {
		return ord
	}
	s.termOrdsMu.Lock()
	ord, ok = s.termOrds[term]
	if !ok {
		ord = uint32(len(s.termOrds)) + 1
		s.termOrds[term] = ord
	}
	s.termOrdsMu.Unlock()
	return ord
}

// Index returns the underlying inverted index.
func (s *Space) Index() *index.Index { return s.ix }

// TermVector returns the full-space distributional vector of a (possibly
// multi-word) term: the sum of its tokens' TF/IDF vectors (Eq. 1/4).
func (s *Space) TermVector(term string) sparse.Vector {
	key := text.Canonical(term)
	if !s.opts.caching {
		return s.termVector(key)
	}
	// get-before-do keeps the warm path free of the do closure, which would
	// otherwise be heap-allocated on every call.
	if v, ok := s.termVecs.get(key); ok {
		return v
	}
	return s.termVecs.do(key, func() sparse.Vector { return s.termVector(key) })
}

func (s *Space) termVector(canonical string) sparse.Vector {
	s.termComputes.Add(1)
	var v sparse.Vector
	for _, tok := range text.Tokenize(canonical) {
		tv := s.ix.Vector(tok)
		if tv.IsZero() {
			continue
		}
		if v.IsZero() {
			v = tv
		} else {
			v = sparse.Add(v, tv)
		}
	}
	return v
}

// ThemeKey returns the canonical cache key of a theme tag set. Tag order
// and duplicates do not matter.
func ThemeKey(theme []string) string {
	if len(theme) == 0 {
		return ""
	}
	keys := make([]string, 0, len(theme))
	seen := make(map[string]bool, len(theme))
	for _, tag := range theme {
		k := text.Canonical(tag)
		if k == "" || seen[k] {
			continue
		}
		seen[k] = true
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return strings.Join(keys, "|")
}

// ThemeBasis returns the thematic basis of a theme tag set: the sorted
// document ids where the theme's distributional vector is non-zero
// (Fig. 5 steps 2-3). An empty theme yields a nil basis, meaning the full
// space.
func (s *Space) ThemeBasis(theme []string) []int32 {
	return s.basisOf(s.Compile(theme))
}

func (s *Space) basisOf(t *CompiledTheme) []int32 {
	if t == nil {
		return nil
	}
	if b, ok := s.themeBases.get(t.Key); ok {
		return b
	}
	return s.themeBases.do(t.Key, func() []int32 { return s.themeBasis(t.Key) })
}

func (s *Space) themeBasis(themeKey string) []int32 {
	set := make(map[int32]struct{})
	for _, tag := range strings.Split(themeKey, "|") {
		// A multi-word tag selects the documents containing its phrase, not
		// every document mentioning one of its words: "land transport" must
		// not pull in every "land" document.
		for _, d := range s.ix.PhraseDocs(text.Tokenize(tag)) {
			set[d] = struct{}{}
		}
	}
	basis := make([]int32, 0, len(set))
	for d := range set {
		basis = append(basis, d)
	}
	sort.Slice(basis, func(i, j int) bool { return basis[i] < basis[j] })
	return basis
}

// Project implements Algorithm 1: the thematic projection of term given the
// theme tag set. Components outside the thematic basis are zeroed; weights
// inside the basis are recomputed with the basis-relative idf
// (lines 8-10). An empty theme returns the full-space vector.
func (s *Space) Project(term string, theme []string) sparse.Vector {
	return s.ProjectCompiled(text.Canonical(term), s.Compile(theme))
}

// ProjectCompiled is Project for pre-canonicalized terms and compiled
// themes — the matching hot path.
func (s *Space) ProjectCompiled(termKey string, t *CompiledTheme) sparse.Vector {
	if t == nil {
		return s.TermVector(termKey)
	}
	if !s.opts.caching {
		return s.project(termKey, t)
	}
	cacheKey := termKey + "\x00" + t.id
	if v, ok := s.projVecs.get(cacheKey); ok {
		return v
	}
	return s.projVecs.do(cacheKey, func() sparse.Vector { return s.project(termKey, t) })
}

func (s *Space) project(termKey string, t *CompiledTheme) sparse.Vector {
	s.projComputes.Add(1)
	basis := s.basisOf(t)
	if len(basis) == 0 {
		// The theme selects nothing: the space is filtered completely
		// (the paper's "rare terms" outlier case, §5.3.2).
		return sparse.Vector{}
	}
	var out sparse.Vector
	for _, tok := range text.Tokenize(termKey) {
		ps := s.ix.Postings(tok)
		if len(ps) == 0 {
			continue
		}
		// df of tok inside the basis: both the postings list and the basis
		// are sorted by document id, so a single linear merge walk counts
		// the intersection in O(P+B) — the binary-search-per-posting
		// alternative costs O(P·log B) and dominated Algorithm 1 on large
		// themes.
		dfB := 0
		for i, j := 0, 0; i < len(ps) && j < len(basis); {
			switch d := ps[i].Doc; {
			case d == basis[j]:
				dfB++
				i++
				j++
			case d < basis[j]:
				i++
			default:
				j++
			}
		}
		if dfB == 0 {
			// No occurrence in the subspace.
			continue
		}
		// Add-one-smoothed basis idf: a token present in every basis
		// document is heavily down-weighted but not annihilated — without
		// smoothing, a term naming its own theme ("energy consumption"
		// under an energy theme) would lose its dominant token entirely and
		// degrade into residual noise.
		idfB := math.Log(float64(len(basis)+1) / float64(dfB))
		ids := make([]int32, 0, dfB)
		weights := make([]float64, 0, dfB)
		for i, j := 0, 0; i < len(ps) && j < len(basis); {
			switch d := ps[i].Doc; {
			case d == basis[j]:
				ids = append(ids, d)
				weights = append(weights, ps[i].TF*idfB)
				i++
				j++
			case d < basis[j]:
				i++
			default:
				j++
			}
		}
		tv := sparse.New(ids, weights)
		if out.IsZero() {
			out = tv
		} else {
			out = sparse.Add(out, tv)
		}
	}
	if !s.opts.recomputeIDF {
		// Ablation mode: basis filtering only, full-space weights.
		return sparse.Mask(s.termVector(termKey), basis)
	}
	return out
}

// Relatedness is the parametric semantic measure sm(ths, ts, the, te)
// (§4.3): thematic projections of both terms, distance (Eq. 5), relatedness
// (Eq. 6). Passing nil themes measures in the full space (non-thematic
// mode). Two completely filtered (zero) projections yield 0: the subspace
// offers no evidence of relatedness.
func (s *Space) Relatedness(subTerm string, subTheme []string, eventTerm string, eventTheme []string) float64 {
	return s.RelatednessCompiled(text.Canonical(subTerm), s.Compile(subTheme),
		text.Canonical(eventTerm), s.Compile(eventTheme))
}

// RelatednessCompiled is Relatedness for pre-canonicalized terms and
// compiled themes — the matching hot path.
func (s *Space) RelatednessCompiled(subTerm string, subTheme *CompiledTheme, eventTerm string, eventTheme *CompiledTheme) float64 {
	if s.scoreCache.Load() {
		cacheKey := subTerm + "\x00" + themeID(subTheme) + "\x00" +
			eventTerm + "\x00" + themeID(eventTheme)
		if r, ok := s.scores.get(cacheKey); ok {
			return r
		}
		return s.scores.do(cacheKey, func() float64 {
			return s.relatedness(subTerm, subTheme, eventTerm, eventTheme)
		})
	}
	return s.relatedness(subTerm, subTheme, eventTerm, eventTheme)
}

// relatedness is the uncached measure body of RelatednessCompiled.
func (s *Space) relatedness(subTerm string, subTheme *CompiledTheme, eventTerm string, eventTheme *CompiledTheme) float64 {
	if s.opts.distance == Euclidean {
		// Distance is measured between L2-normalized projections: Eq. 5 on
		// unit vectors. Normalization makes the measure scale-invariant, so
		// high-frequency terms with long tf-idf vectors are not penalized
		// against short ones (a known artifact of raw Euclidean over VSMs).
		// The unit forms are cached per (term, theme) with their norms
		// precomputed, so the warm path is a single allocation-free merged
		// dot product via ‖â−b̂‖ = √(2−2·â·b̂) — no Scale copies, no
		// composite cache keys (see sparse.NormalizedEuclidean for the
		// float-identity contract).
		a := s.unitProjection(subTerm, subTheme)
		if subTerm == eventTerm && subTheme == eventTheme {
			// Identical term and theme project to the same vector: distance
			// is exactly 0, relatedness exactly 1. The dot-identity kernel
			// would lose this exactness (â·â = 1−ε in floats); compiled
			// themes are interned, so pointer equality decides.
			if a.IsZero() {
				return 0
			}
			return 1
		}
		b := s.unitProjection(eventTerm, eventTheme)
		if a.IsZero() || b.IsZero() {
			// A completely filtered projection offers no evidence of meaning
			// (the paper's "rare terms ... cause the space to be filtered
			// completely", §5.3.2); without this rule a zero vector would be
			// spuriously "close" to everything under Euclidean distance.
			return 0
		}
		return 1 / (sparse.NormalizedEuclidean(a, b) + 1)
	}
	a := s.ProjectCompiled(subTerm, subTheme)
	b := s.ProjectCompiled(eventTerm, eventTheme)
	if a.IsZero() || b.IsZero() {
		return 0
	}
	return sparse.Cosine(a, b)
}

// unitProjection returns the cached unit-normalized thematic projection of
// a canonical term — the Euclidean hot path's working representation. The
// full-space forms live in one Space-wide cache; thematic forms live in a
// per-theme cache keyed by term alone, so the warm lookup never builds a
// composite key string.
func (s *Space) unitProjection(termKey string, t *CompiledTheme) sparse.Unit {
	if !s.opts.caching {
		return s.ProjectCompiled(termKey, t).Normalize()
	}
	c := &s.unitFull
	if t != nil {
		c = &t.units
	}
	if u, ok := c.get(termKey); ok {
		return u
	}
	return c.do(termKey, func() sparse.Unit { return s.ProjectCompiled(termKey, t).Normalize() })
}

// RelatednessRow fills out[j] with RelatednessCompiled(subTerm, subTheme,
// eventTerms[j], eventTheme) for every j — the columnar batch-scoring
// primitive. On the Euclidean path the subscription term's unit projection
// is resolved once and swept across the whole event-term column, instead
// of being re-fetched per pair as the scalar call does; every arithmetic
// step is otherwise identical to RelatednessCompiled, so the row is
// bit-identical to |eventTerms| scalar calls. The cosine and score-cache
// configurations fall back to the scalar measure per element.
// len(out) must be at least len(eventTerms).
func (s *Space) RelatednessRow(subTerm string, subTheme *CompiledTheme, eventTerms []string, eventTheme *CompiledTheme, out []float64) {
	if s.opts.distance != Euclidean || s.scoreCache.Load() {
		for j, et := range eventTerms {
			out[j] = s.RelatednessCompiled(subTerm, subTheme, et, eventTheme)
		}
		return
	}
	a := s.unitProjection(subTerm, subTheme)
	aZero := a.IsZero()
	for j, et := range eventTerms {
		if subTerm == et && subTheme == eventTheme {
			if aZero {
				out[j] = 0
			} else {
				out[j] = 1
			}
			continue
		}
		if aZero {
			out[j] = 0
			continue
		}
		b := s.unitProjection(et, eventTheme)
		if b.IsZero() {
			out[j] = 0
			continue
		}
		out[j] = 1 / (sparse.NormalizedEuclidean(a, b) + 1)
	}
}

// ResolveUnits fills out[j] with the unit-normalized thematic projection
// of each canonical term — the event-side column of the Euclidean row
// kernel, resolved once per event instead of once per row. It returns
// false (leaving out untouched) when the space scores through the scalar
// path (cosine distance or an active score cache), where pre-resolved
// units are unused. len(out) must be at least len(terms).
func (s *Space) ResolveUnits(terms []string, t *CompiledTheme, out []sparse.Unit) bool {
	if s.opts.distance != Euclidean || s.scoreCache.Load() {
		return false
	}
	for j, term := range terms {
		out[j] = s.unitProjection(term, t)
	}
	return true
}

// RelatednessRowUnits is RelatednessRow with the event terms' unit
// projections already resolved (by ResolveUnits, against the same
// eventTheme): the sweep skips the per-pair projection-cache lookup and
// goes straight to the dot product. eventTerms is still consulted for the
// exact-identity rule, so the row is bit-identical to RelatednessRow. The
// scalar fallback configurations ignore units entirely.
func (s *Space) RelatednessRowUnits(subTerm string, subTheme *CompiledTheme, eventTerms []string, eventUnits []sparse.Unit, eventTheme *CompiledTheme, out []float64) {
	if s.opts.distance != Euclidean || s.scoreCache.Load() {
		for j, et := range eventTerms {
			out[j] = s.RelatednessCompiled(subTerm, subTheme, et, eventTheme)
		}
		return
	}
	a := s.unitProjection(subTerm, subTheme)
	aZero := a.IsZero()
	for j, et := range eventTerms {
		if subTerm == et && subTheme == eventTheme {
			if aZero {
				out[j] = 0
			} else {
				out[j] = 1
			}
			continue
		}
		if aZero {
			out[j] = 0
			continue
		}
		b := eventUnits[j]
		if b.IsZero() {
			out[j] = 0
			continue
		}
		out[j] = 1 / (sparse.NormalizedEuclidean(a, b) + 1)
	}
}

// ResolveUnit is the scalar form of ResolveUnits: the unit-normalized
// thematic projection of one canonical term, or ok=false when the space
// scores through the scalar path and pre-resolved units are unused.
// Prepared subscriptions resolve their predicate terms once through this at
// preparation time (see matcher.PrepareSubscription).
func (s *Space) ResolveUnit(term string, t *CompiledTheme) (sparse.Unit, bool) {
	if s.opts.distance != Euclidean || s.scoreCache.Load() {
		return sparse.Unit{}, false
	}
	return s.unitProjection(term, t), true
}

// RelatednessRowPreUnits is RelatednessRowUnits with the subscription
// term's unit projection also pre-resolved (by ResolveUnit, against the
// same subTheme) — the fully resolved row kernel: no cache lookup on
// either side, straight to the dot products. Term identity runs on
// interned ordinals (TermOrd), whose equality is canonical-string
// equality, so the row stays bit-identical to RelatednessRow. Callers
// must have resolved a under the space's current scoring configuration
// (ResolveUnit returned ok).
func (s *Space) RelatednessRowPreUnits(a sparse.Unit, subOrd uint32, subTheme *CompiledTheme, eventOrds []uint32, eventUnits []sparse.Unit, eventTheme *CompiledTheme, out []float64) {
	aZero := a.IsZero()
	for j, et := range eventOrds {
		if subOrd == et && subTheme == eventTheme {
			if aZero {
				out[j] = 0
			} else {
				out[j] = 1
			}
			continue
		}
		if aZero {
			out[j] = 0
			continue
		}
		b := eventUnits[j]
		if b.IsZero() {
			out[j] = 0
			continue
		}
		out[j] = 1 / (sparse.NormalizedEuclidean(a, b) + 1)
	}
}

// NonThematicRelatedness measures relatedness in the full space: the
// domain-independent esa of the paper's baseline (§5.2.5).
func (s *Space) NonThematicRelatedness(a, b string) float64 {
	return s.Relatedness(a, nil, b, nil)
}

// PrecomputeScores enables the score cache and fills it with all pairwise
// non-thematic relatedness values between subscription terms and event
// terms. It reproduces the "precomputed esa scores" configuration of the
// prior-work comparison (§5, experiment E8): after precomputation, matching
// those pairs never touches vectors.
func (s *Space) PrecomputeScores(subTerms, eventTerms []string) {
	s.scoreCache.Store(true)
	for _, a := range subTerms {
		for _, b := range eventTerms {
			s.NonThematicRelatedness(a, b)
		}
	}
}

// PrecomputeProjections warms the projection cache for every (term, theme)
// pair — the paper's "building an efficient indexing for thematic
// projection" future-work item (§7): a broker that knows its subscription
// and event themes ahead of time projects its vocabulary up front and pays
// only distance computation at match time.
func (s *Space) PrecomputeProjections(terms []string, themes ...[]string) {
	for _, theme := range themes {
		t := s.Compile(theme)
		for _, term := range terms {
			// Warming the unit form fills the raw projection cache on the
			// way through, so both representations are hot afterwards.
			s.unitProjection(text.Canonical(term), t)
		}
	}
}

// CacheStats reports cache entry counts (term vectors, theme bases,
// projections, scores) for observability and cold-start experiments.
func (s *Space) CacheStats() (termVecs, themeBases, projections, scores int) {
	return s.termVecs.len(), s.themeBases.len(), s.projVecs.len(), s.scores.len()
}

// Computes reports how many times the expensive cold paths actually ran:
// full-space term-vector constructions and thematic projections
// (Algorithm 1 executions). Under the single-flight contract each cached
// entry costs exactly one computation regardless of concurrency.
func (s *Space) Computes() (termVectors, projections uint64) {
	return s.termComputes.Load(), s.projComputes.Load()
}

// ResetCaches drops every cache. Cold-start experiments (§7 future work)
// use it to measure first-event latency. Concurrent computations finishing
// during a reset may repopulate entries they were already producing.
func (s *Space) ResetCaches() {
	s.termVecs.reset()
	s.themeBases.reset()
	s.projVecs.reset()
	s.unitFull.reset()
	s.scores.reset()
	s.themesMu.RLock()
	themes := make([]*CompiledTheme, 0, len(s.themesKey))
	for _, t := range s.themesKey {
		themes = append(themes, t)
	}
	s.themesMu.RUnlock()
	// Per-theme unit caches are reset outside themesMu: reset only takes
	// the per-shard locks, and compiled themes are never deleted.
	for _, t := range themes {
		t.units.reset()
	}
}

// themeID returns the interned id of a compiled theme ("" for the full
// space).
func themeID(t *CompiledTheme) string {
	if t == nil {
		return ""
	}
	return t.id
}
