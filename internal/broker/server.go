package broker

import (
	"fmt"
	"net"
	"sync"
)

// Server exposes a Broker over TCP using the wire protocol. One server
// serves many client connections; each connection may hold many
// subscriptions.
type Server struct {
	broker *Broker

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	wg       sync.WaitGroup
	closed   bool
}

// NewServer wraps a broker.
func NewServer(b *Broker) *Server {
	return &Server{
		broker: b,
		conns:  make(map[net.Conn]struct{}),
	}
}

// Listen starts accepting connections on addr (e.g. "127.0.0.1:7070") and
// returns the bound address. Serving happens on background goroutines until
// Close.
func (s *Server) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("broker server: %w", err)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return nil, ErrClosed
	}
	s.listener = ln
	s.mu.Unlock()

	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

// connState tracks one client connection's subscriptions and serializes
// writes (delivery forwarders and request acknowledgements share the
// socket).
type connState struct {
	conn    net.Conn
	writeMu sync.Mutex
	subs    map[string]*Subscriber
	wg      sync.WaitGroup
}

func (cs *connState) write(f *Frame) error {
	cs.writeMu.Lock()
	defer cs.writeMu.Unlock()
	return WriteFrame(cs.conn, f)
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	cs := &connState{conn: conn, subs: make(map[string]*Subscriber)}
	defer func() {
		for _, sub := range cs.subs {
			sub.Close()
		}
		cs.wg.Wait()
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()

	for {
		f, err := ReadFrame(conn)
		if err != nil {
			return
		}
		switch f.Type {
		case FramePublish:
			if err := s.broker.Publish(f.Event); err != nil {
				cs.write(&Frame{Type: FrameError, Error: err.Error()})
				continue
			}
			cs.write(&Frame{Type: FrameOK})

		case FrameSubscribe:
			var opts []SubscribeOption
			if f.Replay {
				opts = append(opts, WithReplay(true))
			}
			sub, err := s.broker.Subscribe(f.Subscription, opts...)
			if err != nil {
				cs.write(&Frame{Type: FrameError, Error: err.Error()})
				continue
			}
			cs.subs[sub.ID()] = sub
			// Acknowledge before starting the forwarder so the OK frame
			// always precedes the first delivery on the wire.
			cs.write(&Frame{Type: FrameOK, SubscriptionID: sub.ID()})
			cs.wg.Add(1)
			go forwardDeliveries(cs, sub)

		case FrameUnsubscribe:
			if sub, ok := cs.subs[f.SubscriptionID]; ok {
				delete(cs.subs, f.SubscriptionID)
				sub.Close()
				cs.write(&Frame{Type: FrameOK, SubscriptionID: f.SubscriptionID})
			} else {
				cs.write(&Frame{Type: FrameError, Error: "unknown subscription " + f.SubscriptionID})
			}

		default:
			cs.write(&Frame{Type: FrameError, Error: "unknown frame type " + f.Type})
		}
	}
}

// forwardDeliveries streams a subscriber's deliveries onto the connection.
func forwardDeliveries(cs *connState, sub *Subscriber) {
	defer cs.wg.Done()
	for d := range sub.C() {
		err := cs.write(&Frame{
			Type:           FrameDelivery,
			Event:          d.Event,
			SubscriptionID: d.SubscriptionID,
			Score:          d.Score,
			Replay:         d.Replayed,
		})
		if err != nil {
			return
		}
	}
}

// Close stops accepting, closes every connection, and waits for the serving
// goroutines. The underlying broker is left open (the caller owns it).
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	if s.listener != nil {
		s.listener.Close()
	}
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
}
