package broker

import (
	"fmt"
	"net"
	"sync"
	"time"

	"thematicep/internal/event"
)

// DefaultHandshakeTimeout bounds how long a freshly accepted connection
// may stay silent before sending its first frame. A peer (or port
// scanner) that connects but never identifies itself would otherwise hold
// a serving goroutine forever.
const DefaultHandshakeTimeout = 10 * time.Second

// SubHandle is one active subscription as the transport layer sees it:
// *Subscriber satisfies it, and so does a federated handle from
// internal/cluster.
type SubHandle interface {
	ID() string
	C() <-chan Delivery
	Close()
}

// Backend is the pub/sub engine a Server fronts. The local Broker is the
// default; a cluster node substitutes itself to add theme-routed
// federation without the server knowing.
type Backend interface {
	Publish(e *event.Event) error
	SubscribeHandle(sub *event.Subscription, opts ...SubscribeOption) (SubHandle, error)
}

// BatchBackend is the optional batched-ingest extension of Backend: a
// backend implementing it receives publishb frames as whole batches
// (all-or-nothing admission); otherwise the server falls back to a serial
// Publish loop that stops at the first error.
type BatchBackend interface {
	PublishBatch(events []*event.Event) error
}

// DefaultMaxBatch caps how many events one publishb frame may carry unless
// overridden with SetMaxBatch. The cap bounds the per-frame work a single
// client can force on the matching pipeline; MaxFrameSize already bounds
// the bytes.
const DefaultMaxBatch = 4096

// SubscribeHandle implements Backend over the local broker.
func (b *Broker) SubscribeHandle(sub *event.Subscription, opts ...SubscribeOption) (SubHandle, error) {
	s, err := b.Subscribe(sub, opts...)
	if err != nil {
		return nil, err
	}
	return s, nil
}

// PeerHandler takes over connections that identify themselves as federation
// peers with a hello frame. Implemented by internal/cluster; when nil,
// hello frames are answered with an error.
type PeerHandler interface {
	// ServePeer owns the connection until it returns; the server closes
	// the conn afterwards.
	ServePeer(conn net.Conn, hello *Frame)
}

// SubscribeRedirector lets a backend redirect a subscription to the broker
// owning its theme shard. A non-empty address is sent to the client as a
// redirect frame instead of registering locally.
type SubscribeRedirector interface {
	Redirect(sub *event.Subscription) string
}

// QueryHandle is one active continuous query as the transport layer sees
// it: a named detection stream, closed by the client's unsubscribe or by
// connection teardown.
type QueryHandle interface {
	Name() string
	C() <-chan QueryDetection
	Close()
}

// QueryRegistrar owns continuous queries (implemented by query.Engine).
// When nil, query frames are answered with an error.
type QueryRegistrar interface {
	RegisterQuery(spec *QuerySpec) (QueryHandle, error)
}

// Server exposes a Backend over TCP using the wire protocol. One server
// serves many client connections; each connection may hold many
// subscriptions.
type Server struct {
	broker  *Broker
	backend Backend

	mu               sync.Mutex
	listener         net.Listener
	conns            map[net.Conn]struct{}
	peerHandler      PeerHandler
	queries          QueryRegistrar
	recovered        *Recovered
	handshakeTimeout time.Duration
	maxBatch         int
	wg               sync.WaitGroup
	closed           bool
}

// NewServer wraps a broker.
func NewServer(b *Broker) *Server {
	return &Server{
		broker:           b,
		backend:          b,
		conns:            make(map[net.Conn]struct{}),
		handshakeTimeout: DefaultHandshakeTimeout,
		maxBatch:         DefaultMaxBatch,
	}
}

// SetMaxBatch overrides the largest batch one publishb frame may carry
// (DefaultMaxBatch). Oversized batches are rejected whole with an error
// frame. Zero or negative disables the cap. Call before traffic arrives.
func (s *Server) SetMaxBatch(n int) {
	s.mu.Lock()
	s.maxBatch = n
	s.mu.Unlock()
}

func (s *Server) getMaxBatch() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.maxBatch
}

// SetHandshakeTimeout overrides how long a new connection may wait before
// its first frame (DefaultHandshakeTimeout). Zero or negative disables the
// bound. Call before traffic arrives.
func (s *Server) SetHandshakeTimeout(d time.Duration) {
	s.mu.Lock()
	s.handshakeTimeout = d
	s.mu.Unlock()
}

func (s *Server) getHandshakeTimeout() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.handshakeTimeout
}

// SetBackend replaces the engine requests are routed to (for example a
// cluster node wrapping the broker). Call before traffic arrives.
func (s *Server) SetBackend(be Backend) {
	s.mu.Lock()
	s.backend = be
	s.mu.Unlock()
}

// SetPeerHandler installs the handler for inbound federation connections.
func (s *Server) SetPeerHandler(h PeerHandler) {
	s.mu.Lock()
	s.peerHandler = h
	s.mu.Unlock()
}

// SetQueryRegistrar installs the continuous-query engine behind query
// frames. Call before traffic arrives.
func (s *Server) SetQueryRegistrar(qr QueryRegistrar) {
	s.mu.Lock()
	s.queries = qr
	s.mu.Unlock()
}

func (s *Server) getQueryRegistrar() QueryRegistrar {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queries
}

// SetRecovered installs the WAL-recovered registration registry: subscribe
// and query frames naming a parked registration adopt it instead of
// re-registering. Call before traffic arrives.
func (s *Server) SetRecovered(r *Recovered) {
	s.mu.Lock()
	s.recovered = r
	s.mu.Unlock()
}

func (s *Server) getRecovered() *Recovered {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.recovered
}

func (s *Server) getBackend() Backend {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.backend
}

func (s *Server) getPeerHandler() PeerHandler {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.peerHandler
}

// Listen starts accepting connections on addr (e.g. "127.0.0.1:7070") and
// returns the bound address. Serving happens on background goroutines until
// Close.
func (s *Server) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("broker server: %w", err)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return nil, ErrClosed
	}
	s.listener = ln
	s.mu.Unlock()

	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

// connState tracks one client connection's subscriptions and serializes
// writes (delivery forwarders and request acknowledgements share the
// socket).
type connState struct {
	conn    net.Conn
	writeMu sync.Mutex
	subs    map[string]SubHandle
	queries map[string]QueryHandle
	wg      sync.WaitGroup
}

func (cs *connState) write(f *Frame) error {
	cs.writeMu.Lock()
	defer cs.writeMu.Unlock()
	return WriteFrame(cs.conn, f)
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	cs := &connState{
		conn:    conn,
		subs:    make(map[string]SubHandle),
		queries: make(map[string]QueryHandle),
	}
	defer func() {
		for _, sub := range cs.subs {
			sub.Close()
		}
		for _, q := range cs.queries {
			q.Close()
		}
		cs.wg.Wait()
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()

	// Handshake bound: the first frame must arrive within the handshake
	// timeout or the connection is dropped — a peer that connects but
	// never identifies cannot hold this goroutine forever. Once the
	// connection has proven itself the deadline is cleared: an idle
	// subscriber waiting for deliveries is legitimate.
	if d := s.getHandshakeTimeout(); d > 0 {
		conn.SetReadDeadline(time.Now().Add(d))
	}
	first := true
	for {
		f, err := ReadFrame(conn)
		if err != nil {
			return
		}
		if first {
			first = false
			conn.SetReadDeadline(time.Time{})
		}
		switch f.Type {
		case FrameHello:
			// The connection is a federation peer, not a client; hand it
			// to the cluster layer for its lifetime.
			if h := s.getPeerHandler(); h != nil {
				h.ServePeer(conn, f)
				return
			}
			cs.write(&Frame{Type: FrameError, Error: "not clustered"})

		case FramePublish:
			if err := s.getBackend().Publish(f.Event); err != nil {
				cs.write(&Frame{Type: FrameError, Error: err.Error()})
				continue
			}
			cs.write(&Frame{Type: FrameOK})

		case FramePublishBatch:
			if mb := s.getMaxBatch(); mb > 0 && len(f.Events) > mb {
				cs.write(&Frame{Type: FrameError,
					Error: fmt.Sprintf("batch of %d events exceeds server cap %d", len(f.Events), mb)})
				continue
			}
			be := s.getBackend()
			var err error
			if bb, ok := be.(BatchBackend); ok {
				err = bb.PublishBatch(f.Events)
			} else {
				for _, e := range f.Events {
					if err = be.Publish(e); err != nil {
						break
					}
				}
			}
			if err != nil {
				cs.write(&Frame{Type: FrameError, Error: err.Error()})
				continue
			}
			cs.write(&Frame{Type: FrameOK, Count: len(f.Events)})

		case FrameSubscribe:
			// A reconnecting client that survived our restart adopts its
			// WAL-recovered registration by ID — before the redirect check,
			// because the registration already lives on this node.
			if rec := s.getRecovered(); rec != nil && f.Subscription != nil && f.Subscription.ID != "" {
				if sub, ok := rec.AttachSub(f.Subscription.ID); ok {
					cs.subs[sub.ID()] = sub
					cs.write(&Frame{Type: FrameOK, SubscriptionID: sub.ID()})
					cs.wg.Add(1)
					go forwardDeliveries(cs, sub)
					continue
				}
			}
			be := s.getBackend()
			if r, ok := be.(SubscribeRedirector); ok {
				if addr := r.Redirect(f.Subscription); addr != "" {
					cs.write(&Frame{Type: FrameRedirect, Addr: addr})
					continue
				}
			}
			var opts []SubscribeOption
			if f.Replay {
				opts = append(opts, WithReplay(true))
			}
			sub, err := be.SubscribeHandle(f.Subscription, opts...)
			if err != nil {
				cs.write(&Frame{Type: FrameError, Error: err.Error()})
				continue
			}
			cs.subs[sub.ID()] = sub
			// Acknowledge before starting the forwarder so the OK frame
			// always precedes the first delivery on the wire.
			cs.write(&Frame{Type: FrameOK, SubscriptionID: sub.ID()})
			cs.wg.Add(1)
			go forwardDeliveries(cs, sub)

		case FrameQuery:
			qr := s.getQueryRegistrar()
			if qr == nil {
				cs.write(&Frame{Type: FrameError, Error: "continuous queries not supported"})
				continue
			}
			if f.Query == nil {
				cs.write(&Frame{Type: FrameError, Error: "query frame without spec"})
				continue
			}
			if rec := s.getRecovered(); rec != nil && f.Query.Name != "" {
				if q, ok := rec.AttachQuery(f.Query.Name); ok {
					cs.queries[q.Name()] = q
					cs.write(&Frame{Type: FrameOK, QueryName: q.Name()})
					cs.wg.Add(1)
					go forwardDetections(cs, q)
					continue
				}
			}
			// Shard placement: the query's feeding subscription decides the
			// owner, exactly like a plain subscribe — window state must live
			// where the theme's events land.
			if r, ok := s.getBackend().(SubscribeRedirector); ok && f.Query.Subscription != nil {
				if addr := r.Redirect(f.Query.Subscription); addr != "" {
					cs.write(&Frame{Type: FrameRedirect, Addr: addr})
					continue
				}
			}
			q, err := qr.RegisterQuery(f.Query)
			if err != nil {
				cs.write(&Frame{Type: FrameError, Error: err.Error()})
				continue
			}
			cs.queries[q.Name()] = q
			// Acknowledge before starting the forwarder so the OK frame
			// always precedes the first detect frame on the wire.
			cs.write(&Frame{Type: FrameOK, QueryName: q.Name()})
			cs.wg.Add(1)
			go forwardDetections(cs, q)

		case FrameUnsubscribe:
			if f.QueryName != "" {
				if q, ok := cs.queries[f.QueryName]; ok {
					delete(cs.queries, f.QueryName)
					q.Close()
					cs.write(&Frame{Type: FrameOK, QueryName: f.QueryName})
				} else {
					cs.write(&Frame{Type: FrameError, Error: "unknown query " + f.QueryName})
				}
				continue
			}
			if sub, ok := cs.subs[f.SubscriptionID]; ok {
				delete(cs.subs, f.SubscriptionID)
				sub.Close()
				cs.write(&Frame{Type: FrameOK, SubscriptionID: f.SubscriptionID})
			} else {
				cs.write(&Frame{Type: FrameError, Error: "unknown subscription " + f.SubscriptionID})
			}

		default:
			cs.write(&Frame{Type: FrameError, Error: "unknown frame type " + f.Type})
		}
	}
}

// forwardDeliveries streams a subscriber's deliveries onto the connection.
func forwardDeliveries(cs *connState, sub SubHandle) {
	defer cs.wg.Done()
	for d := range sub.C() {
		err := cs.write(&Frame{
			Type:           FrameDelivery,
			Event:          d.Event,
			SubscriptionID: d.SubscriptionID,
			Score:          d.Score,
			Replay:         d.Replayed,
			At:             d.At,
		})
		if err != nil {
			return
		}
	}
}

// forwardDetections streams a continuous query's detections onto the
// connection.
func forwardDetections(cs *connState, q QueryHandle) {
	defer cs.wg.Done()
	for d := range q.C() {
		err := cs.write(&Frame{
			Type:        FrameDetect,
			QueryName:   d.Query,
			Events:      d.Events,
			Probability: d.Probability,
			At:          d.At,
		})
		if err != nil {
			return
		}
	}
}

// Close stops accepting, closes every connection, and waits for the serving
// goroutines. The underlying broker is left open (the caller owns it).
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	if s.listener != nil {
		s.listener.Close()
	}
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
}
