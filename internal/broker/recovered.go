package broker

import "sync"

// Recovered parks the registrations a restarted broker replayed from its
// WAL: the broker re-registers them before accepting traffic (so matching
// and federation behave as if nothing happened), and each one waits here
// for its client to reconnect. A subscribe frame naming a parked
// subscription ID — or a query frame naming a parked query — adopts the
// live handle instead of creating a fresh registration, so deliveries
// buffered while the client was away flow to it on attach.
type Recovered struct {
	mu      sync.Mutex
	subs    map[string]SubHandle
	queries map[string]QueryHandle
}

// NewRecovered returns an empty registry.
func NewRecovered() *Recovered {
	return &Recovered{
		subs:    make(map[string]SubHandle),
		queries: make(map[string]QueryHandle),
	}
}

// ParkSub parks a recovered subscription handle for adoption.
func (r *Recovered) ParkSub(h SubHandle) {
	r.mu.Lock()
	r.subs[h.ID()] = h
	r.mu.Unlock()
}

// ParkQuery parks a recovered query handle for adoption.
func (r *Recovered) ParkQuery(q QueryHandle) {
	r.mu.Lock()
	r.queries[q.Name()] = q
	r.mu.Unlock()
}

// AttachSub removes and returns the parked subscription with the given ID.
func (r *Recovered) AttachSub(id string) (SubHandle, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.subs[id]
	if ok {
		delete(r.subs, id)
	}
	return h, ok
}

// AttachQuery removes and returns the parked query with the given name.
func (r *Recovered) AttachQuery(name string) (QueryHandle, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	q, ok := r.queries[name]
	if ok {
		delete(r.queries, name)
	}
	return q, ok
}

// Counts reports how many registrations are still parked.
func (r *Recovered) Counts() (subs, queries int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.subs), len(r.queries)
}
