//go:build race

package broker

// raceEnabled reports whether the race detector is active. Under race,
// sync.Pool deliberately drops a quarter of Puts, so strict
// zero-allocation assertions on pooled warm paths do not hold.
const raceEnabled = true
