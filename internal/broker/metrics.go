package broker

import (
	"io"
	"net/http"
	"sort"

	"thematicep/internal/telemetry"
)

// Collector contributes additional metric families to the broker's
// /metrics output (for example the cluster federation counters or the
// semantic space's cache statistics).
type Collector interface {
	WriteMetrics(w io.Writer)
}

// The Write* helpers re-export the telemetry exposition writers so
// existing collectors (and external code) keep a single import point.
// When w is a *telemetry.Expo — as it is for everything routed through
// MetricsHandler — HELP/TYPE headers are deduplicated per family, so
// several collectors may contribute series of the same family.

// WriteCounter emits one cumulative counter in the Prometheus text format.
func WriteCounter(w io.Writer, name, help string, value uint64) {
	telemetry.WriteCounter(w, name, help, value)
}

// WriteCounterVec emits one labeled series of a counter family.
func WriteCounterVec(w io.Writer, name, help string, labels []telemetry.Label, value uint64) {
	telemetry.WriteCounterVec(w, name, help, labels, value)
}

// WriteGauge emits one gauge in the Prometheus text format.
func WriteGauge(w io.Writer, name, help string, value int) {
	telemetry.WriteGauge(w, name, help, value)
}

// WriteGaugeFloat emits one float gauge in the Prometheus text format.
func WriteGaugeFloat(w io.Writer, name, help string, value float64) {
	telemetry.WriteGaugeFloat(w, name, help, value)
}

// WriteGaugeVec emits one labeled series of a gauge family.
func WriteGaugeVec(w io.Writer, name, help string, labels []telemetry.Label, value float64) {
	telemetry.WriteGaugeVec(w, name, help, labels, value)
}

// WriteMetrics emits every broker-owned family: the cumulative counters,
// the pipeline latency histograms, the subscriber queue-depth gauges, and
// (with pruning on) the subscription-index occupancy gauges. It is the
// Collector form of MetricsHandler's body, so a broker can be embedded in
// another endpoint.
func (b *Broker) WriteMetrics(w io.Writer) {
	st := b.Stats()
	WriteCounter(w, "thematicep_broker_published_total", "Events accepted by Publish.", st.Published)
	WriteCounter(w, "thematicep_broker_shed_total", "Publishes rejected by load shedding (saturated match pipeline).", st.Shed)
	WriteCounter(w, "thematicep_broker_scanned_total", "Event-subscription pairs scored by the matcher.", st.Scanned)
	WriteCounter(w, "thematicep_broker_pruned_total", "Pairs skipped by the pruning index (provably score 0).", st.Pruned)
	WriteCounter(w, "thematicep_broker_matched_total", "Event-subscription matches.", st.Matched)
	WriteCounter(w, "thematicep_broker_delivered_total", "Deliveries enqueued to subscribers.", st.Delivered)
	WriteCounter(w, "thematicep_broker_dropped_total", "Deliveries dropped by the overflow policy.", st.Dropped)
	WriteCounter(w, "thematicep_broker_batches_total", "Batches accepted by PublishBatch.", st.Batches)
	WriteCounter(w, "thematicep_broker_batch_terms_interned_total", "Terms canonicalized fresh by the batch interner.", st.BatchTermsInterned)
	WriteCounter(w, "thematicep_broker_batch_terms_reused_total", "Term canonicalizations served from the batch interner.", st.BatchTermsReused)
	WriteCounter(w, "thematicep_broker_batch_rows_computed_total", "Similarity rows computed by the batch-scope memo.", st.BatchRowsComputed)
	WriteCounter(w, "thematicep_broker_batch_rows_reused_total", "Similarity rows served from the batch-scope memo.", st.BatchRowsReused)
	WriteGauge(w, "thematicep_broker_subscribers", "Currently active subscriptions.", st.Subscribers)
	draining := 0
	if b.Draining() {
		draining = 1
	}
	WriteGauge(w, "thematicep_broker_draining", "1 while the broker is draining (refusing publishes, flushing queues).", draining)

	b.batchSizeHist.WriteMetrics(w)
	b.publishHist.WriteMetrics(w)
	b.compileHist.WriteMetrics(w)
	b.enumerateHist.WriteMetrics(w)
	b.scoreHist.WriteMetrics(w)
	b.deliverHist.WriteMetrics(w)
	b.candHist.WriteMetrics(w)

	// Queue depth per subscriber, sorted for a stable exposition.
	b.mu.RLock()
	type depth struct {
		id string
		n  int
	}
	depths := make([]depth, 0, len(b.subs))
	for id, s := range b.subs {
		depths = append(depths, depth{id, len(s.ch)})
	}
	b.mu.RUnlock()
	sort.Slice(depths, func(i, j int) bool { return depths[i].id < depths[j].id })
	for _, d := range depths {
		WriteGaugeVec(w, "thematicep_broker_queue_depth",
			"Pending deliveries in a subscriber's queue.",
			[]telemetry.Label{{Key: "subscription", Value: d.id}}, float64(d.n))
	}

	if b.index != nil {
		ix := b.index.Stats()
		WriteGauge(w, "thematicep_subindex_subscriptions", "Subscriptions tracked by the pruning index.", ix.Subscriptions)
		WriteGauge(w, "thematicep_subindex_themes", "Distinct theme groups in the pruning index.", ix.Themes)
		WriteGauge(w, "thematicep_subindex_buckets", "Exact-term posting buckets in the pruning index.", ix.Buckets)
		WriteGauge(w, "thematicep_subindex_approx_entries", "Approximate-only subscriptions (never prunable).", ix.ApproxEntries)
		WriteGauge(w, "thematicep_subindex_max_bucket", "Largest posting-list occupancy.", ix.MaxBucket)
		WriteGauge(w, "thematicep_subindex_terms", "Interned exact terms (attributes plus attribute-value pairs).", ix.Terms)
		WriteGauge(w, "thematicep_subindex_free_slots", "Recycled dense subscription ids awaiting reuse.", ix.FreeSlots)
		WriteGaugeFloat(w, "thematicep_subindex_avg_bucket", "Mean posting-list occupancy across anchor terms.", ix.AvgBucket)
	}
}

// MetricsHandler exposes the broker's counters, latency histograms, and
// gauges in the Prometheus text exposition format, so a deployed thematicd
// can be scraped:
//
//	mux := http.NewServeMux()
//	mux.Handle("/metrics", broker.MetricsHandler(b))
//
// Extra collectors (for example a cluster node or a semantic space) append
// their families to the same endpoint. The whole response is routed
// through one telemetry.Expo, so collectors contributing different label
// sets of a shared family produce a single HELP/TYPE header.
func MetricsHandler(b *Broker, extra ...Collector) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		e := telemetry.NewExpo(w)
		b.WriteMetrics(e)
		for _, c := range extra {
			c.WriteMetrics(e)
		}
	})
}
