package broker

import (
	"fmt"
	"net/http"
)

// MetricsHandler exposes the broker's counters in the Prometheus text
// exposition format, so a deployed thematicd can be scraped:
//
//	mux := http.NewServeMux()
//	mux.Handle("/metrics", broker.MetricsHandler(b))
func MetricsHandler(b *Broker) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		st := b.Stats()
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		write := func(name, help string, value interface{}) {
			fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %v\n", name, help, name, name, value)
		}
		write("thematicep_broker_published_total", "Events accepted by Publish.", st.Published)
		write("thematicep_broker_matched_total", "Event-subscription matches.", st.Matched)
		write("thematicep_broker_delivered_total", "Deliveries enqueued to subscribers.", st.Delivered)
		write("thematicep_broker_dropped_total", "Deliveries dropped by the overflow policy.", st.Dropped)
		write("thematicep_broker_subscribers", "Currently active subscriptions.", st.Subscribers)
	})
}
