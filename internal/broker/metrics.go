package broker

import (
	"fmt"
	"io"
	"net/http"
)

// Collector contributes additional metric families to the broker's
// /metrics output (for example the cluster federation counters).
type Collector interface {
	WriteMetrics(w io.Writer)
}

// WriteCounter emits one cumulative counter in the Prometheus text format.
func WriteCounter(w io.Writer, name, help string, value uint64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, value)
}

// WriteGauge emits one gauge in the Prometheus text format.
func WriteGauge(w io.Writer, name, help string, value int) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, value)
}

// MetricsHandler exposes the broker's counters in the Prometheus text
// exposition format, so a deployed thematicd can be scraped:
//
//	mux := http.NewServeMux()
//	mux.Handle("/metrics", broker.MetricsHandler(b))
//
// Extra collectors (for example a cluster node) append their families to
// the same endpoint.
func MetricsHandler(b *Broker, extra ...Collector) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		st := b.Stats()
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		WriteCounter(w, "thematicep_broker_published_total", "Events accepted by Publish.", st.Published)
		WriteCounter(w, "thematicep_broker_scanned_total", "Event-subscription pairs scored by the matcher.", st.Scanned)
		WriteCounter(w, "thematicep_broker_pruned_total", "Pairs skipped by the pruning index (provably score 0).", st.Pruned)
		WriteCounter(w, "thematicep_broker_matched_total", "Event-subscription matches.", st.Matched)
		WriteCounter(w, "thematicep_broker_delivered_total", "Deliveries enqueued to subscribers.", st.Delivered)
		WriteCounter(w, "thematicep_broker_dropped_total", "Deliveries dropped by the overflow policy.", st.Dropped)
		WriteGauge(w, "thematicep_broker_subscribers", "Currently active subscriptions.", st.Subscribers)
		for _, c := range extra {
			c.WriteMetrics(w)
		}
	})
}
