package broker

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"thematicep/internal/event"
	"thematicep/internal/telemetry"
)

// StreamMatcher extends BatchMatcher with batch-scope matching contexts:
// one opaque context prepares every event of a publish batch (interning
// each distinct term once), and opaque per-worker arenas persist the
// similarity-row memo across all chunks and events of the batch. Scores
// must remain bit-identical to ScorePrepared — the contexts are purely an
// amortization capability. FinishBatch releases the context and reports
// the batch's amortization counters. matcher.Matcher satisfies it through
// the PreparedStream adapter.
type StreamMatcher interface {
	BatchMatcher
	// NewBatchContext returns an opaque batch-prepare context. Contexts
	// are single-goroutine; arenas drawn from one may then be used
	// concurrently (one goroutine each).
	NewBatchContext() any
	// PrepareEvBatch is PrepareEv through the context: canonical terms
	// are interned batch-wide. The result is invalid after FinishBatch.
	PrepareEvBatch(ctx any, e *event.Event) any
	// NewBatchArena draws a scoring arena from the context (call on the
	// context-owning goroutine, before handing the arena to a worker).
	NewBatchArena(ctx any) any
	// ScoreBatchArena is ScoreBatchPrepared with the row memo held in the
	// arena, persisting across calls within the batch.
	ScoreBatchArena(arena any, subs []any, ev any, out []float64) []float64
	// FinishBatch invalidates the context and everything drawn from it,
	// reporting terms interned vs reused and rows computed vs reused.
	FinishBatch(ctx any) (termsInterned, termsReused, rowsComputed, rowsReused uint64)
}

// preparedStream adapts typed batch-context methods to StreamMatcher,
// following the preparedBatch pattern: a distinct type so matchers adapted
// through Prepared/PreparedBatch never spuriously satisfy the assertion.
type preparedStream[PS, PE, BC, BA any] struct {
	preparedBatch[PS, PE]
	newBatch       func() BC
	prepareEvBatch func(BC, *event.Event) PE
	newArena       func(BC) BA
	scoreArena     func(BA, []PS, PE, []float64) []float64
	finishBatch    func(BC) (uint64, uint64, uint64, uint64)
}

func (p *preparedStream[PS, PE, BC, BA]) NewBatchContext() any { return p.newBatch() }
func (p *preparedStream[PS, PE, BC, BA]) PrepareEvBatch(ctx any, e *event.Event) any {
	return p.prepareEvBatch(ctx.(BC), e)
}
func (p *preparedStream[PS, PE, BC, BA]) NewBatchArena(ctx any) any {
	return p.newArena(ctx.(BC))
}
func (p *preparedStream[PS, PE, BC, BA]) ScoreBatchArena(arena any, subs []any, ev any, out []float64) []float64 {
	bufp, _ := p.subsPool.Get().(*[]PS)
	if bufp == nil {
		bufp = new([]PS)
	}
	typed := (*bufp)[:0]
	for _, s := range subs {
		typed = append(typed, s.(PS))
	}
	out = p.scoreArena(arena.(BA), typed, ev.(PE), out)
	clear(typed) // drop prepared-subscription references before pooling
	*bufp = typed[:0]
	p.subsPool.Put(bufp)
	return out
}
func (p *preparedStream[PS, PE, BC, BA]) FinishBatch(ctx any) (uint64, uint64, uint64, uint64) {
	return p.finishBatch(ctx.(BC))
}

// targetScorer is an internal fast path of the batched pipeline: the
// adapter converts straight from the broker's subscriber slice to its
// typed prepared subscriptions, skipping the intermediate []any staging
// that ScoreBatchArena requires (one full pass over every candidate of
// every chunk). Only the adapters defined in this package can implement it
// — Subscriber is a broker type — so it is a structural optimization, not
// part of the public matcher capability ladder.
type targetScorer interface {
	ScoreBatchTargets(arena any, targets []*Subscriber, ev any, out []float64) []float64
}

func (p *preparedStream[PS, PE, BC, BA]) ScoreBatchTargets(arena any, targets []*Subscriber, ev any, out []float64) []float64 {
	bufp, _ := p.subsPool.Get().(*[]PS)
	if bufp == nil {
		bufp = new([]PS)
	}
	typed := (*bufp)[:0]
	for _, s := range targets {
		typed = append(typed, s.prepared.(PS))
	}
	out = p.scoreArena(arena.(BA), typed, ev.(PE), out)
	clear(typed) // drop prepared-subscription references before pooling
	*bufp = typed[:0]
	p.subsPool.Put(bufp)
	return out
}

// PreparedStream is PreparedBatch plus the typed batch-context methods
// (for example *matcher.Matcher's EventBatch machinery):
//
//	m := matcher.New(space)
//	b := broker.New(broker.PreparedStream(
//		m.Score, m.PrepareSubscription, m.PrepareEvent, m.ScorePrepared, m.ScoreBatch,
//		m.NewEventBatch, m.PrepareEventInBatch, m.NewBatchArena, m.ScoreBatchInArena,
//		m.FinishEventBatch))
func PreparedStream[PS, PE, BC, BA any](
	score func(*event.Subscription, *event.Event) float64,
	prepareSub func(*event.Subscription) PS,
	prepareEv func(*event.Event) PE,
	scorePrepared func(PS, PE) float64,
	scoreBatch func([]PS, PE, []float64) []float64,
	newBatch func() BC,
	prepareEvBatch func(BC, *event.Event) PE,
	newArena func(BC) BA,
	scoreBatchArena func(BA, []PS, PE, []float64) []float64,
	finishBatch func(BC) (termsInterned, termsReused, rowsComputed, rowsReused uint64),
) PreparedMatcher {
	return &preparedStream[PS, PE, BC, BA]{
		preparedBatch: preparedBatch[PS, PE]{
			prepared: prepared[PS, PE]{
				score:         score,
				prepareSub:    prepareSub,
				prepareEv:     prepareEv,
				scorePrepared: scorePrepared,
			},
			scoreBatch: scoreBatch,
		},
		newBatch:       newBatch,
		prepareEvBatch: prepareEvBatch,
		newArena:       newArena,
		scoreArena:     scoreBatchArena,
		finishBatch:    finishBatch,
	}
}

// batchWindowCands bounds how many candidate pointers one PublishBatch
// window stages at once: large enough that most windows hold many events
// (so enumeration and chunking amortize), small enough that the staging
// buffer (8 bytes per candidate) stays cache-resident instead of growing
// to events × candidates pointers the GC must scan per batch.
const batchWindowCands = 32 * 1024

// batchHit is one above-threshold (subscriber, event) match produced by a
// scoring worker, buffered so deliveries can be coalesced per subscriber.
type batchHit struct {
	s     *Subscriber
	ei    int32 // index into the batch's event slice
	score float64
}

// chunkRef is one unit of scoring work: a contiguous candidate range of
// one event.
type chunkRef struct {
	ei     int32
	lo, hi int32
}

// pubBatchBuf is the pooled whole-batch state of one PublishBatch call.
// Everything a batch touches — prepared events, the flat candidate arena,
// chunk descriptors, per-worker hit lists, the per-subscriber grouping
// chains — lives here, so a warm batch allocates nothing. The scoring
// workers run as a method on this buffer rather than a closure for the
// same reason.
type pubBatchBuf struct {
	b        *Broker
	events   []*event.Event
	pes      []any           // prepared events, index-aligned with events
	flat     []*Subscriber   // window candidate buffer (index path) or snapshot (scan path)
	perEvent [][]*Subscriber // per-event candidate views of the current window
	ends     []int
	chunks   []chunkRef
	winStart int32 // global index of the current window's first event
	cursor   atomic.Int64
	arenas   []any // per-worker scoring arenas (stream matchers)
	hits     [][]batchHit
	merged   []batchHit
	head     map[*Subscriber]int32 // subscriber -> last hit index in merged
	prev     []int32               // hit index -> previous hit of same subscriber
	group    []batchHit            // per-subscriber delivery scratch
	add      func(*Subscriber)     // enumeration sink, bound to flat once
}

func newPubBatchBuf() *pubBatchBuf {
	buf := &pubBatchBuf{head: make(map[*Subscriber]int32)}
	buf.add = func(s *Subscriber) { buf.flat = append(buf.flat, s) }
	return buf
}

// pubBufLimit bounds each broker's free list of batch buffers. Batch
// buffers are few but large (hit lists and grouping chains scale with
// matches per batch), which is exactly the population sync.Pool serves
// worst: every GC cycle empties the pool, and regrowing tens of megabytes
// of scratch per batch is itself what forces the next GC cycle. A small
// broker-owned free list keeps the scratch alive across collections;
// buffers beyond the limit (briefly needed only under concurrent
// publishes) still fall back to the allocator.
const pubBufLimit = 4

// acquirePubBuf pops a warm batch buffer off the broker's free list, or
// builds a fresh one when the list is empty.
func (b *Broker) acquirePubBuf() *pubBatchBuf {
	select {
	case buf := <-b.pubBufs:
		return buf
	default:
		return newPubBatchBuf()
	}
}

// release drops every pointer the batch held and returns the buffer to its
// broker's free list; capacities (and the grouping map's buckets) are kept
// warm.
func (buf *pubBatchBuf) release() {
	b := buf.b
	buf.b = nil
	buf.events = nil
	clear(buf.pes)
	buf.pes = buf.pes[:0]
	clear(buf.flat)
	buf.flat = buf.flat[:0]
	clear(buf.perEvent)
	buf.perEvent = buf.perEvent[:0]
	buf.ends = buf.ends[:0]
	buf.chunks = buf.chunks[:0]
	clear(buf.arenas)
	buf.arenas = buf.arenas[:0]
	for i := range buf.hits {
		clear(buf.hits[i])
		buf.hits[i] = buf.hits[i][:0]
	}
	clear(buf.merged)
	buf.merged = buf.merged[:0]
	clear(buf.head)
	buf.prev = buf.prev[:0]
	clear(buf.group)
	buf.group = buf.group[:0]
	select {
	case b.pubBufs <- buf:
	default: // free list full; let the GC have this one
	}
}

// abort unwinds a PublishBatch that failed validation: the batch context
// is discarded without crediting its counters (nothing was admitted) and
// the buffer returns to the pool.
func (buf *pubBatchBuf) abort(ctx any, pes []any, err error) error {
	if ctx != nil {
		buf.b.stream.FinishBatch(ctx)
	}
	buf.pes = pes
	buf.release()
	return fmt.Errorf("broker: publish batch: %w", err)
}

// validateCanonical checks the event-model invariants from already
// canonicalized tuple terms — the batched path's allocation-free
// equivalent of Event.Validate (tuple counts are small, so the quadratic
// duplicate scan beats a map).
func validateCanonical(e *event.Event, attrs, values []string) error {
	for i, a := range attrs {
		if a == "" || values[i] == "" {
			return fmt.Errorf("%w: %q", event.ErrEmptyTerm, e.Tuples[i])
		}
		for j := 0; j < i; j++ {
			if attrs[j] == a {
				return fmt.Errorf("%w: %q", event.ErrDuplicateAttr, e.Tuples[i].Attr)
			}
		}
	}
	return nil
}

// PublishBatch publishes a batch of events through one amortized pipeline
// pass: every distinct term is canonicalized once, candidate enumeration
// shares its scratch across the batch, scoring workers pull (event, chunk)
// work items from one cursor with batch-scope similarity-row memos, and
// deliveries are coalesced so each matched subscriber's queue lock is
// taken once per batch instead of once per match. Delivery sets — which
// subscriber receives which events with which scores, and the per-
// subscriber event order — are identical to calling Publish serially over
// the slice (scores bit-identical, same scoring code); see DESIGN.md §14
// for the argument and for what is intentionally coarser (stage
// histograms observe per batch, deliveries share one admission timestamp
// per subscriber group, and the whole batch is one trace-sampling unit —
// a sampled batch records one trace with aggregate stage spans plus
// per-event child spans, indexed by every member event ID).
//
// Admission is all-or-nothing: the batch is validated up front and either
// every event is admitted (nil return) or none is. Like Publish it never
// blocks on slow consumers.
func (b *Broker) PublishBatch(events []*event.Event) error {
	t0 := b.clock.Now()
	n := len(events)
	if n == 0 {
		return nil
	}
	for _, e := range events {
		if e == nil {
			return ErrNilEvent
		}
	}

	buf := b.acquirePubBuf()
	buf.b = b
	buf.events = events

	// Prepare and validate in one pass: the batch context's interner
	// yields the canonical terms validation needs, so the batched path
	// never canonicalizes a term twice. (Cleanup on failure goes through
	// the abort method, not a closure — closures capturing batch state
	// would cost the warm path its zero-allocation property.)
	var ctx any
	pes := buf.pes[:0]
	if b.prep != nil {
		if b.stream != nil {
			ctx = b.stream.NewBatchContext()
			for _, e := range events {
				pe := b.stream.PrepareEvBatch(ctx, e)
				if ct, ok := pe.(canonicalTupler); ok {
					attrs, values := ct.CanonicalTuples()
					if len(attrs) == 0 {
						return buf.abort(ctx, pes, event.ErrNoTuples)
					}
					if err := validateCanonical(e, attrs, values); err != nil {
						return buf.abort(ctx, pes, err)
					}
				} else if err := e.Validate(); err != nil {
					return buf.abort(ctx, pes, err)
				}
				pes = append(pes, pe)
			}
		} else {
			for _, e := range events {
				if err := e.Validate(); err != nil {
					return buf.abort(ctx, pes, err)
				}
				pes = append(pes, b.prep.PrepareEv(e))
			}
		}
	} else {
		for _, e := range events {
			if err := e.Validate(); err != nil {
				return buf.abort(ctx, pes, err)
			}
		}
	}
	buf.pes = pes

	// Admission control, one decision for the whole batch (see Publish for
	// the inflight/draining ordering argument). A shed batch counts every
	// event in Stats.Shed so event-granularity accounting stays comparable
	// with the serial path.
	b.inflight.Add(1)
	defer b.inflight.Add(-1)
	if b.draining.Load() {
		if ctx != nil {
			b.stream.FinishBatch(ctx)
		}
		buf.release()
		return ErrDraining
	}
	if w := b.cfg.shedWatermark; w > 0 && b.sem != nil &&
		len(b.sem) == cap(b.sem) && b.inflight.Load() > int64(w) {
		b.shed.Add(uint64(n))
		if ctx != nil {
			b.stream.FinishBatch(ctx)
		}
		buf.release()
		return ErrOverloaded
	}

	// The whole batch is one sampling unit; member event IDs are collected
	// only when tracing is enabled at all, keeping the default batch path
	// free of trace work (and of this one slice allocation).
	var trace *telemetry.ActiveTrace
	if b.tracer != nil {
		ids := make([]string, n)
		for i, e := range events {
			ids[i] = e.ID
		}
		trace = b.tracer.StartBatchAt(ids, t0)
	}

	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		if ctx != nil {
			b.stream.FinishBatch(ctx)
		}
		buf.release()
		return ErrClosed
	}
	if b.cfg.replaySize > 0 {
		b.replay = append(b.replay, events...)
		if len(b.replay) > b.cfg.replaySize {
			b.replay = b.replay[len(b.replay)-b.cfg.replaySize:]
		}
	}
	empty := len(b.subs) == 0
	if b.index == nil && !empty {
		// Full-scan matchers share one subscription snapshot across the
		// whole batch (one lock acquisition, one copy).
		for _, s := range b.subs {
			buf.flat = append(buf.flat, s)
		}
	}
	b.mu.Unlock()

	b.published.Add(uint64(n))
	b.batches.Add(1)
	b.batchSizeHist.Observe(float64(n))
	tEnum := b.clock.Now()
	b.compileHist.ObserveDuration(tEnum.Sub(t0))
	trace.AddSpanDuration("compile", t0, tEnum.Sub(t0))

	// Candidate enumeration and scoring, interleaved over windows of
	// consecutive events. A whole-batch candidate arena at the 100k tier
	// holds millions of *Subscriber pointers — tens of megabytes the GC
	// must scan and the caches cannot hold — so events are staged in
	// windows whose candidate sets fit batchWindowCands, reusing one small
	// flat buffer. Everything that amortizes — the batch context, interned
	// terms, per-worker arenas and their row memos, hit lists, delivery
	// coalescing — still spans the whole batch; only the staging of
	// candidate pointers is windowed. Within a window, workers pull
	// (event, chunk) items off one cursor with no per-event barrier.
	nw := b.cfg.parallelism
	if nw < 1 {
		nw = 1
	}
	for len(buf.hits) < nw {
		buf.hits = append(buf.hits, nil)
	}
	if b.stream != nil && ctx != nil {
		// Arenas must be drawn on the context-owning goroutine, before any
		// workers start; they persist across every window of the batch.
		for w := 0; w < nw; w++ {
			buf.arenas = append(buf.arenas, b.stream.NewBatchArena(ctx))
		}
	}
	fullScan := b.index == nil || empty
	var enumDur, scoreDur time.Duration
	totalCands := 0
	for lo := 0; lo < n; {
		tEnum := b.clock.Now()
		perEvent := buf.perEvent[:0]
		ends := buf.ends[:0]
		hi := lo
		if !fullScan {
			buf.flat = buf.flat[:0] // window staging buffer, reused
			for hi < n && (hi == lo || len(buf.flat) < batchWindowCands) {
				start := len(buf.flat)
				var pruned int
				if ct, ok := pes[hi].(canonicalTupler); ok {
					attrs, values := ct.CanonicalTuples()
					_, pruned = b.index.CandidatesPrepared(attrs, values, buf.add)
				} else {
					_, pruned = b.index.Candidates(events[hi], buf.add)
				}
				b.pruned.Add(uint64(pruned))
				ends = append(ends, len(buf.flat))
				b.candHist.Observe(float64(len(buf.flat) - start))
				hi++
			}
			// Views into the buffer are derived only after every append of
			// the window, since growth moves it.
			prev := 0
			for _, end := range ends {
				perEvent = append(perEvent, buf.flat[prev:end])
				prev = end
			}
			totalCands += len(buf.flat)
		} else {
			// Full-scan matchers share one subscription snapshot (already
			// staged in flat) across every event; the window only bounds how
			// many events' chunks are in flight at once.
			for hi < n && (hi == lo || (hi-lo)*len(buf.flat) < batchWindowCands) {
				perEvent = append(perEvent, buf.flat)
				b.candHist.Observe(float64(len(buf.flat)))
				hi++
			}
			totalCands += len(buf.flat) * (hi - lo)
		}
		buf.perEvent = perEvent
		buf.ends = ends
		tScore := b.clock.Now()
		enumDur += tScore.Sub(tEnum)

		chunks := buf.chunks[:0]
		for i := range perEvent {
			m := len(perEvent[i])
			for clo := 0; clo < m; clo += batchChunkSize {
				chunks = append(chunks, chunkRef{ei: int32(lo + i), lo: int32(clo), hi: int32(min(clo+batchChunkSize, m))})
			}
		}
		buf.chunks = chunks
		buf.winStart = int32(lo)
		buf.cursor.Store(0)
		nww := nw
		if nww > len(chunks) {
			nww = len(chunks)
		}
		if nww <= 1 || b.sem == nil {
			buf.work(0)
		} else {
			var wg sync.WaitGroup
		spawn:
			for w := 1; w < nww; w++ {
				select {
				case b.sem <- struct{}{}:
					wg.Add(1)
					go func(wid int) {
						defer wg.Done()
						defer func() { <-b.sem }()
						buf.work(wid)
					}(w)
				default:
					// Helper budget exhausted by concurrent publishes: the
					// publisher goroutine absorbs the remainder.
					break spawn
				}
			}
			buf.work(0)
			wg.Wait()
		}
		scoreDur += b.clock.Now().Sub(tScore)
		lo = hi
	}
	b.scanned.Add(uint64(totalCands))
	b.enumerateHist.ObserveDuration(enumDur)
	b.scoreHist.ObserveDuration(scoreDur)
	// Enumeration and scoring interleave per window; the spans carry the
	// aggregate durations laid end to end from the enumeration start.
	trace.AddSpanDuration("enumerate", tEnum, enumDur)
	trace.AddSpanDuration("score", tEnum.Add(enumDur), scoreDur)
	tDeliver := b.clock.Now()

	// Coalesced delivery: bucket the hits per subscriber (chained through
	// prev/head, no per-subscriber allocation), restore per-subscriber
	// event order, and take each subscriber's queue lock exactly once.
	merged := buf.merged[:0]
	for w := 0; w < nw; w++ {
		merged = append(merged, buf.hits[w]...)
	}
	buf.merged = merged
	b.matched.Add(uint64(len(merged)))
	prevIdx := buf.prev[:0]
	for i := range merged {
		if j, ok := buf.head[merged[i].s]; ok {
			prevIdx = append(prevIdx, j)
		} else {
			prevIdx = append(prevIdx, -1)
		}
		buf.head[merged[i].s] = int32(i)
	}
	buf.prev = prevIdx
	for s, last := range buf.head {
		g := buf.group[:0]
		for i := last; i >= 0; i = prevIdx[i] {
			g = append(g, merged[i])
		}
		sortHitsByEvent(g)
		buf.group = g
		b.offerBatch(s, events, g)
	}

	if ctx != nil {
		ti, tr, rc, rr := b.stream.FinishBatch(ctx)
		b.batchTermsInterned.Add(ti)
		b.batchTermsReused.Add(tr)
		b.batchRowsComputed.Add(rc)
		b.batchRowsReused.Add(rr)
	}
	end := b.clock.Now()
	b.deliverHist.ObserveDuration(end.Sub(tDeliver))
	b.publishHist.ObserveDuration(end.Sub(t0))
	b.deliverySLO.ObserveN(end.Sub(t0), n)
	if trace != nil {
		trace.AddSpanDuration("deliver", tDeliver, end.Sub(tDeliver))
		// Per-event child spans: each member shares the batch's amortized
		// admission-to-delivery latency. Capped so a huge batch cannot
		// bloat the trace ring; the Events list still names every member.
		const maxChildSpans = 64
		for i, e := range events {
			if i == maxChildSpans {
				break
			}
			trace.AddSpanDuration("event:"+e.ID, t0, end.Sub(t0))
		}
		trace.Finish()
	}
	buf.release()
	return nil
}

// work is one scoring worker: it pulls chunk descriptors off the shared
// cursor and appends above-threshold scores to its private hit list. It is
// called once per window — hit lists accumulate across windows and are
// only reset when the buffer is released. Workers with a stream arena keep
// their row memo across every chunk they touch; otherwise scoring falls
// back to the per-chunk batch scorer or the serial prepared/plain scorers,
// exactly as dispatch does.
func (buf *pubBatchBuf) work(wid int) {
	b := buf.b
	hits := buf.hits[wid]
	var arena any
	if wid < len(buf.arenas) {
		arena = buf.arenas[wid]
	}
	sb := batchScorePool.Get().(*batchScoreBuf)
	for {
		c := int(buf.cursor.Add(1)) - 1
		if c >= len(buf.chunks) {
			break
		}
		ch := buf.chunks[c]
		targets := buf.perEvent[ch.ei-buf.winStart][ch.lo:ch.hi]
		threshold := b.cfg.threshold
		if len(buf.pes) > 0 {
			pe := buf.pes[ch.ei]
			var scores []float64
			if arena != nil && b.streamT != nil {
				// Fast path: the adapter reads the subscriber slice
				// directly, skipping the []any staging pass.
				scores = b.streamT.ScoreBatchTargets(arena, targets, pe, sb.scores[:0])
			} else {
				subs := sb.subs[:0]
				for _, s := range targets {
					subs = append(subs, s.prepared)
				}
				switch {
				case arena != nil:
					scores = b.stream.ScoreBatchArena(arena, subs, pe, sb.scores[:0])
				case b.batch != nil:
					scores = b.batch.ScoreBatchPrepared(subs, pe, sb.scores[:0])
				default:
					scores = sb.scores[:0]
					for _, sp := range subs {
						scores = append(scores, b.prep.ScorePrepared(sp, pe))
					}
				}
				clear(subs)
				sb.subs = subs[:0]
			}
			for k, s := range targets {
				if sc := scores[k]; sc >= threshold && sc > 0 {
					hits = append(hits, batchHit{s: s, ei: ch.ei, score: sc})
				}
			}
			sb.scores = scores[:0]
		} else {
			e := buf.events[ch.ei]
			for _, s := range targets {
				if sc := b.matcher.Score(s.sub, e); sc >= threshold && sc > 0 {
					hits = append(hits, batchHit{s: s, ei: ch.ei, score: sc})
				}
			}
		}
	}
	batchScorePool.Put(sb)
	buf.hits[wid] = hits
}

// sortHitsByEvent restores ascending event order within one subscriber's
// hit group (insertion sort: groups are at most batch-sized, event indexes
// distinct, and the hot path must not allocate).
func sortHitsByEvent(g []batchHit) {
	for i := 1; i < len(g); i++ {
		h := g[i]
		j := i - 1
		for j >= 0 && g[j].ei > h.ei {
			g[j+1] = g[j]
			j--
		}
		g[j+1] = h
	}
}

// offerBatch enqueues one subscriber's deliveries for a whole batch under
// a single queue-lock acquisition, with the same drop-oldest overflow
// policy as offer. All deliveries of the group share one admission
// timestamp, and the deliver histogram observes the group handoff, not
// each delivery.
func (b *Broker) offerBatch(s *Subscriber, events []*event.Event, hits []batchHit) {
	if len(hits) == 0 {
		return
	}
	t0 := b.clock.Now()
	var delivered, dropped uint64
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	for _, h := range hits {
		d := Delivery{Event: events[h.ei], SubscriptionID: s.id, Score: h.score, At: t0}
	enqueue:
		for {
			select {
			case s.ch <- d:
				delivered++
				break enqueue
			default:
				select {
				case <-s.ch:
					dropped++
				default:
				}
			}
		}
	}
	s.mu.Unlock()
	b.delivered.Add(delivered)
	if dropped > 0 {
		b.dropped.Add(dropped)
	}
}
