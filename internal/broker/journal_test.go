package broker

import (
	"sync"
	"testing"
	"time"

	"thematicep/internal/event"
)

// memJournal records journal calls for assertions.
type memJournal struct {
	mu     sync.Mutex
	subs   map[string]*event.Subscription
	unsubs []string
}

func newMemJournal() *memJournal {
	return &memJournal{subs: make(map[string]*event.Subscription)}
}

func (j *memJournal) Subscribed(id string, sub *event.Subscription) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.subs[id] = sub
}

func (j *memJournal) Unsubscribed(id string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.unsubs = append(j.unsubs, id)
}

func (j *memJournal) snapshot() (map[string]*event.Subscription, []string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	subs := make(map[string]*event.Subscription, len(j.subs))
	for k, v := range j.subs {
		subs[k] = v
	}
	return subs, append([]string(nil), j.unsubs...)
}

// Subscribe and client-driven unsubscribe must reach the journal, with the
// journaled copy carrying the broker-assigned ID so replay can re-register
// it verbatim.
func TestJournalHooks(t *testing.T) {
	j := newMemJournal()
	b := New(exactMatcher(), WithJournal(j))
	defer b.Close()

	s, err := b.Subscribe(parkingSub())
	if err != nil {
		t.Fatal(err)
	}
	subs, unsubs := j.snapshot()
	if len(subs) != 1 || subs[s.ID()] == nil {
		t.Fatalf("journal saw subs %v, want exactly %q", subs, s.ID())
	}
	if subs[s.ID()].ID != s.ID() {
		t.Fatalf("journaled copy carries ID %q, want %q", subs[s.ID()].ID, s.ID())
	}
	if len(unsubs) != 0 {
		t.Fatalf("unexpected unsubscribes %v", unsubs)
	}

	s.Close()
	_, unsubs = j.snapshot()
	if len(unsubs) != 1 || unsubs[0] != s.ID() {
		t.Fatalf("journal saw unsubscribes %v, want [%q]", unsubs, s.ID())
	}
}

// A caller-provided ID must be preserved end to end — re-attach after
// restart depends on it.
func TestJournalPreservesCallerID(t *testing.T) {
	j := newMemJournal()
	b := New(exactMatcher(), WithJournal(j))
	defer b.Close()

	sub := parkingSub()
	sub.ID = "durable-7"
	s, err := b.Subscribe(sub)
	if err != nil {
		t.Fatal(err)
	}
	if s.ID() != "durable-7" {
		t.Fatalf("broker reassigned ID to %q", s.ID())
	}
	subs, _ := j.snapshot()
	if subs["durable-7"] == nil {
		t.Fatalf("journal keyed by %v, want durable-7", subs)
	}
}

// Ephemeral registrations — federation remote copies, query feeds — must
// never touch the journal: replaying them would resurrect state their
// owners re-create through their own recovery paths.
func TestJournalSkipsEphemeral(t *testing.T) {
	j := newMemJournal()
	b := New(exactMatcher(), WithJournal(j))
	defer b.Close()

	s, err := b.Subscribe(parkingSub(), Ephemeral())
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	subs, unsubs := j.snapshot()
	if len(subs) != 0 || len(unsubs) != 0 {
		t.Fatalf("ephemeral subscription reached the journal: subs=%v unsubs=%v", subs, unsubs)
	}
}

// Broker shutdown is not an unsubscribe: closing the broker must leave the
// journal untouched so every registration survives the restart.
func TestBrokerCloseDoesNotEraseJournal(t *testing.T) {
	j := newMemJournal()
	b := New(exactMatcher(), WithJournal(j))
	s, err := b.Subscribe(parkingSub())
	if err != nil {
		t.Fatal(err)
	}
	b.Close()
	subs, unsubs := j.snapshot()
	if len(unsubs) != 0 {
		t.Fatalf("broker close journaled unsubscribes %v", unsubs)
	}
	if subs[s.ID()] == nil {
		t.Fatal("registration missing from journal after close")
	}
}

// A reconnecting client that names its WAL-recovered subscription ID adopts
// the live re-registered handle — including deliveries buffered while the
// client was away — instead of creating a fresh registration.
func TestRecoveredSubAttachOverTCP(t *testing.T) {
	b := New(exactMatcher())
	srv := NewServer(b)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close(); b.Close() })

	// Simulate the daemon's recovery: re-register under the durable ID and
	// park the handle for adoption.
	sub := parkingSub()
	sub.ID = "recovered-1"
	h, err := b.SubscribeHandle(sub)
	if err != nil {
		t.Fatal(err)
	}
	rec := NewRecovered()
	rec.ParkSub(h)
	srv.SetRecovered(rec)

	// An event lands before the client reconnects: it buffers on the parked
	// handle.
	if err := b.Publish(parkingEvent("while-away")); err != nil {
		t.Fatal(err)
	}

	c, err := Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	resub := parkingSub()
	resub.ID = "recovered-1"
	id, deliveries, err := c.Subscribe(resub, false)
	if err != nil {
		t.Fatal(err)
	}
	if id != "recovered-1" {
		t.Fatalf("attach returned id %q, want recovered-1", id)
	}
	select {
	case d := <-deliveries:
		if d.Event == nil || d.Event.Tuples[1].Value != "while-away" {
			t.Fatalf("delivery = %+v, want the buffered while-away event", d)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("buffered delivery never reached the reattached client")
	}
	if ps, _ := rec.Counts(); ps != 0 {
		t.Fatalf("%d handles still parked after attach", ps)
	}

	// Live events keep flowing on the adopted handle.
	if err := b.Publish(parkingEvent("after-attach")); err != nil {
		t.Fatal(err)
	}
	select {
	case d := <-deliveries:
		if d.Event.Tuples[1].Value != "after-attach" {
			t.Fatalf("delivery = %+v", d)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("live delivery never arrived after attach")
	}
}

// fakeQueryHandle is a parked continuous-query stream.
type fakeQueryHandle struct {
	name string
	ch   chan QueryDetection
	once sync.Once
}

func (q *fakeQueryHandle) Name() string             { return q.name }
func (q *fakeQueryHandle) C() <-chan QueryDetection { return q.ch }
func (q *fakeQueryHandle) Close()                   { q.once.Do(func() { close(q.ch) }) }

// failRegistrar proves attach happens INSTEAD of re-registration.
type failRegistrar struct{ t *testing.T }

func (r failRegistrar) RegisterQuery(spec *QuerySpec) (QueryHandle, error) {
	r.t.Errorf("RegisterQuery(%q) called for a parked query", spec.Name)
	return nil, ErrClosed
}

// A query frame naming a parked query adopts it; buffered detections flow.
func TestRecoveredQueryAttachOverTCP(t *testing.T) {
	b := New(exactMatcher())
	srv := NewServer(b)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close(); b.Close() })
	srv.SetQueryRegistrar(failRegistrar{t})

	qh := &fakeQueryHandle{name: "congestion", ch: make(chan QueryDetection, 4)}
	qh.ch <- QueryDetection{Query: "congestion"}
	rec := NewRecovered()
	rec.ParkQuery(qh)
	srv.SetRecovered(rec)

	c, err := Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	name, detections, err := c.Query(&QuerySpec{Name: "congestion", Kind: "sequence", Subscription: parkingSub()})
	if err != nil {
		t.Fatal(err)
	}
	if name != "congestion" {
		t.Fatalf("attach returned name %q", name)
	}
	select {
	case d := <-detections:
		if d.Query != "congestion" {
			t.Fatalf("detection = %+v", d)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("buffered detection never reached the reattached client")
	}
}
