package broker

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestMetricsHandler(t *testing.T) {
	b := New(exactMatcher())
	defer b.Close()
	sub, err := b.Subscribe(parkingSub())
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	if err := b.Publish(parkingEvent("p1")); err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(MetricsHandler(b))
	defer srv.Close()

	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(body)
	for _, want := range []string{
		"thematicep_broker_published_total 1",
		"thematicep_broker_matched_total 1",
		"thematicep_broker_delivered_total 1",
		"thematicep_broker_dropped_total 0",
		"thematicep_broker_subscribers 1",
		"# TYPE thematicep_broker_published_total counter",
		"# TYPE thematicep_broker_dropped_total counter",
		"# TYPE thematicep_broker_subscribers gauge",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q in:\n%s", want, out)
		}
	}
}

func TestMetricsHandlerRejectsPost(t *testing.T) {
	b := New(exactMatcher())
	defer b.Close()
	srv := httptest.NewServer(MetricsHandler(b))
	defer srv.Close()
	resp, err := http.Post(srv.URL, "text/plain", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("status = %d, want 405", resp.StatusCode)
	}
}
