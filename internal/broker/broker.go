// Package broker implements the event-based middleware substrate: a
// publish/subscribe broker with the three classic decoupling dimensions
// (Fig. 1) and a pluggable matcher, so the thematic approximate matcher
// drops in as the broker's matching engine.
//
//   - Space decoupling: producers publish to the broker; they never learn
//     who consumes.
//   - Time decoupling: a bounded replay buffer lets subscribers that join
//     later receive earlier events.
//   - Synchronization decoupling: Publish never blocks on consumers; each
//     subscriber has a bounded queue drained at its own pace, with a
//     drop-oldest overflow policy surfaced in the statistics.
//
// # Concurrency
//
// The broker is safe for concurrent use. Publish fans the subscription set
// out over a bounded worker pool (WithMatchParallelism, default
// GOMAXPROCS): the publishing goroutine always participates, helper
// workers are drawn from a broker-wide budget shared by concurrent
// publishes, and Publish returns only after every match decision and
// delivery of its event is done — callers keep the synchronous contract.
// Matchers implementing PreparedMatcher get the prepared fast path: each
// subscription is prepared once at Subscribe time and each event once per
// Publish, so the hot loop never recompiles themes or recanonicalizes
// terms — and, with pruning on (WithPruning, default), the candidate set
// itself comes from the internal/subindex pruning index instead of a full
// scan, skipping subscriptions whose exact predicates this event cannot
// satisfy. All Stats counters are atomics; no lock is held while matching.
package broker

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"thematicep/internal/event"
	"thematicep/internal/subindex"
	"thematicep/internal/telemetry"
)

// Matcher decides whether an event is relevant to a subscription and with
// what score. matcher.Matcher (thematic or not) and the baselines satisfy
// it via small adapters; see MatchFunc.
type Matcher interface {
	Score(s *event.Subscription, e *event.Event) float64
}

// MatchFunc adapts a plain function to the Matcher interface.
type MatchFunc func(s *event.Subscription, e *event.Event) float64

// Score implements Matcher.
func (f MatchFunc) Score(s *event.Subscription, e *event.Event) float64 { return f(s, e) }

// PreparedMatcher extends Matcher with a prepare-once fast path. The
// broker prepares every subscription at Subscribe time and every event
// once per Publish, then scores through ScorePrepared in the hot loop —
// the prepared forms are opaque to the broker. Implementations must allow
// concurrent ScorePrepared calls on shared prepared values. Plain Matchers
// (the baselines) keep working unchanged through the Score path.
type PreparedMatcher interface {
	Matcher
	// PrepareSub returns an opaque prepared form of s, valid for the
	// lifetime of this matcher.
	PrepareSub(s *event.Subscription) any
	// PrepareEv returns an opaque prepared form of e.
	PrepareEv(e *event.Event) any
	// ScorePrepared scores prepared forms produced by this matcher.
	ScorePrepared(sub, ev any) float64
}

// prepared adapts typed prepare-once methods to PreparedMatcher.
type prepared[PS, PE any] struct {
	score         func(*event.Subscription, *event.Event) float64
	prepareSub    func(*event.Subscription) PS
	prepareEv     func(*event.Event) PE
	scorePrepared func(PS, PE) float64
}

func (p prepared[PS, PE]) Score(s *event.Subscription, e *event.Event) float64 {
	return p.score(s, e)
}
func (p prepared[PS, PE]) PrepareSub(s *event.Subscription) any { return p.prepareSub(s) }
func (p prepared[PS, PE]) PrepareEv(e *event.Event) any         { return p.prepareEv(e) }
func (p prepared[PS, PE]) ScorePrepared(sub, ev any) float64 {
	return p.scorePrepared(sub.(PS), ev.(PE))
}

// Prepared adapts a matcher exposing typed prepare-once methods (for
// example *matcher.Matcher) to the PreparedMatcher interface, keeping the
// broker decoupled from any concrete matcher package:
//
//	m := matcher.New(space)
//	b := broker.New(broker.Prepared(m.Score, m.PrepareSubscription, m.PrepareEvent, m.ScorePrepared))
func Prepared[PS, PE any](
	score func(*event.Subscription, *event.Event) float64,
	prepareSub func(*event.Subscription) PS,
	prepareEv func(*event.Event) PE,
	scorePrepared func(PS, PE) float64,
) PreparedMatcher {
	return prepared[PS, PE]{
		score:         score,
		prepareSub:    prepareSub,
		prepareEv:     prepareEv,
		scorePrepared: scorePrepared,
	}
}

// BatchMatcher extends PreparedMatcher with columnar batch scoring: one
// prepared event swept across a whole candidate batch, sharing per-term
// similarity work between subscriptions. The broker batches dispatch
// through it when available. Scores must be bit-identical to calling
// ScorePrepared per subscription — batching is a performance capability,
// never a semantic one — and concurrent ScoreBatchPrepared calls on shared
// prepared values must be allowed.
type BatchMatcher interface {
	PreparedMatcher
	// ScoreBatchPrepared appends one score per prepared subscription (in
	// order) to out and returns it.
	ScoreBatchPrepared(subs []any, ev any, out []float64) []float64
}

// preparedBatch adapts typed batch-scoring methods to BatchMatcher. It is
// a distinct type (not a field on prepared) so that a matcher adapted
// through Prepared never spuriously satisfies the BatchMatcher assertion.
type preparedBatch[PS, PE any] struct {
	prepared[PS, PE]
	scoreBatch func([]PS, PE, []float64) []float64
	subsPool   sync.Pool // *[]PS scratch for the any -> PS conversion
}

func (p *preparedBatch[PS, PE]) ScoreBatchPrepared(subs []any, ev any, out []float64) []float64 {
	bufp, _ := p.subsPool.Get().(*[]PS)
	if bufp == nil {
		bufp = new([]PS)
	}
	typed := (*bufp)[:0]
	for _, s := range subs {
		typed = append(typed, s.(PS))
	}
	out = p.scoreBatch(typed, ev.(PE), out)
	clear(typed) // drop prepared-subscription references before pooling
	*bufp = typed[:0]
	p.subsPool.Put(bufp)
	return out
}

// PreparedBatch is Prepared plus a typed batch scorer (for example
// *matcher.Matcher's ScoreBatch):
//
//	m := matcher.New(space)
//	b := broker.New(broker.PreparedBatch(
//		m.Score, m.PrepareSubscription, m.PrepareEvent, m.ScorePrepared, m.ScoreBatch))
func PreparedBatch[PS, PE any](
	score func(*event.Subscription, *event.Event) float64,
	prepareSub func(*event.Subscription) PS,
	prepareEv func(*event.Event) PE,
	scorePrepared func(PS, PE) float64,
	scoreBatch func([]PS, PE, []float64) []float64,
) PreparedMatcher {
	return &preparedBatch[PS, PE]{
		prepared: prepared[PS, PE]{
			score:         score,
			prepareSub:    prepareSub,
			prepareEv:     prepareEv,
			scorePrepared: scorePrepared,
		},
		scoreBatch: scoreBatch,
	}
}

// Delivery is one matched event handed to a subscriber.
type Delivery struct {
	// Event is the published event.
	Event *event.Event
	// SubscriptionID identifies which subscription matched.
	SubscriptionID string
	// Score is the matcher's relevance score in (0, 1].
	Score float64
	// Replayed marks deliveries that came from the replay buffer rather
	// than live publication.
	Replayed bool
	// At is the broker's admission timestamp for the delivery (when the
	// match was made). Downstream consumers — the continuous-query engine,
	// latency probes — use it as the event's time in window semantics and
	// to measure event-to-detection latency.
	At time.Time
}

// Stats are broker counters; all values are cumulative.
type Stats struct {
	Published   uint64 // events accepted by Publish
	Shed        uint64 // publishes rejected by load shedding (ErrOverloaded)
	Scanned     uint64 // (event, subscription) pairs scored by the matcher
	Pruned      uint64 // pairs skipped by the pruning index (provably score 0)
	Matched     uint64 // (event, subscription) matches
	Delivered   uint64 // deliveries handed to subscriber queues
	Dropped     uint64 // deliveries dropped due to full subscriber queues
	Subscribers int    // currently active subscriptions

	// Batched-publish amortization counters (PublishBatch only). Terms
	// counts are raw-term canonicalizations served from the batch interner
	// (reused) vs computed fresh (interned); rows counts are similarity
	// rows served from the batch-scope arena memo vs computed through the
	// semantic kernel. High reuse ratios are the whole point of batching.
	Batches            uint64 // PublishBatch calls accepted
	BatchTermsInterned uint64 // distinct raw terms canonicalized fresh
	BatchTermsReused   uint64 // raw-term canonicalizations served from the interner
	BatchRowsComputed  uint64 // similarity rows computed through the kernel
	BatchRowsReused    uint64 // similarity rows served from the batch memo
}

// Option configures a Broker.
type Option interface {
	apply(*config)
}

type config struct {
	threshold     float64
	queueSize     int
	replaySize    int
	parallelism   int
	pruning       bool
	shedWatermark int
	clock         telemetry.Clock
	traceEvery    int
	traceOpts     []telemetry.TracerOption
	deliverySLO   *telemetry.SLO
	journal       Journal
}

// Journal records durable registration changes (implemented by wal.Log):
// every non-ephemeral Subscribe and Unsubscribe is appended so a crashed
// broker can re-register its subscriptions on restart. Hooks are called
// outside the broker's lock, after the operation has taken effect.
type Journal interface {
	Subscribed(id string, sub *event.Subscription)
	Unsubscribed(id string)
}

type journalOption struct{ j Journal }

func (o journalOption) apply(c *config) { c.journal = o.j }

// WithJournal installs a registration journal. Registrations marked
// Ephemeral — federation-internal copies and query feeds, both
// reconstructed by their owners on restart — bypass it.
func WithJournal(j Journal) Option { return journalOption{j} }

type thresholdOption float64

func (o thresholdOption) apply(c *config) { c.threshold = float64(o) }

// WithThreshold sets the minimum matcher score for delivery (default 0.05;
// any positive score from a binary matcher passes).
func WithThreshold(t float64) Option { return thresholdOption(t) }

type queueSizeOption int

func (o queueSizeOption) apply(c *config) { c.queueSize = int(o) }

// WithQueueSize sets each subscriber's buffered queue length (default 64).
func WithQueueSize(n int) Option { return queueSizeOption(n) }

type replaySizeOption int

func (o replaySizeOption) apply(c *config) { c.replaySize = int(o) }

// WithReplayBuffer sets how many recent events the broker retains for
// time-decoupled subscribers (default 256; 0 disables replay).
func WithReplayBuffer(n int) Option { return replaySizeOption(n) }

type parallelismOption int

func (o parallelismOption) apply(c *config) { c.parallelism = int(o) }

// WithMatchParallelism bounds the worker pool Publish fans the
// subscription set out over (default GOMAXPROCS; 1 disables the pool and
// matches serially on the publisher's goroutine). The bound is broker-wide:
// concurrent Publish calls share one helper budget, so total matching
// goroutines never exceed the limit regardless of publisher count.
func WithMatchParallelism(n int) Option { return parallelismOption(n) }

type pruningOption bool

func (o pruningOption) apply(c *config) { c.pruning = bool(o) }

type clockOption struct{ c telemetry.Clock }

func (o clockOption) apply(c *config) { c.clock = o.c }

// WithClock sets the clock used for all pipeline stage timing (default
// telemetry.System). Injecting a telemetry.Manual clock makes bucket
// placement in the latency histograms exactly reproducible in tests.
func WithClock(c telemetry.Clock) Option { return clockOption{c} }

type traceSamplingOption struct {
	every int
	opts  []telemetry.TracerOption
}

func (o traceSamplingOption) apply(c *config) {
	c.traceEvery = o.every
	c.traceOpts = append(c.traceOpts, o.opts...)
}

// WithTraceSampling records a pipeline trace (one span per stage: ingest,
// compile, enumerate, score, and per-match deliver) for one in every n
// published events, keeping them in a bounded in-memory ring served by
// TracesHandler. Tracing is off by default (n <= 0): the untraced publish
// path performs no trace work at all, and even with tracing on the
// unsampled path is a single atomic add. Extra tracer options (ring size,
// slog sink) pass through.
func WithTraceSampling(n int, opts ...telemetry.TracerOption) Option {
	return traceSamplingOption{n, opts}
}

type deliverySLOOption struct{ s *telemetry.SLO }

func (o deliverySLOOption) apply(c *config) { c.deliverySLO = o.s }

// WithDeliverySLO tracks publish-to-deliver latency against a service
// level objective: every admitted event (single or batched) is counted
// good or bad against the SLO's latency threshold when its publish
// completes. The record path is two atomic adds, so the SLO sits on the
// hot path next to the stage histograms without disturbing the 0-alloc
// gates. The caller owns the SLO (typically also registering it as a
// metrics collector); nil disables tracking.
func WithDeliverySLO(s *telemetry.SLO) Option { return deliverySLOOption{s} }

type shedWatermarkOption int

func (o shedWatermarkOption) apply(c *config) { c.shedWatermark = int(o) }

// WithShedWatermark enables publish-side load shedding: when more than n
// Publish calls are already in flight AND the broker-wide match semaphore
// is saturated (every helper worker busy), additional publishes are
// rejected with ErrOverloaded instead of piling onto the contended
// matcher. Shed publishes are counted in Stats.Shed and exported as
// thematicep_broker_shed_total — bounded degradation is explicit, never a
// silent drop. Zero (the default) disables shedding.
func WithShedWatermark(n int) Option { return shedWatermarkOption(n) }

// WithPruning enables or disables the subscription pruning index (default
// on). When on, Publish builds its candidate set from the event's tuple
// terms via internal/subindex instead of scanning every subscription;
// skipped subscriptions provably score 0 under the §3.4 exact-term
// contract, so delivery sets are identical to the unpruned scan (see the
// subindex package documentation for the argument). Pruning engages only
// for matchers implementing PreparedMatcher — the thematic matcher and its
// non-thematic variant — because those honor the contract; plain Matcher
// baselines are always scanned in full. Disable it for a PreparedMatcher
// whose exact-term semantics are looser than canonical equality.
func WithPruning(enabled bool) Option { return pruningOption(enabled) }

// Broker routes published events to matching subscribers. It is safe for
// concurrent use. Close releases all subscribers.
type Broker struct {
	matcher Matcher
	prep    PreparedMatcher // non-nil when matcher supports prepare-once
	batch   BatchMatcher    // non-nil when matcher also supports batch scoring
	stream  StreamMatcher   // non-nil when matcher also supports batch-scope contexts
	streamT targetScorer    // non-nil when stream also scores []*Subscriber directly
	cfg     config

	// index prunes the per-publish candidate set (WithPruning); non-nil
	// only when pruning is on and the matcher supports prepare-once.
	index *subindex.Index[*Subscriber]

	// sem is the broker-wide helper-worker budget (capacity
	// parallelism-1); acquisition is non-blocking, so a saturated pool
	// degrades to publisher-goroutine matching, never to deadlock.
	sem chan struct{}

	// pubBufs is the free list of batch-publish buffers (see
	// acquirePubBuf): broker-owned rather than a sync.Pool so the large
	// per-batch scratch survives GC cycles instead of being regrown —
	// and re-collected — every batch.
	pubBufs chan *pubBatchBuf

	// Cumulative counters; atomics so the match hot loop takes no lock
	// (and offer cannot deadlock against b.mu).
	published atomic.Uint64
	shed      atomic.Uint64
	scanned   atomic.Uint64
	pruned    atomic.Uint64
	matched   atomic.Uint64
	delivered atomic.Uint64
	dropped   atomic.Uint64

	// Batched-publish counters (see Stats for semantics).
	batches            atomic.Uint64
	batchTermsInterned atomic.Uint64
	batchTermsReused   atomic.Uint64
	batchRowsComputed  atomic.Uint64
	batchRowsReused    atomic.Uint64

	// Drain/shutdown coordination: draining refuses new publishes while
	// inflight tracks the Publish calls still running, so Drain can wait
	// for the pipeline to empty without holding b.mu across matching.
	draining atomic.Bool
	inflight atomic.Int64

	// Pipeline telemetry. The histograms are always on (recording is one
	// atomic add on a precomputed bucket index); the tracer is nil unless
	// WithTraceSampling enabled it.
	clock         telemetry.Clock
	tracer        *telemetry.Tracer
	deliverySLO   *telemetry.SLO       // nil unless WithDeliverySLO enabled it
	publishHist   *telemetry.Histogram // end-to-end Publish latency
	compileHist   *telemetry.Histogram // event preparation (theme compile)
	enumerateHist *telemetry.Histogram // candidate enumeration
	scoreHist     *telemetry.Histogram // matching fan-out (score stage)
	deliverHist   *telemetry.Histogram // per-delivery queue handoff
	candHist      *telemetry.Histogram // candidate-set size distribution
	batchSizeHist *telemetry.Histogram // PublishBatch batch-size distribution

	mu     sync.RWMutex
	subs   map[string]*Subscriber
	replay []*event.Event // ring buffer, oldest first
	closed bool
	nextID int

	// drainHooks run once inside Drain, after in-flight publishes settle
	// and before queue flushing — the point where attached stream
	// processors (the continuous-query engine) flush pending windows so
	// their final emissions still ride the draining queues.
	drainMu       sync.Mutex
	drainHooks    []func()
	drainHooksRun bool
}

// Errors returned by broker operations.
var (
	ErrClosed       = errors.New("broker: closed")
	ErrNilEvent     = errors.New("broker: nil event")
	ErrDuplicateSub = errors.New("broker: duplicate subscription id")
	// ErrDraining is returned by Publish once Drain has begun: the broker
	// no longer admits events but is still flushing subscriber queues.
	ErrDraining = errors.New("broker: draining")
	// ErrOverloaded is returned by Publish when load shedding
	// (WithShedWatermark) rejects an event because the matching pipeline
	// is saturated. The publisher may retry with backoff.
	ErrOverloaded = errors.New("broker: overloaded, publish shed")
)

// New builds a broker around a matcher. Matchers also implementing
// PreparedMatcher (see Prepared) get the prepare-once fast path.
func New(m Matcher, opts ...Option) *Broker {
	cfg := config{
		threshold:   0.05,
		queueSize:   64,
		replaySize:  256,
		parallelism: runtime.GOMAXPROCS(0),
		pruning:     true,
	}
	for _, opt := range opts {
		opt.apply(&cfg)
	}
	if cfg.parallelism < 1 {
		cfg.parallelism = 1
	}
	if cfg.clock == nil {
		cfg.clock = telemetry.System
	}
	lat := telemetry.LatencyBuckets()
	b := &Broker{
		matcher:     m,
		cfg:         cfg,
		subs:        make(map[string]*Subscriber),
		pubBufs:     make(chan *pubBatchBuf, pubBufLimit),
		clock:       cfg.clock,
		deliverySLO: cfg.deliverySLO,
		tracer: telemetry.NewTracer(cfg.traceEvery,
			append([]telemetry.TracerOption{telemetry.WithClock(cfg.clock)}, cfg.traceOpts...)...),
		publishHist: telemetry.NewHistogram("thematicep_broker_publish_seconds",
			"End-to-end Publish latency (ingest through last delivery).", lat),
		compileHist: telemetry.NewHistogram("thematicep_broker_compile_seconds",
			"Event preparation latency (canonicalization and theme compile).", lat),
		enumerateHist: telemetry.NewHistogram("thematicep_broker_enumerate_seconds",
			"Candidate enumeration latency (pruning-index lookup or full-scan setup).", lat),
		scoreHist: telemetry.NewHistogram("thematicep_broker_score_seconds",
			"Matching fan-out latency per event (all candidate scorings).", lat),
		deliverHist: telemetry.NewHistogram("thematicep_broker_deliver_seconds",
			"Per-delivery queue handoff latency.", lat),
		candHist: telemetry.NewHistogram("thematicep_subindex_candidates_per_event",
			"Candidates enumerated per published event (after pruning).", telemetry.SizeBuckets()),
		batchSizeHist: telemetry.NewHistogram("thematicep_publish_batch_size",
			"Events per accepted PublishBatch call.", telemetry.SizeBuckets()),
	}
	if pm, ok := m.(PreparedMatcher); ok {
		b.prep = pm
	}
	if bm, ok := m.(BatchMatcher); ok {
		b.batch = bm
	}
	if sm, ok := m.(StreamMatcher); ok {
		b.stream = sm
		if ts, ok := m.(targetScorer); ok {
			b.streamT = ts
		}
	}
	if cfg.pruning && b.prep != nil {
		b.index = subindex.New[*Subscriber]()
	}
	if cfg.parallelism > 1 {
		b.sem = make(chan struct{}, cfg.parallelism-1)
	}
	return b
}

// Subscriber is one active subscription with its delivery queue.
type Subscriber struct {
	id       string
	sub      *event.Subscription
	prepared any // prepare-once form, when the matcher supports it
	ch       chan Delivery
	broker   *Broker

	// ephemeral registrations bypass the journal (see Ephemeral).
	ephemeral bool

	mu     sync.Mutex
	closed bool
}

// ID returns the subscription id the broker assigned (or the caller chose).
func (s *Subscriber) ID() string { return s.id }

// C is the delivery channel. It is closed when the subscriber or the broker
// closes.
func (s *Subscriber) C() <-chan Delivery { return s.ch }

// Close cancels the subscription and closes the delivery channel.
func (s *Subscriber) Close() {
	s.broker.unsubscribe(s.id)
}

// SubscribeOption configures one subscription.
type SubscribeOption interface {
	applySub(*subConfig)
}

type subConfig struct {
	replay    bool
	ephemeral bool
}

type replayOption bool

func (o replayOption) applySub(c *subConfig) { c.replay = bool(o) }

// WithReplay requests that buffered past events be matched and delivered to
// the new subscriber before live events (time decoupling).
func WithReplay(enabled bool) SubscribeOption { return replayOption(enabled) }

type ephemeralOption struct{}

func (ephemeralOption) applySub(c *subConfig) { c.ephemeral = true }

// Ephemeral marks a registration as connection-scoped state that must
// never reach the registration journal: remote copies hosted for a
// federation peer (the peer's reconcile loop re-creates them on
// reconnect) and continuous-query feeds (re-created when the recovered
// query re-registers). Journaling them would resurrect registrations
// whose owner is responsible for rebuilding them.
func Ephemeral() SubscribeOption { return ephemeralOption{} }

// Subscribe registers a subscription. If sub.ID is empty the broker assigns
// one. The returned Subscriber's channel receives matching deliveries until
// Close.
func (b *Broker) Subscribe(sub *event.Subscription, opts ...SubscribeOption) (*Subscriber, error) {
	if sub == nil {
		return nil, errors.New("broker: subscribe: nil subscription")
	}
	if err := sub.Validate(); err != nil {
		return nil, fmt.Errorf("broker: subscribe: %w", err)
	}
	var sc subConfig
	for _, opt := range opts {
		opt.applySub(&sc)
	}
	// Prepare outside the lock: theme compilation may be expensive.
	var prep any
	if b.prep != nil {
		prep = b.prep.PrepareSub(sub)
	}

	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil, ErrClosed
	}
	id := sub.ID
	if id == "" {
		b.nextID++
		id = fmt.Sprintf("sub-%d", b.nextID)
	}
	if _, exists := b.subs[id]; exists {
		b.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrDuplicateSub, id)
	}
	s := &Subscriber{
		id:        id,
		sub:       sub,
		prepared:  prep,
		ch:        make(chan Delivery, b.cfg.queueSize),
		broker:    b,
		ephemeral: sc.ephemeral,
	}
	b.subs[id] = s
	if b.index != nil {
		// Under b.mu so the index and the subscription map stay in step
		// (lock order is always b.mu before the index's internal lock).
		b.index.Add(id, sub, s)
	}
	var backlog []*event.Event
	if sc.replay {
		backlog = append(backlog, b.replay...)
	}
	b.mu.Unlock()

	if b.cfg.journal != nil && !sc.ephemeral {
		// Journal with the final ID stamped in so a recovered registration
		// re-registers under the identity the client knows.
		cp := *sub
		cp.ID = id
		b.cfg.journal.Subscribed(id, &cp)
	}

	// Replay outside the lock: matching may be expensive.
	for _, e := range backlog {
		var score float64
		if b.prep != nil {
			score = b.prep.ScorePrepared(prep, b.prep.PrepareEv(e))
		} else {
			score = b.matcher.Score(sub, e)
		}
		if score >= b.cfg.threshold && score > 0 {
			b.offer(s, Delivery{Event: e, SubscriptionID: id, Score: score, Replayed: true, At: b.clock.Now()})
		}
	}
	return s, nil
}

func (b *Broker) unsubscribe(id string) {
	b.mu.Lock()
	s, ok := b.subs[id]
	if ok {
		delete(b.subs, id)
		if b.index != nil {
			b.index.Remove(id)
		}
	}
	b.mu.Unlock()
	if ok {
		s.mu.Lock()
		if !s.closed {
			s.closed = true
			close(s.ch)
		}
		s.mu.Unlock()
		if b.cfg.journal != nil && !s.ephemeral {
			b.cfg.journal.Unsubscribed(id)
		}
	}
}

// Publish matches the event against every subscription and enqueues
// deliveries, fanning the subscription set out over the bounded worker
// pool (WithMatchParallelism). It returns only after every match decision
// and delivery of this event is done, and it never blocks on slow
// consumers: when a subscriber's queue is full, the oldest queued delivery
// is dropped (counted in Stats.Dropped).
func (b *Broker) Publish(e *event.Event) error {
	t0 := b.clock.Now()
	if e == nil {
		return ErrNilEvent
	}
	if err := e.Validate(); err != nil {
		return fmt.Errorf("broker: publish: %w", err)
	}
	// Admission control. The inflight count is incremented before the
	// draining check so Drain's wait-for-zero cannot miss a racing
	// publish: any Publish that passes the check is visible to the poll.
	b.inflight.Add(1)
	defer b.inflight.Add(-1)
	if b.draining.Load() {
		return ErrDraining
	}
	if w := b.cfg.shedWatermark; w > 0 && b.sem != nil &&
		len(b.sem) == cap(b.sem) && b.inflight.Load() > int64(w) {
		// The helper budget is exhausted and more publishes are in flight
		// than the watermark allows: shed this one instead of queueing
		// onto a saturated matcher. Counted, surfaced, never silent.
		b.shed.Add(1)
		return ErrOverloaded
	}
	trace := b.tracer.StartAt(e.ID, t0)

	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return ErrClosed
	}
	if b.cfg.replaySize > 0 {
		b.replay = append(b.replay, e)
		if len(b.replay) > b.cfg.replaySize {
			b.replay = b.replay[len(b.replay)-b.cfg.replaySize:]
		}
	}
	var targets []*Subscriber
	empty := len(b.subs) == 0
	if b.index == nil {
		targets = make([]*Subscriber, 0, len(b.subs))
		for _, s := range b.subs {
			targets = append(targets, s)
		}
	}
	b.mu.Unlock()

	b.published.Add(1)
	trace.AddSpan("ingest", t0)

	tCompile := b.clock.Now()
	var pe any
	if b.prep != nil && !empty {
		// Prepare the event once: every worker shares the canonical terms
		// and compiled theme instead of recomputing them per subscription.
		pe = b.prep.PrepareEv(e)
	}
	tEnum := b.clock.Now()
	b.compileHist.ObserveDuration(tEnum.Sub(tCompile))
	trace.AddSpanDuration("compile", tCompile, tEnum.Sub(tCompile))

	if b.index != nil && !empty {
		// Candidate set from the pruning index: subscriptions whose exact
		// predicates cannot all be satisfied by this event's tuples are
		// skipped before any semantic measure runs. The prepared event's
		// canonical terms feed the index directly when available.
		add := func(s *Subscriber) { targets = append(targets, s) }
		var pruned int
		if ct, ok := pe.(canonicalTupler); ok {
			attrs, values := ct.CanonicalTuples()
			_, pruned = b.index.CandidatesPrepared(attrs, values, add)
		} else {
			_, pruned = b.index.Candidates(e, add)
		}
		b.pruned.Add(uint64(pruned))
	}
	tScore := b.clock.Now()
	b.enumerateHist.ObserveDuration(tScore.Sub(tEnum))
	trace.AddSpanDuration("enumerate", tEnum, tScore.Sub(tEnum))
	b.candHist.Observe(float64(len(targets)))

	b.scanned.Add(uint64(len(targets)))
	if b.batch != nil && pe != nil {
		b.dispatchBatch(targets, e, pe, trace)
	} else {
		b.dispatch(targets, e, pe, trace)
	}
	end := b.clock.Now()
	b.scoreHist.ObserveDuration(end.Sub(tScore))
	trace.AddSpanDuration("score", tScore, end.Sub(tScore))
	b.publishHist.ObserveDuration(end.Sub(t0))
	b.deliverySLO.Observe(end.Sub(t0))
	trace.Finish()
	return nil
}

// canonicalTupler is the optional prepared-event capability the pruning
// index exploits: pre-canonicalized tuple terms (matcher.PreparedEvent
// implements it).
type canonicalTupler interface {
	CanonicalTuples() (attrs, values []string)
}

// dispatch scores an event against every target subscriber. With
// parallelism n > 1, up to n-1 helper workers are drawn from the
// broker-wide budget and the publisher goroutine always works too; workers
// pull targets off a shared atomic cursor, so the set is partitioned
// dynamically and each subscriber is matched exactly once.
func (b *Broker) dispatch(targets []*Subscriber, e *event.Event, pe any, trace *telemetry.ActiveTrace) {
	n := len(targets)
	if n == 0 {
		return
	}
	workers := b.cfg.parallelism
	if workers > n {
		workers = n
	}
	if workers <= 1 || b.sem == nil {
		for _, s := range targets {
			b.matchOne(s, e, pe, trace)
		}
		return
	}

	var cursor atomic.Int64
	run := func() {
		for {
			i := int(cursor.Add(1)) - 1
			if i >= n {
				return
			}
			b.matchOne(targets[i], e, pe, trace)
		}
	}
	var wg sync.WaitGroup
spawn:
	for w := 1; w < workers; w++ {
		select {
		case b.sem <- struct{}{}:
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { <-b.sem }()
				run()
			}()
		default:
			// Helper budget exhausted by concurrent publishes: the
			// publisher goroutine absorbs the remainder.
			break spawn
		}
	}
	run()
	wg.Wait()
}

// matchOne scores one (event, subscription) pair and enqueues the delivery
// on a match. Prepared forms are used when the matcher supports them.
func (b *Broker) matchOne(s *Subscriber, e *event.Event, pe any, trace *telemetry.ActiveTrace) {
	var score float64
	if pe != nil && s.prepared != nil {
		score = b.prep.ScorePrepared(s.prepared, pe)
	} else {
		score = b.matcher.Score(s.sub, e)
	}
	b.deliverScored(s, e, score, trace)
}

// deliverScored applies the threshold and enqueues the delivery — the
// shared tail of the serial and batch match paths.
func (b *Broker) deliverScored(s *Subscriber, e *event.Event, score float64, trace *telemetry.ActiveTrace) {
	if score < b.cfg.threshold || score <= 0 {
		return
	}
	b.matched.Add(1)
	t0 := b.clock.Now()
	b.offer(s, Delivery{Event: e, SubscriptionID: s.id, Score: score, At: t0})
	d := b.clock.Now().Sub(t0)
	b.deliverHist.ObserveDuration(d)
	trace.AddSpanDuration("deliver", t0, d)
}

// batchChunkSize is the unit of work the batch dispatcher hands a worker:
// large enough that the per-chunk row memo amortizes across many
// subscriptions, small enough that the worker pool still load-balances a
// skewed candidate set.
const batchChunkSize = 256

// batchScoreBuf is the pooled per-chunk scratch of the batch dispatcher.
type batchScoreBuf struct {
	subs   []any
	scores []float64
}

var batchScorePool = sync.Pool{New: func() any { return new(batchScoreBuf) }}

// dispatchBatch is dispatch through the matcher's columnar batch scorer:
// workers pull fixed-size chunks of the candidate set off a shared atomic
// cursor and score each chunk in one ScoreBatchPrepared sweep. Requires a
// prepared event (pe non-nil), which implies every subscriber carries a
// prepared form.
func (b *Broker) dispatchBatch(targets []*Subscriber, e *event.Event, pe any, trace *telemetry.ActiveTrace) {
	n := len(targets)
	if n == 0 {
		return
	}
	chunks := (n + batchChunkSize - 1) / batchChunkSize
	workers := b.cfg.parallelism
	if workers > chunks {
		workers = chunks
	}
	if workers <= 1 || b.sem == nil {
		for lo := 0; lo < n; lo += batchChunkSize {
			b.matchBatch(targets[lo:min(lo+batchChunkSize, n)], e, pe, trace)
		}
		return
	}

	var cursor atomic.Int64
	run := func() {
		for {
			c := int(cursor.Add(1)) - 1
			if c >= chunks {
				return
			}
			lo := c * batchChunkSize
			b.matchBatch(targets[lo:min(lo+batchChunkSize, n)], e, pe, trace)
		}
	}
	var wg sync.WaitGroup
spawn:
	for w := 1; w < workers; w++ {
		select {
		case b.sem <- struct{}{}:
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { <-b.sem }()
				run()
			}()
		default:
			// Helper budget exhausted by concurrent publishes: the
			// publisher goroutine absorbs the remainder.
			break spawn
		}
	}
	run()
	wg.Wait()
}

// matchBatch scores one contiguous chunk of candidates in a single batch
// sweep and enqueues the resulting deliveries.
func (b *Broker) matchBatch(chunk []*Subscriber, e *event.Event, pe any, trace *telemetry.ActiveTrace) {
	buf := batchScorePool.Get().(*batchScoreBuf)
	subs := buf.subs[:0]
	for _, s := range chunk {
		subs = append(subs, s.prepared)
	}
	scores := b.batch.ScoreBatchPrepared(subs, pe, buf.scores[:0])
	for i, s := range chunk {
		b.deliverScored(s, e, scores[i], trace)
	}
	clear(subs) // drop subscriber references before pooling
	buf.subs = subs[:0]
	buf.scores = scores[:0]
	batchScorePool.Put(buf)
}

// offer enqueues a delivery, dropping the oldest entry when full
// (synchronization decoupling: publishers never block).
func (b *Broker) offer(s *Subscriber, d Delivery) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	for {
		select {
		case s.ch <- d:
			b.delivered.Add(1)
			return
		default:
			select {
			case <-s.ch:
				b.dropped.Add(1)
			default:
			}
		}
	}
}

// Stats returns a snapshot of the broker counters, taken in one pass
// with no lock held across the counter loads.
//
// Counter consistency under concurrent Publish: each counter is advanced
// downstream-first relative to this snapshot's load order — deliveries and
// drops are loaded before matches, matches before scans — and in the
// pipeline itself every Matched increment happens before its delivery is
// counted. A scrape racing a publish therefore never observes a delivery
// whose match is missing: absent replay traffic (replayed deliveries are
// counted in Delivered but have no live match), Delivered <= Matched holds
// in every snapshot, with at most a transient deficit (a match counted
// whose delivery lands after the scrape). The same holds pairwise up the
// pipeline: Matched <= Scanned and, per event, scans are counted before
// dispatch begins.
func (b *Broker) Stats() Stats {
	b.mu.RLock()
	subscribers := len(b.subs)
	b.mu.RUnlock()
	// Load order mirrors reverse pipeline order; do not reorder.
	dropped := b.dropped.Load()
	delivered := b.delivered.Load()
	matched := b.matched.Load()
	scanned := b.scanned.Load()
	pruned := b.pruned.Load()
	published := b.published.Load()
	shed := b.shed.Load()
	return Stats{
		Published:   published,
		Shed:        shed,
		Scanned:     scanned,
		Pruned:      pruned,
		Matched:     matched,
		Delivered:   delivered,
		Dropped:     dropped,
		Subscribers: subscribers,

		Batches:            b.batches.Load(),
		BatchTermsInterned: b.batchTermsInterned.Load(),
		BatchTermsReused:   b.batchTermsReused.Load(),
		BatchRowsComputed:  b.batchRowsComputed.Load(),
		BatchRowsReused:    b.batchRowsReused.Load(),
	}
}

// Tracer returns the broker's pipeline tracer (nil unless
// WithTraceSampling enabled tracing). Collaborators such as the cluster
// layer use it to attach late spans — forward hops — to a sampled event's
// trace by event ID.
func (b *Broker) Tracer() *telemetry.Tracer { return b.tracer }

// TracesHandler serves the ring of recent sampled pipeline traces as JSON
// (the /debug/traces endpoint). With tracing off it serves an empty array.
func (b *Broker) TracesHandler() http.Handler { return b.tracer.Handler() }

// Clock returns the clock the broker stamps pipeline stages with.
func (b *Broker) Clock() telemetry.Clock { return b.clock }

// PublishLatency returns a snapshot of the end-to-end publish latency
// histogram (for programmatic inspection; /metrics serves the full set).
func (b *Broker) PublishLatency() telemetry.HistogramSnapshot { return b.publishHist.Snapshot() }

// Drain shuts the broker down gracefully: it stops admitting publishes
// (Publish returns ErrDraining), waits for every in-flight Publish to
// finish, then waits for the subscriber queues to be consumed before
// closing. If ctx expires first, the broker is closed anyway — undelivered
// queue entries are released by the channel close — and ctx's error is
// returned. A nil return means every queued delivery for a live subscriber
// was flushed. Drain is idempotent and safe to race with Close, Publish,
// and Subscribe.
func (b *Broker) Drain(ctx context.Context) error {
	b.draining.Store(true)
	defer b.Close()

	// Phase 1: let in-flight publishes complete so every delivery that was
	// admitted reaches its queue. New publishes bounce off the draining
	// flag, so the count can only fall (modulo admission-check blips that
	// exit immediately).
	const poll = 2 * time.Millisecond
	for b.inflight.Load() > 0 {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(poll):
		}
	}

	// The pipeline is quiet: run the drain hooks exactly once so stream
	// processors can flush pending windows (negation expiries, open
	// aggregates) while subscriber queues are still being consumed.
	b.drainMu.Lock()
	hooks := b.drainHooks
	ran := b.drainHooksRun
	b.drainHooksRun = true
	b.drainMu.Unlock()
	if !ran {
		for _, fn := range hooks {
			fn()
		}
	}

	// Phase 2: wait for the subscribers to consume their queues. A
	// subscriber that never reads keeps its depth pinned and the drain
	// runs into the deadline — which is why Drain takes a context.
	for {
		b.mu.RLock()
		pending := 0
		for _, s := range b.subs {
			pending += len(s.ch)
		}
		b.mu.RUnlock()
		if pending == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(poll):
		}
	}
}

// Draining reports whether Drain has begun (new publishes are refused).
func (b *Broker) Draining() bool { return b.draining.Load() }

// OnDrain registers fn to run once during Drain, after in-flight publishes
// have settled and before subscriber queues are flushed. Hooks must not
// publish (Drain is refusing events); they may still emit on their own
// channels. Registration after Drain has passed the hook point is a no-op.
func (b *Broker) OnDrain(fn func()) {
	b.drainMu.Lock()
	b.drainHooks = append(b.drainHooks, fn)
	b.drainMu.Unlock()
}

// Close shuts the broker down and closes every subscriber channel.
func (b *Broker) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	subs := make([]*Subscriber, 0, len(b.subs))
	for _, s := range b.subs {
		subs = append(subs, s)
	}
	b.subs = make(map[string]*Subscriber)
	b.mu.Unlock()

	for _, s := range subs {
		s.mu.Lock()
		if !s.closed {
			s.closed = true
			close(s.ch)
		}
		s.mu.Unlock()
	}
}
