// Package broker implements the event-based middleware substrate: a
// publish/subscribe broker with the three classic decoupling dimensions
// (Fig. 1) and a pluggable matcher, so the thematic approximate matcher
// drops in as the broker's matching engine.
//
//   - Space decoupling: producers publish to the broker; they never learn
//     who consumes.
//   - Time decoupling: a bounded replay buffer lets subscribers that join
//     later receive earlier events.
//   - Synchronization decoupling: Publish never blocks on consumers; each
//     subscriber has a bounded queue drained at its own pace, with a
//     drop-oldest overflow policy surfaced in the statistics.
package broker

import (
	"errors"
	"fmt"
	"sync"

	"thematicep/internal/event"
)

// Matcher decides whether an event is relevant to a subscription and with
// what score. matcher.Matcher (thematic or not) and the baselines satisfy
// it via small adapters; see MatchFunc.
type Matcher interface {
	Score(s *event.Subscription, e *event.Event) float64
}

// MatchFunc adapts a plain function to the Matcher interface.
type MatchFunc func(s *event.Subscription, e *event.Event) float64

// Score implements Matcher.
func (f MatchFunc) Score(s *event.Subscription, e *event.Event) float64 { return f(s, e) }

// Delivery is one matched event handed to a subscriber.
type Delivery struct {
	// Event is the published event.
	Event *event.Event
	// SubscriptionID identifies which subscription matched.
	SubscriptionID string
	// Score is the matcher's relevance score in (0, 1].
	Score float64
	// Replayed marks deliveries that came from the replay buffer rather
	// than live publication.
	Replayed bool
}

// Stats are broker counters; all values are cumulative.
type Stats struct {
	Published   uint64 // events accepted by Publish
	Matched     uint64 // (event, subscription) matches
	Delivered   uint64 // deliveries handed to subscriber queues
	Dropped     uint64 // deliveries dropped due to full subscriber queues
	Subscribers int    // currently active subscriptions
}

// Option configures a Broker.
type Option interface {
	apply(*config)
}

type config struct {
	threshold  float64
	queueSize  int
	replaySize int
}

type thresholdOption float64

func (o thresholdOption) apply(c *config) { c.threshold = float64(o) }

// WithThreshold sets the minimum matcher score for delivery (default 0.05;
// any positive score from a binary matcher passes).
func WithThreshold(t float64) Option { return thresholdOption(t) }

type queueSizeOption int

func (o queueSizeOption) apply(c *config) { c.queueSize = int(o) }

// WithQueueSize sets each subscriber's buffered queue length (default 64).
func WithQueueSize(n int) Option { return queueSizeOption(n) }

type replaySizeOption int

func (o replaySizeOption) apply(c *config) { c.replaySize = int(o) }

// WithReplayBuffer sets how many recent events the broker retains for
// time-decoupled subscribers (default 256; 0 disables replay).
func WithReplayBuffer(n int) Option { return replaySizeOption(n) }

// Broker routes published events to matching subscribers. It is safe for
// concurrent use. Close releases all subscribers.
type Broker struct {
	matcher Matcher
	cfg     config

	mu     sync.RWMutex
	subs   map[string]*Subscriber
	replay []*event.Event // ring buffer, oldest first
	stats  Stats
	closed bool
	nextID int
}

// Errors returned by broker operations.
var (
	ErrClosed       = errors.New("broker: closed")
	ErrNilEvent     = errors.New("broker: nil event")
	ErrDuplicateSub = errors.New("broker: duplicate subscription id")
)

// New builds a broker around a matcher.
func New(m Matcher, opts ...Option) *Broker {
	cfg := config{
		threshold:  0.05,
		queueSize:  64,
		replaySize: 256,
	}
	for _, opt := range opts {
		opt.apply(&cfg)
	}
	return &Broker{
		matcher: m,
		cfg:     cfg,
		subs:    make(map[string]*Subscriber),
	}
}

// Subscriber is one active subscription with its delivery queue.
type Subscriber struct {
	id     string
	sub    *event.Subscription
	ch     chan Delivery
	broker *Broker

	mu     sync.Mutex
	closed bool
}

// ID returns the subscription id the broker assigned (or the caller chose).
func (s *Subscriber) ID() string { return s.id }

// C is the delivery channel. It is closed when the subscriber or the broker
// closes.
func (s *Subscriber) C() <-chan Delivery { return s.ch }

// Close cancels the subscription and closes the delivery channel.
func (s *Subscriber) Close() {
	s.broker.unsubscribe(s.id)
}

// SubscribeOption configures one subscription.
type SubscribeOption interface {
	applySub(*subConfig)
}

type subConfig struct {
	replay bool
}

type replayOption bool

func (o replayOption) applySub(c *subConfig) { c.replay = bool(o) }

// WithReplay requests that buffered past events be matched and delivered to
// the new subscriber before live events (time decoupling).
func WithReplay(enabled bool) SubscribeOption { return replayOption(enabled) }

// Subscribe registers a subscription. If sub.ID is empty the broker assigns
// one. The returned Subscriber's channel receives matching deliveries until
// Close.
func (b *Broker) Subscribe(sub *event.Subscription, opts ...SubscribeOption) (*Subscriber, error) {
	if sub == nil {
		return nil, errors.New("broker: subscribe: nil subscription")
	}
	if err := sub.Validate(); err != nil {
		return nil, fmt.Errorf("broker: subscribe: %w", err)
	}
	var sc subConfig
	for _, opt := range opts {
		opt.applySub(&sc)
	}

	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil, ErrClosed
	}
	id := sub.ID
	if id == "" {
		b.nextID++
		id = fmt.Sprintf("sub-%d", b.nextID)
	}
	if _, exists := b.subs[id]; exists {
		b.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrDuplicateSub, id)
	}
	s := &Subscriber{
		id:     id,
		sub:    sub,
		ch:     make(chan Delivery, b.cfg.queueSize),
		broker: b,
	}
	b.subs[id] = s
	b.stats.Subscribers = len(b.subs)
	var backlog []*event.Event
	if sc.replay {
		backlog = append(backlog, b.replay...)
	}
	b.mu.Unlock()

	// Replay outside the lock: matching may be expensive.
	for _, e := range backlog {
		if score := b.matcher.Score(sub, e); score >= b.cfg.threshold && score > 0 {
			b.offer(s, Delivery{Event: e, SubscriptionID: id, Score: score, Replayed: true})
		}
	}
	return s, nil
}

func (b *Broker) unsubscribe(id string) {
	b.mu.Lock()
	s, ok := b.subs[id]
	if ok {
		delete(b.subs, id)
		b.stats.Subscribers = len(b.subs)
	}
	b.mu.Unlock()
	if ok {
		s.mu.Lock()
		if !s.closed {
			s.closed = true
			close(s.ch)
		}
		s.mu.Unlock()
	}
}

// Publish matches the event against every subscription and enqueues
// deliveries. It never blocks on slow consumers: when a subscriber's queue
// is full, the oldest queued delivery is dropped (counted in Stats.Dropped).
func (b *Broker) Publish(e *event.Event) error {
	if e == nil {
		return ErrNilEvent
	}
	if err := e.Validate(); err != nil {
		return fmt.Errorf("broker: publish: %w", err)
	}

	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return ErrClosed
	}
	b.stats.Published++
	if b.cfg.replaySize > 0 {
		b.replay = append(b.replay, e)
		if len(b.replay) > b.cfg.replaySize {
			b.replay = b.replay[len(b.replay)-b.cfg.replaySize:]
		}
	}
	targets := make([]*Subscriber, 0, len(b.subs))
	for _, s := range b.subs {
		targets = append(targets, s)
	}
	b.mu.Unlock()

	for _, s := range targets {
		score := b.matcher.Score(s.sub, e)
		if score < b.cfg.threshold || score <= 0 {
			continue
		}
		b.mu.Lock()
		b.stats.Matched++
		b.mu.Unlock()
		b.offer(s, Delivery{Event: e, SubscriptionID: s.id, Score: score})
	}
	return nil
}

// offer enqueues a delivery, dropping the oldest entry when full
// (synchronization decoupling: publishers never block).
func (b *Broker) offer(s *Subscriber, d Delivery) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	for {
		select {
		case s.ch <- d:
			b.mu.Lock()
			b.stats.Delivered++
			b.mu.Unlock()
			return
		default:
			select {
			case <-s.ch:
				b.mu.Lock()
				b.stats.Dropped++
				b.mu.Unlock()
			default:
			}
		}
	}
}

// Stats returns a snapshot of the broker counters.
func (b *Broker) Stats() Stats {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.stats
}

// Close shuts the broker down and closes every subscriber channel.
func (b *Broker) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	subs := make([]*Subscriber, 0, len(b.subs))
	for _, s := range b.subs {
		subs = append(subs, s)
	}
	b.subs = make(map[string]*Subscriber)
	b.stats.Subscribers = 0
	b.mu.Unlock()

	for _, s := range subs {
		s.mu.Lock()
		if !s.closed {
			s.closed = true
			close(s.ch)
		}
		s.mu.Unlock()
	}
}
