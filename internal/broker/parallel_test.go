package broker

import (
	"fmt"
	"strconv"
	"sync/atomic"
	"testing"

	"thematicep/internal/event"
)

// divisibilityMatcher is a deterministic content-dependent test matcher:
// event value j scores 1 against subscription value k when k divides j,
// and a sub-threshold 0.2 otherwise, so every subscriber matches a
// different subset of the event stream.
func divisibilityMatcher() Matcher {
	return MatchFunc(func(s *event.Subscription, e *event.Event) float64 {
		k, _ := strconv.Atoi(s.Predicates[0].Value)
		j, _ := strconv.Atoi(e.Tuples[0].Value)
		if k > 0 && j%k == 0 {
			return 1
		}
		return 0.2
	})
}

// publishAndCollect runs nEvents through a broker with the given match
// parallelism and nSubs divisibility subscribers, returning each
// subscriber's delivered event IDs (in delivery order) and the final stats.
func publishAndCollect(t *testing.T, parallelism, nSubs, nEvents int) (map[string][]string, Stats) {
	t.Helper()
	b := New(divisibilityMatcher(),
		WithThreshold(0.5), WithReplayBuffer(0), WithQueueSize(nEvents+1),
		WithMatchParallelism(parallelism))
	defer b.Close()
	subs := make([]*Subscriber, nSubs)
	for i := range subs {
		s, err := b.Subscribe(&event.Subscription{
			ID:         fmt.Sprintf("s%d", i+1),
			Predicates: []event.Predicate{{Attr: "n", Value: strconv.Itoa(i + 1)}},
		})
		if err != nil {
			t.Fatal(err)
		}
		subs[i] = s
	}
	for j := 1; j <= nEvents; j++ {
		e := &event.Event{
			ID:     fmt.Sprintf("e%d", j),
			Tuples: []event.Tuple{{Attr: "n", Value: strconv.Itoa(j)}},
		}
		if err := b.Publish(e); err != nil {
			t.Fatal(err)
		}
	}
	// Publish is synchronous: all deliveries are queued once it returns.
	got := make(map[string][]string, nSubs)
	for _, s := range subs {
		var ids []string
	drain:
		for {
			select {
			case d := <-s.C():
				ids = append(ids, d.Event.ID)
			default:
				break drain
			}
		}
		got[s.ID()] = ids
	}
	return got, b.Stats()
}

// TestPublishParallelMatchesSerial checks that the worker-pool dispatch is
// an invisible optimization: with 4 workers every subscriber receives
// exactly the deliveries (and the broker exactly the stats) of the serial
// broker. Per-subscriber delivery order is also preserved, because events
// are published one at a time and each subscriber has a FIFO queue.
func TestPublishParallelMatchesSerial(t *testing.T) {
	const nSubs, nEvents = 8, 60
	serial, serialStats := publishAndCollect(t, 1, nSubs, nEvents)
	par, parStats := publishAndCollect(t, 4, nSubs, nEvents)

	for id, want := range serial {
		got := par[id]
		if len(got) != len(want) {
			t.Fatalf("sub %s: parallel delivered %d events, serial %d", id, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("sub %s delivery %d: parallel %s, serial %s", id, i, got[i], want[i])
			}
		}
	}
	if parStats != serialStats {
		t.Errorf("stats: parallel %+v, serial %+v", parStats, serialStats)
	}
	// Sanity: the workload actually exercises distinct match sets.
	if len(serial["s1"]) != nEvents || len(serial["s2"]) != nEvents/2 {
		t.Errorf("unexpected serial match sets: s1=%d s2=%d", len(serial["s1"]), len(serial["s2"]))
	}
}

// TestPreparedAdapterPreparesOnce checks the prepare-once contract of the
// fast path: each subscription is prepared exactly once at Subscribe time,
// each event exactly once per Publish, and all scoring goes through
// ScorePrepared — the raw Score is never consulted.
func TestPreparedAdapterPreparesOnce(t *testing.T) {
	var subPrepares, evPrepares, preparedScores, rawScores atomic.Int64
	m := Prepared(
		func(s *event.Subscription, e *event.Event) float64 {
			rawScores.Add(1)
			return 1
		},
		func(s *event.Subscription) string {
			subPrepares.Add(1)
			return s.ID
		},
		func(e *event.Event) string {
			evPrepares.Add(1)
			return e.ID
		},
		func(ps, pe string) float64 {
			preparedScores.Add(1)
			return 1
		},
	)
	b := New(m, WithReplayBuffer(0), WithMatchParallelism(4))
	defer b.Close()

	const nSubs, nEvents = 3, 10
	for i := 0; i < nSubs; i++ {
		if _, err := b.Subscribe(parkingSub()); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < nEvents; i++ {
		if err := b.Publish(parkingEvent(fmt.Sprintf("p%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if n := subPrepares.Load(); n != nSubs {
		t.Errorf("subscription prepares = %d, want %d", n, nSubs)
	}
	if n := evPrepares.Load(); n != nEvents {
		t.Errorf("event prepares = %d, want %d", n, nEvents)
	}
	if n := preparedScores.Load(); n != nSubs*nEvents {
		t.Errorf("prepared scores = %d, want %d", n, nSubs*nEvents)
	}
	if n := rawScores.Load(); n != 0 {
		t.Errorf("raw Score called %d times on the prepared path", n)
	}
	if st := b.Stats(); st.Matched != nSubs*nEvents {
		t.Errorf("matched = %d, want %d", st.Matched, nSubs*nEvents)
	}
}

// TestPreparedReplayUsesPreparedPath checks that replay on Subscribe also
// scores through the prepared adapter.
func TestPreparedReplayUsesPreparedPath(t *testing.T) {
	var rawScores atomic.Int64
	m := Prepared(
		func(s *event.Subscription, e *event.Event) float64 { rawScores.Add(1); return 1 },
		func(s *event.Subscription) string { return s.ID },
		func(e *event.Event) string { return e.ID },
		func(ps, pe string) float64 { return 1 },
	)
	b := New(m)
	defer b.Close()
	for i := 0; i < 3; i++ {
		if err := b.Publish(parkingEvent(fmt.Sprintf("p%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	s, err := b.Subscribe(parkingSub(), WithReplay(true))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if d := recvDelivery(t, s.C()); !d.Replayed {
			t.Errorf("delivery %d not replayed", i)
		}
	}
	if n := rawScores.Load(); n != 0 {
		t.Errorf("raw Score called %d times during replay", n)
	}
}
