package broker

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"thematicep/internal/event"
	"thematicep/internal/telemetry"
)

// advancingMatcher advances a manual clock by d on every Score call, so
// pipeline stage durations are exact and bucket placement is deterministic.
func advancingMatcher(clk *telemetry.Manual, d time.Duration) Matcher {
	return MatchFunc(func(s *event.Subscription, e *event.Event) float64 {
		clk.Advance(d)
		if event.ExactMatch(s, e) {
			return 1
		}
		return 0
	})
}

func TestPublishLatencyExactBucketPlacement(t *testing.T) {
	clk := telemetry.NewManual(time.Unix(0, 0))
	// 2ms per score; serial dispatch so the advance count is exact.
	b := New(advancingMatcher(clk, 2*time.Millisecond),
		WithClock(clk), WithMatchParallelism(1))
	defer b.Close()

	if _, err := b.Subscribe(parkingSub()); err != nil {
		t.Fatal(err)
	}
	if err := b.Publish(parkingEvent("a1")); err != nil {
		t.Fatal(err)
	}

	// One scored subscription advanced the clock exactly 2ms; every other
	// stage took zero manual time. LatencyBuckets are powers of four from
	// 1µs: 2ms falls in the (1.024ms, 4.096ms] bucket, index 6.
	s := b.PublishLatency()
	if s.Count != 1 {
		t.Fatalf("publish histogram count = %d, want 1", s.Count)
	}
	if s.Counts[6] != 1 {
		t.Fatalf("2ms publish not in bucket 6 (1.024ms, 4.096ms]: counts %v", s.Counts)
	}
	if s.Sum != 0.002 {
		t.Errorf("sum = %v, want 0.002", s.Sum)
	}

	score := b.scoreHist.Snapshot()
	if score.Counts[6] != 1 {
		t.Errorf("score stage not in bucket 6: counts %v", score.Counts)
	}
	for _, h := range []*telemetry.Histogram{b.compileHist, b.enumerateHist} {
		if got := h.Snapshot(); got.Counts[0] != 1 {
			t.Errorf("%s: zero-duration stage not in first bucket: counts %v", h.Name(), got.Counts)
		}
	}
	if d := b.deliverHist.Snapshot(); d.Count != 1 {
		t.Errorf("deliver histogram count = %d, want 1", d.Count)
	}
	if c := b.candHist.Snapshot(); c.Count != 1 {
		t.Errorf("candidate histogram count = %d, want 1", c.Count)
	}
}

func TestTraceCoversEveryPipelineStage(t *testing.T) {
	// Real clock: stage durations come from real elapsed time, and the
	// matcher sleeps so every span is comfortably non-zero.
	slow := MatchFunc(func(s *event.Subscription, e *event.Event) float64 {
		time.Sleep(200 * time.Microsecond)
		if event.ExactMatch(s, e) {
			return 1
		}
		return 0
	})
	b := New(slow, WithTraceSampling(1))
	defer b.Close()
	if _, err := b.Subscribe(parkingSub()); err != nil {
		t.Fatal(err)
	}
	ev := parkingEvent("a1")
	ev.ID = "trace-ev-1"
	if err := b.Publish(ev); err != nil {
		t.Fatal(err)
	}

	traces := b.Tracer().Recent()
	if len(traces) != 1 {
		t.Fatalf("got %d traces, want 1", len(traces))
	}
	tr := traces[0]
	if tr.EventID != "trace-ev-1" {
		t.Errorf("event id = %q", tr.EventID)
	}
	stages := map[string]time.Duration{}
	for _, sp := range tr.Spans {
		stages[sp.Stage] = sp.Duration
	}
	for _, stage := range []string{"ingest", "compile", "enumerate", "score", "deliver"} {
		d, ok := stages[stage]
		if !ok {
			t.Errorf("trace missing stage %q (spans %v)", stage, tr.Spans)
			continue
		}
		if d <= 0 {
			t.Errorf("stage %q duration = %v, want > 0", stage, d)
		}
	}
	if tr.Total <= 0 {
		t.Errorf("total = %v, want > 0", tr.Total)
	}
}

func TestTraceSamplingOffByDefault(t *testing.T) {
	b := New(exactMatcher())
	defer b.Close()
	if b.Tracer() != nil {
		t.Fatal("tracing enabled without WithTraceSampling")
	}
	if _, err := b.Subscribe(parkingSub()); err != nil {
		t.Fatal(err)
	}
	if err := b.Publish(parkingEvent("a1")); err != nil {
		t.Fatal(err)
	}
	if got := b.Tracer().Recent(); got != nil {
		t.Errorf("untraced broker recorded traces: %v", got)
	}
}

func TestBatchTraceWithChildSpans(t *testing.T) {
	b := New(exactMatcher(), WithTraceSampling(1))
	defer b.Close()
	if _, err := b.Subscribe(parkingSub()); err != nil {
		t.Fatal(err)
	}
	evs := make([]*event.Event, 5)
	for i := range evs {
		evs[i] = parkingEvent(fmt.Sprintf("b%d", i))
		evs[i].ID = fmt.Sprintf("batch-ev-%d", i)
	}
	if err := b.PublishBatch(evs); err != nil {
		t.Fatal(err)
	}
	traces := b.Tracer().Recent()
	if len(traces) != 1 {
		t.Fatalf("batch produced %d traces, want 1 (the batch is one sampling unit)", len(traces))
	}
	tr := traces[0]
	if tr.EventID != evs[0].ID || len(tr.Events) != 5 {
		t.Fatalf("batch trace = id %q, %d members", tr.EventID, len(tr.Events))
	}
	stages := map[string]bool{}
	for _, sp := range tr.Spans {
		stages[sp.Stage] = true
	}
	for _, stage := range []string{"compile", "enumerate", "score", "deliver"} {
		if !stages[stage] {
			t.Errorf("batch trace missing stage %q (spans %v)", stage, tr.Spans)
		}
	}
	for _, e := range evs {
		if !stages["event:"+e.ID] {
			t.Errorf("batch trace missing child span for %s", e.ID)
		}
	}
	// Every member ID resolves to the batch trace for late forward spans.
	if !b.Tracer().AppendSpan(evs[3].ID, "forward:p1", time.Now(), time.Millisecond) {
		t.Error("batch member not attachable by event ID")
	}
}

func TestDeliverySLOObservesPublishes(t *testing.T) {
	clk := telemetry.NewManual(time.Unix(10000, 0))
	slo := telemetry.NewSLO("delivery", 0.99, 10*time.Millisecond,
		telemetry.WithSLOClock(clk), telemetry.WithSLOWindow(time.Hour))
	// 20ms per score: every publish misses the 10ms threshold.
	b := New(advancingMatcher(clk, 20*time.Millisecond),
		WithClock(clk), WithMatchParallelism(1), WithDeliverySLO(slo))
	defer b.Close()
	if _, err := b.Subscribe(parkingSub()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := b.Publish(parkingEvent(fmt.Sprintf("a%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if br := slo.BurnRate(slo.LongWindow()); br < 99 {
		t.Errorf("all-bad publish stream burn rate = %g, want ~100", br)
	}
	// Batches count every member against the objective.
	evs := make([]*event.Event, 7)
	for i := range evs {
		evs[i] = parkingEvent(fmt.Sprintf("b%d", i))
	}
	before, beforeBad := sloCounts(slo)
	if err := b.PublishBatch(evs); err != nil {
		t.Fatal(err)
	}
	after, afterBad := sloCounts(slo)
	if after-before != 7 {
		t.Errorf("batch observed %d events against the SLO, want 7 (bad %d -> %d)",
			after-before, beforeBad, afterBad)
	}
}

func sloCounts(s *telemetry.SLO) (total, bad uint64) {
	var sb strings.Builder
	s.WriteMetrics(telemetry.NewExpo(&sb))
	var good uint64
	for _, line := range strings.Split(sb.String(), "\n") {
		if strings.HasPrefix(line, "thematicep_slo_window_good") {
			fmt.Sscanf(line[strings.LastIndexByte(line, ' ')+1:], "%d", &good)
		}
		if strings.HasPrefix(line, "thematicep_slo_window_bad") {
			fmt.Sscanf(line[strings.LastIndexByte(line, ' ')+1:], "%d", &bad)
		}
	}
	return good + bad, bad
}

// TestStatsSnapshotInvariant hammers Publish from several goroutines while
// scraping Stats, asserting the documented snapshot guarantee: without
// replay, Delivered <= Matched <= Scanned in every snapshot.
func TestStatsSnapshotInvariant(t *testing.T) {
	b := New(exactMatcher(), WithReplayBuffer(0), WithQueueSize(4))
	defer b.Close()
	for i := 0; i < 8; i++ {
		s, err := b.Subscribe(parkingSub())
		if err != nil {
			t.Fatal(err)
		}
		go func() { // slow consumer, keeps queues churning
			for range s.C() {
				time.Sleep(time.Microsecond)
			}
		}()
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				b.Publish(parkingEvent(fmt.Sprintf("w%d-%d", w, i)))
			}
		}(w)
	}
	deadline := time.After(200 * time.Millisecond)
	for done := false; !done; {
		select {
		case <-deadline:
			done = true
		default:
			st := b.Stats()
			if st.Delivered > st.Matched {
				t.Fatalf("snapshot skew: Delivered %d > Matched %d", st.Delivered, st.Matched)
			}
			if st.Matched > st.Scanned {
				t.Fatalf("snapshot skew: Matched %d > Scanned %d", st.Matched, st.Scanned)
			}
		}
	}
	close(stop)
	wg.Wait()
}

func TestBrokerSelfLint(t *testing.T) {
	b := New(exactMatcher(), WithTraceSampling(1))
	defer b.Close()
	for i := 0; i < 3; i++ {
		if _, err := b.Subscribe(parkingSub()); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		if err := b.Publish(parkingEvent(fmt.Sprintf("a%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	var sb strings.Builder
	b.WriteMetrics(telemetry.NewExpo(&sb))
	out := sb.String()
	if err := telemetry.Lint(strings.NewReader(out)); err != nil {
		t.Fatalf("broker exposition fails lint: %v\n%s", err, out)
	}
	for _, family := range []string{
		"thematicep_broker_publish_seconds_bucket",
		"thematicep_broker_score_seconds_bucket",
		"thematicep_broker_enumerate_seconds_bucket",
		"thematicep_broker_deliver_seconds_bucket",
		"thematicep_broker_compile_seconds_bucket",
		"thematicep_subindex_candidates_per_event_bucket",
		`thematicep_broker_queue_depth{subscription="sub-1"}`,
	} {
		if !strings.Contains(out, family) {
			t.Errorf("exposition missing %q", family)
		}
	}
}

// BenchmarkBrokerPublishTelemetry isolates the telemetry overhead on the
// untraced publish path: one subscriber, always matching.
func BenchmarkBrokerPublishTelemetry(b *testing.B) {
	br := New(exactMatcher(), WithReplayBuffer(0), WithMatchParallelism(1))
	defer br.Close()
	s, err := br.Subscribe(parkingSub())
	if err != nil {
		b.Fatal(err)
	}
	go func() {
		for range s.C() {
		}
	}()
	ev := parkingEvent("a1")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		br.Publish(ev)
	}
}
