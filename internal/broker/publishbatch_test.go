package broker

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"thematicep/internal/event"
	"thematicep/internal/matcher"
	"thematicep/internal/workload"
)

func preparedStreamThematic(t testing.TB) PreparedMatcher {
	m := matcher.New(evalSpace(t))
	return PreparedStream(
		m.Score, m.PrepareSubscription, m.PrepareEvent, m.ScorePrepared, m.ScoreBatch,
		m.NewEventBatch, m.PrepareEventInBatch, m.NewBatchArena, m.ScoreBatchInArena,
		m.FinishEventBatch)
}

// runBrokerBatched mirrors runBrokerWith — same subscription churn at the
// same midpoint — but publishes through PublishBatch in batches of bs, so
// its delivery set must be bit-identical to the serial Publish loop.
func runBrokerBatched(t *testing.T, pm Matcher, subs []*event.Subscription, events []*event.Event, bs int, opts ...Option) (map[deliveryKey]bool, Stats) {
	t.Helper()
	base := []Option{
		WithQueueSize(len(events) + 1),
		WithReplayBuffer(0),
	}
	b := New(pm, append(base, opts...)...)

	handles := make([]*Subscriber, len(subs))
	for i, s := range subs {
		h, err := b.Subscribe(s)
		if err != nil {
			t.Fatalf("subscribe %q: %v", s.ID, err)
		}
		handles[i] = h
	}
	publishAll := func(evs []*event.Event) {
		for lo := 0; lo < len(evs); lo += bs {
			hi := min(lo+bs, len(evs))
			if err := b.PublishBatch(evs[lo:hi]); err != nil {
				t.Fatalf("publish batch [%d:%d]: %v", lo, hi, err)
			}
		}
	}
	mid := len(events) / 2
	publishAll(events[:mid])
	for j := 0; j < len(handles); j += 3 {
		handles[j].Close()
	}
	publishAll(events[mid:])
	st := b.Stats()
	b.Close()

	got := make(map[deliveryKey]bool)
	for _, h := range handles {
		for d := range h.C() {
			got[deliveryKey{d.SubscriptionID, d.Event.ID, d.Score}] = true
		}
	}
	return got, st
}

// TestPublishBatchEquivalence is the batched-pipeline acceptance
// criterion: PublishBatch must produce the exact delivery set — including
// bit-identical scores — of the serial Publish loop, across every matcher
// capability tier (stream context, plain batch scorer, prepared-only,
// plain Matcher), serial and parallel dispatch, pruned and full-scan.
func TestPublishBatchEquivalence(t *testing.T) {
	for _, seed := range []int64{3, 42} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			subs, events := mixedThemeWorkload(t, seed)
			serial, serialStats := runBrokerWith(t, preparedThematic(t), subs, events, WithMatchParallelism(1))

			stream, streamStats := runBrokerBatched(t, preparedStreamThematic(t), subs, events, 7, WithMatchParallelism(1))
			diffDeliveries(t, "stream serial-dispatch", serial, stream)

			streamPar, _ := runBrokerBatched(t, preparedStreamThematic(t), subs, events, 7, WithMatchParallelism(4))
			diffDeliveries(t, "stream parallel", serial, streamPar)

			streamFull, _ := runBrokerBatched(t, preparedStreamThematic(t), subs, events, 7, WithMatchParallelism(4), WithPruning(false))
			diffDeliveries(t, "stream full-scan", serial, streamFull)

			// Whole run as one batch per half: maximal cross-event sharing.
			streamBig, _ := runBrokerBatched(t, preparedStreamThematic(t), subs, events, len(events), WithMatchParallelism(4))
			diffDeliveries(t, "stream one-batch", serial, streamBig)

			// Capability fallbacks: batch scorer without stream contexts,
			// prepared-only, and the plain Matcher path.
			batchOnly, _ := runBrokerBatched(t, preparedBatchThematic(t), subs, events, 7, WithMatchParallelism(4))
			diffDeliveries(t, "batch fallback", serial, batchOnly)

			prepOnly, _ := runBrokerBatched(t, preparedThematic(t), subs, events, 7, WithMatchParallelism(4))
			diffDeliveries(t, "prepared fallback", serial, prepOnly)

			m := matcher.New(evalSpace(t))
			plainSerial, _ := runBrokerWith(t, Prepared(m.Score, m.PrepareSubscription, m.PrepareEvent, m.ScorePrepared), subs, events, WithMatchParallelism(1))
			_ = plainSerial
			plainBatch, _ := runBrokerBatched(t, MatchFunc(m.Score), subs, events, 7, WithMatchParallelism(4))
			plainLoop, _ := runBrokerWith(t, plainAdapter{m}, subs, events, WithMatchParallelism(1))
			diffDeliveries(t, "plain matcher", plainLoop, plainBatch)

			if streamStats.Matched != serialStats.Matched || streamStats.Scanned != serialStats.Scanned ||
				streamStats.Published != serialStats.Published || streamStats.Delivered != serialStats.Delivered {
				t.Errorf("stats differ: stream %+v, serial %+v", streamStats, serialStats)
			}
			if streamStats.Batches == 0 {
				t.Error("stream broker recorded no batches")
			}
			if streamStats.BatchRowsReused == 0 {
				t.Error("batch-scope memo reused no rows over a term-skewed workload")
			}
		})
	}
}

// plainAdapter exposes only the plain Matcher interface so the serial
// broker exercises the unprepared Score path for comparison with the
// batched plain path.
type plainAdapter struct{ m *matcher.Matcher }

func (p plainAdapter) Score(s *event.Subscription, e *event.Event) float64 { return p.m.Score(s, e) }

// TestPublishBatchValidation: admission is all-or-nothing, and the
// batched path enforces exactly Event.Validate's invariants (through the
// interner, not a per-event map).
func TestPublishBatchValidation(t *testing.T) {
	b := New(preparedStreamThematic(t), WithReplayBuffer(0))
	defer b.Close()
	good := &event.Event{ID: "ok", Tuples: []event.Tuple{{Attr: "type", Value: "car"}}}

	cases := []struct {
		name string
		evs  []*event.Event
		want error
	}{
		{"nil event", []*event.Event{good, nil}, ErrNilEvent},
		{"no tuples", []*event.Event{good, {ID: "empty"}}, event.ErrNoTuples},
		{"duplicate canonical attr", []*event.Event{good, {ID: "dup", Tuples: []event.Tuple{
			{Attr: "Room", Value: "a"}, {Attr: "room", Value: "b"}}}}, event.ErrDuplicateAttr},
		{"empty term", []*event.Event{good, {ID: "blank", Tuples: []event.Tuple{
			{Attr: "  ", Value: "x"}}}}, event.ErrEmptyTerm},
	}
	for _, tc := range cases {
		if err := b.PublishBatch(tc.evs); !errors.Is(err, tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, err, tc.want)
		}
	}
	if st := b.Stats(); st.Published != 0 || st.Batches != 0 {
		t.Errorf("rejected batches were partially admitted: %+v", st)
	}
	if err := b.PublishBatch(nil); err != nil {
		t.Errorf("empty batch: %v", err)
	}
	if err := b.PublishBatch([]*event.Event{good}); err != nil {
		t.Errorf("valid batch: %v", err)
	}
	if st := b.Stats(); st.Published != 1 || st.Batches != 1 {
		t.Errorf("valid batch not counted: %+v", st)
	}
}

// TestPublishBatchChurn races PublishBatch against concurrent Subscribe,
// Unsubscribe, and a final Drain — the batched path must stay data-race
// free and the counters consistent when the subscription set shifts under
// a running batch. (Delivery sets are necessarily nondeterministic here;
// determinism is covered by the quiescent equivalence tests.)
func TestPublishBatchChurn(t *testing.T) {
	subs, events := mixedThemeWorkload(t, 7)
	b := New(preparedStreamThematic(t), WithReplayBuffer(0), WithMatchParallelism(4), WithQueueSize(8))

	var consumers sync.WaitGroup
	for _, s := range subs[:len(subs)/2] {
		h, err := b.Subscribe(s)
		if err != nil {
			t.Fatalf("subscribe: %v", err)
		}
		consumers.Add(1)
		go func() { // keep queues draining so Drain can quiesce
			defer consumers.Done()
			for range h.C() {
			}
		}()
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // churner: subscribe / consume a little / unsubscribe
		defer wg.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := *subs[len(subs)/2+i%(len(subs)/2)]
			s.ID = fmt.Sprintf("churn-%d", i)
			h, err := b.Subscribe(&s)
			if err != nil {
				continue
			}
			select {
			case <-h.C():
			default:
			}
			h.Close()
			i++
		}
	}()
	go func() { // publisher: batched publishes until stopped
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := b.PublishBatch(events[:min(16, len(events))]); err != nil &&
				!errors.Is(err, ErrDraining) && !errors.Is(err, ErrClosed) {
				t.Errorf("publish batch: %v", err)
				return
			}
		}
	}()
	time.Sleep(100 * time.Millisecond)
	close(stop)
	wg.Wait()

	// Mid-batch Drain: start a batch, drain concurrently; the admitted
	// batch must complete (Drain waits on inflight) and later batches must
	// bounce.
	done := make(chan error, 1)
	go func() { done <- b.PublishBatch(events) }()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := b.Drain(ctx); err != nil {
		t.Errorf("drain: %v", err)
	}
	if err := <-done; err != nil && !errors.Is(err, ErrDraining) && !errors.Is(err, ErrClosed) {
		t.Errorf("in-flight batch: %v", err)
	}
	if err := b.PublishBatch(events[:1]); !errors.Is(err, ErrDraining) && !errors.Is(err, ErrClosed) {
		t.Errorf("post-drain batch admitted: %v", err)
	}
	st := b.Stats()
	if st.Delivered > st.Matched {
		t.Errorf("delivered %d exceeds matched %d", st.Delivered, st.Matched)
	}
	b.Close()
	consumers.Wait()
}

// TestPublishBatchZeroAlloc gates the warm batched publish path at zero
// allocations per batch: interners, arenas, candidate buffers, hit lists,
// and grouping chains are all pooled, so a steady stream of batches over a
// stable vocabulary allocates nothing at any batch size.
func TestPublishBatchZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race mode: sync.Pool drops Puts at random, warm path is not alloc-free")
	}
	w := workload.GenerateScale(workload.ScaleConfig{
		Seed: 7, Subscriptions: 300, Events: 32, Attrs: 32, ValuesPerAttr: 16,
		MaxPredicates: 3, EventTuples: 6, Themes: 4, ExactFraction: 0.8, Zipf: 1.2,
	})
	b := New(preparedStreamThematic(t),
		WithReplayBuffer(0), WithMatchParallelism(1), WithQueueSize(16))
	defer b.Close()
	for _, s := range w.Subs {
		if _, err := b.Subscribe(s); err != nil {
			t.Fatalf("subscribe: %v", err)
		}
	}
	for i := 0; i < 3; i++ { // warm interners, memos, pools, map buckets
		if err := b.PublishBatch(w.Events); err != nil {
			t.Fatalf("warmup publish: %v", err)
		}
	}
	if allocs := testing.AllocsPerRun(20, func() {
		if err := b.PublishBatch(w.Events); err != nil {
			t.Fatalf("publish: %v", err)
		}
	}); allocs != 0 {
		t.Errorf("warm PublishBatch: %v allocs/op, want 0", allocs)
	}
	if st := b.Stats(); st.Matched == 0 {
		t.Fatal("workload produced no matches; the gate is vacuous")
	}
}

// BenchmarkBrokerPublishBatch measures end-to-end batched publishing
// against the serial Publish loop over the same scale-tier population.
func BenchmarkBrokerPublishBatch(b *testing.B) {
	w := workload.GenerateScale(workload.ScaleConfig{
		Seed: 7, Subscriptions: 2000, Events: 64, Attrs: 64, ValuesPerAttr: 32,
		MaxPredicates: 4, EventTuples: 8, Themes: 6, ExactFraction: 0.8,
		ApproxOnlyFraction: 0.01, Zipf: 1.2,
	})
	newBroker := func() *Broker {
		br := New(preparedStreamThematic(b), WithReplayBuffer(0), WithQueueSize(1))
		for _, s := range w.Subs {
			if _, err := br.Subscribe(s); err != nil {
				b.Fatalf("subscribe: %v", err)
			}
		}
		return br
	}
	b.Run("serial", func(b *testing.B) {
		br := newBroker()
		defer br.Close()
		for _, e := range w.Events {
			_ = br.Publish(e)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, e := range w.Events {
				_ = br.Publish(e)
			}
		}
		b.ReportMetric(float64(b.N*len(w.Events))/b.Elapsed().Seconds(), "ev/s")
	})
	b.Run("batched", func(b *testing.B) {
		br := newBroker()
		defer br.Close()
		_ = br.PublishBatch(w.Events)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = br.PublishBatch(w.Events)
		}
		b.ReportMetric(float64(b.N*len(w.Events))/b.Elapsed().Seconds(), "ev/s")
	})
}
