package broker

import (
	"strings"
	"sync"
	"testing"
	"time"

	"thematicep/internal/event"
)

// startBatchServer is startServer with the broker exposed, so tests can
// assert on its batch counters.
func startBatchServer(t *testing.T) (*Server, *Broker, string) {
	t.Helper()
	b := New(exactMatcher())
	srv := NewServer(b)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		b.Close()
	})
	return srv, b, addr.String()
}

// TestClientPublishBatchOverTCP: one publishb frame, every event delivered,
// acknowledged as a single batch on the broker.
func TestClientPublishBatchOverTCP(t *testing.T) {
	_, b, addr := startBatchServer(t)

	consumer, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer consumer.Close()
	producer, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer producer.Close()

	_, deliveries, err := consumer.Subscribe(parkingSub(), false)
	if err != nil {
		t.Fatal(err)
	}

	batch := []*event.Event{parkingEvent("p1"), parkingEvent("p2"), parkingEvent("p3")}
	if err := producer.PublishBatch(batch); err != nil {
		t.Fatal(err)
	}
	got := make(map[string]bool)
	for len(got) < len(batch) {
		select {
		case d := <-deliveries:
			got[d.Event.Tuples[1].Value] = true
		case <-time.After(5 * time.Second):
			t.Fatalf("timed out with %d/%d deliveries", len(got), len(batch))
		}
	}
	st := b.Stats()
	if st.Published != 3 || st.Batches != 1 {
		t.Errorf("published/batches = %d/%d, want 3/1", st.Published, st.Batches)
	}
	if err := producer.PublishBatch(nil); err != nil {
		t.Errorf("empty batch: %v", err)
	}
	// All-or-nothing over the wire: one invalid event rejects the frame.
	err = producer.PublishBatch([]*event.Event{parkingEvent("ok"), {}})
	if err == nil || !strings.Contains(err.Error(), "server error") {
		t.Errorf("invalid batch: %v", err)
	}
	if st := b.Stats(); st.Published != 3 {
		t.Errorf("rejected batch partially admitted: published %d", st.Published)
	}
}

// TestClientAutoBatching: a client dialed WithMaxBatch coalesces concurrent
// Publish calls into publishb frames — fewer batches than events — while
// every publisher still gets an acknowledgement.
func TestClientAutoBatching(t *testing.T) {
	_, b, addr := startBatchServer(t)

	c, err := Dial(addr, WithMaxBatch(8), WithLinger(20*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const n = 64
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = c.Publish(parkingEvent("auto"))
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("publish %d: %v", i, err)
		}
	}
	st := b.Stats()
	if st.Published != n {
		t.Errorf("published = %d, want %d", st.Published, n)
	}
	if st.Batches == 0 || st.Batches >= n {
		t.Errorf("batches = %d over %d publishes; auto-batching did not coalesce", st.Batches, n)
	}

	// The linger path: a single publish must not wait for a full batch.
	start := time.Now()
	if err := c.Publish(parkingEvent("lone")); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Errorf("lone publish took %v; linger flush did not fire", d)
	}
}

// TestServerMaxBatchCap: frames above the server's batch cap are rejected
// whole without touching the broker.
func TestServerMaxBatchCap(t *testing.T) {
	srv, b, addr := startBatchServer(t)
	srv.SetMaxBatch(2)

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	err = c.PublishBatch([]*event.Event{parkingEvent("a"), parkingEvent("b"), parkingEvent("c")})
	if err == nil || !strings.Contains(err.Error(), "exceeds server cap") {
		t.Errorf("oversized batch: %v", err)
	}
	if st := b.Stats(); st.Published != 0 {
		t.Errorf("capped batch reached the broker: published %d", st.Published)
	}
	if err := c.PublishBatch([]*event.Event{parkingEvent("a"), parkingEvent("b")}); err != nil {
		t.Errorf("batch at cap: %v", err)
	}
}
