package broker

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"thematicep/internal/event"
	"thematicep/internal/telemetry"
)

// The wire protocol is length-prefixed JSON: a 4-byte big-endian frame
// length followed by one JSON-encoded Frame. It is intentionally simple —
// the paper's contribution is the matching model, not the transport — but
// complete: publish/subscribe/unsubscribe requests, acknowledgements, and
// asynchronous delivery frames share one connection.

// Frame types.
const (
	FramePublish     = "publish"
	FrameSubscribe   = "subscribe"
	FrameUnsubscribe = "unsubscribe"
	FrameDelivery    = "delivery"
	FrameOK          = "ok"
	FrameError       = "error"

	// FramePublishBatch carries many events in one frame (in Events) and is
	// acknowledged by a single ok frame whose Count echoes how many events
	// were admitted — admission is all-or-nothing, so an error frame means
	// none were.
	FramePublishBatch = "publishb"

	// Federation frames (internal/cluster). A peer broker opens a
	// connection with a hello identifying its node; forward carries an
	// event from the publishing broker to the shard owners of its theme
	// set; redirect tells a client which broker owns its subscription's
	// themes.
	FrameHello    = "hello"
	FrameForward  = "forward"
	FrameRedirect = "redirect"

	// FrameForwardBatch is the federation analogue of publishb: one frame
	// carrying a whole re-batched forward (in Events) from the publishing
	// broker to one shard owner.
	FrameForwardBatch = "forwardb"

	// Liveness frames for federation links: each side pings on an
	// interval and answers pings with pongs, so a silent (stalled or
	// partitioned) link is distinguishable from an idle one and can be
	// dropped by the read deadline.
	FramePing = "ping"
	FramePong = "pong"

	// Continuous-query frames (internal/query). A query frame registers a
	// named CEP pattern fed by a thematic subscription; detect frames
	// stream its detections back asynchronously, like delivery frames for
	// a subscription. A clustered broker answers query with redirect when
	// another node owns the feeding subscription's theme shard.
	FrameQuery  = "query"
	FrameDetect = "detect"
)

// MaxFrameSize bounds a frame's encoded size; larger frames are rejected to
// protect both sides from corrupt length prefixes.
const MaxFrameSize = 1 << 20

// Frame is one protocol message.
type Frame struct {
	Type           string              `json:"type"`
	Event          *event.Event        `json:"event,omitempty"`
	Subscription   *event.Subscription `json:"subscription,omitempty"`
	SubscriptionID string              `json:"subscriptionId,omitempty"`
	Score          float64             `json:"score,omitempty"`
	Replay         bool                `json:"replay,omitempty"`
	Error          string              `json:"error,omitempty"`
	// NodeID identifies the sending broker on federation frames (hello,
	// forward).
	NodeID string `json:"nodeId,omitempty"`
	// Addr is the target broker address on redirect frames.
	Addr string `json:"addr,omitempty"`
	// At is the broker's admission timestamp on delivery frames, letting
	// downstream consumers (the query engine, latency probes) measure
	// event-to-detection latency.
	At time.Time `json:"at,omitempty"`
	// Query is the continuous-query definition on query frames.
	Query *QuerySpec `json:"query,omitempty"`
	// QueryName names the continuous query on detect frames, on query
	// acknowledgements, and on unsubscribe frames that cancel a query.
	QueryName string `json:"queryName,omitempty"`
	// Events are a detection's constituent events on detect frames, and the
	// batch payload on publishb frames.
	Events []*event.Event `json:"events,omitempty"`
	// Count echoes the admitted batch size on publishb acknowledgements.
	Count int `json:"count,omitempty"`
	// Probability is the detection's combined probability on detect frames.
	Probability float64 `json:"probability,omitempty"`
	// Trace is the propagated trace context on forward/forwardb (and
	// client publishb) frames: present only when the carried event is
	// trace-sampled at the sender, so the receiving broker continues the
	// same cross-peer trace instead of making an independent sampling
	// decision. On batch frames it applies to the whole batch, keyed by
	// the first event.
	Trace *telemetry.TraceContext `json:"trace,omitempty"`
	// MetricsAddr advertises the sending node's metrics listen address on
	// hello frames, so peers can serve a cluster-wide scrape map
	// (/debug/peers) without extra configuration.
	MetricsAddr string `json:"metricsAddr,omitempty"`
	// Members piggybacks the sender's full membership view on hello, ping,
	// and pong frames: the SWIM-style gossip exchange that keeps every
	// federation member's ring converging on the same live member set
	// without a separate gossip transport.
	Members []MemberInfo `json:"members,omitempty"`
}

// MemberInfo is one row of the gossiped membership view. State uses the
// cluster package's encoding: 0 alive, 1 suspect, 2 dead. Incarnation is
// the member's self-asserted epoch — a member refutes a suspect/dead rumor
// about itself by re-announcing alive under a higher incarnation, and
// receivers resolve conflicting rumors by (incarnation, state) precedence.
type MemberInfo struct {
	Node        string `json:"node"`
	Metrics     string `json:"metrics,omitempty"`
	Incarnation uint64 `json:"inc"`
	State       uint8  `json:"state,omitempty"`
}

// QuerySpec defines one continuous query: a named CEP pattern over the
// stream selected by a thematic subscription. The subscription routes and
// scores events exactly like a regular subscription — its match score
// becomes the constituent probability — while Kind, Window, and the
// step filters shape the composite pattern evaluated on the owning shard.
type QuerySpec struct {
	// Name identifies the query; detections carry it back.
	Name string `json:"name"`
	// Kind selects the pattern: "sequence", "conjunction", "negation", or
	// "count".
	Kind string `json:"kind"`
	// Subscription selects and scores the feeding event stream (themes +
	// predicates). In cluster mode its first theme tag decides the owning
	// shard.
	Subscription *event.Subscription `json:"subscription"`
	// Window is the pattern's sliding time window.
	Window time.Duration `json:"windowNs"`
	// Threshold suppresses detections whose combined probability falls
	// below it.
	Threshold float64 `json:"threshold,omitempty"`
	// MinExpected is the expected-count firing threshold for count queries.
	MinExpected float64 `json:"minExpected,omitempty"`
	// Steps are the pattern's constituent filters: ordered steps for
	// sequence, unordered for conjunction, [trigger, absent] for negation,
	// and an optional single filter for count (matching everything when
	// empty).
	Steps []QueryStep `json:"steps,omitempty"`
}

// QueryStep is one constituent filter of a continuous query, matching
// events whose attribute equals a value (canonical comparison), or merely
// carries the attribute when Value is empty.
type QueryStep struct {
	Attr  string `json:"attr"`
	Value string `json:"value,omitempty"`
}

// QueryDetection is one completed pattern instance streamed back to the
// client that registered the query.
type QueryDetection struct {
	// Query is the registered query's name.
	Query string
	// Probability is the combined probability of the detection.
	Probability float64
	// Events are the constituent events in pattern order.
	Events []*event.Event
	// At is when the engine emitted the detection.
	At time.Time
}

// WriteFrame encodes and writes one frame.
func WriteFrame(w io.Writer, f *Frame) error {
	payload, err := json.Marshal(f)
	if err != nil {
		return fmt.Errorf("wire: encode: %w", err)
	}
	if len(payload) > MaxFrameSize {
		return fmt.Errorf("wire: frame too large: %d bytes", len(payload))
	}
	// Header and payload go out in one Write so concurrent writers sharing
	// a conn cannot interleave partial frames, and the hot delivery path
	// costs one syscall instead of two.
	buf := make([]byte, 4+len(payload))
	binary.BigEndian.PutUint32(buf[:4], uint32(len(payload)))
	copy(buf[4:], payload)
	if _, err := w.Write(buf); err != nil {
		return fmt.Errorf("wire: write frame: %w", err)
	}
	return nil
}

// ReadFrame reads and decodes one frame.
func ReadFrame(r io.Reader) (*Frame, error) {
	var header [4]byte
	if _, err := io.ReadFull(r, header[:]); err != nil {
		return nil, err // io.EOF passes through for clean shutdown detection
	}
	n := binary.BigEndian.Uint32(header[:])
	if n > MaxFrameSize {
		return nil, fmt.Errorf("wire: frame too large: %d bytes", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("wire: read payload: %w", err)
	}
	var f Frame
	if err := json.Unmarshal(payload, &f); err != nil {
		return nil, fmt.Errorf("wire: decode: %w", err)
	}
	return &f, nil
}
