package broker

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"thematicep/internal/event"
)

// exactMatcher is a deterministic test matcher: score 1 on exact match.
func exactMatcher() Matcher {
	return MatchFunc(func(s *event.Subscription, e *event.Event) float64 {
		if event.ExactMatch(s, e) {
			return 1
		}
		return 0
	})
}

func parkingEvent(spot string) *event.Event {
	return &event.Event{
		Theme: []string{"land transport"},
		Tuples: []event.Tuple{
			{Attr: "type", Value: "parking event"},
			{Attr: "spot", Value: spot},
		},
	}
}

func parkingSub() *event.Subscription {
	return &event.Subscription{
		Predicates: []event.Predicate{{Attr: "type", Value: "parking event"}},
	}
}

func recvDelivery(t *testing.T, ch <-chan Delivery) Delivery {
	t.Helper()
	select {
	case d, ok := <-ch:
		if !ok {
			t.Fatal("delivery channel closed")
		}
		return d
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for delivery")
		return Delivery{}
	}
}

func TestPublishDeliversToMatchingSubscriber(t *testing.T) {
	b := New(exactMatcher())
	defer b.Close()

	sub, err := b.Subscribe(parkingSub())
	if err != nil {
		t.Fatal(err)
	}
	other, err := b.Subscribe(&event.Subscription{
		Predicates: []event.Predicate{{Attr: "type", Value: "energy event"}},
	})
	if err != nil {
		t.Fatal(err)
	}

	if err := b.Publish(parkingEvent("p1")); err != nil {
		t.Fatal(err)
	}
	d := recvDelivery(t, sub.C())
	if d.Score != 1 || d.Event.Tuples[1].Value != "p1" {
		t.Errorf("delivery = %+v", d)
	}
	select {
	case d := <-other.C():
		t.Errorf("non-matching subscriber got %+v", d)
	default:
	}

	stats := b.Stats()
	if stats.Published != 1 || stats.Matched != 1 || stats.Delivered != 1 {
		t.Errorf("stats = %+v", stats)
	}
}

func TestSubscribeValidation(t *testing.T) {
	b := New(exactMatcher())
	defer b.Close()
	if _, err := b.Subscribe(&event.Subscription{}); err == nil {
		t.Error("empty subscription accepted")
	}
}

func TestDuplicateSubscriptionID(t *testing.T) {
	b := New(exactMatcher())
	defer b.Close()
	s := parkingSub()
	s.ID = "dup"
	if _, err := b.Subscribe(s); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Subscribe(s); !errors.Is(err, ErrDuplicateSub) {
		t.Errorf("err = %v, want ErrDuplicateSub", err)
	}
}

func TestPublishValidation(t *testing.T) {
	b := New(exactMatcher())
	defer b.Close()
	if err := b.Publish(nil); !errors.Is(err, ErrNilEvent) {
		t.Errorf("nil event: %v", err)
	}
	if err := b.Publish(&event.Event{}); err == nil {
		t.Error("invalid event accepted")
	}
}

func TestTimeDecouplingReplay(t *testing.T) {
	b := New(exactMatcher())
	defer b.Close()

	// Publish before anyone subscribes.
	for i := 0; i < 3; i++ {
		if err := b.Publish(parkingEvent(fmt.Sprintf("p%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	sub, err := b.Subscribe(parkingSub(), WithReplay(true))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		d := recvDelivery(t, sub.C())
		if !d.Replayed {
			t.Errorf("delivery %d not marked replayed", i)
		}
		if want := fmt.Sprintf("p%d", i); d.Event.Tuples[1].Value != want {
			t.Errorf("replay order: got %q, want %q", d.Event.Tuples[1].Value, want)
		}
	}
	// Live events follow.
	if err := b.Publish(parkingEvent("live")); err != nil {
		t.Fatal(err)
	}
	if d := recvDelivery(t, sub.C()); d.Replayed || d.Event.Tuples[1].Value != "live" {
		t.Errorf("live delivery = %+v", d)
	}
}

func TestReplayBufferBounded(t *testing.T) {
	b := New(exactMatcher(), WithReplayBuffer(2))
	defer b.Close()
	for i := 0; i < 5; i++ {
		if err := b.Publish(parkingEvent(fmt.Sprintf("p%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	sub, err := b.Subscribe(parkingSub(), WithReplay(true))
	if err != nil {
		t.Fatal(err)
	}
	// Only the last 2 events are retained.
	if d := recvDelivery(t, sub.C()); d.Event.Tuples[1].Value != "p3" {
		t.Errorf("first replay = %q, want p3", d.Event.Tuples[1].Value)
	}
	if d := recvDelivery(t, sub.C()); d.Event.Tuples[1].Value != "p4" {
		t.Errorf("second replay = %q, want p4", d.Event.Tuples[1].Value)
	}
}

func TestSynchronizationDecouplingDropOldest(t *testing.T) {
	b := New(exactMatcher(), WithQueueSize(2), WithReplayBuffer(0))
	defer b.Close()
	sub, err := b.Subscribe(parkingSub())
	if err != nil {
		t.Fatal(err)
	}
	// Publish more than the queue holds without consuming: Publish must not
	// block, and the oldest deliveries are dropped.
	for i := 0; i < 5; i++ {
		if err := b.Publish(parkingEvent(fmt.Sprintf("p%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if got := b.Stats().Dropped; got != 3 {
		t.Errorf("dropped = %d, want 3", got)
	}
	if d := recvDelivery(t, sub.C()); d.Event.Tuples[1].Value != "p3" {
		t.Errorf("first queued = %q, want p3 (oldest dropped)", d.Event.Tuples[1].Value)
	}
}

func TestUnsubscribeClosesChannel(t *testing.T) {
	b := New(exactMatcher())
	defer b.Close()
	sub, err := b.Subscribe(parkingSub())
	if err != nil {
		t.Fatal(err)
	}
	sub.Close()
	if _, ok := <-sub.C(); ok {
		t.Error("channel not closed after unsubscribe")
	}
	// Publishing after unsubscribe must not panic or deliver.
	if err := b.Publish(parkingEvent("p1")); err != nil {
		t.Fatal(err)
	}
	if got := b.Stats().Subscribers; got != 0 {
		t.Errorf("subscribers = %d", got)
	}
}

func TestBrokerClose(t *testing.T) {
	b := New(exactMatcher())
	sub, err := b.Subscribe(parkingSub())
	if err != nil {
		t.Fatal(err)
	}
	b.Close()
	if _, ok := <-sub.C(); ok {
		t.Error("channel not closed after broker close")
	}
	if err := b.Publish(parkingEvent("p1")); !errors.Is(err, ErrClosed) {
		t.Errorf("publish after close: %v", err)
	}
	if _, err := b.Subscribe(parkingSub()); !errors.Is(err, ErrClosed) {
		t.Errorf("subscribe after close: %v", err)
	}
	b.Close() // idempotent
}

func TestThresholdFiltersWeakMatches(t *testing.T) {
	weak := MatchFunc(func(s *event.Subscription, e *event.Event) float64 { return 0.04 })
	b := New(weak, WithThreshold(0.05))
	defer b.Close()
	sub, err := b.Subscribe(parkingSub())
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Publish(parkingEvent("p1")); err != nil {
		t.Fatal(err)
	}
	select {
	case d := <-sub.C():
		t.Errorf("weak match delivered: %+v", d)
	default:
	}
}

func TestConcurrentPublishSubscribe(t *testing.T) {
	b := New(exactMatcher())
	defer b.Close()

	var wg sync.WaitGroup
	const publishers, events = 4, 50
	subs := make([]*Subscriber, 3)
	for i := range subs {
		s, err := b.Subscribe(parkingSub(), WithReplay(false))
		if err != nil {
			t.Fatal(err)
		}
		subs[i] = s
	}
	received := make([]int, len(subs))
	for i, s := range subs {
		wg.Add(1)
		go func(i int, s *Subscriber) {
			defer wg.Done()
			for range s.C() {
				received[i]++
			}
		}(i, s)
	}
	var pubWG sync.WaitGroup
	for p := 0; p < publishers; p++ {
		pubWG.Add(1)
		go func(p int) {
			defer pubWG.Done()
			for i := 0; i < events; i++ {
				if err := b.Publish(parkingEvent(fmt.Sprintf("p%d-%d", p, i))); err != nil {
					t.Error(err)
					return
				}
			}
		}(p)
	}
	pubWG.Wait()
	// Give queues a moment to drain, then close to end the range loops.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		st := b.Stats()
		if st.Delivered+st.Dropped >= uint64(publishers*events*len(subs)) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	b.Close()
	wg.Wait()

	st := b.Stats()
	if st.Published != publishers*events {
		t.Errorf("published = %d, want %d", st.Published, publishers*events)
	}
	total := 0
	for _, n := range received {
		total += n
	}
	// Delivered counts enqueued deliveries; Dropped counts the subset later
	// evicted by the drop-oldest policy, so consumers see the difference.
	if uint64(total) != st.Delivered-st.Dropped || total == 0 {
		t.Errorf("received %d, stats %+v", total, st)
	}
}
