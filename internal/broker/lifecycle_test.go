package broker

import (
	"bytes"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

// TestServerCloseWithInFlightClients closes the server while several
// connected clients hold live subscriptions and a publisher is mid-stream:
// Close must return (no goroutine leak or deadlock), every client's
// delivery channels must close, and the broker itself must stay usable
// because the caller owns it.
func TestServerCloseWithInFlightClients(t *testing.T) {
	b := New(exactMatcher())
	defer b.Close()
	srv := NewServer(b)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	const clients = 4
	chans := make([]<-chan Delivery, clients)
	conns := make([]*Client, clients)
	for i := 0; i < clients; i++ {
		c, err := Dial(addr.String())
		if err != nil {
			t.Fatal(err)
		}
		conns[i] = c
		if _, chans[i], err = c.Subscribe(parkingSub(), false); err != nil {
			t.Fatal(err)
		}
	}

	// Keep publishes in flight while the server shuts down; errors are
	// expected once the conn drops, panics and hangs are not.
	producer, err := Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 1000; i++ {
			if producer.Publish(parkingEvent("p")) != nil {
				return
			}
		}
	}()

	closed := make(chan struct{})
	go func() {
		srv.Close()
		close(closed)
	}()
	select {
	case <-closed:
	case <-time.After(10 * time.Second):
		t.Fatal("Server.Close did not return with in-flight connections")
	}
	wg.Wait()
	producer.Close()

	for i, ch := range chans {
		deadline := time.After(5 * time.Second)
		for open := true; open; {
			select {
			case _, open = <-ch:
			case <-deadline:
				t.Fatalf("client %d delivery channel still open after server close", i)
			}
		}
		conns[i].Close()
	}

	// The broker survives its server.
	if b.Stats().Subscribers != 0 {
		t.Errorf("subscribers = %d after server close, want 0", b.Stats().Subscribers)
	}
	sub, err := b.Subscribe(parkingSub())
	if err != nil {
		t.Fatalf("broker unusable after server close: %v", err)
	}
	sub.Close()
}

// TestHandshakeDeadlineDropsSilentConn: a connection that never sends its
// first frame is dropped at the handshake timeout instead of holding a
// serving goroutine forever — while a connection that has identified
// itself may idle indefinitely (subscribers legitimately wait).
func TestHandshakeDeadlineDropsSilentConn(t *testing.T) {
	b := New(exactMatcher())
	defer b.Close()
	srv := NewServer(b)
	srv.SetHandshakeTimeout(100 * time.Millisecond)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Silent connection: closed by the server within the timeout.
	silent, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer silent.Close()
	silent.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := silent.Read(make([]byte, 1)); err == nil {
		t.Fatal("server wrote to a silent connection instead of closing it")
	} else if nerr, ok := err.(net.Error); ok && nerr.Timeout() {
		t.Fatal("silent connection still open 5s past a 100ms handshake timeout")
	}

	// A connection that handshakes promptly may then idle past the
	// timeout: the deadline must be cleared after the first frame.
	c, err := Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, deliveries, err := c.Subscribe(parkingSub(), false)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond) // 3x the handshake timeout
	producer, err := Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer producer.Close()
	if err := producer.Publish(parkingEvent("idle-ok")); err != nil {
		t.Fatal(err)
	}
	select {
	case d := <-deliveries:
		if v, _ := d.Event.Value("spot"); v != "idle-ok" {
			t.Errorf("delivery = %+v, want spot=idle-ok", d)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("idle subscriber connection was dropped by the handshake deadline")
	}
}

// TestClientRequestTimeout: a DialTimeout client against a daemon that
// accepts but never answers fails the request within the timeout with
// ErrRequestTimeout rather than hanging.
func TestClientRequestTimeout(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			defer conn.Close() // wedged daemon: reads nothing, answers nothing
		}
	}()

	c, err := DialTimeout(ln.Addr().String(), 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	err = c.Publish(parkingEvent("p"))
	if err == nil {
		t.Fatal("publish against a wedged daemon succeeded")
	}
	if !errors.Is(err, ErrRequestTimeout) && !errors.Is(err, ErrClientClosed) {
		t.Errorf("err = %v, want ErrRequestTimeout", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("publish took %v against a 100ms timeout", elapsed)
	}
}

// TestServerSurvivesNilSubscription: a subscribe frame with a null
// subscription payload must produce an error frame, not a panic that kills
// the serving goroutine.
func TestServerSurvivesNilSubscription(t *testing.T) {
	_, addr := startServer(t)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := WriteFrame(conn, &Frame{Type: FrameSubscribe}); err != nil {
		t.Fatal(err)
	}
	f, err := ReadFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != FrameError {
		t.Errorf("frame = %+v, want error frame", f)
	}
}

// TestReadFrameEOFSemantics pins the shutdown-detection contract: a peer
// vanishing between frames is a clean io.EOF, vanishing mid-frame is an
// unexpected-EOF error, never a zero frame.
func TestReadFrameEOFSemantics(t *testing.T) {
	// Clean close between frames.
	if _, err := ReadFrame(bytes.NewReader(nil)); err != io.EOF {
		t.Errorf("empty stream: err = %v, want io.EOF", err)
	}
	// Vanished inside the header.
	if _, err := ReadFrame(bytes.NewReader([]byte{0, 0})); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("truncated header: err = %v, want unexpected EOF", err)
	}
	// Vanished inside the payload.
	if _, err := ReadFrame(bytes.NewReader([]byte{0, 0, 0, 10, '{'})); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("truncated payload: err = %v, want unexpected EOF", err)
	}
}

// TestClientPeerVanishesMidFrame kills the server side after writing half
// a frame: the client must observe the dead connection, close its pending
// requests and delivery channels, and fail subsequent operations with
// ErrClientClosed rather than hanging.
func TestClientPeerVanishesMidFrame(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	served := make(chan struct{})
	go func() {
		defer close(served)
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		// Answer the subscribe so the client registers a delivery channel.
		f, err := ReadFrame(conn)
		if err != nil || f.Type != FrameSubscribe {
			conn.Close()
			return
		}
		WriteFrame(conn, &Frame{Type: FrameOK, SubscriptionID: "s1"})
		// Start a delivery frame but vanish mid-payload.
		conn.Write([]byte{0, 0, 1, 0, '{', '"'})
		conn.Close()
	}()

	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, deliveries, err := c.Subscribe(parkingSub(), false)
	if err != nil {
		t.Fatal(err)
	}
	<-served

	select {
	case _, open := <-deliveries:
		if open {
			t.Error("received a delivery from a truncated frame")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("delivery channel not closed after peer vanished mid-frame")
	}
	if err := c.Publish(parkingEvent("p1")); !errors.Is(err, ErrClientClosed) {
		t.Errorf("publish after mid-frame disconnect: err = %v, want ErrClientClosed", err)
	}
}
