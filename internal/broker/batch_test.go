package broker

import (
	"fmt"
	"testing"

	"thematicep/internal/event"
	"thematicep/internal/matcher"
)

func preparedBatchThematic(t testing.TB) PreparedMatcher {
	m := matcher.New(evalSpace(t))
	return PreparedBatch(m.Score, m.PrepareSubscription, m.PrepareEvent, m.ScorePrepared, m.ScoreBatch)
}

// runBrokerWith is runBroker with an explicit matcher: subscribe all,
// publish all (unsubscribing a third halfway), return delivery set + stats.
func runBrokerWith(t *testing.T, pm Matcher, subs []*event.Subscription, events []*event.Event, opts ...Option) (map[deliveryKey]bool, Stats) {
	t.Helper()
	base := []Option{
		WithQueueSize(len(events) + 1),
		WithReplayBuffer(0),
	}
	b := New(pm, append(base, opts...)...)

	handles := make([]*Subscriber, len(subs))
	for i, s := range subs {
		h, err := b.Subscribe(s)
		if err != nil {
			t.Fatalf("subscribe %q: %v", s.ID, err)
		}
		handles[i] = h
	}
	for i, e := range events {
		if i == len(events)/2 {
			for j := 0; j < len(handles); j += 3 {
				handles[j].Close()
			}
		}
		if err := b.Publish(e); err != nil {
			t.Fatalf("publish %q: %v", e.ID, err)
		}
	}
	st := b.Stats()
	b.Close()

	got := make(map[deliveryKey]bool)
	for _, h := range handles {
		for d := range h.C() {
			got[deliveryKey{d.SubscriptionID, d.Event.ID, d.Score}] = true
		}
	}
	return got, st
}

func diffDeliveries(t *testing.T, label string, want, got map[deliveryKey]bool) {
	t.Helper()
	if len(want) != len(got) {
		t.Errorf("%s: delivery counts differ: want %d, got %d", label, len(want), len(got))
	}
	for k := range want {
		if !got[k] {
			t.Errorf("%s: lost delivery %+v", label, k)
		}
	}
	for k := range got {
		if !want[k] {
			t.Errorf("%s: invented delivery %+v", label, k)
		}
	}
}

// TestBatchDeliveryEquivalence is the batch-dispatch acceptance criterion:
// a broker scoring through ScoreBatchPrepared must produce the exact
// delivery set — including bit-identical scores — of the serial
// ScorePrepared broker, serially and under the parallel chunked
// dispatcher, with and without pruning.
func TestBatchDeliveryEquivalence(t *testing.T) {
	for _, seed := range []int64{3, 42} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			subs, events := mixedThemeWorkload(t, seed)
			serial, serialStats := runBrokerWith(t, preparedThematic(t), subs, events, WithMatchParallelism(1))

			batch, batchStats := runBrokerWith(t, preparedBatchThematic(t), subs, events, WithMatchParallelism(1))
			diffDeliveries(t, "batch serial", serial, batch)

			batchPar, _ := runBrokerWith(t, preparedBatchThematic(t), subs, events, WithMatchParallelism(4))
			diffDeliveries(t, "batch parallel", serial, batchPar)

			batchFull, _ := runBrokerWith(t, preparedBatchThematic(t), subs, events, WithMatchParallelism(4), WithPruning(false))
			diffDeliveries(t, "batch full-scan", serial, batchFull)

			if batchStats.Matched != serialStats.Matched || batchStats.Scanned != serialStats.Scanned {
				t.Errorf("stats differ: batch scanned/matched %d/%d, serial %d/%d",
					batchStats.Scanned, batchStats.Matched, serialStats.Scanned, serialStats.Matched)
			}
		})
	}
}

// TestBatchDispatchChunks drives a candidate set wider than one dispatch
// chunk (multiple ScoreBatchPrepared sweeps per publish, parallel workers)
// and checks it against the serial broker.
func TestBatchDispatchChunks(t *testing.T) {
	baseSubs, events := mixedThemeWorkload(t, 11)
	var subs []*event.Subscription
	for rep := 0; rep < 12; rep++ {
		for _, s := range baseSubs {
			cp := *s
			cp.ID = fmt.Sprintf("%s-r%d", s.ID, rep)
			subs = append(subs, &cp)
		}
	}
	if len(subs) <= 2*batchChunkSize {
		t.Fatalf("population %d does not exceed two chunks (%d)", len(subs), batchChunkSize)
	}
	events = events[:12]
	serial, _ := runBrokerWith(t, preparedThematic(t), subs, events, WithMatchParallelism(1))
	batch, _ := runBrokerWith(t, preparedBatchThematic(t), subs, events, WithMatchParallelism(4))
	diffDeliveries(t, "chunked batch", serial, batch)
	if len(serial) == 0 {
		t.Fatal("workload produced no deliveries; equivalence is vacuous")
	}
}
