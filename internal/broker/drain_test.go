package broker

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"thematicep/internal/event"
)

// TestDrainFlushesSubscriberQueues: deliveries queued before Drain reach a
// live (if slow) subscriber before the broker closes, and Drain refuses
// new publishes immediately.
func TestDrainFlushesSubscriberQueues(t *testing.T) {
	b := New(exactMatcher())
	sub, err := b.Subscribe(parkingSub())
	if err != nil {
		t.Fatal(err)
	}
	const n = 20
	for i := 0; i < n; i++ {
		if err := b.Publish(parkingEvent(fmt.Sprintf("e%d", i))); err != nil {
			t.Fatal(err)
		}
	}

	// Slow consumer: the queue is still full when Drain begins.
	got := make(chan int, 1)
	go func() {
		count := 0
		for range sub.C() {
			count++
			time.Sleep(time.Millisecond)
		}
		got <- count
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := b.Drain(ctx); err != nil {
		t.Fatalf("Drain = %v, want nil (flushed)", err)
	}
	if err := b.Publish(parkingEvent("late")); !errors.Is(err, ErrDraining) && !errors.Is(err, ErrClosed) {
		t.Errorf("publish after drain: err = %v, want ErrDraining or ErrClosed", err)
	}
	if count := <-got; count != n {
		t.Errorf("consumer received %d deliveries, want %d (drain must flush the queue)", count, n)
	}
}

// TestDrainTimeout: a subscriber that never reads pins its queue, so Drain
// must give up at the deadline, close the broker anyway, and report the
// context error.
func TestDrainTimeout(t *testing.T) {
	b := New(exactMatcher())
	sub, err := b.Subscribe(parkingSub())
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Publish(parkingEvent("stuck")); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	if err := b.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Drain = %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("Drain took %v, deadline did not bound it", elapsed)
	}
	// The broker is closed regardless: the stuck subscriber's channel must
	// end (draining the buffered delivery first, then closing).
	deadline := time.After(5 * time.Second)
	for open := true; open; {
		select {
		case _, open = <-sub.C():
		case <-deadline:
			t.Fatal("subscriber channel still open after drain timeout")
		}
	}
}

// TestDrainInFlightPublish: Drain must wait for a Publish already past
// admission before declaring the queues flushed — deliveries from
// in-flight publishes count.
func TestDrainInFlightPublish(t *testing.T) {
	release := make(chan struct{})
	var once sync.Once
	slow := MatchFunc(func(s *event.Subscription, e *event.Event) float64 {
		once.Do(func() { <-release })
		if event.ExactMatch(s, e) {
			return 1
		}
		return 0
	})
	b := New(slow, WithMatchParallelism(1))
	sub, err := b.Subscribe(parkingSub())
	if err != nil {
		t.Fatal(err)
	}

	published := make(chan error, 1)
	go func() { published <- b.Publish(parkingEvent("inflight")) }()
	// Wait until the publish is inside the matcher, then start draining.
	waitUntil(t, "publish in flight", func() bool { return b.inflight.Load() == 1 })

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drained <- b.Drain(ctx)
	}()

	// The drain cannot finish while the publish is blocked in matching.
	select {
	case err := <-drained:
		t.Fatalf("Drain returned %v before the in-flight publish finished", err)
	case <-time.After(100 * time.Millisecond):
	}
	close(release)
	if err := <-published; err != nil {
		t.Fatalf("in-flight publish: %v", err)
	}
	// Consume so the flush can complete.
	go func() {
		for range sub.C() {
		}
	}()
	if err := <-drained; err != nil {
		t.Fatalf("Drain = %v, want nil", err)
	}
}

// TestCloseDrainRaceConcurrentPublishSubscribe is the satellite lifecycle
// check: Close and Drain racing a storm of concurrent Publish and
// Subscribe calls must not panic, deadlock, or leak goroutines.
func TestCloseDrainRaceConcurrentPublishSubscribe(t *testing.T) {
	baseline := runtime.NumGoroutine()
	for round := 0; round < 4; round++ {
		b := New(exactMatcher())
		var wg sync.WaitGroup
		stop := make(chan struct{})

		for w := 0; w < 4; w++ {
			wg.Add(2)
			go func(w int) {
				defer wg.Done()
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					if err := b.Publish(parkingEvent(fmt.Sprintf("w%d-%d", w, i))); err != nil {
						return
					}
				}
			}(w)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					s, err := b.Subscribe(parkingSub())
					if err != nil {
						return
					}
					// Drain a few deliveries, then drop the handle —
					// subscribers die at every lifecycle stage.
					for i := 0; i < 3; i++ {
						select {
						case <-s.C():
						case <-time.After(time.Millisecond):
						}
					}
					s.Close()
				}
			}()
		}

		time.Sleep(20 * time.Millisecond)
		var race sync.WaitGroup
		race.Add(2)
		go func() {
			defer race.Done()
			ctx, cancel := context.WithTimeout(context.Background(), time.Second)
			defer cancel()
			b.Drain(ctx)
		}()
		go func() {
			defer race.Done()
			b.Close()
		}()
		race.Wait()
		close(stop)
		wg.Wait()
	}

	// No goroutine leak: everything spawned above must wind down. GC
	// pressure and test runner goroutines wobble the count, so allow slack
	// and retry before declaring a leak.
	waitUntil(t, "goroutines to settle", func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= baseline+8
	})
}

// TestShedWatermark: with shedding configured and the match pipeline
// saturated by slow concurrent publishes, excess publishes are rejected
// with ErrOverloaded and counted — never silently dropped.
func TestShedWatermark(t *testing.T) {
	slow := MatchFunc(func(s *event.Subscription, e *event.Event) float64 {
		time.Sleep(2 * time.Millisecond)
		if event.ExactMatch(s, e) {
			return 1
		}
		return 0
	})
	b := New(slow, WithMatchParallelism(2), WithShedWatermark(1), WithQueueSize(1024))
	defer b.Close()
	// Enough subscriptions that dispatch wants helper workers, keeping the
	// broker-wide semaphore saturated while publishes overlap.
	for i := 0; i < 8; i++ {
		if _, err := b.Subscribe(parkingSub()); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	var shedSeen sync.Once
	sawErr := make(chan struct{}, 1)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				err := b.Publish(parkingEvent(fmt.Sprintf("w%d-%d", w, i)))
				if errors.Is(err, ErrOverloaded) {
					shedSeen.Do(func() { sawErr <- struct{}{} })
				} else if err != nil {
					t.Errorf("publish: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	st := b.Stats()
	select {
	case <-sawErr:
	default:
		t.Fatalf("no publish returned ErrOverloaded (shed=%d published=%d)", st.Shed, st.Published)
	}
	if st.Shed == 0 {
		t.Error("Stats.Shed = 0 after observed ErrOverloaded")
	}
	if st.Shed+st.Published != 8*50 {
		t.Errorf("shed (%d) + published (%d) != %d attempts: a publish went missing",
			st.Shed, st.Published, 8*50)
	}
}

func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}
