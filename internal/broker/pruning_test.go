package broker

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"thematicep/internal/corpus"
	"thematicep/internal/event"
	"thematicep/internal/index"
	"thematicep/internal/matcher"
	"thematicep/internal/semantics"
	"thematicep/internal/workload"
)

var (
	pruneSpaceOnce sync.Once
	pruneSpace     *semantics.Space
)

func evalSpace(t testing.TB) *semantics.Space {
	t.Helper()
	pruneSpaceOnce.Do(func() {
		pruneSpace = semantics.NewSpace(index.Build(corpus.GenerateDefault()))
	})
	return pruneSpace
}

func preparedThematic(t testing.TB) PreparedMatcher {
	m := matcher.New(evalSpace(t))
	return Prepared(m.Score, m.PrepareSubscription, m.PrepareEvent, m.ScorePrepared)
}

// mixedThemeWorkload builds a seeded workload whose events and
// subscriptions carry varied theme tag sets (several distinct compiled-theme
// groups, including empty themes), with both exact and fully approximate
// subscriptions.
func mixedThemeWorkload(t testing.TB, seed int64) ([]*event.Subscription, []*event.Event) {
	t.Helper()
	w := workload.Generate(workload.Config{
		Seed:            seed,
		SeedEvents:      30,
		ExpandedPerSeed: 2,
		Subscriptions:   30,
		MaxPredicates:   3,
	})
	rng := rand.New(rand.NewSource(seed + 1))
	pool := w.ThemePool()
	pickTheme := func() []string {
		n := rng.Intn(3) // 0, 1 or 2 tags
		th := make([]string, 0, n)
		for len(th) < n {
			th = append(th, pool[rng.Intn(len(pool))])
		}
		return th
	}

	var subs []*event.Subscription
	for i := range w.ExactSubs {
		e, a := w.ExactSubs[i], w.ApproxSubs[i]
		e.Theme = pickTheme()
		a.Theme = pickTheme()
		subs = append(subs, e, a)
	}
	for _, ev := range w.Events {
		ev.Theme = pickTheme()
	}
	return subs, w.Events
}

type deliveryKey struct {
	SubID   string
	EventID string
	Score   float64
}

// runBroker subscribes every subscription, publishes every event
// (unsubscribing a third of the subscriptions halfway through to exercise
// index removal), then closes the broker and returns the full delivery set
// plus the final stats.
func runBroker(t *testing.T, subs []*event.Subscription, events []*event.Event, opts ...Option) (map[deliveryKey]bool, Stats) {
	t.Helper()
	base := []Option{
		WithQueueSize(len(events) + 1), // no overflow: drop-oldest never fires
		WithReplayBuffer(0),
		WithMatchParallelism(1),
	}
	b := New(preparedThematic(t), append(base, opts...)...)

	handles := make([]*Subscriber, len(subs))
	for i, s := range subs {
		h, err := b.Subscribe(s)
		if err != nil {
			t.Fatalf("subscribe %q: %v", s.ID, err)
		}
		handles[i] = h
	}
	for i, e := range events {
		if i == len(events)/2 {
			for j := 0; j < len(handles); j += 3 {
				handles[j].Close()
			}
		}
		if err := b.Publish(e); err != nil {
			t.Fatalf("publish %q: %v", e.ID, err)
		}
	}
	st := b.Stats()
	b.Close()

	got := make(map[deliveryKey]bool)
	for _, h := range handles {
		for d := range h.C() {
			got[deliveryKey{d.SubscriptionID, d.Event.ID, d.Score}] = true
		}
	}
	return got, st
}

// TestPruningDeliveryEquivalence is the pruning acceptance criterion: over a
// seeded mixed-theme workload grid, the pruned broker's delivery set —
// including exact scores — is bit-identical to the unpruned scan, while the
// index reports a substantial number of pruned candidates.
func TestPruningDeliveryEquivalence(t *testing.T) {
	for _, seed := range []int64{3, 17, 42} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			subs, events := mixedThemeWorkload(t, seed)
			pruned, prunedStats := runBroker(t, subs, events)
			full, fullStats := runBroker(t, subs, events, WithPruning(false))

			if len(pruned) != len(full) {
				t.Errorf("delivery counts differ: pruned %d, full %d", len(pruned), len(full))
			}
			for k := range full {
				if !pruned[k] {
					t.Errorf("pruning lost delivery %+v", k)
				}
			}
			for k := range pruned {
				if !full[k] {
					t.Errorf("pruning invented delivery %+v", k)
				}
			}

			if prunedStats.Pruned == 0 {
				t.Error("pruned broker reports 0 pruned candidates on a mixed workload")
			}
			if fullStats.Pruned != 0 {
				t.Errorf("unpruned broker reports %d pruned candidates", fullStats.Pruned)
			}
			if prunedStats.Scanned+prunedStats.Pruned != fullStats.Scanned {
				t.Errorf("scanned+pruned = %d, want the full scan count %d",
					prunedStats.Scanned+prunedStats.Pruned, fullStats.Scanned)
			}
			t.Logf("scanned %d, pruned %d of %d pairs (%.0f%%)",
				prunedStats.Scanned, prunedStats.Pruned, fullStats.Scanned,
				100*float64(prunedStats.Pruned)/float64(fullStats.Scanned))
		})
	}
}

// TestPruningDisabledForPlainMatchers verifies the conservative gate: a
// matcher without the prepare-once contract is never pruned, so baselines
// with looser exact-term semantics keep full-scan behavior.
func TestPruningDisabledForPlainMatchers(t *testing.T) {
	b := New(exactMatcher()) // pruning defaults on, but no PreparedMatcher
	defer b.Close()
	if b.index != nil {
		t.Fatal("plain matcher got a pruning index")
	}
	if _, err := b.Subscribe(parkingSub()); err != nil {
		t.Fatal(err)
	}
	if err := b.Publish(parkingEvent("p1")); err != nil {
		t.Fatal(err)
	}
	st := b.Stats()
	if st.Pruned != 0 || st.Scanned != 1 {
		t.Errorf("stats = %+v, want full scan with 0 pruned", st)
	}
}
