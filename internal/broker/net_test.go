package broker

import (
	"bytes"
	"io"
	"strings"
	"sync"
	"testing"
	"time"

	"thematicep/internal/event"
)

func TestWireFrameRoundTrip(t *testing.T) {
	frames := []*Frame{
		{Type: FramePublish, Event: parkingEvent("p1")},
		{Type: FrameSubscribe, Subscription: parkingSub(), Replay: true},
		{Type: FrameDelivery, Event: parkingEvent("p2"), SubscriptionID: "s1", Score: 0.75},
		{Type: FrameOK, SubscriptionID: "s1"},
		{Type: FrameError, Error: "boom"},
	}
	var buf bytes.Buffer
	for _, f := range frames {
		if err := WriteFrame(&buf, f); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range frames {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.Type != want.Type || got.SubscriptionID != want.SubscriptionID ||
			got.Score != want.Score || got.Error != want.Error || got.Replay != want.Replay {
			t.Errorf("frame = %+v, want %+v", got, want)
		}
	}
	if _, err := ReadFrame(&buf); err != io.EOF {
		t.Errorf("expected EOF, got %v", err)
	}
}

func TestReadFrameRejectsOversize(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	if _, err := ReadFrame(&buf); err == nil || !strings.Contains(err.Error(), "too large") {
		t.Errorf("err = %v", err)
	}
}

func TestReadFrameRejectsGarbage(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0, 0, 0, 2, '{', 'x'})
	if _, err := ReadFrame(&buf); err == nil {
		t.Error("garbage decoded")
	}
}

// startServer spins up a broker server on a random port.
func startServer(t *testing.T) (*Server, string) {
	t.Helper()
	b := New(exactMatcher())
	srv := NewServer(b)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		b.Close()
	})
	return srv, addr.String()
}

func TestClientPublishSubscribeOverTCP(t *testing.T) {
	_, addr := startServer(t)

	consumer, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer consumer.Close()
	producer, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer producer.Close()

	id, deliveries, err := consumer.Subscribe(parkingSub(), false)
	if err != nil {
		t.Fatal(err)
	}
	if id == "" {
		t.Fatal("empty subscription id")
	}

	if err := producer.Publish(parkingEvent("p1")); err != nil {
		t.Fatal(err)
	}
	select {
	case d := <-deliveries:
		if d.Event == nil || d.Event.Tuples[1].Value != "p1" || d.SubscriptionID != id {
			t.Errorf("delivery = %+v", d)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("timed out")
	}
}

func TestClientReplayOverTCP(t *testing.T) {
	_, addr := startServer(t)
	producer, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer producer.Close()
	if err := producer.Publish(parkingEvent("early")); err != nil {
		t.Fatal(err)
	}

	consumer, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer consumer.Close()
	_, deliveries, err := consumer.Subscribe(parkingSub(), true)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case d := <-deliveries:
		if !d.Replayed || d.Event.Tuples[1].Value != "early" {
			t.Errorf("delivery = %+v", d)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("timed out")
	}
}

func TestClientUnsubscribe(t *testing.T) {
	_, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	id, deliveries, err := c.Subscribe(parkingSub(), false)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Unsubscribe(id); err != nil {
		t.Fatal(err)
	}
	if _, ok := <-deliveries; ok {
		t.Error("channel not closed after unsubscribe")
	}
	if err := c.Unsubscribe(id); err == nil {
		t.Error("double unsubscribe should error")
	}
}

func TestClientServerErrorPropagation(t *testing.T) {
	_, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Publish(&event.Event{}); err == nil || !strings.Contains(err.Error(), "server error") {
		t.Errorf("invalid publish: %v", err)
	}
	// The connection must survive the error.
	if err := c.Publish(parkingEvent("p1")); err != nil {
		t.Errorf("publish after error: %v", err)
	}
}

func TestClientCloseClosesDeliveries(t *testing.T) {
	_, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	_, deliveries, err := c.Subscribe(parkingSub(), false)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case _, ok := <-deliveries:
		if ok {
			t.Error("unexpected delivery after close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("delivery channel not closed")
	}
	if err := c.Publish(parkingEvent("p1")); err == nil {
		t.Error("publish after close succeeded")
	}
}

func TestServerCloseDisconnectsClients(t *testing.T) {
	srv, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, deliveries, err := c.Subscribe(parkingSub(), false)
	if err != nil {
		t.Fatal(err)
	}
	srv.Close()
	select {
	case _, ok := <-deliveries:
		if ok {
			t.Error("unexpected delivery")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("delivery channel not closed after server close")
	}
}

func TestMultipleClientsConcurrent(t *testing.T) {
	_, addr := startServer(t)

	const consumers = 3
	var wg sync.WaitGroup
	counts := make([]int, consumers)
	ready := make(chan struct{}, consumers)
	done := make(chan struct{})
	for i := 0; i < consumers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				t.Error(err)
				ready <- struct{}{}
				return
			}
			defer c.Close()
			_, deliveries, err := c.Subscribe(parkingSub(), false)
			if err != nil {
				t.Error(err)
				ready <- struct{}{}
				return
			}
			ready <- struct{}{}
			for {
				select {
				case <-deliveries:
					counts[i]++
					if counts[i] == 10 {
						return
					}
				case <-done:
					return
				}
			}
		}(i)
	}
	for i := 0; i < consumers; i++ {
		<-ready
	}

	producer, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer producer.Close()
	for i := 0; i < 10; i++ {
		if err := producer.Publish(parkingEvent("p")); err != nil {
			t.Fatal(err)
		}
	}
	go func() {
		time.Sleep(5 * time.Second)
		close(done)
	}()
	wg.Wait()
	for i, n := range counts {
		if n != 10 {
			t.Errorf("consumer %d received %d, want 10", i, n)
		}
	}
}
