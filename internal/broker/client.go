package broker

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"thematicep/internal/event"
)

// Client connects to a broker Server over TCP. It is safe for concurrent
// use: requests are serialized, deliveries are dispatched to per
// subscription channels by a background reader.
type Client struct {
	conn net.Conn

	// timeout bounds each request/response exchange (zero = unbounded).
	// On expiry the connection is torn down: against a wedged daemon the
	// caller gets a fast, clear error rather than a hang.
	timeout time.Duration

	// maxBatch > 1 turns Publish into an auto-batching call: concurrent
	// publishes coalesce into one publishb frame, cut through as soon as
	// the batch fills, and a partial batch lingers at most `linger` before
	// flushing.
	maxBatch int
	linger   time.Duration

	batchMu  sync.Mutex
	curBatch *pendingBatch // batch accepting events, nil when none open

	writeMu sync.Mutex // serializes frame writes
	reqMu   sync.Mutex // serializes request/response exchanges

	mu       sync.Mutex
	pending  []chan *Frame                  // FIFO of waiting response channels
	subs     map[string]chan Delivery       // subscription id -> delivery channel
	orphans  map[string][]Delivery          // deliveries that raced Subscribe's return
	queries  map[string]chan QueryDetection // query name -> detection channel
	qorphans map[string][]QueryDetection    // detections that raced Query's return
	closed   bool
	readErr  error

	done chan struct{}
}

// ErrClientClosed is returned by operations on a closed client.
var ErrClientClosed = errors.New("broker client: closed")

// ErrRequestTimeout is returned by requests on a client built with
// DialTimeout when the broker does not answer within the timeout. The
// connection is closed as a side effect (responses can no longer be
// matched to requests once one has been abandoned).
var ErrRequestTimeout = errors.New("broker client: request timed out")

// RedirectError is returned by Subscribe when a clustered broker does not
// own the subscription's theme shard; Addr is the owning broker to retry
// against (cmd/themctl follows it automatically).
type RedirectError struct {
	Addr string
}

func (e *RedirectError) Error() string {
	return fmt.Sprintf("broker client: redirected to %s", e.Addr)
}

// DefaultLinger is how long an auto-batching client holds a partial batch
// open before flushing, when WithMaxBatch is set without WithLinger. Short
// enough to be invisible in end-to-end latency, long enough for a bursty
// publisher's next event to usually make the same frame.
const DefaultLinger = 500 * time.Microsecond

// ClientOption configures a Client at dial time.
type ClientOption func(*Client)

// WithMaxBatch enables client-side auto-batching: Publish calls coalesce
// into publishb frames of at most n events. A batch is flushed the moment
// it fills (cut-through — a full batch never waits on the linger timer) or
// when the linger window expires, whichever comes first. n <= 1 disables
// batching (the default).
func WithMaxBatch(n int) ClientOption {
	return func(c *Client) { c.maxBatch = n }
}

// WithLinger sets how long a partial auto-batch may wait for more events
// before flushing (DefaultLinger when unset). Only meaningful with
// WithMaxBatch; larger values trade per-event latency for bigger batches.
func WithLinger(d time.Duration) ClientOption {
	return func(c *Client) { c.linger = d }
}

// pendingBatch is one in-flight auto-batch: events accumulate under
// batchMu, and every Publish that contributed blocks on done until the
// flusher records the shared acknowledgement in err.
type pendingBatch struct {
	evs  []*event.Event
	done chan struct{}
	err  error
}

// Dial connects to a broker server.
func Dial(addr string, opts ...ClientOption) (*Client, error) { return DialTimeout(addr, 0, opts...) }

// DialTimeout connects to a broker server with a bound on both the dial
// and every subsequent request/response exchange (publish, subscribe,
// unsubscribe acknowledgements). A wedged or unreachable daemon produces a
// timeout error within d instead of hanging the caller; streaming delivery
// reads are not bounded (an idle subscription is legitimate). d <= 0 means
// no timeout, identical to Dial.
func DialTimeout(addr string, d time.Duration, opts ...ClientOption) (*Client, error) {
	var conn net.Conn
	var err error
	if d > 0 {
		conn, err = net.DialTimeout("tcp", addr, d)
	} else {
		conn, err = net.Dial("tcp", addr)
	}
	if err != nil {
		return nil, fmt.Errorf("broker client: %w", err)
	}
	c := &Client{
		conn:     conn,
		timeout:  d,
		linger:   DefaultLinger,
		subs:     make(map[string]chan Delivery),
		orphans:  make(map[string][]Delivery),
		queries:  make(map[string]chan QueryDetection),
		qorphans: make(map[string][]QueryDetection),
		done:     make(chan struct{}),
	}
	for _, o := range opts {
		o(c)
	}
	if c.linger <= 0 {
		c.linger = DefaultLinger
	}
	go c.readLoop()
	return c, nil
}

func (c *Client) readLoop() {
	defer close(c.done)
	for {
		f, err := ReadFrame(c.conn)
		if err != nil {
			c.mu.Lock()
			c.readErr = err
			pending := c.pending
			c.pending = nil
			subs := c.subs
			c.subs = make(map[string]chan Delivery)
			queries := c.queries
			c.queries = make(map[string]chan QueryDetection)
			c.closed = true
			c.mu.Unlock()
			for _, ch := range pending {
				close(ch)
			}
			for _, ch := range subs {
				close(ch)
			}
			for _, ch := range queries {
				close(ch)
			}
			return
		}
		if f.Type == FrameDetect {
			d := QueryDetection{
				Query:       f.QueryName,
				Probability: f.Probability,
				Events:      f.Events,
				At:          f.At,
			}
			// Same discipline as deliveries: route under the lock, never
			// block the reader, park detections that raced Query's return.
			c.mu.Lock()
			if ch := c.queries[f.QueryName]; ch != nil {
				select {
				case ch <- d:
				default:
				}
			} else if len(c.qorphans[f.QueryName]) < 64 {
				c.qorphans[f.QueryName] = append(c.qorphans[f.QueryName], d)
			}
			c.mu.Unlock()
			continue
		}
		if f.Type == FrameDelivery {
			d := Delivery{
				Event:          f.Event,
				SubscriptionID: f.SubscriptionID,
				Score:          f.Score,
				Replayed:       f.Replay,
				At:             f.At,
			}
			// The send happens under the lock so Unsubscribe's close cannot
			// race it; a full buffer drops the delivery (the same overflow
			// policy as the broker's subscriber queues), so the reader never
			// blocks on a slow consumer.
			c.mu.Lock()
			if ch := c.subs[f.SubscriptionID]; ch != nil {
				select {
				case ch <- d:
				default:
				}
			} else if len(c.orphans[f.SubscriptionID]) < 64 {
				// The subscribe acknowledgement is still in flight to the
				// caller; park the delivery until Subscribe registers.
				c.orphans[f.SubscriptionID] = append(c.orphans[f.SubscriptionID], d)
			}
			c.mu.Unlock()
			continue
		}
		// Request responses arrive in request order.
		c.mu.Lock()
		var ch chan *Frame
		if len(c.pending) > 0 {
			ch = c.pending[0]
			c.pending = c.pending[1:]
		}
		c.mu.Unlock()
		if ch != nil {
			ch <- f
		}
	}
}

// request writes a frame and waits for its ok/error response.
func (c *Client) request(f *Frame) (*Frame, error) {
	c.reqMu.Lock()
	defer c.reqMu.Unlock()

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClientClosed
	}
	ch := make(chan *Frame, 1)
	c.pending = append(c.pending, ch)
	c.mu.Unlock()

	c.writeMu.Lock()
	if c.timeout > 0 {
		c.conn.SetWriteDeadline(time.Now().Add(c.timeout))
	}
	err := WriteFrame(c.conn, f)
	c.writeMu.Unlock()
	if err != nil {
		return nil, err
	}
	var resp *Frame
	var ok bool
	if c.timeout > 0 {
		t := time.NewTimer(c.timeout)
		defer t.Stop()
		select {
		case resp, ok = <-ch:
		case <-t.C:
			// Abandoning a pending response desynchronizes the FIFO; the
			// connection is useless now, so fail fast and tear it down.
			c.conn.Close()
			return nil, ErrRequestTimeout
		}
	} else {
		resp, ok = <-ch
	}
	if !ok {
		return nil, ErrClientClosed
	}
	if resp.Type == FrameError {
		return nil, fmt.Errorf("broker client: server error: %s", resp.Error)
	}
	if resp.Type == FrameRedirect {
		return nil, &RedirectError{Addr: resp.Addr}
	}
	return resp, nil
}

// Publish sends an event and waits for the broker's acknowledgement. On a
// client dialed with WithMaxBatch, concurrent publishes coalesce into one
// publishb frame and share its acknowledgement — admission stays
// all-or-nothing per frame, so every contributor sees the same error.
func (c *Client) Publish(e *event.Event) error {
	if c.maxBatch <= 1 {
		_, err := c.request(&Frame{Type: FramePublish, Event: e})
		return err
	}

	c.batchMu.Lock()
	pb := c.curBatch
	if pb == nil {
		pb = &pendingBatch{done: make(chan struct{})}
		c.curBatch = pb
		// The linger timer closes a partial batch; a batch that fills
		// first is cut through below and the timer's flush becomes a
		// no-op (curBatch has moved on).
		time.AfterFunc(c.linger, func() { c.flushBatch(pb) })
	}
	pb.evs = append(pb.evs, e)
	full := len(pb.evs) >= c.maxBatch
	if full {
		c.curBatch = nil // cut-through: don't wait out the linger window
	}
	c.batchMu.Unlock()

	if full {
		c.sendBatch(pb)
	} else {
		<-pb.done
	}
	return pb.err
}

// flushBatch closes pb if it is still the open batch and sends it. Called
// by the linger timer; harmless when cut-through already flushed pb.
func (c *Client) flushBatch(pb *pendingBatch) {
	c.batchMu.Lock()
	if c.curBatch != pb {
		c.batchMu.Unlock()
		return
	}
	c.curBatch = nil
	c.batchMu.Unlock()
	c.sendBatch(pb)
}

// sendBatch publishes a closed batch and wakes every contributor with the
// shared result. pb must no longer be reachable as curBatch.
func (c *Client) sendBatch(pb *pendingBatch) {
	pb.err = c.PublishBatch(pb.evs)
	close(pb.done)
}

// PublishBatch sends a batch of events as one publishb frame and waits for
// its single acknowledgement. Admission is all-or-nothing: an error means
// no event in the batch was published. Batches above the server's cap are
// rejected whole; an empty batch is a no-op.
func (c *Client) PublishBatch(events []*event.Event) error {
	if len(events) == 0 {
		return nil
	}
	_, err := c.request(&Frame{Type: FramePublishBatch, Events: events})
	return err
}

// Subscribe registers a subscription. When replay is true, buffered past
// events are delivered first (marked Replayed). The returned channel is
// closed on Unsubscribe or when the connection drops; its buffer matches
// the server-side queue default.
func (c *Client) Subscribe(sub *event.Subscription, replay bool) (id string, deliveries <-chan Delivery, err error) {
	resp, err := c.request(&Frame{Type: FrameSubscribe, Subscription: sub, Replay: replay})
	if err != nil {
		return "", nil, err
	}
	ch := make(chan Delivery, 64)
	c.mu.Lock()
	if c.closed {
		// The connection died between the acknowledgement and now; the
		// read loop has already swept c.subs, so registering would leak
		// an open channel. Hand back a closed one instead.
		c.mu.Unlock()
		close(ch)
		return resp.SubscriptionID, ch, nil
	}
	c.subs[resp.SubscriptionID] = ch
	for _, d := range c.orphans[resp.SubscriptionID] {
		select {
		case ch <- d:
		default:
		}
	}
	delete(c.orphans, resp.SubscriptionID)
	c.mu.Unlock()
	return resp.SubscriptionID, ch, nil
}

// Query registers a continuous query and returns its detection stream.
// The channel is closed by UnregisterQuery or when the connection drops.
// On a clustered broker that does not own the query's theme shard, the
// error is a *RedirectError naming the owning broker.
func (c *Client) Query(spec *QuerySpec) (name string, detections <-chan QueryDetection, err error) {
	resp, err := c.request(&Frame{Type: FrameQuery, Query: spec})
	if err != nil {
		return "", nil, err
	}
	ch := make(chan QueryDetection, 64)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		close(ch)
		return resp.QueryName, ch, nil
	}
	c.queries[resp.QueryName] = ch
	for _, d := range c.qorphans[resp.QueryName] {
		select {
		case ch <- d:
		default:
		}
	}
	delete(c.qorphans, resp.QueryName)
	c.mu.Unlock()
	return resp.QueryName, ch, nil
}

// UnregisterQuery cancels a continuous query and closes its detection
// channel.
func (c *Client) UnregisterQuery(name string) error {
	_, err := c.request(&Frame{Type: FrameUnsubscribe, QueryName: name})
	c.mu.Lock()
	if ch, ok := c.queries[name]; ok {
		delete(c.queries, name)
		close(ch)
	}
	c.mu.Unlock()
	return err
}

// Unsubscribe cancels a subscription and closes its delivery channel.
func (c *Client) Unsubscribe(id string) error {
	_, err := c.request(&Frame{Type: FrameUnsubscribe, SubscriptionID: id})
	c.mu.Lock()
	if ch, ok := c.subs[id]; ok {
		delete(c.subs, id)
		close(ch)
	}
	c.mu.Unlock()
	return err
}

// Close drops the connection; all delivery channels close.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.mu.Unlock()
	err := c.conn.Close()
	<-c.done
	return err
}
