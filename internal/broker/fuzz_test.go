package broker

import (
	"bytes"
	"encoding/binary"
	"testing"

	"thematicep/internal/event"
)

// FuzzReadFrame asserts the wire decoder never panics or over-allocates on
// corrupt length prefixes and truncated or garbage JSON payloads, and that
// anything it accepts re-encodes (mirroring internal/event/fuzz_test.go
// for the parsers).
func FuzzReadFrame(f *testing.F) {
	// Well-formed frames of each type.
	for _, fr := range []*Frame{
		{Type: FrameOK, SubscriptionID: "s1"},
		{Type: FrameError, Error: "boom"},
		{Type: FrameHello, NodeID: "10.0.0.1:7070"},
		{Type: FrameRedirect, Addr: "10.0.0.2:7070"},
		{Type: FramePublish, Event: &event.Event{
			Theme:  []string{"land transport"},
			Tuples: []event.Tuple{{Attr: "type", Value: "parking event"}},
		}},
		{Type: FrameForward, NodeID: "n1", Event: &event.Event{
			ID:     "n1/e1",
			Tuples: []event.Tuple{{Attr: "a", Value: "b"}},
		}},
		{Type: FrameSubscribe, Replay: true, Subscription: &event.Subscription{
			Predicates: []event.Predicate{{Attr: "type", Value: "parking event"}},
		}},
	} {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, fr); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	// Corrupt length prefixes and truncations.
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	f.Add([]byte{0, 0, 0, 100, '{'})
	f.Add([]byte{0, 0, 0, 2, '{', 'x'})
	huge := make([]byte, 4)
	binary.BigEndian.PutUint32(huge, MaxFrameSize+1)
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		fr, err := ReadFrame(r)
		if err != nil {
			return // rejection is fine; panics are not
		}
		// The declared length can never exceed the cap, so a decoded
		// frame came from at most 4+MaxFrameSize input bytes.
		if consumed := len(data) - r.Len(); consumed > 4+MaxFrameSize {
			t.Fatalf("consumed %d bytes, cap is %d", consumed, 4+MaxFrameSize)
		}
		var buf bytes.Buffer
		if err := WriteFrame(&buf, fr); err != nil {
			t.Fatalf("accepted frame %+v does not re-encode: %v", fr, err)
		}
		back, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("re-encoded frame does not decode: %v", err)
		}
		if back.Type != fr.Type || back.SubscriptionID != fr.SubscriptionID ||
			back.NodeID != fr.NodeID || back.Addr != fr.Addr || back.Error != fr.Error {
			t.Fatalf("round-trip mismatch: %+v vs %+v", fr, back)
		}
	})
}
