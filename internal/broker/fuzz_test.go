package broker

import (
	"bytes"
	"encoding/binary"
	"testing"
	"unicode/utf8"

	"thematicep/internal/event"
	"thematicep/internal/telemetry"
)

// FuzzReadFrame asserts the wire decoder never panics or over-allocates on
// corrupt length prefixes and truncated or garbage JSON payloads, and that
// anything it accepts re-encodes (mirroring internal/event/fuzz_test.go
// for the parsers).
func FuzzReadFrame(f *testing.F) {
	// Well-formed frames of each type.
	for _, fr := range []*Frame{
		{Type: FrameOK, SubscriptionID: "s1"},
		{Type: FrameError, Error: "boom"},
		{Type: FrameHello, NodeID: "10.0.0.1:7070"},
		{Type: FrameRedirect, Addr: "10.0.0.2:7070"},
		{Type: FramePublish, Event: &event.Event{
			Theme:  []string{"land transport"},
			Tuples: []event.Tuple{{Attr: "type", Value: "parking event"}},
		}},
		{Type: FrameForward, NodeID: "n1", Event: &event.Event{
			ID:     "n1/e1",
			Tuples: []event.Tuple{{Attr: "a", Value: "b"}},
		}},
		{Type: FrameForward, NodeID: "n1",
			Trace: &telemetry.TraceContext{TraceID: "n1.1a2b.3", Parent: "n1", Sampled: true},
			Event: &event.Event{ID: "n1/e2", Tuples: []event.Tuple{{Attr: "a", Value: "b"}}}},
		{Type: FrameHello, NodeID: "n2", MetricsAddr: "10.0.0.2:9090"},
		{Type: FrameSubscribe, Replay: true, Subscription: &event.Subscription{
			Predicates: []event.Predicate{{Attr: "type", Value: "parking event"}},
		}},
		{Type: FramePublishBatch, Events: []*event.Event{
			{ID: "b1", Theme: []string{"land transport"},
				Tuples: []event.Tuple{{Attr: "type", Value: "parking event"}}},
			{ID: "b2", Tuples: []event.Tuple{{Attr: "area", Value: "downtown"}}},
		}},
		{Type: FrameOK, Count: 2},
	} {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, fr); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	// Corrupt length prefixes and truncations.
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	f.Add([]byte{0, 0, 0, 100, '{'})
	f.Add([]byte{0, 0, 0, 2, '{', 'x'})
	huge := make([]byte, 4)
	binary.BigEndian.PutUint32(huge, MaxFrameSize+1)
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		fr, err := ReadFrame(r)
		if err != nil {
			return // rejection is fine; panics are not
		}
		// The declared length can never exceed the cap, so a decoded
		// frame came from at most 4+MaxFrameSize input bytes.
		if consumed := len(data) - r.Len(); consumed > 4+MaxFrameSize {
			t.Fatalf("consumed %d bytes, cap is %d", consumed, 4+MaxFrameSize)
		}
		var buf bytes.Buffer
		if err := WriteFrame(&buf, fr); err != nil {
			t.Fatalf("accepted frame %+v does not re-encode: %v", fr, err)
		}
		back, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("re-encoded frame does not decode: %v", err)
		}
		if back.Type != fr.Type || back.SubscriptionID != fr.SubscriptionID ||
			back.NodeID != fr.NodeID || back.Addr != fr.Addr || back.Error != fr.Error ||
			back.Count != fr.Count || len(back.Events) != len(fr.Events) ||
			back.MetricsAddr != fr.MetricsAddr {
			t.Fatalf("round-trip mismatch: %+v vs %+v", fr, back)
		}
		if (back.Trace == nil) != (fr.Trace == nil) {
			t.Fatalf("trace context presence lost: %+v vs %+v", fr.Trace, back.Trace)
		}
		if back.Trace != nil && *back.Trace != *fr.Trace {
			t.Fatalf("trace context mutated: %+v vs %+v", fr.Trace, back.Trace)
		}
	})
}

// FuzzTraceContextFrame round-trips fuzzer-shaped trace contexts through
// forward and publishb frames: the propagated trace ID, parent, and
// sampled bit must survive the codec byte-identically, and an absent
// context must stay absent (the omitempty contract — an unsampled event
// carries zero trace bytes on the wire).
func FuzzTraceContextFrame(f *testing.F) {
	f.Add("n1.1a2b.3", "n1", true, true)
	f.Add("", "", false, false)
	f.Add("node-with-ünïcode.ff.1", "peer:7070", true, false)
	f.Add(`id"with{json}`, "p\n", false, true)
	f.Fuzz(func(t *testing.T, id, parent string, sampled, batch bool) {
		if !utf8.ValidString(id) || !utf8.ValidString(parent) {
			return
		}
		tc := &telemetry.TraceContext{TraceID: id, Parent: parent, Sampled: sampled}
		fr := &Frame{Type: FrameForward, NodeID: "n1", Trace: tc,
			Event: &event.Event{ID: "e1", Tuples: []event.Tuple{{Attr: "a", Value: "b"}}}}
		if batch {
			fr = &Frame{Type: FramePublishBatch, Trace: tc,
				Events: []*event.Event{{ID: "e1", Tuples: []event.Tuple{{Attr: "a", Value: "b"}}}}}
		}
		var buf bytes.Buffer
		if err := WriteFrame(&buf, fr); err != nil {
			return // oversized fuzz strings may exceed MaxFrameSize
		}
		back, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("traced frame does not decode: %v", err)
		}
		if back.Trace == nil || *back.Trace != *tc {
			t.Fatalf("trace context mutated: %+v vs %+v", tc, back.Trace)
		}
		// The no-context case stays absent on the wire and after decode.
		var plain bytes.Buffer
		fr.Trace = nil
		if err := WriteFrame(&plain, fr); err != nil {
			return
		}
		if bytes.Contains(plain.Bytes(), []byte(`"trace"`)) {
			t.Fatal("untraced frame carries trace bytes")
		}
		back, err = ReadFrame(&plain)
		if err != nil || back.Trace != nil {
			t.Fatalf("untraced frame decoded with a context: %+v err %v", back.Trace, err)
		}
	})
}

// FuzzPublishBatchFrame round-trips fuzzer-shaped publishb frames through
// the wire codec: every event of the batch must survive encode/decode with
// its ID, theme, and tuples intact, in order — the batched transport must
// never reorder, merge, or drop events within a frame.
func FuzzPublishBatchFrame(f *testing.F) {
	f.Add(2, "e", "land transport\x1furban mobility", "type", "parking event")
	f.Add(0, "", "", "", "")
	f.Add(9, "burst", "", "room temperature", "20\x00c")
	f.Add(1, "uid", "\x1f\x1f", "attr\nwith\nnewlines", `va"lue`)
	f.Fuzz(func(t *testing.T, n int, id, themes, attr, value string) {
		if n < 0 || n > 64 {
			return
		}
		// JSON replaces invalid UTF-8 with U+FFFD; only valid strings are
		// expected to round-trip byte-identically.
		if !utf8.ValidString(id) || !utf8.ValidString(themes) ||
			!utf8.ValidString(attr) || !utf8.ValidString(value) {
			return
		}
		var theme []string
		if themes != "" {
			for _, tag := range bytes.Split([]byte(themes), []byte{0x1f}) {
				theme = append(theme, string(tag))
			}
		}
		evs := make([]*event.Event, n)
		for i := range evs {
			evs[i] = &event.Event{
				ID:     id + string(rune('0'+i%10)),
				Theme:  theme,
				Tuples: []event.Tuple{{Attr: attr, Value: value}},
			}
		}
		var buf bytes.Buffer
		if err := WriteFrame(&buf, &Frame{Type: FramePublishBatch, Events: evs}); err != nil {
			return // oversized batches may exceed MaxFrameSize; rejection is fine
		}
		back, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("encoded publishb frame does not decode: %v", err)
		}
		if back.Type != FramePublishBatch || len(back.Events) != n {
			t.Fatalf("batch shape lost: type %q, %d events, want %d", back.Type, len(back.Events), n)
		}
		for i, e := range back.Events {
			want := evs[i]
			if e.ID != want.ID || len(e.Theme) != len(want.Theme) || len(e.Tuples) != len(want.Tuples) {
				t.Fatalf("event %d mutated: %+v vs %+v", i, e, want)
			}
			for j := range e.Theme {
				if e.Theme[j] != want.Theme[j] {
					t.Fatalf("event %d theme %d mutated: %q vs %q", i, j, e.Theme[j], want.Theme[j])
				}
			}
			for j := range e.Tuples {
				if e.Tuples[j] != want.Tuples[j] {
					t.Fatalf("event %d tuple %d mutated: %+v vs %+v", i, j, e.Tuples[j], want.Tuples[j])
				}
			}
		}
	})
}
