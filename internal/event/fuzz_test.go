package event

import (
	"strings"
	"testing"
)

// FuzzParseSubscription asserts the parser never panics and that anything
// it accepts is valid and round-trips through String().
func FuzzParseSubscription(f *testing.F) {
	seeds := []string{
		"({power, computers}, {type = increased energy usage event~, device~ = laptop~, office = room 112})",
		"{type = parking event~}",
		"({a}, {x = y})",
		"({energy}, {temperature~ > 30, noise <= 55.5, device != laptop})",
		"({}, {a = b})",
		"(,)",
		"({{{}}})",
		"{=}",
		"{a = b, a = c}",
		"{a ~ = ~ b}",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		sub, err := ParseSubscription(input)
		if err != nil {
			return // rejection is fine; panics are not
		}
		if err := sub.Validate(); err != nil {
			t.Fatalf("parser accepted invalid subscription %q: %v", input, err)
		}
		// The rendering must re-parse (not necessarily equal: whitespace
		// inside terms is normalized by rendering).
		if _, err := ParseSubscription(sub.String()); err != nil {
			// Terms containing braces/commas/operator symbols may not
			// round-trip; only flag failures for plain terms.
			if !strings.ContainsAny(input, "{}(),=<>!~") {
				t.Fatalf("accepted %q but re-parse of %q failed: %v", input, sub.String(), err)
			}
		}
	})
}

// FuzzParseEvent asserts the event parser never panics and accepted events
// validate.
func FuzzParseEvent(f *testing.F) {
	seeds := []string{
		"({energy, appliances}, {type: increased energy consumption event, device: computer})",
		"{a: b}",
		"({}, {x: y, z: w})",
		"{::}",
		"{a: b, A: c}",
		"({t1, t2}, {a: b})",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		ev, err := ParseEvent(input)
		if err != nil {
			return
		}
		if err := ev.Validate(); err != nil {
			t.Fatalf("parser accepted invalid event %q: %v", input, err)
		}
	})
}
