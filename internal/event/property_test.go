package event

import (
	"math/rand"
	"reflect"
	"testing"
)

// randomSubscription builds a random valid subscription from a small term
// alphabet (terms contain letters and digits only, so the textual notation
// round-trips exactly).
func randomSubscription(rng *rand.Rand) *Subscription {
	words := []string{"energy", "parking", "noise", "room", "device", "laptop",
		"zone", "city", "galway", "santander", "increased", "event", "112"}
	term := func() string {
		n := 1 + rng.Intn(3)
		out := ""
		for i := 0; i < n; i++ {
			if i > 0 {
				out += " "
			}
			out += words[rng.Intn(len(words))]
		}
		return out
	}
	sub := &Subscription{}
	used := map[string]bool{}
	for len(sub.Predicates) < 1+rng.Intn(4) {
		attr := term()
		if used[attr] {
			continue
		}
		used[attr] = true
		sub.Predicates = append(sub.Predicates, Predicate{
			Attr:        attr,
			Value:       term(),
			ApproxAttr:  rng.Intn(2) == 0,
			ApproxValue: rng.Intn(2) == 0,
		})
	}
	for i := 0; i < rng.Intn(4); i++ {
		sub.Theme = append(sub.Theme, term())
	}
	return sub
}

func randomEvent(rng *rand.Rand) *Event {
	sub := randomSubscription(rng)
	e := &Event{Theme: sub.Theme}
	for _, p := range sub.Predicates {
		e.Tuples = append(e.Tuples, Tuple{Attr: p.Attr, Value: p.Value})
	}
	return e
}

// Property: String() -> Parse round-trips subscriptions built from plain
// terms.
func TestSubscriptionStringParseRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 200; trial++ {
		sub := randomSubscription(rng)
		parsed, err := ParseSubscription(sub.String())
		if err != nil {
			t.Fatalf("trial %d: %v (text %q)", trial, err, sub.String())
		}
		// Theme nil vs empty slice: normalize for comparison.
		if len(sub.Theme) == 0 {
			sub.Theme = nil
		}
		if len(parsed.Theme) == 0 {
			parsed.Theme = nil
		}
		if !reflect.DeepEqual(sub.Theme, parsed.Theme) || !reflect.DeepEqual(sub.Predicates, parsed.Predicates) {
			t.Fatalf("trial %d:\n have %+v\n want %+v", trial, parsed, sub)
		}
	}
}

// Property: String() -> Parse round-trips events, and parsed events are
// valid.
func TestEventStringParseRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for trial := 0; trial < 200; trial++ {
		e := randomEvent(rng)
		parsed, err := ParseEvent(e.String())
		if err != nil {
			t.Fatalf("trial %d: %v (text %q)", trial, err, e.String())
		}
		if err := parsed.Validate(); err != nil {
			t.Fatalf("trial %d: parsed event invalid: %v", trial, err)
		}
		if !reflect.DeepEqual(e.Tuples, parsed.Tuples) {
			t.Fatalf("trial %d: tuples differ", trial)
		}
	}
}

// Property: ExactMatch(sub.Exact(), eventOf(sub)) always holds when the
// event carries the subscription's own tuples.
func TestExactMatchReflexiveProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 200; trial++ {
		sub := randomSubscription(rng)
		e := &Event{}
		for _, p := range sub.Predicates {
			e.Tuples = append(e.Tuples, Tuple{Attr: p.Attr, Value: p.Value})
		}
		if !ExactMatch(sub, e) {
			t.Fatalf("trial %d: subscription does not match its own tuples", trial)
		}
	}
}

// Property: ApproximationDegree of Approximate() is 1 and of Exact() is 0
// for any subscription.
func TestApproximationDegreeExtremesProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	for trial := 0; trial < 100; trial++ {
		sub := randomSubscription(rng)
		if d := sub.Approximate().ApproximationDegree(); d != 1 {
			t.Fatalf("Approximate degree = %v", d)
		}
		if d := sub.Exact().ApproximationDegree(); d != 0 {
			t.Fatalf("Exact degree = %v", d)
		}
	}
}
