package event

import (
	"reflect"
	"strings"
	"testing"
)

func TestParseEventPaperExample(t *testing.T) {
	e, err := ParseEvent("({energy, appliances, building}, {type: increased energy consumption event, measurement unit: kilowatt hour, device: computer, office: room 112})")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(e.Theme, []string{"energy", "appliances", "building"}) {
		t.Errorf("theme = %v", e.Theme)
	}
	want := []Tuple{
		{Attr: "type", Value: "increased energy consumption event"},
		{Attr: "measurement unit", Value: "kilowatt hour"},
		{Attr: "device", Value: "computer"},
		{Attr: "office", Value: "room 112"},
	}
	if !reflect.DeepEqual(e.Tuples, want) {
		t.Errorf("tuples = %v", e.Tuples)
	}
}

func TestParseEventWithoutTheme(t *testing.T) {
	e, err := ParseEvent("{device: laptop}")
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Theme) != 0 || len(e.Tuples) != 1 {
		t.Errorf("event = %+v", e)
	}
}

func TestParseEventErrors(t *testing.T) {
	tests := []struct {
		name string
		give string
	}{
		{name: "empty", give: ""},
		{name: "no braces", give: "device: laptop"},
		{name: "missing colon", give: "{device laptop}"},
		{name: "tilde in event", give: "{device: laptop~}"},
		{name: "unbalanced", give: "({a}, {b: c}"},
		{name: "trailing junk", give: "{a: b} extra"},
		{name: "duplicate attr", give: "{a: b, a: c}"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ParseEvent(tt.give); err == nil {
				t.Errorf("ParseEvent(%q) succeeded, want error", tt.give)
			}
		})
	}
}

func TestParseSubscriptionPaperExample(t *testing.T) {
	s, err := ParseSubscription("({power, computers}, {type = increased energy usage event~, device~ = laptop~, office = room 112})")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s.Theme, []string{"power", "computers"}) {
		t.Errorf("theme = %v", s.Theme)
	}
	want := []Predicate{
		{Attr: "type", Value: "increased energy usage event", ApproxValue: true},
		{Attr: "device", Value: "laptop", ApproxAttr: true, ApproxValue: true},
		{Attr: "office", Value: "room 112"},
	}
	if !reflect.DeepEqual(s.Predicates, want) {
		t.Errorf("predicates = %+v", s.Predicates)
	}
}

func TestParseSubscriptionWithoutTheme(t *testing.T) {
	s, err := ParseSubscription("{type = parking event~}")
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Theme) != 0 {
		t.Errorf("theme = %v", s.Theme)
	}
	if !s.Predicates[0].ApproxValue || s.Predicates[0].ApproxAttr {
		t.Errorf("predicate = %+v", s.Predicates[0])
	}
}

func TestParseSubscriptionErrors(t *testing.T) {
	tests := []struct {
		name string
		give string
	}{
		{name: "empty", give: ""},
		{name: "missing equals", give: "{type laptop}"},
		{name: "empty body", give: "{}"},
		{name: "unclosed theme", give: "({a, {b = c})"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ParseSubscription(tt.give); err == nil {
				t.Errorf("ParseSubscription(%q) succeeded, want error", tt.give)
			}
		})
	}
}

// Round trip: String() output parses back to an equivalent object.
func TestParseRoundTrip(t *testing.T) {
	subs := []string{
		"({power, computers}, {type = increased energy usage event~, device~ = laptop~, office = room 112})",
		"({a}, {x = y})",
		"({t1, t2, t3}, {p~ = q, r = s~})",
	}
	for _, src := range subs {
		s1, err := ParseSubscription(src)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		s2, err := ParseSubscription(s1.String())
		if err != nil {
			t.Fatalf("re-parse %q: %v", s1.String(), err)
		}
		if !reflect.DeepEqual(s1, s2) {
			t.Errorf("round trip mismatch:\n%+v\n%+v", s1, s2)
		}
	}
	events := []string{
		"({energy}, {type: parking event, spot: p12})",
		"{a: b}",
	}
	for _, src := range events {
		e1, err := ParseEvent(src)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		e2, err := ParseEvent(e1.String())
		if err != nil {
			t.Fatalf("re-parse %q: %v", e1.String(), err)
		}
		if !reflect.DeepEqual(e1, e2) {
			t.Errorf("round trip mismatch:\n%+v\n%+v", e1, e2)
		}
	}
}

func TestParseEventErrorMessagesMentionParse(t *testing.T) {
	_, err := ParseEvent("{device laptop}")
	if err == nil || !strings.Contains(err.Error(), "parse event") {
		t.Errorf("error %v lacks context", err)
	}
}
