package event

import (
	"errors"
	"testing"
)

func TestEvalOp(t *testing.T) {
	tests := []struct {
		name       string
		op         Op
		eventValue string
		predValue  string
		want       bool
	}{
		{name: "eq match", op: OpEq, eventValue: "Laptop", predValue: "laptop", want: true},
		{name: "eq mismatch", op: OpEq, eventValue: "laptop", predValue: "computer", want: false},
		{name: "neq", op: OpNeq, eventValue: "laptop", predValue: "computer", want: true},
		{name: "neq equal", op: OpNeq, eventValue: "laptop", predValue: "Laptop", want: false},
		{name: "gt true", op: OpGt, eventValue: "31.5", predValue: "30", want: true},
		{name: "gt false", op: OpGt, eventValue: "29", predValue: "30", want: false},
		{name: "gt equal", op: OpGt, eventValue: "30", predValue: "30", want: false},
		{name: "gte equal", op: OpGte, eventValue: "30", predValue: "30", want: true},
		{name: "lt", op: OpLt, eventValue: "5", predValue: "10", want: true},
		{name: "lte equal", op: OpLte, eventValue: "10", predValue: "10", want: true},
		{name: "gt non-numeric event", op: OpGt, eventValue: "high", predValue: "30", want: false},
		{name: "gt non-numeric pred", op: OpGt, eventValue: "30", predValue: "high", want: false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := EvalOp(tt.op, tt.eventValue, tt.predValue); got != tt.want {
				t.Errorf("EvalOp(%v, %q, %q) = %v, want %v",
					tt.op, tt.eventValue, tt.predValue, got, tt.want)
			}
		})
	}
}

func TestOpString(t *testing.T) {
	tests := []struct {
		op   Op
		want string
	}{
		{OpEq, "="}, {OpNeq, "!="}, {OpLt, "<"}, {OpLte, "<="},
		{OpGt, ">"}, {OpGte, ">="}, {Op(99), "=?"},
	}
	for _, tt := range tests {
		if got := tt.op.String(); got != tt.want {
			t.Errorf("Op(%d).String() = %q, want %q", tt.op, got, tt.want)
		}
	}
}

func TestOpComparable(t *testing.T) {
	for _, op := range []Op{OpLt, OpLte, OpGt, OpGte} {
		if !op.Comparable() {
			t.Errorf("%v not comparable", op)
		}
	}
	for _, op := range []Op{OpEq, OpNeq} {
		if op.Comparable() {
			t.Errorf("%v comparable", op)
		}
	}
}

func TestParseSubscriptionWithOperators(t *testing.T) {
	sub, err := ParseSubscription(
		"({energy}, {temperature~ > 30, noise <= 55.5, device != laptop, type = parking event~})")
	if err != nil {
		t.Fatal(err)
	}
	want := []Predicate{
		{Attr: "temperature", Value: "30", Op: OpGt, ApproxAttr: true},
		{Attr: "noise", Value: "55.5", Op: OpLte},
		{Attr: "device", Value: "laptop", Op: OpNeq},
		{Attr: "type", Value: "parking event", Op: OpEq, ApproxValue: true},
	}
	if len(sub.Predicates) != len(want) {
		t.Fatalf("predicates = %d, want %d", len(sub.Predicates), len(want))
	}
	for i, p := range sub.Predicates {
		if p != want[i] {
			t.Errorf("predicate %d = %+v, want %+v", i, p, want[i])
		}
	}
}

func TestParseOperatorRoundTrip(t *testing.T) {
	src := "({energy}, {temperature~ > 30, noise <= 55.5, device != laptop})"
	s1, err := ParseSubscription(src)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := ParseSubscription(s1.String())
	if err != nil {
		t.Fatalf("re-parse %q: %v", s1.String(), err)
	}
	for i := range s1.Predicates {
		if s1.Predicates[i] != s2.Predicates[i] {
			t.Errorf("predicate %d round trip: %+v vs %+v", i, s1.Predicates[i], s2.Predicates[i])
		}
	}
}

func TestValidateRejectsApproxNonEquality(t *testing.T) {
	sub := &Subscription{Predicates: []Predicate{
		{Attr: "device", Value: "laptop", Op: OpNeq, ApproxValue: true},
	}}
	if !errors.Is(sub.Validate(), ErrApproxNonEquality) {
		t.Errorf("err = %v", sub.Validate())
	}
}

func TestValidateRejectsNonNumericComparison(t *testing.T) {
	sub := &Subscription{Predicates: []Predicate{
		{Attr: "temperature", Value: "hot", Op: OpGt},
	}}
	if !errors.Is(sub.Validate(), ErrNonNumericComparison) {
		t.Errorf("err = %v", sub.Validate())
	}
	ok := &Subscription{Predicates: []Predicate{
		{Attr: "temperature", Value: "30", Op: OpGt},
	}}
	if err := ok.Validate(); err != nil {
		t.Errorf("numeric comparison rejected: %v", err)
	}
}

func TestExactMatchWithOperators(t *testing.T) {
	e := &Event{Tuples: []Tuple{
		{Attr: "temperature", Value: "32"},
		{Attr: "device", Value: "laptop"},
	}}
	tests := []struct {
		name string
		sub  *Subscription
		want bool
	}{
		{
			name: "gt satisfied",
			sub: &Subscription{Predicates: []Predicate{
				{Attr: "temperature", Value: "30", Op: OpGt},
			}},
			want: true,
		},
		{
			name: "lt not satisfied",
			sub: &Subscription{Predicates: []Predicate{
				{Attr: "temperature", Value: "30", Op: OpLt},
			}},
			want: false,
		},
		{
			name: "neq satisfied",
			sub: &Subscription{Predicates: []Predicate{
				{Attr: "device", Value: "computer", Op: OpNeq},
			}},
			want: true,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := ExactMatch(tt.sub, e); got != tt.want {
				t.Errorf("ExactMatch = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestApproximateKeepsComparisonsExact(t *testing.T) {
	sub := &Subscription{Predicates: []Predicate{
		{Attr: "temperature", Value: "30", Op: OpGt},
		{Attr: "device", Value: "laptop"},
	}}
	approx := sub.Approximate()
	if approx.Predicates[0].ApproxValue {
		t.Error("comparison value relaxed by Approximate()")
	}
	if !approx.Predicates[0].ApproxAttr {
		t.Error("comparison attribute not relaxed")
	}
	if !approx.Predicates[1].ApproxValue {
		t.Error("equality value not relaxed")
	}
	if err := approx.Validate(); err != nil {
		t.Errorf("approximated subscription invalid: %v", err)
	}
}
