// Package event implements the paper's event model (§3.3) and subscription
// language model (§3.4).
//
// An event is a pair (th, av): a set of theme tags and a set of
// attribute-value tuples with unique attributes. A subscription is a pair
// (th, pr): a set of theme tags and a set of conjunctive equality
// predicates, each a quadruple (attribute, value, approxAttr, approxValue).
// The tilde operator ~ marks an attribute or value as semantically
// approximable.
package event

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"thematicep/internal/text"
)

// Validation errors.
var (
	ErrNoTuples             = errors.New("event: no tuples")
	ErrNoPredicates         = errors.New("subscription: no predicates")
	ErrDuplicateAttr        = errors.New("duplicate attribute")
	ErrEmptyTerm            = errors.New("empty attribute or value")
	ErrApproxNonEquality    = errors.New("subscription: ~ on the value requires the equality operator")
	ErrNonNumericComparison = errors.New("subscription: ordering comparison requires a numeric value")
)

// Tuple is one attribute-value pair of an event.
type Tuple struct {
	Attr  string `json:"attr"`
	Value string `json:"value"`
}

// String renders the tuple in the paper's event notation "attr: value".
func (t Tuple) String() string { return t.Attr + ": " + t.Value }

// Event is an instantaneous information item (§3.3): theme tags plus
// attribute-value tuples.
type Event struct {
	// ID identifies the event within a workload or broker; it plays no role
	// in matching.
	ID string `json:"id,omitempty"`
	// Theme is the set of theme tags the (th) component.
	Theme []string `json:"theme,omitempty"`
	// Tuples is the payload (av); attributes are unique.
	Tuples []Tuple `json:"tuples"`
}

// Validate checks the event model invariants: at least one tuple, no empty
// attribute or value, no duplicate attribute (in canonical form).
func (e *Event) Validate() error {
	if len(e.Tuples) == 0 {
		return ErrNoTuples
	}
	seen := make(map[string]bool, len(e.Tuples))
	for _, t := range e.Tuples {
		a := text.Canonical(t.Attr)
		if a == "" || text.Canonical(t.Value) == "" {
			return fmt.Errorf("%w: %q", ErrEmptyTerm, t)
		}
		if seen[a] {
			return fmt.Errorf("%w: %q", ErrDuplicateAttr, t.Attr)
		}
		seen[a] = true
	}
	return nil
}

// Value returns the value of the tuple whose attribute canonically equals
// attr, and whether it exists.
func (e *Event) Value(attr string) (string, bool) {
	want := text.Canonical(attr)
	for _, t := range e.Tuples {
		if text.Canonical(t.Attr) == want {
			return t.Value, true
		}
	}
	return "", false
}

// String renders the event in the paper's notation:
// ({theme...}, {attr: value, ...}).
func (e *Event) String() string {
	var sb strings.Builder
	sb.WriteString("({")
	sb.WriteString(strings.Join(e.Theme, ", "))
	sb.WriteString("}, {")
	parts := make([]string, len(e.Tuples))
	for i, t := range e.Tuples {
		parts[i] = t.String()
	}
	sb.WriteString(strings.Join(parts, ", "))
	sb.WriteString("})")
	return sb.String()
}

// Predicate is one conjunctive predicate of a subscription: the quadruple
// (a, v, appa, appv) of §3.4, extended with an operator (the paper's
// language keeps !=, >, < out "for discourse simplicity"; this
// implementation supports them, see ops.go). ApproxAttr/ApproxValue
// correspond to the ~ operator on the attribute and value respectively;
// value approximation is only meaningful for equality.
type Predicate struct {
	Attr        string `json:"attr"`
	Value       string `json:"value"`
	Op          Op     `json:"op,omitempty"`
	ApproxAttr  bool   `json:"approxAttr,omitempty"`
	ApproxValue bool   `json:"approxValue,omitempty"`
}

// String renders the predicate in the paper's notation, e.g. "device~ =
// laptop~" or "temperature~ > 30".
func (p Predicate) String() string {
	a, v := p.Attr, p.Value
	if p.ApproxAttr {
		a += "~"
	}
	if p.ApproxValue {
		v += "~"
	}
	return a + " " + p.Op.String() + " " + v
}

// Subscription is a pair (th, pr) of theme tags and predicates (§3.4).
type Subscription struct {
	// ID identifies the subscription to the broker and evaluation harness.
	ID string `json:"id,omitempty"`
	// Theme is the subscription theme tag set.
	Theme []string `json:"theme,omitempty"`
	// Predicates is the conjunctive predicate set.
	Predicates []Predicate `json:"predicates"`
}

// Validate checks the language model invariants.
func (s *Subscription) Validate() error {
	if len(s.Predicates) == 0 {
		return ErrNoPredicates
	}
	seen := make(map[string]bool, len(s.Predicates))
	for _, p := range s.Predicates {
		a := text.Canonical(p.Attr)
		if a == "" || text.Canonical(p.Value) == "" {
			return fmt.Errorf("%w: %q", ErrEmptyTerm, p)
		}
		if seen[a] {
			return fmt.Errorf("%w: %q", ErrDuplicateAttr, p.Attr)
		}
		seen[a] = true
		if p.Op != OpEq && p.ApproxValue {
			return fmt.Errorf("%w: %q", ErrApproxNonEquality, p)
		}
		if p.Op.Comparable() {
			if _, ok := parseNumber(p.Value); !ok {
				return fmt.Errorf("%w: %q", ErrNonNumericComparison, p)
			}
		}
	}
	return nil
}

// ApproximationDegree returns the proportion of relaxed attributes and
// values (§3.4): an exact subscription has degree 0, a fully relaxed one
// degree 1.
func (s *Subscription) ApproximationDegree() float64 {
	if len(s.Predicates) == 0 {
		return 0
	}
	relaxed := 0
	for _, p := range s.Predicates {
		if p.ApproxAttr {
			relaxed++
		}
		if p.ApproxValue {
			relaxed++
		}
	}
	return float64(relaxed) / float64(2*len(s.Predicates))
}

// Exact returns a copy of s with every ~ removed.
func (s *Subscription) Exact() *Subscription {
	out := &Subscription{
		ID:         s.ID,
		Theme:      append([]string(nil), s.Theme...),
		Predicates: make([]Predicate, len(s.Predicates)),
	}
	for i, p := range s.Predicates {
		out.Predicates[i] = Predicate{Attr: p.Attr, Value: p.Value, Op: p.Op}
	}
	return out
}

// Approximate returns a copy of s with every attribute and value relaxed
// (100% degree of approximation, as in the evaluation §5.2.3).
func (s *Subscription) Approximate() *Subscription {
	out := s.Exact()
	for i := range out.Predicates {
		out.Predicates[i].ApproxAttr = true
		if out.Predicates[i].Op == OpEq {
			out.Predicates[i].ApproxValue = true
		}
	}
	return out
}

// String renders the subscription in the paper's notation:
// ({theme...}, {a~ = v~, ...}).
func (s *Subscription) String() string {
	var sb strings.Builder
	sb.WriteString("({")
	sb.WriteString(strings.Join(s.Theme, ", "))
	sb.WriteString("}, {")
	parts := make([]string, len(s.Predicates))
	for i, p := range s.Predicates {
		parts[i] = p.String()
	}
	sb.WriteString(strings.Join(parts, ", "))
	sb.WriteString("})")
	return sb.String()
}

// ExactMatch reports whether the event satisfies the subscription under
// exact (content-based) semantics, ignoring every ~: each predicate's
// attribute must occur in the event with a canonically equal value. This is
// the SIENA-style matcher of Table 1 and the basis of the evaluation's
// ground truth (§5.2.3).
func ExactMatch(s *Subscription, e *Event) bool {
	for _, p := range s.Predicates {
		v, ok := e.Value(p.Attr)
		if !ok || !EvalOp(p.Op, v, p.Value) {
			return false
		}
	}
	return true
}

// NormalizeTheme returns the canonical, sorted, de-duplicated form of a
// theme tag set.
func NormalizeTheme(theme []string) []string {
	seen := make(map[string]bool, len(theme))
	out := make([]string, 0, len(theme))
	for _, tag := range theme {
		c := text.Canonical(tag)
		if c == "" || seen[c] {
			continue
		}
		seen[c] = true
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}
