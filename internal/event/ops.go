package event

import (
	"strconv"
	"strings"

	"thematicep/internal/text"
)

// The paper's language model keeps "Boolean and numeric operators such as
// !=, >, and <" out of the discussion "for the sake of discourse
// simplicity" (§3.4). A deployable broker needs them, so the language here
// supports them as an extension: comparison predicates are exact (never
// semantically relaxed — relaxing "temperature > 30" is not meaningful),
// and the approximate matcher short-circuits them before the semantic
// measure.

// Op is a predicate operator.
type Op int

// Supported operators. The zero value OpEq keeps plain equality the
// default, so existing literals and decoded JSON without an "op" field
// behave as before.
const (
	OpEq Op = iota // equality; the only operator the ~ relaxation applies to
	OpNeq
	OpLt
	OpLte
	OpGt
	OpGte
)

// opSymbols orders longer symbols first so the parser matches ">=" before
// ">".
var opSymbols = []struct {
	symbol string
	op     Op
}{
	{symbol: "!=", op: OpNeq},
	{symbol: ">=", op: OpGte},
	{symbol: "<=", op: OpLte},
	{symbol: ">", op: OpGt},
	{symbol: "<", op: OpLt},
	{symbol: "=", op: OpEq},
}

// String renders the operator's symbol.
func (o Op) String() string {
	for _, s := range opSymbols {
		if s.op == o {
			return s.symbol
		}
	}
	return "=?"
}

// Comparable reports whether the operator is an ordering comparison
// requiring numeric values.
func (o Op) Comparable() bool {
	switch o {
	case OpLt, OpLte, OpGt, OpGte:
		return true
	default:
		return false
	}
}

// EvalOp evaluates `eventValue op predicateValue` under exact semantics:
// equality and inequality compare canonical forms; ordering operators
// compare numerically and are false when either side is not a number
// (an event reporting "high" cannot satisfy "> 30").
func EvalOp(op Op, eventValue, predicateValue string) bool {
	switch op {
	case OpEq:
		return text.Canonical(eventValue) == text.Canonical(predicateValue)
	case OpNeq:
		return text.Canonical(eventValue) != text.Canonical(predicateValue)
	}
	ev, ok1 := parseNumber(eventValue)
	pv, ok2 := parseNumber(predicateValue)
	if !ok1 || !ok2 {
		return false
	}
	switch op {
	case OpLt:
		return ev < pv
	case OpLte:
		return ev <= pv
	case OpGt:
		return ev > pv
	case OpGte:
		return ev >= pv
	default:
		return false
	}
}

// parseNumber parses the raw (trimmed) value: canonicalization would split
// "55.5" at the decimal point.
func parseNumber(s string) (float64, bool) {
	v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	return v, err == nil
}
