package event

import (
	"encoding/json"
	"errors"
	"math"
	"reflect"
	"testing"
)

// paperEvent is the running example of §3.3.
func paperEvent() *Event {
	return &Event{
		Theme: []string{"energy", "appliances", "building"},
		Tuples: []Tuple{
			{Attr: "type", Value: "increased energy consumption event"},
			{Attr: "measurement unit", Value: "kilowatt hour"},
			{Attr: "device", Value: "computer"},
			{Attr: "office", Value: "room 112"},
		},
	}
}

// paperSubscription is the running example of §3.4.
func paperSubscription() *Subscription {
	return &Subscription{
		Theme: []string{"power", "computers"},
		Predicates: []Predicate{
			{Attr: "type", Value: "increased energy usage event", ApproxValue: true},
			{Attr: "device", Value: "laptop", ApproxAttr: true, ApproxValue: true},
			{Attr: "office", Value: "room 112"},
		},
	}
}

func TestEventValidate(t *testing.T) {
	tests := []struct {
		name    string
		event   *Event
		wantErr error
	}{
		{name: "valid", event: paperEvent(), wantErr: nil},
		{name: "no tuples", event: &Event{}, wantErr: ErrNoTuples},
		{
			name: "duplicate attr",
			event: &Event{Tuples: []Tuple{
				{Attr: "device", Value: "laptop"},
				{Attr: "Device", Value: "computer"}, // canonical duplicate
			}},
			wantErr: ErrDuplicateAttr,
		},
		{
			name:    "empty value",
			event:   &Event{Tuples: []Tuple{{Attr: "device", Value: "  "}}},
			wantErr: ErrEmptyTerm,
		},
		{
			name:    "empty attr",
			event:   &Event{Tuples: []Tuple{{Attr: "", Value: "x"}}},
			wantErr: ErrEmptyTerm,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.event.Validate()
			if !errors.Is(err, tt.wantErr) {
				t.Errorf("Validate() = %v, want %v", err, tt.wantErr)
			}
		})
	}
}

func TestSubscriptionValidate(t *testing.T) {
	if err := paperSubscription().Validate(); err != nil {
		t.Errorf("paper subscription invalid: %v", err)
	}
	var empty Subscription
	if !errors.Is(empty.Validate(), ErrNoPredicates) {
		t.Error("empty subscription should fail validation")
	}
	dup := &Subscription{Predicates: []Predicate{
		{Attr: "type", Value: "a"},
		{Attr: "TYPE", Value: "b"},
	}}
	if !errors.Is(dup.Validate(), ErrDuplicateAttr) {
		t.Error("duplicate predicate attrs should fail validation")
	}
}

func TestEventValue(t *testing.T) {
	e := paperEvent()
	v, ok := e.Value("Device")
	if !ok || v != "computer" {
		t.Errorf("Value(Device) = %q, %v", v, ok)
	}
	if _, ok := e.Value("missing"); ok {
		t.Error("Value(missing) found")
	}
}

func TestApproximationDegree(t *testing.T) {
	tests := []struct {
		name string
		sub  *Subscription
		want float64
	}{
		{name: "paper example", sub: paperSubscription(), want: 3.0 / 6.0},
		{name: "exact", sub: paperSubscription().Exact(), want: 0},
		{name: "full", sub: paperSubscription().Approximate(), want: 1},
		{name: "empty", sub: &Subscription{}, want: 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.sub.ApproximationDegree(); math.Abs(got-tt.want) > 1e-12 {
				t.Errorf("ApproximationDegree = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestExactAndApproximateDoNotAliasOriginal(t *testing.T) {
	s := paperSubscription()
	ex := s.Exact()
	ex.Predicates[0].Value = "changed"
	ex.Theme[0] = "changed"
	if s.Predicates[0].Value == "changed" || s.Theme[0] == "changed" {
		t.Error("Exact() shares memory with the original")
	}
}

func TestExactMatch(t *testing.T) {
	e := paperEvent()
	tests := []struct {
		name string
		sub  *Subscription
		want bool
	}{
		{
			name: "exact subset matches",
			sub: &Subscription{Predicates: []Predicate{
				{Attr: "device", Value: "computer"},
				{Attr: "office", Value: "room 112"},
			}},
			want: true,
		},
		{
			name: "canonicalized comparison",
			sub: &Subscription{Predicates: []Predicate{
				{Attr: "Device", Value: "Computer"},
			}},
			want: true,
		},
		{
			name: "value mismatch",
			sub: &Subscription{Predicates: []Predicate{
				{Attr: "device", Value: "laptop"},
			}},
			want: false,
		},
		{
			name: "missing attribute",
			sub: &Subscription{Predicates: []Predicate{
				{Attr: "floor", Value: "ground floor"},
			}},
			want: false,
		},
		{
			name: "tilde ignored by exact semantics",
			sub: &Subscription{Predicates: []Predicate{
				{Attr: "device", Value: "computer", ApproxAttr: true, ApproxValue: true},
			}},
			want: true,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := ExactMatch(tt.sub, e); got != tt.want {
				t.Errorf("ExactMatch = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestNormalizeTheme(t *testing.T) {
	got := NormalizeTheme([]string{"Power", "computers", "POWER", " ", "apples"})
	want := []string{"apples", "computers", "power"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("NormalizeTheme = %v, want %v", got, want)
	}
	if NormalizeTheme(nil) == nil {
		// empty non-nil slice is fine too; just must not panic
		t.Log("NormalizeTheme(nil) = nil")
	}
}

func TestStringRendering(t *testing.T) {
	e := paperEvent()
	if got := e.String(); got != "({energy, appliances, building}, {type: increased energy consumption event, measurement unit: kilowatt hour, device: computer, office: room 112})" {
		t.Errorf("Event.String = %q", got)
	}
	s := paperSubscription()
	if got := s.String(); got != "({power, computers}, {type = increased energy usage event~, device~ = laptop~, office = room 112})" {
		t.Errorf("Subscription.String = %q", got)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	e := paperEvent()
	e.ID = "e1"
	data, err := json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	var back Event
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*e, back) {
		t.Errorf("event round trip mismatch: %+v vs %+v", *e, back)
	}

	s := paperSubscription()
	s.ID = "s1"
	data, err = json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var backSub Subscription
	if err := json.Unmarshal(data, &backSub); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*s, backSub) {
		t.Errorf("subscription round trip mismatch: %+v vs %+v", *s, backSub)
	}
}
