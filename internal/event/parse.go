package event

import (
	"fmt"
	"strings"
)

// The textual notation follows the paper's examples:
//
//	event:        ({energy, appliances}, {type: increased energy consumption event, device: computer})
//	subscription: ({power, computers}, {type = increased energy usage event~, device~ = laptop~})
//
// The theme part is optional; "{...}" alone denotes an empty theme. Events
// separate attribute and value with ':', subscriptions with an operator
// (=, !=, >, >=, <, <= — the comparison operators are this implementation's
// extension beyond §3.4). A trailing '~' on an attribute or value marks it
// approximable; value approximation requires '='.

// ParseEvent parses the textual event notation.
func ParseEvent(s string) (*Event, error) {
	theme, body, err := splitThemeBody(s)
	if err != nil {
		return nil, fmt.Errorf("parse event: %w", err)
	}
	e := &Event{Theme: theme}
	for _, part := range splitList(body) {
		attr, value, ok := cutUnquoted(part, ':')
		if !ok {
			return nil, fmt.Errorf("parse event: tuple %q lacks ':'", part)
		}
		attr, value = strings.TrimSpace(attr), strings.TrimSpace(value)
		if strings.HasSuffix(attr, "~") || strings.HasSuffix(value, "~") {
			return nil, fmt.Errorf("parse event: tuple %q uses ~ (events carry no approximation)", part)
		}
		e.Tuples = append(e.Tuples, Tuple{Attr: attr, Value: value})
	}
	if err := e.Validate(); err != nil {
		return nil, fmt.Errorf("parse event: %w", err)
	}
	return e, nil
}

// ParseSubscription parses the textual subscription notation.
func ParseSubscription(s string) (*Subscription, error) {
	theme, body, err := splitThemeBody(s)
	if err != nil {
		return nil, fmt.Errorf("parse subscription: %w", err)
	}
	sub := &Subscription{Theme: theme}
	for _, part := range splitList(body) {
		attr, op, value, ok := cutPredicate(part)
		if !ok {
			return nil, fmt.Errorf("parse subscription: predicate %q lacks an operator", part)
		}
		p := Predicate{Op: op}
		attr = strings.TrimSpace(attr)
		value = strings.TrimSpace(value)
		if strings.HasSuffix(attr, "~") {
			p.ApproxAttr = true
			attr = strings.TrimSpace(strings.TrimSuffix(attr, "~"))
		}
		if strings.HasSuffix(value, "~") {
			p.ApproxValue = true
			value = strings.TrimSpace(strings.TrimSuffix(value, "~"))
		}
		p.Attr, p.Value = attr, value
		sub.Predicates = append(sub.Predicates, p)
	}
	if err := sub.Validate(); err != nil {
		return nil, fmt.Errorf("parse subscription: %w", err)
	}
	return sub, nil
}

// splitThemeBody splits "({tags}, {body})" or "{body}" into the theme tag
// list and the body list.
func splitThemeBody(s string) (theme []string, body string, err error) {
	s = strings.TrimSpace(s)
	if strings.HasPrefix(s, "(") {
		if !strings.HasSuffix(s, ")") {
			return nil, "", fmt.Errorf("unbalanced parentheses in %q", s)
		}
		s = strings.TrimSpace(s[1 : len(s)-1])
		// Expect "{theme}, {body}".
		themePart, rest, ok := cutBraceGroup(s)
		if !ok {
			return nil, "", fmt.Errorf("missing theme group in %q", s)
		}
		rest = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(rest), ","))
		bodyPart, tail, ok := cutBraceGroup(rest)
		if !ok || strings.TrimSpace(tail) != "" {
			return nil, "", fmt.Errorf("missing body group in %q", s)
		}
		for _, tag := range splitList(themePart) {
			theme = append(theme, strings.TrimSpace(tag))
		}
		return theme, bodyPart, nil
	}
	bodyPart, tail, ok := cutBraceGroup(s)
	if !ok || strings.TrimSpace(tail) != "" {
		return nil, "", fmt.Errorf("expected {...} in %q", s)
	}
	return nil, bodyPart, nil
}

// cutBraceGroup extracts the content of the leading "{...}" group and
// returns the remainder after it.
func cutBraceGroup(s string) (content, rest string, ok bool) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "{") {
		return "", "", false
	}
	depth := 0
	for i, r := range s {
		switch r {
		case '{':
			depth++
		case '}':
			depth--
			if depth == 0 {
				return s[1:i], s[i+1:], true
			}
		}
	}
	return "", "", false
}

// splitList splits a comma-separated list, ignoring empty items.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// cutUnquoted splits s at the first occurrence of sep.
func cutUnquoted(s string, sep byte) (before, after string, ok bool) {
	i := strings.IndexByte(s, sep)
	if i < 0 {
		return s, "", false
	}
	return s[:i], s[i+1:], true
}

// cutPredicate splits a predicate at its operator, matching the longest
// symbol first ("!=" before "=", ">=" before ">").
func cutPredicate(s string) (attr string, op Op, value string, ok bool) {
	best := -1
	var bestSym string
	var bestOp Op
	for _, cand := range opSymbols {
		i := strings.Index(s, cand.symbol)
		if i < 0 {
			continue
		}
		// Prefer the earliest operator; at the same position prefer the
		// longer symbol (opSymbols is ordered longest-first, so the first
		// match at a position wins).
		if best == -1 || i < best {
			best = i
			bestSym = cand.symbol
			bestOp = cand.op
		}
	}
	if best < 0 {
		return s, OpEq, "", false
	}
	return s[:best], bestOp, s[best+len(bestSym):], true
}
