package cep

import (
	"math"
	"testing"
	"time"
)

func TestNegationDetectsAbsence(t *testing.T) {
	n := NewNegation(time.Minute, 0,
		AttrEquals("type", "overload"), AttrEquals("type", "shutdown"))

	if got := n.Observe(ev("overload", 0.9, 0)); len(got) != 0 {
		t.Fatalf("premature detection: %v", got)
	}
	// An unrelated event after the window closes triggers the emission.
	got := n.Observe(ev("other", 1, 2*time.Minute))
	if len(got) != 1 {
		t.Fatalf("detections = %d, want 1", len(got))
	}
	if !almostEqual(got[0].Probability, 0.9) {
		t.Errorf("probability = %v, want 0.9", got[0].Probability)
	}
}

func TestNegationCanceledByCertainEvent(t *testing.T) {
	n := NewNegation(time.Minute, 0,
		AttrEquals("type", "overload"), AttrEquals("type", "shutdown"))
	n.Observe(ev("overload", 0.9, 0))
	n.Observe(ev("shutdown", 1.0, 30*time.Second))
	if got := n.Observe(ev("other", 1, 2*time.Minute)); len(got) != 0 {
		t.Errorf("canceled instance detected: %v", got)
	}
}

func TestNegationUncertainCancelDiscounts(t *testing.T) {
	n := NewNegation(time.Minute, 0,
		AttrEquals("type", "overload"), AttrEquals("type", "shutdown"))
	n.Observe(ev("overload", 0.8, 0))
	n.Observe(ev("shutdown", 0.5, 30*time.Second))
	got := n.Flush(t0.Add(2 * time.Minute))
	if len(got) != 1 {
		t.Fatalf("detections = %d, want 1", len(got))
	}
	if want := 0.8 * 0.5; !almostEqual(got[0].Probability, want) {
		t.Errorf("probability = %v, want %v", got[0].Probability, want)
	}
}

func TestNegationCancelOutsideWindowIgnored(t *testing.T) {
	n := NewNegation(time.Minute, 0,
		AttrEquals("type", "overload"), AttrEquals("type", "shutdown"))
	n.Observe(ev("overload", 0.8, 0))
	// This shutdown arrives after the window closed: the expiry fires first,
	// so the absence is already detected.
	got := n.Observe(ev("shutdown", 1.0, 3*time.Minute))
	if len(got) != 1 {
		t.Fatalf("detections = %d, want 1", len(got))
	}
	if !almostEqual(got[0].Probability, 0.8) {
		t.Errorf("probability = %v", got[0].Probability)
	}
}

func TestNegationThreshold(t *testing.T) {
	n := NewNegation(time.Minute, 0.5,
		AttrEquals("type", "overload"), AttrEquals("type", "shutdown"))
	n.Observe(ev("overload", 0.8, 0))
	n.Observe(ev("shutdown", 0.6, time.Second)) // discount to 0.32 < 0.5
	if got := n.Flush(t0.Add(2 * time.Minute)); len(got) != 0 {
		t.Errorf("below-threshold absence detected: %v", got)
	}
}

func TestNegationMultipleTriggers(t *testing.T) {
	n := NewNegation(time.Minute, 0,
		AttrEquals("type", "overload"), AttrEquals("type", "shutdown"))
	n.Observe(ev("overload", 0.9, 0))
	n.Observe(ev("overload", 0.7, 10*time.Second))
	got := n.Flush(t0.Add(5 * time.Minute))
	if len(got) != 2 {
		t.Fatalf("detections = %d, want 2", len(got))
	}
	sum := got[0].Probability + got[1].Probability
	if math.Abs(sum-1.6) > 1e-12 {
		t.Errorf("probabilities = %v", got)
	}
}

func TestNegationFlushIdempotent(t *testing.T) {
	n := NewNegation(time.Minute, 0,
		AttrEquals("type", "overload"), AttrEquals("type", "shutdown"))
	n.Observe(ev("overload", 0.9, 0))
	if got := n.Flush(t0.Add(2 * time.Minute)); len(got) != 1 {
		t.Fatalf("first flush = %d detections", len(got))
	}
	if got := n.Flush(t0.Add(3 * time.Minute)); len(got) != 0 {
		t.Errorf("second flush re-emitted: %v", got)
	}
}
