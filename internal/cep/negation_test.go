package cep

import (
	"math"
	"testing"
	"time"
)

func TestNegationDetectsAbsence(t *testing.T) {
	clk := newClock()
	n := NewNegation(time.Minute, 0,
		AttrEquals("type", "overload"), AttrEquals("type", "shutdown")).WithClock(clk)

	if got := observeAt(n, clk, 0, "overload", 0.9); len(got) != 0 {
		t.Fatalf("premature detection: %v", got)
	}
	// An unrelated event after the window closes triggers the emission.
	got := observeAt(n, clk, 2*time.Minute, "other", 1)
	if len(got) != 1 {
		t.Fatalf("detections = %d, want 1", len(got))
	}
	if !almostEqual(got[0].Probability, 0.9) {
		t.Errorf("probability = %v, want 0.9", got[0].Probability)
	}
}

func TestNegationCanceledByCertainEvent(t *testing.T) {
	clk := newClock()
	n := NewNegation(time.Minute, 0,
		AttrEquals("type", "overload"), AttrEquals("type", "shutdown")).WithClock(clk)
	observeAt(n, clk, 0, "overload", 0.9)
	observeAt(n, clk, 30*time.Second, "shutdown", 1.0)
	if got := observeAt(n, clk, 2*time.Minute, "other", 1); len(got) != 0 {
		t.Errorf("canceled instance detected: %v", got)
	}
}

func TestNegationUncertainCancelDiscounts(t *testing.T) {
	clk := newClock()
	n := NewNegation(time.Minute, 0,
		AttrEquals("type", "overload"), AttrEquals("type", "shutdown")).WithClock(clk)
	observeAt(n, clk, 0, "overload", 0.8)
	observeAt(n, clk, 30*time.Second, "shutdown", 0.5)
	clk.Advance(90 * time.Second)
	got := n.Flush(clk.Now())
	if len(got) != 1 {
		t.Fatalf("detections = %d, want 1", len(got))
	}
	if want := 0.8 * 0.5; !almostEqual(got[0].Probability, want) {
		t.Errorf("probability = %v, want %v", got[0].Probability, want)
	}
}

func TestNegationCancelOutsideWindowIgnored(t *testing.T) {
	clk := newClock()
	n := NewNegation(time.Minute, 0,
		AttrEquals("type", "overload"), AttrEquals("type", "shutdown")).WithClock(clk)
	observeAt(n, clk, 0, "overload", 0.8)
	// This shutdown arrives after the window closed: the expiry fires first,
	// so the absence is already detected.
	got := observeAt(n, clk, 3*time.Minute, "shutdown", 1.0)
	if len(got) != 1 {
		t.Fatalf("detections = %d, want 1", len(got))
	}
	if !almostEqual(got[0].Probability, 0.8) {
		t.Errorf("probability = %v", got[0].Probability)
	}
}

func TestNegationThreshold(t *testing.T) {
	clk := newClock()
	n := NewNegation(time.Minute, 0.5,
		AttrEquals("type", "overload"), AttrEquals("type", "shutdown")).WithClock(clk)
	observeAt(n, clk, 0, "overload", 0.8)
	observeAt(n, clk, time.Second, "shutdown", 0.6) // discount to 0.32 < 0.5
	if got := n.Flush(t0.Add(2 * time.Minute)); len(got) != 0 {
		t.Errorf("below-threshold absence detected: %v", got)
	}
}

func TestNegationMultipleTriggers(t *testing.T) {
	clk := newClock()
	n := NewNegation(time.Minute, 0,
		AttrEquals("type", "overload"), AttrEquals("type", "shutdown")).WithClock(clk)
	observeAt(n, clk, 0, "overload", 0.9)
	observeAt(n, clk, 10*time.Second, "overload", 0.7)
	if got := n.Occupancy(); got != 2 {
		t.Fatalf("occupancy = %d, want 2", got)
	}
	got := n.Flush(t0.Add(5 * time.Minute))
	if len(got) != 2 {
		t.Fatalf("detections = %d, want 2", len(got))
	}
	sum := got[0].Probability + got[1].Probability
	if math.Abs(sum-1.6) > 1e-12 {
		t.Errorf("probabilities = %v", got)
	}
	if got := n.Occupancy(); got != 0 {
		t.Errorf("occupancy after flush = %d, want 0", got)
	}
}

func TestNegationFlushIdempotent(t *testing.T) {
	clk := newClock()
	n := NewNegation(time.Minute, 0,
		AttrEquals("type", "overload"), AttrEquals("type", "shutdown")).WithClock(clk)
	observeAt(n, clk, 0, "overload", 0.9)
	if got := n.Flush(t0.Add(2 * time.Minute)); len(got) != 1 {
		t.Fatalf("first flush = %d detections", len(got))
	}
	if got := n.Flush(t0.Add(3 * time.Minute)); len(got) != 0 {
		t.Errorf("second flush re-emitted: %v", got)
	}
}
