package cep

import (
	"testing"
	"time"
)

func TestCountFiresAtExpectedThreshold(t *testing.T) {
	clk := newClock()
	c := NewCount(time.Minute, 2.0, AttrEquals("type", "spike")).WithClock(clk)

	if got := observeAt(c, clk, 0, "spike", 0.9); len(got) != 0 {
		t.Fatalf("fired at expectation 0.9: %v", got)
	}
	if got := observeAt(c, clk, 10*time.Second, "spike", 0.8); len(got) != 0 {
		t.Fatalf("fired at expectation 1.7: %v", got)
	}
	got := observeAt(c, clk, 20*time.Second, "spike", 0.7)
	if len(got) != 1 {
		t.Fatalf("expectation 2.4 did not fire: %v", got)
	}
	if len(got[0].Events) != 3 {
		t.Errorf("constituents = %d, want 3", len(got[0].Events))
	}
	if p := got[0].Probability; p <= 0 || p > 1 {
		t.Errorf("probability = %v", p)
	}
}

func TestCountIgnoresNonMatching(t *testing.T) {
	clk := newClock()
	c := NewCount(time.Minute, 1.0, AttrEquals("type", "spike")).WithClock(clk)
	if got := observeAt(c, clk, 0, "other", 1.0); len(got) != 0 {
		t.Fatalf("non-matching event fired: %v", got)
	}
	if c.Expected() != 0 {
		t.Errorf("Expected = %v", c.Expected())
	}
}

func TestCountWindowEviction(t *testing.T) {
	clk := newClock()
	c := NewCount(time.Minute, 2.0, AttrEquals("type", "spike")).WithClock(clk)
	observeAt(c, clk, 0, "spike", 1.0)
	observeAt(c, clk, 10*time.Second, "spike", 0.5)
	// Two minutes later only the new event remains in the window.
	if got := observeAt(c, clk, 2*time.Minute, "spike", 1.0); len(got) != 0 {
		t.Fatalf("expired events counted: %v", got)
	}
	if want := 1.0; c.Expected() != want {
		t.Errorf("Expected = %v, want %v", c.Expected(), want)
	}
}

func TestCountFiresOncePerExcursion(t *testing.T) {
	clk := newClock()
	c := NewCount(time.Minute, 1.5, AttrEquals("type", "spike")).WithClock(clk)
	observeAt(c, clk, 0, "spike", 1.0)
	if got := observeAt(c, clk, time.Second, "spike", 1.0); len(got) != 1 {
		t.Fatalf("did not fire: %v", got)
	}
	// Still above threshold: no duplicate detection.
	if got := observeAt(c, clk, 2*time.Second, "spike", 1.0); len(got) != 0 {
		t.Fatalf("duplicate detection: %v", got)
	}
	// Window empties, then refills: fires again.
	if got := observeAt(c, clk, 5*time.Minute, "spike", 1.0); len(got) != 0 {
		t.Fatalf("fired with expectation 1.0: %v", got)
	}
	if got := observeAt(c, clk, 5*time.Minute+time.Second, "spike", 1.0); len(got) != 1 {
		t.Fatalf("did not re-arm: %v", got)
	}
}

func TestCountCertainEventsBehaveLikeCounting(t *testing.T) {
	clk := newClock()
	c := NewCount(time.Minute, 3.0, AttrEquals("type", "spike")).WithClock(clk)
	observeAt(c, clk, 0, "spike", 1.0)
	observeAt(c, clk, time.Second, "spike", 1.0)
	got := observeAt(c, clk, 2*time.Second, "spike", 1.0)
	if len(got) != 1 {
		t.Fatalf("3 certain events did not reach count 3")
	}
	if got[0].Probability != 1 {
		t.Errorf("probability = %v, want 1 for certain events", got[0].Probability)
	}
}

func TestCountBoundaryEventStaysInWindow(t *testing.T) {
	// An event whose age is EXACTLY the window length is still inside:
	// eviction uses a strict > comparison (now.Sub(At) <= window keeps).
	clk := newClock()
	c := NewCount(time.Minute, 2.0, AttrEquals("type", "spike")).WithClock(clk)
	observeAt(c, clk, 0, "spike", 1.0)
	got := observeAt(c, clk, time.Minute, "spike", 1.0)
	if len(got) != 1 {
		t.Fatalf("boundary event evicted: expectation = %v", c.Expected())
	}
	// One nanosecond past the boundary the first event leaves the window.
	c2 := NewCount(time.Minute, 2.0, AttrEquals("type", "spike"))
	c2.Observe(ev("spike", 1.0, 0))
	if got := c2.Observe(ev("spike", 1.0, time.Minute+time.Nanosecond)); len(got) != 0 {
		t.Fatalf("event beyond boundary still counted: %v", got)
	}
}

func TestCountOutOfOrderTimestamps(t *testing.T) {
	// A late event with an earlier At must not evict fresher events:
	// eviction compares against the newcomer's At, and negative ages pass
	// the <= window test.
	c := NewCount(time.Minute, 3.0, AttrEquals("type", "spike"))
	c.Observe(ev("spike", 1.0, 10*time.Second))
	c.Observe(ev("spike", 1.0, 20*time.Second))
	got := c.Observe(ev("spike", 1.0, 5*time.Second)) // late straggler
	if len(got) != 1 {
		t.Fatalf("out-of-order event broke the window: expectation = %v", c.Expected())
	}
	if c.Occupancy() != 3 {
		t.Errorf("occupancy = %d, want 3", c.Occupancy())
	}
}

func TestCountThresholdCrossingOnEvict(t *testing.T) {
	// Firing state must re-arm when eviction (not a lull in matches) drops
	// the expectation below the threshold — including via Flush with no
	// event arriving at all.
	clk := newClock()
	c := NewCount(time.Minute, 2.0, AttrEquals("type", "spike")).WithClock(clk)
	observeAt(c, clk, 0, "spike", 1.0)
	if got := observeAt(c, clk, time.Second, "spike", 1.0); len(got) != 1 {
		t.Fatalf("did not fire: %v", got)
	}
	// Quiet stream: Flush drains the window and re-arms.
	if got := c.Flush(t0.Add(3 * time.Minute)); len(got) != 0 {
		t.Fatalf("count flush emitted: %v", got)
	}
	if c.Occupancy() != 0 {
		t.Fatalf("occupancy after flush = %d", c.Occupancy())
	}
	// Next excursion fires again.
	observeAt(c, clk, 4*time.Minute, "spike", 1.0)
	if got := observeAt(c, clk, 4*time.Minute+time.Second, "spike", 1.0); len(got) != 1 {
		t.Errorf("did not fire after flush re-arm: %v", got)
	}
}

func TestCountEvictRearmsWithinObserve(t *testing.T) {
	clk := newClock()
	c := NewCount(time.Minute, 2.0, AttrEquals("type", "spike")).WithClock(clk)
	observeAt(c, clk, 0, "spike", 1.0)
	if got := observeAt(c, clk, time.Second, "spike", 1.0); len(got) != 1 {
		t.Fatalf("did not fire: %v", got)
	}
	// Far-future events evict the old excursion inside Observe; the second
	// new event crosses the threshold again and must fire.
	observeAt(c, clk, 10*time.Minute, "spike", 1.0)
	if got := observeAt(c, clk, 10*time.Minute+time.Second, "spike", 1.0); len(got) != 1 {
		t.Errorf("eviction inside Observe did not re-arm: %v", got)
	}
}
