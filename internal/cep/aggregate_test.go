package cep

import (
	"testing"
	"time"
)

func TestCountFiresAtExpectedThreshold(t *testing.T) {
	c := NewCount(time.Minute, 2.0, AttrEquals("type", "spike"))

	if got := c.Observe(ev("spike", 0.9, 0)); len(got) != 0 {
		t.Fatalf("fired at expectation 0.9: %v", got)
	}
	if got := c.Observe(ev("spike", 0.8, 10*time.Second)); len(got) != 0 {
		t.Fatalf("fired at expectation 1.7: %v", got)
	}
	got := c.Observe(ev("spike", 0.7, 20*time.Second))
	if len(got) != 1 {
		t.Fatalf("expectation 2.4 did not fire: %v", got)
	}
	if len(got[0].Events) != 3 {
		t.Errorf("constituents = %d, want 3", len(got[0].Events))
	}
	if p := got[0].Probability; p <= 0 || p > 1 {
		t.Errorf("probability = %v", p)
	}
}

func TestCountIgnoresNonMatching(t *testing.T) {
	c := NewCount(time.Minute, 1.0, AttrEquals("type", "spike"))
	if got := c.Observe(ev("other", 1.0, 0)); len(got) != 0 {
		t.Fatalf("non-matching event fired: %v", got)
	}
	if c.Expected() != 0 {
		t.Errorf("Expected = %v", c.Expected())
	}
}

func TestCountWindowEviction(t *testing.T) {
	c := NewCount(time.Minute, 2.0, AttrEquals("type", "spike"))
	c.Observe(ev("spike", 1.0, 0))
	c.Observe(ev("spike", 0.5, 10*time.Second))
	// Two minutes later only the new event remains in the window.
	if got := c.Observe(ev("spike", 1.0, 2*time.Minute)); len(got) != 0 {
		t.Fatalf("expired events counted: %v", got)
	}
	if want := 1.0; c.Expected() != want {
		t.Errorf("Expected = %v, want %v", c.Expected(), want)
	}
}

func TestCountFiresOncePerExcursion(t *testing.T) {
	c := NewCount(time.Minute, 1.5, AttrEquals("type", "spike"))
	c.Observe(ev("spike", 1.0, 0))
	if got := c.Observe(ev("spike", 1.0, time.Second)); len(got) != 1 {
		t.Fatalf("did not fire: %v", got)
	}
	// Still above threshold: no duplicate detection.
	if got := c.Observe(ev("spike", 1.0, 2*time.Second)); len(got) != 0 {
		t.Fatalf("duplicate detection: %v", got)
	}
	// Window empties, then refills: fires again.
	if got := c.Observe(ev("spike", 1.0, 5*time.Minute)); len(got) != 0 {
		t.Fatalf("fired with expectation 1.0: %v", got)
	}
	if got := c.Observe(ev("spike", 1.0, 5*time.Minute+time.Second)); len(got) != 1 {
		t.Fatalf("did not re-arm: %v", got)
	}
}

func TestCountCertainEventsBehaveLikeCounting(t *testing.T) {
	c := NewCount(time.Minute, 3.0, AttrEquals("type", "spike"))
	c.Observe(ev("spike", 1.0, 0))
	c.Observe(ev("spike", 1.0, time.Second))
	got := c.Observe(ev("spike", 1.0, 2*time.Second))
	if len(got) != 1 {
		t.Fatalf("3 certain events did not reach count 3")
	}
	if got[0].Probability != 1 {
		t.Errorf("probability = %v, want 1 for certain events", got[0].Probability)
	}
}
