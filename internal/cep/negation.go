package cep

import (
	"sync"
	"time"

	"thematicep/internal/telemetry"
)

// Negation detects the ABSENCE of a canceling event after a trigger:
// "A not followed by B within w" (e.g. increased consumption with no
// corresponding shutdown event). Time advances with observed event time;
// a detection for a trigger at time t is emitted once an event with
// timestamp beyond t+w arrives, or when Flush is called with such a time.
//
// The detection's probability is the trigger's probability discounted by
// the strongest canceling candidate seen: P = P(trigger) * (1 - maxP(B)).
// A certain B (probability 1) cancels outright; an uncertain B only lowers
// confidence — the uncertainty semantics of CEP over probabilistic events.
type Negation struct {
	trigger   Filter
	absent    Filter
	window    time.Duration
	threshold float64
	clock     telemetry.Clock

	mu   sync.Mutex
	open []negInstance
}

type negInstance struct {
	trigger    UncertainEvent
	maxCancelP float64
}

// NewNegation builds a negation pattern.
func NewNegation(window time.Duration, threshold float64, trigger, absent Filter) *Negation {
	return &Negation{
		trigger:   trigger,
		absent:    absent,
		window:    window,
		threshold: threshold,
		clock:     telemetry.System,
	}
}

// WithClock replaces the clock used to stamp events that arrive without a
// timestamp. Returns the pattern for chaining.
func (n *Negation) WithClock(clock telemetry.Clock) *Negation {
	n.clock = clock
	return n
}

// Observe feeds one event; completed (expired) absences are returned.
func (n *Negation) Observe(e UncertainEvent) []Detection {
	if e.At.IsZero() {
		e.At = n.clock.Now()
	}
	n.mu.Lock()
	defer n.mu.Unlock()

	out := n.expire(e.At)
	if n.absent(e.Event) {
		for i := range n.open {
			if e.At.Sub(n.open[i].trigger.At) <= n.window && e.Probability > n.open[i].maxCancelP {
				n.open[i].maxCancelP = e.Probability
			}
		}
	}
	if n.trigger(e.Event) {
		n.open = append(n.open, negInstance{trigger: e})
	}
	return out
}

// Flush advances event time without an event, emitting detections whose
// windows have closed by now.
func (n *Negation) Flush(now time.Time) []Detection {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.expire(now)
}

// expire emits and drops instances whose window closed before now.
func (n *Negation) expire(now time.Time) []Detection {
	var out []Detection
	keep := n.open[:0]
	for _, inst := range n.open {
		if now.Sub(inst.trigger.At) <= n.window {
			keep = append(keep, inst)
			continue
		}
		p := inst.trigger.Probability * (1 - inst.maxCancelP)
		if p >= n.threshold && p > 0 {
			out = append(out, Detection{
				Events:      []UncertainEvent{inst.trigger},
				Probability: p,
			})
		}
	}
	n.open = keep
	return out
}

// Occupancy reports the number of pending (unexpired) trigger instances.
func (n *Negation) Occupancy() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.open)
}
