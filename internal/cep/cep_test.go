package cep

import (
	"math"
	"testing"
	"time"

	"thematicep/internal/event"
	"thematicep/internal/telemetry"
)

var t0 = time.Date(2026, 7, 5, 12, 0, 0, 0, time.UTC)

// ev builds an uncertain event with an explicit event-time offset from t0,
// for tests that exercise event-time semantics directly (out-of-order
// arrivals, Feed).
func ev(typ string, prob float64, at time.Duration) UncertainEvent {
	e := raw(typ, prob)
	e.At = t0.Add(at)
	return e
}

// raw builds an uncertain event WITHOUT a timestamp; the observing pattern
// stamps it from its injected clock.
func raw(typ string, prob float64) UncertainEvent {
	return UncertainEvent{
		Event: &event.Event{Tuples: []event.Tuple{
			{Attr: "type", Value: typ},
		}},
		Probability: prob,
	}
}

// newClock returns a Manual clock at t0. Tests drive pattern time through
// it instead of stamping At, so eviction and expiry exercise the injected
// clock path deterministically.
func newClock() *telemetry.Manual { return telemetry.NewManual(t0) }

// observeAt moves the clock to t0+off and observes a timestampless event.
func observeAt(p Pattern, clk *telemetry.Manual, off time.Duration, typ string, prob float64) []Detection {
	clk.Advance(t0.Add(off).Sub(clk.Now()))
	return p.Observe(raw(typ, prob))
}

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestAttrEqualsFilter(t *testing.T) {
	f := AttrEquals("type", "parking event")
	if !f(raw("Parking Event", 1).Event) {
		t.Error("canonical equality failed")
	}
	if f(raw("energy event", 1).Event) {
		t.Error("mismatched value matched")
	}
	if f(&event.Event{Tuples: []event.Tuple{{Attr: "other", Value: "x"}}}) {
		t.Error("missing attribute matched")
	}
}

func TestHasAttr(t *testing.T) {
	f := HasAttr("type")
	if !f(raw("x", 1).Event) || f(&event.Event{Tuples: []event.Tuple{{Attr: "a", Value: "b"}}}) {
		t.Error("HasAttr wrong")
	}
}

func TestSequenceDetects(t *testing.T) {
	clk := newClock()
	seq := NewSequence(time.Minute, 0,
		AttrEquals("type", "a"), AttrEquals("type", "b")).WithClock(clk)

	if got := observeAt(seq, clk, 0, "a", 0.8); len(got) != 0 {
		t.Fatalf("premature detection: %v", got)
	}
	got := observeAt(seq, clk, 10*time.Second, "b", 0.5)
	if len(got) != 1 {
		t.Fatalf("detections = %d, want 1", len(got))
	}
	if !almostEqual(got[0].Probability, 0.4) {
		t.Errorf("probability = %v, want 0.4", got[0].Probability)
	}
	if len(got[0].Events) != 2 {
		t.Errorf("constituents = %d", len(got[0].Events))
	}
	if got[0].Events[0].At != t0 {
		t.Errorf("clock stamping: first constituent At = %v, want %v", got[0].Events[0].At, t0)
	}
}

func TestSequenceRespectsOrder(t *testing.T) {
	clk := newClock()
	seq := NewSequence(time.Minute, 0,
		AttrEquals("type", "a"), AttrEquals("type", "b")).WithClock(clk)
	observeAt(seq, clk, 0, "b", 1) // b before a: no instance
	if got := observeAt(seq, clk, time.Second, "a", 1); len(got) != 0 {
		t.Errorf("out-of-order detected: %v", got)
	}
}

func TestSequenceWindowExpiry(t *testing.T) {
	clk := newClock()
	seq := NewSequence(time.Minute, 0,
		AttrEquals("type", "a"), AttrEquals("type", "b")).WithClock(clk)
	observeAt(seq, clk, 0, "a", 1)
	if got := observeAt(seq, clk, 2*time.Minute, "b", 1); len(got) != 0 {
		t.Errorf("expired instance completed: %v", got)
	}
}

func TestSequenceThreshold(t *testing.T) {
	clk := newClock()
	seq := NewSequence(time.Minute, 0.5,
		AttrEquals("type", "a"), AttrEquals("type", "b")).WithClock(clk)
	observeAt(seq, clk, 0, "a", 0.4)
	if got := observeAt(seq, clk, time.Second, "b", 0.6); len(got) != 0 {
		t.Errorf("0.24 < 0.5 threshold but detected: %v", got)
	}
	observeAt(seq, clk, 2*time.Second, "a", 0.9)
	// Two open instances: (0.4) and (0.9). Only the second clears the
	// threshold when completed with b@0.9.
	if got := observeAt(seq, clk, 3*time.Second, "b", 0.9); len(got) != 1 {
		t.Errorf("0.81 >= 0.5 but detections = %d", len(got))
	}
}

func TestSequenceMultipleOpenInstances(t *testing.T) {
	clk := newClock()
	seq := NewSequence(time.Minute, 0,
		AttrEquals("type", "a"), AttrEquals("type", "b")).WithClock(clk)
	observeAt(seq, clk, 0, "a", 0.5)
	observeAt(seq, clk, time.Second, "a", 0.7)
	got := observeAt(seq, clk, 2*time.Second, "b", 1)
	if len(got) != 2 {
		t.Fatalf("detections = %d, want 2 (one per open instance)", len(got))
	}
}

func TestSequenceSingleStep(t *testing.T) {
	clk := newClock()
	seq := NewSequence(time.Minute, 0.3, AttrEquals("type", "a")).WithClock(clk)
	if got := observeAt(seq, clk, 0, "a", 0.6); len(got) != 1 || !almostEqual(got[0].Probability, 0.6) {
		t.Errorf("single-step sequence: %v", got)
	}
	if got := observeAt(seq, clk, time.Second, "a", 0.2); len(got) != 0 {
		t.Errorf("below threshold detected: %v", got)
	}
}

func TestSequenceThreeSteps(t *testing.T) {
	clk := newClock()
	seq := NewSequence(time.Minute, 0,
		AttrEquals("type", "a"), AttrEquals("type", "b"), AttrEquals("type", "c")).WithClock(clk)
	observeAt(seq, clk, 0, "a", 0.9)
	observeAt(seq, clk, time.Second, "b", 0.8)
	got := observeAt(seq, clk, 2*time.Second, "c", 0.7)
	if len(got) != 1 {
		t.Fatalf("detections = %d", len(got))
	}
	if !almostEqual(got[0].Probability, 0.9*0.8*0.7) {
		t.Errorf("probability = %v", got[0].Probability)
	}
}

func TestSequenceFlushEvictsAndReportsOccupancy(t *testing.T) {
	clk := newClock()
	seq := NewSequence(time.Minute, 0,
		AttrEquals("type", "a"), AttrEquals("type", "b")).WithClock(clk)
	observeAt(seq, clk, 0, "a", 1)
	if got := seq.Occupancy(); got != 1 {
		t.Fatalf("occupancy = %d, want 1", got)
	}
	if got := seq.Flush(t0.Add(2 * time.Minute)); len(got) != 0 {
		t.Fatalf("sequence flush emitted: %v", got)
	}
	if got := seq.Occupancy(); got != 0 {
		t.Errorf("occupancy after flush = %d, want 0", got)
	}
}

func TestConjunctionAnyOrder(t *testing.T) {
	for _, order := range [][2]string{{"a", "b"}, {"b", "a"}} {
		clk := newClock()
		c := NewConjunction(time.Minute, 0,
			AttrEquals("type", "a"), AttrEquals("type", "b")).WithClock(clk)
		observeAt(c, clk, 0, order[0], 0.5)
		got := observeAt(c, clk, time.Second, order[1], 0.4)
		if len(got) != 1 {
			t.Fatalf("order %v: detections = %d", order, len(got))
		}
		if !almostEqual(got[0].Probability, 0.2) {
			t.Errorf("order %v: probability = %v", order, got[0].Probability)
		}
	}
}

func TestConjunctionWindowExpiry(t *testing.T) {
	clk := newClock()
	c := NewConjunction(time.Minute, 0,
		AttrEquals("type", "a"), AttrEquals("type", "b")).WithClock(clk)
	observeAt(c, clk, 0, "a", 1)
	if got := observeAt(c, clk, 2*time.Minute, "b", 1); len(got) != 0 {
		t.Errorf("expired conjunction detected: %v", got)
	}
}

func TestConjunctionThreshold(t *testing.T) {
	clk := newClock()
	c := NewConjunction(time.Minute, 0.5,
		AttrEquals("type", "a"), AttrEquals("type", "b")).WithClock(clk)
	observeAt(c, clk, 0, "a", 0.6)
	if got := observeAt(c, clk, time.Second, "b", 0.6); len(got) != 0 {
		t.Errorf("below-threshold conjunction detected: %v", got)
	}
}

func TestConjunctionFlushEvictsAndReportsOccupancy(t *testing.T) {
	clk := newClock()
	c := NewConjunction(time.Minute, 0,
		AttrEquals("type", "a"), AttrEquals("type", "b")).WithClock(clk)
	observeAt(c, clk, 0, "a", 1)
	observeAt(c, clk, time.Second, "a", 1)
	if got := c.Occupancy(); got != 2 {
		t.Fatalf("occupancy = %d, want 2", got)
	}
	if got := c.Flush(t0.Add(2 * time.Minute)); len(got) != 0 {
		t.Fatalf("conjunction flush emitted: %v", got)
	}
	if got := c.Occupancy(); got != 0 {
		t.Errorf("occupancy after flush = %d, want 0", got)
	}
}

func TestFeedDrainsChannel(t *testing.T) {
	seq := NewSequence(time.Minute, 0, AttrEquals("type", "a"))
	ch := make(chan UncertainEvent, 4)
	ch <- ev("a", 0.9, 0)
	ch <- ev("x", 0.9, time.Second)
	ch <- ev("a", 0.8, 2*time.Second)
	close(ch)
	var got []Detection
	Feed(ch, seq, func(d Detection) { got = append(got, d) })
	if len(got) != 2 {
		t.Errorf("detections = %d, want 2", len(got))
	}
}

func TestFeedGoroutineShutdown(t *testing.T) {
	seq := NewSequence(time.Minute, 0, AttrEquals("type", "a"))
	ch := make(chan UncertainEvent)
	done := make(chan struct{})
	go func() {
		Feed(ch, seq, func(Detection) {})
		close(done)
	}()
	ch <- ev("a", 1, 0)
	close(ch)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Feed did not return after channel close")
	}
}

func TestEmptyPatterns(t *testing.T) {
	if got := NewSequence(time.Minute, 0).Observe(ev("a", 1, 0)); got != nil {
		t.Error("empty sequence detected something")
	}
	if got := NewConjunction(time.Minute, 0).Observe(ev("a", 1, 0)); got != nil {
		t.Error("empty conjunction detected something")
	}
}
