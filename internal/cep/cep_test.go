package cep

import (
	"math"
	"testing"
	"time"

	"thematicep/internal/event"
)

var t0 = time.Date(2026, 7, 5, 12, 0, 0, 0, time.UTC)

func ev(typ string, prob float64, at time.Duration) UncertainEvent {
	return UncertainEvent{
		Event: &event.Event{Tuples: []event.Tuple{
			{Attr: "type", Value: typ},
		}},
		Probability: prob,
		At:          t0.Add(at),
	}
}

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestAttrEqualsFilter(t *testing.T) {
	f := AttrEquals("type", "parking event")
	if !f(ev("Parking Event", 1, 0).Event) {
		t.Error("canonical equality failed")
	}
	if f(ev("energy event", 1, 0).Event) {
		t.Error("mismatched value matched")
	}
	if f(&event.Event{Tuples: []event.Tuple{{Attr: "other", Value: "x"}}}) {
		t.Error("missing attribute matched")
	}
}

func TestHasAttr(t *testing.T) {
	f := HasAttr("type")
	if !f(ev("x", 1, 0).Event) || f(&event.Event{Tuples: []event.Tuple{{Attr: "a", Value: "b"}}}) {
		t.Error("HasAttr wrong")
	}
}

func TestSequenceDetects(t *testing.T) {
	seq := NewSequence(time.Minute, 0,
		AttrEquals("type", "a"), AttrEquals("type", "b"))

	if got := seq.Observe(ev("a", 0.8, 0)); len(got) != 0 {
		t.Fatalf("premature detection: %v", got)
	}
	got := seq.Observe(ev("b", 0.5, 10*time.Second))
	if len(got) != 1 {
		t.Fatalf("detections = %d, want 1", len(got))
	}
	if !almostEqual(got[0].Probability, 0.4) {
		t.Errorf("probability = %v, want 0.4", got[0].Probability)
	}
	if len(got[0].Events) != 2 {
		t.Errorf("constituents = %d", len(got[0].Events))
	}
}

func TestSequenceRespectsOrder(t *testing.T) {
	seq := NewSequence(time.Minute, 0,
		AttrEquals("type", "a"), AttrEquals("type", "b"))
	seq.Observe(ev("b", 1, 0)) // b before a: no instance
	if got := seq.Observe(ev("a", 1, time.Second)); len(got) != 0 {
		t.Errorf("out-of-order detected: %v", got)
	}
}

func TestSequenceWindowExpiry(t *testing.T) {
	seq := NewSequence(time.Minute, 0,
		AttrEquals("type", "a"), AttrEquals("type", "b"))
	seq.Observe(ev("a", 1, 0))
	if got := seq.Observe(ev("b", 1, 2*time.Minute)); len(got) != 0 {
		t.Errorf("expired instance completed: %v", got)
	}
}

func TestSequenceThreshold(t *testing.T) {
	seq := NewSequence(time.Minute, 0.5,
		AttrEquals("type", "a"), AttrEquals("type", "b"))
	seq.Observe(ev("a", 0.4, 0))
	if got := seq.Observe(ev("b", 0.6, time.Second)); len(got) != 0 {
		t.Errorf("0.24 < 0.5 threshold but detected: %v", got)
	}
	seq.Observe(ev("a", 0.9, 2*time.Second))
	// Two open instances: (0.4) and (0.9). Only the second clears the
	// threshold when completed with b@0.9.
	if got := seq.Observe(ev("b", 0.9, 3*time.Second)); len(got) != 1 {
		t.Errorf("0.81 >= 0.5 but detections = %d", len(got))
	}
}

func TestSequenceMultipleOpenInstances(t *testing.T) {
	seq := NewSequence(time.Minute, 0,
		AttrEquals("type", "a"), AttrEquals("type", "b"))
	seq.Observe(ev("a", 0.5, 0))
	seq.Observe(ev("a", 0.7, time.Second))
	got := seq.Observe(ev("b", 1, 2*time.Second))
	if len(got) != 2 {
		t.Fatalf("detections = %d, want 2 (one per open instance)", len(got))
	}
}

func TestSequenceSingleStep(t *testing.T) {
	seq := NewSequence(time.Minute, 0.3, AttrEquals("type", "a"))
	if got := seq.Observe(ev("a", 0.6, 0)); len(got) != 1 || !almostEqual(got[0].Probability, 0.6) {
		t.Errorf("single-step sequence: %v", got)
	}
	if got := seq.Observe(ev("a", 0.2, time.Second)); len(got) != 0 {
		t.Errorf("below threshold detected: %v", got)
	}
}

func TestSequenceThreeSteps(t *testing.T) {
	seq := NewSequence(time.Minute, 0,
		AttrEquals("type", "a"), AttrEquals("type", "b"), AttrEquals("type", "c"))
	seq.Observe(ev("a", 0.9, 0))
	seq.Observe(ev("b", 0.8, time.Second))
	got := seq.Observe(ev("c", 0.7, 2*time.Second))
	if len(got) != 1 {
		t.Fatalf("detections = %d", len(got))
	}
	if !almostEqual(got[0].Probability, 0.9*0.8*0.7) {
		t.Errorf("probability = %v", got[0].Probability)
	}
}

func TestConjunctionAnyOrder(t *testing.T) {
	for _, order := range [][2]string{{"a", "b"}, {"b", "a"}} {
		c := NewConjunction(time.Minute, 0,
			AttrEquals("type", "a"), AttrEquals("type", "b"))
		c.Observe(ev(order[0], 0.5, 0))
		got := c.Observe(ev(order[1], 0.4, time.Second))
		if len(got) != 1 {
			t.Fatalf("order %v: detections = %d", order, len(got))
		}
		if !almostEqual(got[0].Probability, 0.2) {
			t.Errorf("order %v: probability = %v", order, got[0].Probability)
		}
	}
}

func TestConjunctionWindowExpiry(t *testing.T) {
	c := NewConjunction(time.Minute, 0,
		AttrEquals("type", "a"), AttrEquals("type", "b"))
	c.Observe(ev("a", 1, 0))
	if got := c.Observe(ev("b", 1, 2*time.Minute)); len(got) != 0 {
		t.Errorf("expired conjunction detected: %v", got)
	}
}

func TestConjunctionThreshold(t *testing.T) {
	c := NewConjunction(time.Minute, 0.5,
		AttrEquals("type", "a"), AttrEquals("type", "b"))
	c.Observe(ev("a", 0.6, 0))
	if got := c.Observe(ev("b", 0.6, time.Second)); len(got) != 0 {
		t.Errorf("below-threshold conjunction detected: %v", got)
	}
}

func TestFeedDrainsChannel(t *testing.T) {
	seq := NewSequence(time.Minute, 0, AttrEquals("type", "a"))
	ch := make(chan UncertainEvent, 4)
	ch <- ev("a", 0.9, 0)
	ch <- ev("x", 0.9, time.Second)
	ch <- ev("a", 0.8, 2*time.Second)
	close(ch)
	var got []Detection
	Feed(ch, seq, func(d Detection) { got = append(got, d) })
	if len(got) != 2 {
		t.Errorf("detections = %d, want 2", len(got))
	}
}

func TestEmptyPatterns(t *testing.T) {
	if got := NewSequence(time.Minute, 0).Observe(ev("a", 1, 0)); got != nil {
		t.Error("empty sequence detected something")
	}
	if got := NewConjunction(time.Minute, 0).Observe(ev("a", 1, 0)); got != nil {
		t.Error("empty conjunction detected something")
	}
}
