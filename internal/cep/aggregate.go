package cep

import (
	"sync"
	"time"
)

// Count detects "at least N occurrences of X within w" over uncertain
// events. Because constituents are uncertain, the pattern fires on the
// EXPECTED count: Σ P(eᵢ) over the window's matching events reaching
// minExpected. This is the standard expectation semantics for aggregates
// over probabilistic streams and composes with the matcher's scores
// directly (e.g. "several increased-consumption readings in 10 minutes").
type Count struct {
	filter      Filter
	window      time.Duration
	minExpected float64

	mu     sync.Mutex
	recent []UncertainEvent // matching events, oldest first
	firing bool             // suppress duplicate detections while above threshold
}

// NewCount builds a count pattern: a detection fires when the expected
// number of filter-matching events inside the sliding window reaches
// minExpected, and re-arms once the expectation falls below it.
func NewCount(window time.Duration, minExpected float64, filter Filter) *Count {
	return &Count{
		filter:      filter,
		window:      window,
		minExpected: minExpected,
	}
}

// Observe feeds one event; a detection carries the window's matching events
// and their combined expectation as Probability (capped at 1).
func (c *Count) Observe(e UncertainEvent) []Detection {
	c.mu.Lock()
	defer c.mu.Unlock()

	// Evict expired events and recompute the expectation.
	keep := c.recent[:0]
	for _, old := range c.recent {
		if e.At.Sub(old.At) <= c.window {
			keep = append(keep, old)
		}
	}
	c.recent = keep

	if c.filter(e.Event) {
		c.recent = append(c.recent, e)
	}
	expected := 0.0
	for _, ev := range c.recent {
		expected += ev.Probability
	}
	if expected < c.minExpected {
		c.firing = false
		return nil
	}
	if c.firing {
		return nil // already fired for this excursion above the threshold
	}
	c.firing = true
	events := make([]UncertainEvent, len(c.recent))
	copy(events, c.recent)
	p := expected / float64(len(events))
	if p > 1 {
		p = 1
	}
	return []Detection{{Events: events, Probability: p}}
}

// Expected returns the current expected count in the window as of the last
// observed event time.
func (c *Count) Expected() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	total := 0.0
	for _, ev := range c.recent {
		total += ev.Probability
	}
	return total
}
