package cep

import (
	"sync"
	"time"

	"thematicep/internal/telemetry"
)

// Count detects "at least N occurrences of X within w" over uncertain
// events. Because constituents are uncertain, the pattern fires on the
// EXPECTED count: Σ P(eᵢ) over the window's matching events reaching
// minExpected. This is the standard expectation semantics for aggregates
// over probabilistic streams and composes with the matcher's scores
// directly (e.g. "several increased-consumption readings in 10 minutes").
type Count struct {
	filter      Filter
	window      time.Duration
	minExpected float64
	clock       telemetry.Clock

	mu     sync.Mutex
	recent []UncertainEvent // matching events, oldest first
	firing bool             // suppress duplicate detections while above threshold
}

// NewCount builds a count pattern: a detection fires when the expected
// number of filter-matching events inside the sliding window reaches
// minExpected, and re-arms once the expectation falls below it.
func NewCount(window time.Duration, minExpected float64, filter Filter) *Count {
	return &Count{
		filter:      filter,
		window:      window,
		minExpected: minExpected,
		clock:       telemetry.System,
	}
}

// WithClock replaces the clock used to stamp events that arrive without a
// timestamp. Returns the pattern for chaining.
func (c *Count) WithClock(clock telemetry.Clock) *Count {
	c.clock = clock
	return c
}

// Observe feeds one event; a detection carries the window's matching events
// and their combined expectation as Probability (capped at 1).
func (c *Count) Observe(e UncertainEvent) []Detection {
	if e.At.IsZero() {
		e.At = c.clock.Now()
	}
	c.mu.Lock()
	defer c.mu.Unlock()

	c.evict(e.At)
	if c.filter(e.Event) {
		c.recent = append(c.recent, e)
	}
	expected := 0.0
	for _, ev := range c.recent {
		expected += ev.Probability
	}
	if expected < c.minExpected {
		c.firing = false
		return nil
	}
	if c.firing {
		return nil // already fired for this excursion above the threshold
	}
	c.firing = true
	events := make([]UncertainEvent, len(c.recent))
	copy(events, c.recent)
	p := expected / float64(len(events))
	if p > 1 {
		p = 1
	}
	return []Detection{{Events: events, Probability: p}}
}

// evict drops expired events and re-arms the pattern once the remaining
// expectation falls below the threshold, so a later excursion fires again.
func (c *Count) evict(now time.Time) {
	keep := c.recent[:0]
	for _, old := range c.recent {
		if now.Sub(old.At) <= c.window {
			keep = append(keep, old)
		}
	}
	c.recent = keep
	if c.firing {
		expected := 0.0
		for _, ev := range c.recent {
			expected += ev.Probability
		}
		if expected < c.minExpected {
			c.firing = false
		}
	}
}

// Flush advances event time without an event: expired events leave the
// window and the pattern re-arms when the expectation drops below the
// threshold, so a quiet stream doesn't leave a stale excursion latched.
// Counts have no time-driven emissions, so Flush never detects.
func (c *Count) Flush(now time.Time) []Detection {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.evict(now)
	return nil
}

// Occupancy reports the number of matching events inside the window as of
// the last observed event time.
func (c *Count) Occupancy() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.recent)
}

// Expected returns the current expected count in the window as of the last
// observed event time.
func (c *Count) Expected() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	total := 0.0
	for _, ev := range c.recent {
		total += ev.Probability
	}
	return total
}
