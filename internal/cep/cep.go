// Package cep implements complex event processing over uncertain single
// event matches. The paper's single-event matcher attaches probability
// spaces to its mappings precisely so that they "can feed into a complex
// event processing module" (§3.5, citing Wasserkrug et al. [26]); this
// package is that module.
//
// Uncertain events carry the matcher's probability. Patterns (sequence,
// conjunction) detect compositions inside a sliding time window and combine
// probabilities under the independence assumption standard in CEP over
// uncertain data: P(composite) = Π P(constituent). Detections below a
// configurable probability threshold are suppressed.
package cep

import (
	"sync"
	"time"

	"thematicep/internal/event"
	"thematicep/internal/telemetry"
)

// UncertainEvent is one event with the matcher's confidence that it is
// relevant (e.g. a broker Delivery's score, or a top-k mapping
// probability).
type UncertainEvent struct {
	Event       *event.Event
	Probability float64
	At          time.Time
}

// Filter selects the constituent events of a pattern step.
type Filter func(*event.Event) bool

// AttrEquals returns a filter matching events whose attr equals value
// (canonical comparison via the event model).
func AttrEquals(attr, value string) Filter {
	return func(e *event.Event) bool {
		v, ok := e.Value(attr)
		return ok && event.ExactMatch(&event.Subscription{
			Predicates: []event.Predicate{{Attr: attr, Value: value}},
		}, &event.Event{Tuples: []event.Tuple{{Attr: attr, Value: v}}})
	}
}

// HasAttr returns a filter matching events that carry the attribute.
func HasAttr(attr string) Filter {
	return func(e *event.Event) bool {
		_, ok := e.Value(attr)
		return ok
	}
}

// Detection is one completed pattern instance.
type Detection struct {
	// Events are the constituents in step order.
	Events []UncertainEvent
	// Probability is the combined probability of the detection.
	Probability float64
}

// Pattern consumes uncertain events and emits completed detections.
// Implementations are safe for concurrent use.
type Pattern interface {
	Observe(e UncertainEvent) []Detection
}

// Flusher is a Pattern whose window state advances with time as well as
// with events. Flush moves event time to now without an event: expired
// state is evicted, and patterns with time-driven emissions (Negation)
// return the detections whose windows closed. Every pattern in this
// package implements Flusher, so a driver (the query engine's ticker, or
// Broker.Drain) can close windows on a quiet stream.
type Flusher interface {
	Flush(now time.Time) []Detection
}

// Occupant is a Pattern that reports how much window state it holds —
// open partials, buffered matches, pending triggers. Exposed so engines
// can export window-occupancy gauges.
type Occupant interface {
	Occupancy() int
}

// Sequence detects step events in order within a sliding window:
// "A then B then C within w". Each arriving event may extend any open
// partial instance whose last step it follows.
type Sequence struct {
	steps     []Filter
	window    time.Duration
	threshold float64
	maxOpen   int
	clock     telemetry.Clock

	mu   sync.Mutex
	open []partial // partial instances, oldest first
}

type partial struct {
	events []UncertainEvent
	prob   float64
}

// NewSequence builds a sequence pattern over the given step filters.
// Detections whose combined probability is below threshold are dropped;
// at most maxOpen partial instances are retained (oldest evicted first).
func NewSequence(window time.Duration, threshold float64, steps ...Filter) *Sequence {
	return &Sequence{
		steps:     steps,
		window:    window,
		threshold: threshold,
		maxOpen:   1024,
		clock:     telemetry.System,
	}
}

// WithClock replaces the clock used to stamp events that arrive without a
// timestamp. Returns the pattern for chaining.
func (s *Sequence) WithClock(c telemetry.Clock) *Sequence {
	s.clock = c
	return s
}

// Observe feeds one event and returns completed detections.
func (s *Sequence) Observe(e UncertainEvent) []Detection {
	if len(s.steps) == 0 {
		return nil
	}
	if e.At.IsZero() {
		e.At = s.clock.Now()
	}
	s.mu.Lock()
	defer s.mu.Unlock()

	s.evict(e.At)
	var out []Detection

	// Extend existing partials (iterate a snapshot: extensions are new
	// instances so one event can extend several partials).
	for i := range s.open {
		p := &s.open[i]
		next := len(p.events)
		if next >= len(s.steps) || !s.steps[next](e.Event) {
			continue
		}
		extended := partial{
			events: append(append([]UncertainEvent(nil), p.events...), e),
			prob:   p.prob * e.Probability,
		}
		if len(extended.events) == len(s.steps) {
			if extended.prob >= s.threshold {
				out = append(out, Detection{Events: extended.events, Probability: extended.prob})
			}
			continue
		}
		s.open = append(s.open, extended)
	}

	// Start a new instance if the event matches step 0.
	if s.steps[0](e.Event) {
		if len(s.steps) == 1 {
			if e.Probability >= s.threshold {
				out = append(out, Detection{Events: []UncertainEvent{e}, Probability: e.Probability})
			}
		} else {
			s.open = append(s.open, partial{events: []UncertainEvent{e}, prob: e.Probability})
		}
	}
	if len(s.open) > s.maxOpen {
		s.open = s.open[len(s.open)-s.maxOpen:]
	}
	return out
}

// evict drops partials whose first event fell out of the window.
func (s *Sequence) evict(now time.Time) {
	keep := s.open[:0]
	for _, p := range s.open {
		if now.Sub(p.events[0].At) <= s.window {
			keep = append(keep, p)
		}
	}
	s.open = keep
}

// Flush advances event time without an event, evicting expired partials.
// Sequences have no time-driven emissions, so Flush never detects.
func (s *Sequence) Flush(now time.Time) []Detection {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.evict(now)
	return nil
}

// Occupancy reports the number of open partial instances.
func (s *Sequence) Occupancy() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.open)
}

// Conjunction detects one event per filter, in any order, within the
// window: "A and B within w".
type Conjunction struct {
	filters   []Filter
	window    time.Duration
	threshold float64
	clock     telemetry.Clock

	mu     sync.Mutex
	recent [][]UncertainEvent // per-filter recent matches, oldest first
}

// NewConjunction builds a conjunction pattern.
func NewConjunction(window time.Duration, threshold float64, filters ...Filter) *Conjunction {
	return &Conjunction{
		filters:   filters,
		window:    window,
		threshold: threshold,
		clock:     telemetry.System,
		recent:    make([][]UncertainEvent, len(filters)),
	}
}

// WithClock replaces the clock used to stamp events that arrive without a
// timestamp. Returns the pattern for chaining.
func (c *Conjunction) WithClock(clock telemetry.Clock) *Conjunction {
	c.clock = clock
	return c
}

// Observe feeds one event and returns completed detections. An event may
// satisfy several filters; each satisfied slot is considered.
func (c *Conjunction) Observe(e UncertainEvent) []Detection {
	if len(c.filters) == 0 {
		return nil
	}
	if e.At.IsZero() {
		e.At = c.clock.Now()
	}
	c.mu.Lock()
	defer c.mu.Unlock()

	c.evict(e.At)

	var out []Detection
	for i, f := range c.filters {
		if !f(e.Event) {
			continue
		}
		// Try to complete using the freshest match of every other slot.
		events := make([]UncertainEvent, len(c.filters))
		prob := e.Probability
		complete := true
		for j := range c.filters {
			if j == i {
				events[j] = e
				continue
			}
			if n := len(c.recent[j]); n > 0 {
				events[j] = c.recent[j][n-1]
				prob *= events[j].Probability
			} else {
				complete = false
				break
			}
		}
		if complete && prob >= c.threshold {
			out = append(out, Detection{Events: events, Probability: prob})
		}
		c.recent[i] = append(c.recent[i], e)
		if len(c.recent[i]) > 256 {
			c.recent[i] = c.recent[i][1:]
		}
	}
	return out
}

// evict drops per-filter matches that fell out of the window.
func (c *Conjunction) evict(now time.Time) {
	for i := range c.recent {
		keep := c.recent[i][:0]
		for _, old := range c.recent[i] {
			if now.Sub(old.At) <= c.window {
				keep = append(keep, old)
			}
		}
		c.recent[i] = keep
	}
}

// Flush advances event time without an event, evicting expired matches.
// Conjunctions have no time-driven emissions, so Flush never detects.
func (c *Conjunction) Flush(now time.Time) []Detection {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.evict(now)
	return nil
}

// Occupancy reports the number of buffered per-filter matches.
func (c *Conjunction) Occupancy() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for i := range c.recent {
		n += len(c.recent[i])
	}
	return n
}

// Feed drains a broker-style delivery stream into a pattern, invoking
// onDetect for every detection. It returns when the channel closes.
func Feed(events <-chan UncertainEvent, p Pattern, onDetect func(Detection)) {
	for e := range events {
		for _, d := range p.Observe(e) {
			onDetect(d)
		}
	}
}
