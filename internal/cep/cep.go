// Package cep implements complex event processing over uncertain single
// event matches. The paper's single-event matcher attaches probability
// spaces to its mappings precisely so that they "can feed into a complex
// event processing module" (§3.5, citing Wasserkrug et al. [26]); this
// package is that module.
//
// Uncertain events carry the matcher's probability. Patterns (sequence,
// conjunction) detect compositions inside a sliding time window and combine
// probabilities under the independence assumption standard in CEP over
// uncertain data: P(composite) = Π P(constituent). Detections below a
// configurable probability threshold are suppressed.
package cep

import (
	"sync"
	"time"

	"thematicep/internal/event"
)

// UncertainEvent is one event with the matcher's confidence that it is
// relevant (e.g. a broker Delivery's score, or a top-k mapping
// probability).
type UncertainEvent struct {
	Event       *event.Event
	Probability float64
	At          time.Time
}

// Filter selects the constituent events of a pattern step.
type Filter func(*event.Event) bool

// AttrEquals returns a filter matching events whose attr equals value
// (canonical comparison via the event model).
func AttrEquals(attr, value string) Filter {
	return func(e *event.Event) bool {
		v, ok := e.Value(attr)
		return ok && event.ExactMatch(&event.Subscription{
			Predicates: []event.Predicate{{Attr: attr, Value: value}},
		}, &event.Event{Tuples: []event.Tuple{{Attr: attr, Value: v}}})
	}
}

// HasAttr returns a filter matching events that carry the attribute.
func HasAttr(attr string) Filter {
	return func(e *event.Event) bool {
		_, ok := e.Value(attr)
		return ok
	}
}

// Detection is one completed pattern instance.
type Detection struct {
	// Events are the constituents in step order.
	Events []UncertainEvent
	// Probability is the combined probability of the detection.
	Probability float64
}

// Pattern consumes uncertain events and emits completed detections.
// Implementations are safe for concurrent use.
type Pattern interface {
	Observe(e UncertainEvent) []Detection
}

// Sequence detects step events in order within a sliding window:
// "A then B then C within w". Each arriving event may extend any open
// partial instance whose last step it follows.
type Sequence struct {
	steps     []Filter
	window    time.Duration
	threshold float64
	maxOpen   int

	mu   sync.Mutex
	open []partial // partial instances, oldest first
}

type partial struct {
	events []UncertainEvent
	prob   float64
}

// NewSequence builds a sequence pattern over the given step filters.
// Detections whose combined probability is below threshold are dropped;
// at most maxOpen partial instances are retained (oldest evicted first).
func NewSequence(window time.Duration, threshold float64, steps ...Filter) *Sequence {
	return &Sequence{
		steps:     steps,
		window:    window,
		threshold: threshold,
		maxOpen:   1024,
	}
}

// Observe feeds one event and returns completed detections.
func (s *Sequence) Observe(e UncertainEvent) []Detection {
	if len(s.steps) == 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()

	s.evict(e.At)
	var out []Detection

	// Extend existing partials (iterate a snapshot: extensions are new
	// instances so one event can extend several partials).
	for i := range s.open {
		p := &s.open[i]
		next := len(p.events)
		if next >= len(s.steps) || !s.steps[next](e.Event) {
			continue
		}
		extended := partial{
			events: append(append([]UncertainEvent(nil), p.events...), e),
			prob:   p.prob * e.Probability,
		}
		if len(extended.events) == len(s.steps) {
			if extended.prob >= s.threshold {
				out = append(out, Detection{Events: extended.events, Probability: extended.prob})
			}
			continue
		}
		s.open = append(s.open, extended)
	}

	// Start a new instance if the event matches step 0.
	if s.steps[0](e.Event) {
		if len(s.steps) == 1 {
			if e.Probability >= s.threshold {
				out = append(out, Detection{Events: []UncertainEvent{e}, Probability: e.Probability})
			}
		} else {
			s.open = append(s.open, partial{events: []UncertainEvent{e}, prob: e.Probability})
		}
	}
	if len(s.open) > s.maxOpen {
		s.open = s.open[len(s.open)-s.maxOpen:]
	}
	return out
}

// evict drops partials whose first event fell out of the window.
func (s *Sequence) evict(now time.Time) {
	keep := s.open[:0]
	for _, p := range s.open {
		if now.Sub(p.events[0].At) <= s.window {
			keep = append(keep, p)
		}
	}
	s.open = keep
}

// Conjunction detects one event per filter, in any order, within the
// window: "A and B within w".
type Conjunction struct {
	filters   []Filter
	window    time.Duration
	threshold float64

	mu     sync.Mutex
	recent [][]UncertainEvent // per-filter recent matches, oldest first
}

// NewConjunction builds a conjunction pattern.
func NewConjunction(window time.Duration, threshold float64, filters ...Filter) *Conjunction {
	return &Conjunction{
		filters:   filters,
		window:    window,
		threshold: threshold,
		recent:    make([][]UncertainEvent, len(filters)),
	}
}

// Observe feeds one event and returns completed detections. An event may
// satisfy several filters; each satisfied slot is considered.
func (c *Conjunction) Observe(e UncertainEvent) []Detection {
	if len(c.filters) == 0 {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()

	// Evict expired matches.
	for i := range c.recent {
		keep := c.recent[i][:0]
		for _, old := range c.recent[i] {
			if e.At.Sub(old.At) <= c.window {
				keep = append(keep, old)
			}
		}
		c.recent[i] = keep
	}

	var out []Detection
	for i, f := range c.filters {
		if !f(e.Event) {
			continue
		}
		// Try to complete using the freshest match of every other slot.
		events := make([]UncertainEvent, len(c.filters))
		prob := e.Probability
		complete := true
		for j := range c.filters {
			if j == i {
				events[j] = e
				continue
			}
			if n := len(c.recent[j]); n > 0 {
				events[j] = c.recent[j][n-1]
				prob *= events[j].Probability
			} else {
				complete = false
				break
			}
		}
		if complete && prob >= c.threshold {
			out = append(out, Detection{Events: events, Probability: prob})
		}
		c.recent[i] = append(c.recent[i], e)
		if len(c.recent[i]) > 256 {
			c.recent[i] = c.recent[i][1:]
		}
	}
	return out
}

// Feed drains a broker-style delivery stream into a pattern, invoking
// onDetect for every detection. It returns when the channel closes.
func Feed(events <-chan UncertainEvent, p Pattern, onDetect func(Detection)) {
	for e := range events {
		for _, d := range p.Observe(e) {
			onDetect(d)
		}
	}
}
