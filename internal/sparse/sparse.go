// Package sparse implements the sparse weighted vectors used by the
// distributional vector space model (paper §4.1).
//
// A term is represented as a weighted vector over document dimensions
// (Eq. 1). Only non-zero components are stored, matching the paper's note
// that projection runs in O(|V|) when only non-zero components are kept.
// Document ids are dense small integers assigned by the index, so vectors
// are stored as parallel sorted slices rather than maps: this keeps distance
// computation allocation-free and cache-friendly on the matching hot path.
package sparse

import (
	"math"
	"sort"
)

// Vector is a sparse vector: sorted unique dimension ids with parallel
// weights. The zero value is the empty (all-zero) vector and is ready to use.
type Vector struct {
	ids     []int32
	weights []float64
}

// New builds a Vector from parallel id/weight slices. The input need not be
// sorted; ids must be unique. New copies both slices.
func New(ids []int32, weights []float64) Vector {
	if len(ids) != len(weights) {
		panic("sparse: ids and weights length mismatch")
	}
	v := Vector{
		ids:     append([]int32(nil), ids...),
		weights: append([]float64(nil), weights...),
	}
	sort.Sort(&v)
	return v
}

// FromMap builds a Vector from a dimension→weight map, dropping zero weights.
func FromMap(m map[int32]float64) Vector {
	ids := make([]int32, 0, len(m))
	for id, w := range m {
		if w != 0 {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	weights := make([]float64, len(ids))
	for i, id := range ids {
		weights[i] = m[id]
	}
	return Vector{ids: ids, weights: weights}
}

// Len implements sort.Interface together with Less and Swap.
func (v *Vector) Len() int { return len(v.ids) }

// Less implements sort.Interface.
func (v *Vector) Less(i, j int) bool { return v.ids[i] < v.ids[j] }

// Swap implements sort.Interface.
func (v *Vector) Swap(i, j int) {
	v.ids[i], v.ids[j] = v.ids[j], v.ids[i]
	v.weights[i], v.weights[j] = v.weights[j], v.weights[i]
}

// NNZ returns the number of non-zero components.
func (v Vector) NNZ() int { return len(v.ids) }

// IsZero reports whether the vector has no non-zero components.
func (v Vector) IsZero() bool { return len(v.ids) == 0 }

// Dims returns a copy of the non-zero dimension ids in ascending order.
func (v Vector) Dims() []int32 { return append([]int32(nil), v.ids...) }

// Weight returns the weight of dimension id (0 if absent).
func (v Vector) Weight(id int32) float64 {
	i := sort.Search(len(v.ids), func(i int) bool { return v.ids[i] >= id })
	if i < len(v.ids) && v.ids[i] == id {
		return v.weights[i]
	}
	return 0
}

// Range calls fn for each non-zero component in ascending id order.
func (v Vector) Range(fn func(id int32, w float64)) {
	for i, id := range v.ids {
		fn(id, v.weights[i])
	}
}

// Norm returns the Euclidean (L2) norm.
func (v Vector) Norm() float64 {
	var s float64
	for _, w := range v.weights {
		s += w * w
	}
	return math.Sqrt(s)
}

// Dot returns the inner product of a and b.
func Dot(a, b Vector) float64 {
	var (
		s    float64
		i, j int
	)
	for i < len(a.ids) && j < len(b.ids) {
		switch {
		case a.ids[i] == b.ids[j]:
			s += a.weights[i] * b.weights[j]
			i++
			j++
		case a.ids[i] < b.ids[j]:
			i++
		default:
			j++
		}
	}
	return s
}

// Euclidean returns the L2 distance between a and b (paper Eq. 5).
func Euclidean(a, b Vector) float64 {
	var (
		s    float64
		i, j int
	)
	for i < len(a.ids) && j < len(b.ids) {
		switch {
		case a.ids[i] == b.ids[j]:
			d := a.weights[i] - b.weights[j]
			s += d * d
			i++
			j++
		case a.ids[i] < b.ids[j]:
			s += a.weights[i] * a.weights[i]
			i++
		default:
			s += b.weights[j] * b.weights[j]
			j++
		}
	}
	for ; i < len(a.ids); i++ {
		s += a.weights[i] * a.weights[i]
	}
	for ; j < len(b.ids); j++ {
		s += b.weights[j] * b.weights[j]
	}
	return math.Sqrt(s)
}

// Unit is a unit-normalized vector bundled with the norm of the vector it
// was normalized from. Precomputing the normalization once per cached
// projection turns the per-pair Euclidean relatedness into a single
// allocation-free merged dot product (see NormalizedEuclidean); the original
// norm is kept so callers can recover the raw vector's scale without
// touching it.
type Unit struct {
	// Vec has L2 norm 1, except the zero Unit whose Vec is the zero vector.
	Vec Vector
	// Norm is the L2 norm of the vector Vec was normalized from (0 for the
	// zero Unit).
	Norm float64
}

// IsZero reports whether the unit vector is the normalization of a zero
// vector.
func (u Unit) IsZero() bool { return u.Vec.IsZero() }

// Normalize returns the unit-normalized form of v with its original norm.
// The zero vector normalizes to the zero Unit.
func (v Vector) Normalize() Unit {
	n := v.Norm()
	if n == 0 {
		return Unit{}
	}
	return Unit{Vec: Scale(v, 1/n), Norm: n}
}

// DotUnit returns the inner product of two unit-normalized vectors. It is
// the hot-path kernel behind NormalizedEuclidean: a branchy sorted merge
// over the two id slices, written with local slice headers and re-sliced
// weight slices so the compiler can hoist the bounds checks out of the
// loop. It allocates nothing and calls nothing.
func DotUnit(a, b Unit) float64 {
	aids, bids := a.Vec.ids, b.Vec.ids
	if len(aids) == 0 || len(bids) == 0 {
		return 0
	}
	// Re-slice the weights to the id lengths: inside the loop, i and j are
	// provably in range for aw/bw once they are in range for aids/bids.
	aw := a.Vec.weights[:len(aids)]
	bw := b.Vec.weights[:len(bids)]
	var (
		s    float64
		i, j int
	)
	for i < len(aids) && j < len(bids) {
		ai, bj := aids[i], bids[j]
		switch {
		case ai == bj:
			s += aw[i] * bw[j]
			i++
			j++
		case ai < bj:
			i++
		default:
			j++
		}
	}
	return s
}

// NormalizedEuclidean returns the L2 distance between two unit-normalized
// vectors via the polarization identity ‖â−b̂‖ = √(2−2·â·b̂), valid because
// ‖â‖ = ‖b̂‖ = 1. One merged dot product replaces the two Scale copies and
// the three-branch Euclidean merge of the naive path, and allocates
// nothing. The identity is exact over the reals; in floats it agrees with
// Euclidean(Scale(a,1/‖a‖), Scale(b,1/‖b‖)) to ~1e-7 absolute in the worst
// case (catastrophic cancellation of 2−2·d when d→1, i.e. near-parallel
// vectors), far below any matching threshold granularity — see the
// equivalence property test. The dot product is clamped to 1 so the
// distance of near-identical vectors is 0, never NaN.
func NormalizedEuclidean(a, b Unit) float64 {
	d := DotUnit(a, b)
	if d >= 1 {
		return 0
	}
	return math.Sqrt(2 - 2*d)
}

// Cosine returns the cosine similarity of a and b in [0,1] for non-negative
// weights; 0 when either vector is zero. Used by the distance-function
// ablation (DESIGN.md §4).
func Cosine(a, b Vector) float64 {
	na, nb := a.Norm(), b.Norm()
	if na == 0 || nb == 0 {
		return 0
	}
	return Dot(a, b) / (na * nb)
}

// Mask returns the components of v whose dimension ids appear in basis.
// It is the projection primitive: Algorithm 1 zeroes components outside the
// thematic basis. The basis must be sorted ascending.
func Mask(v Vector, basis []int32) Vector {
	var (
		ids     []int32
		weights []float64
		i, j    int
	)
	for i < len(v.ids) && j < len(basis) {
		switch {
		case v.ids[i] == basis[j]:
			ids = append(ids, v.ids[i])
			weights = append(weights, v.weights[i])
			i++
			j++
		case v.ids[i] < basis[j]:
			i++
		default:
			j++
		}
	}
	return Vector{ids: ids, weights: weights}
}

// Scale returns v with every weight multiplied by f.
func Scale(v Vector, f float64) Vector {
	out := Vector{
		ids:     append([]int32(nil), v.ids...),
		weights: make([]float64, len(v.weights)),
	}
	for i, w := range v.weights {
		out.weights[i] = w * f
	}
	return out
}

// Add returns a + b.
func Add(a, b Vector) Vector {
	m := make(map[int32]float64, a.NNZ()+b.NNZ())
	a.Range(func(id int32, w float64) { m[id] += w })
	b.Range(func(id int32, w float64) { m[id] += w })
	return FromMap(m)
}

// Equal reports whether a and b have identical non-zero components.
func Equal(a, b Vector) bool {
	if len(a.ids) != len(b.ids) {
		return false
	}
	for i := range a.ids {
		if a.ids[i] != b.ids[i] || a.weights[i] != b.weights[i] {
			return false
		}
	}
	return true
}
