package sparse

import (
	"encoding/binary"
	"math"
	"math/rand"
	"testing"
)

// genNonNegVector produces a reproducible random sparse vector with
// non-negative weights, the shape of real tf-idf vectors (the relatedness
// kernel only ever sees those).
func genNonNegVector(r *rand.Rand, maxDim int32) Vector {
	n := r.Intn(24)
	m := make(map[int32]float64, n)
	for i := 0; i < n; i++ {
		m[r.Int31n(maxDim)] = r.Float64() * 10
	}
	return FromMap(m)
}

// naiveDot is the map-based reference inner product.
func naiveDot(a, b Vector) float64 {
	m := make(map[int32]float64, a.NNZ())
	a.Range(func(id int32, w float64) { m[id] = w })
	var s float64
	b.Range(func(id int32, w float64) { s += m[id] * w })
	return s
}

func TestNormalize(t *testing.T) {
	v := FromMap(map[int32]float64{1: 3, 4: 4})
	u := v.Normalize()
	if !almostEqual(u.Norm, 5) {
		t.Errorf("Norm = %v, want 5", u.Norm)
	}
	if !almostEqual(u.Vec.Norm(), 1) {
		t.Errorf("normalized vector has norm %v", u.Vec.Norm())
	}
	if !almostEqual(u.Vec.Weight(1), 0.6) || !almostEqual(u.Vec.Weight(4), 0.8) {
		t.Errorf("normalized weights wrong: %v", u.Vec)
	}
	z := Vector{}.Normalize()
	if !z.IsZero() || z.Norm != 0 {
		t.Errorf("zero vector normalized to %v", z)
	}
}

// TestDotUnitMatchesDot pins the tightened merge loop to the generic Dot
// and the naive map reference across random vectors.
func TestDotUnitMatchesDot(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	for i := 0; i < 500; i++ {
		a := genNonNegVector(r, 64).Normalize()
		b := genNonNegVector(r, 64).Normalize()
		got := DotUnit(a, b)
		if want := Dot(a.Vec, b.Vec); got != want {
			t.Fatalf("DotUnit = %v, Dot = %v (a=%v b=%v)", got, want, a.Vec, b.Vec)
		}
		if want := naiveDot(a.Vec, b.Vec); !almostEqual(got, want) {
			t.Fatalf("DotUnit = %v, naive = %v", got, want)
		}
	}
}

// TestNormalizedEuclideanIdentity is the kernel-identity property test: the
// dot-identity kernel over pre-normalized vectors must agree with the old
// hot path — Scale(·, 1/‖·‖) twice, then the three-branch Euclidean merge
// (paper Eq. 5 on unit vectors). The identity ‖â−b̂‖² = 2−2·â·b̂ is exact
// over the reals but not bit-for-bit in floats: when â·b̂ → 1 the
// subtraction cancels catastrophically, bounding the distance error by
// ~√(n·ε) ≈ 1e-7 and the relatedness error 1/(d+1) by the same. The
// tolerance below (1e-7 absolute on the distance and on the relatedness)
// documents that contract; random disjoint-support pairs agree to ~1e-15.
func TestNormalizedEuclideanIdentity(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	for i := 0; i < 2000; i++ {
		av := genNonNegVector(r, 48)
		bv := genNonNegVector(r, 48)
		if av.IsZero() || bv.IsZero() {
			continue
		}
		// Old path: two Scale copies, then the merged Euclidean distance.
		sa := Scale(av, 1/av.Norm())
		sb := Scale(bv, 1/bv.Norm())
		want := Euclidean(sa, sb)
		got := NormalizedEuclidean(av.Normalize(), bv.Normalize())
		if math.Abs(got-want) > 1e-7 {
			t.Fatalf("distance: identity kernel %v vs scale+euclidean %v (Δ=%g)",
				got, want, got-want)
		}
		if rg, rw := 1/(got+1), 1/(want+1); math.Abs(rg-rw) > 1e-7 {
			t.Fatalf("relatedness: %v vs %v", rg, rw)
		}
	}
}

// TestNormalizedEuclideanExtremes covers the clamp and zero-vector edges.
func TestNormalizedEuclideanExtremes(t *testing.T) {
	a := FromMap(map[int32]float64{1: 2, 2: 1}).Normalize()
	// Self distance: â·â = 1−ε in floats, so the result is √(2ε) ≈ 1.5e-8,
	// not exactly 0 — the worst case of the documented cancellation bound.
	if d := NormalizedEuclidean(a, a); d > 1e-7 {
		t.Errorf("self distance = %v, want ≈0 within the cancellation bound", d)
	}
	exact := FromMap(map[int32]float64{3: 1}).Normalize()
	if d := NormalizedEuclidean(exact, exact); d != 0 {
		t.Errorf("single-component self distance = %v, want exactly 0 (dot is exactly 1, clamped)", d)
	}
	b := FromMap(map[int32]float64{7: 3}).Normalize()
	if d := NormalizedEuclidean(a, b); !almostEqual(d, math.Sqrt2) {
		t.Errorf("disjoint unit distance = %v, want √2", d)
	}
	z := Unit{}
	if d := DotUnit(a, z); d != 0 {
		t.Errorf("dot with zero unit = %v", d)
	}
}

// decodeVec turns fuzz bytes into a small sparse vector: pairs of
// (dim byte, weight byte) with weight scaled into (0, 8].
func decodeVec(data []byte) Vector {
	m := make(map[int32]float64)
	for len(data) >= 3 {
		dim := int32(binary.LittleEndian.Uint16(data) % 96)
		w := float64(data[2]%64) / 8
		if w > 0 {
			m[dim] = w
		}
		data = data[3:]
	}
	return FromMap(m)
}

// FuzzUnitKernels drives DotUnit and NormalizedEuclidean against the naive
// references on adversarial id layouts (shared prefixes, duplicates across
// vectors, disjoint tails).
func FuzzUnitKernels(f *testing.F) {
	f.Add([]byte{1, 0, 8, 2, 0, 16}, []byte{1, 0, 8})
	f.Add([]byte{}, []byte{5, 0, 63})
	f.Add([]byte{0, 0, 1, 1, 0, 1, 2, 0, 1}, []byte{2, 0, 1, 3, 0, 1})
	f.Fuzz(func(t *testing.T, araw, braw []byte) {
		a, b := decodeVec(araw), decodeVec(braw)
		ua, ub := a.Normalize(), b.Normalize()
		if got, want := DotUnit(ua, ub), naiveDot(ua.Vec, ub.Vec); !almostEqual(got, want) {
			t.Fatalf("DotUnit = %v, naive = %v", got, want)
		}
		got := NormalizedEuclidean(ua, ub)
		if got < 0 || math.IsNaN(got) {
			t.Fatalf("NormalizedEuclidean = %v", got)
		}
		if a.IsZero() || b.IsZero() {
			return
		}
		want := Euclidean(Scale(a, 1/a.Norm()), Scale(b, 1/b.Norm()))
		if math.Abs(got-want) > 1e-7 {
			t.Fatalf("identity: %v vs %v", got, want)
		}
	})
}
