package sparse

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// genVector produces a reproducible random sparse vector for property tests.
func genVector(r *rand.Rand, maxDim int32) Vector {
	n := r.Intn(20)
	m := make(map[int32]float64, n)
	for i := 0; i < n; i++ {
		m[r.Int31n(maxDim)] = r.Float64()*10 - 5
	}
	return FromMap(m)
}

func almostEqual(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*(1+math.Abs(a)+math.Abs(b))
}

func TestNewSortsAndCopies(t *testing.T) {
	ids := []int32{5, 1, 3}
	weights := []float64{0.5, 0.1, 0.3}
	v := New(ids, weights)
	if got := v.Dims(); !reflect.DeepEqual(got, []int32{1, 3, 5}) {
		t.Fatalf("Dims = %v", got)
	}
	ids[0] = 99 // mutate the input; the vector must be unaffected
	if v.Weight(5) != 0.5 || v.Weight(1) != 0.1 || v.Weight(3) != 0.3 {
		t.Errorf("weights corrupted after input mutation: %v", v)
	}
}

func TestNewPanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New did not panic on mismatched lengths")
		}
	}()
	New([]int32{1}, []float64{1, 2})
}

func TestFromMapDropsZeros(t *testing.T) {
	v := FromMap(map[int32]float64{1: 0, 2: 3.5, 7: 0})
	if v.NNZ() != 1 || v.Weight(2) != 3.5 {
		t.Errorf("FromMap kept zero entries: %v", v)
	}
}

func TestWeightAbsent(t *testing.T) {
	v := FromMap(map[int32]float64{2: 1})
	if v.Weight(3) != 0 {
		t.Error("Weight of absent dim != 0")
	}
}

func TestZeroValueUsable(t *testing.T) {
	var v Vector
	if !v.IsZero() || v.NNZ() != 0 || v.Norm() != 0 {
		t.Errorf("zero Vector not usable: %v", v)
	}
	if d := Euclidean(v, FromMap(map[int32]float64{1: 3, 2: 4})); d != 5 {
		t.Errorf("Euclidean(zero, (3,4)) = %v, want 5", d)
	}
}

func TestDot(t *testing.T) {
	a := FromMap(map[int32]float64{1: 2, 3: 4, 5: 1})
	b := FromMap(map[int32]float64{3: 0.5, 5: 2, 9: 7})
	if got := Dot(a, b); !almostEqual(got, 4) {
		t.Errorf("Dot = %v, want 4", got)
	}
}

func TestEuclideanKnown(t *testing.T) {
	a := FromMap(map[int32]float64{1: 1, 2: 2})
	b := FromMap(map[int32]float64{2: 2, 3: 2})
	// difference is (1,0,-2) -> sqrt(5)
	if got := Euclidean(a, b); !almostEqual(got, math.Sqrt(5)) {
		t.Errorf("Euclidean = %v, want sqrt(5)", got)
	}
}

func TestCosine(t *testing.T) {
	a := FromMap(map[int32]float64{1: 1})
	b := FromMap(map[int32]float64{1: 2})
	if got := Cosine(a, b); !almostEqual(got, 1) {
		t.Errorf("Cosine of parallel = %v, want 1", got)
	}
	c := FromMap(map[int32]float64{2: 1})
	if got := Cosine(a, c); got != 0 {
		t.Errorf("Cosine of orthogonal = %v, want 0", got)
	}
	var zero Vector
	if got := Cosine(a, zero); got != 0 {
		t.Errorf("Cosine with zero = %v, want 0", got)
	}
}

func TestMask(t *testing.T) {
	v := FromMap(map[int32]float64{1: 1, 3: 3, 5: 5, 8: 8})
	got := Mask(v, []int32{3, 4, 8})
	want := FromMap(map[int32]float64{3: 3, 8: 8})
	if !Equal(got, want) {
		t.Errorf("Mask = %v, want %v", got, want)
	}
	if !Mask(v, nil).IsZero() {
		t.Error("Mask with empty basis not zero")
	}
}

func TestScaleAndAdd(t *testing.T) {
	a := FromMap(map[int32]float64{1: 1, 2: 2})
	b := FromMap(map[int32]float64{2: -2, 3: 3})
	sum := Add(a, b)
	want := FromMap(map[int32]float64{1: 1, 3: 3})
	if !Equal(sum, want) {
		t.Errorf("Add = %v, want %v (cancelling component dropped)", sum, want)
	}
	if got := Scale(a, 2).Weight(2); got != 4 {
		t.Errorf("Scale weight = %v, want 4", got)
	}
}

// Property: Euclidean is a metric on the sampled vectors — symmetry,
// identity, triangle inequality.
func TestEuclideanMetricProperties(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 300; i++ {
		a, b, c := genVector(r, 50), genVector(r, 50), genVector(r, 50)
		dab, dba := Euclidean(a, b), Euclidean(b, a)
		if !almostEqual(dab, dba) {
			t.Fatalf("not symmetric: %v vs %v", dab, dba)
		}
		if d := Euclidean(a, a); !almostEqual(d, 0) {
			t.Fatalf("d(a,a) = %v", d)
		}
		if dac, dcb := Euclidean(a, c), Euclidean(c, b); dab > dac+dcb+1e-9 {
			t.Fatalf("triangle violated: d(a,b)=%v > %v", dab, dac+dcb)
		}
	}
}

// Property: Euclidean agrees with a dense reference implementation.
func TestEuclideanMatchesDense(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	const dims = 40
	for i := 0; i < 200; i++ {
		a, b := genVector(r, dims), genVector(r, dims)
		var s float64
		for d := int32(0); d < dims; d++ {
			diff := a.Weight(d) - b.Weight(d)
			s += diff * diff
		}
		if want := math.Sqrt(s); !almostEqual(Euclidean(a, b), want) {
			t.Fatalf("sparse %v != dense %v", Euclidean(a, b), want)
		}
	}
}

// Property: Dot agrees with a dense reference implementation.
func TestDotMatchesDense(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	const dims = 40
	for i := 0; i < 200; i++ {
		a, b := genVector(r, dims), genVector(r, dims)
		var s float64
		for d := int32(0); d < dims; d++ {
			s += a.Weight(d) * b.Weight(d)
		}
		if !almostEqual(Dot(a, b), s) {
			t.Fatalf("sparse %v != dense %v", Dot(a, b), s)
		}
	}
}

// Property: Mask(v, basis) keeps exactly the intersection.
func TestMaskProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		v := genVector(r, 30)
		basis := genVector(r, 30).Dims()
		masked := Mask(v, basis)
		inBasis := make(map[int32]bool, len(basis))
		for _, id := range basis {
			inBasis[id] = true
		}
		ok := true
		v.Range(func(id int32, w float64) {
			if inBasis[id] && masked.Weight(id) != w {
				ok = false
			}
			if !inBasis[id] && masked.Weight(id) != 0 {
				ok = false
			}
		})
		return ok && masked.NNZ() <= v.NNZ()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNormMatchesEuclideanFromZero(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	var zero Vector
	for i := 0; i < 100; i++ {
		v := genVector(r, 30)
		if !almostEqual(v.Norm(), Euclidean(v, zero)) {
			t.Fatalf("Norm %v != Euclidean from zero %v", v.Norm(), Euclidean(v, zero))
		}
	}
}
