package workload

import (
	"math/rand"
	"reflect"
	"testing"

	"thematicep/internal/event"
)

func testConfig() Config {
	return Config{
		Seed:            1,
		SeedEvents:      40,
		ExpandedPerSeed: 5,
		Subscriptions:   20,
		MaxPredicates:   3,
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(testConfig())
	b := Generate(testConfig())
	if len(a.Events) != len(b.Events) || len(a.ApproxSubs) != len(b.ApproxSubs) {
		t.Fatal("sizes differ between identical configs")
	}
	for i := range a.Events {
		if !reflect.DeepEqual(a.Events[i], b.Events[i]) {
			t.Fatalf("event %d differs", i)
		}
	}
	for i := range a.ApproxSubs {
		if !reflect.DeepEqual(a.ApproxSubs[i], b.ApproxSubs[i]) {
			t.Fatalf("subscription %d differs", i)
		}
	}
}

func TestWorkloadSizes(t *testing.T) {
	cfg := testConfig()
	w := Generate(cfg)
	if len(w.Seeds) != cfg.SeedEvents {
		t.Errorf("seeds = %d, want %d", len(w.Seeds), cfg.SeedEvents)
	}
	if len(w.Events) != cfg.SeedEvents*cfg.ExpandedPerSeed {
		t.Errorf("events = %d, want %d", len(w.Events), cfg.SeedEvents*cfg.ExpandedPerSeed)
	}
	if len(w.ExactSubs) != cfg.Subscriptions || len(w.ApproxSubs) != cfg.Subscriptions {
		t.Errorf("subs = %d/%d, want %d", len(w.ExactSubs), len(w.ApproxSubs), cfg.Subscriptions)
	}
	if len(w.SeedOf) != len(w.Events) {
		t.Errorf("SeedOf length mismatch")
	}
}

func TestPaperConfigScale(t *testing.T) {
	cfg := PaperConfig()
	if cfg.SeedEvents != 166 || cfg.Subscriptions != 94 {
		t.Errorf("paper config wrong: %+v", cfg)
	}
	if got := cfg.SeedEvents * cfg.ExpandedPerSeed; got < 14000 || got > 15500 {
		t.Errorf("paper-scale events = %d, want ~14,743", got)
	}
}

func TestEventsValid(t *testing.T) {
	w := Generate(testConfig())
	for _, e := range w.Seeds {
		if err := e.Validate(); err != nil {
			t.Fatalf("seed %s invalid: %v", e.ID, err)
		}
		if len(e.Tuples) > 10 {
			t.Errorf("seed %s has %d tuples, want <= 10", e.ID, len(e.Tuples))
		}
	}
	for _, e := range w.Events {
		if err := e.Validate(); err != nil {
			t.Fatalf("event %s invalid: %v", e.ID, err)
		}
	}
}

func TestSubscriptionsValidAndFullyApproximate(t *testing.T) {
	w := Generate(testConfig())
	for i, s := range w.ApproxSubs {
		if err := s.Validate(); err != nil {
			t.Fatalf("sub %s invalid: %v", s.ID, err)
		}
		if got := s.ApproximationDegree(); got != 1 {
			t.Errorf("sub %s degree = %v, want 1 (100%% approximation)", s.ID, got)
		}
		if got := w.ExactSubs[i].ApproximationDegree(); got != 0 {
			t.Errorf("exact sub %s degree = %v, want 0", w.ExactSubs[i].ID, got)
		}
	}
}

func TestSubscriptionsDistinct(t *testing.T) {
	w := Generate(testConfig())
	seen := make(map[string]bool)
	for _, s := range w.ExactSubs {
		key := canonicalSubKey(s)
		if seen[key] {
			t.Fatalf("duplicate subscription %s", s.ID)
		}
		seen[key] = true
	}
}

// Every exact subscription must exactly match at least one seed (the one it
// was drawn from), so no subscription has an empty ground truth.
func TestGroundTruthNonEmpty(t *testing.T) {
	w := Generate(testConfig())
	for si := range w.ApproxSubs {
		if w.RelevantCount(si) == 0 {
			t.Errorf("subscription %d has no relevant events", si)
		}
	}
}

// Ground truth must be isomorphic to exact matching on seeds: if an
// expanded event's seed matches the exact subscription, the expanded event
// is relevant to the approximate subscription.
func TestGroundTruthIsomorphism(t *testing.T) {
	w := Generate(testConfig())
	for si, exact := range w.ExactSubs {
		for ei := range w.Events {
			want := event.ExactMatch(exact, w.Seeds[w.SeedOf[ei]])
			if got := w.Relevant(si, ei); got != want {
				t.Fatalf("Relevant(%d,%d) = %v, want %v", si, ei, got, want)
			}
		}
	}
}

// Expansion must actually rewrite terms: a good share of expanded events
// must differ from their seeds, and replaced values must remain synonyms
// (ground-truth preserving).
func TestExpansionRewritesWithSynonyms(t *testing.T) {
	w := Generate(testConfig())
	changed := 0
	for ei, e := range w.Events {
		seed := w.Seeds[w.SeedOf[ei]]
		if len(e.Tuples) != len(seed.Tuples) {
			t.Fatalf("event %s tuple count changed", e.ID)
		}
		diff := false
		for ti := range e.Tuples {
			if e.Tuples[ti] != seed.Tuples[ti] {
				diff = true
			}
		}
		if diff {
			changed++
		}
	}
	if frac := float64(changed) / float64(len(w.Events)); frac < 0.5 {
		t.Errorf("only %.0f%% of expanded events differ from their seeds", frac*100)
	}
}

func TestExpandTermPrefersLongPhrases(t *testing.T) {
	w := Generate(testConfig())
	rng := rand.New(rand.NewSource(3))
	saw := make(map[string]bool)
	for i := 0; i < 50; i++ {
		saw[w.expandTerm(rng, "increased energy consumption event")] = true
	}
	// "energy consumption" (the long phrase) must be replaced, keeping the
	// "increased ... event" frame.
	foundFrame := false
	for term := range saw {
		if term == "increased energy consumption event" {
			continue
		}
		if len(term) > len("increased  event") &&
			term[:10] == "increased " && term[len(term)-6:] == " event" {
			foundFrame = true
		}
	}
	if !foundFrame {
		t.Errorf("no frame-preserving expansion seen: %v", keys(saw))
	}
}

func TestExpandTermUnknown(t *testing.T) {
	w := Generate(testConfig())
	rng := rand.New(rand.NewSource(4))
	if got := w.expandTerm(rng, "zzz qqq"); got != "zzz qqq" {
		t.Errorf("unknown term rewritten to %q", got)
	}
}

func keys(m map[string]bool) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
