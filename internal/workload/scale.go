package workload

import (
	"fmt"
	"math/rand"

	"thematicep/internal/event"
	"thematicep/internal/vocab"
)

// ScaleConfig controls the Internet-scale synthetic workload tier: a
// subscription population orders of magnitude beyond the paper's 94,
// drawn from a bounded shared vocabulary so the pruning index and the
// batch scorer see realistic term overlap. The zero value is invalid; use
// DefaultScaleConfig.
type ScaleConfig struct {
	// Seed drives all random choices; identical configs yield identical
	// workloads.
	Seed int64
	// Subscriptions is the population size (the scale axis: 1k-1M).
	Subscriptions int
	// Events is how many publishable events to synthesize.
	Events int
	// Attrs is the attribute vocabulary size shared by subscriptions and
	// events.
	Attrs int
	// ValuesPerAttr is each attribute's value vocabulary size.
	ValuesPerAttr int
	// MaxPredicates bounds predicates per subscription (at least 1).
	MaxPredicates int
	// EventTuples is the tuple count per event.
	EventTuples int
	// Themes is the number of distinct theme tags; each subscription and
	// event carries 0-2 of them.
	Themes int
	// ExactFraction is the probability an attribute or value slot stays
	// exact (non-~). Exact slots are what the inverted index prunes on.
	ExactFraction float64
	// ApproxOnlyFraction is the fraction of subscriptions with every slot
	// approximated — the never-prunable population.
	ApproxOnlyFraction float64
	// Zipf is the skew exponent (> 1) of attribute and value draws; 0
	// draws uniformly. Real subscription populations are heavily skewed
	// toward a few hot terms, which is exactly what stresses posting-list
	// occupancy.
	Zipf float64
}

// DefaultScaleConfig is the scale tier used by `repro -exp scale`: n
// subscriptions over a 64-attribute vocabulary with zipfian skew.
func DefaultScaleConfig(n int) ScaleConfig {
	return ScaleConfig{
		Seed:               7,
		Subscriptions:      n,
		Events:             200,
		Attrs:              64,
		ValuesPerAttr:      32,
		MaxPredicates:      4,
		EventTuples:        8,
		Themes:             6,
		ExactFraction:      0.8,
		ApproxOnlyFraction: 0.01,
		Zipf:               1.2,
	}
}

// ScaleWorkload is a generated scale-tier workload.
type ScaleWorkload struct {
	Subs   []*event.Subscription
	Events []*event.Event
}

// scaleVocab is the shared attribute/value vocabulary of one scale
// workload. Terms reuse the evaluation datasets' words so approximate
// predicates still project onto non-zero semantic vectors.
type scaleVocab struct {
	attrs  []string
	values [][]string // values[i] is attrs[i]'s value pool
}

func buildScaleVocab(cfg ScaleConfig) scaleVocab {
	baseAttrs := []string{
		"type", "device", "room", "desk", "floor", "zone", "street", "city",
		"country", "measurement unit", "vehicle", "capability", "trend", "site",
	}
	words := append([]string{}, vocab.SensorCapabilities()...)
	words = append(words, vocab.Appliances()...)
	words = append(words, vocab.Rooms()...)
	words = append(words, vocab.Zones()...)
	words = append(words, vocab.Streets()...)
	words = append(words, vocab.Cities()...)
	words = append(words, vocab.Trends()...)
	words = append(words, vocab.CarBrands()...)

	v := scaleVocab{}
	for i := 0; i < cfg.Attrs; i++ {
		if i < len(baseAttrs) {
			v.attrs = append(v.attrs, baseAttrs[i])
		} else {
			v.attrs = append(v.attrs, fmt.Sprintf("%s sensor %d", words[i%len(words)], i))
		}
		pool := make([]string, 0, cfg.ValuesPerAttr)
		for j := 0; j < cfg.ValuesPerAttr; j++ {
			w := words[(i*7+j*3)%len(words)]
			if j < len(words)/cfg.Attrs {
				pool = append(pool, w)
			} else {
				pool = append(pool, fmt.Sprintf("%s %d", w, j))
			}
		}
		v.values = append(v.values, pool)
	}
	return v
}

func scaleThemePool(n int) []string {
	tags := []string{"energy", "transport", "environment", "water supply",
		"waste management", "parking", "public lighting", "public safety"}
	for len(tags) < n {
		tags = append(tags, fmt.Sprintf("district %d", len(tags)))
	}
	return tags[:n]
}

// sampler draws vocabulary indices, zipfian when cfg.Zipf > 1.
type sampler struct {
	rng  *rand.Rand
	zipf *rand.Zipf
	n    int
}

func newSampler(rng *rand.Rand, cfg ScaleConfig, n int) *sampler {
	s := &sampler{rng: rng, n: n}
	if cfg.Zipf > 1 {
		s.zipf = rand.NewZipf(rng, cfg.Zipf, 1, uint64(n-1))
	}
	return s
}

func (s *sampler) draw() int {
	if s.zipf != nil {
		return int(s.zipf.Uint64())
	}
	return s.rng.Intn(s.n)
}

// GenerateScale synthesizes a scale-tier workload: cfg.Subscriptions
// subscriptions and cfg.Events events over a shared zipf-skewed
// vocabulary, with a controlled exact/approximate mix. Subscriptions and
// events overlap in hot terms, so a fraction of every event's candidates
// genuinely match — the end-to-end pipeline (index, batch scorer,
// delivery) is exercised, not just the pruning path.
func GenerateScale(cfg ScaleConfig) *ScaleWorkload {
	if cfg.Subscriptions <= 0 {
		cfg = DefaultScaleConfig(1000)
	}
	if cfg.MaxPredicates < 1 {
		cfg.MaxPredicates = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	v := buildScaleVocab(cfg)
	themes := scaleThemePool(cfg.Themes)
	attrDraw := newSampler(rng, cfg, cfg.Attrs)

	pickTheme := func() []string {
		switch rng.Intn(4) {
		case 0:
			return nil
		case 1, 2:
			return []string{themes[rng.Intn(len(themes))]}
		default:
			return []string{themes[rng.Intn(len(themes))], themes[rng.Intn(len(themes))]}
		}
	}

	// Preallocate for the population: at the 1M tier incremental append
	// growth would briefly hold ~2x the final slice footprint.
	w := &ScaleWorkload{
		Subs:   make([]*event.Subscription, 0, cfg.Subscriptions),
		Events: make([]*event.Event, 0, cfg.Events),
	}
	for i := 0; i < cfg.Subscriptions; i++ {
		approxOnly := rng.Float64() < cfg.ApproxOnlyFraction
		np := 1 + rng.Intn(cfg.MaxPredicates)
		sub := &event.Subscription{
			ID:    fmt.Sprintf("scale-sub-%06d", i),
			Theme: pickTheme(),
		}
		seen := make(map[int]bool, np)
		for p := 0; p < np; p++ {
			ai := attrDraw.draw()
			if seen[ai] {
				continue // canonical-duplicate attrs would never all match
			}
			seen[ai] = true
			pred := event.Predicate{
				Attr:  v.attrs[ai],
				Value: v.values[ai][rng.Intn(len(v.values[ai]))],
			}
			// Attributes are approximated half as often as values: a sub with
			// every attribute fuzzed has no exact requirement at all and can
			// never be pruned, so attr-approx rate directly sets the
			// enumeration floor.
			if approxOnly || rng.Float64() < (1-cfg.ExactFraction)/2 {
				pred.ApproxAttr = true
			}
			if approxOnly || rng.Float64() >= cfg.ExactFraction {
				pred.ApproxValue = true
			}
			sub.Predicates = append(sub.Predicates, pred)
		}
		if len(sub.Predicates) == 0 {
			ai := attrDraw.draw()
			sub.Predicates = append(sub.Predicates, event.Predicate{
				Attr: v.attrs[ai], Value: v.values[ai][0], ApproxValue: true,
			})
		}
		w.Subs = append(w.Subs, sub)
	}

	for i := 0; i < cfg.Events; i++ {
		e := &event.Event{
			ID:    fmt.Sprintf("scale-ev-%04d", i),
			Theme: pickTheme(),
		}
		seen := make(map[int]bool, cfg.EventTuples)
		for len(e.Tuples) < cfg.EventTuples {
			ai := attrDraw.draw()
			if seen[ai] {
				continue // events must have unique canonical attributes
			}
			seen[ai] = true
			e.Tuples = append(e.Tuples, event.Tuple{
				Attr:  v.attrs[ai],
				Value: v.values[ai][rng.Intn(len(v.values[ai]))],
			})
		}
		w.Events = append(w.Events, e)
	}
	return w
}
