package workload

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"thematicep/internal/event"
)

// BurstConfig parameterizes the bursty workload of DESIGN.md §12: a
// Poisson background stream of spike-typed events on one theme, overlaid
// with theme-correlated bursts where the rate jumps. A count query with a
// threshold above the background window expectation but below the burst
// expectation should detect every burst and nothing else; the scorer
// turns its detections into precision/recall/delay.
type BurstConfig struct {
	Seed           int64
	Duration       time.Duration // total timeline span
	BackgroundRate float64       // background events per second
	BurstRate      float64       // additional events per second inside a burst
	BurstLen       time.Duration // length of each burst window
	Bursts         int           // number of burst windows
	Theme          string        // theme tag carried by every event
	BurstType      string        // value of the "type" attribute on every event
}

// DefaultBurstConfig is sized for an in-process run: ~0.5 events/s of
// background noise against 50 events/s bursts, far enough apart that a
// window threshold separates them cleanly.
func DefaultBurstConfig() BurstConfig {
	return BurstConfig{
		Seed:           1,
		Duration:       60 * time.Second,
		BackgroundRate: 0.5,
		BurstRate:      50,
		BurstLen:       2 * time.Second,
		Bursts:         4,
		Theme:          "energy",
		BurstType:      "spike",
	}
}

// BurstWindow is one ground-truth burst interval, as offsets from the
// start of the timeline.
type BurstWindow struct {
	Start time.Duration
	End   time.Duration
}

// TimedEvent is an event with its offset from the start of the timeline.
type TimedEvent struct {
	At    time.Duration
	Event *event.Event
	Burst int // index into Timeline.Windows, -1 for background
}

// BurstTimeline is a generated bursty workload: a time-ordered event
// stream plus the ground-truth burst windows it was built from.
type BurstTimeline struct {
	Config  BurstConfig
	Events  []TimedEvent
	Windows []BurstWindow
}

// GenerateBurst builds a deterministic bursty timeline. Background events
// arrive as a Poisson process at BackgroundRate over the whole span; each
// of the Bursts windows is placed in its own equal slice of the span
// (uniformly within the slack, so windows never overlap and a quiet gap
// separates consecutive bursts) and filled with a Poisson process at
// BurstRate. The same seed always yields the same timeline.
func GenerateBurst(cfg BurstConfig) (*BurstTimeline, error) {
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("workload: burst duration must be positive")
	}
	if cfg.BackgroundRate < 0 || cfg.BurstRate <= 0 {
		return nil, fmt.Errorf("workload: rates must be non-negative (burst rate positive)")
	}
	if cfg.Bursts < 0 {
		return nil, fmt.Errorf("workload: burst count must be non-negative")
	}
	if cfg.Bursts > 0 {
		segment := cfg.Duration / time.Duration(cfg.Bursts)
		if cfg.BurstLen <= 0 || cfg.BurstLen >= segment {
			return nil, fmt.Errorf("workload: burst length %v must fit inside a %v segment with slack",
				cfg.BurstLen, segment)
		}
	}
	if cfg.Theme == "" || cfg.BurstType == "" {
		return nil, fmt.Errorf("workload: theme and burst type are required")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	tl := &BurstTimeline{Config: cfg}

	// Burst windows: one per equal segment, offset uniformly within the
	// slack. Keeping each window strictly inside its segment guarantees
	// non-overlap and a quiet gap between consecutive bursts.
	segment := time.Duration(0)
	if cfg.Bursts > 0 {
		segment = cfg.Duration / time.Duration(cfg.Bursts)
	}
	for i := 0; i < cfg.Bursts; i++ {
		slack := segment - cfg.BurstLen
		start := time.Duration(i)*segment + time.Duration(rng.Int63n(int64(slack)))
		tl.Windows = append(tl.Windows, BurstWindow{Start: start, End: start + cfg.BurstLen})
	}

	mk := func(id string, at time.Duration, src string, burst int) TimedEvent {
		return TimedEvent{
			At:    at,
			Burst: burst,
			Event: &event.Event{
				ID:    id,
				Theme: []string{cfg.Theme},
				Tuples: []event.Tuple{
					{Attr: "type", Value: cfg.BurstType},
					{Attr: "src", Value: src},
				},
			},
		}
	}

	// Background: Poisson arrivals across the whole span.
	for i, at := 0, poissonStep(rng, cfg.BackgroundRate); at < cfg.Duration; i, at = i+1, at+poissonStep(rng, cfg.BackgroundRate) {
		tl.Events = append(tl.Events, mk(fmt.Sprintf("bg-%d", i), at, "background", -1))
	}
	// Bursts: Poisson arrivals within each window at the burst rate.
	for w, win := range tl.Windows {
		for i, at := 0, win.Start+poissonStep(rng, cfg.BurstRate); at < win.End; i, at = i+1, at+poissonStep(rng, cfg.BurstRate) {
			tl.Events = append(tl.Events, mk(fmt.Sprintf("burst-%d-%d", w, i), at, "burst", w))
		}
	}
	sort.SliceStable(tl.Events, func(i, j int) bool { return tl.Events[i].At < tl.Events[j].At })
	return tl, nil
}

// poissonStep draws one exponential inter-arrival gap for a Poisson
// process of the given rate (events per second). A zero rate yields an
// effectively infinite gap, i.e. no events.
func poissonStep(rng *rand.Rand, rate float64) time.Duration {
	if rate <= 0 {
		return time.Duration(1<<62 - 1)
	}
	return time.Duration(rng.ExpFloat64() / rate * float64(time.Second))
}

// BurstScore grades a detector's output against the ground truth.
type BurstScore struct {
	TruePositives  int
	FalsePositives int
	FalseNegatives int
	Precision      float64 // TP / (TP+FP); 1 when nothing was reported
	Recall         float64 // TP / bursts; 1 when there were no bursts
	MeanDelay      time.Duration
	MaxDelay       time.Duration
}

// Score matches detection offsets against the burst windows. A detection
// credits the earliest unmatched window containing it (extended by slack
// past its end, for detectors whose window must fill before crossing the
// threshold); each window is credited at most once, so a duplicate
// detection of the same burst counts as a false positive, as does any
// detection outside every window. Delay is measured from the window start
// to the detection.
func (tl *BurstTimeline) Score(detections []time.Duration, slack time.Duration) BurstScore {
	var sc BurstScore
	matched := make([]bool, len(tl.Windows))
	var totalDelay time.Duration
	for _, at := range detections {
		credited := false
		for i, w := range tl.Windows {
			if matched[i] || at < w.Start || at > w.End+slack {
				continue
			}
			matched[i] = true
			credited = true
			d := at - w.Start
			totalDelay += d
			if d > sc.MaxDelay {
				sc.MaxDelay = d
			}
			break
		}
		if credited {
			sc.TruePositives++
		} else {
			sc.FalsePositives++
		}
	}
	for _, m := range matched {
		if !m {
			sc.FalseNegatives++
		}
	}
	sc.Precision = 1
	if sc.TruePositives+sc.FalsePositives > 0 {
		sc.Precision = float64(sc.TruePositives) / float64(sc.TruePositives+sc.FalsePositives)
	}
	sc.Recall = 1
	if len(tl.Windows) > 0 {
		sc.Recall = float64(sc.TruePositives) / float64(len(tl.Windows))
	}
	if sc.TruePositives > 0 {
		sc.MeanDelay = totalDelay / time.Duration(sc.TruePositives)
	}
	return sc
}
