package workload

import (
	"testing"

	"thematicep/internal/text"
)

func TestGenerateScaleDeterministic(t *testing.T) {
	cfg := DefaultScaleConfig(2000)
	a := GenerateScale(cfg)
	b := GenerateScale(cfg)
	if len(a.Subs) != cfg.Subscriptions || len(a.Events) != cfg.Events {
		t.Fatalf("got %d subs / %d events, want %d / %d",
			len(a.Subs), len(a.Events), cfg.Subscriptions, cfg.Events)
	}
	for i := range a.Subs {
		if a.Subs[i].String() != b.Subs[i].String() {
			t.Fatalf("sub %d differs across runs:\n%s\n%s", i, a.Subs[i], b.Subs[i])
		}
	}
	for i := range a.Events {
		if a.Events[i].String() != b.Events[i].String() {
			t.Fatalf("event %d differs across runs", i)
		}
	}
}

func TestGenerateScaleValid(t *testing.T) {
	w := GenerateScale(DefaultScaleConfig(5000))
	for _, s := range w.Subs {
		if err := s.Validate(); err != nil {
			t.Fatalf("invalid subscription %q: %v", s.ID, err)
		}
	}
	for _, e := range w.Events {
		if err := e.Validate(); err != nil {
			t.Fatalf("invalid event %q: %v", e.ID, err)
		}
		if len(e.Tuples) != 8 {
			t.Fatalf("event %q has %d tuples, want 8", e.ID, len(e.Tuples))
		}
	}
}

func TestGenerateScaleMix(t *testing.T) {
	cfg := DefaultScaleConfig(20000)
	w := GenerateScale(cfg)
	approxOnly, exactPreds, totalPreds := 0, 0, 0
	for _, s := range w.Subs {
		all := true
		for _, p := range s.Predicates {
			totalPreds++
			if !p.ApproxAttr && !p.ApproxValue {
				exactPreds++
			}
			if !p.ApproxAttr || !p.ApproxValue {
				all = false
			}
		}
		if all {
			approxOnly++
		}
	}
	// ApproxOnlyFraction=0.02 plus random all-approx draws: the
	// never-prunable population should be a small minority.
	if approxOnly == 0 || approxOnly > cfg.Subscriptions/5 {
		t.Errorf("approx-only subs = %d of %d, want small non-zero minority",
			approxOnly, cfg.Subscriptions)
	}
	// ExactFraction=0.7 per slot → ~half of predicates fully exact.
	if exactPreds*3 < totalPreds {
		t.Errorf("only %d/%d predicates fully exact; pruning would be toothless",
			exactPreds, totalPreds)
	}
}

// TestGenerateScaleSkew asserts the zipf draw concentrates load: the
// hottest attribute should dwarf a uniform share.
func TestGenerateScaleSkew(t *testing.T) {
	cfg := DefaultScaleConfig(20000)
	w := GenerateScale(cfg)
	counts := map[string]int{}
	total := 0
	for _, s := range w.Subs {
		for _, p := range s.Predicates {
			counts[p.Attr]++
			total++
		}
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	uniform := total / cfg.Attrs
	if max < 4*uniform {
		t.Errorf("hottest attr %d vs uniform share %d; zipf skew missing", max, uniform)
	}
}

// TestGenerateScaleOverlap checks subscriptions and events share hot
// vocabulary so candidate sets are non-empty and matches occur.
func TestGenerateScaleOverlap(t *testing.T) {
	w := GenerateScale(DefaultScaleConfig(2000))
	evTerms := map[string]bool{}
	for _, e := range w.Events {
		for _, tu := range e.Tuples {
			evTerms[text.Canonical(tu.Attr)+"\x00"+text.Canonical(tu.Value)] = true
		}
	}
	hits := 0
	for _, s := range w.Subs {
		for _, p := range s.Predicates {
			if evTerms[text.Canonical(p.Attr)+"\x00"+text.Canonical(p.Value)] {
				hits++
				break
			}
		}
	}
	if hits*20 < len(w.Subs) {
		t.Errorf("only %d/%d subs share an exact (attr,value) with any event", hits, len(w.Subs))
	}
}
