package workload

import (
	"testing"
	"time"
)

func TestGenerateBurstDeterministic(t *testing.T) {
	cfg := DefaultBurstConfig()
	a, err := GenerateBurst(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateBurst(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Events) != len(b.Events) || len(a.Windows) != len(b.Windows) {
		t.Fatalf("same seed diverged: %d/%d events, %d/%d windows",
			len(a.Events), len(b.Events), len(a.Windows), len(b.Windows))
	}
	for i := range a.Events {
		if a.Events[i].At != b.Events[i].At || a.Events[i].Event.ID != b.Events[i].Event.ID {
			t.Fatalf("event %d diverged: %v/%q vs %v/%q", i,
				a.Events[i].At, a.Events[i].Event.ID, b.Events[i].At, b.Events[i].Event.ID)
		}
	}
	c, err := GenerateBurst(BurstConfig{
		Seed: cfg.Seed + 1, Duration: cfg.Duration, BackgroundRate: cfg.BackgroundRate,
		BurstRate: cfg.BurstRate, BurstLen: cfg.BurstLen, Bursts: cfg.Bursts,
		Theme: cfg.Theme, BurstType: cfg.BurstType,
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.Windows[0] == a.Windows[0] {
		t.Error("different seeds produced identical first burst window")
	}
}

func TestGenerateBurstShape(t *testing.T) {
	cfg := DefaultBurstConfig()
	tl, err := GenerateBurst(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tl.Windows) != cfg.Bursts {
		t.Fatalf("windows = %d, want %d", len(tl.Windows), cfg.Bursts)
	}
	for i, w := range tl.Windows {
		if w.Start < 0 || w.End > cfg.Duration || w.End-w.Start != cfg.BurstLen {
			t.Errorf("window %d = %+v out of shape", i, w)
		}
		if i > 0 && w.Start <= tl.Windows[i-1].End {
			t.Errorf("window %d overlaps previous (%v <= %v)", i, w.Start, tl.Windows[i-1].End)
		}
	}
	var last time.Duration
	inBurst, background := 0, 0
	for i, te := range tl.Events {
		if te.At < last {
			t.Fatalf("event %d out of order: %v after %v", i, te.At, last)
		}
		last = te.At
		if te.At < 0 || te.At > cfg.Duration+cfg.BurstLen {
			t.Errorf("event %d at %v outside the timeline", i, te.At)
		}
		if err := te.Event.Validate(); err != nil {
			t.Fatalf("event %d invalid: %v", i, err)
		}
		if te.Burst >= 0 {
			inBurst++
			w := tl.Windows[te.Burst]
			if te.At < w.Start || te.At > w.End {
				t.Errorf("burst event %d at %v outside its window %+v", i, te.At, w)
			}
		} else {
			background++
		}
	}
	// Expected counts: background rate*span, burst rate*len per burst.
	// Poisson with these means stays well within a factor of two.
	wantBg := cfg.BackgroundRate * cfg.Duration.Seconds()
	wantBurst := cfg.BurstRate * cfg.BurstLen.Seconds() * float64(cfg.Bursts)
	if f := float64(background); f < wantBg/2 || f > wantBg*2 {
		t.Errorf("background events = %d, want about %.0f", background, wantBg)
	}
	if f := float64(inBurst); f < wantBurst/2 || f > wantBurst*2 {
		t.Errorf("burst events = %d, want about %.0f", inBurst, wantBurst)
	}
}

func TestGenerateBurstValidation(t *testing.T) {
	base := DefaultBurstConfig()
	bad := []func(*BurstConfig){
		func(c *BurstConfig) { c.Duration = 0 },
		func(c *BurstConfig) { c.BurstRate = 0 },
		func(c *BurstConfig) { c.BackgroundRate = -1 },
		func(c *BurstConfig) { c.Bursts = -1 },
		func(c *BurstConfig) { c.BurstLen = c.Duration }, // cannot fit a segment
		func(c *BurstConfig) { c.Theme = "" },
		func(c *BurstConfig) { c.BurstType = "" },
	}
	for i, mutate := range bad {
		cfg := base
		mutate(&cfg)
		if _, err := GenerateBurst(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestBurstScorePerfect(t *testing.T) {
	tl, err := GenerateBurst(DefaultBurstConfig())
	if err != nil {
		t.Fatal(err)
	}
	var det []time.Duration
	for _, w := range tl.Windows {
		det = append(det, w.Start+100*time.Millisecond)
	}
	sc := tl.Score(det, 0)
	if sc.Precision != 1 || sc.Recall != 1 || sc.FalsePositives != 0 || sc.FalseNegatives != 0 {
		t.Errorf("perfect detections scored %+v", sc)
	}
	if sc.MeanDelay != 100*time.Millisecond || sc.MaxDelay != 100*time.Millisecond {
		t.Errorf("delay = %v/%v, want 100ms", sc.MeanDelay, sc.MaxDelay)
	}
}

func TestBurstScorePenalties(t *testing.T) {
	tl, err := GenerateBurst(DefaultBurstConfig())
	if err != nil {
		t.Fatal(err)
	}
	w0 := tl.Windows[0]
	// One hit, one duplicate of the same burst, one spurious detection in
	// the quiet gap; the other three bursts are missed.
	gap := (tl.Windows[0].End + tl.Windows[1].Start) / 2
	sc := tl.Score([]time.Duration{w0.Start + time.Second, w0.Start + time.Second, gap}, 0)
	if sc.TruePositives != 1 || sc.FalsePositives != 2 || sc.FalseNegatives != 3 {
		t.Fatalf("score = %+v, want TP=1 FP=2 FN=3", sc)
	}
	if sc.Precision != 1.0/3 || sc.Recall != 0.25 {
		t.Errorf("precision/recall = %v/%v, want 1/3 and 1/4", sc.Precision, sc.Recall)
	}
	// Slack credits a detection that lands just after the window closes.
	late := tl.Windows[1].End + 50*time.Millisecond
	sc = tl.Score([]time.Duration{late}, 100*time.Millisecond)
	if sc.TruePositives != 1 {
		t.Errorf("late detection within slack scored %+v, want one TP", sc)
	}
	if sc = tl.Score(nil, 0); sc.Precision != 1 || sc.Recall != 0 {
		t.Errorf("empty detections scored %+v, want precision 1 recall 0", sc)
	}
}
