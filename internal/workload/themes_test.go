package workload

import (
	"math/rand"
	"testing"
)

func contains(set []string, x string) bool {
	for _, s := range set {
		if s == x {
			return true
		}
	}
	return false
}

func isSubset(small, large []string) bool {
	for _, s := range small {
		if !contains(large, s) {
			return false
		}
	}
	return true
}

func TestSampleThemesSizesAndContainment(t *testing.T) {
	w := Generate(testConfig())
	rng := rand.New(rand.NewSource(5))
	cases := [][2]int{{1, 1}, {2, 10}, {10, 2}, {5, 5}, {30, 7}, {7, 30}, {30, 30}}
	for _, c := range cases {
		combo := w.SampleThemes(rng, c[0], c[1])
		if len(combo.EventTheme) != c[0] || len(combo.SubTheme) != c[1] {
			t.Fatalf("sizes = %d/%d, want %d/%d",
				len(combo.EventTheme), len(combo.SubTheme), c[0], c[1])
		}
		if c[0] <= c[1] {
			if !isSubset(combo.EventTheme, combo.SubTheme) {
				t.Errorf("event theme not contained in sub theme for %v", c)
			}
		} else if !isSubset(combo.SubTheme, combo.EventTheme) {
			t.Errorf("sub theme not contained in event theme for %v", c)
		}
	}
}

func TestSampleThemesDistinctTags(t *testing.T) {
	w := Generate(testConfig())
	rng := rand.New(rand.NewSource(6))
	combo := w.SampleThemes(rng, 30, 15)
	seen := make(map[string]bool)
	for _, tag := range combo.EventTheme {
		if seen[tag] {
			t.Fatalf("duplicate tag %q", tag)
		}
		seen[tag] = true
		if !contains(w.ThemePool(), tag) {
			t.Fatalf("tag %q not from the pool", tag)
		}
	}
}

func TestSampleThemesClampedToPool(t *testing.T) {
	w := Generate(testConfig())
	rng := rand.New(rand.NewSource(7))
	combo := w.SampleThemes(rng, 1000, -5)
	if len(combo.EventTheme) != len(w.ThemePool()) {
		t.Errorf("oversize not clamped: %d", len(combo.EventTheme))
	}
	if len(combo.SubTheme) != 0 {
		t.Errorf("negative size not clamped: %d", len(combo.SubTheme))
	}
}

func TestSampleThemesZipfBiased(t *testing.T) {
	w := Generate(testConfig())
	rng := rand.New(rand.NewSource(8))
	pool := w.ThemePool()
	first := pool[0]
	countZipf, countUniform := 0, 0
	const trials = 300
	for i := 0; i < trials; i++ {
		if contains(w.SampleThemesZipf(rng, 3, 3).EventTheme, first) {
			countZipf++
		}
		if contains(w.SampleThemes(rng, 3, 3).EventTheme, first) {
			countUniform++
		}
	}
	if countZipf <= countUniform {
		t.Errorf("zipf did not bias toward head tag: zipf=%d uniform=%d", countZipf, countUniform)
	}
}

func TestApplyAndClearThemes(t *testing.T) {
	w := Generate(testConfig())
	rng := rand.New(rand.NewSource(9))
	combo := w.SampleThemes(rng, 4, 2)
	w.ApplyThemes(combo)
	for _, e := range w.Events {
		if len(e.Theme) != 4 {
			t.Fatalf("event theme size = %d", len(e.Theme))
		}
	}
	for _, s := range w.ApproxSubs {
		if len(s.Theme) != 2 {
			t.Fatalf("sub theme size = %d", len(s.Theme))
		}
	}
	w.ClearThemes()
	for _, e := range w.Events {
		if len(e.Theme) != 0 {
			t.Fatal("ClearThemes left event themes")
		}
	}
}
