package workload

import (
	"math"
	"math/rand"
)

// ThemeCombination is one sampled pair of theme tag sets for a
// sub-experiment (§5.2.4). Containment holds by construction: the smaller
// set is a subset of the larger, reflecting the paper's "the event theme
// tags set contains the subscription theme tags set or vice versa".
type ThemeCombination struct {
	EventTheme []string
	SubTheme   []string
}

// ThemePool returns the theme-tag candidate pool: the top terms of the six
// domains originally used to expand the event set.
func (w *Workload) ThemePool() []string {
	return w.th.AllTopTerms()
}

// SampleThemes draws one combination with the given theme sizes using
// uniform sampling without replacement from the pool. Sizes are clamped to
// the pool size.
func (w *Workload) SampleThemes(rng *rand.Rand, eventSize, subSize int) ThemeCombination {
	return w.sampleThemes(rng, eventSize, subSize, nil)
}

// SampleThemesZipf draws one combination with Zipf-distributed tag
// popularity (s=1.1), modelling realistic human tagging behaviour where a
// few tags dominate (§7 future work; the tagging ablation of DESIGN.md §4).
func (w *Workload) SampleThemesZipf(rng *rand.Rand, eventSize, subSize int) ThemeCombination {
	pool := w.ThemePool()
	weights := make([]float64, len(pool))
	for i := range weights {
		weights[i] = 1 / math.Pow(float64(i+1), 1.1)
	}
	return w.sampleThemes(rng, eventSize, subSize, weights)
}

// sampleThemes draws max(eventSize, subSize) distinct tags (optionally
// weight-biased) and takes the smaller set as a subset of the larger.
func (w *Workload) sampleThemes(rng *rand.Rand, eventSize, subSize int, weights []float64) ThemeCombination {
	pool := w.ThemePool()
	if eventSize > len(pool) {
		eventSize = len(pool)
	}
	if subSize > len(pool) {
		subSize = len(pool)
	}
	if eventSize < 0 {
		eventSize = 0
	}
	if subSize < 0 {
		subSize = 0
	}
	large := eventSize
	if subSize > large {
		large = subSize
	}

	tags := sampleDistinct(rng, pool, large, weights)
	small := eventSize
	if subSize < small {
		small = subSize
	}
	subset := make([]string, small)
	copy(subset, shuffled(rng, tags)[:small])

	combo := ThemeCombination{}
	if eventSize >= subSize {
		combo.EventTheme = tags
		combo.SubTheme = subset
	} else {
		combo.SubTheme = tags
		combo.EventTheme = subset
	}
	return combo
}

// ApplyThemes stamps the combination onto every event and subscription of
// the workload (one theme set for all events and one for all subscriptions,
// as in each of the paper's sub-experiments).
func (w *Workload) ApplyThemes(combo ThemeCombination) {
	for _, e := range w.Events {
		e.Theme = combo.EventTheme
	}
	for _, s := range w.ApproxSubs {
		s.Theme = combo.SubTheme
	}
}

// ClearThemes removes all theme tags (the non-thematic baseline
// configuration).
func (w *Workload) ClearThemes() {
	w.ApplyThemes(ThemeCombination{})
}

// sampleDistinct draws n distinct elements, uniformly when weights is nil,
// otherwise proportionally to weights (without replacement).
func sampleDistinct(rng *rand.Rand, pool []string, n int, weights []float64) []string {
	if n >= len(pool) {
		return shuffled(rng, pool)[:min(n, len(pool))]
	}
	if weights == nil {
		return shuffled(rng, pool)[:n]
	}
	remaining := append([]string(nil), pool...)
	w := append([]float64(nil), weights...)
	out := make([]string, 0, n)
	for len(out) < n {
		total := 0.0
		for _, x := range w {
			total += x
		}
		r := rng.Float64() * total
		idx := 0
		for i, x := range w {
			r -= x
			if r <= 0 {
				idx = i
				break
			}
		}
		out = append(out, remaining[idx])
		remaining = append(remaining[:idx], remaining[idx+1:]...)
		w = append(w[:idx], w[idx+1:]...)
	}
	return out
}

func shuffled(rng *rand.Rand, in []string) []string {
	out := append([]string(nil), in...)
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}
