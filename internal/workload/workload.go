// Package workload synthesizes the evaluation workload of §5.2:
//
//   - seed events (166) combining attributes and values from the embedded
//     SmartSantander/LEI-like datasets (§5.2.1);
//   - semantically expanded events (~14,743 at paper scale) obtained by
//     replacing terms with synonyms from the domain-restricted thesaurus
//     (§5.2.2);
//   - exact subscriptions (94) drawn from seed-event tuples, and their
//     fully approximated (~ on everything) counterparts (§5.2.3);
//   - the relevance ground truth, isomorphic to exact matching between
//     exact subscriptions and seed events (§5.2.3);
//   - theme-tag combinations sampled from the domains' top terms (§5.2.4).
package workload

import (
	"fmt"
	"math/rand"
	"strings"

	"thematicep/internal/event"
	"thematicep/internal/text"
	"thematicep/internal/thesaurus"
	"thematicep/internal/vocab"
)

// Config controls workload synthesis. The zero value is invalid; use
// DefaultConfig or PaperConfig.
type Config struct {
	// Seed drives all random choices; identical configs yield identical
	// workloads.
	Seed int64
	// SeedEvents is the number of seed events (paper: 166).
	SeedEvents int
	// ExpandedPerSeed is the number of expanded variants per seed event
	// (paper: ~89, for 14,743 total).
	ExpandedPerSeed int
	// Subscriptions is the number of exact/approximate subscriptions
	// (paper: 94).
	Subscriptions int
	// MaxPredicates bounds the predicates per subscription.
	MaxPredicates int
}

// DefaultConfig is a reduced workload that keeps the full pipeline shape but
// runs quickly on one core.
func DefaultConfig() Config {
	return Config{
		Seed:            7,
		SeedEvents:      166,
		ExpandedPerSeed: 9,
		Subscriptions:   94,
		MaxPredicates:   3,
	}
}

// PaperConfig is the paper-scale workload: 166 seeds expanded to ~14,743
// events and 94 subscriptions.
func PaperConfig() Config {
	cfg := DefaultConfig()
	cfg.ExpandedPerSeed = 89
	return cfg
}

// Workload is a generated evaluation workload.
type Workload struct {
	// Seeds are the seed events (§5.2.1); they carry no theme tags.
	Seeds []*event.Event
	// Events are the semantically expanded events (§5.2.2).
	Events []*event.Event
	// SeedOf[i] is the index into Seeds of the seed Events[i] expands.
	SeedOf []int
	// ExactSubs are the exact subscriptions drawn from seed tuples.
	ExactSubs []*event.Subscription
	// ApproxSubs are the corresponding 100%-approximation subscriptions.
	ApproxSubs []*event.Subscription

	th *thesaurus.T
	// relevantSeeds[si] is the set of seed indices exactly matching
	// ExactSubs[si]; the ground truth derives from it.
	relevantSeeds []map[int]bool
}

// Generate builds a workload. The thesaurus is restricted to the six
// evaluation domains (the micro-thesauri "conforming to the theme of the
// events", §5.2.2).
func Generate(cfg Config) *Workload {
	if cfg.SeedEvents <= 0 {
		cfg = DefaultConfig()
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	w := &Workload{th: thesaurus.Default()}

	w.generateSeeds(rng, cfg)
	w.generateSubscriptions(rng, cfg)
	w.expandEvents(rng, cfg)
	w.buildGroundTruth()
	return w
}

// Thesaurus returns the thesaurus used for expansion.
func (w *Workload) Thesaurus() *thesaurus.T { return w.th }

// Relevant reports the ground truth: whether Events[eventIdx] is relevant to
// ApproxSubs[subIdx]. Per §5.2.3 the relevance function is isomorphic to
// exact matching between the exact subscription and the seed event the
// expanded event derives from.
func (w *Workload) Relevant(subIdx, eventIdx int) bool {
	return w.relevantSeeds[subIdx][w.SeedOf[eventIdx]]
}

// RelevantCount returns the number of relevant events for a subscription.
func (w *Workload) RelevantCount(subIdx int) int {
	n := 0
	for ei := range w.Events {
		if w.Relevant(subIdx, ei) {
			n++
		}
	}
	return n
}

// locationSite couples a city with its country so location chains stay
// coherent (galway -> ireland -> europe).
type locationSite struct {
	city, country string
}

func sites() []locationSite {
	cities, countries := vocab.Cities(), vocab.Countries()
	out := make([]locationSite, len(cities))
	for i := range cities {
		out[i] = locationSite{city: cities[i], country: countries[i]}
	}
	return out
}

// generateSeeds implements §5.2.1: random combination of dataset attributes
// and values around one sensor capability per event.
func (w *Workload) generateSeeds(rng *rand.Rand, cfg Config) {
	caps := vocab.SensorCapabilities()
	trends := vocab.Trends()
	units := vocab.Units()
	appliances := vocab.Appliances()
	cars := vocab.CarBrands()
	rooms := vocab.Rooms()
	desks := vocab.Desks()
	floors := vocab.Floors()
	zones := vocab.Zones()
	streets := vocab.Streets()
	allSites := sites()

	indoor := map[string]bool{
		"energy consumption": true, "cpu usage": true, "memory usage": true,
		"light": true, "temperature": true, "relative humidity": true,
	}
	mobile := map[string]bool{"speed": true, "parking": true, "co": true, "no2": true}

	for i := 0; i < cfg.SeedEvents; i++ {
		capability := caps[rng.Intn(len(caps))]
		trend := trends[rng.Intn(len(trends))]
		site := allSites[rng.Intn(len(allSites))]

		e := &event.Event{ID: fmt.Sprintf("seed-%03d", i)}
		add := func(attr, value string) {
			e.Tuples = append(e.Tuples, event.Tuple{Attr: attr, Value: value})
		}
		add("type", vocab.EventTypeFor(capability, trend))
		add("measurement unit", units[capability])

		switch {
		case indoor[capability]:
			add("device", appliances[rng.Intn(len(appliances))])
			if rng.Intn(2) == 0 {
				add("desk", desks[rng.Intn(len(desks))])
			}
			add("room", rooms[rng.Intn(len(rooms))])
			if rng.Intn(2) == 0 {
				add("floor", floors[rng.Intn(len(floors))])
			}
			add("zone", "building")
		case mobile[capability] && rng.Intn(2) == 0:
			add("vehicle", cars[rng.Intn(len(cars))])
			add("street", streets[rng.Intn(len(streets))])
		default:
			add("street", streets[rng.Intn(len(streets))])
			add("zone", zones[rng.Intn(len(zones))])
		}
		add("city", site.city)
		add("country", site.country)
		add("continent", "europe")
		w.Seeds = append(w.Seeds, e)
	}
}

// generateSubscriptions implements §5.2.3: exact subscriptions are random
// tuple subsets of seed events; approximate ones relax every attribute and
// value.
func (w *Workload) generateSubscriptions(rng *rand.Rand, cfg Config) {
	maxPred := cfg.MaxPredicates
	if maxPred <= 0 {
		maxPred = 3
	}
	seen := make(map[string]bool)
	for len(w.ExactSubs) < cfg.Subscriptions {
		seed := w.Seeds[rng.Intn(len(w.Seeds))]
		n := 1 + rng.Intn(maxPred)
		if n > len(seed.Tuples) {
			n = len(seed.Tuples)
		}
		picks := rng.Perm(len(seed.Tuples))[:n]
		sub := &event.Subscription{ID: fmt.Sprintf("sub-%03d", len(w.ExactSubs))}
		for _, ti := range picks {
			t := seed.Tuples[ti]
			sub.Predicates = append(sub.Predicates, event.Predicate{Attr: t.Attr, Value: t.Value})
		}
		key := canonicalSubKey(sub)
		if seen[key] {
			continue
		}
		seen[key] = true
		w.ExactSubs = append(w.ExactSubs, sub)
		approx := sub.Approximate()
		approx.ID = sub.ID + "-approx"
		w.ApproxSubs = append(w.ApproxSubs, approx)
	}
}

func canonicalSubKey(s *event.Subscription) string {
	parts := make([]string, len(s.Predicates))
	for i, p := range s.Predicates {
		parts[i] = text.Canonical(p.Attr) + "=" + text.Canonical(p.Value)
	}
	// Order-insensitive key.
	for i := 1; i < len(parts); i++ {
		for j := i; j > 0 && parts[j-1] > parts[j]; j-- {
			parts[j-1], parts[j] = parts[j], parts[j-1]
		}
	}
	return strings.Join(parts, "&")
}

// expandEvents implements §5.2.2: each expanded event replaces terms of its
// seed's tuples with synonyms or related terms from the thesaurus. Most
// expandable tuples are rewritten, producing the strongly heterogeneous
// event set the paper evaluates on (its 14,743 events cover the semantic
// variations of 166 seeds).
func (w *Workload) expandEvents(rng *rand.Rand, cfg Config) {
	per := cfg.ExpandedPerSeed
	if per <= 0 {
		per = 1
	}
	for si, seed := range w.Seeds {
		for v := 0; v < per; v++ {
			e := &event.Event{ID: fmt.Sprintf("%s-x%03d", seed.ID, v)}
			for _, t := range seed.Tuples {
				attr, value := t.Attr, t.Value
				// Values are rewritten aggressively, attributes
				// occasionally; ~1 in 8 tuples stays verbatim.
				if rng.Intn(8) > 0 {
					if rng.Intn(4) == 0 {
						attr = w.expandTerm(rng, attr)
					}
					value = w.expandTerm(rng, value)
				}
				e.Tuples = append(e.Tuples, event.Tuple{Attr: attr, Value: value})
			}
			w.Events = append(w.Events, e)
			w.SeedOf = append(w.SeedOf, si)
		}
	}
}

// relatedExpansionRate is the probability that expandTerm substitutes a
// related term instead of a synonym, mirroring §5.2.2's "synonyms or
// related terms from the thesaurus".
const relatedExpansionRate = 0.3

// expandTerm rewrites term by substituting an embedded thesaurus concept
// term (the longest known token subsequence) with one of its synonyms or,
// with probability relatedExpansionRate, one of its related terms. Terms
// without any known sub-phrase are returned unchanged.
func (w *Workload) expandTerm(rng *rand.Rand, term string) string {
	toks := text.TokenizeKeepStops(term)
	// Try longer sub-phrases first so "energy consumption" wins over
	// "energy".
	for length := len(toks); length >= 1; length-- {
		for start := 0; start+length <= len(toks); start++ {
			phrase := strings.Join(toks[start:start+length], " ")
			candidates := w.th.Synonyms(phrase)
			if len(candidates) == 0 {
				continue
			}
			if related := w.th.Related(phrase); len(related) > 0 && rng.Float64() < relatedExpansionRate {
				candidates = related
			}
			replacement := candidates[rng.Intn(len(candidates))]
			out := append([]string{}, toks[:start]...)
			out = append(out, replacement)
			out = append(out, toks[start+length:]...)
			return strings.Join(out, " ")
		}
	}
	return term
}

// buildGroundTruth records, per exact subscription, the seeds it exactly
// matches.
func (w *Workload) buildGroundTruth() {
	w.relevantSeeds = make([]map[int]bool, len(w.ExactSubs))
	for si, sub := range w.ExactSubs {
		m := make(map[int]bool)
		for ei, seed := range w.Seeds {
			if event.ExactMatch(sub, seed) {
				m[ei] = true
			}
		}
		w.relevantSeeds[si] = m
	}
}

// WithSubscriptions returns a clone of w sharing its seeds and events but
// carrying the given subscriptions instead. Ground truth is recomputed from
// the exact versions of the subscriptions, preserving the §5.2.3
// isomorphism for any degree of approximation.
func (w *Workload) WithSubscriptions(subs []*event.Subscription) *Workload {
	out := &Workload{
		Seeds:  w.Seeds,
		Events: w.Events,
		SeedOf: w.SeedOf,
		th:     w.th,
	}
	for _, s := range subs {
		out.ApproxSubs = append(out.ApproxSubs, s)
		out.ExactSubs = append(out.ExactSubs, s.Exact())
	}
	out.buildGroundTruth()
	return out
}

// Clone returns a copy of w that can have themes applied independently of
// the original: events and approximate subscriptions are fresh structs
// (ApplyThemes overwrites their Theme fields) sharing the immutable tuple
// and predicate payloads, ground truth, and thesaurus. The parallel grid
// runner gives each worker its own clone.
func (w *Workload) Clone() *Workload {
	out := &Workload{
		Seeds:         w.Seeds,
		SeedOf:        w.SeedOf,
		ExactSubs:     w.ExactSubs,
		th:            w.th,
		relevantSeeds: w.relevantSeeds,
	}
	out.Events = make([]*event.Event, len(w.Events))
	for i, e := range w.Events {
		cp := *e
		out.Events[i] = &cp
	}
	out.ApproxSubs = make([]*event.Subscription, len(w.ApproxSubs))
	for i, s := range w.ApproxSubs {
		cp := *s
		out.ApproxSubs[i] = &cp
	}
	return out
}

// PartiallyApproximate returns a copy of s with approximately the given
// degree of approximation (§3.4): degree*2*len(predicates) attribute/value
// slots, chosen at random, get the ~ operator. Degree 0 returns an exact
// copy, degree 1 a fully approximate one.
func PartiallyApproximate(s *event.Subscription, degree float64, rng *rand.Rand) *event.Subscription {
	out := s.Exact()
	slots := 2 * len(out.Predicates)
	relax := int(degree*float64(slots) + 0.5)
	if relax <= 0 {
		return out
	}
	if relax > slots {
		relax = slots
	}
	for _, slot := range rng.Perm(slots)[:relax] {
		p := &out.Predicates[slot/2]
		if slot%2 == 0 {
			p.ApproxAttr = true
		} else {
			p.ApproxValue = true
		}
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
