package workload

import (
	"math"
	"math/rand"
	"testing"

	"thematicep/internal/event"
)

func TestPartiallyApproximateDegrees(t *testing.T) {
	src := &event.Subscription{
		ID: "s",
		Predicates: []event.Predicate{
			{Attr: "a", Value: "1"},
			{Attr: "b", Value: "2"},
			{Attr: "c", Value: "3"},
		},
	}
	rng := rand.New(rand.NewSource(1))
	tests := []struct {
		degree float64
	}{
		{degree: 0}, {degree: 0.25}, {degree: 0.5}, {degree: 0.75}, {degree: 1},
	}
	for _, tt := range tests {
		got := PartiallyApproximate(src, tt.degree, rng)
		// 2*3 = 6 slots; requested round(degree*6).
		want := math.Round(tt.degree*6) / 6
		if d := got.ApproximationDegree(); math.Abs(d-want) > 1e-9 {
			t.Errorf("degree %v: got %v, want %v", tt.degree, d, want)
		}
		// Original untouched.
		if src.ApproximationDegree() != 0 {
			t.Fatal("source subscription mutated")
		}
		// Terms unchanged.
		for i, p := range got.Predicates {
			if p.Attr != src.Predicates[i].Attr || p.Value != src.Predicates[i].Value {
				t.Errorf("terms changed: %+v", p)
			}
		}
	}
}

func TestPartiallyApproximateClamps(t *testing.T) {
	src := &event.Subscription{Predicates: []event.Predicate{{Attr: "a", Value: "1"}}}
	rng := rand.New(rand.NewSource(2))
	if got := PartiallyApproximate(src, 5.0, rng); got.ApproximationDegree() != 1 {
		t.Errorf("degree > 1 not clamped: %v", got.ApproximationDegree())
	}
	if got := PartiallyApproximate(src, -1, rng); got.ApproximationDegree() != 0 {
		t.Errorf("negative degree not clamped: %v", got.ApproximationDegree())
	}
}

func TestWithSubscriptionsSharesEventsRecomputesTruth(t *testing.T) {
	w := Generate(testConfig())
	// Take one subscription known to have relevant events and make a
	// never-matching one.
	matching := w.ApproxSubs[0]
	nonMatching := &event.Subscription{
		ID: "none",
		Predicates: []event.Predicate{
			{Attr: "nonexistent attr", Value: "nonexistent value", ApproxAttr: true, ApproxValue: true},
		},
	}
	sw := w.WithSubscriptions([]*event.Subscription{matching, nonMatching})
	if len(sw.ApproxSubs) != 2 || len(sw.Events) != len(w.Events) {
		t.Fatalf("clone shape wrong: %d subs, %d events", len(sw.ApproxSubs), len(sw.Events))
	}
	if sw.RelevantCount(0) != w.RelevantCount(0) {
		t.Errorf("ground truth for carried-over subscription changed: %d vs %d",
			sw.RelevantCount(0), w.RelevantCount(0))
	}
	if sw.RelevantCount(1) != 0 {
		t.Errorf("never-matching subscription has %d relevant events", sw.RelevantCount(1))
	}
	// The clone's thesaurus is shared.
	if sw.Thesaurus() != w.Thesaurus() {
		t.Error("thesaurus not shared")
	}
}

func TestWithSubscriptionsPartialApproximationGroundTruth(t *testing.T) {
	w := Generate(testConfig())
	rng := rand.New(rand.NewSource(3))
	// Ground truth is computed from the exact core, so any degree of
	// approximation yields the same relevance sets.
	subs50 := make([]*event.Subscription, len(w.ExactSubs))
	for i, s := range w.ExactSubs {
		subs50[i] = PartiallyApproximate(s, 0.5, rng)
	}
	sw := w.WithSubscriptions(subs50)
	for si := range sw.ApproxSubs {
		if got, want := sw.RelevantCount(si), w.RelevantCount(si); got != want {
			t.Fatalf("sub %d: relevant %d, want %d", si, got, want)
		}
	}
}
