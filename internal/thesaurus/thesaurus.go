// Package thesaurus provides the EuroVoc-like multi-domain thesaurus the
// evaluation methodology uses (§5.2): micro-thesauri per domain with top
// terms, synonym links for semantic expansion and ground-truth generation,
// and related-term links. It also backs the concept-based rewriting baseline
// (the WordNet stand-in from the paper's prior-work comparison).
package thesaurus

import (
	"fmt"
	"sort"

	"thematicep/internal/text"
	"thematicep/internal/vocab"
)

// T is an immutable thesaurus built from vocab domains. Terms are stored in
// canonical form (text.Canonical), so lookups are case- and
// punctuation-insensitive.
type T struct {
	domains []vocab.Domain
	// canonical term -> list of senses (one per concept the term belongs to).
	senses map[string][]sense
}

type sense struct {
	domain  string
	concept vocab.Concept
}

// New builds a thesaurus over the given domains. Use vocab.Domains() for the
// paper's six evaluation domains, or a subset for domain-restricted
// expansion.
func New(domains []vocab.Domain) *T {
	t := &T{
		domains: domains,
		senses:  make(map[string][]sense),
	}
	for _, d := range domains {
		for _, c := range d.Concepts {
			s := sense{domain: d.Name, concept: c}
			for _, term := range c.Terms() {
				key := text.Canonical(term)
				t.senses[key] = append(t.senses[key], s)
			}
		}
	}
	return t
}

// Default builds the thesaurus over all six evaluation domains.
func Default() *T { return New(vocab.Domains()) }

// Restricted builds a thesaurus over the named domains only, mirroring the
// paper's use of the micro-thesauri conforming to the event themes.
func Restricted(names ...string) (*T, error) {
	ds := make([]vocab.Domain, 0, len(names))
	for _, n := range names {
		d, ok := vocab.DomainByName(n)
		if !ok {
			return nil, fmt.Errorf("thesaurus: unknown domain %q", n)
		}
		ds = append(ds, d)
	}
	return New(ds), nil
}

// Domains returns the names of the domains covered by the thesaurus.
func (t *T) Domains() []string {
	names := make([]string, len(t.domains))
	for i, d := range t.domains {
		names[i] = d.Name
	}
	return names
}

// Known reports whether the term belongs to any concept.
func (t *T) Known(term string) bool {
	_, ok := t.senses[text.Canonical(term)]
	return ok
}

// Synonyms returns all synonym terms for term across all of its senses,
// excluding the term itself, sorted and de-duplicated. These are the
// substitution candidates for semantic expansion (§5.2.2): replacing a term
// with one of them preserves the ground-truth relevance relation.
func (t *T) Synonyms(term string) []string {
	key := text.Canonical(term)
	var out []string
	seen := map[string]bool{key: true}
	for _, s := range t.senses[key] {
		for _, candidate := range s.concept.Terms() {
			ck := text.Canonical(candidate)
			if seen[ck] {
				continue
			}
			seen[ck] = true
			out = append(out, candidate)
		}
	}
	sort.Strings(out)
	return out
}

// SynonymsInDomain is Synonyms restricted to the senses of one domain. The
// evaluation expands events with terms "conforming to the theme of the
// events" (§5.2.2); domain restriction is how that conformance is enforced.
func (t *T) SynonymsInDomain(term, domain string) []string {
	key := text.Canonical(term)
	var out []string
	seen := map[string]bool{key: true}
	for _, s := range t.senses[key] {
		if s.domain != domain {
			continue
		}
		for _, candidate := range s.concept.Terms() {
			ck := text.Canonical(candidate)
			if seen[ck] {
				continue
			}
			seen[ck] = true
			out = append(out, candidate)
		}
	}
	sort.Strings(out)
	return out
}

// Related returns the related (associated but not substitutable) terms of
// all senses of term, sorted and de-duplicated.
func (t *T) Related(term string) []string {
	key := text.Canonical(term)
	var out []string
	seen := make(map[string]bool)
	for _, s := range t.senses[key] {
		for _, r := range s.concept.Related {
			rk := text.Canonical(r)
			if seen[rk] {
				continue
			}
			seen[rk] = true
			out = append(out, r)
		}
	}
	sort.Strings(out)
	return out
}

// SameConcept reports whether a and b are terms of one shared concept (i.e.
// synonym-equivalent in at least one sense). It defines the ground-truth
// equivalence used in §5.2.3.
func (t *T) SameConcept(a, b string) bool {
	ka, kb := text.Canonical(a), text.Canonical(b)
	if ka == kb {
		return true
	}
	for _, sa := range t.senses[ka] {
		for _, term := range sa.concept.Terms() {
			if text.Canonical(term) == kb {
				return true
			}
		}
	}
	return false
}

// DomainsOf returns the sorted names of domains in which term has a sense.
// Terms with more than one domain are the homographs thematic projection
// disambiguates.
func (t *T) DomainsOf(term string) []string {
	key := text.Canonical(term)
	seen := make(map[string]bool)
	var out []string
	for _, s := range t.senses[key] {
		if !seen[s.domain] {
			seen[s.domain] = true
			out = append(out, s.domain)
		}
	}
	sort.Strings(out)
	return out
}

// TopTerms returns the micro-thesaurus top terms of the named domain
// (theme-tag candidates, §5.2.4).
func (t *T) TopTerms(domain string) []string {
	for _, d := range t.domains {
		if d.Name == domain {
			return append([]string(nil), d.TopTerms...)
		}
	}
	return nil
}

// AllTopTerms returns the top terms of every covered domain, in domain
// order. The paper samples theme tags from this pool.
func (t *T) AllTopTerms() []string {
	var out []string
	for _, d := range t.domains {
		out = append(out, d.TopTerms...)
	}
	return out
}

// Concepts returns the number of concepts covered (across domains; a
// homograph counts once per domain sense).
func (t *T) Concepts() int {
	n := 0
	for _, d := range t.domains {
		n += len(d.Concepts)
	}
	return n
}
