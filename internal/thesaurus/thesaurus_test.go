package thesaurus

import (
	"reflect"
	"testing"

	"thematicep/internal/vocab"
)

func TestDefaultCoversSixDomains(t *testing.T) {
	th := Default()
	if got := th.Domains(); !reflect.DeepEqual(got, vocab.DomainNames()) {
		t.Errorf("Domains = %v", got)
	}
	if th.Concepts() < 60 {
		t.Errorf("Concepts = %d, want >= 60", th.Concepts())
	}
}

func TestRestricted(t *testing.T) {
	th, err := Restricted("energy", "transport")
	if err != nil {
		t.Fatal(err)
	}
	if got := th.Domains(); !reflect.DeepEqual(got, []string{"energy", "transport"}) {
		t.Errorf("Domains = %v", got)
	}
	// "temperature" is an environment concept; not in a restricted thesaurus.
	if th.Known("temperature") {
		t.Error("restricted thesaurus should not know environment terms")
	}
	if _, err := Restricted("astrology"); err == nil {
		t.Error("Restricted(astrology) should fail")
	}
}

func TestSynonymsSymmetricWithinConcept(t *testing.T) {
	th := Default()
	syns := th.Synonyms("energy consumption")
	if len(syns) == 0 {
		t.Fatal("no synonyms for energy consumption")
	}
	found := false
	for _, s := range syns {
		if s == "energy usage" {
			found = true
		}
	}
	if !found {
		t.Fatalf("energy usage not among synonyms: %v", syns)
	}
	// Symmetry: energy usage's synonyms must include energy consumption.
	back := th.Synonyms("energy usage")
	found = false
	for _, s := range back {
		if s == "energy consumption" {
			found = true
		}
	}
	if !found {
		t.Errorf("symmetry violated: %v", back)
	}
}

func TestSynonymsExcludeSelf(t *testing.T) {
	th := Default()
	for _, s := range th.Synonyms("parking") {
		if s == "parking" {
			t.Error("Synonyms includes the term itself")
		}
	}
}

func TestSynonymsCanonicalLookup(t *testing.T) {
	th := Default()
	a := th.Synonyms("Energy Consumption")
	b := th.Synonyms("energy_consumption")
	if !reflect.DeepEqual(a, b) || len(a) == 0 {
		t.Errorf("canonical lookup mismatch: %v vs %v", a, b)
	}
}

func TestHomographHasMultipleDomains(t *testing.T) {
	th := Default()
	tests := []struct {
		term       string
		minDomains int
	}{
		{term: "current", minDomains: 2},
		{term: "coach", minDomains: 2},
		{term: "park", minDomains: 2},
		{term: "class", minDomains: 2},
		{term: "charge", minDomains: 2},
		{term: "energy consumption", minDomains: 1},
	}
	for _, tt := range tests {
		if got := th.DomainsOf(tt.term); len(got) < tt.minDomains {
			t.Errorf("DomainsOf(%q) = %v, want >= %d domains", tt.term, got, tt.minDomains)
		}
	}
}

func TestSynonymsInDomainSeparatesSenses(t *testing.T) {
	th := Default()
	energy := th.SynonymsInDomain("current", "energy")
	env := th.SynonymsInDomain("current", "environment")
	if len(energy) == 0 || len(env) == 0 {
		t.Fatalf("current must have senses in both domains: energy=%v env=%v", energy, env)
	}
	// The energy sense relates to amperage; the environment sense to tides.
	has := func(list []string, term string) bool {
		for _, s := range list {
			if s == term {
				return true
			}
		}
		return false
	}
	if !has(energy, "amperage") {
		t.Errorf("energy sense of current lacks amperage: %v", energy)
	}
	if has(env, "amperage") {
		t.Errorf("environment sense of current contains amperage: %v", env)
	}
	if !has(env, "tidal current") {
		t.Errorf("environment sense of current lacks tidal current: %v", env)
	}
}

func TestSameConcept(t *testing.T) {
	th := Default()
	tests := []struct {
		a, b string
		want bool
	}{
		{a: "energy consumption", b: "electricity usage", want: true},
		{a: "energy consumption", b: "energy consumption", want: true},
		{a: "Energy Consumption", b: "energy usage", want: true},
		{a: "energy consumption", b: "parking", want: false},
		{a: "laptop", b: "computer", want: true},
		{a: "ireland", b: "eire", want: true},
		{a: "galway", b: "santander", want: false},
		{a: "unknown-term-xyz", b: "unknown-term-xyz", want: true}, // identity holds even off-vocabulary
		{a: "unknown-term-xyz", b: "parking", want: false},
	}
	for _, tt := range tests {
		if got := th.SameConcept(tt.a, tt.b); got != tt.want {
			t.Errorf("SameConcept(%q, %q) = %v, want %v", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestSameConceptSymmetric(t *testing.T) {
	th := Default()
	pairs := [][2]string{
		{"energy consumption", "power consumption"},
		{"laptop", "pc"},
		{"park", "green space"},
		{"coach", "bus"},
		{"coach", "tutor"},
	}
	for _, p := range pairs {
		if th.SameConcept(p[0], p[1]) != th.SameConcept(p[1], p[0]) {
			t.Errorf("SameConcept not symmetric for %v", p)
		}
		if !th.SameConcept(p[0], p[1]) {
			t.Errorf("SameConcept(%q, %q) = false, want true", p[0], p[1])
		}
	}
}

func TestHomographBridging(t *testing.T) {
	th := Default()
	// "coach" bridges bus (transport) and tutor (education), but bus and
	// tutor are NOT the same concept.
	if th.SameConcept("bus", "tutor") {
		t.Error("bus and tutor must not be the same concept")
	}
}

func TestRelated(t *testing.T) {
	th := Default()
	rel := th.Related("parking")
	if len(rel) == 0 {
		t.Fatal("parking has no related terms")
	}
	for _, r := range rel {
		if r == "parking" {
			t.Error("Related contains the term itself")
		}
	}
}

func TestTopTerms(t *testing.T) {
	th := Default()
	for _, d := range vocab.DomainNames() {
		if len(th.TopTerms(d)) < 4 {
			t.Errorf("TopTerms(%q) too small", d)
		}
	}
	if th.TopTerms("astrology") != nil {
		t.Error("TopTerms of unknown domain should be nil")
	}
	all := th.AllTopTerms()
	want := 0
	for _, d := range vocab.Domains() {
		want += len(d.TopTerms)
	}
	if len(all) != want {
		t.Errorf("AllTopTerms = %d terms, want %d", len(all), want)
	}
}

func TestKnown(t *testing.T) {
	th := Default()
	if !th.Known("parking") || !th.Known("Parking Space") {
		t.Error("Known failed for vocabulary terms")
	}
	if th.Known("zzz unseen term") {
		t.Error("Known true for off-vocabulary term")
	}
}
