package subindex

import (
	"fmt"
	"sync"
	"testing"

	"thematicep/internal/event"
)

// TestConcurrentMutateVsCandidates hammers Add/Remove/replace from several
// writers while readers enumerate candidates, exercising posting-list
// compaction and dense-id recycling under the race detector.
func TestConcurrentMutateVsCandidates(t *testing.T) {
	ix := New[int]()
	attrs := []string{"type", "room", "device", "zone"}
	sub := func(i int) *event.Subscription {
		return &event.Subscription{
			Theme: []string{fmt.Sprintf("theme %d", i%3)},
			Predicates: []event.Predicate{
				{Attr: attrs[i%len(attrs)], Value: fmt.Sprintf("v%d", i%7), ApproxValue: i%2 == 0},
				{Attr: attrs[(i+1)%len(attrs)], Value: "x", ApproxAttr: i%5 == 0, ApproxValue: true},
			},
		}
	}
	ev := &event.Event{
		Theme: []string{"theme 1"},
		Tuples: []event.Tuple{
			{Attr: "type", Value: "v1"},
			{Attr: "room", Value: "v2"},
			{Attr: "device", Value: "v3"},
		},
	}

	const writers, readers, ops = 4, 4, 500
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				id := fmt.Sprintf("w%d-s%d", w, i%50)
				switch i % 3 {
				case 0, 1:
					ix.Add(id, sub(i), w*ops+i)
				case 2:
					ix.Remove(id)
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				n := 0
				c, p := ix.Candidates(ev, func(int) { n++ })
				if c != n || c < 0 || p < 0 {
					t.Errorf("inconsistent enumeration: yielded %d, reported c=%d p=%d", n, c, p)
					return
				}
				_ = ix.Stats()
			}
		}()
	}
	wg.Wait()

	// Drain everything and verify the index empties cleanly.
	for w := 0; w < writers; w++ {
		for i := 0; i < 50; i++ {
			ix.Remove(fmt.Sprintf("w%d-s%d", w, i))
		}
	}
	if ix.Len() != 0 || ix.Themes() != 0 {
		t.Errorf("after drain: len=%d themes=%d, want 0/0", ix.Len(), ix.Themes())
	}
	st := ix.Stats()
	if st.Buckets != 0 || st.ApproxEntries != 0 || st.MaxBucket != 0 {
		t.Errorf("after drain: stats %+v, want empty postings", st)
	}
}
