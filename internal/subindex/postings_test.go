package subindex

import (
	"math/rand"
	"slices"
	"testing"
)

// naiveIntersect is the oracle: map-based set intersection, sorted.
func naiveIntersect(lists ...[]uint32) []uint32 {
	if len(lists) == 0 {
		return nil
	}
	counts := make(map[uint32]int)
	for _, l := range lists {
		seen := make(map[uint32]bool)
		for _, x := range l {
			if !seen[x] {
				seen[x] = true
				counts[x]++
			}
		}
	}
	var out []uint32
	for x, c := range counts {
		if c == len(lists) {
			out = append(out, x)
		}
	}
	slices.Sort(out)
	return out
}

func sortedSet(xs []uint32) []uint32 {
	slices.Sort(xs)
	return slices.Compact(xs)
}

func TestGallop(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		xs := make([]uint32, rng.Intn(64))
		for i := range xs {
			xs[i] = uint32(rng.Intn(100))
		}
		xs = sortedSet(xs)
		for target := uint32(0); target <= 100; target++ {
			for from := 0; from <= len(xs); from++ {
				got := gallop(xs, from, target)
				want := from
				for want < len(xs) && xs[want] < target {
					want++
				}
				if got != want {
					t.Fatalf("gallop(%v, %d, %d) = %d, want %d", xs, from, target, got, want)
				}
			}
		}
	}
}

// TestIntersectProperty drives the galloping intersection against the
// naive map-based oracle over random list shapes, including the skewed
// short-vs-long case galloping exists for.
func TestIntersectProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 500; trial++ {
		nlists := 2 + rng.Intn(4)
		lists := make([][]uint32, nlists)
		for i := range lists {
			// Mix tiny and large lists with overlapping ranges.
			n := rng.Intn(3 + rng.Intn(200))
			l := make([]uint32, n)
			for j := range l {
				l[j] = uint32(rng.Intn(150))
			}
			lists[i] = sortedSet(l)
		}
		want := naiveIntersect(lists...)

		got2 := intersect2(nil, lists[0], lists[1])
		if want2 := naiveIntersect(lists[0], lists[1]); !slices.Equal(got2, want2) {
			t.Fatalf("intersect2(%v, %v) = %v, want %v", lists[0], lists[1], got2, want2)
		}
		gotAll := intersectAll(nil, lists...)
		if !slices.Equal(gotAll, want) {
			t.Fatalf("intersectAll(%v) = %v, want %v", lists, gotAll, want)
		}

		// containsAll agrees with the subset relation.
		sub, super := lists[0], lists[1]
		wantSub := len(naiveIntersect(sub, super)) == len(sub)
		if got := containsAll(sub, super); got != wantSub {
			t.Fatalf("containsAll(%v, %v) = %v, want %v", sub, super, got, wantSub)
		}
	}
}

func TestInsertDeleteSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var xs []uint32
	oracle := map[uint32]bool{}
	for op := 0; op < 2000; op++ {
		x := uint32(rng.Intn(80))
		if rng.Intn(2) == 0 {
			xs = insertSorted(xs, x)
			oracle[x] = true
		} else {
			xs = deleteSorted(xs, x)
			delete(oracle, x)
		}
		want := make([]uint32, 0, len(oracle))
		for k := range oracle {
			want = append(want, k)
		}
		slices.Sort(want)
		if !slices.Equal(xs, want) {
			t.Fatalf("op %d: xs = %v, want %v", op, xs, want)
		}
	}
}

// FuzzIntersect decodes two arbitrary byte strings into sorted term-id
// sets and checks the galloping intersection and containment against the
// naive oracle.
func FuzzIntersect(f *testing.F) {
	f.Add([]byte{1, 2, 3}, []byte{2, 3, 4})
	f.Add([]byte{}, []byte{0})
	f.Add([]byte{255, 0, 128, 7}, []byte{7, 7, 7})
	f.Fuzz(func(t *testing.T, a, b []byte) {
		decode := func(bs []byte) []uint32 {
			xs := make([]uint32, len(bs))
			for i, v := range bs {
				// Spread ids so runs and gaps both occur.
				xs[i] = uint32(v) * uint32(i%5+1)
			}
			return sortedSet(xs)
		}
		la, lb := decode(a), decode(b)
		want := naiveIntersect(la, lb)
		if got := intersect2(nil, la, lb); !slices.Equal(got, want) {
			t.Fatalf("intersect2(%v, %v) = %v, want %v", la, lb, got, want)
		}
		if got := intersectAll(nil, la, lb); !slices.Equal(got, want) {
			t.Fatalf("intersectAll(%v, %v) = %v, want %v", la, lb, got, want)
		}
		wantSub := len(want) == len(la)
		if got := containsAll(la, lb); got != wantSub {
			t.Fatalf("containsAll(%v, %v) = %v, want %v", la, lb, got, wantSub)
		}
	})
}
