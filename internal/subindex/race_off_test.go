//go:build !race

package subindex

const raceEnabled = false
