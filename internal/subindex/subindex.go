// Package subindex implements the broker's subscription pruning index as
// an inverted index: sorted posting lists of dense uint32 subscription ids
// keyed by compiled-theme group and by interned exact terms — a term is
// either an exact (non-~) attribute or an exact (attribute, value) equality
// pair. A publish turns the event's tuples into a sorted term-id set once,
// then intersects that set against each group's anchor-term list with
// galloping (skip-pointer) search, so candidate enumeration is sublinear in
// the number of live subscriptions and allocation-free on the warm path.
//
// # Why pruning never loses a delivery
//
// The matcher's similarity matrix (§3.5) gives entry (i,j) the product
// attrSim·valueSim, where an exact (non-~) term contributes 1 on canonical
// equality and 0 otherwise, and event attributes are unique in canonical
// form (§3.3, enforced by Event.Validate). Three consequences make skipping
// safe — a skipped subscription provably scores 0, and the broker never
// delivers a zero score regardless of threshold:
//
//  1. A predicate with an exact attribute a has at most one candidate tuple
//     (the one whose canonical attribute equals a). If the event has no such
//     tuple, the predicate's similarity row is all zeros, so every mapping's
//     product — the score — is 0.
//  2. If that predicate also has an exact equality value v, the single
//     candidate tuple must additionally carry a canonically equal value,
//     else the row is again all zeros.
//  3. An injective predicates→tuples mapping needs at least as many tuples
//     as predicates; with fewer, no feasible mapping exists and the score
//     is 0.
//
// In inverted-index terms: rules 1 and 2 say a subscription's requirement
// term set must be a subset of the event's term set, rule 3 caps predicate
// count by tuple count. Subscriptions with no exact term at all land in a
// conservative approximate-only posting that is always scored (rule 3
// aside), guaranteeing no recall loss: delivery sets are bit-identical to
// the unpruned scan.
//
// The index assumes the matcher honors the §3.4 exact-term contract
// (canonical equality for non-~ terms). The thematic matcher and the
// non-thematic baseline do; matchers with looser semantics (for example
// concept-rewriting over exact terms) must disable pruning.
//
// # Layout
//
// Every live subscription owns a dense uint32 id allocated from a free
// list, indexing parallel columns (payload, predicate count, sorted
// requirement-term row). Within its theme group the subscription is posted
// under exactly one anchor term — the requirement term with the shortest
// posting list at insert time, a cheap rarest-first heuristic — so
// enumeration never yields duplicates and needs no deduplication set. An
// anchor hit is only a candidate's witness; the full requirement row is
// then verified by galloping containment against the event's term set.
// Remove compacts posting lists in place (no tombstones) and recycles the
// dense id. Interned term ids are never reclaimed; the interner is bounded
// by the vocabulary of exact terms ever subscribed, not by churn.
package subindex

import (
	"slices"
	"strings"
	"sync"

	"thematicep/internal/event"
	"thematicep/internal/text"
)

// group holds one compiled theme's posting lists.
type group[T any] struct {
	key         string
	approx      []uint32            // approximate-only posting: always candidates
	anchorTerms []uint32            // sorted term ids that have a posting here
	posts       map[uint32][]uint32 // anchor term id -> sorted dense sub ids
}

// Index is the inverted subscription index. The zero value is not usable;
// call New. All methods are safe for concurrent use.
type Index[T any] struct {
	mu sync.RWMutex

	// Term interner. A presence-only requirement (exact attribute) interns
	// the attribute; an exact equality requirement interns the
	// (attribute, value) pair as its own term. Nested maps keep warm-path
	// lookups free of key concatenation.
	attrIDs  map[string]uint32
	pairIDs  map[string]map[string]uint32
	nextTerm uint32

	themes map[string]*group[T]
	locs   map[string]uint32 // external id -> dense id

	// Columnar per-dense-id state, indexed by dense id.
	ext      []string
	payloads []T
	npreds   []int32    // rule 3: events with fewer tuples are infeasible
	reqs     [][]uint32 // sorted unique requirement term ids; empty = approx-only
	grp      []*group[T]
	anchor   []uint32 // posting the sub is filed under; valid iff len(reqs) > 0

	free []uint32 // recycled dense ids
}

// New builds an empty index.
func New[T any]() *Index[T] {
	return &Index[T]{
		attrIDs: make(map[string]uint32),
		pairIDs: make(map[string]map[string]uint32),
		themes:  make(map[string]*group[T]),
		locs:    make(map[string]uint32),
	}
}

// themeKey is the canonical theme-set key: the same normalization
// semantics.Space.Compile interns compiled themes under, so permuted or
// duplicated tag orderings of one theme share a group.
func themeKey(theme []string) string {
	return strings.Join(event.NormalizeTheme(theme), "\x1f")
}

// reqSpec is one exact requirement before interning.
type reqSpec struct {
	attr     string
	value    string
	hasValue bool
}

// requirements derives the exact requirements of a subscription. Only
// predicates with an exact attribute constrain the event: an approximate
// attribute may pair with any tuple. An exact equality value tightens the
// requirement to an (attribute, value) pair term; approximate values and
// ordering comparisons stay presence-only (conservative: the comparison is
// evaluated by the matcher, never assumed here).
func requirements(sub *event.Subscription) []reqSpec {
	var rs []reqSpec
	for _, p := range sub.Predicates {
		if p.ApproxAttr {
			continue
		}
		r := reqSpec{attr: text.Canonical(p.Attr)}
		if p.Op == event.OpEq && !p.ApproxValue {
			r.value = text.Canonical(p.Value)
			r.hasValue = true
		}
		rs = append(rs, r)
	}
	return rs
}

// intern returns the term id for a requirement, assigning the next id on
// first sight. Caller holds the write lock.
func (ix *Index[T]) intern(sp reqSpec) uint32 {
	if sp.hasValue {
		pm := ix.pairIDs[sp.attr]
		if pm == nil {
			pm = make(map[string]uint32)
			ix.pairIDs[sp.attr] = pm
		}
		t, ok := pm[sp.value]
		if !ok {
			t = ix.nextTerm
			ix.nextTerm++
			pm[sp.value] = t
		}
		return t
	}
	t, ok := ix.attrIDs[sp.attr]
	if !ok {
		t = ix.nextTerm
		ix.nextTerm++
		ix.attrIDs[sp.attr] = t
	}
	return t
}

// Add files a subscription under its theme group and anchor posting. Adding
// an id that is already present replaces the previous entry.
func (ix *Index[T]) Add(id string, sub *event.Subscription, payload T) {
	specs := requirements(sub) // canonicalization outside the lock
	key := themeKey(sub.Theme)

	ix.mu.Lock()
	defer ix.mu.Unlock()
	if _, dup := ix.locs[id]; dup {
		ix.removeLocked(id)
	}

	var reqIDs []uint32
	for _, sp := range specs {
		reqIDs = insertSorted(reqIDs, ix.intern(sp))
	}

	var d uint32
	if n := len(ix.free); n > 0 {
		d = ix.free[n-1]
		ix.free = ix.free[:n-1]
		ix.ext[d] = id
		ix.payloads[d] = payload
		ix.npreds[d] = int32(len(sub.Predicates))
		ix.reqs[d] = reqIDs
	} else {
		d = uint32(len(ix.ext))
		ix.ext = append(ix.ext, id)
		ix.payloads = append(ix.payloads, payload)
		ix.npreds = append(ix.npreds, int32(len(sub.Predicates)))
		ix.reqs = append(ix.reqs, reqIDs)
		ix.grp = append(ix.grp, nil)
		ix.anchor = append(ix.anchor, 0)
	}

	g := ix.themes[key]
	if g == nil {
		g = &group[T]{key: key, posts: make(map[uint32][]uint32)}
		ix.themes[key] = g
	}
	ix.grp[d] = g
	if len(reqIDs) == 0 {
		g.approx = insertSorted(g.approx, d)
	} else {
		// Anchor on the requirement term with the shortest posting list at
		// insert time: a rarest-first heuristic that keeps postings flat and
		// maximizes the chance the anchor term is absent from an event.
		best := reqIDs[0]
		for _, t := range reqIDs[1:] {
			if len(g.posts[t]) < len(g.posts[best]) {
				best = t
			}
		}
		if len(g.posts[best]) == 0 {
			g.anchorTerms = insertSorted(g.anchorTerms, best)
		}
		g.posts[best] = insertSorted(g.posts[best], d)
		ix.anchor[d] = best
	}
	ix.locs[id] = d
}

// Remove unfiles a subscription, compacting its posting list in place and
// recycling its dense id; unknown ids are a no-op.
func (ix *Index[T]) Remove(id string) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.removeLocked(id)
}

func (ix *Index[T]) removeLocked(id string) {
	d, ok := ix.locs[id]
	if !ok {
		return
	}
	delete(ix.locs, id)
	g := ix.grp[d]
	if len(ix.reqs[d]) == 0 {
		g.approx = deleteSorted(g.approx, d)
	} else {
		a := ix.anchor[d]
		if p := deleteSorted(g.posts[a], d); len(p) == 0 {
			delete(g.posts, a)
			g.anchorTerms = deleteSorted(g.anchorTerms, a)
		} else {
			g.posts[a] = p
		}
	}
	if len(g.approx) == 0 && len(g.anchorTerms) == 0 {
		delete(ix.themes, g.key)
	}
	var zero T
	ix.ext[d] = ""
	ix.payloads[d] = zero
	ix.reqs[d] = nil
	ix.grp[d] = nil
	ix.free = append(ix.free, d)
}

// Len returns the number of indexed subscriptions.
func (ix *Index[T]) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.locs)
}

// Themes returns the number of distinct compiled-theme groups.
func (ix *Index[T]) Themes() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.themes)
}

// Stats describes the index's occupancy for runtime introspection.
type Stats struct {
	Subscriptions int // indexed subscriptions
	Themes        int // distinct compiled-theme groups
	Buckets       int // anchor posting lists across all groups
	ApproxEntries int // approximate-only subscriptions (never prunable)
	MaxBucket     int // longest single posting list (anchor or approx)
	Terms         int // interned exact terms (attrs + attr/value pairs)
	FreeSlots     int // recycled dense ids awaiting reuse
	AvgBucket     float64
}

// Stats walks the index under its read lock and reports occupancy. A
// large MaxBucket relative to Subscriptions signals a skewed anchor term
// (many subscriptions posted under one exact term), which bounds how much
// the index can prune for events carrying that term.
func (ix *Index[T]) Stats() Stats {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	st := Stats{
		Subscriptions: len(ix.locs),
		Themes:        len(ix.themes),
		Terms:         int(ix.nextTerm),
		FreeSlots:     len(ix.free),
	}
	posted := 0
	for _, g := range ix.themes {
		st.Buckets += len(g.anchorTerms)
		st.ApproxEntries += len(g.approx)
		if len(g.approx) > st.MaxBucket {
			st.MaxBucket = len(g.approx)
		}
		for _, p := range g.posts {
			posted += len(p)
			if len(p) > st.MaxBucket {
				st.MaxBucket = len(p)
			}
		}
	}
	if st.Buckets > 0 {
		st.AvgBucket = float64(posted) / float64(st.Buckets)
	}
	return st
}

// enumBuf holds the per-publish scratch for candidate enumeration so the
// warm path allocates nothing in steady state.
type enumBuf struct {
	attrs  []string // canonical tuple attrs (Candidates only)
	values []string // canonical tuple values (Candidates only)
	terms  []uint32 // event's sorted term-id set
	hits   []uint32 // per-group anchor-term intersection
}

var enumPool = sync.Pool{New: func() any { return new(enumBuf) }}

// Candidates yields the payload of every subscription the event could
// possibly match, and returns how many were yielded and how many the index
// pruned (skipped subscriptions provably score 0). The yield callback runs
// under the index's read lock and must not call back into the index.
func (ix *Index[T]) Candidates(e *event.Event, yield func(T)) (candidates, pruned int) {
	buf := enumPool.Get().(*enumBuf)
	for _, t := range e.Tuples {
		buf.attrs = append(buf.attrs, text.Canonical(t.Attr))
		buf.values = append(buf.values, text.Canonical(t.Value))
	}
	candidates, pruned = ix.candidates(buf, buf.attrs, buf.values, len(e.Tuples), yield)
	// Drop string references before pooling so the buffer never pins event
	// vocabulary.
	clear(buf.attrs)
	clear(buf.values)
	buf.attrs, buf.values = buf.attrs[:0], buf.values[:0]
	enumPool.Put(buf)
	return candidates, pruned
}

// CandidatesPrepared is Candidates over pre-canonicalized parallel tuple
// slices (for example a prepared event's terms), skipping the per-publish
// canonicalization entirely. attrs and values must be the canonical forms
// of the event's tuples, index-aligned.
func (ix *Index[T]) CandidatesPrepared(attrs, values []string, yield func(T)) (candidates, pruned int) {
	buf := enumPool.Get().(*enumBuf)
	candidates, pruned = ix.candidates(buf, attrs, values, len(attrs), yield)
	enumPool.Put(buf)
	return candidates, pruned
}

// candidates is the shared enumeration over an event with m tuples whose
// canonical attrs/values are index-aligned. It runs entirely under the
// read lock: (1) map the event's tuples to the sorted set of interned term
// ids they carry; (2) per theme group, yield the approximate-only posting
// (feasibility aside) and gallop-intersect the event's term set with the
// group's anchor terms; (3) for each anchor hit, walk its posting list and
// yield every subscription whose full requirement row is contained in the
// event's term set. Terms no subscription ever required are not interned
// and vanish in step 1, so enumeration cost tracks posting occupancy, not
// event width times subscription count.
func (ix *Index[T]) candidates(buf *enumBuf, attrs, values []string, m int, yield func(T)) (candidates, pruned int) {
	ix.mu.RLock()
	total := len(ix.locs)
	terms := buf.terms[:0]
	for i, a := range attrs {
		if id, ok := ix.attrIDs[a]; ok {
			terms = append(terms, id)
		}
		if pm := ix.pairIDs[a]; pm != nil {
			if id, ok := pm[values[i]]; ok {
				terms = append(terms, id)
			}
		}
	}
	slices.Sort(terms)
	terms = slices.Compact(terms)
	m32 := int32(m)
	hits := buf.hits
	for _, g := range ix.themes {
		for _, d := range g.approx {
			if ix.npreds[d] <= m32 {
				yield(ix.payloads[d])
				candidates++
			}
		}
		if len(g.anchorTerms) == 0 {
			continue
		}
		hits = intersect2(hits[:0], terms, g.anchorTerms)
		for _, t := range hits {
			for _, d := range g.posts[t] {
				if ix.npreds[d] <= m32 && containsAll(ix.reqs[d], terms) {
					yield(ix.payloads[d])
					candidates++
				}
			}
		}
	}
	ix.mu.RUnlock()
	buf.terms = terms[:0]
	buf.hits = hits[:0]
	return candidates, total - candidates
}
