// Package subindex implements the broker's subscription pruning index: a
// partition of live subscriptions by compiled-theme key and by their exact
// (non-~) attribute terms, so a publish builds its candidate set from the
// event's tuple terms instead of scanning every subscription.
//
// # Why pruning never loses a delivery
//
// The matcher's similarity matrix (§3.5) gives entry (i,j) the product
// attrSim·valueSim, where an exact (non-~) term contributes 1 on canonical
// equality and 0 otherwise, and event attributes are unique in canonical
// form (§3.3, enforced by Event.Validate). Three consequences make skipping
// safe — a skipped subscription provably scores 0, and the broker never
// delivers a zero score regardless of threshold:
//
//  1. A predicate with an exact attribute a has at most one candidate tuple
//     (the one whose canonical attribute equals a). If the event has no such
//     tuple, the predicate's similarity row is all zeros, so every mapping's
//     product — the score — is 0.
//  2. If that predicate also has an exact equality value v, the single
//     candidate tuple must additionally carry a canonically equal value,
//     else the row is again all zeros.
//  3. An injective predicates→tuples mapping needs at least as many tuples
//     as predicates; with fewer, no feasible mapping exists and the score
//     is 0.
//
// Subscriptions with no exact attribute at all land in a conservative
// approximate-only bucket that is always scored (rule 3 aside), guaranteeing
// no recall loss: delivery sets are bit-identical to the unpruned scan.
//
// The index assumes the matcher honors the §3.4 exact-term contract
// (canonical equality for non-~ terms). The thematic matcher and the
// non-thematic baseline do; matchers with looser semantics (for example
// concept-rewriting over exact terms) must disable pruning.
//
// Each subscription is filed under exactly one bucket — its first exact
// attribute term, or the approximate-only bucket — within its theme group,
// so candidate enumeration never yields duplicates and needs no
// deduplication set.
package subindex

import (
	"strings"
	"sync"

	"thematicep/internal/event"
	"thematicep/internal/text"
)

// req is one exact requirement the event must satisfy for the subscription
// to score above zero.
type req struct {
	attr  string // canonical exact attribute term; must appear in the event
	value string // canonical exact equality value; "" means presence-only
}

// entry is one indexed subscription.
type entry[T any] struct {
	id      string
	payload T
	npreds  int   // rule 3: events with fewer tuples are infeasible
	reqs    []req // rules 1 and 2; empty for approximate-only subscriptions
}

// group partitions one compiled theme's subscriptions by witness term.
type group[T any] struct {
	byAttr map[string][]*entry[T] // first exact attr term -> entries
	approx []*entry[T]            // approximate-only bucket
}

// loc remembers where an entry was filed so Remove is O(bucket).
type loc struct {
	themeKey string
	witness  string // "" for the approximate-only bucket
}

// Index partitions live subscriptions by compiled-theme key and exact
// attribute terms. The zero value is not usable; call New. All methods are
// safe for concurrent use.
type Index[T any] struct {
	mu     sync.RWMutex
	themes map[string]*group[T]
	locs   map[string]loc
}

// New builds an empty index.
func New[T any]() *Index[T] {
	return &Index[T]{
		themes: make(map[string]*group[T]),
		locs:   make(map[string]loc),
	}
}

// themeKey is the canonical theme-set key: the same normalization
// semantics.Space.Compile interns compiled themes under, so permuted or
// duplicated tag orderings of one theme share a group.
func themeKey(theme []string) string {
	return strings.Join(event.NormalizeTheme(theme), "\x1f")
}

// requirements derives the exact requirements of a subscription. Only
// predicates with an exact attribute constrain the event: an approximate
// attribute may pair with any tuple. An exact equality value tightens the
// requirement to an (attribute, value) pair; approximate values and
// ordering comparisons stay presence-only (conservative: the comparison is
// evaluated by the matcher, never assumed here).
func requirements(sub *event.Subscription) []req {
	var rs []req
	for _, p := range sub.Predicates {
		if p.ApproxAttr {
			continue
		}
		r := req{attr: text.Canonical(p.Attr)}
		if p.Op == event.OpEq && !p.ApproxValue {
			r.value = text.Canonical(p.Value)
		}
		rs = append(rs, r)
	}
	return rs
}

// Add files a subscription under its theme group and witness bucket. Adding
// an id that is already present replaces the previous entry.
func (ix *Index[T]) Add(id string, sub *event.Subscription, payload T) {
	e := &entry[T]{
		id:      id,
		payload: payload,
		npreds:  len(sub.Predicates),
		reqs:    requirements(sub),
	}
	witness := ""
	if len(e.reqs) > 0 {
		witness = e.reqs[0].attr
	}
	key := themeKey(sub.Theme)

	ix.mu.Lock()
	defer ix.mu.Unlock()
	if _, dup := ix.locs[id]; dup {
		ix.removeLocked(id)
	}
	g := ix.themes[key]
	if g == nil {
		g = &group[T]{byAttr: make(map[string][]*entry[T])}
		ix.themes[key] = g
	}
	if witness == "" {
		g.approx = append(g.approx, e)
	} else {
		g.byAttr[witness] = append(g.byAttr[witness], e)
	}
	ix.locs[id] = loc{themeKey: key, witness: witness}
}

// Remove unfiles a subscription; unknown ids are a no-op.
func (ix *Index[T]) Remove(id string) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.removeLocked(id)
}

func (ix *Index[T]) removeLocked(id string) {
	l, ok := ix.locs[id]
	if !ok {
		return
	}
	delete(ix.locs, id)
	g := ix.themes[l.themeKey]
	if g == nil {
		return
	}
	if l.witness == "" {
		g.approx = removeEntry(g.approx, id)
	} else if b := removeEntry(g.byAttr[l.witness], id); len(b) == 0 {
		delete(g.byAttr, l.witness)
	} else {
		g.byAttr[l.witness] = b
	}
	if len(g.approx) == 0 && len(g.byAttr) == 0 {
		delete(ix.themes, l.themeKey)
	}
}

func removeEntry[T any](bucket []*entry[T], id string) []*entry[T] {
	for i, e := range bucket {
		if e.id == id {
			last := len(bucket) - 1
			bucket[i] = bucket[last]
			bucket[last] = nil
			return bucket[:last]
		}
	}
	return bucket
}

// Len returns the number of indexed subscriptions.
func (ix *Index[T]) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.locs)
}

// Themes returns the number of distinct compiled-theme groups.
func (ix *Index[T]) Themes() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.themes)
}

// Stats describes the index's occupancy for runtime introspection.
type Stats struct {
	Subscriptions int // indexed subscriptions
	Themes        int // distinct compiled-theme groups
	Buckets       int // exact-term witness buckets across all groups
	ApproxEntries int // approximate-only subscriptions (never prunable)
	MaxBucket     int // largest single bucket (witness or approx) occupancy
}

// Stats walks the index under its read lock and reports occupancy. A
// large MaxBucket relative to Subscriptions signals a skewed witness term
// (many subscriptions sharing one exact attribute), which bounds how much
// the index can prune for events carrying that term.
func (ix *Index[T]) Stats() Stats {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	st := Stats{
		Subscriptions: len(ix.locs),
		Themes:        len(ix.themes),
	}
	for _, g := range ix.themes {
		st.Buckets += len(g.byAttr)
		st.ApproxEntries += len(g.approx)
		if len(g.approx) > st.MaxBucket {
			st.MaxBucket = len(g.approx)
		}
		for _, bucket := range g.byAttr {
			if len(bucket) > st.MaxBucket {
				st.MaxBucket = len(bucket)
			}
		}
	}
	return st
}

// attrsPool recycles the per-publish canonical attr -> value map so the
// candidate walk allocates nothing in steady state.
var attrsPool = sync.Pool{New: func() any { return make(map[string]string, 16) }}

// Candidates yields the payload of every subscription the event could
// possibly match, and returns how many were yielded and how many the index
// pruned (skipped subscriptions provably score 0). The yield callback runs
// under the index's read lock and must not call back into the index.
func (ix *Index[T]) Candidates(e *event.Event, yield func(T)) (candidates, pruned int) {
	attrs := attrsPool.Get().(map[string]string)
	for _, t := range e.Tuples {
		attrs[text.Canonical(t.Attr)] = text.Canonical(t.Value)
	}
	candidates, pruned = ix.candidates(attrs, len(e.Tuples), yield)
	clear(attrs)
	attrsPool.Put(attrs)
	return candidates, pruned
}

// CandidatesPrepared is Candidates over pre-canonicalized parallel tuple
// slices (for example a prepared event's terms), skipping the
// per-publish canonicalization entirely. attrs and values must be the
// canonical forms of the event's tuples, index-aligned.
func (ix *Index[T]) CandidatesPrepared(attrs, values []string, yield func(T)) (candidates, pruned int) {
	am := attrsPool.Get().(map[string]string)
	for i, a := range attrs {
		am[a] = values[i]
	}
	candidates, pruned = ix.candidates(am, len(attrs), yield)
	clear(am)
	attrsPool.Put(am)
	return candidates, pruned
}

// candidates is the shared walk over the canonical attribute map of an
// event with m tuples.
func (ix *Index[T]) candidates(attrs map[string]string, m int, yield func(T)) (candidates, pruned int) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	total := len(ix.locs)
	for _, g := range ix.themes {
		for _, en := range g.approx {
			if en.npreds <= m {
				yield(en.payload)
				candidates++
			}
		}
		// Only witness buckets named by one of the event's own attribute
		// terms can hold satisfiable subscriptions; walk the smaller side.
		if len(attrs) <= len(g.byAttr) {
			for a := range attrs {
				candidates += yieldSatisfiable(g.byAttr[a], attrs, m, yield)
			}
		} else {
			for _, bucket := range g.byAttr {
				candidates += yieldSatisfiable(bucket, attrs, m, yield)
			}
		}
	}
	return candidates, total - candidates
}

// yieldSatisfiable yields the bucket entries whose every exact requirement
// is satisfied by the event's attributes, returning the yielded count.
func yieldSatisfiable[T any](bucket []*entry[T], attrs map[string]string, m int, yield func(T)) int {
	n := 0
	for _, en := range bucket {
		if en.npreds > m || !satisfies(en.reqs, attrs) {
			continue
		}
		yield(en.payload)
		n++
	}
	return n
}

func satisfies(reqs []req, attrs map[string]string) bool {
	for _, r := range reqs {
		v, ok := attrs[r.attr]
		if !ok || (r.value != "" && v != r.value) {
			return false
		}
	}
	return true
}
