package subindex

import (
	"fmt"
	"math/rand"
	"testing"

	"thematicep/internal/event"
	"thematicep/internal/text"
)

// synthPopulation fills ix with n synthetic subscriptions over a shared
// exact-term vocabulary and returns a prepared event's canonical tuple
// slices. Shapes mirror workload.GenerateScale: a few themes, 2-4 exact
// predicates per subscription drawn from ~40 attributes with per-attribute
// value vocabularies, plus a sliver of approximate-only subscriptions.
func synthPopulation(ix *Index[int], n int, seed int64) (attrs, values []string, m int) {
	rng := rand.New(rand.NewSource(seed))
	themes := []string{"energy", "transport", "waste", "water", "parking", "lighting"}
	for i := 0; i < n; i++ {
		var preds []event.Predicate
		if i%97 == 0 {
			preds = []event.Predicate{{Attr: "anything", Value: "goes", ApproxAttr: true, ApproxValue: true}}
		} else {
			np := 2 + rng.Intn(3)
			for j := 0; j < np; j++ {
				a := fmt.Sprintf("attr%02d", rng.Intn(40))
				v := fmt.Sprintf("value %d", rng.Intn(50))
				preds = append(preds, event.Predicate{Attr: a, Value: v, ApproxValue: rng.Intn(3) == 0})
			}
		}
		sub := &event.Subscription{
			Theme:      []string{themes[rng.Intn(len(themes))]},
			Predicates: preds,
		}
		ix.Add(fmt.Sprintf("s%d", i), sub, i)
	}
	ev := &event.Event{Theme: []string{"energy"}}
	for j := 0; j < 8; j++ {
		ev.Tuples = append(ev.Tuples, event.Tuple{
			Attr:  fmt.Sprintf("attr%02d", j*5),
			Value: fmt.Sprintf("value %d", rng.Intn(50)),
		})
	}
	for _, t := range ev.Tuples {
		attrs = append(attrs, text.Canonical(t.Attr))
		values = append(values, text.Canonical(t.Value))
	}
	return attrs, values, len(ev.Tuples)
}

// BenchmarkCandidates100k measures warm candidate enumeration at 1k, 10k,
// and 100k live subscriptions. candidates/op is the headline: it must grow
// far slower than the subscription count for enumeration to be sublinear.
func BenchmarkCandidates100k(b *testing.B) {
	for _, n := range []int{1_000, 10_000, 100_000} {
		b.Run(fmt.Sprintf("subs=%d", n), func(b *testing.B) {
			ix := New[int]()
			attrs, values, _ := synthPopulation(ix, n, 7)
			sink := 0
			yield := func(int) { sink++ }
			var cand int
			cand, _ = ix.CandidatesPrepared(attrs, values, yield) // warm pools
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cand, _ = ix.CandidatesPrepared(attrs, values, yield)
			}
			b.StopTimer()
			b.ReportMetric(float64(cand), "candidates/op")
			b.ReportMetric(float64(n), "subs")
		})
	}
}

// TestCandidatesZeroAlloc gates the warm enumeration path at 0 allocs/op,
// same idiom as the PR 3 kernel and PR 4 histogram gates.
func TestCandidatesZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race mode: sync.Pool drops Puts at random, warm path is not alloc-free")
	}
	ix := New[int]()
	attrs, values, _ := synthPopulation(ix, 5_000, 11)
	sink := 0
	yield := func(int) { sink++ }
	ix.CandidatesPrepared(attrs, values, yield) // warm the enum pool
	avg := testing.AllocsPerRun(100, func() {
		ix.CandidatesPrepared(attrs, values, yield)
	})
	if avg != 0 {
		t.Errorf("warm CandidatesPrepared allocates %.1f per run, want 0", avg)
	}
	if sink == 0 {
		t.Fatal("enumeration yielded nothing; population or event vocabulary is broken")
	}
}

// TestCandidatesSublinear asserts the inverted index actually prunes at
// scale: enumerated candidates must be a small fraction of live
// subscriptions for a typical selective event.
func TestCandidatesSublinear(t *testing.T) {
	if testing.Short() {
		t.Skip("population build is slow in -short mode")
	}
	ix := New[int]()
	attrs, values, _ := synthPopulation(ix, 50_000, 23)
	cand, pruned := ix.CandidatesPrepared(attrs, values, func(int) {})
	if cand+pruned != 50_000 {
		t.Fatalf("cand+pruned = %d, want 50000", cand+pruned)
	}
	if cand*10 > 50_000 {
		t.Errorf("candidates = %d of 50000 subs; expected < 10%% for a selective event", cand)
	}
}
