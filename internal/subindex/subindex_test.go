package subindex

import (
	"fmt"
	"sort"
	"testing"

	"thematicep/internal/event"
)

func collect(ix *Index[string], e *event.Event) ([]string, int, int) {
	var got []string
	c, p := ix.Candidates(e, func(id string) { got = append(got, id) })
	sort.Strings(got)
	return got, c, p
}

func ev(tuples ...event.Tuple) *event.Event {
	return &event.Event{Theme: []string{"energy policy"}, Tuples: tuples}
}

func TestExactAttrPruning(t *testing.T) {
	ix := New[string]()
	// Exact attribute "type": the event must carry a type tuple.
	ix.Add("s1", &event.Subscription{Predicates: []event.Predicate{
		{Attr: "Type", Value: "parking event", ApproxValue: true},
	}}, "s1")
	// Approximate attribute: always a candidate.
	ix.Add("s2", &event.Subscription{Predicates: []event.Predicate{
		{Attr: "device", Value: "laptop", ApproxAttr: true, ApproxValue: true},
	}}, "s2")

	got, c, p := collect(ix, ev(event.Tuple{Attr: "type", Value: "x"}))
	if fmt.Sprint(got) != "[s1 s2]" || c != 2 || p != 0 {
		t.Errorf("type event: got %v (c=%d p=%d)", got, c, p)
	}
	got, c, p = collect(ix, ev(event.Tuple{Attr: "room", Value: "112"}))
	if fmt.Sprint(got) != "[s2]" || c != 1 || p != 1 {
		t.Errorf("room event: got %v (c=%d p=%d)", got, c, p)
	}
}

func TestExactValueRequirement(t *testing.T) {
	ix := New[string]()
	ix.Add("eq", &event.Subscription{Predicates: []event.Predicate{
		{Attr: "type", Value: "Parking Event"}, // exact attr and value
	}}, "eq")

	if got, _, _ := collect(ix, ev(event.Tuple{Attr: "type", Value: "parking event"})); fmt.Sprint(got) != "[eq]" {
		t.Errorf("canonical-equal value: got %v", got)
	}
	if got, _, p := collect(ix, ev(event.Tuple{Attr: "type", Value: "energy event"})); len(got) != 0 || p != 1 {
		t.Errorf("mismatched value: got %v, pruned %d", got, p)
	}
}

func TestAllExactAttrsRequired(t *testing.T) {
	ix := New[string]()
	// Two exact attrs; the anchor posting files the sub under only one
	// term, but candidate verification must check the full requirement row.
	ix.Add("s", &event.Subscription{Predicates: []event.Predicate{
		{Attr: "type", Value: "v", ApproxValue: true},
		{Attr: "room", Value: "v", ApproxValue: true},
	}}, "s")

	both := ev(event.Tuple{Attr: "type", Value: "a"}, event.Tuple{Attr: "room", Value: "b"})
	if got, _, _ := collect(ix, both); fmt.Sprint(got) != "[s]" {
		t.Errorf("both attrs present: got %v", got)
	}
	// Witness present but second exact attr missing: pruned. The second
	// tuple keeps the event feasible (2 tuples for 2 predicates).
	one := ev(event.Tuple{Attr: "type", Value: "a"}, event.Tuple{Attr: "zone", Value: "b"})
	if got, _, p := collect(ix, one); len(got) != 0 || p != 1 {
		t.Errorf("missing exact attr: got %v, pruned %d", got, p)
	}
}

func TestInfeasiblePredicateCount(t *testing.T) {
	ix := New[string]()
	ix.Add("wide", &event.Subscription{Predicates: []event.Predicate{
		{Attr: "a", Value: "v", ApproxAttr: true, ApproxValue: true},
		{Attr: "b", Value: "v", ApproxAttr: true, ApproxValue: true},
	}}, "wide")

	// One tuple cannot satisfy two predicates injectively, even for an
	// approximate-only subscription.
	if got, _, p := collect(ix, ev(event.Tuple{Attr: "x", Value: "y"})); len(got) != 0 || p != 1 {
		t.Errorf("infeasible: got %v, pruned %d", got, p)
	}
	two := ev(event.Tuple{Attr: "x", Value: "y"}, event.Tuple{Attr: "z", Value: "w"})
	if got, _, _ := collect(ix, two); fmt.Sprint(got) != "[wide]" {
		t.Errorf("feasible: got %v", got)
	}
}

func TestComparisonOpsArePresenceOnly(t *testing.T) {
	ix := New[string]()
	ix.Add("cmp", &event.Subscription{Predicates: []event.Predicate{
		{Attr: "temperature", Value: "30", Op: event.OpGt},
	}}, "cmp")

	// The index only requires the attribute; the matcher evaluates the
	// comparison itself, so a failing comparison is still a candidate.
	if got, _, _ := collect(ix, ev(event.Tuple{Attr: "temperature", Value: "10"})); fmt.Sprint(got) != "[cmp]" {
		t.Errorf("comparison candidate: got %v", got)
	}
	if got, _, p := collect(ix, ev(event.Tuple{Attr: "humidity", Value: "10"})); len(got) != 0 || p != 1 {
		t.Errorf("missing comparison attr: got %v, pruned %d", got, p)
	}
}

func TestRemoveAndReplace(t *testing.T) {
	ix := New[string]()
	sub := &event.Subscription{
		Theme:      []string{"energy policy"},
		Predicates: []event.Predicate{{Attr: "type", Value: "v", ApproxValue: true}},
	}
	ix.Add("a", sub, "a-v1")
	ix.Add("b", sub, "b")
	ix.Add("a", sub, "a-v2") // replace keeps a single filing
	if ix.Len() != 2 {
		t.Fatalf("Len = %d, want 2", ix.Len())
	}
	got, _, _ := collect(ix, ev(event.Tuple{Attr: "type", Value: "x"}))
	if fmt.Sprint(got) != "[a-v2 b]" {
		t.Errorf("after replace: got %v", got)
	}

	ix.Remove("a")
	ix.Remove("missing") // no-op
	got, _, _ = collect(ix, ev(event.Tuple{Attr: "type", Value: "x"}))
	if fmt.Sprint(got) != "[b]" || ix.Len() != 1 {
		t.Errorf("after remove: got %v, len %d", got, ix.Len())
	}
	ix.Remove("b")
	if ix.Len() != 0 || ix.Themes() != 0 {
		t.Errorf("empty index: len %d themes %d", ix.Len(), ix.Themes())
	}
}

func TestThemeGroupsSharePermutedKeys(t *testing.T) {
	ix := New[string]()
	p := []event.Predicate{{Attr: "type", Value: "v", ApproxAttr: true, ApproxValue: true}}
	ix.Add("a", &event.Subscription{Theme: []string{"Energy Policy", "transport"}, Predicates: p}, "a")
	ix.Add("b", &event.Subscription{Theme: []string{"transport", "energy policy", "transport"}, Predicates: p}, "b")
	ix.Add("c", &event.Subscription{Theme: []string{"city planning"}, Predicates: p}, "c")
	if ix.Themes() != 2 {
		t.Errorf("Themes = %d, want 2 (permuted/duplicated tags share a group)", ix.Themes())
	}
}
