package subindex

// Posting-list primitives: sorted dense uint32 id slices with galloping
// (exponential-probe) search. Galloping plays the role of skip pointers in
// a classic inverted index — instead of materialized skip nodes, a reader
// that needs to advance far ahead probes exponentially (1, 2, 4, ...) and
// then binary-searches the final octave, so advancing within a list of
// length n to a target k positions ahead costs O(log k), not O(k) and not
// O(log n). Intersections of lists with very different lengths therefore
// run in roughly |short|·log(|long|/|short|) comparisons, which is what
// makes candidate enumeration sublinear in subscription count when an
// event's terms are selective.

// gallop returns the smallest index i in xs[from:] such that xs[i] >=
// target, or len(xs) when every remaining element is smaller. xs must be
// sorted ascending. It exponentially widens the probe window starting at
// from, then binary-searches inside the final window.
func gallop(xs []uint32, from int, target uint32) int {
	n := len(xs)
	if from >= n || xs[from] >= target {
		return from
	}
	// Invariant: xs[lo] < target. Probe lo+1, lo+2, lo+4, ... until the
	// window end reaches or passes an element >= target.
	lo, step := from, 1
	for lo+step < n && xs[lo+step] < target {
		lo += step
		step <<= 1
	}
	hi := lo + step
	if hi > n {
		hi = n
	}
	// Binary search in (lo, hi]: xs[lo] < target, xs[hi] >= target or hi==n.
	lo++
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if xs[mid] < target {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// intersect2 appends the sorted intersection of a and b to dst and returns
// it. Both inputs must be sorted ascending with unique elements. The
// shorter list drives; the longer is advanced by galloping search, so the
// cost is output-sensitive rather than linear in the longer list.
func intersect2(dst, a, b []uint32) []uint32 {
	if len(a) > len(b) {
		a, b = b, a
	}
	pos := 0
	for _, x := range a {
		pos = gallop(b, pos, x)
		if pos >= len(b) {
			break
		}
		if b[pos] == x {
			dst = append(dst, x)
			pos++
		}
	}
	return dst
}

// intersectAll appends the sorted intersection of every list to dst and
// returns it. With no lists it returns dst unchanged; with one list it
// appends a copy. Lists must be sorted ascending with unique elements.
// The fold starts from the shortest list so intermediate results shrink as
// fast as possible.
func intersectAll(dst []uint32, lists ...[]uint32) []uint32 {
	switch len(lists) {
	case 0:
		return dst
	case 1:
		return append(dst, lists[0]...)
	}
	shortest := 0
	for i, l := range lists {
		if len(l) < len(lists[shortest]) {
			shortest = i
		}
	}
	start := len(dst)
	dst = intersect2(dst, lists[shortest], lists[(shortest+1)%len(lists)])
	// Fold the remaining lists against the accumulated prefix in place.
	for i := range lists {
		if i == shortest || i == (shortest+1)%len(lists) {
			continue
		}
		acc := dst[start:]
		out := dst[start:start]
		pos := 0
		for _, x := range acc {
			pos = gallop(lists[i], pos, x)
			if pos >= len(lists[i]) {
				break
			}
			if lists[i][pos] == x {
				out = append(out, x)
				pos++
			}
		}
		dst = dst[:start+len(out)]
	}
	return dst
}

// containsAll reports whether every element of sub appears in super. Both
// must be sorted ascending; sub is typically a subscription's requirement
// terms (a handful) and super the event's term ids, so each membership
// check is one galloping search continuing from the previous position.
func containsAll(sub, super []uint32) bool {
	pos := 0
	for _, x := range sub {
		pos = gallop(super, pos, x)
		if pos >= len(super) || super[pos] != x {
			return false
		}
	}
	return true
}

// insertSorted inserts x into sorted xs, keeping it sorted. Duplicate
// insertion is a no-op. The common broker pattern — monotonically growing
// dense ids — appends without moving anything.
func insertSorted(xs []uint32, x uint32) []uint32 {
	n := len(xs)
	if n == 0 || xs[n-1] < x {
		return append(xs, x)
	}
	i := gallop(xs, 0, x)
	if i < n && xs[i] == x {
		return xs
	}
	xs = append(xs, 0)
	copy(xs[i+1:], xs[i:])
	xs[i] = x
	return xs
}

// deleteSorted removes x from sorted xs, compacting the slice in place —
// no tombstones: a removed subscription costs one memmove now instead of a
// dead entry on every future enumeration.
func deleteSorted(xs []uint32, x uint32) []uint32 {
	i := gallop(xs, 0, x)
	if i >= len(xs) || xs[i] != x {
		return xs
	}
	copy(xs[i:], xs[i+1:])
	return xs[:len(xs)-1]
}
