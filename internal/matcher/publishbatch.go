package matcher

import (
	"thematicep/internal/event"
	"thematicep/internal/semantics"
	"thematicep/internal/sparse"
	"thematicep/internal/text"
)

// This file promotes the per-call row memo of ScoreBatch to publish-batch
// scope. A broker publishing a batch of events prepares them all through
// one EventBatch, which interns each distinct raw term once (one
// text.Canonical per distinct spelling per batch, not one per tuple),
// resolves each event's unit projections once, and assigns every prepared
// event a term-vector id: events with identical canonical term vectors and
// compiled theme share an id. Workers score through BatchArenas whose row
// memos persist across every candidate chunk of the current event vector —
// cleared only when the worker moves to an event with a different vector —
// so at scale the semantic kernel runs once per distinct (term, theme)
// pair per event per arena instead of once per 256-candidate chunk.

// Interner growth bounds: when either map outgrows its bound at
// FinishEventBatch time, the whole context (interners, vec namespace, and
// every arena memo keyed by it) is reset together, keeping memory
// proportional to the live vocabulary while preserving the invariant that
// a vec id never aliases two distinct term vectors within one context.
const (
	maxInternedTerms = 1 << 16
	maxInternedVecs  = 1 << 12
)

// canonTerm is one entry of the batch term interner: the canonical form
// and its interned ordinal (semantics.TermOrd), resolved together so the
// per-tuple cost of carrying ordinals is one map hit, not a second lookup.
type canonTerm struct {
	c   string
	ord uint32
}

// EventBatch is the batch-scope prepare context of one publish batch: the
// raw→canonical term interner, the term-vector namespace, and free lists
// for prepared events and scoring arenas. It is single-owner: one
// goroutine prepares events and borrows arenas; only the arenas themselves
// may then be used concurrently (one goroutine each). Obtain with
// Matcher.NewEventBatch, return with Matcher.FinishEventBatch — prepared
// events and arenas are invalid after Finish.
type EventBatch struct {
	m       *Matcher
	canon   map[string]canonTerm                // raw term -> canonical form + ordinal
	vecs    map[string]uint32                   // term-vector signature -> vec id
	themes  map[string]*semantics.CompiledTheme // raw joined tags -> compiled theme
	nextVec uint32
	sig     []byte // signature-building scratch

	pes     []*PreparedEvent // prepared-event free list
	usedPEs int
	arenas  []*BatchArena // arena free list
	lent    int

	termsInterned uint64 // interner misses this batch
	termsReused   uint64 // interner hits this batch
}

// BatchArena is one worker's persistent scoring state within an
// EventBatch: the row memo and arena shared across every candidate chunk
// of the event-vector currently being scored. The memo is keyed by the
// event's interned term-vector ids and cleared whenever the arena moves to
// a different vector — keeping it cache-resident (a whole-batch memo at
// the 100k tier grows to millions of rows and thrashes) while still
// eliminating the per-chunk row recomputation that dominates the serial
// path, and still carrying rows across consecutive events that share a
// vector. Each arena may be used by one goroutine at a time.
type BatchArena struct {
	bb         *batchBuf
	vecA, vecV uint32 // term-vector ids the memo currently holds rows for
}

// eventBatchFree is a bounded free list rather than a sync.Pool: batch
// contexts are few but heavy (interners, arenas, row memos), and a
// sync.Pool would surrender them at every GC cycle — regrowing maps and
// memos each batch is precisely the churn the context exists to avoid.
var eventBatchFree = make(chan *EventBatch, 4)

// NewEventBatch borrows a batch-prepare context. Contexts are recycled with
// their interners and row memos warm, so a steady stream of batches over a
// stable vocabulary re-canonicalizes and re-computes nothing; a context
// last used by a different matcher is reset first (vec ids and memoized
// rows are only coherent within one matcher's space).
func (m *Matcher) NewEventBatch() *EventBatch {
	var eb *EventBatch
	select {
	case eb = <-eventBatchFree:
	default:
		eb = &EventBatch{
			canon:  make(map[string]canonTerm),
			vecs:   make(map[string]uint32),
			themes: make(map[string]*semantics.CompiledTheme),
		}
	}
	if eb.m != m {
		eb.reset()
		eb.m = m
	}
	return eb
}

// reset drops the interners, the vec namespace, and every arena memo keyed
// by it — always together, so a recycled vec id can never resurrect a row
// computed for a different term vector.
func (eb *EventBatch) reset() {
	clear(eb.canon)
	clear(eb.vecs)
	clear(eb.themes)
	eb.nextVec = 0
	for _, a := range eb.arenas {
		a.bb.invalidate()
	}
}

// PrepareEventInBatch is PrepareEvent through the batch context: canonical
// terms come from the interner and the event is stamped with its term
// vector ids. The returned value is owned by the context and invalid after
// FinishEventBatch.
func (m *Matcher) PrepareEventInBatch(eb *EventBatch, e *event.Event) *PreparedEvent {
	p := eb.nextPE(len(e.Tuples))
	p.ev = e
	p.theme = nil
	if m.opts.thematic {
		p.theme = eb.compileTheme(e.Theme)
	}
	for j, t := range e.Tuples {
		a, v := eb.intern(t.Attr), eb.intern(t.Value)
		p.attrs[j], p.attrOrds[j] = a.c, a.ord
		p.values[j], p.valueOrds[j] = v.c, v.ord
	}
	p.attrsVec = eb.vecOf(rowAttr, p)
	p.valuesVec = eb.vecOf(rowValue, p)
	p.hasUnits = m.space.ResolveUnits(p.attrs, p.theme, p.attrUnits) &&
		m.space.ResolveUnits(p.values, p.theme, p.valueUnits)
	return p
}

func (eb *EventBatch) nextPE(n int) *PreparedEvent {
	var p *PreparedEvent
	if eb.usedPEs < len(eb.pes) {
		p = eb.pes[eb.usedPEs]
	} else {
		p = new(PreparedEvent)
		eb.pes = append(eb.pes, p)
	}
	eb.usedPEs++
	if cap(p.attrs) < n {
		p.attrs = make([]string, 0, n)
		p.values = make([]string, 0, n)
		p.attrOrds = make([]uint32, 0, n)
		p.valueOrds = make([]uint32, 0, n)
		p.attrUnits = make([]sparse.Unit, 0, n)
		p.valueUnits = make([]sparse.Unit, 0, n)
	}
	p.attrs = p.attrs[:n]
	p.values = p.values[:n]
	p.attrOrds = p.attrOrds[:n]
	p.valueOrds = p.valueOrds[:n]
	p.attrUnits = p.attrUnits[:n]
	p.valueUnits = p.valueUnits[:n]
	return p
}

// intern returns the canonical form and interned ordinal of a raw term,
// computing both at most once per distinct spelling per context lifetime.
func (eb *EventBatch) intern(raw string) canonTerm {
	if c, ok := eb.canon[raw]; ok {
		eb.termsReused++
		return c
	}
	c := canonTerm{c: text.Canonical(raw)}
	c.ord = eb.m.space.TermOrd(c.c)
	eb.canon[raw] = c
	eb.termsInterned++
	return c
}

// compileTheme memoizes Space.Compile per raw tag list: the space's own
// memo returns a stable pointer but rebuilds its string key on every
// lookup, so the batch context keeps its own allocation-free front cache
// keyed through the signature scratch.
func (eb *EventBatch) compileTheme(theme []string) *semantics.CompiledTheme {
	if len(theme) == 0 {
		return nil
	}
	sb := eb.sig[:0]
	for _, tag := range theme {
		sb = append(sb, tag...)
		sb = append(sb, 0x01)
	}
	eb.sig = sb
	if t, ok := eb.themes[string(sb)]; ok {
		return t
	}
	t := eb.m.space.Compile(theme)
	eb.themes[string(sb)] = t
	return t
}

// vecOf interns the (kind, compiled theme, canonical term vector)
// signature and returns its id (ids start at 1; 0 means "no batch
// identity"). The compiled theme participates through its canonical Key —
// rows depend on the event theme, so two events only share an id when
// their themes compile identically. The map lookup converts the scratch
// bytes in place, so a warm hit allocates nothing.
func (eb *EventBatch) vecOf(kind rowKind, p *PreparedEvent) uint32 {
	terms := p.attrs
	if kind == rowValue {
		terms = p.values
	}
	sb := eb.sig[:0]
	sb = append(sb, byte(kind))
	if p.theme != nil {
		sb = append(sb, p.theme.Key...)
	}
	for _, t := range terms {
		sb = append(sb, 0x1f)
		sb = append(sb, t...)
	}
	eb.sig = sb
	if v, ok := eb.vecs[string(sb)]; ok {
		return v
	}
	eb.nextVec++
	eb.vecs[string(sb)] = eb.nextVec
	return eb.nextVec
}

// NewBatchArena borrows a scoring arena from the context. Arenas keep
// their row memos across borrows (they are keyed by the context's
// persistent vec namespace); hand one to each scoring goroutine.
func (m *Matcher) NewBatchArena(eb *EventBatch) *BatchArena {
	if eb.lent < len(eb.arenas) {
		a := eb.arenas[eb.lent]
		eb.lent++
		return a
	}
	a := &BatchArena{bb: &batchBuf{epoch: 1}}
	eb.arenas = append(eb.arenas, a)
	eb.lent++
	return a
}

// ScoreBatchInArena is ScoreBatch with the row memo held in the arena
// instead of per-call state: scores are bit-identical (the sweep is
// scoreBatchInto either way) but rows survive across calls for the same
// event vector, so successive candidate chunks — and consecutive events
// sharing term vectors — skip the semantic kernel entirely. A different
// vector evicts the memo first (stale rows are unreachable by key, but
// holding every event's rows would grow the map past cache residency).
// Events prepared outside an EventBatch carry no vector identity and fall
// back to the per-call path.
func (m *Matcher) ScoreBatchInArena(a *BatchArena, subs []*PreparedSubscription, pe *PreparedEvent, out []float64) []float64 {
	if pe.attrsVec == 0 && pe.valuesVec == 0 {
		return m.ScoreBatch(subs, pe, out)
	}
	if a.vecA != pe.attrsVec || a.vecV != pe.valuesVec {
		a.bb.invalidate()
		a.vecA, a.vecV = pe.attrsVec, pe.valuesVec
	}
	return m.scoreBatchInto(a.bb, subs, pe, out)
}

// FinishEventBatch returns the context to the pool and reports the batch's
// amortization counters: terms interned (canonicalized fresh) vs reused
// from the interner, and similarity rows computed vs reused from the
// arena memos. Every PreparedEvent and BatchArena borrowed from the
// context is invalid afterwards.
func (m *Matcher) FinishEventBatch(eb *EventBatch) (termsInterned, termsReused, rowsComputed, rowsReused uint64) {
	termsInterned, termsReused = eb.termsInterned, eb.termsReused
	eb.termsInterned, eb.termsReused = 0, 0
	for _, a := range eb.arenas[:eb.lent] {
		rowsComputed += a.bb.computed
		rowsReused += a.bb.reused
		a.bb.computed, a.bb.reused = 0, 0
	}
	eb.lent = 0
	for _, p := range eb.pes[:eb.usedPEs] {
		p.ev = nil // don't pin events (or cached unit vectors) beyond the batch
		clear(p.attrUnits)
		clear(p.valueUnits)
	}
	eb.usedPEs = 0
	if len(eb.canon) > maxInternedTerms || len(eb.vecs) > maxInternedVecs || len(eb.themes) > maxInternedVecs {
		eb.reset()
	}
	select {
	case eventBatchFree <- eb:
	default: // free list full; let the GC have this one
	}
	return termsInterned, termsReused, rowsComputed, rowsReused
}
