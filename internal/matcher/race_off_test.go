//go:build !race

package matcher

const raceEnabled = false
