package matcher

import (
	"math"
	"math/rand"
	"testing"

	"thematicep/internal/assign"
	"thematicep/internal/event"
)

// Property: the small-case exhaustive solver agrees with the Hungarian
// solver over log weights for every matrix shape it handles.
func TestBestSmallMatchesHungarian(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 500; trial++ {
		n := 1 + rng.Intn(4)
		m := n + rng.Intn(8)
		sim := make([][]float64, n)
		for i := range sim {
			sim[i] = make([]float64, m)
			for j := range sim[i] {
				if rng.Intn(4) == 0 {
					sim[i][j] = 0
				} else {
					sim[i][j] = rng.Float64()
				}
			}
		}
		cols, score := bestSmall(sim)
		sol, feasible := assign.Best(logWeights(sim))
		var hungarianScore float64
		if feasible {
			hungarianScore = 1.0
			positive := true
			for i, j := range sol.Cols {
				hungarianScore *= sim[i][j]
				if sim[i][j] == 0 {
					positive = false
				}
			}
			if !positive {
				hungarianScore = 0
			}
		}
		if math.Abs(score-hungarianScore) > 1e-9 {
			t.Fatalf("trial %d: bestSmall=%v (cols %v), hungarian=%v (sim=%v)",
				trial, score, cols, hungarianScore, sim)
		}
		if score > 0 {
			// Verify injectivity over the n used entries of the fixed array.
			seen := make(map[int]bool)
			for _, c := range cols[:n] {
				if seen[c] {
					t.Fatalf("trial %d: duplicate column %d", trial, c)
				}
				seen[c] = true
			}
		}
	}
}

func TestPreparedMatchesUnprepared(t *testing.T) {
	m := New(space(t))
	sub, ev := paperPair()
	ps := m.PrepareSubscription(sub)
	pe := m.PrepareEvent(ev)
	if ps.Subscription() != sub || pe.Event() != ev {
		t.Fatal("prepared accessors wrong")
	}
	direct, ok1 := m.Match(sub, ev)
	prepared, ok2 := m.MatchPrepared(ps, pe)
	if ok1 != ok2 || math.Abs(direct.Score-prepared.Score) > 1e-12 {
		t.Errorf("prepared %v/%v vs direct %v/%v", prepared.Score, ok2, direct.Score, ok1)
	}
	if got := m.ScorePrepared(ps, pe); math.Abs(got-direct.Score) > 1e-12 {
		t.Errorf("ScorePrepared = %v, want %v", got, direct.Score)
	}
}

// Subscriptions with more than three predicates exercise the Hungarian
// path; results must agree with brute force on the similarity matrix.
func TestMatchManyPredicatesUsesHungarianCorrectly(t *testing.T) {
	m := New(space(t))
	sub := &event.Subscription{
		Theme: []string{"energy policy", "computer systems", "city planning"},
		Predicates: []event.Predicate{
			{Attr: "type", Value: "increased energy usage event", ApproxAttr: true, ApproxValue: true},
			{Attr: "device", Value: "laptop", ApproxAttr: true, ApproxValue: true},
			{Attr: "room", Value: "room 112", ApproxAttr: true, ApproxValue: true},
			{Attr: "zone", Value: "building", ApproxAttr: true, ApproxValue: true},
		},
	}
	ev := &event.Event{
		Theme: []string{"energy policy", "information technology", "city planning"},
		Tuples: []event.Tuple{
			{Attr: "type", Value: "increased energy consumption event"},
			{Attr: "device", Value: "computer"},
			{Attr: "room", Value: "room 112"},
			{Attr: "zone", Value: "building"},
			{Attr: "city", Value: "galway"},
		},
	}
	mp, ok := m.Match(sub, ev)
	if !ok {
		t.Fatal("no match")
	}
	// Brute force the best product over the similarity matrix.
	sim := m.SimilarityMatrix(sub, ev)
	best := bruteBestProduct(sim)
	if math.Abs(mp.Score-best) > 1e-9 {
		t.Errorf("score %v, brute force %v", mp.Score, best)
	}
}

func bruteBestProduct(sim [][]float64) float64 {
	n := len(sim)
	m := len(sim[0])
	used := make([]bool, m)
	best := 0.0
	var rec func(i int, prod float64)
	rec = func(i int, prod float64) {
		if i == n {
			if prod > best {
				best = prod
			}
			return
		}
		for j := 0; j < m; j++ {
			if used[j] || sim[i][j] == 0 {
				continue
			}
			used[j] = true
			rec(i+1, prod*sim[i][j])
			used[j] = false
		}
	}
	rec(0, 1)
	return best
}
