package matcher

import (
	"testing"

	"thematicep/internal/event"
)

// Comparison predicates (the language extension beyond §3.4) combine with
// semantic attribute relaxation: "temperature~ > 30" matches a tuple whose
// attribute is semantically a temperature and whose value numerically
// exceeds 30.
func TestMatchWithComparisonPredicate(t *testing.T) {
	m := New(space(t))
	theme := []string{"environmental monitoring", "climate observation"}
	sub := &event.Subscription{
		Theme: theme,
		Predicates: []event.Predicate{
			{Attr: "temperature", Value: "30", Op: event.OpGt, ApproxAttr: true},
		},
	}
	hot := &event.Event{
		Theme: theme,
		Tuples: []event.Tuple{
			{Attr: "air temperature", Value: "35.5"},
			{Attr: "city", Value: "galway"},
		},
	}
	cold := &event.Event{
		Theme: theme,
		Tuples: []event.Tuple{
			{Attr: "air temperature", Value: "12"},
			{Attr: "city", Value: "galway"},
		},
	}
	textual := &event.Event{
		Theme: theme,
		Tuples: []event.Tuple{
			{Attr: "air temperature", Value: "very hot"},
		},
	}
	if score := m.Score(sub, hot); score <= 0 {
		t.Errorf("hot event did not match: %v", score)
	}
	if score := m.Score(sub, cold); score != 0 {
		t.Errorf("cold event matched: %v", score)
	}
	if score := m.Score(sub, textual); score != 0 {
		t.Errorf("non-numeric value matched a comparison: %v", score)
	}
}

func TestMatchWithNeqPredicate(t *testing.T) {
	m := New(space(t))
	sub := &event.Subscription{
		Predicates: []event.Predicate{
			{Attr: "device", Value: "laptop", Op: event.OpNeq},
			{Attr: "room", Value: "room 112"},
		},
	}
	other := &event.Event{Tuples: []event.Tuple{
		{Attr: "device", Value: "refrigerator"},
		{Attr: "room", Value: "room 112"},
	}}
	same := &event.Event{Tuples: []event.Tuple{
		{Attr: "device", Value: "laptop"},
		{Attr: "room", Value: "room 112"},
	}}
	if score := m.Score(sub, other); score != 1 {
		t.Errorf("!= with different value: score %v, want 1", score)
	}
	if score := m.Score(sub, same); score != 0 {
		t.Errorf("!= with equal value matched: %v", score)
	}
}

// The exact-semantics operators must behave identically under thematic and
// non-thematic matchers: themes only affect the ~ relaxations.
func TestOperatorsThemeInvariant(t *testing.T) {
	s := space(t)
	thematic := New(s)
	nonThematic := New(s, WithThematic(false))
	sub := &event.Subscription{
		Theme: []string{"energy policy"},
		Predicates: []event.Predicate{
			{Attr: "reading", Value: "100", Op: event.OpGte},
		},
	}
	ev := &event.Event{
		Theme:  []string{"energy policy"},
		Tuples: []event.Tuple{{Attr: "reading", Value: "150"}},
	}
	a := thematic.Score(sub, ev)
	b := nonThematic.Score(sub, ev)
	if a != b || a != 1 {
		t.Errorf("operator scores differ or wrong: thematic %v, non %v", a, b)
	}
}
