package matcher

import (
	"slices"
	"sync"

	"thematicep/internal/event"
	"thematicep/internal/semantics"
)

// The batch scorer exploits what row-at-a-time ScorePrepared cannot: the
// candidates of one event share a small vocabulary of predicate terms, so
// the same (term, theme) similarity row is recomputed thousands of times
// per publish at scale. ScoreBatch memoizes each distinct row — the
// similarities of one subscription term against every event tuple — in a
// contiguous arena and assembles each subscription's similarity matrix
// from those shared columns, so the semantic measure runs once per
// distinct term, not once per (subscription, term) pair.

// rowKind distinguishes attribute rows (swept against the event's
// canonical attributes) from value rows (swept against its values).
type rowKind uint8

const (
	rowAttr rowKind = iota
	rowValue
)

// rowKey identifies one memoizable similarity row. The compiled theme is
// interned (pointer identity) and the term canonical, so the key is a flat
// comparable struct — no composite string building on the warm path.
type rowKey struct {
	kind   rowKind
	approx bool
	theme  *semantics.CompiledTheme
	term   string
}

// batchBuf is the pooled per-call state of ScoreBatch: the row memo table,
// the row arena (stride = event tuple count), and the usual similarity
// matrix buffers. Rows live as arena offsets, not slices, so arena growth
// never invalidates them.
type batchBuf struct {
	sim   simBuf
	rows  map[rowKey]int
	arena []float64
}

var batchPool = sync.Pool{New: func() any { return &batchBuf{rows: make(map[rowKey]int)} }}

// termRow returns the arena offset of the similarity row for one
// subscription term against the event's terms, computing and memoizing it
// on first sight. The row semantics are exactly termSimilarity's: canonical
// equality always scores 1 (even across themes), exact terms otherwise 0,
// approximate terms the parametric measure — swept column-wise through
// semantics.RelatednessRow.
func (m *Matcher) termRow(bb *batchBuf, kind rowKind, term string, approx bool, subTheme *semantics.CompiledTheme, pe *PreparedEvent) int {
	key := rowKey{kind: kind, approx: approx, theme: subTheme, term: term}
	if off, ok := bb.rows[key]; ok {
		return off
	}
	evTerms := pe.attrs
	if kind == rowValue {
		evTerms = pe.values
	}
	off := len(bb.arena)
	mm := len(evTerms)
	bb.arena = slices.Grow(bb.arena, mm)[:off+mm]
	row := bb.arena[off : off+mm]
	if !approx {
		for j, et := range evTerms {
			if term == et {
				row[j] = 1
			} else {
				row[j] = 0
			}
		}
	} else {
		m.space.RelatednessRow(term, subTheme, evTerms, pe.theme, row)
		// termSimilarity scores canonically equal terms 1 regardless of
		// theme; RelatednessRow's identity rule is narrower (same compiled
		// theme), so restore the broader contract here.
		for j, et := range evTerms {
			if term == et {
				row[j] = 1
			}
		}
	}
	bb.rows[key] = off
	return off
}

// ScoreBatch scores one prepared event against a batch of prepared
// subscriptions, appending one score per subscription (in order) to out
// and returning it. Scores are bit-identical to calling ScorePrepared per
// subscription: the similarity cells come from the same termSimilarity /
// EvalOp semantics in the same combination order, and the mapping search
// is the same bestScore. With warm semantic caches and ≤3-predicate
// subscriptions the whole sweep is allocation-free (asserted in
// batch_test.go); only the Hungarian path beyond allocates, inside the
// solver, exactly as ScorePrepared does.
func (m *Matcher) ScoreBatch(subs []*PreparedSubscription, pe *PreparedEvent, out []float64) []float64 {
	bb := batchPool.Get().(*batchBuf)
	mm := len(pe.attrs)
	for _, ps := range subs {
		n := len(ps.attrs)
		if n == 0 || n > mm {
			// No feasible injective mapping; ScorePrepared's bestScore
			// returns 0 for the same shapes.
			out = append(out, 0)
			continue
		}
		sim := bb.sim.matrix(n, mm)
		for i := 0; i < n; i++ {
			pred := ps.sub.Predicates[i]
			aOff := m.termRow(bb, rowAttr, ps.attrs[i], pred.ApproxAttr, ps.theme, pe)
			row := sim[i]
			if pred.Op == event.OpEq {
				vOff := m.termRow(bb, rowValue, ps.values[i], pred.ApproxValue, ps.theme, pe)
				arow := bb.arena[aOff : aOff+mm]
				vrow := bb.arena[vOff : vOff+mm]
				for j := 0; j < mm; j++ {
					row[j] = arow[j] * vrow[j]
				}
			} else {
				arow := bb.arena[aOff : aOff+mm]
				for j := 0; j < mm; j++ {
					// Comparison predicates contribute the attribute
					// similarity when satisfied over raw values, exactly as
					// fillSimilarity does.
					if arow[j] != 0 && event.EvalOp(pred.Op, pe.ev.Tuples[j].Value, pred.Value) {
						row[j] = arow[j]
					}
				}
			}
		}
		out = append(out, m.bestScore(&bb.sim, sim))
	}
	clear(bb.rows)
	bb.arena = bb.arena[:0]
	batchPool.Put(bb)
	return out
}
