package matcher

import (
	"slices"
	"sync"

	"thematicep/internal/event"
)

// The batch scorer exploits what row-at-a-time ScorePrepared cannot: the
// candidates of one event share a small vocabulary of predicate terms, so
// the same (term, theme) similarity row is recomputed thousands of times
// per publish at scale. ScoreBatch memoizes each distinct row — the
// similarities of one subscription term against every event tuple — in a
// contiguous arena and assembles each subscription's similarity matrix
// from those shared columns, so the semantic measure runs once per
// distinct term, not once per (subscription, term) pair.

// rowKind distinguishes attribute rows (swept against the event's
// canonical attributes) from value rows (swept against its values).
type rowKind uint8

const (
	rowAttr rowKind = iota
	rowValue
)

// rowKeyOf packs one row identity — term ordinal, subscription theme
// ordinal, row kind, approximate flag — into a flat integer, the key of
// the matcher's rowID interner (see matcher.go). The event-side identity
// is NOT part of the key: the memo's lifetime is bounded to one event's
// term vectors by its owner (per-call ScoreBatch invalidates on return;
// BatchArena invalidates whenever the event vector changes, see
// publishbatch.go), so every live entry already refers to the current
// event. Theme ordinals stay far below 2^30 (bounded by distinct themes),
// term ordinals below 2^32 (bounded by vocabulary).
func rowKeyOf(kind rowKind, approx bool, themeOrd, termOrd uint32) uint64 {
	k := uint64(termOrd)<<32 | uint64(themeOrd)<<2 | uint64(kind)<<1
	if approx {
		k |= 1
	}
	return k
}

// rowSlot is one entry of the dense row memo: the arena offset of the row,
// the memo generation that wrote it, and the row's support mask (bit j set
// when cell j may be nonzero; all-ones when the event is wider than 64
// tuples). Slots from older generations are stale; the zero value (epoch 0)
// never matches a live generation.
type rowSlot struct {
	off   int32
	epoch uint32
	mask  uint64
}

// batchBuf is the pooled per-call state of ScoreBatch: the row memo, the
// row arena (stride = event tuple count), and the usual similarity matrix
// buffers. The memo is a flat table indexed by the matcher's interned row
// ids — a candidate's predicates carry their ids inline (predDesc), so a
// memo probe is one array read, no hashing. Invalidation bumps a
// generation counter instead of clearing the table, so moving to the next
// event costs O(1) regardless of how many rows the previous event touched.
// Rows live as arena offsets, not slices, so arena growth never
// invalidates them. computed/reused count row memo misses and hits for the
// batch-amortization telemetry; the per-call ScoreBatch resets them with
// the memo, BatchArena accumulates them across a whole publish batch.
type batchBuf struct {
	sim      simBuf
	dense    []rowSlot    // indexed by matcher rowID
	scores   []sigSlot    // indexed by matcher sigID
	slots    [][2]rowSlot // per-candidate row-slot scratch (attr, value)
	epoch    uint32       // current memo generation
	arena    []float64
	computed uint64
	reused   uint64
}

// sigSlot is one entry of the score memo: the finished score of an
// all-equality predicate signature against the current event. Its validity
// domain is exactly the row memo's — such a score is a pure function of the
// memoized rows — so it shares the same generation counter.
type sigSlot struct {
	score float64
	epoch uint32
}

// invalidate retires every memoized row in O(1) by advancing the memo
// generation. On the (4-billion-invalidation) wraparound the table is
// cleared for real, so a stale slot can never alias a new generation.
func (bb *batchBuf) invalidate() {
	bb.arena = bb.arena[:0]
	bb.epoch++
	if bb.epoch == 0 {
		clear(bb.dense)
		clear(bb.scores)
		bb.epoch = 1
	}
}

var batchPool = sync.Pool{New: func() any { return &batchBuf{epoch: 1} }}

// termRowMiss computes and memoizes the similarity row for predicate i's
// attribute or value term against the event's terms, returning the row's
// memo slot. Callers probe the dense memo inline first (see
// scoreBatchInto) — this is the miss path only. The row semantics are
// exactly termSimilarity's: canonical equality always scores 1 (even
// across themes), exact terms otherwise 0, approximate terms the
// parametric measure — swept column-wise through the semantics row
// kernels, with pre-resolved unit projections on whichever sides carry
// them.
func (m *Matcher) termRowMiss(bb *batchBuf, kind rowKind, i int, ps *PreparedSubscription, pe *PreparedEvent) rowSlot {
	pd := ps.pred(i)
	rowID, term, ord, approx := pd.attrRow, ps.attrs[i], ps.attrOrds[i], pd.approxA
	if kind == rowValue {
		rowID, term, ord, approx = pd.valueRow, ps.values[i], ps.valueOrds[i], pd.approxV
	}
	if int(rowID) >= len(bb.dense) {
		bb.dense = append(bb.dense, make([]rowSlot, int(rowID)+1-len(bb.dense))...)
	}
	bb.computed++
	evTerms, evOrds := pe.attrs, pe.attrOrds
	if kind == rowValue {
		evTerms, evOrds = pe.values, pe.valueOrds
	}
	off := int32(len(bb.arena))
	mm := len(evTerms)
	bb.arena = slices.Grow(bb.arena, mm)[:int(off)+mm]
	row := bb.arena[off : int(off)+mm]
	// Term identity is compared through interned ordinals (ordinal equality
	// is canonical-string equality by TermOrd's construction) — rows are
	// recomputed thousands of times per event at scale and the string
	// compares were a measured cost.
	if !approx {
		for j, eo := range evOrds {
			if ord == eo {
				row[j] = 1
			} else {
				row[j] = 0
			}
		}
	} else {
		switch {
		case pe.hasUnits && ps.hasUnits:
			// Both sides resolved their unit projections up front
			// (subscription at preparation, event at batch prepare): the
			// row is pure dot products, no cache lookups at all.
			units, su := pe.attrUnits, ps.attrUnits[i]
			if kind == rowValue {
				units, su = pe.valueUnits, ps.valueUnits[i]
			}
			m.space.RelatednessRowPreUnits(su, ord, ps.theme, evOrds, units, pe.theme, row)
		case pe.hasUnits:
			units := pe.attrUnits
			if kind == rowValue {
				units = pe.valueUnits
			}
			m.space.RelatednessRowUnits(term, ps.theme, evTerms, units, pe.theme, row)
		default:
			m.space.RelatednessRow(term, ps.theme, evTerms, pe.theme, row)
		}
		// termSimilarity scores canonically equal terms 1 regardless of
		// theme; the row kernels' identity rule is narrower (same compiled
		// theme), so restore the broader contract here.
		for j, eo := range evOrds {
			if ord == eo {
				row[j] = 1
			}
		}
	}
	mask := ^uint64(0)
	if mm <= 64 {
		mask = 0
		for j, v := range row {
			if v != 0 {
				mask |= 1 << uint(j)
			}
		}
	}
	slot := rowSlot{off: off, epoch: bb.epoch, mask: mask}
	bb.dense[rowID] = slot
	return slot
}

// ScoreBatch scores one prepared event against a batch of prepared
// subscriptions, appending one score per subscription (in order) to out
// and returning it. Scores are bit-identical to calling ScorePrepared per
// subscription: the similarity cells come from the same termSimilarity /
// EvalOp semantics in the same combination order, and the mapping search
// is the same bestScore. With warm semantic caches and ≤4-predicate
// subscriptions the whole sweep is allocation-free (asserted in
// batch_test.go); only the Hungarian path beyond allocates, inside the
// solver, exactly as ScorePrepared does.
func (m *Matcher) ScoreBatch(subs []*PreparedSubscription, pe *PreparedEvent, out []float64) []float64 {
	bb := batchPool.Get().(*batchBuf)
	out = m.scoreBatchInto(bb, subs, pe, out)
	bb.invalidate()
	bb.computed, bb.reused = 0, 0
	batchPool.Put(bb)
	return out
}

// scoreBatchInto is the columnar sweep proper, shared by the per-call
// ScoreBatch (memo cleared on return) and the batch-scope BatchArena path
// (memo persists across every chunk of one event, and across consecutive
// events sharing term vectors). Row keys carry no event identity; each
// owner clears the memo before it can ever span two distinct event
// vectors.
func (m *Matcher) scoreBatchInto(bb *batchBuf, subs []*PreparedSubscription, pe *PreparedEvent, out []float64) []float64 {
	mm := len(pe.attrs)
	for _, ps := range subs {
		n := int(ps.np)
		if n == 0 || n > mm {
			// No feasible injective mapping; ScorePrepared's bestScore
			// returns 0 for the same shapes.
			out = append(out, 0)
			continue
		}
		if s := ps.sig; s != 0 && int(s) < len(bb.scores) && bb.scores[s].epoch == bb.epoch {
			// Duplicate of an already-scored subscription: an identical
			// descriptor sequence against the same event vectors builds the
			// same matrix, so the memoized score is bit-identical.
			out = append(out, bb.scores[s].score)
			continue
		}
		// Phase 1: resolve the candidate's row slots and check feasibility
		// from their support masks. A predicate whose matrix row has empty
		// support (for equality ops, empty attr∧value support) forces a
		// zero cell into every injective mapping, so the score is exactly 0
		// — the common case at scale, where most candidates survive pruning
		// but match nothing — and the matrix fill and mapping search are
		// skipped entirely.
		if cap(bb.slots) < n {
			bb.slots = make([][2]rowSlot, n)
		}
		sl := bb.slots[:n]
		feasible := true
		for i := 0; i < n; i++ {
			pd := ps.pred(i)
			// Memo probes are inlined (termRowMiss is too big to inline and
			// ~90% of probes hit at scale, so the call itself was measurable).
			var as rowSlot
			if r := pd.attrRow; int(r) < len(bb.dense) && bb.dense[r].epoch == bb.epoch {
				as = bb.dense[r]
				bb.reused++
			} else {
				as = m.termRowMiss(bb, rowAttr, i, ps, pe)
			}
			if pd.op == event.OpEq {
				var vs rowSlot
				if r := pd.valueRow; int(r) < len(bb.dense) && bb.dense[r].epoch == bb.epoch {
					vs = bb.dense[r]
					bb.reused++
				} else {
					vs = m.termRowMiss(bb, rowValue, i, ps, pe)
				}
				if as.mask&vs.mask == 0 {
					feasible = false
					break
				}
				sl[i] = [2]rowSlot{as, vs}
			} else {
				// Comparison ops only filter the attr row, so its support
				// bounds the matrix row's.
				if as.mask == 0 {
					feasible = false
					break
				}
				sl[i] = [2]rowSlot{as, as}
			}
		}
		var sc float64
		if feasible {
			var sim [][]float64
			if ps.allEq {
				// Equality rows overwrite every cell, so skip the zeroing.
				sim = bb.sim.shape(n, mm)
			} else {
				sim = bb.sim.matrix(n, mm)
			}
			for i := 0; i < n; i++ {
				pd := ps.pred(i)
				row := sim[i]
				aOff := sl[i][0].off
				arow := bb.arena[aOff : int(aOff)+mm]
				if pd.op == event.OpEq {
					vOff := sl[i][1].off
					vrow := bb.arena[vOff : int(vOff)+mm]
					for j := 0; j < mm; j++ {
						row[j] = arow[j] * vrow[j]
					}
				} else {
					// Cold branch: comparison predicates need the raw (non-
					// canonical) value, which only the subscription holds.
					pred := ps.sub.Predicates[i]
					for j := 0; j < mm; j++ {
						// Comparison predicates contribute the attribute
						// similarity when satisfied over raw values, exactly
						// as fillSimilarity does.
						if arow[j] != 0 && event.EvalOp(pd.op, pe.ev.Tuples[j].Value, pred.Value) {
							row[j] = arow[j]
						}
					}
				}
			}
			sc = m.bestScore(&bb.sim, sim)
		}
		if s := ps.sig; s != 0 {
			if int(s) >= len(bb.scores) {
				bb.scores = append(bb.scores, make([]sigSlot, int(s)+1-len(bb.scores))...)
			}
			bb.scores[s] = sigSlot{score: sc, epoch: bb.epoch}
		}
		out = append(out, sc)
	}
	return out
}
