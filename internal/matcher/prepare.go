package matcher

import (
	"sync"

	"thematicep/internal/assign"
	"thematicep/internal/event"
	"thematicep/internal/semantics"
	"thematicep/internal/text"
)

// PreparedSubscription caches a subscription's canonical terms and compiled
// theme. Subscriptions are long-lived in a broker; preparing them once
// removes canonicalization from the per-event hot path.
type PreparedSubscription struct {
	sub    *event.Subscription
	theme  *semantics.CompiledTheme
	attrs  []string // canonical predicate attributes
	values []string // canonical predicate values
}

// Subscription returns the underlying subscription.
func (p *PreparedSubscription) Subscription() *event.Subscription { return p.sub }

// PreparedEvent caches an event's canonical terms and compiled theme. A
// broker matches one event against many subscriptions; preparing it once
// amortizes the canonicalization.
type PreparedEvent struct {
	ev     *event.Event
	theme  *semantics.CompiledTheme
	attrs  []string
	values []string
}

// Event returns the underlying event.
func (p *PreparedEvent) Event() *event.Event { return p.ev }

// CanonicalTuples returns the canonical attribute and value terms of the
// event's tuples, index-aligned. Callers must not mutate the slices. The
// broker's pruning index uses them to skip per-publish recanonicalization.
func (p *PreparedEvent) CanonicalTuples() (attrs, values []string) { return p.attrs, p.values }

// PrepareSubscription canonicalizes a subscription against this matcher's
// space. The preparation is only valid for matchers sharing the space.
func (m *Matcher) PrepareSubscription(s *event.Subscription) *PreparedSubscription {
	p := &PreparedSubscription{
		sub:    s,
		attrs:  make([]string, len(s.Predicates)),
		values: make([]string, len(s.Predicates)),
	}
	if m.opts.thematic {
		p.theme = m.space.Compile(s.Theme)
	}
	for i, pred := range s.Predicates {
		p.attrs[i] = text.Canonical(pred.Attr)
		p.values[i] = text.Canonical(pred.Value)
	}
	return p
}

// PrepareEvent canonicalizes an event against this matcher's space.
func (m *Matcher) PrepareEvent(e *event.Event) *PreparedEvent {
	p := &PreparedEvent{
		ev:     e,
		attrs:  make([]string, len(e.Tuples)),
		values: make([]string, len(e.Tuples)),
	}
	if m.opts.thematic {
		p.theme = m.space.Compile(e.Theme)
	}
	for j, t := range e.Tuples {
		p.attrs[j] = text.Canonical(t.Attr)
		p.values[j] = text.Canonical(t.Value)
	}
	return p
}

// simBuf is a reusable similarity-matrix buffer: one contiguous cell slice
// plus its row headers for the similarity matrix, and a second pair for the
// log-weight matrix the Hungarian solver consumes. MatchPrepared/
// ScorePrepared borrow one per call from simPool, so the per-(event,
// subscription) hot loop allocates nothing for either matrix.
type simBuf struct {
	rows  [][]float64
	cells []float64

	logRows  [][]float64
	logCells []float64
}

var simPool = sync.Pool{New: func() any { return new(simBuf) }}

// matrix returns an n×m zeroed matrix backed by the buffer, growing the
// backing storage only when the shape outgrows it.
func (b *simBuf) matrix(n, m int) [][]float64 {
	b.rows, b.cells = growMatrix(b.rows, b.cells, n, m)
	return b.rows
}

// logMatrix returns the log-weight form of sim (see logWeights) backed by
// the buffer's second storage pair, so the Hungarian path borrows both of
// its matrices from the same pooled buffer. assign.Best copies the weights
// into its own working storage, so returning the buffer to the pool after
// the solve is safe.
func (b *simBuf) logMatrix(sim [][]float64) [][]float64 {
	n, m := len(sim), len(sim[0])
	b.logRows, b.logCells = growMatrix(b.logRows, b.logCells, n, m)
	fillLogWeights(b.logRows, sim)
	return b.logRows
}

// growMatrix reshapes a rows/cells storage pair to an n×m zeroed matrix,
// growing the backing storage only when the shape outgrows it.
func growMatrix(rows [][]float64, cells []float64, n, m int) ([][]float64, []float64) {
	if cap(cells) < n*m {
		cells = make([]float64, n*m)
	}
	cells = cells[:n*m]
	clear(cells)
	if cap(rows) < n {
		rows = make([][]float64, n)
	}
	rows = rows[:n]
	for i := range rows {
		rows[i] = cells[i*m : (i+1)*m]
	}
	return rows, cells
}

// similarityMatrixPrepared allocates and fills a fresh combined similarity
// matrix between prepared subscription and event.
func (m *Matcher) similarityMatrixPrepared(ps *PreparedSubscription, pe *PreparedEvent) [][]float64 {
	n, mm := len(ps.attrs), len(pe.attrs)
	sim := make([][]float64, n)
	cells := make([]float64, n*mm)
	for i := range sim {
		sim[i] = cells[i*mm : (i+1)*mm]
	}
	m.fillSimilarity(sim, ps, pe)
	return sim
}

// fillSimilarity writes the combined similarities into a pre-zeroed n×m
// matrix.
func (m *Matcher) fillSimilarity(sim [][]float64, ps *PreparedSubscription, pe *PreparedEvent) {
	mm := len(pe.attrs)
	for i := range sim {
		pred := ps.sub.Predicates[i]
		for j := 0; j < mm; j++ {
			attrSim := m.termSimilarity(ps.attrs[i], pred.ApproxAttr, pe.attrs[j], ps.theme, pe.theme)
			if attrSim == 0 {
				continue
			}
			var valueSim float64
			if pred.Op == event.OpEq {
				valueSim = m.termSimilarity(ps.values[i], pred.ApproxValue, pe.values[j], ps.theme, pe.theme)
			} else if event.EvalOp(pred.Op, pe.ev.Tuples[j].Value, pred.Value) {
				// Comparison predicates (an extension beyond §3.4) are
				// exact: they contribute 1 when satisfied and 0 otherwise.
				// Raw values, not canonical ones, preserve decimals.
				valueSim = 1
			}
			sim[i][j] = attrSim * valueSim
		}
	}
}

// MatchPrepared is Match over prepared inputs — the broker's hot path. The
// similarity matrix is borrowed from a pool and returned before MatchPrepared
// returns; the produced Mapping copies every value it needs, so nothing
// pooled escapes.
func (m *Matcher) MatchPrepared(ps *PreparedSubscription, pe *PreparedEvent) (Mapping, bool) {
	buf := simPool.Get().(*simBuf)
	sim := buf.matrix(len(ps.attrs), len(pe.attrs))
	m.fillSimilarity(sim, ps, pe)
	mp, ok := m.bestMapping(buf, sim)
	simPool.Put(buf)
	return mp, ok
}

// ScorePrepared is Score over prepared inputs — the broker's innermost hot
// loop. Unlike MatchPrepared it never materializes the Mapping (no Pairs
// slice), so with warm semantic caches and the common ≤3-predicate
// subscriptions it performs zero allocations per call (asserted in
// bench_test.go); the Hungarian path beyond allocates only inside the
// solver.
func (m *Matcher) ScorePrepared(ps *PreparedSubscription, pe *PreparedEvent) float64 {
	buf := simPool.Get().(*simBuf)
	sim := buf.matrix(len(ps.attrs), len(pe.attrs))
	m.fillSimilarity(sim, ps, pe)
	score := m.bestScore(buf, sim)
	simPool.Put(buf)
	return score
}

// bestScore computes only the top-1 mapping score of a similarity matrix.
func (m *Matcher) bestScore(buf *simBuf, sim [][]float64) float64 {
	n := len(sim)
	if n == 0 || n > len(sim[0]) {
		return 0
	}
	if n <= 3 {
		_, score := bestSmall(sim)
		return score
	}
	sol, feasible := assign.Best(buf.logMatrix(sim))
	if !feasible {
		return 0
	}
	score := 1.0
	for i, j := range sol.Cols {
		score *= sim[i][j]
	}
	return score
}

// bestMapping finds the top-1 mapping for a similarity matrix, using an
// exhaustive product maximization for the common small predicate counts and
// the Hungarian solver beyond.
func (m *Matcher) bestMapping(buf *simBuf, sim [][]float64) (Mapping, bool) {
	n := len(sim)
	if n == 0 {
		return Mapping{}, false
	}
	mm := len(sim[0])
	if n > mm {
		return Mapping{}, false
	}
	if n <= 3 {
		cols, score := bestSmall(sim)
		if score <= 0 {
			return Mapping{}, false
		}
		return m.mappingFromCols(sim, cols[:n]), true
	}
	return m.bestMappingHungarian(buf, sim)
}

// bestSmall exhaustively maximizes the similarity product for n <= 3
// predicates; returns score 0 when no positive-product assignment exists.
// The column choice comes back in a fixed-size array (use cols[:n]) so the
// score-only hot path allocates nothing.
func bestSmall(sim [][]float64) ([3]int, float64) {
	n, m := len(sim), len(sim[0])
	best := 0.0
	var bestCols [3]int
	switch n {
	case 1:
		bj := -1
		for j := 0; j < m; j++ {
			if sim[0][j] > best {
				best = sim[0][j]
				bj = j
			}
		}
		bestCols[0] = bj
	case 2:
		for j := 0; j < m; j++ {
			if sim[0][j] == 0 {
				continue
			}
			for k := 0; k < m; k++ {
				if k == j {
					continue
				}
				if p := sim[0][j] * sim[1][k]; p > best {
					best = p
					bestCols = [3]int{j, k, 0}
				}
			}
		}
	case 3:
		for j := 0; j < m; j++ {
			if sim[0][j] == 0 {
				continue
			}
			for k := 0; k < m; k++ {
				if k == j || sim[1][k] == 0 {
					continue
				}
				pjk := sim[0][j] * sim[1][k]
				for l := 0; l < m; l++ {
					if l == j || l == k {
						continue
					}
					if p := pjk * sim[2][l]; p > best {
						best = p
						bestCols = [3]int{j, k, l}
					}
				}
			}
		}
	}
	return bestCols, best
}

// mappingFromCols assembles a Mapping from an explicit column choice.
func (m *Matcher) mappingFromCols(sim [][]float64, cols []int) Mapping {
	mp := Mapping{
		Pairs: make([]Correspondence, len(cols)),
		Score: 1,
	}
	prob := 1.0
	for i, j := range cols {
		rowSum := 0.0
		for _, v := range sim[i] {
			rowSum += v
		}
		p := 0.0
		if rowSum > 0 {
			p = sim[i][j] / rowSum
		}
		mp.Pairs[i] = Correspondence{Predicate: i, Tuple: j, Similarity: sim[i][j], Probability: p}
		mp.Score *= sim[i][j]
		prob *= p
	}
	mp.Probability = prob
	return mp
}
