package matcher

import (
	"encoding/binary"
	"sync"

	"thematicep/internal/assign"
	"thematicep/internal/event"
	"thematicep/internal/semantics"
	"thematicep/internal/sparse"
	"thematicep/internal/text"
)

// PreparedSubscription caches a subscription's canonical terms and compiled
// theme. Subscriptions are long-lived in a broker; preparing them once
// removes canonicalization from the per-event hot path.
//
// Field order matters: the batch scorer visits millions of these as
// scattered heap objects per publish batch, and everything its warm path
// reads — the predicate count, the all-equality flag, and the first four
// predicate descriptors — is packed at the front so one cache line serves
// the whole candidate when every row is memoized.
type PreparedSubscription struct {
	// np is the predicate count (== len(attrs)).
	np int32
	// allEq means every predicate is an equality op: those similarity rows
	// write all of their cells, so the batch scorer can skip zeroing the
	// matrix for this subscription.
	allEq bool
	// sig is the interned id of the predicate descriptor sequence for
	// all-equality subscriptions (0 otherwise): equal sigs guarantee
	// bit-identical scores against any event, so the batch scorer memoizes
	// one score per signature per event (see Matcher.sigID).
	sig uint32

	// preds holds the first four predicates' hot scoring fields inline
	// (spill holds all of them when np > 4 — beyond the exhaustive-search
	// mapping sizes, scoring goes through the allocating Hungarian solver
	// anyway). The batch scorer reads only these per predicate — chasing
	// ps.sub.Predicates per (candidate, predicate) was a measured top cost
	// of the batched pipeline; the raw comparison value for non-equality
	// ops is the one exception and takes the cold branch.
	preds [4]predDesc
	spill []predDesc

	sub    *event.Subscription
	theme  *semantics.CompiledTheme
	attrs  []string // canonical predicate attributes
	values []string // canonical predicate values

	// attrOrds/valueOrds are the terms' interned ordinals
	// (semantics.TermOrd): ordinal equality is canonical-string equality,
	// so the batch scorer's identity rules compare integers, not strings.
	attrOrds  []uint32
	valueOrds []uint32

	// attrUnits/valueUnits are the predicate terms' unit projections under
	// the subscription's theme, resolved once at preparation time (hasUnits
	// true) so a row-memo miss goes straight to the dot products — the
	// subscription-side twin of PreparedEvent's unit columns. Unit values
	// are deterministic for a (term, theme) pair, so they stay valid across
	// space cache resets; they are simply unused when the event side wasn't
	// resolved under the current scoring configuration.
	attrUnits  []sparse.Unit
	valueUnits []sparse.Unit
	hasUnits   bool
}

// pred returns predicate i's descriptor (small enough to inline into the
// scoring loops).
func (p *PreparedSubscription) pred(i int) predDesc {
	if p.np <= 4 {
		return p.preds[i]
	}
	return p.spill[i]
}

// predDesc is one predicate's inlined scoring descriptor: the row ids the
// batch scorer's dense row memo is indexed by (see Matcher.rowID), plus the
// operator and approx flags.
type predDesc struct {
	attrRow  uint32
	valueRow uint32
	op       event.Op
	approxA  bool
	approxV  bool
}

// Subscription returns the underlying subscription.
func (p *PreparedSubscription) Subscription() *event.Subscription { return p.sub }

// PreparedEvent caches an event's canonical terms and compiled theme. A
// broker matches one event against many subscriptions; preparing it once
// amortizes the canonicalization.
type PreparedEvent struct {
	ev     *event.Event
	theme  *semantics.CompiledTheme
	attrs  []string
	values []string

	// attrOrds/valueOrds are the tuples' interned term ordinals
	// (semantics.TermOrd), the integer twins of attrs/values for the batch
	// scorer's identity rules.
	attrOrds  []uint32
	valueOrds []uint32

	// attrsVec/valuesVec are the EventBatch-interned identities of the
	// canonical term vectors (plus compiled theme): equal ids mean the
	// similarity rows computed against this event apply verbatim to the
	// other event. Zero for events prepared outside a batch — the
	// batch-scope row memo never engages for those (see publishbatch.go).
	attrsVec  uint32
	valuesVec uint32

	// attrUnits/valueUnits are the tuples' unit projections under the
	// event's own theme, resolved once per event on the batch-prepare path
	// (hasUnits true) so the row kernel skips the per-pair projection-cache
	// lookup. Events prepared outside a batch leave them empty.
	attrUnits  []sparse.Unit
	valueUnits []sparse.Unit
	hasUnits   bool
}

// Event returns the underlying event.
func (p *PreparedEvent) Event() *event.Event { return p.ev }

// CanonicalTuples returns the canonical attribute and value terms of the
// event's tuples, index-aligned. Callers must not mutate the slices. The
// broker's pruning index uses them to skip per-publish recanonicalization.
func (p *PreparedEvent) CanonicalTuples() (attrs, values []string) { return p.attrs, p.values }

// PrepareSubscription canonicalizes a subscription against this matcher's
// space. The preparation is only valid for matchers sharing the space.
func (m *Matcher) PrepareSubscription(s *event.Subscription) *PreparedSubscription {
	p := &PreparedSubscription{
		np:        int32(len(s.Predicates)),
		sub:       s,
		attrs:     make([]string, len(s.Predicates)),
		values:    make([]string, len(s.Predicates)),
		attrOrds:  make([]uint32, len(s.Predicates)),
		valueOrds: make([]uint32, len(s.Predicates)),
	}
	if len(s.Predicates) > 4 {
		p.spill = make([]predDesc, len(s.Predicates))
	}
	if m.opts.thematic {
		p.theme = m.space.Compile(s.Theme)
	}
	themeOrd := p.theme.Ord()
	p.allEq = true
	for i, pred := range s.Predicates {
		if pred.Op != event.OpEq {
			p.allEq = false
		}
		p.attrs[i] = text.Canonical(pred.Attr)
		p.values[i] = text.Canonical(pred.Value)
		p.attrOrds[i] = m.space.TermOrd(p.attrs[i])
		p.valueOrds[i] = m.space.TermOrd(p.values[i])
		d := predDesc{
			attrRow:  m.rowID(rowAttr, pred.ApproxAttr, themeOrd, p.attrOrds[i]),
			valueRow: m.rowID(rowValue, pred.ApproxValue, themeOrd, p.valueOrds[i]),
			op:       pred.Op,
			approxA:  pred.ApproxAttr,
			approxV:  pred.ApproxValue,
		}
		if p.spill != nil {
			p.spill[i] = d
		} else {
			p.preds[i] = d
		}
	}
	if p.allEq && p.np > 0 {
		// All-equality scores are a pure function of the descriptor
		// sequence and the event's term vectors, so identical sequences
		// share one interned signature (and one score per event).
		key := make([]byte, 0, 8*p.np)
		for i := 0; i < int(p.np); i++ {
			d := p.pred(i)
			key = binary.LittleEndian.AppendUint32(key, d.attrRow)
			key = binary.LittleEndian.AppendUint32(key, d.valueRow)
		}
		p.sig = m.sigID(key)
	}
	if len(p.attrs) > 0 {
		p.attrUnits = make([]sparse.Unit, len(p.attrs))
		p.valueUnits = make([]sparse.Unit, len(p.attrs))
		p.hasUnits = true
		for i := range p.attrs {
			au, ok := m.space.ResolveUnit(p.attrs[i], p.theme)
			if !ok {
				p.hasUnits = false
				break
			}
			vu, _ := m.space.ResolveUnit(p.values[i], p.theme)
			p.attrUnits[i], p.valueUnits[i] = au, vu
		}
	}
	return p
}

// PrepareEvent canonicalizes an event against this matcher's space.
func (m *Matcher) PrepareEvent(e *event.Event) *PreparedEvent {
	p := &PreparedEvent{
		ev:        e,
		attrs:     make([]string, len(e.Tuples)),
		values:    make([]string, len(e.Tuples)),
		attrOrds:  make([]uint32, len(e.Tuples)),
		valueOrds: make([]uint32, len(e.Tuples)),
	}
	if m.opts.thematic {
		p.theme = m.space.Compile(e.Theme)
	}
	for j, t := range e.Tuples {
		p.attrs[j] = text.Canonical(t.Attr)
		p.values[j] = text.Canonical(t.Value)
		p.attrOrds[j] = m.space.TermOrd(p.attrs[j])
		p.valueOrds[j] = m.space.TermOrd(p.values[j])
	}
	return p
}

// simBuf is a reusable similarity-matrix buffer: one contiguous cell slice
// plus its row headers for the similarity matrix, and a second pair for the
// log-weight matrix the Hungarian solver consumes. MatchPrepared/
// ScorePrepared borrow one per call from simPool, so the per-(event,
// subscription) hot loop allocates nothing for either matrix.
type simBuf struct {
	rows  [][]float64
	cells []float64
	// lastN/lastM memoize the shape the row headers were last built for:
	// batch scoring hands the same buffer thousands of same-shaped
	// candidates in a row, so header rebuilds are skipped between them.
	lastN, lastM int

	logRows  [][]float64
	logCells []float64
}

var simPool = sync.Pool{New: func() any { return new(simBuf) }}

// shape returns an n×m matrix backed by the buffer WITHOUT zeroing the
// cells — for callers that overwrite every cell (all-equality predicate
// rows). Headers are rebuilt only when the shape changes or the backing
// storage is regrown.
func (b *simBuf) shape(n, m int) [][]float64 {
	if cap(b.cells) < n*m {
		b.cells = make([]float64, n*m)
		b.lastN = 0 // headers point into the old storage
	}
	b.cells = b.cells[:n*m]
	if b.lastN != n || b.lastM != m {
		if cap(b.rows) < n {
			b.rows = make([][]float64, n)
		}
		b.rows = b.rows[:n]
		for i := range b.rows {
			b.rows[i] = b.cells[i*m : (i+1)*m]
		}
		b.lastN, b.lastM = n, m
	}
	return b.rows
}

// matrix returns an n×m zeroed matrix backed by the buffer, growing the
// backing storage only when the shape outgrows it.
func (b *simBuf) matrix(n, m int) [][]float64 {
	rows := b.shape(n, m)
	clear(b.cells)
	return rows
}

// logMatrix returns the log-weight form of sim (see logWeights) backed by
// the buffer's second storage pair, so the Hungarian path borrows both of
// its matrices from the same pooled buffer. assign.Best copies the weights
// into its own working storage, so returning the buffer to the pool after
// the solve is safe.
func (b *simBuf) logMatrix(sim [][]float64) [][]float64 {
	n, m := len(sim), len(sim[0])
	b.logRows, b.logCells = growMatrix(b.logRows, b.logCells, n, m)
	fillLogWeights(b.logRows, sim)
	return b.logRows
}

// growMatrix reshapes a rows/cells storage pair to an n×m zeroed matrix,
// growing the backing storage only when the shape outgrows it.
func growMatrix(rows [][]float64, cells []float64, n, m int) ([][]float64, []float64) {
	if cap(cells) < n*m {
		cells = make([]float64, n*m)
	}
	cells = cells[:n*m]
	clear(cells)
	if cap(rows) < n {
		rows = make([][]float64, n)
	}
	rows = rows[:n]
	for i := range rows {
		rows[i] = cells[i*m : (i+1)*m]
	}
	return rows, cells
}

// similarityMatrixPrepared allocates and fills a fresh combined similarity
// matrix between prepared subscription and event.
func (m *Matcher) similarityMatrixPrepared(ps *PreparedSubscription, pe *PreparedEvent) [][]float64 {
	n, mm := len(ps.attrs), len(pe.attrs)
	sim := make([][]float64, n)
	cells := make([]float64, n*mm)
	for i := range sim {
		sim[i] = cells[i*mm : (i+1)*mm]
	}
	m.fillSimilarity(sim, ps, pe)
	return sim
}

// fillSimilarity writes the combined similarities into a pre-zeroed n×m
// matrix.
func (m *Matcher) fillSimilarity(sim [][]float64, ps *PreparedSubscription, pe *PreparedEvent) {
	mm := len(pe.attrs)
	for i := range sim {
		pred := ps.sub.Predicates[i]
		for j := 0; j < mm; j++ {
			attrSim := m.termSimilarity(ps.attrs[i], pred.ApproxAttr, pe.attrs[j], ps.theme, pe.theme)
			if attrSim == 0 {
				continue
			}
			var valueSim float64
			if pred.Op == event.OpEq {
				valueSim = m.termSimilarity(ps.values[i], pred.ApproxValue, pe.values[j], ps.theme, pe.theme)
			} else if event.EvalOp(pred.Op, pe.ev.Tuples[j].Value, pred.Value) {
				// Comparison predicates (an extension beyond §3.4) are
				// exact: they contribute 1 when satisfied and 0 otherwise.
				// Raw values, not canonical ones, preserve decimals.
				valueSim = 1
			}
			sim[i][j] = attrSim * valueSim
		}
	}
}

// MatchPrepared is Match over prepared inputs — the broker's hot path. The
// similarity matrix is borrowed from a pool and returned before MatchPrepared
// returns; the produced Mapping copies every value it needs, so nothing
// pooled escapes.
func (m *Matcher) MatchPrepared(ps *PreparedSubscription, pe *PreparedEvent) (Mapping, bool) {
	buf := simPool.Get().(*simBuf)
	sim := buf.matrix(len(ps.attrs), len(pe.attrs))
	m.fillSimilarity(sim, ps, pe)
	mp, ok := m.bestMapping(buf, sim)
	simPool.Put(buf)
	return mp, ok
}

// ScorePrepared is Score over prepared inputs — the broker's innermost hot
// loop. Unlike MatchPrepared it never materializes the Mapping (no Pairs
// slice), so with warm semantic caches and the common ≤4-predicate
// subscriptions it performs zero allocations per call (asserted in
// bench_test.go); the Hungarian path beyond allocates only inside the
// solver.
func (m *Matcher) ScorePrepared(ps *PreparedSubscription, pe *PreparedEvent) float64 {
	buf := simPool.Get().(*simBuf)
	sim := buf.matrix(len(ps.attrs), len(pe.attrs))
	m.fillSimilarity(sim, ps, pe)
	score := m.bestScore(buf, sim)
	simPool.Put(buf)
	return score
}

// bestScore computes only the top-1 mapping score of a similarity matrix.
func (m *Matcher) bestScore(buf *simBuf, sim [][]float64) float64 {
	n := len(sim)
	if n == 0 || n > len(sim[0]) {
		return 0
	}
	if n <= 4 {
		_, score := bestSmall(sim)
		return score
	}
	sol, feasible := assign.Best(buf.logMatrix(sim))
	if !feasible {
		return 0
	}
	score := 1.0
	for i, j := range sol.Cols {
		score *= sim[i][j]
	}
	return score
}

// bestMapping finds the top-1 mapping for a similarity matrix, using an
// exhaustive product maximization for the common small predicate counts and
// the Hungarian solver beyond.
func (m *Matcher) bestMapping(buf *simBuf, sim [][]float64) (Mapping, bool) {
	n := len(sim)
	if n == 0 {
		return Mapping{}, false
	}
	mm := len(sim[0])
	if n > mm {
		return Mapping{}, false
	}
	if n <= 4 {
		cols, score := bestSmall(sim)
		if score <= 0 {
			return Mapping{}, false
		}
		return m.mappingFromCols(sim, cols[:n]), true
	}
	return m.bestMappingHungarian(buf, sim)
}

// bestSmall exhaustively maximizes the similarity product for n <= 4
// predicates; returns score 0 when no positive-product assignment exists.
// The column choice comes back in a fixed-size array (use cols[:n]) so the
// score-only hot path allocates nothing. Similarities lie in [0, 1]
// (termSimilarity's range), so a partial product at or below the best full
// product can never be extended past it — the n = 4 sweep prunes on that
// monotonicity and in practice visits a small fraction of the m⁴ space.
func bestSmall(sim [][]float64) ([4]int, float64) {
	n, m := len(sim), len(sim[0])
	best := 0.0
	var bestCols [4]int
	switch n {
	case 1:
		bj := -1
		for j := 0; j < m; j++ {
			if sim[0][j] > best {
				best = sim[0][j]
				bj = j
			}
		}
		bestCols[0] = bj
	case 2:
		for j := 0; j < m; j++ {
			if sim[0][j] == 0 {
				continue
			}
			for k := 0; k < m; k++ {
				if k == j {
					continue
				}
				if p := sim[0][j] * sim[1][k]; p > best {
					best = p
					bestCols = [4]int{j, k, 0, 0}
				}
			}
		}
	case 3:
		for j := 0; j < m; j++ {
			if sim[0][j] == 0 {
				continue
			}
			for k := 0; k < m; k++ {
				if k == j || sim[1][k] == 0 {
					continue
				}
				pjk := sim[0][j] * sim[1][k]
				for l := 0; l < m; l++ {
					if l == j || l == k {
						continue
					}
					if p := pjk * sim[2][l]; p > best {
						best = p
						bestCols = [4]int{j, k, l, 0}
					}
				}
			}
		}
	case 4:
		for j := 0; j < m; j++ {
			s0 := sim[0][j]
			if s0 <= best {
				continue
			}
			for k := 0; k < m; k++ {
				if k == j {
					continue
				}
				p1 := s0 * sim[1][k]
				if p1 <= best {
					continue
				}
				for l := 0; l < m; l++ {
					if l == j || l == k {
						continue
					}
					p2 := p1 * sim[2][l]
					if p2 <= best {
						continue
					}
					for q := 0; q < m; q++ {
						if q == j || q == k || q == l {
							continue
						}
						if p := p2 * sim[3][q]; p > best {
							best = p
							bestCols = [4]int{j, k, l, q}
						}
					}
				}
			}
		}
	}
	return bestCols, best
}

// mappingFromCols assembles a Mapping from an explicit column choice.
func (m *Matcher) mappingFromCols(sim [][]float64, cols []int) Mapping {
	mp := Mapping{
		Pairs: make([]Correspondence, len(cols)),
		Score: 1,
	}
	prob := 1.0
	for i, j := range cols {
		rowSum := 0.0
		for _, v := range sim[i] {
			rowSum += v
		}
		p := 0.0
		if rowSum > 0 {
			p = sim[i][j] / rowSum
		}
		mp.Pairs[i] = Correspondence{Predicate: i, Tuple: j, Similarity: sim[i][j], Probability: p}
		mp.Score *= sim[i][j]
		prob *= p
	}
	mp.Probability = prob
	return mp
}
