// Package matcher implements the paper's primary contribution: the
// approximate probabilistic thematic event matcher M of §3.5 and Fig. 4.
//
// Given a subscription s with theme ths and an event e with theme the, the
// matcher:
//
//  1. builds the combined attribute/value similarity matrix using the
//     parametric semantic measure sm(ths, ·, the, ·) for ~-relaxed parts and
//     exact comparison for the rest;
//  2. finds the top-1 mapping σ* — the maximum-probability injective mapping
//     of predicates to tuples — or the top-k mappings (Murty enumeration);
//  3. attaches the probability spaces Pσ (per-correspondence, normalized
//     over candidate tuples) and P (per-mapping, normalized over the
//     enumerated mappings).
//
// Thematic and non-thematic modes differ only in whether themes reach the
// semantic measure; the non-thematic mode is the paper's baseline (§5.2.5).
//
// # Concurrency
//
// A Matcher is stateless apart from the shared semantics.Space (itself
// safe for concurrent use) and may be called from any number of goroutines.
// PreparedSubscription and PreparedEvent are immutable after creation and
// safe to share across goroutines: a broker prepares each subscription once
// and scores it concurrently against many events. The similarity matrices
// of the MatchPrepared/ScorePrepared hot path are pooled internally
// (sync.Pool) and never escape, so the hot loop is allocation-free for the
// matrix itself.
package matcher

import (
	"math"
	"sync"

	"thematicep/internal/assign"
	"thematicep/internal/event"
	"thematicep/internal/semantics"
)

// Correspondence is one predicate-to-tuple pairing inside a mapping, e.g.
// (device~ = laptop~ ↔ device: computer).
type Correspondence struct {
	// Predicate indexes into the subscription's predicate list.
	Predicate int
	// Tuple indexes into the event's tuple list.
	Tuple int
	// Similarity is the combined attribute×value similarity in [0,1].
	Similarity float64
	// Probability is the correspondence probability within the predicate's
	// probability space Pσ: Similarity normalized over all candidate tuples.
	Probability float64
}

// Mapping is one mapping σ between a subscription and an event: exactly one
// correspondence per predicate (§3.5).
type Mapping struct {
	Pairs []Correspondence
	// Score is the product of the pair similarities in [0,1]. It is the
	// matcher's relevance score for ranking events against a subscription.
	Score float64
	// Probability is the mapping's probability within the probability space
	// P over the enumerated mappings. For a top-1 match it is the product of
	// the correspondence probabilities; MatchTopK renormalizes it over the
	// returned mappings.
	Probability float64
}

// Matched reports whether the mapping clears the given score threshold;
// a zero-score mapping never matches.
func (m Mapping) Matched(threshold float64) bool {
	return m.Score > 0 && m.Score >= threshold
}

// Option configures a Matcher.
type Option interface {
	apply(*options)
}

type options struct {
	thematic bool
}

type thematicOption bool

func (o thematicOption) apply(opts *options) { opts.thematic = bool(o) }

// WithThematic selects thematic (default true) or non-thematic mode. In
// non-thematic mode the measure sees no themes: the domain-independent esa
// baseline of §5.2.5.
func WithThematic(enabled bool) Option { return thematicOption(enabled) }

// Matcher is the approximate semantic single-event matcher M. It is
// stateless apart from the shared semantic space and safe for concurrent
// use.
type Matcher struct {
	space *semantics.Space
	opts  options

	// rowIDs interns each distinct similarity-row identity — (kind, approx,
	// subscription theme, term) — appearing in prepared subscriptions to a
	// dense id, so the batch scorer's row memo is a small flat table indexed
	// by id instead of a hash map (see batch.go). Ids start at 1.
	rowIDsMu sync.Mutex
	rowIDs   map[uint64]uint32

	// sigs interns all-equality predicate signatures — the ordered
	// (attrRow, valueRow) id sequence of a subscription — to a dense id, so
	// the batch scorer can serve duplicate subscriptions (identical
	// predicate sets are common in large populations) from a score memo
	// instead of re-sweeping identical similarity matrices (see batch.go).
	// Ids start at 1.
	sigsMu sync.Mutex
	sigs   map[string]uint32
}

// New builds a matcher over a semantic space.
func New(space *semantics.Space, opts ...Option) *Matcher {
	o := options{thematic: true}
	for _, opt := range opts {
		opt.apply(&o)
	}
	return &Matcher{
		space:  space,
		opts:   o,
		rowIDs: make(map[uint64]uint32),
		sigs:   make(map[string]uint32),
	}
}

// rowID interns one similarity-row identity to its dense id. The id space
// grows with the distinct (kind, approx, theme, term) combinations of the
// prepared subscription population — the same order of growth as the
// prepared subscriptions themselves.
func (m *Matcher) rowID(kind rowKind, approx bool, themeOrd, termOrd uint32) uint32 {
	key := rowKeyOf(kind, approx, themeOrd, termOrd)
	m.rowIDsMu.Lock()
	id, ok := m.rowIDs[key]
	if !ok {
		id = uint32(len(m.rowIDs)) + 1
		m.rowIDs[key] = id
	}
	m.rowIDsMu.Unlock()
	return id
}

// sigID interns one all-equality predicate signature to its dense id. Two
// subscriptions share an id exactly when their predicate descriptor
// sequences are identical — same row ids in the same order — which makes
// their batch-scored similarity matrices, and therefore their scores,
// bit-identical against any event.
func (m *Matcher) sigID(key []byte) uint32 {
	m.sigsMu.Lock()
	id, ok := m.sigs[string(key)]
	if !ok {
		id = uint32(len(m.sigs)) + 1
		m.sigs[string(key)] = id
	}
	m.sigsMu.Unlock()
	return id
}

// Thematic reports whether the matcher passes themes to the measure.
func (m *Matcher) Thematic() bool { return m.opts.thematic }

// SimilarityMatrix returns the combined attributes-values similarity matrix
// between the subscription's predicates (rows) and the event's tuples
// (columns), as in Fig. 4. Entry (i,j) is simAttr(i,j) * simValue(i,j),
// where each factor is 1 for canonically equal terms, the parametric
// semantic relatedness for ~-relaxed terms, and 0 for unequal exact terms.
func (m *Matcher) SimilarityMatrix(s *event.Subscription, e *event.Event) [][]float64 {
	return m.similarityMatrixPrepared(m.PrepareSubscription(s), m.PrepareEvent(e))
}

// termSimilarity compares one canonical subscription term against one
// canonical event term. Canonically equal terms always have similarity 1
// (even under ~: a term is maximally similar to itself). Without ~,
// anything else is 0. With ~, the parametric semantic measure decides.
func (m *Matcher) termSimilarity(subTerm string, approx bool, eventTerm string, subTheme, eventTheme *semantics.CompiledTheme) float64 {
	if subTerm == eventTerm {
		return 1
	}
	if !approx {
		return 0
	}
	return m.space.RelatednessCompiled(subTerm, subTheme, eventTerm, eventTheme)
}

// Match runs the top-1 mode: the most probable mapping σ* between s and e.
// ok is false when no feasible mapping exists (more predicates than tuples)
// or the best mapping has zero score (some predicate matches no tuple at
// all).
func (m *Matcher) Match(s *event.Subscription, e *event.Event) (Mapping, bool) {
	return m.MatchPrepared(m.PrepareSubscription(s), m.PrepareEvent(e))
}

// bestMappingHungarian solves the general case (more than three
// predicates) with the Hungarian solver over log-similarities. When a
// pooled buffer is supplied the log-weight matrix is borrowed from it
// instead of allocated.
func (m *Matcher) bestMappingHungarian(buf *simBuf, sim [][]float64) (Mapping, bool) {
	var lw [][]float64
	if buf != nil {
		lw = buf.logMatrix(sim)
	} else {
		lw = logWeights(sim)
	}
	sol, feasible := assign.Best(lw)
	if !feasible {
		return Mapping{}, false
	}
	mp := m.mappingFromCols(sim, sol.Cols)
	if mp.Score == 0 {
		return Mapping{}, false
	}
	return mp, true
}

// MatchTopK runs the top-k mode: the k most probable mappings in
// non-increasing score order, with Probability renormalized over the
// returned set (the probability space P of Fig. 4). Producing top-k
// mappings "increases the chance of hitting the correct mapping" [13]; they
// feed complex event processing downstream.
func (m *Matcher) MatchTopK(s *event.Subscription, e *event.Event, k int) []Mapping {
	sim := m.SimilarityMatrix(s, e)
	sols := assign.TopK(logWeights(sim), k)
	var out []Mapping
	total := 0.0
	for _, sol := range sols {
		mp := m.mappingFromCols(sim, sol.Cols)
		if mp.Score == 0 {
			continue // zero-probability mappings carry no information
		}
		total += mp.Score
		out = append(out, mp)
	}
	for i := range out {
		if total > 0 {
			out[i].Probability = out[i].Score / total
		}
	}
	return out
}

// Score is a convenience for ranking: the top-1 mapping score, 0 when no
// feasible mapping exists.
func (m *Matcher) Score(s *event.Subscription, e *event.Event) float64 {
	mp, ok := m.Match(s, e)
	if !ok {
		return 0
	}
	return mp.Score
}

// logWeights converts similarities to log space so that the maximum-sum
// assignment is the maximum-product mapping (freshly allocated; the pooled
// hot path uses simBuf.logMatrix instead).
func logWeights(sim [][]float64) [][]float64 {
	out := make([][]float64, len(sim))
	for i, row := range sim {
		out[i] = make([]float64, len(row))
	}
	fillLogWeights(out, sim)
	return out
}

// fillLogWeights writes the log-space form of sim into out (same shape).
// Zero similarity becomes a forbidden cell only if the whole row has an
// alternative; to keep the assignment feasible when a predicate matches
// nothing (its score is then 0), zeros map to a very negative but finite
// weight.
func fillLogWeights(out, sim [][]float64) {
	const zeroLog = -1e9
	for i, row := range sim {
		for j, v := range row {
			if v <= 0 {
				out[i][j] = zeroLog
			} else {
				out[i][j] = math.Log(v)
			}
		}
	}
}
