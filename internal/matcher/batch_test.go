package matcher

import (
	"fmt"
	"math/rand"
	"testing"

	"thematicep/internal/event"
	"thematicep/internal/workload"
)

// batchPopulation prepares a varied subscription population — exact,
// fully approximate, partially approximate, comparison-op, and
// infeasible-shape subscriptions — against the evaluation workload.
func batchPopulation(t testing.TB, m *Matcher) ([]*PreparedSubscription, []*PreparedEvent) {
	t.Helper()
	w := workload.Generate(workload.Config{
		Seed: 13, SeedEvents: 24, ExpandedPerSeed: 3, Subscriptions: 30, MaxPredicates: 3,
	})
	w.ApplyThemes(w.SampleThemes(rand.New(rand.NewSource(5)), 2, 2))

	rng := rand.New(rand.NewSource(17))
	var subs []*event.Subscription
	for i, s := range w.ApproxSubs {
		subs = append(subs, s)
		subs = append(subs, workload.PartiallyApproximate(s, 0.5, rng))
		if i%5 == 0 {
			subs = append(subs, s.Exact())
		}
	}
	// Comparison predicates exercise the raw-value EvalOp path.
	subs = append(subs,
		&event.Subscription{Predicates: []event.Predicate{
			{Attr: "room", Value: "100", Op: event.OpGt},
			{Attr: "type", Value: "parking", ApproxValue: true},
		}},
		&event.Subscription{Theme: []string{"energy"}, Predicates: []event.Predicate{
			{Attr: "floor", Value: "3", Op: event.OpLte, ApproxAttr: true},
		}},
		// More predicates than most events have tuples: infeasible shape.
		&event.Subscription{Predicates: []event.Predicate{
			{Attr: "a1", Value: "v", ApproxValue: true}, {Attr: "a2", Value: "v", ApproxValue: true},
			{Attr: "a3", Value: "v", ApproxValue: true}, {Attr: "a4", Value: "v", ApproxValue: true},
			{Attr: "a5", Value: "v", ApproxValue: true}, {Attr: "a6", Value: "v", ApproxValue: true},
			{Attr: "a7", Value: "v", ApproxValue: true}, {Attr: "a8", Value: "v", ApproxValue: true},
			{Attr: "a9", Value: "v", ApproxValue: true}, {Attr: "a10", Value: "v", ApproxValue: true},
			{Attr: "a11", Value: "v", ApproxValue: true}, {Attr: "a12", Value: "v", ApproxValue: true},
		}},
	)

	var ps []*PreparedSubscription
	for _, s := range subs {
		ps = append(ps, m.PrepareSubscription(s))
	}
	var pe []*PreparedEvent
	for i, e := range w.Events {
		if i >= 20 {
			break
		}
		pe = append(pe, m.PrepareEvent(e))
	}
	return ps, pe
}

// TestScoreBatchMatchesScorePrepared is the bit-identity contract: the
// columnar batch sweep must produce exactly the floats the row-at-a-time
// path produces, for every subscription shape, so batch dispatch can never
// change a delivery set.
func TestScoreBatchMatchesScorePrepared(t *testing.T) {
	m := New(space(t))
	subs, events := batchPopulation(t, m)
	var out []float64
	for ei, pe := range events {
		out = m.ScoreBatch(subs, pe, out[:0])
		if len(out) != len(subs) {
			t.Fatalf("event %d: ScoreBatch returned %d scores for %d subs", ei, len(out), len(subs))
		}
		for si, ps := range subs {
			want := m.ScorePrepared(ps, pe)
			if out[si] != want {
				t.Errorf("event %d sub %d: batch %v != serial %v", ei, si, out[si], want)
			}
		}
	}
}

// TestScoreBatchNonThematic covers the non-thematic matcher mode (nil
// compiled themes share one memo row space).
func TestScoreBatchNonThematic(t *testing.T) {
	m := New(space(t), WithThematic(false))
	subs, events := batchPopulation(t, m)
	var out []float64
	for ei, pe := range events[:5] {
		out = m.ScoreBatch(subs, pe, out[:0])
		for si, ps := range subs {
			if want := m.ScorePrepared(ps, pe); out[si] != want {
				t.Errorf("event %d sub %d: batch %v != serial %v", ei, si, out[si], want)
			}
		}
	}
}

// TestScoreBatchZeroAlloc gates the warm columnar sweep at 0 allocs/op for
// the common ≤3-predicate population, same idiom as the ScorePrepared gate.
func TestScoreBatchZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race mode: sync.Pool drops Puts at random, warm path is not alloc-free")
	}
	m := New(space(t))
	sub, ev := benchPair()
	subs := make([]*PreparedSubscription, 0, 32)
	for i := 0; i < 32; i++ {
		s := *sub
		s.Predicates = append([]event.Predicate(nil), sub.Predicates...)
		// Vary one value so rows overlap but are not all identical.
		s.Predicates[i%3].Value = fmt.Sprintf("%s %d", s.Predicates[i%3].Value, i%4)
		subs = append(subs, m.PrepareSubscription(&s))
	}
	pe := m.PrepareEvent(ev)
	scores := make([]float64, 0, len(subs))
	scores = m.ScoreBatch(subs, pe, scores[:0]) // warm caches, memo map, arena
	if allocs := testing.AllocsPerRun(100, func() {
		scores = m.ScoreBatch(subs, pe, scores[:0])
	}); allocs != 0 {
		t.Errorf("warm ScoreBatch: %v allocs/op, want 0", allocs)
	}
	nonzero := 0
	for _, s := range scores {
		if s > 0 {
			nonzero++
		}
	}
	if nonzero == 0 {
		t.Fatal("batch produced no positive scores; population is degenerate")
	}
}

// BenchmarkScoreBatch measures the columnar sweep against the equivalent
// serial ScorePrepared loop over the same 64-subscription candidate batch.
func BenchmarkScoreBatch(b *testing.B) {
	m := New(space(b))
	sub, ev := benchPair()
	var subs []*PreparedSubscription
	for i := 0; i < 64; i++ {
		s := *sub
		s.Predicates = append([]event.Predicate(nil), sub.Predicates...)
		s.Predicates[i%3].Value = fmt.Sprintf("%s %d", s.Predicates[i%3].Value, i%8)
		subs = append(subs, m.PrepareSubscription(&s))
	}
	pe := m.PrepareEvent(ev)
	var scores []float64
	b.Run("batch", func(b *testing.B) {
		scores = m.ScoreBatch(subs, pe, scores[:0])
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			scores = m.ScoreBatch(subs, pe, scores[:0])
		}
	})
	b.Run("serial", func(b *testing.B) {
		m.ScorePrepared(subs[0], pe)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, ps := range subs {
				m.ScorePrepared(ps, pe)
			}
		}
	})
}
