package matcher

import (
	"math"
	"sync"
	"testing"

	"thematicep/internal/corpus"
	"thematicep/internal/event"
	"thematicep/internal/index"
	"thematicep/internal/semantics"
)

var (
	spaceOnce sync.Once
	evalSpace *semantics.Space
)

func space(t testing.TB) *semantics.Space {
	t.Helper()
	spaceOnce.Do(func() {
		evalSpace = semantics.NewSpace(index.Build(corpus.GenerateDefault()))
	})
	return evalSpace
}

// The running example of §3: the subscription asks for increased energy
// usage on a laptop in room 112; the event reports increased energy
// consumption of a computer in room 112.
func paperPair() (*event.Subscription, *event.Event) {
	sub := &event.Subscription{
		Theme: []string{"energy policy", "computer systems"},
		Predicates: []event.Predicate{
			{Attr: "type", Value: "increased energy usage event", ApproxValue: true},
			{Attr: "device", Value: "laptop", ApproxAttr: true, ApproxValue: true},
			{Attr: "office", Value: "room 112"},
		},
	}
	ev := &event.Event{
		Theme: []string{"energy policy", "information technology"},
		Tuples: []event.Tuple{
			{Attr: "type", Value: "increased energy consumption event"},
			{Attr: "measurement unit", Value: "kilowatt hour"},
			{Attr: "device", Value: "computer"},
			{Attr: "office", Value: "room 112"},
		},
	}
	return sub, ev
}

func TestMatchPaperExample(t *testing.T) {
	m := New(space(t))
	sub, ev := paperPair()
	mp, ok := m.Match(sub, ev)
	if !ok {
		t.Fatal("paper example did not match")
	}
	// σ*: type -> tuple 0, device -> tuple 2, office -> tuple 3.
	wantTuples := map[int]int{0: 0, 1: 2, 2: 3}
	for _, c := range mp.Pairs {
		if want := wantTuples[c.Predicate]; c.Tuple != want {
			t.Errorf("predicate %d mapped to tuple %d, want %d", c.Predicate, c.Tuple, want)
		}
	}
	if mp.Score <= 0 || mp.Score > 1 {
		t.Errorf("score = %v out of (0,1]", mp.Score)
	}
}

func TestExactPredicateMustMatchExactly(t *testing.T) {
	m := New(space(t))
	sub, ev := paperPair()
	// office is exact; change the event's office.
	ev.Tuples[3].Value = "room 999"
	if _, ok := m.Match(sub, ev); ok {
		t.Error("matched despite exact predicate mismatch")
	}
}

func TestApproxPredicateToleratesSynonym(t *testing.T) {
	m := New(space(t))
	sub, ev := paperPair()
	mp1, ok := m.Match(sub, ev)
	if !ok {
		t.Fatal("no match")
	}
	// An unrelated device should score lower than the related one.
	ev.Tuples[2].Value = "rainfall"
	mp2, ok := m.Match(sub, ev)
	if !ok {
		t.Fatal("approximate predicate should still produce a mapping")
	}
	if mp2.Score >= mp1.Score {
		t.Errorf("unrelated value scored %v >= related %v", mp2.Score, mp1.Score)
	}
}

func TestMorePredicatesThanTuplesNoMatch(t *testing.T) {
	m := New(space(t))
	sub := &event.Subscription{Predicates: []event.Predicate{
		{Attr: "a", Value: "x", ApproxAttr: true, ApproxValue: true},
		{Attr: "b", Value: "y", ApproxAttr: true, ApproxValue: true},
	}}
	ev := &event.Event{Tuples: []event.Tuple{{Attr: "a", Value: "x"}}}
	if _, ok := m.Match(sub, ev); ok {
		t.Error("matched with more predicates than tuples")
	}
}

func TestSimilarityMatrixShapeAndRange(t *testing.T) {
	m := New(space(t))
	sub, ev := paperPair()
	sim := m.SimilarityMatrix(sub, ev)
	if len(sim) != len(sub.Predicates) {
		t.Fatalf("rows = %d", len(sim))
	}
	for i, row := range sim {
		if len(row) != len(ev.Tuples) {
			t.Fatalf("row %d cols = %d", i, len(row))
		}
		for j, v := range row {
			if v < 0 || v > 1 {
				t.Errorf("sim[%d][%d] = %v out of [0,1]", i, j, v)
			}
		}
	}
	// Exact predicate office=room 112: similarity 1 to tuple 3, 0 elsewhere.
	for j := range ev.Tuples {
		want := 0.0
		if j == 3 {
			want = 1.0
		}
		if sim[2][j] != want {
			t.Errorf("sim[office][%d] = %v, want %v", j, sim[2][j], want)
		}
	}
}

func TestIdenticalTermsScoreOneEvenWithTilde(t *testing.T) {
	m := New(space(t))
	sub := &event.Subscription{Predicates: []event.Predicate{
		{Attr: "device", Value: "laptop", ApproxAttr: true, ApproxValue: true},
	}}
	ev := &event.Event{Tuples: []event.Tuple{{Attr: "device", Value: "laptop"}}}
	mp, ok := m.Match(sub, ev)
	if !ok || mp.Score != 1 {
		t.Errorf("self match score = %v, %v; want 1, true", mp.Score, ok)
	}
}

func TestCorrespondenceProbabilitiesNormalized(t *testing.T) {
	m := New(space(t))
	sub, ev := paperPair()
	sim := m.SimilarityMatrix(sub, ev)
	mp, ok := m.Match(sub, ev)
	if !ok {
		t.Fatal("no match")
	}
	for _, c := range mp.Pairs {
		rowSum := 0.0
		for _, v := range sim[c.Predicate] {
			rowSum += v
		}
		want := sim[c.Predicate][c.Tuple] / rowSum
		if math.Abs(c.Probability-want) > 1e-12 {
			t.Errorf("P(pred %d) = %v, want %v", c.Predicate, c.Probability, want)
		}
		if c.Probability < 0 || c.Probability > 1 {
			t.Errorf("P out of range: %v", c.Probability)
		}
	}
}

func TestMatchTopK(t *testing.T) {
	m := New(space(t))
	sub, ev := paperPair()
	const k = 5
	mappings := m.MatchTopK(sub, ev, k)
	if len(mappings) == 0 {
		t.Fatal("no mappings")
	}
	if len(mappings) > k {
		t.Fatalf("got %d mappings, want <= %d", len(mappings), k)
	}
	sum := 0.0
	for i, mp := range mappings {
		sum += mp.Probability
		if i > 0 && mp.Score > mappings[i-1].Score+1e-12 {
			t.Errorf("mappings not sorted by score: %v after %v", mp.Score, mappings[i-1].Score)
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("top-k probabilities sum to %v, want 1", sum)
	}
	// Top-1 of top-k equals Match.
	top1, _ := m.Match(sub, ev)
	if math.Abs(mappings[0].Score-top1.Score) > 1e-12 {
		t.Errorf("top-1 scores disagree: %v vs %v", mappings[0].Score, top1.Score)
	}
}

func TestMatchTopKZeroK(t *testing.T) {
	m := New(space(t))
	sub, ev := paperPair()
	if got := m.MatchTopK(sub, ev, 0); got != nil {
		t.Error("k=0 should return nil")
	}
}

func TestThematicDiffersFromNonThematic(t *testing.T) {
	s := space(t)
	thematic := New(s)
	nonThematic := New(s, WithThematic(false))
	if !thematic.Thematic() || nonThematic.Thematic() {
		t.Fatal("Thematic() flags wrong")
	}
	sub, ev := paperPair()
	st := thematic.Score(sub, ev)
	sn := nonThematic.Score(sub, ev)
	if st == sn {
		t.Errorf("thematic and non-thematic scores identical: %v", st)
	}
}

// The disambiguation effect at matcher level: a subscription for bus-related
// events under a transport theme should rank a transport "coach" event above
// a tutoring "coach" event... and the education subscription the reverse.
func TestMatcherDisambiguatesHomographs(t *testing.T) {
	m := New(space(t))
	transportSub := &event.Subscription{
		Theme: []string{"land transport", "public transport", "road traffic"},
		Predicates: []event.Predicate{
			{Attr: "vehicle", Value: "bus", ApproxAttr: true, ApproxValue: true},
		},
	}
	coachTransport := &event.Event{
		Theme:  []string{"land transport", "public transport"},
		Tuples: []event.Tuple{{Attr: "vehicle", Value: "coach"}},
	}
	coachEducation := &event.Event{
		Theme:  []string{"teaching", "education policy"},
		Tuples: []event.Tuple{{Attr: "instructor", Value: "coach"}},
	}
	st := m.Score(transportSub, coachTransport)
	se := m.Score(transportSub, coachEducation)
	if st <= se {
		t.Errorf("transport sub: coach-as-bus %v <= coach-as-tutor %v", st, se)
	}
}

func TestMatchedThreshold(t *testing.T) {
	mp := Mapping{Score: 0.5}
	if !mp.Matched(0.3) || mp.Matched(0.6) {
		t.Error("Matched threshold logic wrong")
	}
	zero := Mapping{Score: 0}
	if zero.Matched(0) {
		t.Error("zero-score mapping must never match")
	}
}

func TestScoreInvariantUnderTupleOrder(t *testing.T) {
	m := New(space(t))
	sub, ev := paperPair()
	s1 := m.Score(sub, ev)
	// Reverse the tuples.
	rev := &event.Event{Theme: ev.Theme}
	for i := len(ev.Tuples) - 1; i >= 0; i-- {
		rev.Tuples = append(rev.Tuples, ev.Tuples[i])
	}
	s2 := m.Score(sub, rev)
	if math.Abs(s1-s2) > 1e-12 {
		t.Errorf("score depends on tuple order: %v vs %v", s1, s2)
	}
}

func TestConcurrentMatching(t *testing.T) {
	m := New(space(t))
	sub, ev := paperPair()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 30; j++ {
				m.Match(sub, ev)
				m.MatchTopK(sub, ev, 3)
			}
		}()
	}
	wg.Wait()
}
