package matcher

import (
	"testing"

	"thematicep/internal/event"
)

// benchPair returns a 3-predicate subscription and a 5-tuple event over the
// evaluation corpus — the common shape of the broker hot loop (bestSmall
// path, no Hungarian).
func benchPair() (*event.Subscription, *event.Event) {
	sub := &event.Subscription{
		Theme: []string{"energy policy", "computer systems"},
		Predicates: []event.Predicate{
			{Attr: "type", Value: "increased energy usage event", ApproxAttr: true, ApproxValue: true},
			{Attr: "device", Value: "laptop", ApproxAttr: true, ApproxValue: true},
			{Attr: "room", Value: "room 112", ApproxAttr: true, ApproxValue: true},
		},
	}
	ev := &event.Event{
		Theme: []string{"energy policy", "information technology"},
		Tuples: []event.Tuple{
			{Attr: "type", Value: "increased energy consumption event"},
			{Attr: "device", Value: "computer"},
			{Attr: "room", Value: "room 112"},
			{Attr: "zone", Value: "building"},
			{Attr: "city", Value: "galway"},
		},
	}
	return sub, ev
}

// TestScorePreparedZeroAlloc is the end-to-end allocation assertion for the
// broker hot loop: with warm semantic caches, pooled similarity and
// log-weight matrices, the zero-allocation relatedness kernel, and the
// score-only small-case solver, one prepared score costs 0 allocs.
func TestScorePreparedZeroAlloc(t *testing.T) {
	m := New(space(t))
	sub, ev := benchPair()
	ps := m.PrepareSubscription(sub)
	pe := m.PrepareEvent(ev)
	m.ScorePrepared(ps, pe) // warm every cache on the path
	if allocs := testing.AllocsPerRun(100, func() { m.ScorePrepared(ps, pe) }); allocs != 0 {
		t.Errorf("warm ScorePrepared: %v allocs/op, want 0", allocs)
	}
}

// TestMatchPreparedOnlyAllocatesMapping pins MatchPrepared's remaining
// allocations to the returned Mapping's Pairs slice — everything internal
// (similarity matrix, log weights, relatedness) is pooled or cached.
func TestMatchPreparedOnlyAllocatesMapping(t *testing.T) {
	m := New(space(t))
	sub, ev := benchPair()
	ps := m.PrepareSubscription(sub)
	pe := m.PrepareEvent(ev)
	m.MatchPrepared(ps, pe)
	if allocs := testing.AllocsPerRun(100, func() { m.MatchPrepared(ps, pe) }); allocs > 1 {
		t.Errorf("warm MatchPrepared: %v allocs/op, want ≤1 (the Pairs slice)", allocs)
	}
}

// BenchmarkScorePrepared measures the broker's innermost loop: one prepared
// (subscription, event) score on warm caches.
func BenchmarkScorePrepared(b *testing.B) {
	m := New(space(b))
	sub, ev := benchPair()
	ps := m.PrepareSubscription(sub)
	pe := m.PrepareEvent(ev)
	m.ScorePrepared(ps, pe)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ScorePrepared(ps, pe)
	}
}

// BenchmarkMatchPrepared measures the same pair through the full Mapping
// construction.
func BenchmarkMatchPrepared(b *testing.B) {
	m := New(space(b))
	sub, ev := benchPair()
	ps := m.PrepareSubscription(sub)
	pe := m.PrepareEvent(ev)
	m.MatchPrepared(ps, pe)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MatchPrepared(ps, pe)
	}
}
