package telemetry

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// Span is one pipeline stage of a trace. Offsets are relative to the trace
// start; spans may overlap (the deliver span aggregates offers that run
// inside the score span) and may arrive after the trace finished (cluster
// forward hops complete after Publish returns).
type Span struct {
	Stage    string        `json:"stage"`
	Offset   time.Duration `json:"offset_ns"`
	Duration time.Duration `json:"duration_ns"`
}

// Trace is the recorded pipeline history of one sampled event on one node.
// In a federation a sampled publish produces one trace fragment per broker
// it touches, all sharing a TraceID: the origin fragment (Parent empty)
// plus one remote fragment per forward hop (Parent naming the forwarding
// node). Offsets within a fragment are relative to that fragment's own
// Start — no cross-node clock synchronization is assumed; reassembly
// (themctl trace) merges fragments by TraceID and orders them by the
// parent relation, not by wall clock.
type Trace struct {
	EventID string        `json:"event_id"`
	Start   time.Time     `json:"start"`
	Total   time.Duration `json:"total_ns"`
	Spans   []Span        `json:"spans"`

	// TraceID links this fragment to the fragments recorded by other
	// nodes for the same sampled publish.
	TraceID string `json:"trace_id,omitempty"`
	// Node identifies the broker that recorded this fragment.
	Node string `json:"node,omitempty"`
	// Parent names the node that forwarded the event here; empty on the
	// origin fragment.
	Parent string `json:"parent,omitempty"`
	// Events lists the member event IDs of a batch trace (one fragment
	// per sampled PublishBatch, looked up by any member ID); nil for
	// single-event traces.
	Events []string `json:"events,omitempty"`
}

// Member reports whether id is the trace's event or one of its batch
// members.
func (tr *Trace) Member(id string) bool {
	if tr.EventID == id {
		return true
	}
	for _, e := range tr.Events {
		if e == id {
			return true
		}
	}
	return false
}

// TraceContext is the compact trace state stamped into forward/publishb
// wire frames so a sampled publish keeps one causally linked trace across
// peers: the trace ID, the forwarding node (the remote fragment's parent),
// and the sampled bit. An unsampled event carries no context at all.
type TraceContext struct {
	TraceID string `json:"id"`
	Parent  string `json:"parent,omitempty"`
	Sampled bool   `json:"sampled,omitempty"`
}

// TracerOption configures a Tracer.
type TracerOption interface {
	applyTracer(*Tracer)
}

type tracerClockOption struct{ c Clock }

func (o tracerClockOption) applyTracer(t *Tracer) { t.clock = o.c }

// WithClock sets the tracer's clock (default System).
func WithClock(c Clock) TracerOption { return tracerClockOption{c} }

type ringSizeOption int

func (o ringSizeOption) applyTracer(t *Tracer) { t.ringSize = int(o) }

// WithRingSize bounds the in-memory ring of recent traces (default 64).
func WithRingSize(n int) TracerOption { return ringSizeOption(n) }

type nodeOption string

func (o nodeOption) applyTracer(t *Tracer) { t.node = string(o) }

// WithNode stamps every trace fragment with the recording broker's
// identity and prefixes generated trace IDs with it, so fragments merged
// across a federation stay attributable and IDs stay globally unique.
func WithNode(id string) TracerOption { return nodeOption(id) }

type loggerOption struct {
	l     *slog.Logger
	every int
}

func (o loggerOption) applyTracer(t *Tracer) {
	t.logger = o.l
	if o.every > 0 {
		t.logEvery = uint64(o.every)
	}
}

// WithLogger mirrors every logEvery-th finished trace to a slog logger (a
// sampled sink on top of the tracer's own event sampling; logEvery <= 1
// logs every sampled trace).
func WithLogger(l *slog.Logger, logEvery int) TracerOption {
	return loggerOption{l, logEvery}
}

// adoptLimit bounds the pending-adoption map: forwarded trace contexts
// whose publish never arrives (dropped frames, shed forwards) must not
// accumulate, so the map is cleared outright when full — the lost
// adoptions cost a missing remote fragment, never memory.
const adoptLimit = 1024

// Tracer samples 1-in-every published events and records their pipeline
// spans into a bounded ring. The unsampled fast path is a single atomic
// add; all per-span bookkeeping happens only on sampled events, so tracing
// can stay enabled in production at a coarse sampling rate.
//
// Ring eviction is atomic per trace: a finished trace is reachable for
// late-span attachment (AppendSpan) only through the event index, and
// eviction removes the whole trace from both ring and index in one
// critical section. A late span therefore either lands on the complete
// live trace or is dropped — it can never attach to a half-evicted slot or
// to an older trace that happens to reuse the event ID.
type Tracer struct {
	clock    Clock
	every    uint64
	ringSize int
	node     string
	logger   *slog.Logger
	logEvery uint64

	seq      atomic.Uint64
	logSeq   atomic.Uint64
	traceSeq atomic.Uint64
	epoch    int64 // creation instant, distinguishes restarts in trace IDs

	mu      sync.Mutex
	ring    []*Trace          // ring buffer of finished traces
	next    int               // ring insertion cursor
	byEvent map[string]*Trace // event ID -> most recent live trace
	adopted map[string]TraceContext
}

// NewTracer samples one event in every (1 = every event). every <= 0
// returns nil: a nil *Tracer is valid and records nothing.
func NewTracer(every int, opts ...TracerOption) *Tracer {
	if every <= 0 {
		return nil
	}
	t := &Tracer{
		clock:    System,
		every:    uint64(every),
		ringSize: 64,
		logEvery: 1,
		byEvent:  make(map[string]*Trace),
		adopted:  make(map[string]TraceContext),
	}
	for _, opt := range opts {
		opt.applyTracer(t)
	}
	t.epoch = t.clock.Now().UnixNano()
	return t
}

// newTraceID mints a cluster-unique trace ID: node identity (when set),
// the tracer's creation instant (distinguishing restarts), and a sequence
// number.
func (t *Tracer) newTraceID() string {
	return fmt.Sprintf("%s.%x.%x", t.node, uint64(t.epoch), t.traceSeq.Add(1))
}

// Start begins a trace for an event if this event is sampled; otherwise it
// returns nil (and a nil *ActiveTrace is safe to use — every method
// no-ops).
func (t *Tracer) Start(eventID string) *ActiveTrace {
	if t == nil {
		return nil
	}
	return t.StartAt(eventID, t.clock.Now())
}

// StartAt is Start with an explicit anchor, so a caller that timestamped
// the pipeline entry before the sampling decision can keep every span
// offset non-negative relative to it. An event whose ID was adopted from a
// forwarded trace context (Adopt) is always sampled and continues the
// originating trace.
func (t *Tracer) StartAt(eventID string, start time.Time) *ActiveTrace {
	if t == nil {
		return nil
	}
	if tc, ok := t.takeAdopted(eventID); ok {
		return &ActiveTrace{
			t:  t,
			tr: Trace{EventID: eventID, Start: start, TraceID: tc.TraceID, Node: t.node, Parent: tc.Parent},
		}
	}
	if (t.seq.Add(1)-1)%t.every != 0 {
		return nil
	}
	return &ActiveTrace{
		t:  t,
		tr: Trace{EventID: eventID, Start: start, TraceID: t.newTraceID(), Node: t.node},
	}
}

// StartBatchAt begins one trace for a whole publish batch: the batch
// counts as a single sampling unit, the first member is the trace's
// nominal event, and every member ID is indexed so AppendSpan and
// ContextFor find the batch trace by any member. Adoption is keyed by the
// first member ID (the convention forwarded batch contexts use).
func (t *Tracer) StartBatchAt(eventIDs []string, start time.Time) *ActiveTrace {
	if t == nil || len(eventIDs) == 0 {
		return nil
	}
	var tr Trace
	if tc, ok := t.takeAdopted(eventIDs[0]); ok {
		tr = Trace{TraceID: tc.TraceID, Node: t.node, Parent: tc.Parent}
	} else if (t.seq.Add(1)-1)%t.every == 0 {
		tr = Trace{TraceID: t.newTraceID(), Node: t.node}
	} else {
		return nil
	}
	tr.EventID = eventIDs[0]
	tr.Start = start
	tr.Events = append([]string(nil), eventIDs...)
	return &ActiveTrace{t: t, tr: tr}
}

// Adopt registers a forwarded trace context for an incoming event (or for
// a forwarded batch, keyed by its first member), so the next StartAt /
// StartBatchAt for that ID is sampled unconditionally and continues the
// originating trace. Unsampled or empty contexts are ignored. The pending
// set is bounded (adoptLimit) and cleared when full.
func (t *Tracer) Adopt(eventID string, tc *TraceContext) {
	if t == nil || eventID == "" || tc == nil || !tc.Sampled || tc.TraceID == "" {
		return
	}
	t.mu.Lock()
	if len(t.adopted) >= adoptLimit {
		clear(t.adopted)
	}
	t.adopted[eventID] = *tc
	t.mu.Unlock()
}

func (t *Tracer) takeAdopted(eventID string) (TraceContext, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	tc, ok := t.adopted[eventID]
	if ok {
		delete(t.adopted, eventID)
	}
	return tc, ok
}

// ContextFor returns the wire trace context for an event whose trace is
// still live in the ring: the federation layer stamps it onto forward
// frames so peers continue the trace. The second return is false when the
// event was not sampled (or its trace already evicted).
func (t *Tracer) ContextFor(eventID string) (TraceContext, bool) {
	if t == nil || eventID == "" {
		return TraceContext{}, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	tr, ok := t.byEvent[eventID]
	if !ok {
		return TraceContext{}, false
	}
	return TraceContext{TraceID: tr.TraceID, Parent: t.node, Sampled: true}, true
}

// finish stores a completed trace in the ring, indexes it by its event IDs
// for late-span attachment, and mirrors it to the slog sink. The evicted
// trace (if any) is unindexed in the same critical section — whole-trace
// eviction, never a partial span tree.
func (t *Tracer) finish(tr Trace) {
	p := &tr
	t.mu.Lock()
	if len(t.ring) < t.ringSize {
		t.ring = append(t.ring, p)
	} else {
		t.unindex(t.ring[t.next])
		t.ring[t.next] = p
		t.next = (t.next + 1) % t.ringSize
	}
	t.index(p)
	t.mu.Unlock()

	if t.logger != nil && (t.logSeq.Add(1)-1)%t.logEvery == 0 {
		attrs := make([]any, 0, 4+2*len(tr.Spans))
		attrs = append(attrs, "event_id", tr.EventID, "trace_id", tr.TraceID, "total", tr.Total)
		for _, s := range tr.Spans {
			attrs = append(attrs, s.Stage, s.Duration)
		}
		t.logger.Info("pipeline trace", attrs...)
	}
}

// index claims every event ID of a trace in the attachment index (the
// newest trace for an ID wins; an older trace with the same ID becomes
// unreachable for late spans, which is exactly the atomicity contract).
func (t *Tracer) index(tr *Trace) {
	t.byEvent[tr.EventID] = tr
	for _, id := range tr.Events {
		t.byEvent[id] = tr
	}
}

// unindex releases a trace's claims, leaving claims that a newer trace
// already overwrote untouched.
func (t *Tracer) unindex(tr *Trace) {
	if tr == nil {
		return
	}
	if t.byEvent[tr.EventID] == tr {
		delete(t.byEvent, tr.EventID)
	}
	for _, id := range tr.Events {
		if t.byEvent[id] == tr {
			delete(t.byEvent, id)
		}
	}
}

// AppendSpan attaches a late span (for example a cluster forward hop) to
// the live trace carrying eventID. It reports whether one was found:
// sampling means most events have none, and an evicted trace never
// accepts late spans (see the eviction contract in the type docs).
func (t *Tracer) AppendSpan(eventID, stage string, start time.Time, d time.Duration) bool {
	if t == nil || eventID == "" {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	tr, ok := t.byEvent[eventID]
	if !ok {
		return false
	}
	off := start.Sub(tr.Start)
	tr.Spans = append(tr.Spans, Span{Stage: stage, Offset: off, Duration: d})
	if end := off + d; end > tr.Total {
		tr.Total = end
	}
	return true
}

// Recent returns the ring's traces, newest first.
func (t *Tracer) Recent() []Trace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Trace, 0, len(t.ring))
	for i := 0; i < len(t.ring); i++ {
		idx := (t.next - 1 - i + 2*len(t.ring)) % len(t.ring)
		tr := *t.ring[idx]
		tr.Spans = append([]Span(nil), tr.Spans...)
		out = append(out, tr)
	}
	return out
}

// Handler serves the recent traces as a JSON array (the /debug/traces
// endpoint). A nil tracer serves an empty array.
func (t *Tracer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		traces := t.Recent()
		if traces == nil {
			traces = []Trace{}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(traces)
	})
}

// ActiveTrace is one in-progress sampled trace. All methods are safe on a
// nil receiver (the unsampled case) and safe for concurrent use (parallel
// dispatch workers may add spans concurrently).
type ActiveTrace struct {
	t *Tracer

	mu sync.Mutex
	tr Trace
}

// Context returns the wire trace context of this in-progress trace (for
// stamping onto frames before Finish). A nil receiver returns a zero,
// unsampled context.
func (a *ActiveTrace) Context() TraceContext {
	if a == nil {
		return TraceContext{}
	}
	return TraceContext{TraceID: a.tr.TraceID, Parent: a.tr.Node, Sampled: true}
}

// AddSpan records a stage that started at start and ends now (per the
// tracer's clock).
func (a *ActiveTrace) AddSpan(stage string, start time.Time) {
	if a == nil {
		return
	}
	a.AddSpanDuration(stage, start, a.t.clock.Now().Sub(start))
}

// AddSpanDuration records a stage with an explicit duration.
func (a *ActiveTrace) AddSpanDuration(stage string, start time.Time, d time.Duration) {
	if a == nil {
		return
	}
	a.mu.Lock()
	a.tr.Spans = append(a.tr.Spans, Span{Stage: stage, Offset: start.Sub(a.tr.Start), Duration: d})
	a.mu.Unlock()
}

// Finish seals the trace (total = now - start) and publishes it to the
// tracer's ring and slog sink.
func (a *ActiveTrace) Finish() {
	if a == nil {
		return
	}
	a.mu.Lock()
	a.tr.Total = a.t.clock.Now().Sub(a.tr.Start)
	tr := a.tr
	tr.Spans = append([]Span(nil), tr.Spans...)
	a.mu.Unlock()
	a.t.finish(tr)
}
