package telemetry

import (
	"encoding/json"
	"log/slog"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// Span is one pipeline stage of a trace. Offsets are relative to the trace
// start; spans may overlap (the deliver span aggregates offers that run
// inside the score span) and may arrive after the trace finished (cluster
// forward hops complete after Publish returns).
type Span struct {
	Stage    string        `json:"stage"`
	Offset   time.Duration `json:"offset_ns"`
	Duration time.Duration `json:"duration_ns"`
}

// Trace is the recorded pipeline history of one sampled event.
type Trace struct {
	EventID string        `json:"event_id"`
	Start   time.Time     `json:"start"`
	Total   time.Duration `json:"total_ns"`
	Spans   []Span        `json:"spans"`
}

// TracerOption configures a Tracer.
type TracerOption interface {
	applyTracer(*Tracer)
}

type tracerClockOption struct{ c Clock }

func (o tracerClockOption) applyTracer(t *Tracer) { t.clock = o.c }

// WithClock sets the tracer's clock (default System).
func WithClock(c Clock) TracerOption { return tracerClockOption{c} }

type ringSizeOption int

func (o ringSizeOption) applyTracer(t *Tracer) { t.ringSize = int(o) }

// WithRingSize bounds the in-memory ring of recent traces (default 64).
func WithRingSize(n int) TracerOption { return ringSizeOption(n) }

type loggerOption struct {
	l     *slog.Logger
	every int
}

func (o loggerOption) applyTracer(t *Tracer) {
	t.logger = o.l
	if o.every > 0 {
		t.logEvery = uint64(o.every)
	}
}

// WithLogger mirrors every logEvery-th finished trace to a slog logger (a
// sampled sink on top of the tracer's own event sampling; logEvery <= 1
// logs every sampled trace).
func WithLogger(l *slog.Logger, logEvery int) TracerOption {
	return loggerOption{l, logEvery}
}

// Tracer samples 1-in-every published events and records their pipeline
// spans into a bounded ring. The unsampled fast path is a single atomic
// add; all per-span bookkeeping happens only on sampled events, so tracing
// can stay enabled in production at a coarse sampling rate.
type Tracer struct {
	clock    Clock
	every    uint64
	ringSize int
	logger   *slog.Logger
	logEvery uint64

	seq    atomic.Uint64
	logSeq atomic.Uint64

	mu   sync.Mutex
	ring []Trace // ring buffer of finished traces
	next int     // ring insertion cursor
}

// NewTracer samples one event in every (1 = every event). every <= 0
// returns nil: a nil *Tracer is valid and records nothing.
func NewTracer(every int, opts ...TracerOption) *Tracer {
	if every <= 0 {
		return nil
	}
	t := &Tracer{
		clock:    System,
		every:    uint64(every),
		ringSize: 64,
		logEvery: 1,
	}
	for _, opt := range opts {
		opt.applyTracer(t)
	}
	return t
}

// Start begins a trace for an event if this event is sampled; otherwise it
// returns nil (and a nil *ActiveTrace is safe to use — every method
// no-ops).
func (t *Tracer) Start(eventID string) *ActiveTrace {
	if t == nil {
		return nil
	}
	return t.StartAt(eventID, t.clock.Now())
}

// StartAt is Start with an explicit anchor, so a caller that timestamped
// the pipeline entry before the sampling decision can keep every span
// offset non-negative relative to it.
func (t *Tracer) StartAt(eventID string, start time.Time) *ActiveTrace {
	if t == nil {
		return nil
	}
	if (t.seq.Add(1)-1)%t.every != 0 {
		return nil
	}
	return &ActiveTrace{
		t:  t,
		tr: Trace{EventID: eventID, Start: start},
	}
}

// finish stores a completed trace in the ring and mirrors it to the slog
// sink.
func (t *Tracer) finish(tr Trace) {
	t.mu.Lock()
	if len(t.ring) < t.ringSize {
		t.ring = append(t.ring, tr)
	} else {
		t.ring[t.next] = tr
		t.next = (t.next + 1) % t.ringSize
	}
	t.mu.Unlock()

	if t.logger != nil && (t.logSeq.Add(1)-1)%t.logEvery == 0 {
		attrs := make([]any, 0, 2+2*len(tr.Spans))
		attrs = append(attrs, "event_id", tr.EventID, "total", tr.Total)
		for _, s := range tr.Spans {
			attrs = append(attrs, s.Stage, s.Duration)
		}
		t.logger.Info("pipeline trace", attrs...)
	}
}

// AppendSpan attaches a late span (for example a cluster forward hop) to
// the most recent trace carrying eventID. It reports whether a trace was
// found; sampling means most events have none.
func (t *Tracer) AppendSpan(eventID, stage string, start time.Time, d time.Duration) bool {
	if t == nil || eventID == "" {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := 0; i < len(t.ring); i++ {
		// Newest first: walk backwards from the insertion cursor.
		idx := (t.next - 1 - i + 2*len(t.ring)) % len(t.ring)
		tr := &t.ring[idx]
		if tr.EventID != eventID {
			continue
		}
		off := start.Sub(tr.Start)
		tr.Spans = append(tr.Spans, Span{Stage: stage, Offset: off, Duration: d})
		if end := off + d; end > tr.Total {
			tr.Total = end
		}
		return true
	}
	return false
}

// Recent returns the ring's traces, newest first.
func (t *Tracer) Recent() []Trace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Trace, 0, len(t.ring))
	for i := 0; i < len(t.ring); i++ {
		idx := (t.next - 1 - i + 2*len(t.ring)) % len(t.ring)
		tr := t.ring[idx]
		tr.Spans = append([]Span(nil), tr.Spans...)
		out = append(out, tr)
	}
	return out
}

// Handler serves the recent traces as a JSON array (the /debug/traces
// endpoint). A nil tracer serves an empty array.
func (t *Tracer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		traces := t.Recent()
		if traces == nil {
			traces = []Trace{}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(traces)
	})
}

// ActiveTrace is one in-progress sampled trace. All methods are safe on a
// nil receiver (the unsampled case) and safe for concurrent use (parallel
// dispatch workers may add spans concurrently).
type ActiveTrace struct {
	t *Tracer

	mu sync.Mutex
	tr Trace
}

// AddSpan records a stage that started at start and ends now (per the
// tracer's clock).
func (a *ActiveTrace) AddSpan(stage string, start time.Time) {
	if a == nil {
		return
	}
	a.AddSpanDuration(stage, start, a.t.clock.Now().Sub(start))
}

// AddSpanDuration records a stage with an explicit duration.
func (a *ActiveTrace) AddSpanDuration(stage string, start time.Time, d time.Duration) {
	if a == nil {
		return
	}
	a.mu.Lock()
	a.tr.Spans = append(a.tr.Spans, Span{Stage: stage, Offset: start.Sub(a.tr.Start), Duration: d})
	a.mu.Unlock()
}

// Finish seals the trace (total = now - start) and publishes it to the
// tracer's ring and slog sink.
func (a *ActiveTrace) Finish() {
	if a == nil {
		return
	}
	a.mu.Lock()
	a.tr.Total = a.t.clock.Now().Sub(a.tr.Start)
	tr := a.tr
	tr.Spans = append([]Span(nil), tr.Spans...)
	a.mu.Unlock()
	a.t.finish(tr)
}
