package telemetry

import (
	"strings"
	"testing"
)

const goodExposition = `# HELP app_requests_total requests.
# TYPE app_requests_total counter
app_requests_total 10
# HELP app_queue_depth queue depth.
# TYPE app_queue_depth gauge
app_queue_depth{subscription="a"} 3
app_queue_depth{subscription="b"} 0
# HELP app_latency_seconds latency.
# TYPE app_latency_seconds histogram
app_latency_seconds_bucket{le="0.01"} 2
app_latency_seconds_bucket{le="0.1"} 5
app_latency_seconds_bucket{le="+Inf"} 6
app_latency_seconds_sum 1.5
app_latency_seconds_count 6
`

func TestLintAcceptsValid(t *testing.T) {
	if err := Lint(strings.NewReader(goodExposition)); err != nil {
		t.Fatalf("valid exposition rejected: %v", err)
	}
}

func TestParseExposition(t *testing.T) {
	fams, err := ParseExposition(strings.NewReader(goodExposition))
	if err != nil {
		t.Fatal(err)
	}
	if len(fams) != 3 {
		t.Fatalf("got %d families, want 3", len(fams))
	}
	if fams[1].Name != "app_queue_depth" || len(fams[1].Samples) != 2 {
		t.Errorf("gauge family = %+v", fams[1])
	}
	if fams[1].Samples[0].Labels["subscription"] != "a" {
		t.Errorf("labels = %v", fams[1].Samples[0].Labels)
	}
	if fams[2].Type != "histogram" || len(fams[2].Samples) != 5 {
		t.Errorf("histogram family = %+v", fams[2])
	}
}

func TestLintRejects(t *testing.T) {
	cases := map[string]string{
		"duplicate HELP": `# HELP x n.
# HELP x n.
# TYPE x counter
x 1
`,
		"duplicate TYPE": `# HELP x n.
# TYPE x counter
# TYPE x counter
x 1
`,
		"TYPE after samples": `# HELP x n.
x 1
# TYPE x counter
`,
		"missing TYPE": `# HELP x n.
x 1
`,
		"missing HELP": `# TYPE x counter
x 1
`,
		"unknown type": `# HELP x n.
# TYPE x wat
x 1
`,
		"negative counter": `# HELP x n.
# TYPE x counter
x -1
`,
		"non-monotone buckets": `# HELP h n.
# TYPE h histogram
h_bucket{le="0.1"} 5
h_bucket{le="1"} 3
h_bucket{le="+Inf"} 5
h_sum 1
h_count 5
`,
		"descending le": `# HELP h n.
# TYPE h histogram
h_bucket{le="1"} 2
h_bucket{le="0.1"} 2
h_bucket{le="+Inf"} 2
h_sum 1
h_count 2
`,
		"+Inf != count": `# HELP h n.
# TYPE h histogram
h_bucket{le="0.1"} 2
h_bucket{le="+Inf"} 5
h_sum 1
h_count 6
`,
		"missing +Inf": `# HELP h n.
# TYPE h histogram
h_bucket{le="0.1"} 2
h_sum 1
h_count 2
`,
		"missing sum": `# HELP h n.
# TYPE h histogram
h_bucket{le="+Inf"} 2
h_count 2
`,
		"bucket without le": `# HELP h n.
# TYPE h histogram
h_bucket 2
h_bucket{le="+Inf"} 2
h_sum 1
h_count 2
`,
	}
	for name, in := range cases {
		if err := Lint(strings.NewReader(in)); err == nil {
			t.Errorf("%s: lint accepted invalid exposition", name)
		}
	}
}

func TestLintHistogramPerLabelSet(t *testing.T) {
	// Two label sets of one family, each internally consistent.
	good := `# HELP h n.
# TYPE h histogram
h_bucket{peer="a",le="0.1"} 1
h_bucket{peer="a",le="+Inf"} 2
h_sum{peer="a"} 0.3
h_count{peer="a"} 2
h_bucket{peer="b",le="0.1"} 7
h_bucket{peer="b",le="+Inf"} 7
h_sum{peer="b"} 0.1
h_count{peer="b"} 7
`
	if err := Lint(strings.NewReader(good)); err != nil {
		t.Errorf("per-label-set histogram rejected: %v", err)
	}
	// peer="b" +Inf disagrees with its own _count.
	bad := strings.Replace(good, `h_count{peer="b"} 7`, `h_count{peer="b"} 9`, 1)
	if err := Lint(strings.NewReader(bad)); err == nil {
		t.Error("mismatched per-label-set count accepted")
	}
}

func TestParseLabelEscapes(t *testing.T) {
	in := `# HELP x n.
# TYPE x gauge
x{path="a\"b\\c"} 1
`
	fams, err := ParseExposition(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if got := fams[0].Samples[0].Labels["path"]; got != `a"b\c` {
		t.Errorf("unescaped label = %q", got)
	}
}

func TestFormatLabelsEscapes(t *testing.T) {
	got := formatLabels([]Label{{"path", `a"b\c`}})
	want := `{path="a\"b\\c"}`
	if got != want {
		t.Errorf("formatLabels = %s, want %s", got, want)
	}
}
