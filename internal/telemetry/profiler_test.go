package telemetry

import (
	"encoding/json"
	"net/http/httptest"
	"os"
	"testing"
	"time"
)

func TestProfilerRingBounded(t *testing.T) {
	dir := t.TempDir()
	p, err := NewProfiler(dir, 4, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ { // 4 captures × 2 kinds = 8 entries, keep 4
		if err := p.Capture("cadence"); err != nil {
			t.Fatalf("capture %d: %v", i, err)
		}
	}
	ring := p.Ring()
	if len(ring) != 4 {
		t.Fatalf("ring holds %d entries, want 4", len(ring))
	}
	// On-disk files match the manifest exactly: evicted profiles deleted.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	onDisk := map[string]bool{}
	for _, e := range ents {
		onDisk[e.Name()] = true
	}
	if len(onDisk) != len(ring) {
		t.Fatalf("%d files on disk, %d in ring", len(onDisk), len(ring))
	}
	for _, e := range ring {
		if !onDisk[e.File] {
			t.Errorf("ring entry %s missing on disk", e.File)
		}
		if e.Bytes <= 0 {
			t.Errorf("entry %s has %d bytes", e.File, e.Bytes)
		}
		if e.Kind != "cpu" && e.Kind != "heap" {
			t.Errorf("entry kind %q", e.Kind)
		}
	}
}

func TestProfilerHandler(t *testing.T) {
	p, err := NewProfiler(t.TempDir(), 8, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Capture("slo-burn"); err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	p.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/prof/ring", nil))
	var ring []ProfileEntry
	if err := json.Unmarshal(rec.Body.Bytes(), &ring); err != nil {
		t.Fatalf("manifest JSON: %v\n%s", err, rec.Body.String())
	}
	if len(ring) != 2 || ring[0].Reason != "slo-burn" {
		t.Fatalf("manifest = %+v", ring)
	}

	rec = httptest.NewRecorder()
	p.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/prof/ring?file="+ring[1].File, nil))
	if rec.Code != 200 || rec.Body.Len() == 0 {
		t.Errorf("profile download: status %d, %d bytes", rec.Code, rec.Body.Len())
	}
	// Only ring members are servable — no traversal.
	rec = httptest.NewRecorder()
	p.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/prof/ring?file=../../etc/passwd", nil))
	if rec.Code != 404 {
		t.Errorf("traversal attempt: status %d, want 404", rec.Code)
	}
}

func TestProfilerTriggerCoalesces(t *testing.T) {
	p, err := NewProfiler(t.TempDir(), 8, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	// Both land without a Run loop: the channel holds one, the second is
	// dropped, nothing blocks.
	p.Trigger("burn-1")
	p.Trigger("burn-2")
	var nilP *Profiler
	nilP.Trigger("x")
	if err := nilP.Capture("x"); err != nil {
		t.Error("nil profiler capture errored")
	}
}
