package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Sample is one parsed exposition line.
type Sample struct {
	Name   string // full series name (including _bucket/_sum/_count suffix)
	Labels map[string]string
	Value  float64
}

// Family is one parsed metric family: its metadata plus every sample that
// belongs to it.
type Family struct {
	Name    string
	Type    string // counter, gauge, histogram, summary, untyped
	Help    string
	Samples []Sample
}

// ParseExposition parses the Prometheus text format into families, keyed by
// family name, preserving first-seen order. It is intentionally a subset
// parser (enough for this repo's own output plus linting): full label
// escaping, HELP/TYPE metadata, histograms' suffixed series.
func ParseExposition(r io.Reader) ([]*Family, error) {
	byName := make(map[string]*Family)
	var order []*Family
	family := func(name string) *Family {
		if f, ok := byName[name]; ok {
			return f
		}
		f := &Family{Name: name, Type: "untyped"}
		byName[name] = f
		order = append(order, f)
		return f
	}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			rest := strings.TrimPrefix(line, "# HELP ")
			name, help, _ := strings.Cut(rest, " ")
			f := family(name)
			if f.Help != "" && f.Help != help {
				return nil, fmt.Errorf("line %d: family %s has conflicting HELP", lineNo, name)
			}
			if f.Help != "" {
				return nil, fmt.Errorf("line %d: duplicate HELP for family %s", lineNo, name)
			}
			f.Help = help
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			rest := strings.TrimPrefix(line, "# TYPE ")
			name, typ, _ := strings.Cut(rest, " ")
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return nil, fmt.Errorf("line %d: unknown type %q for family %s", lineNo, typ, name)
			}
			f := family(name)
			if f.Type != "untyped" {
				return nil, fmt.Errorf("line %d: duplicate TYPE for family %s", lineNo, name)
			}
			if len(f.Samples) > 0 {
				return nil, fmt.Errorf("line %d: TYPE for family %s after its samples", lineNo, name)
			}
			f.Type = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // comment
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		// A _bucket/_sum/_count series belongs to its base family only
		// when that family is declared as a distribution; otherwise the
		// suffix is part of an ordinary metric's name (a gauge may
		// legitimately end in _bucket).
		name := s.Name
		if base := familyOf(s.Name); base != s.Name {
			if bf, ok := byName[base]; ok && (bf.Type == "histogram" || bf.Type == "summary") {
				name = base
			}
		}
		f := family(name)
		f.Samples = append(f.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return order, nil
}

// familyOf strips the histogram/summary series suffixes, yielding the
// candidate base-family name (the caller decides whether it applies).
func familyOf(series string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(series, suf) {
			return strings.TrimSuffix(series, suf)
		}
	}
	return series
}

func parseSample(line string) (Sample, error) {
	s := Sample{Labels: map[string]string{}}
	rest := line
	if i := strings.IndexByte(line, '{'); i >= 0 {
		s.Name = line[:i]
		end := strings.LastIndexByte(line, '}')
		if end < i {
			return s, fmt.Errorf("unterminated label block: %q", line)
		}
		if err := parseLabels(line[i+1:end], s.Labels); err != nil {
			return s, err
		}
		rest = strings.TrimSpace(line[end+1:])
	} else {
		var ok bool
		s.Name, rest, ok = strings.Cut(line, " ")
		if !ok {
			return s, fmt.Errorf("no value: %q", line)
		}
	}
	// Value is the first field of the remainder (an optional timestamp may
	// follow).
	val := strings.Fields(rest)
	if len(val) == 0 {
		return s, fmt.Errorf("no value: %q", line)
	}
	v, err := parseValue(val[0])
	if err != nil {
		return s, fmt.Errorf("bad value %q: %w", val[0], err)
	}
	s.Value = v
	return s, nil
}

func parseValue(v string) (float64, error) {
	switch v {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(v, 64)
}

func parseLabels(block string, into map[string]string) error {
	i := 0
	for i < len(block) {
		eq := strings.IndexByte(block[i:], '=')
		if eq < 0 {
			return fmt.Errorf("bad label block: %q", block)
		}
		key := strings.TrimSpace(block[i : i+eq])
		i += eq + 1
		if i >= len(block) || block[i] != '"' {
			return fmt.Errorf("unquoted label value in %q", block)
		}
		i++
		var sb strings.Builder
		for i < len(block) && block[i] != '"' {
			if block[i] == '\\' && i+1 < len(block) {
				i++
				switch block[i] {
				case 'n':
					sb.WriteByte('\n')
				default:
					sb.WriteByte(block[i])
				}
			} else {
				sb.WriteByte(block[i])
			}
			i++
		}
		if i >= len(block) {
			return fmt.Errorf("unterminated label value in %q", block)
		}
		i++ // closing quote
		if _, dup := into[key]; dup {
			return fmt.Errorf("duplicate label %q", key)
		}
		into[key] = sb.String()
		if i < len(block) && block[i] == ',' {
			i++
		}
	}
	return nil
}

// Lint parses an exposition and enforces the structural invariants this
// repo's collectors promise: HELP and TYPE present exactly once per family
// (enforced during parsing), every sample's family typed, histogram series
// complete and internally consistent per label set (monotone cumulative
// bucket counts, an le="+Inf" bucket whose value equals _count, and a
// _sum), and counters/gauges finite and (for counters) non-negative.
func Lint(r io.Reader) error {
	families, err := ParseExposition(r)
	if err != nil {
		return err
	}
	for _, f := range families {
		if f.Type == "untyped" {
			return fmt.Errorf("family %s: missing TYPE", f.Name)
		}
		if f.Help == "" {
			return fmt.Errorf("family %s: missing HELP", f.Name)
		}
		if len(f.Samples) == 0 {
			return fmt.Errorf("family %s: no samples", f.Name)
		}
		switch f.Type {
		case "histogram":
			if err := lintHistogram(f); err != nil {
				return fmt.Errorf("family %s: %w", f.Name, err)
			}
		case "counter":
			for _, s := range f.Samples {
				if math.IsNaN(s.Value) || math.IsInf(s.Value, 0) || s.Value < 0 {
					return fmt.Errorf("family %s: counter value %v", f.Name, s.Value)
				}
			}
		case "gauge":
			for _, s := range f.Samples {
				if math.IsNaN(s.Value) || math.IsInf(s.Value, 0) {
					return fmt.Errorf("family %s: gauge value %v", f.Name, s.Value)
				}
			}
		}
	}
	return nil
}

// lintHistogram checks every label-set series of one histogram family.
func lintHistogram(f *Family) error {
	type series struct {
		buckets []Sample // le-labeled, in exposition order
		sum     *Sample
		count   *Sample
	}
	byKey := map[string]*series{}
	keyOf := func(labels map[string]string) string {
		keys := make([]string, 0, len(labels))
		for k := range labels {
			if k != "le" {
				keys = append(keys, k)
			}
		}
		sort.Strings(keys)
		var sb strings.Builder
		for _, k := range keys {
			sb.WriteString(k)
			sb.WriteByte('=')
			sb.WriteString(labels[k])
			sb.WriteByte(';')
		}
		return sb.String()
	}
	get := func(labels map[string]string) *series {
		k := keyOf(labels)
		if s, ok := byKey[k]; ok {
			return s
		}
		s := &series{}
		byKey[k] = s
		return s
	}
	for i := range f.Samples {
		s := f.Samples[i]
		sr := get(s.Labels)
		switch {
		case s.Name == f.Name+"_bucket":
			if _, ok := s.Labels["le"]; !ok {
				return fmt.Errorf("bucket sample without le label")
			}
			sr.buckets = append(sr.buckets, s)
		case s.Name == f.Name+"_sum":
			sr.sum = &f.Samples[i]
		case s.Name == f.Name+"_count":
			sr.count = &f.Samples[i]
		default:
			return fmt.Errorf("unexpected series %s in histogram family", s.Name)
		}
	}
	for _, sr := range byKey {
		if sr.sum == nil || sr.count == nil || len(sr.buckets) == 0 {
			return fmt.Errorf("incomplete histogram series (need _bucket, _sum, _count)")
		}
		prevLe := math.Inf(-1)
		prevCum := -1.0
		var infCum float64
		sawInf := false
		for _, b := range sr.buckets {
			le, err := parseValue(b.Labels["le"])
			if err != nil {
				return fmt.Errorf("bad le %q", b.Labels["le"])
			}
			if le <= prevLe {
				return fmt.Errorf("le bounds not ascending")
			}
			prevLe = le
			if b.Value < prevCum {
				return fmt.Errorf("cumulative bucket counts not monotone")
			}
			prevCum = b.Value
			if math.IsInf(le, 1) {
				sawInf = true
				infCum = b.Value
			}
		}
		if !sawInf {
			return fmt.Errorf(`missing le="+Inf" bucket`)
		}
		if infCum != sr.count.Value {
			return fmt.Errorf(`le="+Inf" bucket %v != _count %v`, infCum, sr.count.Value)
		}
	}
	return nil
}
