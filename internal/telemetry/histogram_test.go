package telemetry

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramBucketPlacement(t *testing.T) {
	h := NewHistogram("x_seconds", "test", []float64{0.001, 0.01, 0.1})
	h.ObserveDuration(500 * time.Microsecond) // bucket 0 (≤ 1ms)
	h.ObserveDuration(1 * time.Millisecond)   // bucket 0 (bounds are inclusive)
	h.ObserveDuration(2 * time.Millisecond)   // bucket 1
	h.ObserveDuration(50 * time.Millisecond)  // bucket 2
	h.ObserveDuration(2 * time.Second)        // +Inf

	s := h.Snapshot()
	want := []uint64{2, 1, 1, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d (counts %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 5 {
		t.Errorf("count = %d, want 5", s.Count)
	}
	wantSum := 0.0005 + 0.001 + 0.002 + 0.05 + 2
	if diff := s.Sum - wantSum; diff > 1e-6 || diff < -1e-6 {
		t.Errorf("sum = %v, want %v", s.Sum, wantSum)
	}
}

func TestHistogramObserveValues(t *testing.T) {
	h := NewHistogram("candidates", "test", []float64{1, 2, 4, 8})
	for _, v := range []float64{0, 1, 2, 3, 5, 100} {
		h.Observe(v)
	}
	s := h.Snapshot()
	want := []uint64{2, 1, 1, 1, 1} // ≤1:{0,1} ≤2:{2} ≤4:{3} ≤8:{5} +Inf:{100}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d", i, s.Counts[i], w)
		}
	}
}

func TestHistogramExposition(t *testing.T) {
	h := NewHistogram("x_seconds", "latency.", []float64{0.001, 0.01})
	h.ObserveDuration(500 * time.Microsecond)
	h.ObserveDuration(5 * time.Millisecond)
	h.ObserveDuration(5 * time.Second)

	var sb strings.Builder
	h.WriteMetrics(&sb)
	out := sb.String()
	for _, want := range []string{
		"# HELP x_seconds latency.",
		"# TYPE x_seconds histogram",
		`x_seconds_bucket{le="0.001"} 1`,
		`x_seconds_bucket{le="0.01"} 2`,
		`x_seconds_bucket{le="+Inf"} 3`,
		"x_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	if err := Lint(strings.NewReader(out)); err != nil {
		t.Errorf("self-lint failed: %v\n%s", err, out)
	}
}

func TestHistogramLabeledSharedFamily(t *testing.T) {
	a := NewHistogram("hop_seconds", "hop latency.", []float64{0.1}, Label{"peer", "a:1"})
	b := NewHistogram("hop_seconds", "hop latency.", []float64{0.1}, Label{"peer", "b:2"})
	a.ObserveDuration(time.Millisecond)
	b.ObserveDuration(time.Second)

	var sb strings.Builder
	e := NewExpo(&sb)
	a.WriteMetrics(e)
	b.WriteMetrics(e)
	out := sb.String()
	if n := strings.Count(out, "# TYPE hop_seconds histogram"); n != 1 {
		t.Errorf("TYPE header emitted %d times, want 1:\n%s", n, out)
	}
	for _, want := range []string{
		`hop_seconds_bucket{peer="a:1",le="0.1"} 1`,
		`hop_seconds_bucket{peer="b:2",le="+Inf"} 1`,
		`hop_seconds_count{peer="a:1"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	if err := Lint(strings.NewReader(out)); err != nil {
		t.Errorf("self-lint failed: %v\n%s", err, out)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram("x_seconds", "test", LatencyBuckets())
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.ObserveDuration(time.Duration(w*i) * time.Microsecond)
			}
		}(w)
	}
	wg.Wait()
	if s := h.Snapshot(); s.Count != workers*per {
		t.Errorf("count = %d, want %d", s.Count, workers*per)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram("x", "test", []float64{1, 2, 4})
	for i := 0; i < 100; i++ {
		h.Observe(1.5) // all in the (1,2] bucket
	}
	s := h.Snapshot()
	if q := s.Quantile(0.5); q < 1 || q > 2 {
		t.Errorf("p50 = %v, want within (1,2]", q)
	}
	if q := (HistogramSnapshot{}).Quantile(0.5); q != 0 {
		t.Errorf("empty quantile = %v, want 0", q)
	}
}

// TestHistogramObserveZeroAlloc is the hot-path contract: recording into a
// histogram allocates nothing.
func TestHistogramObserveZeroAlloc(t *testing.T) {
	h := NewHistogram("x_seconds", "test", LatencyBuckets())
	if n := testing.AllocsPerRun(1000, func() {
		h.ObserveDuration(37 * time.Microsecond)
		h.Observe(12)
	}); n != 0 {
		t.Errorf("observe allocates %.1f allocs/op, want 0", n)
	}
}

// BenchmarkHistogramObserve is the CI-asserted record path: one bounded
// bucket scan plus two atomic adds, 0 allocs/op.
func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram("x_seconds", "bench", LatencyBuckets())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.ObserveDuration(time.Duration(i%1000) * time.Microsecond)
	}
}
