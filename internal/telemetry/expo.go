package telemetry

import (
	"fmt"
	"io"
	"strings"
)

// Label is one key="value" pair attached to a metric series.
type Label struct {
	Key   string
	Value string
}

// Expo wraps an io.Writer with per-family HELP/TYPE deduplication. The
// Prometheus text format allows each family header at most once, but a
// metrics endpoint assembles its output from several independent collectors
// (broker, semantics, subindex, cluster) that may emit different label sets
// of the same family; routing them all through one Expo keeps the combined
// exposition valid. All Write* helpers and Histogram.WriteMetrics detect an Expo
// destination automatically.
type Expo struct {
	w    io.Writer
	seen map[string]bool
}

// NewExpo wraps w for one scrape.
func NewExpo(w io.Writer) *Expo {
	return &Expo{w: w, seen: make(map[string]bool)}
}

// Write passes through to the underlying writer, so an Expo can stand in
// anywhere an io.Writer is expected (for example a Collector interface).
func (e *Expo) Write(p []byte) (int, error) { return e.w.Write(p) }

// header writes the HELP/TYPE header of a family, at most once per Expo.
func header(w io.Writer, name, typ, help string) {
	if e, ok := w.(*Expo); ok {
		if e.seen[name] {
			return
		}
		e.seen[name] = true
	}
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// formatLabels renders a {k="v",...} label block ("" when empty). Values
// are escaped per the exposition format (backslash, quote, newline).
func formatLabels(labels []Label, extra ...Label) string {
	if len(labels)+len(extra) == 0 {
		return ""
	}
	var sb strings.Builder
	sb.WriteByte('{')
	n := 0
	write := func(l Label) {
		if n > 0 {
			sb.WriteByte(',')
		}
		n++
		sb.WriteString(l.Key)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabelValue(l.Value))
		sb.WriteByte('"')
	}
	for _, l := range labels {
		write(l)
	}
	for _, l := range extra {
		write(l)
	}
	sb.WriteByte('}')
	return sb.String()
}

func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// WriteCounter emits one cumulative counter.
func WriteCounter(w io.Writer, name, help string, value uint64) {
	header(w, name, "counter", help)
	fmt.Fprintf(w, "%s %d\n", name, value)
}

// WriteCounterFloat emits one cumulative float counter (for example total
// seconds spent waiting).
func WriteCounterFloat(w io.Writer, name, help string, value float64) {
	header(w, name, "counter", help)
	fmt.Fprintf(w, "%s %s\n", name, formatFloat(value))
}

// WriteCounterVec emits one labeled series of a counter family. Call it
// repeatedly with different label sets; the family header is emitted once
// when writing through an Expo.
func WriteCounterVec(w io.Writer, name, help string, labels []Label, value uint64) {
	header(w, name, "counter", help)
	fmt.Fprintf(w, "%s%s %d\n", name, formatLabels(labels), value)
}

// WriteCounterVecFloat emits one labeled series of a float counter family.
func WriteCounterVecFloat(w io.Writer, name, help string, labels []Label, value float64) {
	header(w, name, "counter", help)
	fmt.Fprintf(w, "%s%s %s\n", name, formatLabels(labels), formatFloat(value))
}

// WriteGauge emits one integer gauge.
func WriteGauge(w io.Writer, name, help string, value int) {
	header(w, name, "gauge", help)
	fmt.Fprintf(w, "%s %d\n", name, value)
}

// WriteGaugeFloat emits one float gauge.
func WriteGaugeFloat(w io.Writer, name, help string, value float64) {
	header(w, name, "gauge", help)
	fmt.Fprintf(w, "%s %s\n", name, formatFloat(value))
}

// WriteGaugeVec emits one labeled series of a gauge family.
func WriteGaugeVec(w io.Writer, name, help string, labels []Label, value float64) {
	header(w, name, "gauge", help)
	fmt.Fprintf(w, "%s%s %s\n", name, formatLabels(labels), formatFloat(value))
}
