package telemetry

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sync"
	"time"
)

// ProfileEntry is one captured profile in the on-disk ring.
type ProfileEntry struct {
	File   string    `json:"file"` // base name within the ring directory
	Kind   string    `json:"kind"` // cpu | heap
	Reason string    `json:"reason"`
	Start  time.Time `json:"start"`
	Bytes  int64     `json:"bytes"`
}

// Profiler captures CPU and heap pprof profiles on a cadence or on demand
// (an SLO burn trip) into a bounded on-disk ring: the newest keep captures
// survive, older profile files are deleted. The ring manifest is served as
// JSON at /debug/prof/ring; individual profiles download via ?file=.
// Captures are serialized — a trigger that lands during a capture is
// coalesced into it.
type Profiler struct {
	dir     string
	keep    int
	cpuDur  time.Duration
	trigger chan string

	mu      sync.Mutex
	running bool
	seq     uint64
	ring    []ProfileEntry // oldest first; one entry per capture kind
}

// NewProfiler builds a profiler writing into dir (created if absent),
// keeping at most keep profile files on disk and sampling cpuDur of CPU
// per capture (default 2s when <= 0).
func NewProfiler(dir string, keep int, cpuDur time.Duration) (*Profiler, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("telemetry: profiler: %w", err)
	}
	if keep <= 0 {
		keep = 16
	}
	if cpuDur <= 0 {
		cpuDur = 2 * time.Second
	}
	return &Profiler{dir: dir, keep: keep, cpuDur: cpuDur, trigger: make(chan string, 1)}, nil
}

// Run captures on the given cadence (no cadence captures when every <= 0)
// and on Trigger, until the context ends. Call in its own goroutine.
func (p *Profiler) Run(ctx context.Context, every time.Duration) {
	if p == nil {
		return
	}
	var tick <-chan time.Time
	if every > 0 {
		t := time.NewTicker(every)
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick:
			p.Capture("cadence")
		case reason := <-p.trigger:
			p.Capture(reason)
		}
	}
}

// Trigger requests an out-of-cadence capture (e.g. an SLO burn trip).
// Non-blocking: a request arriving while one is already pending or a
// capture is running is coalesced.
func (p *Profiler) Trigger(reason string) {
	if p == nil {
		return
	}
	select {
	case p.trigger <- reason:
	default:
	}
}

// Capture synchronously records one CPU profile (blocking for the CPU
// sample duration) and one heap profile, rotating the ring. Overlapping
// captures are rejected (the second returns nil immediately).
func (p *Profiler) Capture(reason string) error {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	if p.running {
		p.mu.Unlock()
		return nil
	}
	p.running = true
	p.seq++
	seq := p.seq
	p.mu.Unlock()
	defer func() {
		p.mu.Lock()
		p.running = false
		p.mu.Unlock()
	}()

	start := time.Now()
	var firstErr error
	if e, err := p.captureCPU(seq, reason, start); err != nil {
		firstErr = err
	} else {
		p.push(e)
	}
	if e, err := p.captureHeap(seq, reason, start); err != nil {
		if firstErr == nil {
			firstErr = err
		}
	} else {
		p.push(e)
	}
	return firstErr
}

func (p *Profiler) captureCPU(seq uint64, reason string, start time.Time) (ProfileEntry, error) {
	name := fmt.Sprintf("cpu-%06d.pprof", seq)
	f, err := os.Create(filepath.Join(p.dir, name))
	if err != nil {
		return ProfileEntry{}, err
	}
	defer f.Close()
	if err := pprof.StartCPUProfile(f); err != nil {
		// Another subsystem (a bench, an ad-hoc /debug capture) holds the
		// CPU profiler; skip the CPU half rather than fight over it.
		os.Remove(f.Name())
		return ProfileEntry{}, err
	}
	time.Sleep(p.cpuDur)
	pprof.StopCPUProfile()
	st, _ := f.Stat()
	var size int64
	if st != nil {
		size = st.Size()
	}
	return ProfileEntry{File: name, Kind: "cpu", Reason: reason, Start: start, Bytes: size}, nil
}

func (p *Profiler) captureHeap(seq uint64, reason string, start time.Time) (ProfileEntry, error) {
	name := fmt.Sprintf("heap-%06d.pprof", seq)
	f, err := os.Create(filepath.Join(p.dir, name))
	if err != nil {
		return ProfileEntry{}, err
	}
	defer f.Close()
	if err := pprof.Lookup("heap").WriteTo(f, 0); err != nil {
		os.Remove(f.Name())
		return ProfileEntry{}, err
	}
	st, _ := f.Stat()
	var size int64
	if st != nil {
		size = st.Size()
	}
	return ProfileEntry{File: name, Kind: "heap", Reason: reason, Start: start, Bytes: size}, nil
}

// push appends a ring entry and deletes the files that fall off the tail.
func (p *Profiler) push(e ProfileEntry) {
	p.mu.Lock()
	p.ring = append(p.ring, e)
	var evicted []string
	for len(p.ring) > p.keep {
		evicted = append(evicted, p.ring[0].File)
		p.ring = p.ring[1:]
	}
	p.mu.Unlock()
	for _, f := range evicted {
		os.Remove(filepath.Join(p.dir, f))
	}
}

// Ring returns the current manifest, oldest first.
func (p *Profiler) Ring() []ProfileEntry {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]ProfileEntry(nil), p.ring...)
}

// Handler serves the ring: GET → JSON manifest; GET ?file=<name> → the
// raw profile, only for names present in the manifest (no path traversal).
func (p *Profiler) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		if name := r.URL.Query().Get("file"); name != "" {
			for _, e := range p.Ring() {
				if e.File == name {
					w.Header().Set("Content-Type", "application/octet-stream")
					http.ServeFile(w, r, filepath.Join(p.dir, name))
					return
				}
			}
			http.Error(w, "profile not in ring", http.StatusNotFound)
			return
		}
		ring := p.Ring()
		if ring == nil {
			ring = []ProfileEntry{}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(ring)
	})
}
