package telemetry

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"time"
)

// RuntimeCollector exports Go runtime health as thematicep_runtime_*
// families: goroutine count, heap occupancy, a GC pause-latency histogram,
// and the process's open file descriptors (the federation's dominant
// kernel resource — one FD per peer link plus one per client). It does no
// background work: every scrape reads runtime counters, folds the GC
// pauses that completed since the previous scrape into the pause
// histogram, and counts /proc/self/fd entries (skipped silently on
// platforms without procfs).
type RuntimeCollector struct {
	fdDir string

	mu        sync.Mutex
	lastNumGC uint32
	gcPause   *Histogram
}

// NewRuntimeCollector builds the collector. fdDir overrides the proc fd
// directory for tests; empty means /proc/self/fd.
func NewRuntimeCollector(fdDir string) *RuntimeCollector {
	if fdDir == "" {
		fdDir = "/proc/self/fd"
	}
	return &RuntimeCollector{
		fdDir: fdDir,
		gcPause: NewHistogram("thematicep_runtime_gc_pause_seconds",
			"Stop-the-world GC pause latency.",
			// GC pauses live well under the default latency buckets'
			// multi-second tail: 10µs..~40ms in powers of four.
			[]float64{10e-6, 40e-6, 160e-6, 640e-6, 2.56e-3, 10.24e-3, 40.96e-3}),
	}
}

// WriteMetrics emits the runtime families. Safe for concurrent scrapes.
func (c *RuntimeCollector) WriteMetrics(w io.Writer) {
	if c == nil {
		return
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)

	c.mu.Lock()
	// PauseNs is a circular buffer of the last 256 pause durations,
	// indexed by GC cycle number; fold in only the cycles since the last
	// scrape so each pause is observed exactly once.
	n := ms.NumGC - c.lastNumGC
	if n > uint32(len(ms.PauseNs)) {
		n = uint32(len(ms.PauseNs))
	}
	for i := uint32(0); i < n; i++ {
		cycle := ms.NumGC - i
		c.gcPause.ObserveDuration(time.Duration(ms.PauseNs[(cycle+255)%256]))
	}
	c.lastNumGC = ms.NumGC
	c.mu.Unlock()

	header(w, "thematicep_runtime_goroutines", "gauge", "Live goroutines.")
	fmt.Fprintf(w, "thematicep_runtime_goroutines %d\n", runtime.NumGoroutine())
	header(w, "thematicep_runtime_heap_inuse_bytes", "gauge", "Bytes in in-use heap spans.")
	fmt.Fprintf(w, "thematicep_runtime_heap_inuse_bytes %d\n", ms.HeapInuse)
	header(w, "thematicep_runtime_heap_objects", "gauge", "Live heap objects.")
	fmt.Fprintf(w, "thematicep_runtime_heap_objects %d\n", ms.HeapObjects)
	header(w, "thematicep_runtime_gc_total", "counter", "Completed GC cycles.")
	fmt.Fprintf(w, "thematicep_runtime_gc_total %d\n", ms.NumGC)
	c.gcPause.WriteMetrics(w)

	if ents, err := os.ReadDir(c.fdDir); err == nil {
		header(w, "thematicep_runtime_open_fds", "gauge", "Open file descriptors.")
		fmt.Fprintf(w, "thematicep_runtime_open_fds %d\n", len(ents))
	}
}
