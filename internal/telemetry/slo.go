package telemetry

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// SLO burn-rate alert thresholds, Google-SRE style: a burn rate is the
// multiple of the error budget being consumed relative to steady-state
// (burn 1.0 exactly exhausts the budget over the budget window). Both the
// long and the short window must exceed a threshold before the status
// trips, so a brief spike that already drained from the short window
// cannot page, and a long-cold average cannot hide a fresh regression.
const (
	sloBurnWarn = 6.0  // ticket-worthy: budget gone in window/6
	sloBurnPage = 14.4 // page-worthy: 30d budget gone in ~2d pace
)

// SLOStatus is the traffic-light summary of an SLO's burn rate.
type SLOStatus string

const (
	SLOGreen  SLOStatus = "green"  // burning at or below sustainable pace
	SLOYellow SLOStatus = "yellow" // sustained burn ≥ 6× budget pace
	SLORed    SLOStatus = "red"    // sustained burn ≥ 14.4× budget pace
)

const sloSlots = 60

// SLO tracks one latency service-level objective: the fraction of events
// that must complete under a latency threshold, measured over a sliding
// window. Observations land in a ring of fixed time slots with atomic
// good/bad counters — the record path is two atomic adds and never
// allocates, so it sits on the publish hot path next to the stage
// histograms. Burn rates are computed over a short and a long window
// (window/12 and window), multi-window so alerts are both fast and
// spike-proof.
type SLO struct {
	name      string
	objective float64 // required good fraction, e.g. 0.999
	threshold time.Duration
	window    time.Duration
	clock     Clock

	slotDur  int64 // nanoseconds per ring slot
	slots    [sloSlots]sloSlot
	cur      atomic.Int64 // index of the active slot
	curStart atomic.Int64 // active slot's start, unix nanos
	rotateMu sync.Mutex
}

type sloSlot struct {
	start atomic.Int64 // unix nanos; stale slots are excluded from windows
	good  atomic.Uint64
	bad   atomic.Uint64
}

// SLOOption configures an SLO.
type SLOOption interface{ applySLO(*SLO) }

type sloClockOption struct{ c Clock }

func (o sloClockOption) applySLO(s *SLO) { s.clock = o.c }

// WithSLOClock sets the SLO's clock (default System).
func WithSLOClock(c Clock) SLOOption { return sloClockOption{c} }

type sloWindowOption time.Duration

func (o sloWindowOption) applySLO(s *SLO) { s.window = time.Duration(o) }

// WithSLOWindow sets the long burn-rate window (default 1h). The short
// window is always window/12, the slot granularity window/60.
func WithSLOWindow(d time.Duration) SLOOption { return sloWindowOption(d) }

// NewSLO builds a latency SLO: objective is the required fraction of
// events (0 < objective < 1) completing within threshold. A nil *SLO is
// valid everywhere and records nothing.
func NewSLO(name string, objective float64, threshold time.Duration, opts ...SLOOption) *SLO {
	if objective <= 0 || objective >= 1 {
		panic(fmt.Sprintf("telemetry: SLO %s objective %v outside (0,1)", name, objective))
	}
	s := &SLO{
		name:      name,
		objective: objective,
		threshold: threshold,
		window:    time.Hour,
		clock:     System,
	}
	for _, opt := range opts {
		opt.applySLO(s)
	}
	s.slotDur = int64(s.window) / sloSlots
	if s.slotDur <= 0 {
		s.slotDur = 1
	}
	now := s.clock.Now().UnixNano()
	s.curStart.Store(now)
	s.slots[0].start.Store(now)
	return s
}

// Name returns the SLO's name (its metric label).
func (s *SLO) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Objective returns the required good fraction.
func (s *SLO) Objective() float64 {
	if s == nil {
		return 0
	}
	return s.objective
}

// Threshold returns the latency bound that defines a good event.
func (s *SLO) Threshold() time.Duration {
	if s == nil {
		return 0
	}
	return s.threshold
}

// Observe records one event latency against the objective.
func (s *SLO) Observe(d time.Duration) { s.ObserveN(d, 1) }

// ObserveN records n events that all completed with latency d (the
// batched pipeline observes one amortized latency for a whole delivery
// batch). The fast path — no slot rotation due — is a clock read, three
// atomic loads, and one atomic add.
func (s *SLO) ObserveN(d time.Duration, n int) {
	if s == nil || n <= 0 {
		return
	}
	now := s.clock.Now().UnixNano()
	if now-s.curStart.Load() >= s.slotDur {
		s.rotate(now)
	}
	slot := &s.slots[s.cur.Load()]
	if d <= s.threshold {
		slot.good.Add(uint64(n))
	} else {
		slot.bad.Add(uint64(n))
	}
}

// rotate advances the ring to the slot containing now, zeroing every slot
// skipped during a quiet gap. Only the observer that wins the mutex
// rotates; the check is re-run under the lock.
func (s *SLO) rotate(now int64) {
	s.rotateMu.Lock()
	defer s.rotateMu.Unlock()
	for now-s.curStart.Load() >= s.slotDur {
		start := s.curStart.Load() + s.slotDur
		// After a long quiet gap, jump straight to the current slot
		// boundary instead of spinning through every missed slot.
		if gap := (now - start) / s.slotDur; gap >= sloSlots {
			start += (gap - sloSlots + 1) * s.slotDur
		}
		next := (s.cur.Load() + 1) % sloSlots
		s.slots[next].good.Store(0)
		s.slots[next].bad.Store(0)
		s.slots[next].start.Store(start)
		s.curStart.Store(start)
		s.cur.Store(next)
	}
}

// windowCounts sums good/bad over the slots whose start falls within the
// window ending now.
func (s *SLO) windowCounts(window time.Duration) (good, bad uint64) {
	now := s.clock.Now().UnixNano()
	if now-s.curStart.Load() >= s.slotDur {
		s.rotate(now)
	}
	cutoff := now - int64(window)
	for i := range s.slots {
		st := s.slots[i].start.Load()
		if st == 0 || st+s.slotDur <= cutoff {
			continue
		}
		good += s.slots[i].good.Load()
		bad += s.slots[i].bad.Load()
	}
	return good, bad
}

// BurnRate reports the error-budget burn multiple over the trailing
// window: observed bad fraction divided by the budget (1 - objective).
// 1.0 means the budget exactly sustains this pace; 0 means no errors or
// no traffic.
func (s *SLO) BurnRate(window time.Duration) float64 {
	if s == nil {
		return 0
	}
	good, bad := s.windowCounts(window)
	total := good + bad
	if total == 0 {
		return 0
	}
	return (float64(bad) / float64(total)) / (1 - s.objective)
}

// ShortWindow returns the short burn window (long window / 12, the
// 5m-for-1h ratio from the SRE workbook).
func (s *SLO) ShortWindow() time.Duration {
	if s == nil {
		return 0
	}
	return s.window / 12
}

// LongWindow returns the long burn window.
func (s *SLO) LongWindow() time.Duration {
	if s == nil {
		return 0
	}
	return s.window
}

// Status reduces the multi-window burn rates to a traffic light: red when
// both windows burn ≥ 14.4×, yellow when both burn ≥ 6×, green otherwise.
func (s *SLO) Status() SLOStatus {
	if s == nil {
		return SLOGreen
	}
	long := s.BurnRate(s.LongWindow())
	short := s.BurnRate(s.ShortWindow())
	switch {
	case long >= sloBurnPage && short >= sloBurnPage:
		return SLORed
	case long >= sloBurnWarn && short >= sloBurnWarn:
		return SLOYellow
	default:
		return SLOGreen
	}
}

// WriteMetrics exposes the SLO as thematicep_slo_* families: the
// configured objective and threshold, cumulative-within-window good/bad
// totals, and the short/long burn-rate gauges. All series carry an
// slo="<name>" label so several SLOs share the families through one Expo
// writer.
func (s *SLO) WriteMetrics(w io.Writer) {
	if s == nil {
		return
	}
	lbl := []Label{{"slo", s.name}}
	header(w, "thematicep_slo_objective", "gauge", "Required good-event fraction of the SLO.")
	fmt.Fprintf(w, "thematicep_slo_objective%s %s\n", formatLabels(lbl), formatFloat(s.objective))
	header(w, "thematicep_slo_threshold_seconds", "gauge", "Latency bound defining a good event.")
	fmt.Fprintf(w, "thematicep_slo_threshold_seconds%s %s\n", formatLabels(lbl), formatFloat(s.threshold.Seconds()))

	good, bad := s.windowCounts(s.window)
	header(w, "thematicep_slo_window_good", "gauge", "Good events observed in the trailing long window.")
	fmt.Fprintf(w, "thematicep_slo_window_good%s %d\n", formatLabels(lbl), good)
	header(w, "thematicep_slo_window_bad", "gauge", "Bad (over-threshold) events observed in the trailing long window.")
	fmt.Fprintf(w, "thematicep_slo_window_bad%s %d\n", formatLabels(lbl), bad)

	header(w, "thematicep_slo_burn_rate", "gauge", "Error-budget burn multiple over the trailing window (1.0 = sustainable pace).")
	for _, win := range []struct {
		label string
		d     time.Duration
	}{{"short", s.ShortWindow()}, {"long", s.LongWindow()}} {
		fmt.Fprintf(w, "thematicep_slo_burn_rate%s %s\n",
			formatLabels(lbl, Label{"window", win.label}), formatFloat(s.BurnRate(win.d)))
	}

	header(w, "thematicep_slo_status", "gauge", "Traffic-light SLO status: 0 green, 1 yellow, 2 red.")
	var code int
	switch s.Status() {
	case SLOYellow:
		code = 1
	case SLORed:
		code = 2
	}
	fmt.Fprintf(w, "thematicep_slo_status%s %d\n", formatLabels(lbl), code)
}
