package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync/atomic"
	"time"
)

// Histogram is a fixed-bucket, allocation-free, atomic histogram in the
// Prometheus cumulative style: Observe finds the first bucket whose upper
// bound contains the value and performs one atomic add on that bucket plus
// one on the sum accumulator. Bounds are fixed at construction (precomputed
// in both float and integer-nanosecond form), so the record path never
// allocates and never locks; concurrent Observe and WriteMetrics are safe, with
// scrapes seeing a consistent-enough snapshot (cumulative bucket counts are
// recomputed at write time, so they are always monotone and le="+Inf"
// always equals _count).
type Histogram struct {
	name   string
	help   string
	labels []Label

	bounds   []float64 // ascending upper bounds; +Inf implicit
	boundsNs []int64   // bounds in nanoseconds for ObserveDuration

	counts []atomic.Uint64 // len(bounds)+1; last is the +Inf bucket
	sumMic atomic.Int64    // fixed-point sum, micro-units (1e-6)
}

// NewHistogram builds a histogram with the given ascending bucket upper
// bounds (the +Inf bucket is implicit). For latency histograms the bounds
// are in seconds. Optional labels are attached to every exported series.
func NewHistogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if len(bounds) == 0 {
		bounds = LatencyBuckets()
	}
	if !sort.Float64sAreSorted(bounds) {
		panic("telemetry: histogram bounds must be ascending: " + name)
	}
	h := &Histogram{
		name:     name,
		help:     help,
		labels:   labels,
		bounds:   append([]float64(nil), bounds...),
		boundsNs: make([]int64, len(bounds)),
		counts:   make([]atomic.Uint64, len(bounds)+1),
	}
	for i, b := range bounds {
		ns := b * float64(time.Second)
		if ns > math.MaxInt64 {
			ns = math.MaxInt64
		}
		h.boundsNs[i] = int64(ns)
	}
	return h
}

// LatencyBuckets is the default latency bucket scheme: exponential powers
// of four from 1µs to ~4.3s (12 buckets + Inf). The spread covers a cached
// relatedness lookup (hundreds of ns round up into the first bucket) to a
// cold-space projection storm, with ~two buckets per decade.
func LatencyBuckets() []float64 {
	out := make([]float64, 12)
	b := 1e-6
	for i := range out {
		out[i] = b
		b *= 4
	}
	return out
}

// SizeBuckets is the default bucket scheme for count-valued distributions
// (candidate-set sizes, queue depths): 0 and powers of two to 4096.
func SizeBuckets() []float64 {
	out := []float64{0}
	for b := 1.0; b <= 4096; b *= 2 {
		out = append(out, b)
	}
	return out
}

// Name returns the metric family name.
func (h *Histogram) Name() string { return h.name }

// Observe records one value (same unit as the bucket bounds).
func (h *Histogram) Observe(v float64) {
	i := 0
	for ; i < len(h.bounds) && v > h.bounds[i]; i++ {
	}
	h.counts[i].Add(1)
	h.sumMic.Add(int64(v * 1e6))
}

// ObserveDuration records one latency. The bucket search compares integer
// nanoseconds against precomputed bounds, keeping the hot path free of
// float conversions.
func (h *Histogram) ObserveDuration(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	i := 0
	for ; i < len(h.boundsNs) && ns > h.boundsNs[i]; i++ {
	}
	h.counts[i].Add(1)
	h.sumMic.Add(ns / 1e3)
}

// HistogramSnapshot is a point-in-time copy of a histogram's state.
type HistogramSnapshot struct {
	Bounds []float64 // upper bounds, +Inf implicit
	Counts []uint64  // per-bucket (non-cumulative) counts, +Inf last
	Count  uint64    // total observations
	Sum    float64   // sum of observed values
}

// Snapshot copies the histogram counters.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.counts)),
	}
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	s.Sum = float64(h.sumMic.Load()) / 1e6
	return s
}

// Quantile estimates the q-quantile (0..1) from the bucket counts by
// assuming a uniform distribution within the containing bucket. The +Inf
// bucket reports its lower bound. Zero observations report 0.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	rank := q * float64(s.Count)
	cum := 0.0
	for i, c := range s.Counts {
		prev := cum
		cum += float64(c)
		if cum < rank || c == 0 {
			continue
		}
		lo := 0.0
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		if i >= len(s.Bounds) { // +Inf bucket
			return lo
		}
		return lo + (s.Bounds[i]-lo)*(rank-prev)/float64(c)
	}
	return s.Bounds[len(s.Bounds)-1]
}

// WriteMetrics emits the histogram in the Prometheus text exposition format:
// cumulative _bucket series with le labels, then _sum and _count. The
// HELP/TYPE header is deduplicated through an Expo writer, so several
// histograms sharing one family name (distinguished by labels) emit a
// single header.
func (h *Histogram) WriteMetrics(w io.Writer) {
	header(w, h.name, "histogram", h.help)
	cum := uint64(0)
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket%s %d\n", h.name,
			formatLabels(h.labels, Label{"le", formatFloat(b)}), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket%s %d\n", h.name, formatLabels(h.labels, Label{"le", "+Inf"}), cum)
	fmt.Fprintf(w, "%s_sum%s %s\n", h.name, formatLabels(h.labels),
		formatFloat(float64(h.sumMic.Load())/1e6))
	fmt.Fprintf(w, "%s_count%s %d\n", h.name, formatLabels(h.labels), cum)
}

// formatFloat renders a float the way Prometheus expects (shortest
// round-trip representation).
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
