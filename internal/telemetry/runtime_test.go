package telemetry

import (
	"bytes"
	"runtime"
	"strings"
	"testing"
)

func TestRuntimeCollector(t *testing.T) {
	c := NewRuntimeCollector(t.TempDir()) // any readable dir stands in for /proc/self/fd
	runtime.GC()                          // guarantee at least one pause to fold in
	var buf bytes.Buffer
	c.WriteMetrics(NewExpo(&buf))
	if err := Lint(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("runtime exposition fails lint: %v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{
		"thematicep_runtime_goroutines ",
		"thematicep_runtime_heap_inuse_bytes ",
		"thematicep_runtime_gc_total ",
		"thematicep_runtime_gc_pause_seconds_count ",
		"thematicep_runtime_open_fds 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}

	// GC pauses fold in exactly once per cycle: with no new GC between
	// scrapes, the pause count must not grow.
	var a bytes.Buffer
	c.WriteMetrics(NewExpo(&a))
	countOf := func(body string) string {
		for _, line := range strings.Split(body, "\n") {
			if strings.HasPrefix(line, "thematicep_runtime_gc_pause_seconds_count") {
				return line
			}
		}
		return ""
	}
	runtime.GC()
	var b bytes.Buffer
	c.WriteMetrics(NewExpo(&b))
	if countOf(a.String()) == "" || countOf(a.String()) == countOf(b.String()) {
		t.Errorf("pause count did not advance across a GC: %q vs %q",
			countOf(a.String()), countOf(b.String()))
	}

	// A missing fd dir drops the gauge instead of failing the scrape.
	c2 := NewRuntimeCollector("/nonexistent/fd/dir")
	var buf2 bytes.Buffer
	c2.WriteMetrics(NewExpo(&buf2))
	if strings.Contains(buf2.String(), "open_fds") {
		t.Error("open_fds emitted despite unreadable fd dir")
	}
	if err := Lint(bytes.NewReader(buf2.Bytes())); err != nil {
		t.Fatalf("lint without fd gauge: %v", err)
	}

	var nilC *RuntimeCollector
	var buf3 bytes.Buffer
	nilC.WriteMetrics(&buf3)
	if buf3.Len() != 0 {
		t.Error("nil collector wrote metrics")
	}
}
