package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// MergeSnapshots folds histogram snapshots from several shards of one
// logical distribution into the distribution itself: bucket-wise count
// sums plus summed totals. Because fixed-bucket histograms are a
// commutative monoid under this merge (associativity and commutativity
// are tested), scraping N nodes and merging is exactly equivalent to one
// node having observed the union stream — quantiles computed on the merge
// equal single-node quantiles bit-for-bit. All snapshots must share the
// same bucket bounds.
func MergeSnapshots(snaps ...HistogramSnapshot) (HistogramSnapshot, error) {
	var out HistogramSnapshot
	for _, s := range snaps {
		if out.Counts == nil {
			out = HistogramSnapshot{
				Bounds: append([]float64(nil), s.Bounds...),
				Counts: append([]uint64(nil), s.Counts...),
				Count:  s.Count,
				Sum:    s.Sum,
			}
			continue
		}
		if len(s.Bounds) != len(out.Bounds) {
			return out, fmt.Errorf("telemetry: merge: bucket count mismatch (%d vs %d)", len(s.Bounds), len(out.Bounds))
		}
		for i, b := range s.Bounds {
			if b != out.Bounds[i] {
				return out, fmt.Errorf("telemetry: merge: bucket bound mismatch at %d (%g vs %g)", i, b, out.Bounds[i])
			}
		}
		for i, c := range s.Counts {
			out.Counts[i] += c
		}
		out.Count += s.Count
		out.Sum += s.Sum
	}
	return out, nil
}

// seriesKey canonicalizes a sample identity (series name + sorted labels)
// so the same series scraped from different nodes merges into one.
func seriesKey(name string, labels map[string]string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	sb.WriteString(name)
	for _, k := range keys {
		sb.WriteByte('{')
		sb.WriteString(k)
		sb.WriteByte('=')
		sb.WriteString(labels[k])
		sb.WriteByte('}')
	}
	return sb.String()
}

// MergeFamilies merges parsed expositions scraped from several nodes into
// one cluster-wide exposition: samples with the same series identity
// (name + label set) are summed, family order and first-seen metadata are
// preserved, and a family typed differently on different nodes is an
// error. Summation is the cluster semantics for every family this repo
// exports — counters and histogram series accumulate, and the exported
// gauges are occupancy numbers (subscriptions, goroutines, heap bytes)
// whose cluster meaning is the total. Non-additive gauges (configuration
// echoes such as an SLO objective) are identical on every node, so
// consumers read them from any single scrape rather than the merge.
func MergeFamilies(sets ...[]*Family) ([]*Family, error) {
	byName := make(map[string]*Family)
	sampleIdx := make(map[string]map[string]int) // family -> seriesKey -> index
	var order []*Family
	for _, set := range sets {
		for _, f := range set {
			m, ok := byName[f.Name]
			if !ok {
				m = &Family{Name: f.Name, Type: f.Type, Help: f.Help}
				byName[f.Name] = m
				sampleIdx[f.Name] = make(map[string]int)
				order = append(order, m)
			} else {
				if m.Type == "untyped" {
					m.Type = f.Type
				} else if f.Type != "untyped" && f.Type != m.Type {
					return nil, fmt.Errorf("telemetry: merge: family %s typed %s and %s across nodes", f.Name, m.Type, f.Type)
				}
				if m.Help == "" {
					m.Help = f.Help
				}
			}
			idx := sampleIdx[f.Name]
			for _, s := range f.Samples {
				k := seriesKey(s.Name, s.Labels)
				if i, ok := idx[k]; ok {
					m.Samples[i].Value += s.Value
				} else {
					idx[k] = len(m.Samples)
					labels := make(map[string]string, len(s.Labels))
					for lk, lv := range s.Labels {
						labels[lk] = lv
					}
					m.Samples = append(m.Samples, Sample{Name: s.Name, Labels: labels, Value: s.Value})
				}
			}
		}
	}
	return order, nil
}

// FamilySnapshot reconstructs a HistogramSnapshot from a parsed histogram
// family, aggregating every label set into one distribution (the
// exposition's cumulative buckets are de-cumulated back into per-bucket
// counts). It returns false when the family carries no histogram series.
func FamilySnapshot(f *Family) (HistogramSnapshot, bool) {
	type bucket struct {
		le  float64
		cum float64
	}
	sums := map[float64]float64{}
	var sum, count float64
	for _, s := range f.Samples {
		switch {
		case strings.HasSuffix(s.Name, "_bucket"):
			le, err := parseValue(s.Labels["le"])
			if err != nil {
				continue
			}
			sums[le] += s.Value
		case strings.HasSuffix(s.Name, "_sum"):
			sum += s.Value
		case strings.HasSuffix(s.Name, "_count"):
			count += s.Value
		}
	}
	if len(sums) == 0 {
		return HistogramSnapshot{}, false
	}
	buckets := make([]bucket, 0, len(sums))
	for le, cum := range sums {
		buckets = append(buckets, bucket{le, cum})
	}
	sort.Slice(buckets, func(i, j int) bool { return buckets[i].le < buckets[j].le })
	snap := HistogramSnapshot{Sum: sum, Count: uint64(count)}
	prev := 0.0
	for _, b := range buckets {
		c := b.cum - prev
		if c < 0 {
			c = 0
		}
		prev = b.cum
		if !math.IsInf(b.le, 1) {
			snap.Bounds = append(snap.Bounds, b.le)
		}
		snap.Counts = append(snap.Counts, uint64(c))
	}
	return snap, true
}
