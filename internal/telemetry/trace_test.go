package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestTracerSampling(t *testing.T) {
	tr := NewTracer(4)
	sampled := 0
	for i := 0; i < 16; i++ {
		if a := tr.Start(fmt.Sprintf("ev-%d", i)); a != nil {
			sampled++
			a.Finish()
		}
	}
	if sampled != 4 {
		t.Errorf("sampled %d of 16 with every=4, want 4", sampled)
	}
	if got := len(tr.Recent()); got != 4 {
		t.Errorf("ring holds %d traces, want 4", got)
	}
}

func TestTracerNilSafe(t *testing.T) {
	var tr *Tracer // disabled tracer
	a := tr.Start("ev")
	if a != nil {
		t.Fatal("nil tracer sampled an event")
	}
	a.AddSpan("score", time.Now()) // must not panic
	a.AddSpanDuration("deliver", time.Now(), time.Millisecond)
	a.Finish()
	if tr.AppendSpan("ev", "forward", time.Now(), time.Millisecond) {
		t.Error("nil tracer accepted a late span")
	}
	if tr.Recent() != nil {
		t.Error("nil tracer returned traces")
	}
	rec := httptest.NewRecorder()
	tr.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	if strings.TrimSpace(rec.Body.String()) != "[]" {
		t.Errorf("nil tracer handler body = %q, want []", rec.Body.String())
	}
}

func TestTracerSpansDeterministic(t *testing.T) {
	clk := NewManual(time.Unix(1000, 0))
	tr := NewTracer(1, WithClock(clk))
	a := tr.Start("ev-1")
	if a == nil {
		t.Fatal("every=1 tracer did not sample")
	}
	s0 := clk.Now()
	clk.Advance(2 * time.Millisecond)
	a.AddSpan("compile", s0)
	s1 := clk.Now()
	clk.Advance(3 * time.Millisecond)
	a.AddSpan("score", s1)
	a.Finish()

	got := tr.Recent()
	if len(got) != 1 {
		t.Fatalf("got %d traces, want 1", len(got))
	}
	trc := got[0]
	if trc.EventID != "ev-1" || trc.Total != 5*time.Millisecond {
		t.Errorf("trace = %+v, want ev-1 total 5ms", trc)
	}
	if len(trc.Spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(trc.Spans))
	}
	if trc.Spans[0].Stage != "compile" || trc.Spans[0].Duration != 2*time.Millisecond || trc.Spans[0].Offset != 0 {
		t.Errorf("compile span = %+v", trc.Spans[0])
	}
	if trc.Spans[1].Stage != "score" || trc.Spans[1].Duration != 3*time.Millisecond || trc.Spans[1].Offset != 2*time.Millisecond {
		t.Errorf("score span = %+v", trc.Spans[1])
	}
}

func TestTracerRingBound(t *testing.T) {
	tr := NewTracer(1, WithRingSize(4))
	for i := 0; i < 10; i++ {
		a := tr.Start(fmt.Sprintf("ev-%d", i))
		a.Finish()
	}
	got := tr.Recent()
	if len(got) != 4 {
		t.Fatalf("ring holds %d traces, want 4", len(got))
	}
	// Newest first: ev-9, ev-8, ev-7, ev-6.
	for i, want := range []string{"ev-9", "ev-8", "ev-7", "ev-6"} {
		if got[i].EventID != want {
			t.Errorf("recent[%d] = %s, want %s", i, got[i].EventID, want)
		}
	}
}

func TestTracerAppendSpan(t *testing.T) {
	clk := NewManual(time.Unix(1000, 0))
	tr := NewTracer(1, WithClock(clk))
	a := tr.Start("ev-x")
	clk.Advance(time.Millisecond)
	a.Finish()

	// A cluster forward hop lands after the publish trace finished.
	hopStart := clk.Now()
	if !tr.AppendSpan("ev-x", "forward:peer-1", hopStart, 4*time.Millisecond) {
		t.Fatal("AppendSpan did not find the trace")
	}
	if tr.AppendSpan("ev-missing", "forward:peer-1", hopStart, time.Millisecond) {
		t.Error("AppendSpan matched a nonexistent event")
	}
	got := tr.Recent()[0]
	last := got.Spans[len(got.Spans)-1]
	if last.Stage != "forward:peer-1" || last.Duration != 4*time.Millisecond {
		t.Errorf("late span = %+v", last)
	}
	if got.Total != 5*time.Millisecond { // 1ms publish + 4ms hop from offset 1ms
		t.Errorf("total = %v, want 5ms (extended by the late span)", got.Total)
	}
}

func TestTracerHandlerJSON(t *testing.T) {
	tr := NewTracer(1)
	a := tr.Start("ev-json")
	a.AddSpanDuration("score", a.tr.Start, 2*time.Millisecond)
	a.Finish()

	rec := httptest.NewRecorder()
	tr.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type = %q", ct)
	}
	var traces []Trace
	if err := json.Unmarshal(rec.Body.Bytes(), &traces); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, rec.Body.String())
	}
	if len(traces) != 1 || traces[0].EventID != "ev-json" || len(traces[0].Spans) != 1 {
		t.Errorf("traces = %+v", traces)
	}

	rec = httptest.NewRecorder()
	tr.Handler().ServeHTTP(rec, httptest.NewRequest("POST", "/debug/traces", nil))
	if rec.Code != 405 {
		t.Errorf("POST status = %d, want 405", rec.Code)
	}
}

func TestTracerSlogSink(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&buf, nil))
	tr := NewTracer(1, WithLogger(logger, 2))
	for i := 0; i < 4; i++ {
		a := tr.Start(fmt.Sprintf("ev-%d", i))
		a.AddSpanDuration("score", a.tr.Start, time.Millisecond)
		a.Finish()
	}
	out := buf.String()
	if n := strings.Count(out, "pipeline trace"); n != 2 {
		t.Errorf("logged %d traces with logEvery=2, want 2:\n%s", n, out)
	}
	if !strings.Contains(out, "event_id=ev-0") || !strings.Contains(out, "score=") {
		t.Errorf("log line missing event_id/span attrs:\n%s", out)
	}
}

// Regression: a late span for an evicted trace must be dropped, never
// attached to a newer trace that reuses the same event ID, and eviction
// must remove the whole trace atomically (ring entry + every index key).
func TestTracerEvictionAtomic(t *testing.T) {
	clk := NewManual(time.Unix(1000, 0))
	tr := NewTracer(1, WithClock(clk), WithRingSize(2))

	a := tr.Start("ev-old")
	clk.Advance(time.Millisecond)
	a.Finish()
	hop := clk.Now()

	// Overflow the ring so ev-old is evicted.
	for i := 0; i < 3; i++ {
		tr.Start(fmt.Sprintf("fill-%d", i)).Finish()
	}
	if tr.AppendSpan("ev-old", "forward:late", hop, time.Millisecond) {
		t.Fatal("late span attached to an evicted trace")
	}
	for _, got := range tr.Recent() {
		for _, s := range got.Spans {
			if s.Stage == "forward:late" {
				t.Fatalf("evicted trace's late span leaked into %q", got.EventID)
			}
		}
	}

	// A batch trace spanning several event IDs is evicted wholesale: no
	// member ID remains attachable.
	b := tr.StartBatchAt([]string{"b-1", "b-2", "b-3"}, clk.Now())
	b.Finish()
	for i := 0; i < 2; i++ {
		tr.Start(fmt.Sprintf("fill2-%d", i)).Finish()
	}
	for _, id := range []string{"b-1", "b-2", "b-3"} {
		if tr.AppendSpan(id, "forward:late", clk.Now(), time.Millisecond) {
			t.Fatalf("member %s of an evicted batch trace still attachable", id)
		}
	}

	// A newer trace reusing an evicted event ID owns the index entry; the
	// older trace (if still ringed) must not receive its spans.
	tr2 := NewTracer(1, WithRingSize(4))
	tr2.Start("dup").Finish()
	tr2.Start("dup").Finish()
	if !tr2.AppendSpan("dup", "hop", time.Now(), time.Millisecond) {
		t.Fatal("live trace rejected a late span")
	}
	recent := tr2.Recent()
	if len(recent[0].Spans) != 1 || len(recent[1].Spans) != 0 {
		t.Fatalf("late span went to the wrong dup trace: newest=%d oldest=%d spans",
			len(recent[0].Spans), len(recent[1].Spans))
	}
}

func TestTracerAdoptContinuesTrace(t *testing.T) {
	// every=1<<30: nothing samples organically, only adoption forces it.
	tr := NewTracer(1<<30, WithNode("node-b"))
	tr.Start("warm").Finish() // consume the first-event sample
	if tr.Start("organic") != nil {
		t.Fatal("tracer sampled organically with a huge interval")
	}
	tr.Adopt("ev-f", &TraceContext{TraceID: "node-a.1.2", Parent: "node-a", Sampled: true})
	a := tr.Start("ev-f")
	if a == nil {
		t.Fatal("adopted event was not sampled")
	}
	a.Finish()
	got := tr.Recent()[0]
	if got.TraceID != "node-a.1.2" || got.Parent != "node-a" || got.Node != "node-b" {
		t.Errorf("adopted trace = %+v, want trace node-a.1.2 parent node-a node node-b", got)
	}
	// Adoption is one-shot.
	if tr.Start("ev-f") != nil {
		t.Error("adoption was not consumed")
	}
	// Unsampled contexts are ignored.
	tr.Adopt("ev-g", &TraceContext{TraceID: "x", Sampled: false})
	if tr.Start("ev-g") != nil {
		t.Error("unsampled context forced sampling")
	}
}

func TestTracerContextFor(t *testing.T) {
	tr := NewTracer(1, WithNode("node-a"))
	a := tr.Start("ev-1")
	a.Finish()
	tc, ok := tr.ContextFor("ev-1")
	if !ok || !tc.Sampled || tc.Parent != "node-a" || tc.TraceID == "" {
		t.Fatalf("ContextFor = %+v %v", tc, ok)
	}
	if tc.TraceID != tr.Recent()[0].TraceID {
		t.Error("context trace ID does not match the recorded trace")
	}
	if _, ok := tr.ContextFor("ev-missing"); ok {
		t.Error("ContextFor matched a nonexistent event")
	}
	// An in-flight ActiveTrace exposes the same context before Finish.
	b := tr.Start("ev-2")
	if c := b.Context(); !c.Sampled || c.Parent != "node-a" || c.TraceID == "" {
		t.Errorf("ActiveTrace.Context = %+v", c)
	}
	b.Finish()
	var nilActive *ActiveTrace
	if c := nilActive.Context(); c.Sampled {
		t.Error("nil ActiveTrace context is sampled")
	}
}

func TestTracerBatchTrace(t *testing.T) {
	clk := NewManual(time.Unix(1000, 0))
	tr := NewTracer(1, WithClock(clk), WithNode("n1"))
	ids := []string{"e1", "e2", "e3"}
	a := tr.StartBatchAt(ids, clk.Now())
	if a == nil {
		t.Fatal("batch not sampled with every=1")
	}
	s := clk.Now()
	clk.Advance(2 * time.Millisecond)
	a.AddSpan("score", s)
	a.Finish()

	got := tr.Recent()[0]
	if got.EventID != "e1" || len(got.Events) != 3 {
		t.Fatalf("batch trace = %+v", got)
	}
	// Every member resolves to the same trace for late spans and context.
	for _, id := range ids {
		if !tr.AppendSpan(id, "forward:"+id, clk.Now(), time.Millisecond) {
			t.Errorf("member %s not attachable", id)
		}
		if _, ok := tr.ContextFor(id); !ok {
			t.Errorf("member %s has no context", id)
		}
	}
	if got := tr.Recent()[0]; len(got.Spans) != 4 {
		t.Errorf("batch has %d spans, want 4", len(got.Spans))
	}

	// Batch adoption keys on the first member.
	tr2 := NewTracer(1<<30, WithNode("n2"))
	tr2.StartBatchAt([]string{"warm"}, clk.Now()).Finish()
	tr2.Adopt("e1", &TraceContext{TraceID: "n1.1.1", Parent: "n1", Sampled: true})
	b := tr2.StartBatchAt(ids, clk.Now())
	if b == nil {
		t.Fatal("adopted batch not sampled")
	}
	b.Finish()
	if got := tr2.Recent()[0]; got.TraceID != "n1.1.1" || got.Parent != "n1" {
		t.Errorf("adopted batch trace = %+v", got)
	}
	if tr.StartBatchAt(nil, clk.Now()) != nil {
		t.Error("empty batch produced a trace")
	}
}

func TestTracerAdoptBounded(t *testing.T) {
	tr := NewTracer(1 << 30)
	for i := 0; i < adoptLimit+10; i++ {
		tr.Adopt(fmt.Sprintf("ev-%d", i), &TraceContext{TraceID: "t", Sampled: true})
	}
	tr.mu.Lock()
	n := len(tr.adopted)
	tr.mu.Unlock()
	if n > adoptLimit {
		t.Errorf("adoption map grew to %d, limit %d", n, adoptLimit)
	}
}

func TestManualClock(t *testing.T) {
	clk := NewManual(time.Unix(42, 0))
	t0 := clk.Now()
	clk.Advance(time.Second)
	if d := clk.Now().Sub(t0); d != time.Second {
		t.Errorf("advance moved clock by %v, want 1s", d)
	}
}
