package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestTracerSampling(t *testing.T) {
	tr := NewTracer(4)
	sampled := 0
	for i := 0; i < 16; i++ {
		if a := tr.Start(fmt.Sprintf("ev-%d", i)); a != nil {
			sampled++
			a.Finish()
		}
	}
	if sampled != 4 {
		t.Errorf("sampled %d of 16 with every=4, want 4", sampled)
	}
	if got := len(tr.Recent()); got != 4 {
		t.Errorf("ring holds %d traces, want 4", got)
	}
}

func TestTracerNilSafe(t *testing.T) {
	var tr *Tracer // disabled tracer
	a := tr.Start("ev")
	if a != nil {
		t.Fatal("nil tracer sampled an event")
	}
	a.AddSpan("score", time.Now()) // must not panic
	a.AddSpanDuration("deliver", time.Now(), time.Millisecond)
	a.Finish()
	if tr.AppendSpan("ev", "forward", time.Now(), time.Millisecond) {
		t.Error("nil tracer accepted a late span")
	}
	if tr.Recent() != nil {
		t.Error("nil tracer returned traces")
	}
	rec := httptest.NewRecorder()
	tr.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	if strings.TrimSpace(rec.Body.String()) != "[]" {
		t.Errorf("nil tracer handler body = %q, want []", rec.Body.String())
	}
}

func TestTracerSpansDeterministic(t *testing.T) {
	clk := NewManual(time.Unix(1000, 0))
	tr := NewTracer(1, WithClock(clk))
	a := tr.Start("ev-1")
	if a == nil {
		t.Fatal("every=1 tracer did not sample")
	}
	s0 := clk.Now()
	clk.Advance(2 * time.Millisecond)
	a.AddSpan("compile", s0)
	s1 := clk.Now()
	clk.Advance(3 * time.Millisecond)
	a.AddSpan("score", s1)
	a.Finish()

	got := tr.Recent()
	if len(got) != 1 {
		t.Fatalf("got %d traces, want 1", len(got))
	}
	trc := got[0]
	if trc.EventID != "ev-1" || trc.Total != 5*time.Millisecond {
		t.Errorf("trace = %+v, want ev-1 total 5ms", trc)
	}
	if len(trc.Spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(trc.Spans))
	}
	if trc.Spans[0].Stage != "compile" || trc.Spans[0].Duration != 2*time.Millisecond || trc.Spans[0].Offset != 0 {
		t.Errorf("compile span = %+v", trc.Spans[0])
	}
	if trc.Spans[1].Stage != "score" || trc.Spans[1].Duration != 3*time.Millisecond || trc.Spans[1].Offset != 2*time.Millisecond {
		t.Errorf("score span = %+v", trc.Spans[1])
	}
}

func TestTracerRingBound(t *testing.T) {
	tr := NewTracer(1, WithRingSize(4))
	for i := 0; i < 10; i++ {
		a := tr.Start(fmt.Sprintf("ev-%d", i))
		a.Finish()
	}
	got := tr.Recent()
	if len(got) != 4 {
		t.Fatalf("ring holds %d traces, want 4", len(got))
	}
	// Newest first: ev-9, ev-8, ev-7, ev-6.
	for i, want := range []string{"ev-9", "ev-8", "ev-7", "ev-6"} {
		if got[i].EventID != want {
			t.Errorf("recent[%d] = %s, want %s", i, got[i].EventID, want)
		}
	}
}

func TestTracerAppendSpan(t *testing.T) {
	clk := NewManual(time.Unix(1000, 0))
	tr := NewTracer(1, WithClock(clk))
	a := tr.Start("ev-x")
	clk.Advance(time.Millisecond)
	a.Finish()

	// A cluster forward hop lands after the publish trace finished.
	hopStart := clk.Now()
	if !tr.AppendSpan("ev-x", "forward:peer-1", hopStart, 4*time.Millisecond) {
		t.Fatal("AppendSpan did not find the trace")
	}
	if tr.AppendSpan("ev-missing", "forward:peer-1", hopStart, time.Millisecond) {
		t.Error("AppendSpan matched a nonexistent event")
	}
	got := tr.Recent()[0]
	last := got.Spans[len(got.Spans)-1]
	if last.Stage != "forward:peer-1" || last.Duration != 4*time.Millisecond {
		t.Errorf("late span = %+v", last)
	}
	if got.Total != 5*time.Millisecond { // 1ms publish + 4ms hop from offset 1ms
		t.Errorf("total = %v, want 5ms (extended by the late span)", got.Total)
	}
}

func TestTracerHandlerJSON(t *testing.T) {
	tr := NewTracer(1)
	a := tr.Start("ev-json")
	a.AddSpanDuration("score", a.tr.Start, 2*time.Millisecond)
	a.Finish()

	rec := httptest.NewRecorder()
	tr.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type = %q", ct)
	}
	var traces []Trace
	if err := json.Unmarshal(rec.Body.Bytes(), &traces); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, rec.Body.String())
	}
	if len(traces) != 1 || traces[0].EventID != "ev-json" || len(traces[0].Spans) != 1 {
		t.Errorf("traces = %+v", traces)
	}

	rec = httptest.NewRecorder()
	tr.Handler().ServeHTTP(rec, httptest.NewRequest("POST", "/debug/traces", nil))
	if rec.Code != 405 {
		t.Errorf("POST status = %d, want 405", rec.Code)
	}
}

func TestTracerSlogSink(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&buf, nil))
	tr := NewTracer(1, WithLogger(logger, 2))
	for i := 0; i < 4; i++ {
		a := tr.Start(fmt.Sprintf("ev-%d", i))
		a.AddSpanDuration("score", a.tr.Start, time.Millisecond)
		a.Finish()
	}
	out := buf.String()
	if n := strings.Count(out, "pipeline trace"); n != 2 {
		t.Errorf("logged %d traces with logEvery=2, want 2:\n%s", n, out)
	}
	if !strings.Contains(out, "event_id=ev-0") || !strings.Contains(out, "score=") {
		t.Errorf("log line missing event_id/span attrs:\n%s", out)
	}
}

func TestManualClock(t *testing.T) {
	clk := NewManual(time.Unix(42, 0))
	t0 := clk.Now()
	clk.Advance(time.Second)
	if d := clk.Now().Sub(t0); d != time.Second {
		t.Errorf("advance moved clock by %v, want 1s", d)
	}
}
