package telemetry

import (
	"bytes"
	"testing"
	"time"
)

func newTestSLO(clk Clock) *SLO {
	// 1h window → 1m slots, 5m short window; objective 99% under 10ms.
	return NewSLO("delivery", 0.99, 10*time.Millisecond,
		WithSLOClock(clk), WithSLOWindow(time.Hour))
}

func TestSLOGreenUnderObjective(t *testing.T) {
	clk := NewManual(time.Unix(10000, 0))
	s := newTestSLO(clk)
	for i := 0; i < 1000; i++ {
		s.Observe(time.Millisecond)
		clk.Advance(time.Second)
	}
	if got := s.Status(); got != SLOGreen {
		t.Errorf("all-good stream status = %s, want green", got)
	}
	if br := s.BurnRate(s.LongWindow()); br != 0 {
		t.Errorf("burn rate = %g, want 0", br)
	}
}

func TestSLOBurnEscalates(t *testing.T) {
	clk := NewManual(time.Unix(10000, 0))
	s := newTestSLO(clk)
	// 100% bad → burn = 1/0.01 = 100× on both windows → red.
	for i := 0; i < 600; i++ {
		s.Observe(time.Second)
		clk.Advance(time.Second)
	}
	if br := s.BurnRate(s.ShortWindow()); br < 99 || br > 101 {
		t.Errorf("short burn = %g, want ~100", br)
	}
	if got := s.Status(); got != SLORed {
		t.Errorf("saturated-bad status = %s, want red", got)
	}

	// ~8% bad → burn 8×: warn but not page.
	clk2 := NewManual(time.Unix(10000, 0))
	s2 := newTestSLO(clk2)
	for i := 0; i < 1200; i++ {
		if i%12 == 0 {
			s2.Observe(time.Second)
		} else {
			s2.Observe(time.Millisecond)
		}
		clk2.Advance(time.Second / 2)
	}
	if got := s2.Status(); got != SLOYellow {
		t.Errorf("8%%-bad status = %s (long burn %g short %g), want yellow",
			got, s2.BurnRate(s2.LongWindow()), s2.BurnRate(s2.ShortWindow()))
	}
}

func TestSLOShortWindowRecovers(t *testing.T) {
	clk := NewManual(time.Unix(10000, 0))
	s := newTestSLO(clk)
	// A burst of bad, then a long good stretch: the short window drains,
	// so the status must drop out of red even while the long window still
	// remembers the burst.
	for i := 0; i < 300; i++ {
		s.Observe(time.Second)
		clk.Advance(time.Second)
	}
	for i := 0; i < 900; i++ {
		s.Observe(time.Millisecond)
		clk.Advance(time.Second)
	}
	if short := s.BurnRate(s.ShortWindow()); short != 0 {
		t.Errorf("short burn after recovery = %g, want 0", short)
	}
	if long := s.BurnRate(s.LongWindow()); long == 0 {
		t.Error("long burn forgot the burst inside its window")
	}
	if got := s.Status(); got != SLOGreen {
		t.Errorf("recovered status = %s, want green", got)
	}
}

func TestSLOWindowExpiry(t *testing.T) {
	clk := NewManual(time.Unix(10000, 0))
	s := newTestSLO(clk)
	s.ObserveN(time.Second, 50)
	// Jump past the whole window: everything expires.
	clk.Advance(2 * time.Hour)
	s.Observe(time.Millisecond)
	if br := s.BurnRate(s.LongWindow()); br != 0 {
		t.Errorf("burn after window expiry = %g, want 0", br)
	}
}

func TestSLONilSafe(t *testing.T) {
	var s *SLO
	s.Observe(time.Second)
	s.ObserveN(time.Second, 10)
	if s.BurnRate(time.Hour) != 0 || s.Status() != SLOGreen || s.Name() != "" {
		t.Error("nil SLO not inert")
	}
	var buf bytes.Buffer
	s.WriteMetrics(&buf)
	if buf.Len() != 0 {
		t.Error("nil SLO wrote metrics")
	}
}

func TestSLOWriteMetricsLints(t *testing.T) {
	clk := NewManual(time.Unix(10000, 0))
	s := newTestSLO(clk)
	cep := NewSLO("detection", 0.95, 100*time.Millisecond,
		WithSLOClock(clk), WithSLOWindow(time.Hour))
	for i := 0; i < 100; i++ {
		s.Observe(time.Millisecond)
		cep.Observe(time.Second)
		clk.Advance(time.Second)
	}
	var buf bytes.Buffer
	e := NewExpo(&buf)
	s.WriteMetrics(e)
	cep.WriteMetrics(e)
	if err := Lint(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("SLO exposition fails lint: %v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{
		`thematicep_slo_objective{slo="delivery"} 0.99`,
		`thematicep_slo_burn_rate{slo="delivery",window="short"}`,
		`thematicep_slo_burn_rate{slo="detection",window="long"}`,
		`thematicep_slo_status{slo="detection"} 2`,
	} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func BenchmarkSLOObserve(b *testing.B) {
	s := NewSLO("bench", 0.99, 10*time.Millisecond)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Observe(time.Millisecond)
	}
}
