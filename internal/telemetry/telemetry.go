// Package telemetry is the dependency-free observability layer of the
// thematic event pipeline: fixed-bucket atomic latency histograms exported
// in the Prometheus text format, lightweight sampled per-event pipeline
// traces, and a pluggable clock so tests can assert exact bucket placement
// deterministically.
//
// The package is built for hot paths. Recording into a Histogram is a
// bounded scan over precomputed bucket bounds plus two atomic adds — no
// locks, no allocations (asserted by BenchmarkHistogramObserve). Tracing is
// off by default and sampled when on: an unsampled event costs one atomic
// add; only the sampled 1-in-N event pays for span bookkeeping.
//
// Everything here is stdlib-only so the instrumented packages
// (internal/broker, internal/semantics, internal/subindex,
// internal/cluster) stay free of external dependencies.
package telemetry

import (
	"sync"
	"time"
)

// Clock abstracts time for the instrumented pipeline. Production code uses
// System; tests inject a Manual clock and advance it explicitly, making
// stage durations — and therefore histogram bucket placement — exact.
type Clock interface {
	Now() time.Time
}

type systemClock struct{}

func (systemClock) Now() time.Time { return time.Now() }

// System is the real wall clock.
var System Clock = systemClock{}

// Manual is a test clock that only moves when advanced. It is safe for
// concurrent use.
type Manual struct {
	mu sync.Mutex
	t  time.Time
}

// NewManual builds a manual clock starting at start.
func NewManual(start time.Time) *Manual {
	return &Manual{t: start}
}

// Now returns the clock's current instant.
func (m *Manual) Now() time.Time {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.t
}

// Advance moves the clock forward by d.
func (m *Manual) Advance(d time.Duration) {
	m.mu.Lock()
	m.t = m.t.Add(d)
	m.mu.Unlock()
}
