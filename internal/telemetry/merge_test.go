package telemetry

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"time"
)

// observeStream fills a histogram from a deterministic latency stream.
func observeStream(h *Histogram, rng *rand.Rand, n int) {
	for i := 0; i < n; i++ {
		// Log-uniform-ish spread across the bucket range: 1µs..~1s.
		d := time.Duration(float64(time.Microsecond) * float64(uint64(1)<<uint(rng.Intn(20))))
		h.ObserveDuration(d + time.Duration(rng.Intn(1000)))
	}
}

func TestMergeSnapshotsEqualsSingleNode(t *testing.T) {
	// The same stream observed by one node vs. split across random shards:
	// the merged snapshot must match the single node exactly, bucket for
	// bucket, so merged quantiles equal single-node quantiles.
	const n = 10000
	for _, shards := range []int{2, 3, 7} {
		single := NewHistogram("m", "", LatencyBuckets())
		parts := make([]*Histogram, shards)
		for i := range parts {
			parts[i] = NewHistogram("m", "", LatencyBuckets())
		}
		rng := rand.New(rand.NewSource(42))
		route := rand.New(rand.NewSource(7))
		for i := 0; i < n; i++ {
			d := time.Duration(float64(time.Microsecond) * float64(uint64(1)<<uint(rng.Intn(20))))
			single.ObserveDuration(d)
			parts[route.Intn(shards)].ObserveDuration(d)
		}
		snaps := make([]HistogramSnapshot, shards)
		for i, p := range parts {
			snaps[i] = p.Snapshot()
		}
		merged, err := MergeSnapshots(snaps...)
		if err != nil {
			t.Fatal(err)
		}
		want := single.Snapshot()
		if merged.Count != want.Count {
			t.Fatalf("shards=%d: merged count %d, single %d", shards, merged.Count, want.Count)
		}
		for i := range want.Counts {
			if merged.Counts[i] != want.Counts[i] {
				t.Fatalf("shards=%d: bucket %d merged %d single %d", shards, i, merged.Counts[i], want.Counts[i])
			}
		}
		for _, q := range []float64{0.5, 0.95, 0.99} {
			if got, want := merged.Quantile(q), want.Quantile(q); got != want {
				t.Errorf("shards=%d: q%.2f merged %g single %g", shards, q, got, want)
			}
		}
	}
}

func TestMergeSnapshotsAssociativeCommutative(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	hs := make([]HistogramSnapshot, 4)
	for i := range hs {
		h := NewHistogram("m", "", LatencyBuckets())
		observeStream(h, rng, 500+100*i)
		hs[i] = h.Snapshot()
	}
	eq := func(a, b HistogramSnapshot) bool {
		if a.Count != b.Count || a.Sum != b.Sum || len(a.Counts) != len(b.Counts) {
			return false
		}
		for i := range a.Counts {
			if a.Counts[i] != b.Counts[i] {
				return false
			}
		}
		return true
	}
	m := func(snaps ...HistogramSnapshot) HistogramSnapshot {
		out, err := MergeSnapshots(snaps...)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	// Associative: (a+b)+c+d == a+(b+(c+d)).
	left := m(m(hs[0], hs[1]), hs[2], hs[3])
	right := m(hs[0], m(hs[1], m(hs[2], hs[3])))
	if !eq(left, right) {
		t.Error("merge is not associative")
	}
	// Commutative: any permutation merges identically.
	perm := m(hs[3], hs[1], hs[0], hs[2])
	if !eq(left, perm) {
		t.Error("merge is not commutative")
	}
}

func TestMergeSnapshotsBoundsMismatch(t *testing.T) {
	a := NewHistogram("a", "", LatencyBuckets()).Snapshot()
	b := NewHistogram("b", "", SizeBuckets()).Snapshot()
	if _, err := MergeSnapshots(a, b); err == nil {
		t.Fatal("merging mismatched bounds did not error")
	}
}

func TestMergeFamilies(t *testing.T) {
	nodeA := `# HELP thematicep_broker_published_total Events.
# TYPE thematicep_broker_published_total counter
thematicep_broker_published_total 10
# HELP thematicep_broker_publish_seconds Publish latency.
# TYPE thematicep_broker_publish_seconds histogram
thematicep_broker_publish_seconds_bucket{le="0.001"} 4
thematicep_broker_publish_seconds_bucket{le="+Inf"} 10
thematicep_broker_publish_seconds_sum 0.5
thematicep_broker_publish_seconds_count 10
`
	nodeB := `# HELP thematicep_broker_published_total Events.
# TYPE thematicep_broker_published_total counter
thematicep_broker_published_total 5
# HELP thematicep_broker_publish_seconds Publish latency.
# TYPE thematicep_broker_publish_seconds histogram
thematicep_broker_publish_seconds_bucket{le="0.001"} 1
thematicep_broker_publish_seconds_bucket{le="+Inf"} 5
thematicep_broker_publish_seconds_sum 0.25
thematicep_broker_publish_seconds_count 5
# HELP thematicep_cluster_forwards_total Only node B forwards.
# TYPE thematicep_cluster_forwards_total counter
thematicep_cluster_forwards_total 3
`
	fa, err := ParseExposition(strings.NewReader(nodeA))
	if err != nil {
		t.Fatal(err)
	}
	fb, err := ParseExposition(strings.NewReader(nodeB))
	if err != nil {
		t.Fatal(err)
	}
	merged, err := MergeFamilies(fa, fb)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]*Family{}
	for _, f := range merged {
		byName[f.Name] = f
	}
	if got := byName["thematicep_broker_published_total"].Samples[0].Value; got != 15 {
		t.Errorf("merged counter = %v, want 15", got)
	}
	if got := byName["thematicep_cluster_forwards_total"].Samples[0].Value; got != 3 {
		t.Errorf("one-node-only counter = %v, want 3", got)
	}
	h := byName["thematicep_broker_publish_seconds"]
	snap, ok := FamilySnapshot(h)
	if !ok {
		t.Fatal("no snapshot from merged histogram family")
	}
	if snap.Count != 15 || snap.Sum != 0.75 {
		t.Errorf("merged histogram count=%d sum=%g, want 15/0.75", snap.Count, snap.Sum)
	}
	// De-cumulated buckets: le=0.001 got 4+1=5, +Inf remainder 10.
	if snap.Counts[0] != 5 || snap.Counts[1] != 10 {
		t.Errorf("merged buckets = %v, want [5 10]", snap.Counts)
	}

	// Type conflict across nodes is an error.
	conflict := `# HELP thematicep_broker_published_total Events.
# TYPE thematicep_broker_published_total gauge
thematicep_broker_published_total 5
`
	fc, err := ParseExposition(strings.NewReader(conflict))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MergeFamilies(fa, fc); err == nil {
		t.Error("type conflict did not error")
	}
}

func TestMergeFamiliesQuantilesMatchSingleNode(t *testing.T) {
	// End-to-end through the text format: one stream observed whole vs.
	// split across two nodes, scraped, parsed, merged — identical
	// quantiles within float parsing (counts are integers, so exact).
	single := NewHistogram("thematicep_broker_publish_seconds", "Publish latency.", LatencyBuckets())
	a := NewHistogram("thematicep_broker_publish_seconds", "Publish latency.", LatencyBuckets())
	b := NewHistogram("thematicep_broker_publish_seconds", "Publish latency.", LatencyBuckets())
	rng := rand.New(rand.NewSource(1))
	route := rand.New(rand.NewSource(2))
	for i := 0; i < 5000; i++ {
		d := time.Duration(float64(time.Microsecond) * float64(uint64(1)<<uint(rng.Intn(20))))
		single.ObserveDuration(d)
		if route.Intn(2) == 0 {
			a.ObserveDuration(d)
		} else {
			b.ObserveDuration(d)
		}
	}
	scrape := func(h *Histogram) []*Family {
		var buf bytes.Buffer
		h.WriteMetrics(NewExpo(&buf))
		fams, err := ParseExposition(&buf)
		if err != nil {
			t.Fatal(err)
		}
		return fams
	}
	merged, err := MergeFamilies(scrape(a), scrape(b))
	if err != nil {
		t.Fatal(err)
	}
	got, ok := FamilySnapshot(merged[0])
	if !ok {
		t.Fatal("no histogram in merged scrape")
	}
	want := single.Snapshot()
	for _, q := range []float64{0.5, 0.95, 0.99} {
		if g, w := got.Quantile(q), want.Quantile(q); g != w {
			t.Errorf("q%.2f merged-scrape %g single %g", q, g, w)
		}
	}
}
