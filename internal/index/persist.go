package index

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
)

// Index persistence addresses the paper's "building an efficient indexing
// for thematic projection" future-work item (§7): the inverted index is the
// expensive artifact (Wikipedia-scale in the paper), so brokers save it
// once and load it at startup instead of re-indexing the corpus.
//
// The format is a compact little-endian binary stream:
//
//	magic "TEPIDX1\n" | numDocs uvarint | vocab uvarint |
//	  per token: len uvarint, bytes, postings uvarint,
//	    per posting: docDelta uvarint, tf float64bits,
//	      positions uvarint, posDelta uvarint...
//
// Doc ids and positions are delta-encoded (they are sorted ascending).

var indexMagic = []byte("TEPIDX1\n")

// ErrBadIndexFile reports a corrupt or incompatible index stream.
var ErrBadIndexFile = errors.New("index: bad index file")

// WriteTo serializes the index. It returns the number of bytes written.
func (ix *Index) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: bufio.NewWriter(w)}
	if _, err := cw.Write(indexMagic); err != nil {
		return cw.n, err
	}
	writeUvarint(cw, uint64(ix.numDocs))
	writeUvarint(cw, uint64(len(ix.postings)))

	// Deterministic output: tokens in sorted order.
	tokens := make([]string, 0, len(ix.postings))
	for tok := range ix.postings {
		tokens = append(tokens, tok)
	}
	sort.Strings(tokens)

	for _, tok := range tokens {
		writeUvarint(cw, uint64(len(tok)))
		if _, err := io.WriteString(cw, tok); err != nil {
			return cw.n, err
		}
		ps := ix.postings[tok]
		writeUvarint(cw, uint64(len(ps)))
		prevDoc := int32(0)
		for _, p := range ps {
			writeUvarint(cw, uint64(p.Doc-prevDoc))
			prevDoc = p.Doc
			var tfBits [8]byte
			binary.LittleEndian.PutUint64(tfBits[:], math.Float64bits(p.TF))
			if _, err := cw.Write(tfBits[:]); err != nil {
				return cw.n, err
			}
			writeUvarint(cw, uint64(len(p.Positions)))
			prevPos := int32(0)
			for _, pos := range p.Positions {
				writeUvarint(cw, uint64(pos-prevPos))
				prevPos = pos
			}
		}
	}
	if cw.err != nil {
		return cw.n, cw.err
	}
	return cw.n, cw.w.(*bufio.Writer).Flush()
}

// ReadFrom deserializes an index written by WriteTo.
func ReadFrom(r io.Reader) (*Index, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(indexMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadIndexFile, err)
	}
	for i := range magic {
		if magic[i] != indexMagic[i] {
			return nil, fmt.Errorf("%w: wrong magic", ErrBadIndexFile)
		}
	}
	numDocs, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("%w: numDocs: %v", ErrBadIndexFile, err)
	}
	vocab, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("%w: vocab: %v", ErrBadIndexFile, err)
	}
	const maxVocab = 1 << 26
	if vocab > maxVocab || numDocs > math.MaxInt32 {
		return nil, fmt.Errorf("%w: implausible sizes", ErrBadIndexFile)
	}

	ix := &Index{
		numDocs:  int(numDocs),
		postings: make(map[string][]Posting, vocab),
	}
	tokBuf := make([]byte, 0, 64)
	for t := uint64(0); t < vocab; t++ {
		tokLen, err := binary.ReadUvarint(br)
		if err != nil || tokLen > 1<<16 {
			return nil, fmt.Errorf("%w: token length", ErrBadIndexFile)
		}
		if uint64(cap(tokBuf)) < tokLen {
			tokBuf = make([]byte, tokLen)
		}
		tokBuf = tokBuf[:tokLen]
		if _, err := io.ReadFull(br, tokBuf); err != nil {
			return nil, fmt.Errorf("%w: token bytes: %v", ErrBadIndexFile, err)
		}
		tok := string(tokBuf)

		nPostings, err := binary.ReadUvarint(br)
		if err != nil || nPostings > numDocs {
			return nil, fmt.Errorf("%w: postings count for %q", ErrBadIndexFile, tok)
		}
		ps := make([]Posting, 0, nPostings)
		doc := int32(0)
		for i := uint64(0); i < nPostings; i++ {
			docDelta, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("%w: doc delta: %v", ErrBadIndexFile, err)
			}
			doc += int32(docDelta)
			if doc < 0 || uint64(doc) >= numDocs {
				return nil, fmt.Errorf("%w: doc id out of range", ErrBadIndexFile)
			}
			var tfBits [8]byte
			if _, err := io.ReadFull(br, tfBits[:]); err != nil {
				return nil, fmt.Errorf("%w: tf: %v", ErrBadIndexFile, err)
			}
			tf := math.Float64frombits(binary.LittleEndian.Uint64(tfBits[:]))
			if tf < 0 || tf > 1 || math.IsNaN(tf) {
				return nil, fmt.Errorf("%w: tf out of range", ErrBadIndexFile)
			}
			nPos, err := binary.ReadUvarint(br)
			if err != nil || nPos > 1<<20 {
				return nil, fmt.Errorf("%w: positions count", ErrBadIndexFile)
			}
			positions := make([]int32, 0, nPos)
			pos := int32(0)
			for j := uint64(0); j < nPos; j++ {
				posDelta, err := binary.ReadUvarint(br)
				if err != nil {
					return nil, fmt.Errorf("%w: position delta: %v", ErrBadIndexFile, err)
				}
				pos += int32(posDelta)
				positions = append(positions, pos)
			}
			ps = append(ps, Posting{Doc: doc, TF: tf, Positions: positions})
		}
		ix.postings[tok] = ps
	}
	return ix, nil
}

// countingWriter tracks bytes written and sticks on the first error.
type countingWriter struct {
	w   io.Writer
	n   int64
	err error
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	if cw.err != nil {
		return 0, cw.err
	}
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	cw.err = err
	return n, err
}

func writeUvarint(w io.Writer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	w.Write(buf[:n]) //nolint:errcheck // countingWriter latches the error
}
