package index

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"thematicep/internal/corpus"
)

func TestIndexRoundTrip(t *testing.T) {
	orig := Build(tinyCorpus())
	var buf bytes.Buffer
	n, err := orig.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("WriteTo reported %d bytes, buffer has %d", n, buf.Len())
	}
	got, err := ReadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumDocs() != orig.NumDocs() || got.VocabSize() != orig.VocabSize() {
		t.Fatalf("sizes differ: %d/%d vs %d/%d",
			got.NumDocs(), got.VocabSize(), orig.NumDocs(), orig.VocabSize())
	}
	for _, tok := range []string{"a", "b", "c"} {
		if !reflect.DeepEqual(got.Postings(tok), orig.Postings(tok)) {
			t.Errorf("postings for %q differ:\n%v\n%v", tok, got.Postings(tok), orig.Postings(tok))
		}
	}
}

func TestIndexRoundTripFullCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	orig := Build(corpus.GenerateDefault())
	var buf bytes.Buffer
	if _, err := orig.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.VocabSize() != orig.VocabSize() {
		t.Fatalf("vocab %d vs %d", got.VocabSize(), orig.VocabSize())
	}
	// Spot-check semantic invariants survive: vectors and phrase docs.
	for _, tok := range []string{"energy", "parking", "coach", "qbaba"} {
		a, b := orig.Vector(tok), got.Vector(tok)
		if a.NNZ() != b.NNZ() {
			t.Errorf("vector nnz for %q: %d vs %d", tok, a.NNZ(), b.NNZ())
		}
	}
	a := orig.PhraseDocs([]string{"land", "transport"})
	b := got.PhraseDocs([]string{"land", "transport"})
	if !reflect.DeepEqual(a, b) {
		t.Errorf("phrase docs differ: %v vs %v", a, b)
	}
}

func TestWriteToDeterministic(t *testing.T) {
	ix := Build(tinyCorpus())
	var a, b bytes.Buffer
	if _, err := ix.WriteTo(&a); err != nil {
		t.Fatal(err)
	}
	if _, err := ix.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("serialization is not deterministic")
	}
}

func TestReadFromRejectsCorrupt(t *testing.T) {
	ix := Build(tinyCorpus())
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	tests := []struct {
		name string
		data []byte
	}{
		{name: "empty", data: nil},
		{name: "wrong magic", data: append([]byte("NOTINDEX"), good[8:]...)},
		{name: "truncated header", data: good[:9]},
		{name: "truncated body", data: good[:len(good)-3]},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ReadFrom(bytes.NewReader(tt.data)); !errors.Is(err, ErrBadIndexFile) {
				t.Errorf("err = %v, want ErrBadIndexFile", err)
			}
		})
	}
}

func TestReadFromRejectsImplausibleSizes(t *testing.T) {
	// magic + numDocs=2^40 -> implausible.
	data := append([]byte{}, indexMagic...)
	data = append(data, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01) // huge uvarint
	data = append(data, 0x01)
	if _, err := ReadFrom(bytes.NewReader(data)); !errors.Is(err, ErrBadIndexFile) {
		t.Errorf("err = %v, want ErrBadIndexFile", err)
	}
}
