package index

import (
	"math"
	"testing"

	"thematicep/internal/corpus"
)

// tinyCorpus builds a hand-checkable corpus:
//
//	doc 0: a a b
//	doc 1: a c
//	doc 2: b b b c
func tinyCorpus() *corpus.Corpus {
	return &corpus.Corpus{Docs: []corpus.Document{
		{ID: 0, Title: "d0", Kind: corpus.KindConcept, Domain: "x", Tokens: []string{"a", "a", "b"}},
		{ID: 1, Title: "d1", Kind: corpus.KindConcept, Domain: "x", Tokens: []string{"a", "c"}},
		{ID: 2, Title: "d2", Kind: corpus.KindConcept, Domain: "x", Tokens: []string{"b", "b", "b", "c"}},
	}}
}

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestBuildCounts(t *testing.T) {
	ix := Build(tinyCorpus())
	if ix.NumDocs() != 3 {
		t.Errorf("NumDocs = %d", ix.NumDocs())
	}
	if ix.VocabSize() != 3 {
		t.Errorf("VocabSize = %d", ix.VocabSize())
	}
	if ix.DocFreq("a") != 2 || ix.DocFreq("b") != 2 || ix.DocFreq("c") != 2 {
		t.Errorf("DocFreq wrong: a=%d b=%d c=%d", ix.DocFreq("a"), ix.DocFreq("b"), ix.DocFreq("c"))
	}
	if ix.DocFreq("zzz") != 0 {
		t.Error("DocFreq of unknown != 0")
	}
}

func TestAugmentedTF(t *testing.T) {
	ix := Build(tinyCorpus())
	// doc 0: freq(a)=2, max=2 -> tf = 0.5 + 0.5*2/2 = 1.0
	//        freq(b)=1, max=2 -> tf = 0.5 + 0.5*1/2 = 0.75
	// doc 2: freq(b)=3, max=3 -> tf = 1.0; freq(c)=1 -> 0.5+0.5/3
	wantTF := map[string]map[int32]float64{
		"a": {0: 1.0, 1: 1.0},
		"b": {0: 0.75, 2: 1.0},
		"c": {1: 1.0, 2: 0.5 + 0.5/3.0},
	}
	for tok, docs := range wantTF {
		for _, p := range ix.Postings(tok) {
			want, ok := docs[p.Doc]
			if !ok {
				t.Errorf("unexpected posting %q in doc %d", tok, p.Doc)
				continue
			}
			if !almostEqual(p.TF, want) {
				t.Errorf("tf(%q, %d) = %v, want %v", tok, p.Doc, p.TF, want)
			}
		}
	}
}

func TestIDF(t *testing.T) {
	ix := Build(tinyCorpus())
	want := math.Log(3.0 / 2.0)
	if got := ix.IDF("a"); !almostEqual(got, want) {
		t.Errorf("IDF(a) = %v, want %v", got, want)
	}
	if got := ix.IDF("zzz"); got != 0 {
		t.Errorf("IDF(unknown) = %v, want 0", got)
	}
}

func TestVector(t *testing.T) {
	ix := Build(tinyCorpus())
	v := ix.Vector("b")
	idf := math.Log(3.0 / 2.0)
	if got := v.Weight(0); !almostEqual(got, 0.75*idf) {
		t.Errorf("weight(b, d0) = %v, want %v", got, 0.75*idf)
	}
	if got := v.Weight(2); !almostEqual(got, 1.0*idf) {
		t.Errorf("weight(b, d2) = %v, want %v", got, idf)
	}
	if got := v.Weight(1); got != 0 {
		t.Errorf("weight(b, d1) = %v, want 0", got)
	}
	if !ix.Vector("zzz").IsZero() {
		t.Error("Vector(unknown) not zero")
	}
}

func TestTermInAllDocsHasZeroVector(t *testing.T) {
	c := &corpus.Corpus{Docs: []corpus.Document{
		{ID: 0, Tokens: []string{"x", "y"}},
		{ID: 1, Tokens: []string{"x"}},
	}}
	ix := Build(c)
	// x appears in every document: idf = log(1) = 0, so the vector vanishes.
	if !ix.Vector("x").IsZero() {
		t.Error("vector of ubiquitous term should be zero")
	}
	if ix.Vector("y").IsZero() {
		t.Error("vector of selective term should be non-zero")
	}
}

func TestDocsContainingSorted(t *testing.T) {
	ix := Build(tinyCorpus())
	docs := ix.DocsContaining("c")
	if len(docs) != 2 || docs[0] != 1 || docs[1] != 2 {
		t.Errorf("DocsContaining(c) = %v", docs)
	}
	for tok := range map[string]bool{"a": true, "b": true, "c": true} {
		ds := ix.DocsContaining(tok)
		for i := 1; i < len(ds); i++ {
			if ds[i-1] >= ds[i] {
				t.Errorf("DocsContaining(%q) not strictly sorted: %v", tok, ds)
			}
		}
	}
}

func TestKnown(t *testing.T) {
	ix := Build(tinyCorpus())
	if !ix.Known("a") || ix.Known("zzz") {
		t.Error("Known wrong")
	}
}

func TestEmptyDocSkipped(t *testing.T) {
	c := &corpus.Corpus{Docs: []corpus.Document{
		{ID: 0, Tokens: nil},
		{ID: 1, Tokens: []string{"a"}},
	}}
	ix := Build(c)
	if ix.NumDocs() != 2 {
		t.Errorf("NumDocs = %d", ix.NumDocs())
	}
	if ix.DocFreq("a") != 1 {
		t.Errorf("DocFreq(a) = %d", ix.DocFreq("a"))
	}
}

func TestRealCorpusIndex(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	ix := Build(corpus.GenerateDefault())
	if ix.VocabSize() < 500 {
		t.Errorf("vocabulary suspiciously small: %d", ix.VocabSize())
	}
	// Synonym tokens of one concept must share documents: "usage" and
	// "consumption" co-occur in energy-consumption concept docs.
	a := ix.DocsContaining("usage")
	b := ix.DocsContaining("consumption")
	shared := 0
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			shared++
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	if shared == 0 {
		t.Error("synonym tokens share no documents; ESA cannot work")
	}
}
