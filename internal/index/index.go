// Package index builds the inverted index over a corpus that encodes the
// distributional vector space model (paper §4.1, Fig. 5 step 1).
//
// Each token has an entry listing the documents it appears in together with
// its augmented term frequency (Eq. 2). The raw tf values are kept — as the
// paper requires — "so they can be used later for thematic projection",
// where only the idf factor (Eq. 3) is recomputed over the thematic basis
// (Algorithm 1, lines 8-10).
package index

import (
	"math"
	"sort"

	"thematicep/internal/corpus"
	"thematicep/internal/sparse"
)

// Posting records one (token, document) pair.
type Posting struct {
	Doc int32
	// TF is the augmented term frequency of Eq. 2:
	// 0.5 + 0.5*freq(t,d)/max_freq(d). It does not change under projection.
	TF float64
	// Positions are the 0-based token offsets of the occurrences, ascending.
	// They support phrase lookup for multi-word theme tags.
	Positions []int32
}

// Index is an immutable inverted index. Build constructs it; all methods are
// safe for concurrent use afterwards.
type Index struct {
	numDocs  int
	postings map[string][]Posting // sorted by Doc ascending
}

// Build tokenizes nothing itself: corpus documents already carry normalized,
// stop-word-free tokens. It computes per-document maximum frequencies and
// the augmented tf of every posting.
func Build(c *corpus.Corpus) *Index {
	ix := &Index{
		numDocs:  c.Len(),
		postings: make(map[string][]Posting),
	}
	for _, doc := range c.Docs {
		if len(doc.Tokens) == 0 {
			continue
		}
		positions := make(map[string][]int32, len(doc.Tokens))
		maxFreq := 0
		for i, tok := range doc.Tokens {
			positions[tok] = append(positions[tok], int32(i))
			if len(positions[tok]) > maxFreq {
				maxFreq = len(positions[tok])
			}
		}
		for tok, pos := range positions {
			tf := 0.5 + 0.5*float64(len(pos))/float64(maxFreq)
			ix.postings[tok] = append(ix.postings[tok], Posting{Doc: doc.ID, TF: tf, Positions: pos})
		}
	}
	for tok := range ix.postings {
		ps := ix.postings[tok]
		sort.Slice(ps, func(i, j int) bool { return ps[i].Doc < ps[j].Doc })
	}
	return ix
}

// NumDocs returns |D|, the dimensionality of the full space.
func (ix *Index) NumDocs() int { return ix.numDocs }

// VocabSize returns the number of distinct tokens.
func (ix *Index) VocabSize() int { return len(ix.postings) }

// DocFreq returns the document frequency of token.
func (ix *Index) DocFreq(token string) int { return len(ix.postings[token]) }

// Postings returns the postings list of token (sorted by document id). The
// returned slice is shared; callers must not modify it.
func (ix *Index) Postings(token string) []Posting { return ix.postings[token] }

// IDF returns the inverse document frequency of Eq. 3 over the full space:
// log(|D| / df). Tokens appearing nowhere get 0.
func (ix *Index) IDF(token string) float64 {
	df := len(ix.postings[token])
	if df == 0 || ix.numDocs == 0 {
		return 0
	}
	return math.Log(float64(ix.numDocs) / float64(df))
}

// Vector returns the token's distributional vector in the full space with
// TF/IDF weights (Eq. 4, Fig. 5 step 2). Unknown tokens yield the zero
// vector.
func (ix *Index) Vector(token string) sparse.Vector {
	ps := ix.postings[token]
	if len(ps) == 0 {
		return sparse.Vector{}
	}
	idf := ix.IDF(token)
	if idf == 0 {
		// A token in every document carries no distributional signal.
		return sparse.Vector{}
	}
	ids := make([]int32, len(ps))
	weights := make([]float64, len(ps))
	for i, p := range ps {
		ids[i] = p.Doc
		weights[i] = p.TF * idf
	}
	return sparse.New(ids, weights)
}

// DocsContaining returns the sorted document ids containing token.
func (ix *Index) DocsContaining(token string) []int32 {
	ps := ix.postings[token]
	out := make([]int32, len(ps))
	for i, p := range ps {
		out[i] = p.Doc
	}
	return out
}

// Known reports whether the token occurs in the corpus.
func (ix *Index) Known(token string) bool {
	_, ok := ix.postings[token]
	return ok
}

// PhraseDocs returns the sorted ids of documents containing the tokens as a
// consecutive phrase. A one-token phrase degenerates to DocsContaining.
// Multi-word theme tags use phrase semantics when selecting their basis: the
// tag "land transport" denotes documents about land transport, not every
// document mentioning "land" or "transport".
func (ix *Index) PhraseDocs(tokens []string) []int32 {
	switch len(tokens) {
	case 0:
		return nil
	case 1:
		return ix.DocsContaining(tokens[0])
	}
	// Iterate the rarest token's postings and verify the phrase around each
	// occurrence via the other tokens' position lists.
	rarest := 0
	for i, tok := range tokens {
		if ix.DocFreq(tok) == 0 {
			return nil
		}
		if ix.DocFreq(tok) < ix.DocFreq(tokens[rarest]) {
			rarest = i
		}
	}
	var out []int32
	for _, p := range ix.postings[tokens[rarest]] {
		if ix.phraseInDoc(tokens, rarest, p) {
			out = append(out, p.Doc)
		}
	}
	return out
}

// phraseInDoc reports whether tokens occur consecutively in the document of
// anchor posting p (which holds the occurrences of tokens[anchorIdx]).
func (ix *Index) phraseInDoc(tokens []string, anchorIdx int, p Posting) bool {
	// Positions of every token in this document.
	pos := make([][]int32, len(tokens))
	for i, tok := range tokens {
		if i == anchorIdx {
			pos[i] = p.Positions
			continue
		}
		ps := ix.postings[tok]
		j := sort.Search(len(ps), func(j int) bool { return ps[j].Doc >= p.Doc })
		if j >= len(ps) || ps[j].Doc != p.Doc {
			return false
		}
		pos[i] = ps[j].Positions
	}
	for _, start := range pos[anchorIdx] {
		base := start - int32(anchorIdx)
		if base < 0 {
			continue
		}
		ok := true
		for i := range tokens {
			if i == anchorIdx {
				continue
			}
			want := base + int32(i)
			k := sort.Search(len(pos[i]), func(k int) bool { return pos[i][k] >= want })
			if k >= len(pos[i]) || pos[i][k] != want {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}
