package index

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"thematicep/internal/corpus"
)

// phraseCorpus builds documents from space-separated token strings.
func phraseCorpus(docs ...string) *corpus.Corpus {
	c := &corpus.Corpus{}
	for i, d := range docs {
		c.Docs = append(c.Docs, corpus.Document{
			ID:     int32(i),
			Tokens: strings.Fields(d),
		})
	}
	return c
}

func TestPhraseDocs(t *testing.T) {
	ix := Build(phraseCorpus(
		"land transport policy",    // 0: phrase at start
		"policy on land transport", // 1: phrase at end
		"land of transport",        // 2: tokens present, not adjacent
		"transport land",           // 3: wrong order
		"x land transport y",       // 4: phrase mid-document
		"land land transport",      // 5: repeated anchor token
		"transport land transport", // 6: phrase present after false start
		"unrelated words only",     // 7: neither token
		"land",                     // 8: only first token
	))
	tests := []struct {
		name   string
		phrase []string
		want   []int32
	}{
		{name: "two tokens", phrase: []string{"land", "transport"}, want: []int32{0, 1, 4, 5, 6}},
		{name: "single token", phrase: []string{"land"}, want: []int32{0, 1, 2, 3, 4, 5, 6, 8}},
		{name: "three tokens", phrase: []string{"land", "transport", "policy"}, want: []int32{0}},
		{name: "absent token", phrase: []string{"land", "zzz"}, want: nil},
		{name: "empty", phrase: nil, want: nil},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := ix.PhraseDocs(tt.phrase)
			if !reflect.DeepEqual(got, tt.want) {
				t.Errorf("PhraseDocs(%v) = %v, want %v", tt.phrase, got, tt.want)
			}
		})
	}
}

// Property: PhraseDocs agrees with a naive substring scan over random
// documents built from a tiny alphabet (which maximizes adjacency
// collisions).
func TestPhraseDocsMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	alphabet := []string{"a", "b", "c", "d"}
	for trial := 0; trial < 50; trial++ {
		var docs []string
		for d := 0; d < 12; d++ {
			n := 1 + rng.Intn(12)
			toks := make([]string, n)
			for i := range toks {
				toks[i] = alphabet[rng.Intn(len(alphabet))]
			}
			docs = append(docs, strings.Join(toks, " "))
		}
		ix := Build(phraseCorpus(docs...))

		phraseLen := 1 + rng.Intn(3)
		phrase := make([]string, phraseLen)
		for i := range phrase {
			phrase[i] = alphabet[rng.Intn(len(alphabet))]
		}

		var want []int32
		needle := " " + strings.Join(phrase, " ") + " "
		for d, doc := range docs {
			if strings.Contains(" "+doc+" ", needle) {
				want = append(want, int32(d))
			}
		}
		got := ix.PhraseDocs(phrase)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: phrase %v over %v\n got %v\n want %v",
				trial, phrase, docs, got, want)
		}
	}
}

// The rarest-token anchor must not change results: force different anchors
// by frequency skew.
func TestPhraseDocsAnchorChoice(t *testing.T) {
	// "common" appears in many docs, "rare" in one: anchor should be rare,
	// but the result must be the same either way.
	ix := Build(phraseCorpus(
		"common common common",
		"common rare common",
		"rare common", // wrong order for "common rare"
		"common",
	))
	got := ix.PhraseDocs([]string{"common", "rare"})
	if !reflect.DeepEqual(got, []int32{1}) {
		t.Errorf("PhraseDocs = %v, want [1]", got)
	}
	// "rare common" occurs both inside "common rare common" and in doc 2.
	got = ix.PhraseDocs([]string{"rare", "common"})
	if !reflect.DeepEqual(got, []int32{1, 2}) {
		t.Errorf("PhraseDocs = %v, want [1 2]", got)
	}
}

// Repeated tokens inside a phrase ("energy energy") must require genuinely
// consecutive occurrences.
func TestPhraseDocsRepeatedToken(t *testing.T) {
	ix := Build(phraseCorpus(
		"energy energy saving",
		"energy saving energy",
	))
	got := ix.PhraseDocs([]string{"energy", "energy"})
	if !reflect.DeepEqual(got, []int32{0}) {
		t.Errorf("PhraseDocs(energy energy) = %v, want [0]", got)
	}
}
