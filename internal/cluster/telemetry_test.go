package cluster_test

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"thematicep/internal/broker"
	"thematicep/internal/cluster"
	"thematicep/internal/event"
	"thematicep/internal/telemetry"
)

// startTracedPair builds a 2-node cluster whose first broker samples every
// event's pipeline trace. The second broker's tracer only fires by adopting
// a propagated context (its own sampling interval is effectively never), so
// any trace in its ring proves cross-peer propagation rather than an
// organic sample. Both nodes advertise a metrics address in their hello.
func startTracedPair(t *testing.T) []*testNode {
	t.Helper()
	ns := make([]*testNode, 2)
	addrs := make([]string, 2)
	names := []string{"node-A", "node-B"}
	for i := range ns {
		every := 1
		if i != 0 {
			every = 1 << 30
		}
		b := broker.New(exactMatcher(),
			broker.WithTraceSampling(every, telemetry.WithNode(names[i])))
		srv := broker.NewServer(b)
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		ns[i] = &testNode{b: b, srv: srv, addr: addr.String()}
		addrs[i] = addr.String()
	}
	for i, tn := range ns {
		node, err := cluster.New(tn.b, cluster.Config{
			Self:         tn.addr,
			Peers:        []string{addrs[1-i]},
			ReconnectMin: 10 * time.Millisecond,
			ReconnectMax: 200 * time.Millisecond,
			MetricsAddr:  "metrics-" + names[i],
		})
		if err != nil {
			t.Fatal(err)
		}
		tn.srv.SetBackend(node)
		tn.srv.SetPeerHandler(node)
		tn.node = node
	}
	for _, tn := range ns {
		tn.node.Start()
	}
	t.Cleanup(func() {
		for _, tn := range ns {
			tn.node.Close()
			tn.srv.Close()
			tn.b.Close()
		}
	})
	return ns
}

// TestForwardHopInTrace publishes through a 2-node federation and asserts
// the forward hop appears as a late span on the sampled publish trace,
// carrying the peer's identity and a non-zero duration.
func TestForwardHopInTrace(t *testing.T) {
	ns := startTracedPair(t)
	n0, n1 := ns[0], ns[1]

	// A theme owned by the remote node forces a forward on publish.
	tag := findTag(t, n0.node.Ring(), n1.addr)
	ev := &event.Event{
		ID:     "hop-ev-1",
		Theme:  []string{tag},
		Tuples: []event.Tuple{{Attr: "type", Value: "parking event"}},
	}
	if err := n0.node.Publish(ev); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "event received by peer", func() bool {
		return n1.node.Stats().Received == 1
	})

	var hop telemetry.Span
	waitFor(t, "forward hop span on the trace", func() bool {
		for _, tr := range n0.b.Tracer().Recent() {
			if tr.EventID != "hop-ev-1" {
				continue
			}
			for _, sp := range tr.Spans {
				if sp.Stage == "forward:"+n1.addr {
					hop = sp
					return true
				}
			}
		}
		return false
	})
	if hop.Duration <= 0 {
		t.Errorf("forward hop duration = %v, want > 0", hop.Duration)
	}

	// The hop histogram and queue gauge ride the broker's /metrics.
	rec := httptest.NewRecorder()
	broker.MetricsHandler(n0.b, n0.node).ServeHTTP(rec,
		httptest.NewRequest("GET", "/metrics", nil))
	body, _ := io.ReadAll(rec.Body)
	out := string(body)
	for _, want := range []string{
		`thematicep_cluster_hop_seconds_count{peer="` + n1.addr + `"} 1`,
		`thematicep_cluster_forward_queue_depth{peer="` + n1.addr + `"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	if err := telemetry.Lint(strings.NewReader(out)); err != nil {
		t.Errorf("cluster exposition fails lint: %v", err)
	}
}

// TestCrossPeerTracePropagation is the federation tracing acceptance check:
// a sampled publish at node A whose theme is owned by node B must produce
// two causally linked trace fragments sharing one trace ID — the origin
// fragment on A (no parent) and the continuation fragment on B (parent A),
// carried across the wire by the forward frame's trace context.
func TestCrossPeerTracePropagation(t *testing.T) {
	ns := startTracedPair(t)
	n0, n1 := ns[0], ns[1]

	tag := findTag(t, n0.node.Ring(), n1.addr)
	ev := &event.Event{
		ID:     "xpeer-ev-1",
		Theme:  []string{tag},
		Tuples: []event.Tuple{{Attr: "type", Value: "parking event"}},
	}
	if err := n0.node.Publish(ev); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "event received by peer", func() bool {
		return n1.node.Stats().Received == 1
	})

	var origin telemetry.Trace
	waitFor(t, "origin fragment on node A", func() bool {
		for _, tr := range n0.b.Tracer().Recent() {
			if tr.EventID == ev.ID {
				origin = tr
				return true
			}
		}
		return false
	})
	if origin.TraceID == "" {
		t.Fatal("origin fragment has no trace ID")
	}
	if origin.Node != "node-A" || origin.Parent != "" {
		t.Errorf("origin fragment node %q parent %q, want node-A with no parent",
			origin.Node, origin.Parent)
	}

	var remote telemetry.Trace
	waitFor(t, "continuation fragment on node B", func() bool {
		for _, tr := range n1.b.Tracer().Recent() {
			if tr.EventID == ev.ID {
				remote = tr
				return true
			}
		}
		return false
	})
	if remote.TraceID != origin.TraceID {
		t.Errorf("fragments do not share a trace ID: origin %q, remote %q",
			origin.TraceID, remote.TraceID)
	}
	if remote.Node != "node-B" || remote.Parent != "node-A" {
		t.Errorf("remote fragment node %q parent %q, want node-B forwarded by node-A",
			remote.Node, remote.Parent)
	}
	// The remote fragment is a full pipeline trace in its own right.
	stages := map[string]bool{}
	for _, sp := range remote.Spans {
		stages[sp.Stage] = true
	}
	for _, stage := range []string{"ingest", "compile", "enumerate", "score"} {
		if !stages[stage] {
			t.Errorf("remote fragment missing stage %q (spans %v)", stage, remote.Spans)
		}
	}
}

// TestCrossPeerBatchTracePropagation covers the batched path: a sampled
// PublishBatch forwarded as one forwardb frame continues the batch trace on
// the receiving shard, keyed by the sub-batch's first member event.
func TestCrossPeerBatchTracePropagation(t *testing.T) {
	ns := startTracedPair(t)
	n0, n1 := ns[0], ns[1]

	tag := findTag(t, n0.node.Ring(), n1.addr)
	evs := make([]*event.Event, 3)
	for i := range evs {
		evs[i] = &event.Event{
			ID:     fmt.Sprintf("xbatch-ev-%d", i),
			Theme:  []string{tag},
			Tuples: []event.Tuple{{Attr: "type", Value: "parking event"}},
		}
	}
	if err := n0.node.PublishBatch(evs); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "batch received by peer", func() bool {
		return n1.node.Stats().Received == 3
	})

	var origin telemetry.Trace
	for _, tr := range n0.b.Tracer().Recent() {
		if tr.Member(evs[0].ID) {
			origin = tr
			break
		}
	}
	if origin.TraceID == "" {
		t.Fatal("no origin batch trace on node A")
	}
	var remote telemetry.Trace
	waitFor(t, "batch continuation fragment on node B", func() bool {
		for _, tr := range n1.b.Tracer().Recent() {
			if tr.TraceID == origin.TraceID {
				remote = tr
				return true
			}
		}
		return false
	})
	if remote.Parent != "node-A" || remote.Node != "node-B" {
		t.Errorf("remote batch fragment node %q parent %q", remote.Node, remote.Parent)
	}
	if len(remote.Events) != 3 {
		t.Errorf("remote batch fragment has %d members, want 3", len(remote.Events))
	}
}

// TestPeerDirectoryLearnsMetricsAddrs asserts the /debug/peers scrape
// directory: self first with its configured metrics address, peers filled
// in as their hello frames arrive.
func TestPeerDirectoryLearnsMetricsAddrs(t *testing.T) {
	ns := startTracedPair(t)
	n0, n1 := ns[0], ns[1]

	waitFor(t, "metrics addr learned from peer hello", func() bool {
		for _, p := range n0.node.PeerDirectory() {
			if p.Node == n1.addr && p.Metrics == "metrics-node-B" {
				return true
			}
		}
		return false
	})

	rec := httptest.NewRecorder()
	n0.node.PeersHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/peers", nil))
	if rec.Code != 200 {
		t.Fatalf("GET /debug/peers = %d", rec.Code)
	}
	var dir []cluster.PeerInfo
	if err := json.NewDecoder(rec.Body).Decode(&dir); err != nil {
		t.Fatal(err)
	}
	if len(dir) != 2 {
		t.Fatalf("directory has %d rows, want 2: %+v", len(dir), dir)
	}
	if !dir[0].Self || dir[0].Node != n0.addr || dir[0].Metrics != "metrics-node-A" {
		t.Errorf("self row = %+v", dir[0])
	}
	if dir[1].Self || dir[1].Node != n1.addr || dir[1].Metrics != "metrics-node-B" {
		t.Errorf("peer row = %+v", dir[1])
	}

	rec = httptest.NewRecorder()
	n0.node.PeersHandler().ServeHTTP(rec, httptest.NewRequest("POST", "/debug/peers", nil))
	if rec.Code != 405 {
		t.Errorf("POST /debug/peers = %d, want 405", rec.Code)
	}
}
