package cluster_test

import (
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"thematicep/internal/broker"
	"thematicep/internal/cluster"
	"thematicep/internal/event"
	"thematicep/internal/telemetry"
)

// startTracedPair builds a 2-node cluster whose first broker samples every
// event's pipeline trace.
func startTracedPair(t *testing.T) []*testNode {
	t.Helper()
	ns := make([]*testNode, 2)
	addrs := make([]string, 2)
	for i := range ns {
		var opts []broker.Option
		if i == 0 {
			opts = append(opts, broker.WithTraceSampling(1))
		}
		b := broker.New(exactMatcher(), opts...)
		srv := broker.NewServer(b)
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		ns[i] = &testNode{b: b, srv: srv, addr: addr.String()}
		addrs[i] = addr.String()
	}
	for i, tn := range ns {
		node, err := cluster.New(tn.b, cluster.Config{
			Self:         tn.addr,
			Peers:        []string{addrs[1-i]},
			ReconnectMin: 10 * time.Millisecond,
			ReconnectMax: 200 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		tn.srv.SetBackend(node)
		tn.srv.SetPeerHandler(node)
		tn.node = node
	}
	for _, tn := range ns {
		tn.node.Start()
	}
	t.Cleanup(func() {
		for _, tn := range ns {
			tn.node.Close()
			tn.srv.Close()
			tn.b.Close()
		}
	})
	return ns
}

// TestForwardHopInTrace publishes through a 2-node federation and asserts
// the forward hop appears as a late span on the sampled publish trace,
// carrying the peer's identity and a non-zero duration.
func TestForwardHopInTrace(t *testing.T) {
	ns := startTracedPair(t)
	n0, n1 := ns[0], ns[1]

	// A theme owned by the remote node forces a forward on publish.
	tag := findTag(t, n0.node.Ring(), n1.addr)
	ev := &event.Event{
		ID:     "hop-ev-1",
		Theme:  []string{tag},
		Tuples: []event.Tuple{{Attr: "type", Value: "parking event"}},
	}
	if err := n0.node.Publish(ev); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "event received by peer", func() bool {
		return n1.node.Stats().Received == 1
	})

	var hop telemetry.Span
	waitFor(t, "forward hop span on the trace", func() bool {
		for _, tr := range n0.b.Tracer().Recent() {
			if tr.EventID != "hop-ev-1" {
				continue
			}
			for _, sp := range tr.Spans {
				if sp.Stage == "forward:"+n1.addr {
					hop = sp
					return true
				}
			}
		}
		return false
	})
	if hop.Duration <= 0 {
		t.Errorf("forward hop duration = %v, want > 0", hop.Duration)
	}

	// The hop histogram and queue gauge ride the broker's /metrics.
	rec := httptest.NewRecorder()
	broker.MetricsHandler(n0.b, n0.node).ServeHTTP(rec,
		httptest.NewRequest("GET", "/metrics", nil))
	body, _ := io.ReadAll(rec.Body)
	out := string(body)
	for _, want := range []string{
		`thematicep_cluster_hop_seconds_count{peer="` + n1.addr + `"} 1`,
		`thematicep_cluster_forward_queue_depth{peer="` + n1.addr + `"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	if err := telemetry.Lint(strings.NewReader(out)); err != nil {
		t.Errorf("cluster exposition fails lint: %v", err)
	}
}
