package cluster_test

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"thematicep/internal/broker"
	"thematicep/internal/cluster"
	"thematicep/internal/event"
	"thematicep/internal/faultinject"
)

// startChaosCluster brings up size federated brokers whose outbound peer
// links all run through one seeded fault injector, with failure detection
// tuned fast enough for a short soak: small breaker threshold, quick
// heartbeats, tight deadlines. Replay is disabled so the per-broker
// Delivered <= Matched <= Scanned invariant holds exactly.
func startChaosCluster(t *testing.T, size int, inj *faultinject.Injector) []*testNode {
	t.Helper()
	ns := make([]*testNode, size)
	addrs := make([]string, size)
	for i := range ns {
		b := broker.New(exactMatcher(), broker.WithReplayBuffer(0))
		srv := broker.NewServer(b)
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		ns[i] = &testNode{b: b, srv: srv, addr: addr.String()}
		addrs[i] = addr.String()
	}
	dial := inj.Dialer(func(addr string) (net.Conn, error) {
		return net.DialTimeout("tcp", addr, time.Second)
	})
	for i, tn := range ns {
		var peers []string
		for j, a := range addrs {
			if j != i {
				peers = append(peers, a)
			}
		}
		node, err := cluster.New(tn.b, cluster.Config{
			Self:              tn.addr,
			Peers:             peers,
			ReconnectMin:      5 * time.Millisecond,
			ReconnectMax:      50 * time.Millisecond,
			WriteTimeout:      200 * time.Millisecond,
			HeartbeatInterval: 50 * time.Millisecond,
			HeartbeatTimeout:  150 * time.Millisecond,
			BreakerThreshold:  2,
			BreakerCooldown:   100 * time.Millisecond,
			Dial:              dial,
		})
		if err != nil {
			t.Fatal(err)
		}
		tn.srv.SetBackend(node)
		tn.srv.SetPeerHandler(node)
		tn.node = node
	}
	for _, tn := range ns {
		tn.node.Start()
	}
	t.Cleanup(func() {
		for _, tn := range ns {
			tn.node.Close()
			tn.srv.Close()
			tn.b.Close()
		}
	})
	return ns
}

// TestChaosSoakThreeNodeCluster is the fault-tolerance acceptance soak: a
// 3-node cluster under seeded injected latency, write stalls, partial
// writes, mid-frame resets, and byte corruption, followed by a full
// partition. Throughout: no deadlock (the test finishes), no duplicate
// delivery (event-ID dedup holds), and Delivered <= Matched <= Scanned on
// every broker. After the partition heals, every breaker returns to
// closed, remote registrations are reconciled, and cross-shard forwards
// resume — proven by a sentinel event arriving exactly once.
func TestChaosSoakThreeNodeCluster(t *testing.T) {
	inj := faultinject.New(faultinject.Config{
		Seed:        42,
		LatencyMax:  500 * time.Microsecond,
		StallProb:   0.002,
		StallFor:    120 * time.Millisecond,
		PartialProb: 0.002,
		ResetProb:   0.002,
		CorruptProb: 0.005,
	})
	ns := startChaosCluster(t, 3, inj)
	nodeA, nodeB, nodeC := ns[0], ns[1], ns[2]
	ring := nodeC.node.Ring()
	tagB := findTag(t, ring, nodeB.addr)
	tagC := findTag(t, ring, nodeC.addr)

	// One federated subscriber at C spanning the B and C shards: local
	// registration at C, remote registration at B, merged and de-duplicated
	// by event ID.
	sub := &event.Subscription{
		Theme:      []string{tagB, tagC},
		Predicates: []event.Predicate{{Attr: "type", Value: "parking event"}},
	}
	h, err := nodeC.node.SubscribeHandle(sub)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	waitFor(t, "remote registration on B", func() bool {
		return nodeB.b.Stats().Subscribers == 1
	})

	// Deliveries are tallied by event ID for the duplicate check.
	var mu sync.Mutex
	counts := make(map[string]int)
	recorded := func(id string) int {
		mu.Lock()
		defer mu.Unlock()
		return counts[id]
	}
	go func() {
		for d := range h.C() {
			mu.Lock()
			counts[d.Event.ID]++
			mu.Unlock()
		}
	}()

	publish := func(id string) {
		t.Helper()
		if err := nodeA.node.Publish(&event.Event{
			ID:    id,
			Theme: []string{tagB, tagC},
			Tuples: []event.Tuple{
				{Attr: "type", Value: "parking event"},
				{Attr: "spot", Value: id},
			},
		}); err != nil {
			t.Fatal(err)
		}
	}

	// Phase 1 — chaos while connected: resets and corruption kill links
	// mid-frame, stalls exercise the write deadlines, and the reconnect
	// machinery keeps re-establishing the mesh. Local publishing at A must
	// never fail (faults live in the federation layer).
	const chaosEvents = 150
	for i := 0; i < chaosEvents; i++ {
		publish(fmt.Sprintf("chaos-%d", i))
		if i%10 == 0 {
			time.Sleep(time.Millisecond)
		}
	}

	// Phase 2 — partition: every outbound link fails and every redial is
	// refused, so the per-peer breakers on every node must trip open, and
	// publishes at A shed their forwards (counted) instead of wedging.
	inj.Partition(true)
	waitFor(t, "A's breakers to open under partition", func() bool {
		for _, state := range nodeA.node.PeerStates() {
			if state != cluster.BreakerOpen {
				return false
			}
		}
		return true
	})
	const partitionEvents = 50
	for i := 0; i < partitionEvents; i++ {
		publish(fmt.Sprintf("part-%d", i))
	}
	if st := nodeA.node.Stats(); st.ForwardsShed == 0 {
		t.Error("no forwards shed while every breaker was open")
	}
	if st := nodeA.node.Stats(); st.BreakerTrips == 0 {
		t.Error("BreakerTrips = 0 after a partition")
	}

	// Phase 3 — heal: half-open probes must succeed, every breaker on
	// every node must re-close, the mesh must reconnect, and B must
	// re-host C's remote registration.
	inj.Partition(false)
	waitFor(t, "all breakers closed and mesh reconnected after heal", func() bool {
		for _, tn := range ns {
			st := tn.node.Stats()
			if st.PeersConnected != 2 || st.PeersOpen != 0 {
				return false
			}
			for _, state := range tn.node.PeerStates() {
				if state != cluster.BreakerClosed {
					return false
				}
			}
		}
		return true
	})
	waitFor(t, "remote re-registration on B after heal", func() bool {
		return nodeB.b.Stats().Subscribers == 1
	})

	// Phase 4 — recovery: a post-heal event must arrive (forwards have
	// resumed) exactly once (dedup still holds across the disruption).
	publish("sentinel")
	waitFor(t, "sentinel delivery after heal", func() bool {
		return recorded("sentinel") >= 1
	})
	time.Sleep(300 * time.Millisecond) // allow any duplicate path to land
	if n := recorded("sentinel"); n != 1 {
		t.Errorf("sentinel delivered %d times, want exactly 1", n)
	}

	// Global duplicate check: despite resets, corruption, and the
	// partition, no event ID was ever delivered twice.
	mu.Lock()
	for id, n := range counts {
		if n > 1 {
			t.Errorf("event %s delivered %d times", id, n)
		}
	}
	delivered := len(counts)
	mu.Unlock()
	if delivered == 0 {
		t.Error("no deliveries at all during the soak")
	}
	t.Logf("soak: %d/%d distinct events delivered, injector stats %+v",
		delivered, chaosEvents+partitionEvents+1, inj.Stats())

	// Pipeline invariants on every broker (replay disabled): a delivery
	// implies a match implies a scan.
	for i, tn := range ns {
		st := tn.b.Stats()
		if st.Delivered > st.Matched || st.Matched > st.Scanned {
			t.Errorf("node %d invariant violated: delivered=%d matched=%d scanned=%d",
				i, st.Delivered, st.Matched, st.Scanned)
		}
	}
}
