package cluster_test

import (
	"net"
	"testing"
	"time"

	"thematicep/internal/broker"
	"thematicep/internal/cluster"
	"thematicep/internal/event"
)

// TestStalledPeerTripsBreaker is the no-unbounded-blocking acceptance
// check: a peer whose connection accepts but never progresses (writes
// block forever) must produce timely write-deadline failures and a breaker
// trip — never a wedged forward goroutine — and forwards toward the dead
// peer must shed, counted.
func TestStalledPeerTripsBreaker(t *testing.T) {
	stalled := "stalled-peer:1"
	b := broker.New(exactMatcher())
	defer b.Close()
	node, err := cluster.New(b, cluster.Config{
		Self:             "self:1",
		Peers:            []string{stalled},
		ReconnectMin:     5 * time.Millisecond,
		ReconnectMax:     20 * time.Millisecond,
		WriteTimeout:     50 * time.Millisecond,
		BreakerThreshold: 2,
		BreakerCooldown:  30 * time.Second, // stay open for the assertions
		Dial: func(addr string) (net.Conn, error) {
			// A connection that accepts the dial but stalls forever: the
			// far end of the pipe is never read, so the hello write can
			// only end via the armed write deadline.
			ours, theirs := net.Pipe()
			_ = theirs // held open, never read
			return ours, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	node.Start()

	start := time.Now()
	waitFor(t, "breaker to open on the stalled peer", func() bool {
		return node.PeerStates()[stalled] == cluster.BreakerOpen
	})
	// Two stalled hellos at 50ms each plus backoff: the trip must be
	// timely, not the product of some minutes-long default.
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("breaker took %v to open on a stalled peer", elapsed)
	}
	if st := node.Stats(); st.BreakerTrips == 0 {
		t.Error("BreakerTrips = 0 after an open breaker")
	}

	// Forwards toward the open breaker shed immediately and are counted.
	tag := findTag(t, node.Ring(), stalled)
	if err := node.Publish(&event.Event{
		Theme:  []string{tag},
		Tuples: []event.Tuple{{Attr: "type", Value: "parking event"}},
	}); err != nil {
		t.Fatal(err)
	}
	st := node.Stats()
	if st.ForwardsShed != 1 {
		t.Errorf("ForwardsShed = %d, want 1", st.ForwardsShed)
	}
	if st.PeersOpen != 1 {
		t.Errorf("PeersOpen = %d, want 1", st.PeersOpen)
	}
}

// TestSilentPeerDroppedByHeartbeat: a peer that accepts connections and
// even reads our frames, but never sends anything back, must be detected
// by the heartbeat read deadline — and because the breaker only closes on
// proven liveness (a received frame), the repeated silent connections
// accumulate failures until the breaker opens.
func TestSilentPeerDroppedByHeartbeat(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			// Swallow everything, answer nothing.
			go func() {
				buf := make([]byte, 4096)
				for {
					if _, err := conn.Read(buf); err != nil {
						conn.Close()
						return
					}
				}
			}()
		}
	}()

	b := broker.New(exactMatcher())
	defer b.Close()
	node, err := cluster.New(b, cluster.Config{
		Self:              "self:1",
		Peers:             []string{ln.Addr().String()},
		ReconnectMin:      5 * time.Millisecond,
		ReconnectMax:      20 * time.Millisecond,
		WriteTimeout:      100 * time.Millisecond,
		HeartbeatInterval: 25 * time.Millisecond,
		HeartbeatTimeout:  75 * time.Millisecond,
		BreakerThreshold:  3,
		BreakerCooldown:   30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	node.Start()

	waitFor(t, "heartbeat failures to open the breaker", func() bool {
		return node.PeerStates()[ln.Addr().String()] == cluster.BreakerOpen
	})
}

// TestReconnectAfterPeerRestart: the jittered backoff still reconnects
// promptly when a peer comes back, and the breaker returns to closed.
func TestReconnectAfterPeerRestart(t *testing.T) {
	ns := startCluster(t, 2)
	nodeA, nodeB := ns[0], ns[1]

	waitFor(t, "initial link", func() bool {
		return nodeA.node.Stats().PeersConnected == 1
	})
	// Bounce the link a few times; each drop must heal.
	for i := 0; i < 3; i++ {
		if !nodeA.node.DropPeer(nodeB.addr) {
			t.Fatalf("round %d: no live link to drop", i)
		}
		waitFor(t, "reconnect", func() bool {
			return nodeA.node.Stats().PeersConnected == 1 &&
				nodeA.node.Stats().PeerReconnects >= uint64(i+1)
		})
	}
	if state := nodeA.node.PeerStates()[nodeB.addr]; state != cluster.BreakerClosed {
		t.Errorf("breaker = %v after healthy reconnects, want closed", state)
	}
}
