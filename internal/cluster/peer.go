package cluster

import (
	"net"
	"sync"
	"time"

	"thematicep/internal/broker"
	"thematicep/internal/event"
	"thematicep/internal/telemetry"
)

// forwardItem is one queued forward with its enqueue timestamp, so the hop
// latency (enqueue to successful wire write) is measurable per peer.
type forwardItem struct {
	ev  *event.Event
	enq time.Time
}

// peer is one outbound federation link. The run loop owns the connection:
// it dials with exponential backoff, identifies itself with a hello frame,
// reconciles remote subscription registrations, and drains the bounded
// forward queue. Delivery frames for our remote registrations come back on
// the same connection and are routed by a companion reader goroutine.
type peer struct {
	n    *Node
	id   string // peer node ID == its wire address
	addr string

	queue chan forwardItem // bounded forwards; oldest dropped when full
	nudge chan struct{}    // capacity 1: registration reconcile requests
	done  chan struct{}

	// hop records enqueue-to-wire latency for this link; the peer label
	// keeps every link a distinct series of one shared family.
	hop *telemetry.Histogram

	mu        sync.Mutex
	conn      net.Conn
	connected bool
	stopped   bool
}

func newPeer(n *Node, addr string) *peer {
	return &peer{
		n:     n,
		id:    addr,
		addr:  addr,
		queue: make(chan forwardItem, n.cfg.ForwardQueue),
		nudge: make(chan struct{}, 1),
		done:  make(chan struct{}),
		hop: telemetry.NewHistogram("thematicep_cluster_hop_seconds",
			"Forward hop latency per peer link (enqueue to wire write).",
			telemetry.LatencyBuckets(), telemetry.Label{Key: "peer", Value: addr}),
	}
}

// enqueue offers an event to the forward queue, dropping the oldest queued
// event when full (the broker's overflow policy: publishers never block on
// a slow or dead peer).
func (p *peer) enqueue(e *event.Event) {
	item := forwardItem{ev: e, enq: p.n.broker.Clock().Now()}
	for {
		select {
		case p.queue <- item:
			return
		default:
			select {
			case <-p.queue:
				p.n.ctrQueueDrops.Add(1)
			default:
			}
		}
	}
}

// requestReconcile asks the run loop to diff desired vs. sent remote
// registrations; coalesces while one is pending.
func (p *peer) requestReconcile() {
	select {
	case p.nudge <- struct{}{}:
	default:
	}
}

func (p *peer) stop() {
	p.mu.Lock()
	if p.stopped {
		p.mu.Unlock()
		return
	}
	p.stopped = true
	conn := p.conn
	p.mu.Unlock()
	close(p.done)
	if conn != nil {
		conn.Close()
	}
}

// dropConn severs the live connection (fault injection / admin drain);
// the run loop reconnects with backoff.
func (p *peer) dropConn() bool {
	p.mu.Lock()
	conn := p.conn
	p.mu.Unlock()
	if conn == nil {
		return false
	}
	conn.Close()
	return true
}

func (p *peer) setConn(c net.Conn) {
	p.mu.Lock()
	p.conn = c
	p.connected = c != nil
	stopped := p.stopped
	p.mu.Unlock()
	if stopped && c != nil {
		c.Close()
	}
}

func (p *peer) isConnected() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.connected
}

// sleep waits d or until the peer stops; it reports whether to continue.
func (p *peer) sleep(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-p.done:
		return false
	case <-t.C:
		return true
	}
}

func (p *peer) run() {
	backoff := p.n.cfg.ReconnectMin
	everConnected := false
	for {
		select {
		case <-p.done:
			return
		default:
		}

		conn, err := p.n.cfg.Dial(p.addr)
		if err != nil {
			if !p.sleep(backoff) {
				return
			}
			if backoff *= 2; backoff > p.n.cfg.ReconnectMax {
				backoff = p.n.cfg.ReconnectMax
			}
			continue
		}
		if err := broker.WriteFrame(conn, &broker.Frame{Type: broker.FrameHello, NodeID: p.n.id}); err != nil {
			conn.Close()
			if !p.sleep(backoff) {
				return
			}
			if backoff *= 2; backoff > p.n.cfg.ReconnectMax {
				backoff = p.n.cfg.ReconnectMax
			}
			continue
		}
		if everConnected {
			p.n.ctrReconnects.Add(1)
		}
		everConnected = true
		backoff = p.n.cfg.ReconnectMin
		p.setConn(conn)

		// Reader: deliveries for our remote registrations flow back on
		// this connection. readErr doubles as the link-down signal.
		readErr := make(chan struct{})
		go func() {
			defer close(readErr)
			for {
				f, err := broker.ReadFrame(conn)
				if err != nil {
					return
				}
				if f.Type == broker.FrameDelivery {
					p.n.handleRemoteDelivery(f)
				}
			}
		}()

		// Registrations are connection state: re-sync from scratch.
		sent := make(map[string]bool)
		p.requestReconcile()

		alive := true
		for alive {
			select {
			case <-p.done:
				alive = false
			case <-readErr:
				alive = false
			case <-p.nudge:
				if p.reconcile(conn, sent) != nil {
					alive = false
				}
			case item := <-p.queue:
				if broker.WriteFrame(conn, &broker.Frame{Type: broker.FrameForward, Event: item.ev, NodeID: p.n.id}) != nil {
					alive = false
					break
				}
				// The hop is done once the frame is on the wire; attach it
				// to the event's sampled trace (if any) as a late span so
				// /debug/traces shows the federation leg.
				hop := p.n.broker.Clock().Now().Sub(item.enq)
				p.hop.ObserveDuration(hop)
				p.n.broker.Tracer().AppendSpan(item.ev.ID, "forward:"+p.id, item.enq, hop)
			}
		}
		p.setConn(nil)
		conn.Close()
		<-readErr

		select {
		case <-p.done:
			return
		default:
		}
	}
}

// reconcile diffs the registrations this shard should host for us against
// what this connection has already sent, subscribing and unsubscribing the
// difference. Keeping it as state sync (rather than queued control frames)
// means a dropped queue entry can never lose a registration.
func (p *peer) reconcile(conn net.Conn, sent map[string]bool) error {
	desired := p.n.desiredFor(p.id)
	for id, sub := range desired {
		if sent[id] {
			continue
		}
		if err := broker.WriteFrame(conn, &broker.Frame{Type: broker.FrameSubscribe, Subscription: sub, NodeID: p.n.id}); err != nil {
			return err
		}
		sent[id] = true
	}
	for id := range sent {
		if _, ok := desired[id]; ok {
			continue
		}
		if err := broker.WriteFrame(conn, &broker.Frame{Type: broker.FrameUnsubscribe, SubscriptionID: id, NodeID: p.n.id}); err != nil {
			return err
		}
		delete(sent, id)
	}
	return nil
}
