package cluster

import (
	"math/rand/v2"
	"net"
	"sync"
	"time"

	"thematicep/internal/broker"
	"thematicep/internal/event"
	"thematicep/internal/telemetry"
)

// forwardItem is one queued forward with its enqueue timestamp, so the hop
// latency (enqueue to successful wire write) is measurable per peer. A
// batched forward carries its events in evs (ev nil) and goes out as one
// forwardb frame. tc is the propagated trace context, set only when the
// event (or batch) is trace-sampled at this node — it rides the frame so
// the receiving peer continues the same cross-cluster trace.
type forwardItem struct {
	ev  *event.Event
	evs []*event.Event
	enq time.Time
	tc  *telemetry.TraceContext
}

// count is how many events the item represents, for drop/shed accounting.
func (it forwardItem) count() uint64 {
	if it.evs != nil {
		return uint64(len(it.evs))
	}
	return 1
}

// peer is one outbound federation link. The run loop owns the connection:
// it dials with jittered exponential backoff gated by a circuit breaker,
// identifies itself with a hello frame, reconciles remote subscription
// registrations, exchanges heartbeats, and drains the bounded forward
// queue. Delivery frames for our remote registrations come back on the
// same connection and are routed by a companion reader goroutine.
//
// Every read and write on the link carries a deadline: writes are bounded
// by Config.WriteTimeout and reads by Config.HeartbeatTimeout, so a
// stalled TCP peer surfaces as a timed-out operation and a breaker
// failure, never as a wedged goroutine.
type peer struct {
	n    *Node
	id   string // peer node ID == its wire address
	addr string

	queue chan forwardItem // bounded forwards; oldest dropped when full
	nudge chan struct{}    // capacity 1: registration reconcile requests
	done  chan struct{}

	// bk gates dialing and sheds forwards while the peer is considered
	// down. Success is recorded only when the peer proves liveness by
	// sending a frame back, so a wedged-but-accepting TCP peer still
	// accumulates failures.
	bk *breaker

	// hop records enqueue-to-wire latency for this link; the peer label
	// keeps every link a distinct series of one shared family.
	hop *telemetry.Histogram

	mu        sync.Mutex
	conn      net.Conn
	connected bool
	stopped   bool
}

func newPeer(n *Node, addr string) *peer {
	return &peer{
		n:     n,
		id:    addr,
		addr:  addr,
		queue: make(chan forwardItem, n.cfg.ForwardQueue),
		nudge: make(chan struct{}, 1),
		done:  make(chan struct{}),
		bk:    newBreaker(n.cfg.BreakerThreshold, n.cfg.BreakerCooldown, nil),
		hop: telemetry.NewHistogram("thematicep_cluster_hop_seconds",
			"Forward hop latency per peer link (enqueue to wire write).",
			telemetry.LatencyBuckets(), telemetry.Label{Key: "peer", Value: addr}),
	}
}

// enqueue offers an event to the forward queue and reports whether it was
// accepted. While the peer's breaker is not closed the forward is shed
// immediately (the peer is down; queueing would only delay the drop and
// hold memory), otherwise the oldest queued event is dropped when the
// queue is full (the broker's overflow policy: publishers never block on a
// slow or dead peer).
func (p *peer) enqueue(e *event.Event, tc *telemetry.TraceContext) bool {
	return p.offer(forwardItem{ev: e, enq: p.n.broker.Clock().Now(), tc: tc})
}

// enqueueBatch offers a re-batched forward as one queue item; the whole
// sub-batch is shed or dropped together (accounted per event).
func (p *peer) enqueueBatch(evs []*event.Event, tc *telemetry.TraceContext) bool {
	return p.offer(forwardItem{evs: evs, enq: p.n.broker.Clock().Now(), tc: tc})
}

func (p *peer) offer(item forwardItem) bool {
	if p.bk.State() != BreakerClosed {
		return false
	}
	for {
		select {
		case p.queue <- item:
			return true
		default:
			select {
			case old := <-p.queue:
				p.n.ctrQueueDrops.Add(old.count())
			default:
			}
		}
	}
}

// requestReconcile asks the run loop to diff desired vs. sent remote
// registrations; coalesces while one is pending.
func (p *peer) requestReconcile() {
	select {
	case p.nudge <- struct{}{}:
	default:
	}
}

func (p *peer) stop() {
	p.mu.Lock()
	if p.stopped {
		p.mu.Unlock()
		return
	}
	p.stopped = true
	conn := p.conn
	p.mu.Unlock()
	close(p.done)
	if conn != nil {
		conn.Close()
	}
}

// fail records one link-level failure; if the streak opens the breaker,
// the peer becomes a membership suspect (direct evidence it is down) and
// the suspicion gossips out from the next heartbeat exchange.
func (p *peer) fail() {
	p.bk.Failure()
	if p.bk.State() != BreakerClosed {
		p.n.observeDown(p.id)
	}
}

// dropConn severs the live connection (fault injection / admin drain);
// the run loop reconnects with backoff.
func (p *peer) dropConn() bool {
	p.mu.Lock()
	conn := p.conn
	p.mu.Unlock()
	if conn == nil {
		return false
	}
	conn.Close()
	return true
}

func (p *peer) setConn(c net.Conn) {
	p.mu.Lock()
	p.conn = c
	p.connected = c != nil
	stopped := p.stopped
	p.mu.Unlock()
	if stopped && c != nil {
		c.Close()
	}
}

func (p *peer) isConnected() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.connected
}

// writeFrame writes one frame with the link write deadline armed, so a
// stalled peer produces a timeout error instead of blocking the run loop.
func (p *peer) writeFrame(conn net.Conn, f *broker.Frame) error {
	conn.SetWriteDeadline(time.Now().Add(p.n.cfg.WriteTimeout))
	return broker.WriteFrame(conn, f)
}

// sleep waits d or until the peer stops; it reports whether to continue.
func (p *peer) sleep(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-p.done:
		return false
	case <-t.C:
		return true
	}
}

// sleepBackoff sleeps a full-jitter draw from (0, backoff] and doubles the
// ceiling toward ReconnectMax. Full jitter desynchronizes redials: when a
// restarted shard comes back, its peers reconnect spread over the backoff
// window instead of as a thundering herd of simultaneous dials.
func (p *peer) sleepBackoff(backoff *time.Duration) bool {
	d := time.Duration(rand.Int64N(int64(*backoff))) + 1
	if !p.sleep(d) {
		return false
	}
	if *backoff *= 2; *backoff > p.n.cfg.ReconnectMax {
		*backoff = p.n.cfg.ReconnectMax
	}
	return true
}

// breakerWait is how long the run loop dozes between Allow polls while the
// breaker is open: an eighth of the cooldown, clamped to [5ms, 250ms].
func (p *peer) breakerWait() time.Duration {
	d := p.n.cfg.BreakerCooldown / 8
	if d < 5*time.Millisecond {
		d = 5 * time.Millisecond
	}
	if d > 250*time.Millisecond {
		d = 250 * time.Millisecond
	}
	return d
}

func (p *peer) run() {
	backoff := p.n.cfg.ReconnectMin
	everConnected := false
	for {
		select {
		case <-p.done:
			return
		default:
		}

		if !p.bk.Allow() {
			if !p.sleep(p.breakerWait()) {
				return
			}
			continue
		}

		conn, err := p.n.cfg.Dial(p.addr)
		if err != nil {
			p.fail()
			if !p.sleepBackoff(&backoff) {
				return
			}
			continue
		}
		// Hello, then an immediate ping: the breaker closes only when the
		// peer answers (first frame received), so an accepting-but-dead
		// endpoint cannot reset the failure streak by merely accepting.
		// Both frames carry the membership view — the hello introduces us
		// (and everyone we know about) to the peer.
		if p.writeFrame(conn, &broker.Frame{Type: broker.FrameHello, NodeID: p.n.id,
			MetricsAddr: p.n.cfg.MetricsAddr, Members: p.n.gossip()}) != nil ||
			p.writeFrame(conn, &broker.Frame{Type: broker.FramePing, NodeID: p.n.id, Members: p.n.gossip()}) != nil {
			conn.Close()
			p.fail()
			if !p.sleepBackoff(&backoff) {
				return
			}
			continue
		}
		if everConnected {
			p.n.ctrReconnects.Add(1)
		}
		everConnected = true
		backoff = p.n.cfg.ReconnectMin
		p.setConn(conn)

		// Reader: deliveries for our remote registrations flow back on
		// this connection. readErr doubles as the link-down signal. Each
		// read is bounded by the heartbeat timeout — the peer's pongs (or
		// its traffic) must keep arriving or the link is declared dead.
		readErr := make(chan struct{})
		go func() {
			defer close(readErr)
			first := true
			for {
				conn.SetReadDeadline(time.Now().Add(p.n.cfg.HeartbeatTimeout))
				f, err := broker.ReadFrame(conn)
				if err != nil {
					return
				}
				if first {
					first = false
					p.bk.Success() // liveness proven: half-open probe passes
				}
				switch f.Type {
				case broker.FrameDelivery:
					p.n.handleRemoteDelivery(f)
				case broker.FramePong:
					// Pongs answer our pings with the peer's membership
					// view: fold it in (this is where suspect rumors about
					// us arrive, triggering incarnation-bump refutation).
					p.n.mergeGossip(f.Members)
				}
			}
		}()

		// Registrations are connection state: re-sync from scratch.
		sent := make(map[string]bool)
		p.requestReconcile()

		hb := time.NewTicker(p.n.cfg.HeartbeatInterval)
		alive, linkFailed := true, false
		for alive {
			select {
			case <-p.done:
				alive = false
			case <-readErr:
				alive, linkFailed = false, true
			case <-hb.C:
				if p.writeFrame(conn, &broker.Frame{Type: broker.FramePing, NodeID: p.n.id, Members: p.n.gossip()}) != nil {
					alive, linkFailed = false, true
				}
			case <-p.nudge:
				if p.reconcile(conn, sent) != nil {
					alive, linkFailed = false, true
				}
			case item := <-p.queue:
				fr := &broker.Frame{Type: broker.FrameForward, Event: item.ev, NodeID: p.n.id, Trace: item.tc}
				if item.evs != nil {
					fr = &broker.Frame{Type: broker.FrameForwardBatch, Events: item.evs, NodeID: p.n.id, Trace: item.tc}
				}
				if p.writeFrame(conn, fr) != nil {
					alive, linkFailed = false, true
					break
				}
				// The hop is done once the frame is on the wire; attach it
				// to the sampled trace (if any) as a late span so
				// /debug/traces shows the federation leg. A batched
				// forward observes one hop per frame and attaches through
				// its first event — any member ID resolves to the batch
				// trace.
				hop := p.n.broker.Clock().Now().Sub(item.enq)
				p.hop.ObserveDuration(hop)
				if item.evs == nil {
					p.n.broker.Tracer().AppendSpan(item.ev.ID, "forward:"+p.id, item.enq, hop)
				} else {
					p.n.broker.Tracer().AppendSpan(item.evs[0].ID, "forward:"+p.id, item.enq, hop)
				}
			}
		}
		hb.Stop()
		p.setConn(nil)
		conn.Close()
		<-readErr
		if linkFailed {
			select {
			case <-p.done:
				// Shutting down: the severed link is ours, not a peer fault.
			default:
				p.fail()
			}
		}

		select {
		case <-p.done:
			return
		default:
		}
	}
}

// reconcile diffs the registrations this shard should host for us against
// what this connection has already sent, subscribing and unsubscribing the
// difference. Keeping it as state sync (rather than queued control frames)
// means a dropped queue entry can never lose a registration.
func (p *peer) reconcile(conn net.Conn, sent map[string]bool) error {
	desired := p.n.desiredFor(p.id)
	for id, sub := range desired {
		if sent[id] {
			continue
		}
		if err := p.writeFrame(conn, &broker.Frame{Type: broker.FrameSubscribe, Subscription: sub, NodeID: p.n.id}); err != nil {
			return err
		}
		sent[id] = true
	}
	for id := range sent {
		if _, ok := desired[id]; ok {
			continue
		}
		if err := p.writeFrame(conn, &broker.Frame{Type: broker.FrameUnsubscribe, SubscriptionID: id, NodeID: p.n.id}); err != nil {
			return err
		}
		delete(sent, id)
	}
	return nil
}
