package cluster_test

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"thematicep/internal/broker"
	"thematicep/internal/cluster"
	"thematicep/internal/event"
)

// testNode is one in-process federation member: broker + wire server +
// cluster node, all on a real TCP loopback port.
type testNode struct {
	b    *broker.Broker
	srv  *broker.Server
	node *cluster.Node
	addr string
}

func exactMatcher() broker.Matcher {
	return broker.MatchFunc(func(s *event.Subscription, e *event.Event) float64 {
		if event.ExactMatch(s, e) {
			return 1
		}
		return 0
	})
}

func startCluster(t *testing.T, size int) []*testNode {
	t.Helper()
	ns := make([]*testNode, size)
	addrs := make([]string, size)
	for i := range ns {
		b := broker.New(exactMatcher())
		srv := broker.NewServer(b)
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		ns[i] = &testNode{b: b, srv: srv, addr: addr.String()}
		addrs[i] = addr.String()
	}
	for i, tn := range ns {
		var peers []string
		for j, a := range addrs {
			if j != i {
				peers = append(peers, a)
			}
		}
		node, err := cluster.New(tn.b, cluster.Config{
			Self:         tn.addr,
			Peers:        peers,
			ReconnectMin: 10 * time.Millisecond,
			ReconnectMax: 200 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		tn.srv.SetBackend(node)
		tn.srv.SetPeerHandler(node)
		tn.node = node
	}
	for _, tn := range ns {
		tn.node.Start()
	}
	t.Cleanup(func() {
		for _, tn := range ns {
			tn.node.Close()
			tn.srv.Close()
			tn.b.Close()
		}
	})
	return ns
}

// findTag searches for a theme tag the given node owns on the ring.
func findTag(t *testing.T, r *cluster.Ring, owner string) string {
	t.Helper()
	for i := 0; i < 5000; i++ {
		tag := fmt.Sprintf("theme-%d", i)
		if r.Owner(tag) == owner {
			return tag
		}
	}
	t.Fatalf("no tag owned by %q in 5000 candidates", owner)
	return ""
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func recvDelivery(t *testing.T, ch <-chan broker.Delivery) broker.Delivery {
	t.Helper()
	select {
	case d, ok := <-ch:
		if !ok {
			t.Fatal("delivery channel closed")
		}
		return d
	case <-time.After(10 * time.Second):
		t.Fatal("timed out waiting for delivery")
	}
	panic("unreachable")
}

func assertQuiet(t *testing.T, ch <-chan broker.Delivery, d time.Duration) {
	t.Helper()
	select {
	case got, ok := <-ch:
		if ok {
			t.Fatalf("unexpected extra delivery: %+v", got)
		}
		t.Fatal("delivery channel closed unexpectedly")
	case <-time.After(d):
	}
}

func metricValue(t *testing.T, body, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err != nil {
				t.Fatalf("bad value for %s: %v", name, err)
			}
			return v
		}
	}
	t.Fatalf("metric %s not found in:\n%s", name, body)
	return 0
}

func scrape(t *testing.T, tn *testNode) string {
	t.Helper()
	ms := httptest.NewServer(broker.MetricsHandler(tn.b, tn.node))
	defer ms.Close()
	resp, err := http.Get(ms.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// TestThreeBrokerFederation is the acceptance scenario: an event published
// at broker A reaches a matching thematic subscriber attached to broker C
// exactly once even though its theme set is owned by two shards (dedup),
// keeps flowing after a peer link is killed and reconnects, and the
// federation counters surface through the Prometheus handler.
func TestThreeBrokerFederation(t *testing.T) {
	ns := startCluster(t, 3)
	nodeA, nodeB, nodeC := ns[0], ns[1], ns[2]
	ring := nodeC.node.Ring()
	tagB := findTag(t, ring, nodeB.addr)
	tagC := findTag(t, ring, nodeC.addr)

	// Thematic subscriber attached to broker C; its theme set spans the B
	// and C shards, so it is registered locally at C and remotely at B.
	consumer, err := broker.Dial(nodeC.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer consumer.Close()
	sub := &event.Subscription{
		Theme:      []string{tagB, tagC},
		Predicates: []event.Predicate{{Attr: "type", Value: "parking event"}},
	}
	id, deliveries, err := consumer.Subscribe(sub, false)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(id, nodeC.addr) {
		t.Errorf("subscription id %q should carry the home shard identity", id)
	}
	waitFor(t, "remote registration on B", func() bool {
		return nodeB.b.Stats().Subscribers == 1
	})

	producer, err := broker.Dial(nodeA.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer producer.Close()
	publish := func(spot string) {
		t.Helper()
		if err := producer.Publish(&event.Event{
			Theme: []string{tagB, tagC},
			Tuples: []event.Tuple{
				{Attr: "type", Value: "parking event"},
				{Attr: "spot", Value: spot},
			},
		}); err != nil {
			t.Fatal(err)
		}
	}

	// Exactly once: the event matches on both the B and C shards; the C
	// node must suppress the second copy by event ID.
	publish("e1")
	d := recvDelivery(t, deliveries)
	if v, _ := d.Event.Value("spot"); v != "e1" || d.SubscriptionID != id {
		t.Fatalf("delivery = %+v, want spot=e1 for %s", d, id)
	}
	assertQuiet(t, deliveries, 400*time.Millisecond)
	waitFor(t, "dedup of the duplicate shard match", func() bool {
		return nodeC.node.Stats().Deduped >= 1
	})

	// Kill the C->B peer link; it must reconnect with backoff and
	// re-register the remote subscription.
	if !nodeC.node.DropPeer(nodeB.addr) {
		t.Fatal("no live link to B to drop")
	}
	waitFor(t, "peer reconnect", func() bool {
		return nodeC.node.Stats().PeerReconnects >= 1
	})
	waitFor(t, "remote re-registration on B", func() bool {
		return nodeB.b.Stats().Subscribers >= 1
	})

	// Traffic keeps flowing after the blip, still exactly once.
	publish("e2")
	d = recvDelivery(t, deliveries)
	if v, _ := d.Event.Value("spot"); v != "e2" {
		t.Fatalf("post-reconnect delivery = %+v, want spot=e2", d)
	}
	assertQuiet(t, deliveries, 400*time.Millisecond)

	// Cluster counters are visible through the Prometheus handler.
	bodyA := scrape(t, nodeA)
	if got := metricValue(t, bodyA, "thematicep_cluster_forwarded_total"); got != 4 {
		t.Errorf("A forwarded_total = %v, want 4 (2 events x 2 owner shards)", got)
	}
	bodyC := scrape(t, nodeC)
	if got := metricValue(t, bodyC, "thematicep_cluster_deduped_total"); got < 1 {
		t.Errorf("C deduped_total = %v, want >= 1", got)
	}
	if got := metricValue(t, bodyC, "thematicep_cluster_peer_reconnects_total"); got < 1 {
		t.Errorf("C peer_reconnects_total = %v, want >= 1", got)
	}
	if !strings.Contains(bodyA, "# TYPE thematicep_cluster_forwarded_total counter") {
		t.Error("cluster counters should be typed counter")
	}

	// Unsubscribing tears the remote registration down as well.
	if err := consumer.Unsubscribe(id); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "remote deregistration on B", func() bool {
		return nodeB.b.Stats().Subscribers == 0
	})
}

// TestSubscribeRedirect: a themed subscription arriving at a broker owning
// none of its themes is redirected to the owning shard, and following the
// redirect succeeds.
func TestSubscribeRedirect(t *testing.T) {
	ns := startCluster(t, 3)
	nodeA := ns[0]
	ring := nodeA.node.Ring()
	tagB := findTag(t, ring, ns[1].addr)

	c, err := broker.Dial(nodeA.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	sub := &event.Subscription{
		Theme:      []string{tagB},
		Predicates: []event.Predicate{{Attr: "type", Value: "parking event"}},
	}
	_, _, err = c.Subscribe(sub, false)
	var redirect *broker.RedirectError
	if !errors.As(err, &redirect) {
		t.Fatalf("expected redirect, got %v", err)
	}
	if redirect.Addr != ns[1].addr {
		t.Fatalf("redirected to %q, want owning shard %q", redirect.Addr, ns[1].addr)
	}

	c2, err := broker.Dial(redirect.Addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if _, _, err := c2.Subscribe(sub, false); err != nil {
		t.Fatalf("subscribe at owning shard: %v", err)
	}
}

// TestThemelessSubscriptionSpansAllShards: a subscription without theme
// tags has no partition key, so it is registered on every shard and sees
// events published anywhere — still exactly once.
func TestThemelessSubscriptionSpansAllShards(t *testing.T) {
	ns := startCluster(t, 3)
	nodeA, nodeB, nodeC := ns[0], ns[1], ns[2]

	consumer, err := broker.Dial(nodeA.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer consumer.Close()
	sub := &event.Subscription{
		Predicates: []event.Predicate{{Attr: "type", Value: "parking event"}},
	}
	_, deliveries, err := consumer.Subscribe(sub, false)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "remote registrations on B and C", func() bool {
		return nodeB.b.Stats().Subscribers == 1 && nodeC.b.Stats().Subscribers == 1
	})

	// Publish at B an event whose only theme is owned by C: it matches
	// B's copy locally and C's copy after forwarding; A must deliver once.
	tagC := findTag(t, nodeB.node.Ring(), nodeC.addr)
	producer, err := broker.Dial(nodeB.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer producer.Close()
	if err := producer.Publish(&event.Event{
		Theme:  []string{tagC},
		Tuples: []event.Tuple{{Attr: "type", Value: "parking event"}},
	}); err != nil {
		t.Fatal(err)
	}
	d := recvDelivery(t, deliveries)
	if d.Event == nil || len(d.Event.Theme) != 1 {
		t.Fatalf("delivery = %+v", d)
	}
	assertQuiet(t, deliveries, 400*time.Millisecond)
}

// TestEmbeddedNodePublishSubscribe uses the Node API directly (no TCP
// client), the path examples and embedding applications take.
func TestEmbeddedNodePublishSubscribe(t *testing.T) {
	ns := startCluster(t, 2)
	nodeA, nodeB := ns[0], ns[1]
	tagB := findTag(t, nodeA.node.Ring(), nodeB.addr)

	sub := &event.Subscription{
		Theme:      []string{tagB},
		Predicates: []event.Predicate{{Attr: "type", Value: "parking event"}},
	}
	h, err := nodeA.node.SubscribeHandle(sub)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	waitFor(t, "remote registration on B", func() bool {
		return nodeB.b.Stats().Subscribers == 1
	})

	if err := nodeB.node.Publish(&event.Event{
		Theme:  []string{tagB},
		Tuples: []event.Tuple{{Attr: "type", Value: "parking event"}},
	}); err != nil {
		t.Fatal(err)
	}
	d := recvDelivery(t, h.C())
	if d.SubscriptionID != h.ID() {
		t.Errorf("delivery sub id = %q, want %q", d.SubscriptionID, h.ID())
	}
	assertQuiet(t, h.C(), 300*time.Millisecond)
}
