package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"thematicep/internal/broker"
	"thematicep/internal/event"
	"thematicep/internal/telemetry"
)

// Config describes one broker's place in the federation.
type Config struct {
	// Self is this node's identity: the wire address its peers dial
	// (host:port). It doubles as the shard ID on the ring.
	Self string
	// Peers are other members' wire addresses, honored as static seeds:
	// the node keeps a link to every configured peer for its whole life
	// (even through death rumors), and the rest of the federation is
	// discovered from them by gossip. Members no longer need identical
	// peer lists — the rings converge through the membership exchange.
	Peers []string
	// Seeds are additional bootstrap addresses, merged with Peers. A node
	// needs at least one reachable seed to join an existing federation; a
	// node with none starts a federation of one and waits to be dialed.
	Seeds []string
	// SuspectTimeout is how long an unreachable member stays suspect
	// before it is declared dead and removed from the ring (default 10s).
	// Suspects keep their shards — only confirmed-dead members trigger a
	// rebalance — so the timeout trades failover latency against ring
	// stability under transient partitions.
	SuspectTimeout time.Duration
	// VirtualNodes per member on the ring (DefaultVirtualNodes when 0).
	VirtualNodes int
	// ForwardQueue bounds each peer's outbound event queue (default 256).
	// When full the oldest queued event is dropped, mirroring the
	// broker's subscriber overflow policy.
	ForwardQueue int
	// DedupWindow is how many recent event IDs each subscription
	// remembers for duplicate suppression (default 1024).
	DedupWindow int
	// QueueSize buffers each federated subscription's delivery channel
	// (default 64), with the same drop-oldest overflow policy.
	QueueSize int
	// ReconnectMin/ReconnectMax bound the full-jitter exponential backoff
	// between peer dial attempts (defaults 50ms and 2s).
	ReconnectMin time.Duration
	ReconnectMax time.Duration
	// WriteTimeout bounds every frame write on a peer link (default 2s).
	// A stalled TCP peer surfaces as a timed-out write and a breaker
	// failure, never as a wedged forward goroutine.
	WriteTimeout time.Duration
	// HeartbeatInterval is how often a link sends ping frames (default
	// 1s); HeartbeatTimeout is how long a link may stay silent before the
	// read deadline declares it dead (default 3x the interval, and always
	// at least one interval).
	HeartbeatInterval time.Duration
	HeartbeatTimeout  time.Duration
	// BreakerThreshold is how many consecutive connection-level failures
	// (failed dial, failed hello, link death) open a peer's circuit
	// breaker (default 5). While open, forwards to that peer are shed
	// immediately (counted in Stats.ForwardsShed) instead of queueing,
	// and dials pause for BreakerCooldown (default 1s) before a single
	// half-open probe is attempted.
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// Dial overrides the peer dialer (tests, fault injection); default is
	// net.DialTimeout("tcp", addr, WriteTimeout).
	Dial func(addr string) (net.Conn, error)
	// MetricsAddr is this node's metrics/debug HTTP address (host:port),
	// advertised to peers in hello frames so every member can serve a
	// cluster scrape directory (/debug/peers) that themctl's -cluster
	// mode discovers the federation from. Empty means not advertised.
	MetricsAddr string
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.ForwardQueue <= 0 {
		out.ForwardQueue = 256
	}
	if out.DedupWindow <= 0 {
		out.DedupWindow = 1024
	}
	if out.QueueSize <= 0 {
		out.QueueSize = 64
	}
	if out.ReconnectMin <= 0 {
		out.ReconnectMin = 50 * time.Millisecond
	}
	if out.ReconnectMax < out.ReconnectMin {
		out.ReconnectMax = 2 * time.Second
	}
	if out.WriteTimeout <= 0 {
		out.WriteTimeout = 2 * time.Second
	}
	if out.HeartbeatInterval <= 0 {
		out.HeartbeatInterval = time.Second
	}
	if out.HeartbeatTimeout < out.HeartbeatInterval {
		out.HeartbeatTimeout = 3 * out.HeartbeatInterval
	}
	if out.BreakerThreshold <= 0 {
		out.BreakerThreshold = 5
	}
	if out.BreakerCooldown <= 0 {
		out.BreakerCooldown = time.Second
	}
	if out.SuspectTimeout <= 0 {
		out.SuspectTimeout = 10 * time.Second
	}
	if out.Dial == nil {
		timeout := out.WriteTimeout
		out.Dial = func(addr string) (net.Conn, error) { return net.DialTimeout("tcp", addr, timeout) }
	}
	return out
}

// Stats are the federation counters; all *_total values are cumulative.
type Stats struct {
	Forwarded        uint64 // events enqueued toward peer shards
	Received         uint64 // forwarded events accepted from peers
	Deduped          uint64 // duplicate deliveries suppressed by event ID
	PeerReconnects   uint64 // successful peer connections after a drop
	QueueDrops       uint64 // forwards dropped by the bounded peer queues
	ForwardsShed     uint64 // forwards shed because a peer's breaker was not closed
	BreakerTrips     uint64 // circuit-breaker transitions to open, summed over peers
	RemoteDeliveries uint64 // matches sent back to a peer's subscriber
	RemoteSubs       int    // remote registrations currently hosted here
	Peers            int    // configured peer links
	PeersConnected   int    // peer links currently established
	PeersOpen        int    // peer links whose breaker is currently open or half-open
}

// Node federates a local broker with its peers. It implements
// broker.Backend (so a broker.Server can route client traffic through it),
// broker.PeerHandler (inbound federation connections), and
// broker.SubscribeRedirector (pointing clients at the owning shard).
type Node struct {
	cfg    Config
	id     string
	broker *broker.Broker
	ms     *membership

	// ringPtr holds the current shard ring, rebuilt and swapped whole on
	// every membership change; readers load it lock-free.
	ringPtr atomic.Pointer[Ring]

	// pmu guards the live peer-link table: links are added when gossip
	// discovers a member and removed when a non-seed member dies.
	pmu   sync.RWMutex
	peers map[string]*peer

	// applyMu serializes applyMembership so ring swap and link reconcile
	// stay a single logical step.
	applyMu        sync.Mutex
	appliedVersion atomic.Uint64

	mu         sync.Mutex
	edges      map[string]*edgeSub
	started    bool
	closed     bool
	reaperDone chan struct{}

	nextSub   atomic.Uint64
	nextEvent atomic.Uint64

	ctrForwarded  atomic.Uint64
	ctrReceived   atomic.Uint64
	ctrDeduped    atomic.Uint64
	ctrReconnects atomic.Uint64
	ctrQueueDrops atomic.Uint64
	ctrShed       atomic.Uint64
	ctrRemoteDel  atomic.Uint64
	remoteSubs    atomic.Int64
}

// New wraps a local broker in a federation node. The node does not dial
// anyone until Start.
func New(b *broker.Broker, cfg Config) (*Node, error) {
	if cfg.Self == "" {
		return nil, fmt.Errorf("cluster: Self identity required")
	}
	c := cfg.withDefaults()
	seeds := append(append([]string(nil), c.Peers...), c.Seeds...)
	n := &Node{
		cfg:        c,
		id:         c.Self,
		broker:     b,
		ms:         newMembership(c.Self, c.MetricsAddr, seeds),
		peers:      make(map[string]*peer),
		edges:      make(map[string]*edgeSub),
		reaperDone: make(chan struct{}),
	}
	n.ringPtr.Store(NewRing(n.ms.RingMembers(), c.VirtualNodes))
	for _, m := range n.ms.Snapshot() {
		if m.Node != c.Self {
			n.peers[m.Node] = newPeer(n, m.Node)
		}
	}
	return n, nil
}

// Start opens the outbound peer links and the membership reaper. Links
// that cannot connect retry forever with exponential backoff, so peers may
// start in any order.
func (n *Node) Start() {
	n.mu.Lock()
	if n.started || n.closed {
		n.mu.Unlock()
		return
	}
	n.started = true
	n.mu.Unlock()
	n.pmu.RLock()
	for _, p := range n.peers {
		go p.run()
	}
	n.pmu.RUnlock()
	go n.reaper()
}

// reaper ages suspect members toward dead and re-applies the membership
// view whenever its version has drifted past what the ring reflects (a
// catch-all for merge paths racing each other).
func (n *Node) reaper() {
	tick := n.cfg.SuspectTimeout / 4
	if tick < 5*time.Millisecond {
		tick = 5 * time.Millisecond
	}
	if tick > time.Second {
		tick = time.Second
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-n.reaperDone:
			return
		case now := <-t.C:
			if n.ms.Reap(n.cfg.SuspectTimeout, now) || n.ms.Version() != n.appliedVersion.Load() {
				n.applyMembership()
			}
		}
	}
}

// Ring exposes the node's current view of the shard ring.
func (n *Node) Ring() *Ring { return n.ringPtr.Load() }

// Members returns the node's membership view (self first).
func (n *Node) Members() []Member { return n.ms.Snapshot() }

// gossip renders the membership view for piggybacking on link frames.
func (n *Node) gossip() []broker.MemberInfo { return n.ms.Gossip() }

// mergeGossip folds a received membership payload into the view and
// rebuilds the ring if anything changed.
func (n *Node) mergeGossip(infos []broker.MemberInfo) {
	if len(infos) == 0 {
		return
	}
	if n.ms.Merge(infos, time.Now()) {
		n.applyMembership()
	}
}

// observeDown records direct evidence (an opened circuit breaker) that a
// member is unreachable, moving it alive -> suspect.
func (n *Node) observeDown(id string) {
	if n.ms.ObserveDown(id, time.Now()) {
		n.applyMembership()
	}
}

// applyMembership makes the node's runtime state match the membership
// view: rebuild the ring from the live members, open links to newly
// discovered members, drop links to dead non-seed members, recompute every
// federated subscription's owning shards, and nudge all links so the
// desired-vs-sent reconcile loops hand registrations off to their new
// owners. Idempotent; safe to call from any goroutine.
func (n *Node) applyMembership() {
	n.applyMu.Lock()
	defer n.applyMu.Unlock()

	version := n.ms.Version()
	ring := NewRing(n.ms.RingMembers(), n.cfg.VirtualNodes)
	n.ringPtr.Store(ring)

	n.mu.Lock()
	started, closed := n.started, n.closed
	n.mu.Unlock()
	if closed {
		return
	}

	// Reconcile links: every non-dead member keeps (or gains) a link;
	// seeds additionally keep theirs while dead so a restarted seed is
	// redialed without waiting for it to find us.
	var opened []*peer
	var dropped []*peer
	n.pmu.Lock()
	for _, m := range n.ms.Snapshot() {
		if m.Node == n.id {
			continue
		}
		if m.State == MemberDead && !m.Seed {
			if p := n.peers[m.Node]; p != nil {
				dropped = append(dropped, p)
				delete(n.peers, m.Node)
			}
			continue
		}
		if n.peers[m.Node] == nil {
			p := newPeer(n, m.Node)
			n.peers[m.Node] = p
			opened = append(opened, p)
		}
	}
	n.pmu.Unlock()
	for _, p := range dropped {
		p.stop()
	}
	if started {
		for _, p := range opened {
			go p.run()
		}
	}

	// Re-own every federated subscription under the new ring; the nudged
	// reconcile loops subscribe on new owners and unsubscribe from old.
	n.mu.Lock()
	for _, e := range n.edges {
		var owners []string
		for _, o := range ring.Owners(e.sub.Theme) {
			if o != n.id {
				owners = append(owners, o)
			}
		}
		e.owners = owners
	}
	n.mu.Unlock()
	n.appliedVersion.Store(version)
	n.nudgeAll()
}

// nudgeAll asks every peer link to reconcile remote registrations.
func (n *Node) nudgeAll() {
	n.pmu.RLock()
	defer n.pmu.RUnlock()
	for _, p := range n.peers {
		p.requestReconcile()
	}
}

// getPeer returns the live link to a member, if any.
func (n *Node) getPeer(id string) *peer {
	n.pmu.RLock()
	defer n.pmu.RUnlock()
	return n.peers[id]
}

// peersSnapshot copies the live link table.
func (n *Node) peersSnapshot() map[string]*peer {
	n.pmu.RLock()
	defer n.pmu.RUnlock()
	out := make(map[string]*peer, len(n.peers))
	for id, p := range n.peers {
		out[id] = p
	}
	return out
}

// ID returns the node's shard identity (its advertised address).
func (n *Node) ID() string { return n.id }

// Close tears down the peer links and every federated subscription. The
// underlying broker is left open (the caller owns it).
func (n *Node) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	started := n.started
	edges := make([]*edgeSub, 0, len(n.edges))
	for _, e := range n.edges {
		edges = append(edges, e)
	}
	n.mu.Unlock()

	if started {
		close(n.reaperDone)
	}
	for _, p := range n.peersSnapshot() {
		p.stop()
	}
	for _, e := range edges {
		e.Close()
	}
}

// Publish accepts an event locally and forwards it to every peer whose
// shard overlaps the event's theme set. Events without an ID are assigned
// one so downstream de-duplication can identify re-deliveries.
func (n *Node) Publish(e *event.Event) error {
	if e == nil {
		return broker.ErrNilEvent
	}
	ev := e
	if ev.ID == "" {
		cp := *e
		cp.ID = fmt.Sprintf("%s/e%d", n.id, n.nextEvent.Add(1))
		ev = &cp
	}
	if err := n.broker.Publish(ev); err != nil {
		return err
	}
	// If the local publish sampled a trace, forward its context so the
	// owning peers continue the same span tree. Publish is synchronous, so
	// the trace is already in the ring and ContextFor resolves it.
	var tc *telemetry.TraceContext
	if c, ok := n.broker.Tracer().ContextFor(ev.ID); ok {
		tc = &c
	}
	for _, owner := range n.Ring().Owners(ev.Theme) {
		if owner == n.id {
			continue
		}
		if p := n.getPeer(owner); p != nil {
			if p.enqueue(ev, tc) {
				n.ctrForwarded.Add(1)
			} else {
				// The peer's breaker is open (or probing): shed now rather
				// than queue toward a dead link. Never silent — counted and
				// exported.
				n.ctrShed.Add(1)
			}
		}
	}
	return nil
}

// maxForwardBatch caps one forwardb frame's event count: a re-batched
// forward larger than this is split, bounding frame size and the work one
// queue item represents.
const maxForwardBatch = 256

// PublishBatch accepts a batch locally through the broker's batched
// pipeline, then re-batches the admitted events per owning peer shard: one
// forwardb frame per destination (split at maxForwardBatch) instead of one
// forward frame per event. Admission is all-or-nothing, matching
// broker.PublishBatch; forwarding inherits Publish's shed/drop policy with
// whole sub-batches counted event-by-event.
func (n *Node) PublishBatch(events []*event.Event) error {
	if len(events) == 0 {
		return nil
	}
	evs := events
	var copied []*event.Event
	for i, e := range events {
		if e == nil {
			return broker.ErrNilEvent
		}
		if e.ID == "" {
			if copied == nil {
				copied = append([]*event.Event(nil), events...)
			}
			cp := *e
			cp.ID = fmt.Sprintf("%s/e%d", n.id, n.nextEvent.Add(1))
			copied[i] = &cp
		}
	}
	if copied != nil {
		evs = copied
	}
	if err := n.broker.PublishBatch(evs); err != nil {
		return err
	}
	ring, peers := n.Ring(), n.peersSnapshot()
	var groups map[string][]*event.Event
	for _, ev := range evs {
		for _, owner := range ring.Owners(ev.Theme) {
			if owner == n.id || peers[owner] == nil {
				continue
			}
			if groups == nil {
				groups = make(map[string][]*event.Event)
			}
			groups[owner] = append(groups[owner], ev)
		}
	}
	for owner, g := range groups {
		p := peers[owner]
		for lo := 0; lo < len(g); lo += maxForwardBatch {
			hi := min(lo+maxForwardBatch, len(g))
			// Batch traces index every member event, so the sub-batch's
			// first event resolves the batch's context; the receiving peer
			// adopts it keyed by the same convention.
			var tc *telemetry.TraceContext
			if c, ok := n.broker.Tracer().ContextFor(g[lo].ID); ok {
				tc = &c
			}
			if p.enqueueBatch(g[lo:hi], tc) {
				n.ctrForwarded.Add(uint64(hi - lo))
			} else {
				n.ctrShed.Add(uint64(hi - lo))
			}
		}
	}
	return nil
}

// SubscribeHandle registers a subscription locally and on every remote
// shard owning one of its themes; remote matches flow back over the peer
// links and are de-duplicated against local matches by event ID. It
// implements broker.Backend.
func (n *Node) SubscribeHandle(sub *event.Subscription, opts ...broker.SubscribeOption) (broker.SubHandle, error) {
	if sub == nil {
		return nil, fmt.Errorf("cluster: nil subscription")
	}
	cp := *sub
	if cp.ID == "" {
		cp.ID = fmt.Sprintf("%s/s%d", n.id, n.nextSub.Add(1))
	}
	local, err := n.broker.Subscribe(&cp, opts...)
	if err != nil {
		return nil, err
	}

	e := &edgeSub{
		node:  n,
		id:    cp.ID,
		sub:   &cp,
		local: local,
		ch:    make(chan broker.Delivery, n.cfg.QueueSize),
		seen:  make(map[string]bool, n.cfg.DedupWindow),
	}

	// Owners are computed under n.mu against the current ring: a
	// subscribe racing a membership change either sees the new ring here,
	// or is already in n.edges when applyMembership re-owns every edge —
	// either way the registration lands on the post-change owners.
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		local.Close()
		return nil, broker.ErrClosed
	}
	var owners []string
	for _, o := range n.Ring().Owners(cp.Theme) {
		if o != n.id {
			owners = append(owners, o)
		}
	}
	e.owners = owners
	n.edges[cp.ID] = e
	n.mu.Unlock()

	go e.drainLocal()
	n.nudgePeers(owners)
	return e, nil
}

// Redirect implements broker.SubscribeRedirector: a themed subscription
// arriving at a broker that owns none of its themes is pointed at the
// primary owning shard, saving the extra federation hop.
func (n *Node) Redirect(sub *event.Subscription) string {
	if sub == nil || len(sub.Theme) == 0 {
		return ""
	}
	owners := n.Ring().Owners(sub.Theme)
	for _, o := range owners {
		if o == n.id {
			return ""
		}
	}
	if len(owners) == 0 {
		return ""
	}
	return owners[0]
}

// DropPeer severs the current connection to a peer (if any), forcing a
// reconnect with backoff. It returns whether a live link was dropped.
// Exposed for fault injection in tests and operational drills.
func (n *Node) DropPeer(id string) bool {
	p := n.getPeer(id)
	if p == nil {
		return false
	}
	return p.dropConn()
}

// nudgePeers asks the named peer links to reconcile remote registrations.
func (n *Node) nudgePeers(ids []string) {
	for _, id := range ids {
		if p := n.getPeer(id); p != nil {
			p.requestReconcile()
		}
	}
}

// desiredFor returns the subscriptions that should be registered on a
// given peer shard, keyed by subscription ID.
func (n *Node) desiredFor(peerID string) map[string]*event.Subscription {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make(map[string]*event.Subscription)
	for id, e := range n.edges {
		for _, o := range e.owners {
			if o == peerID {
				out[id] = e.sub
				break
			}
		}
	}
	return out
}

// handleRemoteDelivery routes a delivery frame from a peer shard to the
// local federated subscription it belongs to.
func (n *Node) handleRemoteDelivery(f *broker.Frame) {
	if f.Event == nil || f.SubscriptionID == "" {
		return
	}
	n.mu.Lock()
	e := n.edges[f.SubscriptionID]
	n.mu.Unlock()
	if e != nil {
		e.deliver(broker.Delivery{
			Event:          f.Event,
			SubscriptionID: f.SubscriptionID,
			Score:          f.Score,
			Replayed:       f.Replay,
			At:             f.At,
		})
	}
}

// ServePeer handles one inbound federation connection (a peer that dialed
// us and sent hello). It accepts forwarded events into the local broker
// and hosts the peer's remote subscription registrations, streaming their
// matches back on the same connection. It implements broker.PeerHandler.
func (n *Node) ServePeer(conn net.Conn, hello *broker.Frame) {
	if hello != nil && hello.NodeID != "" {
		// The hello doubles as a gossip exchange: merge the dialer's view,
		// plus a synthesized alive row for the dialer itself so nodes that
		// predate the membership payload (or raw test frames) still join
		// the view with their advertised metrics address.
		infos := append(append([]broker.MemberInfo(nil), hello.Members...),
			broker.MemberInfo{Node: hello.NodeID, Metrics: hello.MetricsAddr})
		n.mergeGossip(infos)
	}
	var writeMu sync.Mutex
	write := func(f *broker.Frame) error {
		writeMu.Lock()
		defer writeMu.Unlock()
		// Bounded write: a peer that stops reading cannot wedge the
		// delivery forwarders sharing this connection.
		conn.SetWriteDeadline(time.Now().Add(n.cfg.WriteTimeout))
		return broker.WriteFrame(conn, f)
	}

	// origin subscription ID -> local registration. Local IDs are assigned
	// by the broker so a re-registration racing a dead connection's
	// cleanup cannot collide; the home node's dedup absorbs any overlap.
	subs := make(map[string]*broker.Subscriber)
	var wg sync.WaitGroup
	defer func() {
		for _, s := range subs {
			s.Close()
		}
		wg.Wait()
	}()

	for {
		// The peer pings every HeartbeatInterval; a link silent past the
		// heartbeat timeout is dead (stall or partition), and the deadline
		// frees this goroutine instead of leaking it.
		conn.SetReadDeadline(time.Now().Add(n.cfg.HeartbeatTimeout))
		f, err := broker.ReadFrame(conn)
		if err != nil {
			return
		}
		switch f.Type {
		case broker.FramePing:
			// Pings carry the sender's membership view; the pong answers
			// with ours. This inbound/outbound pair is the periodic
			// SWIM-style state exchange — rumors (suspect/dead claims and
			// their refutations) spread along every live link at the
			// heartbeat cadence.
			n.mergeGossip(f.Members)
			write(&broker.Frame{Type: broker.FramePong, NodeID: n.id, Members: n.gossip()})

		case broker.FrameForward:
			if f.Event == nil {
				continue
			}
			n.ctrReceived.Add(1)
			// A propagated trace context forces sampling of this publish
			// under the originating trace ID, so the remote fragment joins
			// the sender's span tree when themctl trace merges the ring.
			n.broker.Tracer().Adopt(f.Event.ID, f.Trace)
			// Publish locally only: forwarded events are never
			// re-forwarded, so federation traffic is a single hop.
			n.broker.Publish(f.Event)

		case broker.FrameForwardBatch:
			if len(f.Events) == 0 {
				continue
			}
			n.ctrReceived.Add(uint64(len(f.Events)))
			// Batch adoption keys on the first member, matching the
			// sender's ContextFor convention and StartBatchAt's lookup.
			n.broker.Tracer().Adopt(f.Events[0].ID, f.Trace)
			// Single hop, batched: the whole forward lands in the local
			// broker through the batched pipeline.
			n.broker.PublishBatch(f.Events)

		case broker.FrameSubscribe:
			if f.Subscription == nil || f.Subscription.ID == "" {
				continue
			}
			origin := f.Subscription.ID
			if old, ok := subs[origin]; ok {
				delete(subs, origin)
				old.Close()
			}
			cp := *f.Subscription
			cp.ID = "" // let the broker pick a conn-local ID
			// Ephemeral: remote copies are connection state, rebuilt by the
			// origin's reconcile loop — never journaled here.
			s, err := n.broker.Subscribe(&cp, broker.Ephemeral())
			if err != nil {
				continue
			}
			subs[origin] = s
			n.remoteSubs.Add(1)
			wg.Add(1)
			go func(s *broker.Subscriber, origin string) {
				defer wg.Done()
				defer n.remoteSubs.Add(-1)
				for d := range s.C() {
					// A failed write means the conn is dying; keep
					// draining so the broker's queue empties until the
					// read loop reaps us.
					if write(&broker.Frame{
						Type:           broker.FrameDelivery,
						Event:          d.Event,
						SubscriptionID: origin,
						Score:          d.Score,
						Replay:         d.Replayed,
						At:             d.At,
					}) == nil {
						n.ctrRemoteDel.Add(1)
					}
				}
			}(s, origin)

		case broker.FrameUnsubscribe:
			if s, ok := subs[f.SubscriptionID]; ok {
				delete(subs, f.SubscriptionID)
				s.Close()
			}
		}
	}
}

// Stats returns a snapshot of the federation counters.
func (n *Node) Stats() Stats {
	connected, open := 0, 0
	var trips uint64
	peers := n.peersSnapshot()
	for _, p := range peers {
		if p.isConnected() {
			connected++
		}
		if p.bk.State() != BreakerClosed {
			open++
		}
		trips += p.bk.Trips()
	}
	return Stats{
		Forwarded:        n.ctrForwarded.Load(),
		Received:         n.ctrReceived.Load(),
		Deduped:          n.ctrDeduped.Load(),
		PeerReconnects:   n.ctrReconnects.Load(),
		QueueDrops:       n.ctrQueueDrops.Load(),
		ForwardsShed:     n.ctrShed.Load(),
		BreakerTrips:     trips,
		RemoteDeliveries: n.ctrRemoteDel.Load(),
		RemoteSubs:       int(n.remoteSubs.Load()),
		Peers:            len(peers),
		PeersConnected:   connected,
		PeersOpen:        open,
	}
}

// PeerStates returns every peer link's circuit-breaker position, keyed by
// peer ID. Used by tests and operational drills to assert recovery (all
// breakers back to closed after a partition heals).
func (n *Node) PeerStates() map[string]BreakerState {
	peers := n.peersSnapshot()
	out := make(map[string]BreakerState, len(peers))
	for id, p := range peers {
		out[id] = p.bk.State()
	}
	return out
}

// PeerInfo is one row of the cluster scrape directory: a member's shard
// identity, its advertised metrics/debug HTTP address, and its live
// membership state ("alive", "suspect", or "dead").
type PeerInfo struct {
	Node        string `json:"node"`
	Metrics     string `json:"metrics,omitempty"`
	Self        bool   `json:"self,omitempty"`
	State       string `json:"state,omitempty"`
	Incarnation uint64 `json:"inc,omitempty"`
}

// PeerDirectory lists this node (first) and every member of the gossiped
// membership view, sorted by ID — the live view behind /debug/peers, so
// the directory tracks joins, suspicion, and deaths as they propagate.
func (n *Node) PeerDirectory() []PeerInfo {
	members := n.ms.Snapshot()
	out := make([]PeerInfo, 0, len(members))
	for _, m := range members {
		out = append(out, PeerInfo{
			Node:        m.Node,
			Metrics:     m.Metrics,
			Self:        m.Node == n.id,
			State:       m.State.String(),
			Incarnation: m.Incarnation,
		})
	}
	return out
}

// PeersHandler serves the peer directory as JSON (the /debug/peers
// endpoint themctl's -cluster mode discovers the federation from).
func (n *Node) PeersHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(n.PeerDirectory())
	})
}

// WriteMetrics implements broker.Collector, appending the cluster counter
// families, per-peer forward-queue depth gauges, and per-peer hop latency
// histograms to the broker's Prometheus endpoint. Route the writer through
// a telemetry.Expo (broker.MetricsHandler does) so the per-peer series of
// one family share a single HELP/TYPE header.
func (n *Node) WriteMetrics(w io.Writer) {
	st := n.Stats()
	broker.WriteCounter(w, "thematicep_cluster_forwarded_total", "Events forwarded toward peer shards.", st.Forwarded)
	broker.WriteCounter(w, "thematicep_cluster_received_total", "Forwarded events accepted from peers.", st.Received)
	broker.WriteCounter(w, "thematicep_cluster_deduped_total", "Duplicate deliveries suppressed by event ID.", st.Deduped)
	broker.WriteCounter(w, "thematicep_cluster_peer_reconnects_total", "Peer links re-established after a drop.", st.PeerReconnects)
	broker.WriteCounter(w, "thematicep_cluster_peer_queue_drops_total", "Forwards dropped by the bounded peer queues.", st.QueueDrops)
	broker.WriteCounter(w, "thematicep_cluster_forwards_shed_total", "Forwards shed because a peer circuit breaker was not closed.", st.ForwardsShed)
	broker.WriteCounter(w, "thematicep_cluster_breaker_trips_total", "Peer circuit-breaker transitions to open.", st.BreakerTrips)
	broker.WriteCounter(w, "thematicep_cluster_remote_deliveries_total", "Matches streamed back to peer subscribers.", st.RemoteDeliveries)
	broker.WriteGauge(w, "thematicep_cluster_remote_subscriptions", "Remote registrations currently hosted.", st.RemoteSubs)
	broker.WriteGauge(w, "thematicep_cluster_peers", "Live peer links.", st.Peers)
	broker.WriteGauge(w, "thematicep_cluster_peers_connected", "Peer links currently established.", st.PeersConnected)

	// Membership view: member counts by state plus the cumulative
	// transition counters, so dashboards see joins, suspicion, and deaths
	// as first-class series.
	counts := map[MemberState]int{}
	for _, m := range n.ms.Snapshot() {
		counts[m.State]++
	}
	for _, s := range []MemberState{MemberAlive, MemberSuspect, MemberDead} {
		broker.WriteGaugeVec(w, "thematicep_cluster_members",
			"Federation members known to this node, by membership state.",
			[]telemetry.Label{{Key: "state", Value: s.String()}}, float64(counts[s]))
	}
	joins, leaves, suspects := n.ms.Counters()
	broker.WriteCounter(w, "thematicep_cluster_member_join_total", "Members discovered or revived from dead.", joins)
	broker.WriteCounter(w, "thematicep_cluster_member_leave_total", "Members declared dead.", leaves)
	broker.WriteCounter(w, "thematicep_cluster_member_suspect_total", "Member transitions to suspect.", suspects)

	peers := n.peersSnapshot()
	ids := make([]string, 0, len(peers))
	for id := range peers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		broker.WriteGaugeVec(w, "thematicep_cluster_forward_queue_depth",
			"Forwards waiting in a peer link's bounded queue.",
			[]telemetry.Label{{Key: "peer", Value: id}}, float64(len(peers[id].queue)))
	}
	for _, id := range ids {
		broker.WriteGaugeVec(w, "thematicep_cluster_breaker_state",
			"Peer circuit-breaker position (0 closed, 1 half-open, 2 open).",
			[]telemetry.Label{{Key: "peer", Value: id}}, float64(peers[id].bk.State()))
	}
	for _, id := range ids {
		peers[id].hop.WriteMetrics(w)
	}
}

// edgeSub is one federated subscription: the union of its local broker
// registration and its remote shard registrations, de-duplicated by event
// ID. It satisfies broker.SubHandle.
type edgeSub struct {
	node   *Node
	id     string
	sub    *event.Subscription
	owners []string // remote shards this subscription is registered on
	local  *broker.Subscriber
	ch     chan broker.Delivery

	mu     sync.Mutex
	closed bool
	seen   map[string]bool
	order  []string // FIFO of seen IDs for window eviction
}

// ID returns the cluster-wide subscription ID.
func (e *edgeSub) ID() string { return e.id }

// C is the merged, de-duplicated delivery channel.
func (e *edgeSub) C() <-chan broker.Delivery { return e.ch }

// Close cancels the subscription locally and on every remote shard.
func (e *edgeSub) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	e.mu.Unlock()

	n := e.node
	n.mu.Lock()
	delete(n.edges, e.id)
	n.mu.Unlock()

	e.local.Close()
	e.mu.Lock()
	close(e.ch)
	e.mu.Unlock()
	// Reconcile everywhere: the current owners unsubscribe the remote
	// copy, and any former owner still holding a pre-rebalance copy in its
	// link's sent set cleans up on the same nudge.
	n.nudgeAll()
}

// drainLocal feeds local broker matches through the dedup filter.
func (e *edgeSub) drainLocal() {
	for d := range e.local.C() {
		d.SubscriptionID = e.id
		e.deliver(d)
	}
	// Local channel closed: the broker shut down (or the subscription was
	// closed, making this a no-op).
	e.Close()
}

// deliver applies the dedup window and enqueues with the broker's
// drop-oldest overflow policy.
func (e *edgeSub) deliver(d broker.Delivery) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return
	}
	if d.Event != nil && d.Event.ID != "" {
		if e.seen[d.Event.ID] {
			e.node.ctrDeduped.Add(1)
			return
		}
		e.seen[d.Event.ID] = true
		e.order = append(e.order, d.Event.ID)
		if len(e.order) > e.node.cfg.DedupWindow {
			delete(e.seen, e.order[0])
			e.order = e.order[1:]
		}
	}
	for {
		select {
		case e.ch <- d:
			return
		default:
			select {
			case <-e.ch:
			default:
			}
		}
	}
}
