package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"thematicep/internal/broker"
	"thematicep/internal/event"
	"thematicep/internal/telemetry"
)

// Config describes one broker's place in the federation.
type Config struct {
	// Self is this node's identity: the wire address its peers dial
	// (host:port). It doubles as the shard ID on the ring.
	Self string
	// Peers are the other members' wire addresses. Every member must be
	// configured with the same total membership for the rings to agree.
	Peers []string
	// VirtualNodes per member on the ring (DefaultVirtualNodes when 0).
	VirtualNodes int
	// ForwardQueue bounds each peer's outbound event queue (default 256).
	// When full the oldest queued event is dropped, mirroring the
	// broker's subscriber overflow policy.
	ForwardQueue int
	// DedupWindow is how many recent event IDs each subscription
	// remembers for duplicate suppression (default 1024).
	DedupWindow int
	// QueueSize buffers each federated subscription's delivery channel
	// (default 64), with the same drop-oldest overflow policy.
	QueueSize int
	// ReconnectMin/ReconnectMax bound the full-jitter exponential backoff
	// between peer dial attempts (defaults 50ms and 2s).
	ReconnectMin time.Duration
	ReconnectMax time.Duration
	// WriteTimeout bounds every frame write on a peer link (default 2s).
	// A stalled TCP peer surfaces as a timed-out write and a breaker
	// failure, never as a wedged forward goroutine.
	WriteTimeout time.Duration
	// HeartbeatInterval is how often a link sends ping frames (default
	// 1s); HeartbeatTimeout is how long a link may stay silent before the
	// read deadline declares it dead (default 3x the interval, and always
	// at least one interval).
	HeartbeatInterval time.Duration
	HeartbeatTimeout  time.Duration
	// BreakerThreshold is how many consecutive connection-level failures
	// (failed dial, failed hello, link death) open a peer's circuit
	// breaker (default 5). While open, forwards to that peer are shed
	// immediately (counted in Stats.ForwardsShed) instead of queueing,
	// and dials pause for BreakerCooldown (default 1s) before a single
	// half-open probe is attempted.
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// Dial overrides the peer dialer (tests, fault injection); default is
	// net.DialTimeout("tcp", addr, WriteTimeout).
	Dial func(addr string) (net.Conn, error)
	// MetricsAddr is this node's metrics/debug HTTP address (host:port),
	// advertised to peers in hello frames so every member can serve a
	// cluster scrape directory (/debug/peers) that themctl's -cluster
	// mode discovers the federation from. Empty means not advertised.
	MetricsAddr string
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.ForwardQueue <= 0 {
		out.ForwardQueue = 256
	}
	if out.DedupWindow <= 0 {
		out.DedupWindow = 1024
	}
	if out.QueueSize <= 0 {
		out.QueueSize = 64
	}
	if out.ReconnectMin <= 0 {
		out.ReconnectMin = 50 * time.Millisecond
	}
	if out.ReconnectMax < out.ReconnectMin {
		out.ReconnectMax = 2 * time.Second
	}
	if out.WriteTimeout <= 0 {
		out.WriteTimeout = 2 * time.Second
	}
	if out.HeartbeatInterval <= 0 {
		out.HeartbeatInterval = time.Second
	}
	if out.HeartbeatTimeout < out.HeartbeatInterval {
		out.HeartbeatTimeout = 3 * out.HeartbeatInterval
	}
	if out.BreakerThreshold <= 0 {
		out.BreakerThreshold = 5
	}
	if out.BreakerCooldown <= 0 {
		out.BreakerCooldown = time.Second
	}
	if out.Dial == nil {
		timeout := out.WriteTimeout
		out.Dial = func(addr string) (net.Conn, error) { return net.DialTimeout("tcp", addr, timeout) }
	}
	return out
}

// Stats are the federation counters; all *_total values are cumulative.
type Stats struct {
	Forwarded        uint64 // events enqueued toward peer shards
	Received         uint64 // forwarded events accepted from peers
	Deduped          uint64 // duplicate deliveries suppressed by event ID
	PeerReconnects   uint64 // successful peer connections after a drop
	QueueDrops       uint64 // forwards dropped by the bounded peer queues
	ForwardsShed     uint64 // forwards shed because a peer's breaker was not closed
	BreakerTrips     uint64 // circuit-breaker transitions to open, summed over peers
	RemoteDeliveries uint64 // matches sent back to a peer's subscriber
	RemoteSubs       int    // remote registrations currently hosted here
	Peers            int    // configured peer links
	PeersConnected   int    // peer links currently established
	PeersOpen        int    // peer links whose breaker is currently open or half-open
}

// Node federates a local broker with its peers. It implements
// broker.Backend (so a broker.Server can route client traffic through it),
// broker.PeerHandler (inbound federation connections), and
// broker.SubscribeRedirector (pointing clients at the owning shard).
type Node struct {
	cfg    Config
	id     string
	ring   *Ring
	broker *broker.Broker
	peers  map[string]*peer // immutable after New

	mu      sync.Mutex
	edges   map[string]*edgeSub
	started bool
	closed  bool
	// peerMetrics maps peer node IDs to their advertised metrics
	// addresses, learned from inbound hello frames (see Config.MetricsAddr).
	peerMetrics map[string]string

	nextSub   atomic.Uint64
	nextEvent atomic.Uint64

	ctrForwarded  atomic.Uint64
	ctrReceived   atomic.Uint64
	ctrDeduped    atomic.Uint64
	ctrReconnects atomic.Uint64
	ctrQueueDrops atomic.Uint64
	ctrShed       atomic.Uint64
	ctrRemoteDel  atomic.Uint64
	remoteSubs    atomic.Int64
}

// New wraps a local broker in a federation node. The node does not dial
// anyone until Start.
func New(b *broker.Broker, cfg Config) (*Node, error) {
	if cfg.Self == "" {
		return nil, fmt.Errorf("cluster: Self identity required")
	}
	c := cfg.withDefaults()
	members := append([]string{c.Self}, c.Peers...)
	n := &Node{
		cfg:    c,
		id:     c.Self,
		ring:   NewRing(members, c.VirtualNodes),
		broker: b,
		peers:       make(map[string]*peer),
		edges:       make(map[string]*edgeSub),
		peerMetrics: make(map[string]string),
	}
	for _, addr := range c.Peers {
		if addr == "" || addr == c.Self {
			continue
		}
		if _, dup := n.peers[addr]; dup {
			continue
		}
		n.peers[addr] = newPeer(n, addr)
	}
	return n, nil
}

// Start opens the outbound peer links. Links that cannot connect retry
// forever with exponential backoff, so peers may start in any order.
func (n *Node) Start() {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.started || n.closed {
		return
	}
	n.started = true
	for _, p := range n.peers {
		go p.run()
	}
}

// Ring exposes the node's view of the shard ring.
func (n *Node) Ring() *Ring { return n.ring }

// ID returns the node's shard identity (its advertised address).
func (n *Node) ID() string { return n.id }

// Close tears down the peer links and every federated subscription. The
// underlying broker is left open (the caller owns it).
func (n *Node) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	edges := make([]*edgeSub, 0, len(n.edges))
	for _, e := range n.edges {
		edges = append(edges, e)
	}
	n.mu.Unlock()

	for _, p := range n.peers {
		p.stop()
	}
	for _, e := range edges {
		e.Close()
	}
}

// Publish accepts an event locally and forwards it to every peer whose
// shard overlaps the event's theme set. Events without an ID are assigned
// one so downstream de-duplication can identify re-deliveries.
func (n *Node) Publish(e *event.Event) error {
	if e == nil {
		return broker.ErrNilEvent
	}
	ev := e
	if ev.ID == "" {
		cp := *e
		cp.ID = fmt.Sprintf("%s/e%d", n.id, n.nextEvent.Add(1))
		ev = &cp
	}
	if err := n.broker.Publish(ev); err != nil {
		return err
	}
	// If the local publish sampled a trace, forward its context so the
	// owning peers continue the same span tree. Publish is synchronous, so
	// the trace is already in the ring and ContextFor resolves it.
	var tc *telemetry.TraceContext
	if c, ok := n.broker.Tracer().ContextFor(ev.ID); ok {
		tc = &c
	}
	for _, owner := range n.ring.Owners(ev.Theme) {
		if owner == n.id {
			continue
		}
		if p := n.peers[owner]; p != nil {
			if p.enqueue(ev, tc) {
				n.ctrForwarded.Add(1)
			} else {
				// The peer's breaker is open (or probing): shed now rather
				// than queue toward a dead link. Never silent — counted and
				// exported.
				n.ctrShed.Add(1)
			}
		}
	}
	return nil
}

// maxForwardBatch caps one forwardb frame's event count: a re-batched
// forward larger than this is split, bounding frame size and the work one
// queue item represents.
const maxForwardBatch = 256

// PublishBatch accepts a batch locally through the broker's batched
// pipeline, then re-batches the admitted events per owning peer shard: one
// forwardb frame per destination (split at maxForwardBatch) instead of one
// forward frame per event. Admission is all-or-nothing, matching
// broker.PublishBatch; forwarding inherits Publish's shed/drop policy with
// whole sub-batches counted event-by-event.
func (n *Node) PublishBatch(events []*event.Event) error {
	if len(events) == 0 {
		return nil
	}
	evs := events
	var copied []*event.Event
	for i, e := range events {
		if e == nil {
			return broker.ErrNilEvent
		}
		if e.ID == "" {
			if copied == nil {
				copied = append([]*event.Event(nil), events...)
			}
			cp := *e
			cp.ID = fmt.Sprintf("%s/e%d", n.id, n.nextEvent.Add(1))
			copied[i] = &cp
		}
	}
	if copied != nil {
		evs = copied
	}
	if err := n.broker.PublishBatch(evs); err != nil {
		return err
	}
	var groups map[string][]*event.Event
	for _, ev := range evs {
		for _, owner := range n.ring.Owners(ev.Theme) {
			if owner == n.id || n.peers[owner] == nil {
				continue
			}
			if groups == nil {
				groups = make(map[string][]*event.Event)
			}
			groups[owner] = append(groups[owner], ev)
		}
	}
	for owner, g := range groups {
		p := n.peers[owner]
		for lo := 0; lo < len(g); lo += maxForwardBatch {
			hi := min(lo+maxForwardBatch, len(g))
			// Batch traces index every member event, so the sub-batch's
			// first event resolves the batch's context; the receiving peer
			// adopts it keyed by the same convention.
			var tc *telemetry.TraceContext
			if c, ok := n.broker.Tracer().ContextFor(g[lo].ID); ok {
				tc = &c
			}
			if p.enqueueBatch(g[lo:hi], tc) {
				n.ctrForwarded.Add(uint64(hi - lo))
			} else {
				n.ctrShed.Add(uint64(hi - lo))
			}
		}
	}
	return nil
}

// SubscribeHandle registers a subscription locally and on every remote
// shard owning one of its themes; remote matches flow back over the peer
// links and are de-duplicated against local matches by event ID. It
// implements broker.Backend.
func (n *Node) SubscribeHandle(sub *event.Subscription, opts ...broker.SubscribeOption) (broker.SubHandle, error) {
	if sub == nil {
		return nil, fmt.Errorf("cluster: nil subscription")
	}
	cp := *sub
	if cp.ID == "" {
		cp.ID = fmt.Sprintf("%s/s%d", n.id, n.nextSub.Add(1))
	}
	local, err := n.broker.Subscribe(&cp, opts...)
	if err != nil {
		return nil, err
	}

	var owners []string
	for _, o := range n.ring.Owners(cp.Theme) {
		if o != n.id {
			owners = append(owners, o)
		}
	}
	e := &edgeSub{
		node:   n,
		id:     cp.ID,
		sub:    &cp,
		owners: owners,
		local:  local,
		ch:     make(chan broker.Delivery, n.cfg.QueueSize),
		seen:   make(map[string]bool, n.cfg.DedupWindow),
	}

	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		local.Close()
		return nil, broker.ErrClosed
	}
	n.edges[cp.ID] = e
	n.mu.Unlock()

	go e.drainLocal()
	n.nudgePeers(owners)
	return e, nil
}

// Redirect implements broker.SubscribeRedirector: a themed subscription
// arriving at a broker that owns none of its themes is pointed at the
// primary owning shard, saving the extra federation hop.
func (n *Node) Redirect(sub *event.Subscription) string {
	if sub == nil || len(sub.Theme) == 0 {
		return ""
	}
	owners := n.ring.Owners(sub.Theme)
	for _, o := range owners {
		if o == n.id {
			return ""
		}
	}
	if len(owners) == 0 {
		return ""
	}
	return owners[0]
}

// DropPeer severs the current connection to a peer (if any), forcing a
// reconnect with backoff. It returns whether a live link was dropped.
// Exposed for fault injection in tests and operational drills.
func (n *Node) DropPeer(id string) bool {
	p := n.peers[id]
	if p == nil {
		return false
	}
	return p.dropConn()
}

// nudgePeers asks the named peer links to reconcile remote registrations.
func (n *Node) nudgePeers(ids []string) {
	for _, id := range ids {
		if p := n.peers[id]; p != nil {
			p.requestReconcile()
		}
	}
}

// desiredFor returns the subscriptions that should be registered on a
// given peer shard, keyed by subscription ID.
func (n *Node) desiredFor(peerID string) map[string]*event.Subscription {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make(map[string]*event.Subscription)
	for id, e := range n.edges {
		for _, o := range e.owners {
			if o == peerID {
				out[id] = e.sub
				break
			}
		}
	}
	return out
}

// handleRemoteDelivery routes a delivery frame from a peer shard to the
// local federated subscription it belongs to.
func (n *Node) handleRemoteDelivery(f *broker.Frame) {
	if f.Event == nil || f.SubscriptionID == "" {
		return
	}
	n.mu.Lock()
	e := n.edges[f.SubscriptionID]
	n.mu.Unlock()
	if e != nil {
		e.deliver(broker.Delivery{
			Event:          f.Event,
			SubscriptionID: f.SubscriptionID,
			Score:          f.Score,
			Replayed:       f.Replay,
			At:             f.At,
		})
	}
}

// ServePeer handles one inbound federation connection (a peer that dialed
// us and sent hello). It accepts forwarded events into the local broker
// and hosts the peer's remote subscription registrations, streaming their
// matches back on the same connection. It implements broker.PeerHandler.
func (n *Node) ServePeer(conn net.Conn, hello *broker.Frame) {
	if hello != nil && hello.NodeID != "" && hello.MetricsAddr != "" {
		// The peer advertised where it serves /metrics: remember it for
		// the cluster scrape directory (/debug/peers).
		n.mu.Lock()
		n.peerMetrics[hello.NodeID] = hello.MetricsAddr
		n.mu.Unlock()
	}
	var writeMu sync.Mutex
	write := func(f *broker.Frame) error {
		writeMu.Lock()
		defer writeMu.Unlock()
		// Bounded write: a peer that stops reading cannot wedge the
		// delivery forwarders sharing this connection.
		conn.SetWriteDeadline(time.Now().Add(n.cfg.WriteTimeout))
		return broker.WriteFrame(conn, f)
	}

	// origin subscription ID -> local registration. Local IDs are assigned
	// by the broker so a re-registration racing a dead connection's
	// cleanup cannot collide; the home node's dedup absorbs any overlap.
	subs := make(map[string]*broker.Subscriber)
	var wg sync.WaitGroup
	defer func() {
		for _, s := range subs {
			s.Close()
		}
		wg.Wait()
	}()

	for {
		// The peer pings every HeartbeatInterval; a link silent past the
		// heartbeat timeout is dead (stall or partition), and the deadline
		// frees this goroutine instead of leaking it.
		conn.SetReadDeadline(time.Now().Add(n.cfg.HeartbeatTimeout))
		f, err := broker.ReadFrame(conn)
		if err != nil {
			return
		}
		switch f.Type {
		case broker.FramePing:
			write(&broker.Frame{Type: broker.FramePong, NodeID: n.id})

		case broker.FrameForward:
			if f.Event == nil {
				continue
			}
			n.ctrReceived.Add(1)
			// A propagated trace context forces sampling of this publish
			// under the originating trace ID, so the remote fragment joins
			// the sender's span tree when themctl trace merges the ring.
			n.broker.Tracer().Adopt(f.Event.ID, f.Trace)
			// Publish locally only: forwarded events are never
			// re-forwarded, so federation traffic is a single hop.
			n.broker.Publish(f.Event)

		case broker.FrameForwardBatch:
			if len(f.Events) == 0 {
				continue
			}
			n.ctrReceived.Add(uint64(len(f.Events)))
			// Batch adoption keys on the first member, matching the
			// sender's ContextFor convention and StartBatchAt's lookup.
			n.broker.Tracer().Adopt(f.Events[0].ID, f.Trace)
			// Single hop, batched: the whole forward lands in the local
			// broker through the batched pipeline.
			n.broker.PublishBatch(f.Events)

		case broker.FrameSubscribe:
			if f.Subscription == nil || f.Subscription.ID == "" {
				continue
			}
			origin := f.Subscription.ID
			if old, ok := subs[origin]; ok {
				delete(subs, origin)
				old.Close()
			}
			cp := *f.Subscription
			cp.ID = "" // let the broker pick a conn-local ID
			s, err := n.broker.Subscribe(&cp)
			if err != nil {
				continue
			}
			subs[origin] = s
			n.remoteSubs.Add(1)
			wg.Add(1)
			go func(s *broker.Subscriber, origin string) {
				defer wg.Done()
				defer n.remoteSubs.Add(-1)
				for d := range s.C() {
					// A failed write means the conn is dying; keep
					// draining so the broker's queue empties until the
					// read loop reaps us.
					if write(&broker.Frame{
						Type:           broker.FrameDelivery,
						Event:          d.Event,
						SubscriptionID: origin,
						Score:          d.Score,
						Replay:         d.Replayed,
						At:             d.At,
					}) == nil {
						n.ctrRemoteDel.Add(1)
					}
				}
			}(s, origin)

		case broker.FrameUnsubscribe:
			if s, ok := subs[f.SubscriptionID]; ok {
				delete(subs, f.SubscriptionID)
				s.Close()
			}
		}
	}
}

// Stats returns a snapshot of the federation counters.
func (n *Node) Stats() Stats {
	connected, open := 0, 0
	var trips uint64
	for _, p := range n.peers {
		if p.isConnected() {
			connected++
		}
		if p.bk.State() != BreakerClosed {
			open++
		}
		trips += p.bk.Trips()
	}
	return Stats{
		Forwarded:        n.ctrForwarded.Load(),
		Received:         n.ctrReceived.Load(),
		Deduped:          n.ctrDeduped.Load(),
		PeerReconnects:   n.ctrReconnects.Load(),
		QueueDrops:       n.ctrQueueDrops.Load(),
		ForwardsShed:     n.ctrShed.Load(),
		BreakerTrips:     trips,
		RemoteDeliveries: n.ctrRemoteDel.Load(),
		RemoteSubs:       int(n.remoteSubs.Load()),
		Peers:            len(n.peers),
		PeersConnected:   connected,
		PeersOpen:        open,
	}
}

// PeerStates returns every peer link's circuit-breaker position, keyed by
// peer ID. Used by tests and operational drills to assert recovery (all
// breakers back to closed after a partition heals).
func (n *Node) PeerStates() map[string]BreakerState {
	out := make(map[string]BreakerState, len(n.peers))
	for id, p := range n.peers {
		out[id] = p.bk.State()
	}
	return out
}

// PeerInfo is one row of the cluster scrape directory: a member's shard
// identity and its advertised metrics/debug HTTP address.
type PeerInfo struct {
	Node    string `json:"node"`
	Metrics string `json:"metrics,omitempty"`
	Self    bool   `json:"self,omitempty"`
}

// PeerDirectory lists this node (first) and every peer whose metrics
// address is known — configured links always appear (address empty until
// their hello arrives), so the directory doubles as a membership view.
func (n *Node) PeerDirectory() []PeerInfo {
	out := []PeerInfo{{Node: n.id, Metrics: n.cfg.MetricsAddr, Self: true}}
	n.mu.Lock()
	learned := make(map[string]string, len(n.peerMetrics))
	for id, addr := range n.peerMetrics {
		learned[id] = addr
	}
	n.mu.Unlock()
	ids := make([]string, 0, len(n.peers)+len(learned))
	for id := range n.peers {
		ids = append(ids, id)
	}
	for id := range learned {
		if _, configured := n.peers[id]; !configured && id != n.id {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	for _, id := range ids {
		out = append(out, PeerInfo{Node: id, Metrics: learned[id]})
	}
	return out
}

// PeersHandler serves the peer directory as JSON (the /debug/peers
// endpoint themctl's -cluster mode discovers the federation from).
func (n *Node) PeersHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(n.PeerDirectory())
	})
}

// WriteMetrics implements broker.Collector, appending the cluster counter
// families, per-peer forward-queue depth gauges, and per-peer hop latency
// histograms to the broker's Prometheus endpoint. Route the writer through
// a telemetry.Expo (broker.MetricsHandler does) so the per-peer series of
// one family share a single HELP/TYPE header.
func (n *Node) WriteMetrics(w io.Writer) {
	st := n.Stats()
	broker.WriteCounter(w, "thematicep_cluster_forwarded_total", "Events forwarded toward peer shards.", st.Forwarded)
	broker.WriteCounter(w, "thematicep_cluster_received_total", "Forwarded events accepted from peers.", st.Received)
	broker.WriteCounter(w, "thematicep_cluster_deduped_total", "Duplicate deliveries suppressed by event ID.", st.Deduped)
	broker.WriteCounter(w, "thematicep_cluster_peer_reconnects_total", "Peer links re-established after a drop.", st.PeerReconnects)
	broker.WriteCounter(w, "thematicep_cluster_peer_queue_drops_total", "Forwards dropped by the bounded peer queues.", st.QueueDrops)
	broker.WriteCounter(w, "thematicep_cluster_forwards_shed_total", "Forwards shed because a peer circuit breaker was not closed.", st.ForwardsShed)
	broker.WriteCounter(w, "thematicep_cluster_breaker_trips_total", "Peer circuit-breaker transitions to open.", st.BreakerTrips)
	broker.WriteCounter(w, "thematicep_cluster_remote_deliveries_total", "Matches streamed back to peer subscribers.", st.RemoteDeliveries)
	broker.WriteGauge(w, "thematicep_cluster_remote_subscriptions", "Remote registrations currently hosted.", st.RemoteSubs)
	broker.WriteGauge(w, "thematicep_cluster_peers", "Configured peer links.", st.Peers)
	broker.WriteGauge(w, "thematicep_cluster_peers_connected", "Peer links currently established.", st.PeersConnected)

	ids := make([]string, 0, len(n.peers))
	for id := range n.peers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		p := n.peers[id]
		broker.WriteGaugeVec(w, "thematicep_cluster_forward_queue_depth",
			"Forwards waiting in a peer link's bounded queue.",
			[]telemetry.Label{{Key: "peer", Value: id}}, float64(len(p.queue)))
	}
	for _, id := range ids {
		broker.WriteGaugeVec(w, "thematicep_cluster_breaker_state",
			"Peer circuit-breaker position (0 closed, 1 half-open, 2 open).",
			[]telemetry.Label{{Key: "peer", Value: id}}, float64(n.peers[id].bk.State()))
	}
	for _, id := range ids {
		n.peers[id].hop.WriteMetrics(w)
	}
}

// edgeSub is one federated subscription: the union of its local broker
// registration and its remote shard registrations, de-duplicated by event
// ID. It satisfies broker.SubHandle.
type edgeSub struct {
	node   *Node
	id     string
	sub    *event.Subscription
	owners []string // remote shards this subscription is registered on
	local  *broker.Subscriber
	ch     chan broker.Delivery

	mu     sync.Mutex
	closed bool
	seen   map[string]bool
	order  []string // FIFO of seen IDs for window eviction
}

// ID returns the cluster-wide subscription ID.
func (e *edgeSub) ID() string { return e.id }

// C is the merged, de-duplicated delivery channel.
func (e *edgeSub) C() <-chan broker.Delivery { return e.ch }

// Close cancels the subscription locally and on every remote shard.
func (e *edgeSub) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	e.mu.Unlock()

	n := e.node
	n.mu.Lock()
	delete(n.edges, e.id)
	n.mu.Unlock()

	e.local.Close()
	e.mu.Lock()
	close(e.ch)
	e.mu.Unlock()
	n.nudgePeers(e.owners) // reconcile: peers unsubscribe the remote copy
}

// drainLocal feeds local broker matches through the dedup filter.
func (e *edgeSub) drainLocal() {
	for d := range e.local.C() {
		d.SubscriptionID = e.id
		e.deliver(d)
	}
	// Local channel closed: the broker shut down (or the subscription was
	// closed, making this a no-op).
	e.Close()
}

// deliver applies the dedup window and enqueues with the broker's
// drop-oldest overflow policy.
func (e *edgeSub) deliver(d broker.Delivery) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return
	}
	if d.Event != nil && d.Event.ID != "" {
		if e.seen[d.Event.ID] {
			e.node.ctrDeduped.Add(1)
			return
		}
		e.seen[d.Event.ID] = true
		e.order = append(e.order, d.Event.ID)
		if len(e.order) > e.node.cfg.DedupWindow {
			delete(e.seen, e.order[0])
			e.order = e.order[1:]
		}
	}
	for {
		select {
		case e.ch <- d:
			return
		default:
			select {
			case <-e.ch:
			default:
			}
		}
	}
}
