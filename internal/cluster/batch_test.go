package cluster_test

import (
	"fmt"
	"testing"
	"time"

	"thematicep/internal/broker"
	"thematicep/internal/event"
)

// TestBatchedFederationForwarding: a publishb frame landing on broker A is
// admitted through the batched pipeline, re-batched per owning peer shard
// as forwardb frames, and every event reaches a matching subscriber on
// broker C exactly once — the batched path preserves the single-hop,
// dedup-by-ID semantics of serial forwarding.
func TestBatchedFederationForwarding(t *testing.T) {
	ns := startCluster(t, 3)
	nodeA, nodeB, nodeC := ns[0], ns[1], ns[2]
	ring := nodeC.node.Ring()
	tagB := findTag(t, ring, nodeB.addr)
	tagC := findTag(t, ring, nodeC.addr)

	consumer, err := broker.Dial(nodeC.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer consumer.Close()
	sub := &event.Subscription{
		Theme:      []string{tagB, tagC},
		Predicates: []event.Predicate{{Attr: "type", Value: "parking event"}},
	}
	id, deliveries, err := consumer.Subscribe(sub, false)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "remote registration on B", func() bool {
		return nodeB.b.Stats().Subscribers == 1
	})

	producer, err := broker.Dial(nodeA.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer producer.Close()

	const n = 10
	batch := make([]*event.Event, n)
	for i := range batch {
		batch[i] = &event.Event{
			Theme: []string{tagB, tagC},
			Tuples: []event.Tuple{
				{Attr: "type", Value: "parking event"},
				{Attr: "spot", Value: fmt.Sprintf("spot-%d", i)},
			},
		}
	}
	if err := producer.PublishBatch(batch); err != nil {
		t.Fatal(err)
	}

	// Every event arrives exactly once (the C shard suppresses the B-shard
	// duplicate by the node-assigned event ID).
	got := make(map[string]bool)
	for len(got) < n {
		d := recvDelivery(t, deliveries)
		if d.SubscriptionID != id {
			t.Fatalf("delivery for %q, want %q", d.SubscriptionID, id)
		}
		spot, _ := d.Event.Value("spot")
		if got[spot] {
			t.Fatalf("duplicate delivery for %s", spot)
		}
		got[spot] = true
	}
	assertQuiet(t, deliveries, 400*time.Millisecond)
	waitFor(t, "dedup of the duplicate shard matches", func() bool {
		return nodeC.node.Stats().Deduped >= n
	})

	// The batch went through the batched pipelines end to end: one local
	// batch on A, re-batched forwardb frames admitted as batches on the
	// peer shards.
	if st := nodeA.b.Stats(); st.Batches == 0 || st.Published != n {
		t.Errorf("A batches/published = %d/%d, want >0/%d", st.Batches, st.Published, n)
	}
	if st := nodeA.node.Stats(); st.Forwarded != 2*n {
		t.Errorf("A forwarded = %d, want %d (each event to both owner shards)", st.Forwarded, 2*n)
	}
	waitFor(t, "batched forwards on B", func() bool {
		st := nodeB.b.Stats()
		return st.Batches >= 1 && st.Published == n
	})
	waitFor(t, "batched forwards on C", func() bool {
		st := nodeC.b.Stats()
		return st.Batches >= 1 && st.Published == n
	})
}
