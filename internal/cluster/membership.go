package cluster

import (
	"sort"
	"sync"
	"time"

	"thematicep/internal/broker"
)

// MemberState is a member's position in the SWIM-style failure-detection
// lifecycle. Suspect members stay on the ring (a blip should not reshuffle
// shard ownership); only dead members leave it.
type MemberState uint8

const (
	MemberAlive MemberState = iota
	MemberSuspect
	MemberDead
)

func (s MemberState) String() string {
	switch s {
	case MemberAlive:
		return "alive"
	case MemberSuspect:
		return "suspect"
	case MemberDead:
		return "dead"
	}
	return "unknown"
}

// Member is one row of the membership view.
type Member struct {
	Node        string
	Metrics     string
	Incarnation uint64
	State       MemberState
	// Seed marks a configured bootstrap member: its peer link is kept
	// dialing even while dead, so a restarted seed is rediscovered without
	// waiting for it to dial us.
	Seed bool
}

type memberEntry struct {
	Member
	// since is when State last changed, aging suspects toward dead.
	since time.Time
}

// membership is the gossiped member table: this node's view of who is in
// the federation, in which state, and at which incarnation. All rumors
// merge under the SWIM precedence rule — a higher incarnation always wins;
// at equal incarnation the stronger claim (dead > suspect > alive) wins —
// and a node refutes rumors about itself by bumping its own incarnation.
type membership struct {
	self        string
	selfMetrics string

	mu      sync.Mutex
	inc     uint64 // this node's incarnation
	members map[string]*memberEntry
	version uint64 // bumped on every effective change

	joins    uint64 // members first seen (or revived from dead)
	leaves   uint64 // transitions to dead
	suspects uint64 // transitions to suspect
}

func newMembership(self, metricsAddr string, seeds []string) *membership {
	m := &membership{
		self:        self,
		selfMetrics: metricsAddr,
		inc:         1,
		members:     make(map[string]*memberEntry),
	}
	for _, addr := range seeds {
		if addr == "" || addr == self {
			continue
		}
		if _, dup := m.members[addr]; dup {
			continue
		}
		// Seeds start alive at incarnation 0: any claim the member makes
		// about itself supersedes the bootstrap assumption.
		m.members[addr] = &memberEntry{Member: Member{Node: addr, Seed: true}}
		m.joins++
	}
	if len(m.members) > 0 {
		m.version++
	}
	return m
}

// supersedes reports whether a claim (incB, sB) overrides the currently
// held (incA, sA) for the same member.
func supersedes(incB uint64, sB MemberState, incA uint64, sA MemberState) bool {
	if incB != incA {
		return incB > incA
	}
	return sB > sA
}

// Version returns the view's change counter; callers cache it to detect
// when the ring needs rebuilding.
func (m *membership) Version() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.version
}

// Snapshot returns every known member (self first, then sorted by ID).
func (m *membership) Snapshot() []Member {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Member, 0, len(m.members)+1)
	out = append(out, Member{Node: m.self, Metrics: m.selfMetrics, Incarnation: m.inc})
	rest := make([]Member, 0, len(m.members))
	for _, e := range m.members {
		rest = append(rest, e.Member)
	}
	sort.Slice(rest, func(i, j int) bool { return rest[i].Node < rest[j].Node })
	return append(out, rest...)
}

// RingMembers returns the IDs that belong on the shard ring: self plus
// every alive or suspect member. Suspects keep their shards — transient
// unreachability must not reshuffle ownership — and only confirmed-dead
// members are removed.
func (m *membership) RingMembers() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := []string{m.self}
	for id, e := range m.members {
		if e.State != MemberDead {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}

// Gossip renders the view (including self, always alive) in wire form for
// piggybacking on hello/ping/pong frames.
func (m *membership) Gossip() []broker.MemberInfo {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]broker.MemberInfo, 0, len(m.members)+1)
	out = append(out, broker.MemberInfo{Node: m.self, Metrics: m.selfMetrics, Incarnation: m.inc})
	for _, e := range m.members {
		out = append(out, broker.MemberInfo{
			Node:        e.Node,
			Metrics:     e.Metrics,
			Incarnation: e.Incarnation,
			State:       uint8(e.State),
		})
	}
	return out
}

// Merge folds a received gossip payload into the view and reports whether
// anything effective changed (membership, state, incarnation, or metrics
// address). Rumors about self in a non-alive state are refuted by bumping
// our incarnation past the rumor's — the next gossip round re-announces us
// alive under the higher epoch, which supersedes the rumor everywhere.
func (m *membership) Merge(infos []broker.MemberInfo, now time.Time) bool {
	if len(infos) == 0 {
		return false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	changed := false
	for _, in := range infos {
		if in.Node == "" {
			continue
		}
		st := MemberState(in.State)
		if st > MemberDead {
			continue
		}
		if in.Node == m.self {
			if st != MemberAlive && in.Incarnation >= m.inc {
				m.inc = in.Incarnation + 1
				changed = true
			}
			continue
		}
		e := m.members[in.Node]
		if e == nil {
			e = &memberEntry{
				Member: Member{Node: in.Node, Metrics: in.Metrics, Incarnation: in.Incarnation, State: st},
				since:  now,
			}
			m.members[in.Node] = e
			if st != MemberDead {
				m.joins++
			} else {
				m.leaves++
			}
			changed = true
			continue
		}
		if in.Metrics != "" && in.Metrics != e.Metrics {
			e.Metrics = in.Metrics
			changed = true
		}
		if !supersedes(in.Incarnation, st, e.Incarnation, e.State) {
			continue
		}
		if st != e.State {
			switch st {
			case MemberAlive:
				if e.State == MemberDead {
					m.joins++
				}
			case MemberSuspect:
				m.suspects++
			case MemberDead:
				m.leaves++
			}
			e.since = now
		}
		e.Incarnation, e.State = in.Incarnation, st
		changed = true
	}
	if changed {
		m.version++
	}
	return changed
}

// ObserveDown records direct local evidence that a member is unreachable
// (its circuit breaker opened): an alive member becomes suspect at its
// current incarnation. The suspect rumor gossips out; if the member is in
// fact fine it will hear the rumor and refute it.
func (m *membership) ObserveDown(id string, now time.Time) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	e := m.members[id]
	if e == nil || e.State != MemberAlive {
		return false
	}
	e.State = MemberSuspect
	e.since = now
	m.suspects++
	m.version++
	return true
}

// Reap promotes suspects older than timeout to dead. It returns whether
// any member died (the caller rebuilds the ring and drops non-seed links).
func (m *membership) Reap(timeout time.Duration, now time.Time) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	changed := false
	for _, e := range m.members {
		if e.State == MemberSuspect && now.Sub(e.since) >= timeout {
			e.State = MemberDead
			e.since = now
			m.leaves++
			changed = true
		}
	}
	if changed {
		m.version++
	}
	return changed
}

// Counters returns the cumulative join/leave/suspect transition counts.
func (m *membership) Counters() (joins, leaves, suspects uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.joins, m.leaves, m.suspects
}
